(** Metal-layer classes of a BEOL stack.

    The paper's Table 3 distinguishes three classes of metal layers: the
    bottom layer [M1] (local), the intermediate layers [Mx] (semi-global) and
    the thick top layers [Mt] (global).  A layer-pair is made of two adjacent
    layers of the same class, one routing horizontally and one vertically. *)

type t = Local | Semi_global | Global [@@deriving show, eq, ord]

val all : t list
(** The three classes, bottom-up: local, semi-global, global. *)

val to_string : t -> string
(** Short human-readable name, e.g. ["semi-global"]. *)

val table_symbol : t -> string
(** The symbol used in the paper's Table 3: ["M1"], ["Mx"] or ["Mt"]. *)
