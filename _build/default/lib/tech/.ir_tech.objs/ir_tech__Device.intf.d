lib/tech/device.pp.mli: Node Ppx_deriving_runtime
