lib/tech/stack.pp.ml: Format Geometry Ir_phys List Metal_class Node Ppx_deriving_runtime
