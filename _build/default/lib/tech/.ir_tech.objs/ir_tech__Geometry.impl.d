lib/tech/geometry.pp.ml: Option Ppx_deriving_runtime Printf
