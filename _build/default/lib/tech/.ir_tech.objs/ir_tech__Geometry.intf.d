lib/tech/geometry.pp.mli: Ppx_deriving_runtime
