lib/tech/node.pp.ml: Ir_phys Ppx_deriving_runtime String
