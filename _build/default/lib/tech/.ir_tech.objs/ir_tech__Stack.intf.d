lib/tech/stack.pp.mli: Format Geometry Metal_class Node Ppx_deriving_runtime
