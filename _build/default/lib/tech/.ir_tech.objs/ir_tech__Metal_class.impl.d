lib/tech/metal_class.pp.ml: Ppx_deriving_runtime
