lib/tech/itrs.pp.mli: Design Node Ppx_deriving_runtime
