lib/tech/design.pp.mli: Node Ppx_deriving_runtime
