lib/tech/itrs.pp.ml: Design Float List Node Option Ppx_deriving_runtime
