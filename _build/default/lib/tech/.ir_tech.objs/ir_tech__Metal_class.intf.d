lib/tech/metal_class.pp.mli: Ppx_deriving_runtime
