lib/tech/design.pp.ml: Node Ppx_deriving_runtime
