lib/tech/node.pp.mli: Ppx_deriving_runtime
