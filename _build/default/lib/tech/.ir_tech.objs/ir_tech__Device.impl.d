lib/tech/device.pp.ml: Node Ppx_deriving_runtime Printf
