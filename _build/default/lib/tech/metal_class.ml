type t = Local | Semi_global | Global [@@deriving show, eq, ord]

let all = [ Local; Semi_global; Global ]

let to_string = function
  | Local -> "local"
  | Semi_global -> "semi-global"
  | Global -> "global"

let table_symbol = function
  | Local -> "M1"
  | Semi_global -> "Mx"
  | Global -> "Mt"
