(** BEOL stack descriptions: the paper's Table 3.

    A stack gives, per metal class, the wire geometry and the number of metal
    layers of that class available in the node.  Layer-pairs are formed from
    two adjacent layers of the same class; the architecture builder in
    {!module:Ir_ia} decides how many pairs of each class a given IA uses. *)

type t = {
  node : Node.t;
  local : Geometry.t;  (** M1-class geometry *)
  semi_global : Geometry.t;  (** Mx-class geometry *)
  global : Geometry.t;  (** Mt-class geometry *)
  mx_layers : int;  (** number of Mx-class layers *)
  mt_layers : int;  (** number of Mt-class layers *)
}
[@@deriving show, eq]

val geometry : t -> Metal_class.t -> Geometry.t
(** Geometry of the given class in this stack. *)

val layers : t -> int
(** Total metal layer count: 1 (M1) + Mx + Mt layers. *)

val of_node : Node.t -> t
(** The paper's Table 3 parameters for [N180], [N130] and [N90] (exact
    values as printed).  For [Custom] nodes, geometry is scaled linearly from
    the 130nm stack by the feature-size ratio.

    Layer counts follow Table 3's caption: 6 layers at 180nm (x = 2..5,
    t = 6), 7 at 130nm (x = 2..6, t = 7), 8 at 90nm (x = 2..7, t = 8). *)

val max_pairs : t -> Metal_class.t -> int
(** Number of layer-pairs of a class the stack can provide.  The M1 layer
    pairs with the lowest Mx layer, so [max_pairs _ Local = 1]; Mx layers
    give [floor (mx_layers / 2)] semi-global pairs (minimum 1 — the paper's
    Table 2 baseline uses two semi-global pairs at every node); Mt layers
    give [ceil (mt_layers / 2)] global pairs. *)

val pp_table3 : Format.formatter -> t -> unit
(** Renders the stack in the layout of the paper's Table 3 (dimensions in
    micrometers). *)
