type t = { r_o : float; c_o : float; c_p : float; area : float }
[@@deriving show, eq]

let v ~r_o ~c_o ~c_p ~area =
  let check name x =
    if not (x > 0.0) then
      invalid_arg (Printf.sprintf "Device.v: %s must be > 0" name)
  in
  check "r_o" r_o;
  check "c_o" c_o;
  check "c_p" c_p;
  check "area" area;
  { r_o; c_o; c_p; area }

let inv_area_f2 = 2.06

let of_node node =
  let feature = Node.feature_size node in
  let area = inv_area_f2 *. feature *. feature in
  (* Calibrated so that (i) the per-stage intrinsic delay b r_o (c_o + c_p)
     stays under ~2 ps — Table 4 of the paper requires wires of 2-3 gate
     pitches to meet their (l/l_max)/f_c targets at 500 MHz — and (ii) the
     optimal repeater sizes land in the conventional 40-100x range.  See
     DESIGN.md section 5 for the calibration derivation. *)
  let r_o, c_o =
    match node with
    | Node.N180 -> (2.4e3, 1.0e-15)
    | Node.N130 -> (2.0e3, 0.7e-15)
    | Node.N90 -> (1.7e3, 0.45e-15)
    | Node.Custom { feature; _ } ->
        let f = feature /. 130e-9 in
        (2.0e3, 0.7e-15 *. f)
  in
  v ~r_o ~c_o ~c_p:c_o ~area

let intrinsic_delay t = 0.7 *. t.r_o *. (t.c_o +. t.c_p)
