type entry = {
  year : int;
  node : Node.t;
  max_clock : float;
  mpu_gates : int;
  ild_k : float;
  metal_layers : int;
}
[@@deriving show, eq]

let roadmap =
  [
    { year = 1999; node = Node.N180; max_clock = 1.25e9;
      mpu_gates = 1_000_000; ild_k = 4.0; metal_layers = 6 };
    { year = 2001; node = Node.N130; max_clock = 1.7e9;
      mpu_gates = 2_000_000; ild_k = 3.7; metal_layers = 7 };
    { year = 2004; node = Node.N90; max_clock = 3.0e9;
      mpu_gates = 4_000_000; ild_k = 3.3; metal_layers = 8 };
    { year = 2007; node = Node.Custom { name = "65nm"; feature = 65e-9 };
      max_clock = 4.5e9; mpu_gates = 8_000_000; ild_k = 3.0;
      metal_layers = 9 };
    { year = 2010; node = Node.Custom { name = "45nm"; feature = 45e-9 };
      max_clock = 6.0e9; mpu_gates = 16_000_000; ild_k = 2.6;
      metal_layers = 10 };
  ]

let entry_for node =
  let f = Node.feature_size node in
  List.find_opt
    (fun e -> Float.abs (Node.feature_size e.node -. f) < 1e-12)
    roadmap

let design_of_entry ?gates ?clock entry =
  Design.v ~node:entry.node
    ~gates:(Option.value gates ~default:entry.mpu_gates)
    ~clock:(Option.value clock ~default:entry.max_clock)
    ()
