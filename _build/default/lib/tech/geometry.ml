type t = {
  width : float;
  spacing : float;
  thickness : float;
  ild_thickness : float;
  via_width : float;
}
[@@deriving show, eq]

let v ?ild_thickness ?via_width ~width ~spacing ~thickness () =
  let ild_thickness = Option.value ild_thickness ~default:thickness in
  let via_width = Option.value via_width ~default:width in
  let check name x =
    if not (x > 0.0) then
      invalid_arg (Printf.sprintf "Geometry.v: %s must be > 0" name)
  in
  check "width" width;
  check "spacing" spacing;
  check "thickness" thickness;
  check "ild_thickness" ild_thickness;
  check "via_width" via_width;
  { width; spacing; thickness; ild_thickness; via_width }

let pitch g = g.width +. g.spacing

let via_area g =
  let pad = 2.0 *. g.via_width in
  pad *. pad

let scaled g f =
  if not (f > 0.0) then invalid_arg "Geometry.scaled: factor must be > 0";
  {
    width = g.width *. f;
    spacing = g.spacing *. f;
    thickness = g.thickness *. f;
    ild_thickness = g.ild_thickness *. f;
    via_width = g.via_width *. f;
  }
