(** Per-layer-class interconnect geometry.

    All dimensions are in meters.  A geometry describes the cross-section of
    every wire in a layer-pair of that class: drawn width, spacing to the
    adjacent wire, metal thickness, the inter-layer-dielectric (ILD) height
    separating the pair from the orthogonal layers above/below, and the width
    of the vias that drop from this pair towards the substrate. *)

type t = {
  width : float;  (** minimum drawn wire width *)
  spacing : float;  (** minimum spacing between adjacent wires *)
  thickness : float;  (** metal thickness *)
  ild_thickness : float;  (** dielectric height to the neighboring layer *)
  via_width : float;  (** width of a via landing on this pair *)
}
[@@deriving show, eq]

val v : ?ild_thickness:float -> ?via_width:float ->
  width:float -> spacing:float -> thickness:float -> unit -> t
(** [v ~width ~spacing ~thickness ()] builds a geometry.  [ild_thickness]
    defaults to [thickness] (aspect-ratio-1 dielectric, the common rule of
    thumb for the 2003-era stacks modeled here) and [via_width] defaults to
    [width].
    @raise Invalid_argument if any dimension is not strictly positive. *)

val pitch : t -> float
(** [pitch g] is [g.width +. g.spacing], the routing pitch.  A wire of length
    [l] consumes [l *. pitch g] of routing area on its layer-pair. *)

val via_area : t -> float
(** [via_area g] is the blocked area of one via passing through a layer of
    this class, modeled as a square landing pad of twice the drawn via width
    (via + enclosure), following the compact via-blockage model of
    Chen/Davis/Meindl (IEEE TVLSI 2000). *)

val scaled : t -> float -> t
(** [scaled g f] multiplies every dimension of [g] by [f] (> 0). *)
