type t = {
  node : Node.t;
  local : Geometry.t;
  semi_global : Geometry.t;
  global : Geometry.t;
  mx_layers : int;
  mt_layers : int;
}
[@@deriving show, eq]

let geometry t = function
  | Metal_class.Local -> t.local
  | Metal_class.Semi_global -> t.semi_global
  | Metal_class.Global -> t.global

let layers t = 1 + t.mx_layers + t.mt_layers

let um = Ir_phys.Units.um

(* Exact values of the paper's Table 3. *)

let stack_180 =
  {
    node = Node.N180;
    local =
      Geometry.v ~width:(um 0.230) ~spacing:(um 0.230) ~thickness:(um 0.483)
        ~via_width:(um 0.260) ();
    semi_global =
      Geometry.v ~width:(um 0.280) ~spacing:(um 0.280) ~thickness:(um 0.588)
        ~via_width:(um 0.260) ();
    global =
      Geometry.v ~width:(um 0.440) ~spacing:(um 0.460) ~thickness:(um 0.960)
        ~via_width:(um 0.360) ();
    mx_layers = 4;
    mt_layers = 1;
  }

let stack_130 =
  {
    node = Node.N130;
    local =
      Geometry.v ~width:(um 0.160) ~spacing:(um 0.180) ~thickness:(um 0.336)
        ~via_width:(um 0.190) ();
    semi_global =
      Geometry.v ~width:(um 0.200) ~spacing:(um 0.210) ~thickness:(um 0.340)
        ~via_width:(um 0.260) ();
    global =
      Geometry.v ~width:(um 0.440) ~spacing:(um 0.460) ~thickness:(um 1.020)
        ~via_width:(um 0.360) ();
    mx_layers = 5;
    mt_layers = 1;
  }

let stack_90 =
  {
    node = Node.N90;
    local =
      Geometry.v ~width:(um 0.120) ~spacing:(um 0.120) ~thickness:(um 0.260)
        ~via_width:(um 0.130) ();
    semi_global =
      Geometry.v ~width:(um 0.140) ~spacing:(um 0.140) ~thickness:(um 0.300)
        ~via_width:(um 0.130) ();
    global =
      Geometry.v ~width:(um 0.420) ~spacing:(um 0.420) ~thickness:(um 0.880)
        ~via_width:(um 0.360) ();
    mx_layers = 6;
    mt_layers = 1;
  }

let of_node = function
  | Node.N180 -> stack_180
  | Node.N130 -> stack_130
  | Node.N90 -> stack_90
  | Node.Custom { feature; _ } as node ->
      let f = feature /. Node.feature_size Node.N130 in
      {
        node;
        local = Geometry.scaled stack_130.local f;
        semi_global = Geometry.scaled stack_130.semi_global f;
        global = Geometry.scaled stack_130.global f;
        mx_layers = stack_130.mx_layers;
        mt_layers = stack_130.mt_layers;
      }

let max_pairs t = function
  | Metal_class.Local -> 1
  | Metal_class.Semi_global -> max 1 (t.mx_layers / 2)
  | Metal_class.Global -> (t.mt_layers + 1) / 2

let pp_table3 ppf t =
  let open Format in
  let to_um = Ir_phys.Units.to_um in
  let row ppf (label, value) = fprintf ppf "%-24s %8.3f um@," label value in
  fprintf ppf "@[<v>Technology parameters, %s:@," (Node.name t.node);
  let geom_rows sym (g : Geometry.t) =
    [
      (sym ^ " minimum width", to_um g.width);
      (sym ^ " minimum spacing", to_um g.spacing);
      (sym ^ " thickness", to_um g.thickness);
    ]
  in
  List.iter (row ppf)
    (geom_rows "M1" t.local @ geom_rows "Mx" t.semi_global
    @ geom_rows "Mt" t.global
    @ [
        ("V1 minimum width", to_um t.local.via_width);
        ("Vx-1 minimum width", to_um t.semi_global.via_width);
        ("Vt-1 minimum width", to_um t.global.via_width);
      ]);
  fprintf ppf "layers: M1 + %d Mx + %d Mt@]" t.mx_layers t.mt_layers
