(** ITRS-2001-style technology roadmap.

    The paper's clocks and gate pitches come from the 2001 ITRS (its
    reference [8]), and its Section 6 announces rank evaluation of "ITRS
    and foundry BEOL architectures" as the goal.  This module embeds a
    roadmap-style sequence of technology generations — feature size,
    maximum MPU clock, typical logic gate count, effective ILD
    permittivity and metal layer count trends — so that roadmap studies
    (rank across generations, with and without the roadmap's material
    improvements) can be scripted.

    Values follow the ITRS-2001 trend tables to the precision that
    matters for trend studies; they are estimates, not normative data
    (the published tables carry many footnotes), and each is overridable
    through the returned records. *)

type entry = {
  year : int;
  node : Node.t;
  max_clock : float;  (** across-chip MPU clock, Hz *)
  mpu_gates : int;  (** typical MPU logic gate count *)
  ild_k : float;  (** roadmap effective ILD permittivity *)
  metal_layers : int;
}
[@@deriving show, eq]

val roadmap : entry list
(** Five generations, 1999 (180nm) through 2010 (45nm); the 65nm and
    45nm entries use [Node.Custom] nodes whose stacks scale from the
    130nm Table 3 geometry. *)

val entry_for : Node.t -> entry option
(** The roadmap entry matching a node by feature size, if any. *)

val design_of_entry : ?gates:int -> ?clock:float -> entry -> Design.t
(** A Table-2-style baseline design for the generation: the entry's gate
    count and clock (both overridable), Rent p 0.6, repeater
    fraction 0.4. *)
