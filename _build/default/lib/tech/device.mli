(** Minimum-sized inverter (repeater) device parameters per node.

    The paper's delay model (its Eq. 2/3, from Otten–Brayton) needs the
    output resistance [r_o], input capacitance [c_o] and parasitic output
    capacitance [c_p] of a minimum-sized inverter, plus the silicon area it
    occupies (for the repeater-area budget of Definition 2).  The paper does
    not print these values; we use ITRS-2001-era estimates (documented in
    DESIGN.md) that can be overridden for calibration studies. *)

type t = {
  r_o : float;  (** output resistance of a minimum inverter, Ohm *)
  c_o : float;  (** input capacitance of a minimum inverter, F *)
  c_p : float;  (** parasitic output capacitance, F *)
  area : float;  (** silicon area of a minimum inverter, m^2 *)
}
[@@deriving show, eq]

val v : r_o:float -> c_o:float -> c_p:float -> area:float -> t
(** Constructor with positivity checks.
    @raise Invalid_argument on non-positive values. *)

val of_node : Node.t -> t
(** Default device parameters for a node.  The inverter area is
    [inv_area_f2 * feature^2]. *)

val inv_area_f2 : float
(** Repeater-area quantum in units of feature-size squared (default 2.06).
    The paper's repeater-area accounting (its Eq. 5 and footnote 3) treats
    a size-[s] repeater as occupying [s] units of area without reconciling
    against physical cell layout; the quantum calibrates that unit so the
    baseline 130nm/1M-gate design reproduces Table 4's normalized rank
    scale. *)

val intrinsic_delay : t -> float
(** [b * r_o * (c_o + c_p)] with b = 0.7: the unloaded switching delay of a
    minimum inverter, a useful sanity-check scale (~ a few ps). *)
