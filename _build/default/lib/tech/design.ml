type t = {
  node : Node.t;
  gates : int;
  rent_p : float;
  fan_out : float;
  clock : float;
  repeater_fraction : float;
  floorplan_reserve : float;
}
[@@deriving show, eq]

let check t =
  if t.gates <= 0 then invalid_arg "Design.v: gates must be > 0";
  if not (t.rent_p > 0.0 && t.rent_p < 1.0) then
    invalid_arg "Design.v: rent_p must lie in (0, 1)";
  if not (t.fan_out > 0.0) then invalid_arg "Design.v: fan_out must be > 0";
  if not (t.clock > 0.0) then invalid_arg "Design.v: clock must be > 0";
  if not (t.repeater_fraction >= 0.0 && t.repeater_fraction <= 1.0) then
    invalid_arg "Design.v: repeater_fraction must lie in [0, 1]";
  if not (t.floorplan_reserve >= 0.0 && t.floorplan_reserve < 1.0) then
    invalid_arg "Design.v: floorplan_reserve must lie in [0, 1)";
  t

let v ?(rent_p = 0.6) ?(fan_out = 3.0) ?(clock = 500e6)
    ?(repeater_fraction = 0.4) ?(floorplan_reserve = 0.4) ~node ~gates () =
  check
    { node; gates; rent_p; fan_out; clock; repeater_fraction;
      floorplan_reserve }

let gate_area t =
  let g = Node.gate_pitch t.node in
  g *. g *. float_of_int t.gates

let die_area t = gate_area t /. (1.0 -. t.floorplan_reserve)
let repeater_area t = t.repeater_fraction *. die_area t
let effective_gate_pitch t = sqrt (die_area t /. float_of_int t.gates)
let with_clock t clock = check { t with clock }

let with_repeater_fraction t repeater_fraction =
  check { t with repeater_fraction }
