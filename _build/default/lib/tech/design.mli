(** Design-level parameters and die-area bookkeeping.

    A design is a gate count placed on a node, with a Rent parameter, an
    average fan-out and a target clock.  Die area follows the paper's
    Section 5.2: area due to gates is [g^2 * N] at gate pitch
    [g = 12.6 * feature]; the floorplan reserves a fixed fraction of the die
    for repeaters (Eq. 6), giving [A_d = g^2 N / (1 - reserve)].

    The {e floorplan reserve} (how much area the die sets aside, fixed when
    the design is floorplanned) is kept separate from the {e repeater
    fraction} (how much repeater area the rank computation may use,
    the paper's swept parameter R).  They coincide at the baseline
    (both 0.4); sweeping R then scales the usable budget linearly while the
    die area — and hence the WLD's physical lengths — stay fixed, which is
    what makes the paper's Table 4 column R linear in R. *)

type t = {
  node : Node.t;
  gates : int;  (** number of gates, N *)
  rent_p : float;  (** Rent exponent p (paper: 0.6) *)
  fan_out : float;  (** average gate fan-out (Davis WLD: 3.0) *)
  clock : float;  (** target clock frequency f_c, Hz *)
  repeater_fraction : float;  (** usable repeater area as fraction of die *)
  floorplan_reserve : float;  (** die-area fraction reserved for repeaters *)
}
[@@deriving show, eq]

val v :
  ?rent_p:float ->
  ?fan_out:float ->
  ?clock:float ->
  ?repeater_fraction:float ->
  ?floorplan_reserve:float ->
  node:Node.t ->
  gates:int ->
  unit ->
  t
(** Build a design.  Defaults follow the paper's baseline (Table 2):
    [rent_p = 0.6], [fan_out = 3.0], [clock = 500 MHz],
    [repeater_fraction = 0.4], [floorplan_reserve = 0.4].
    @raise Invalid_argument if [gates <= 0], [rent_p] outside (0, 1),
    [fan_out <= 0], [clock <= 0], [repeater_fraction] outside [0, 1], or
    [floorplan_reserve] outside [0, 1). *)

val gate_area : t -> float
(** Die area due to gates alone: [g^2 * N], m^2. *)

val die_area : t -> float
(** Actual die area [A_d = gate_area / (1 - floorplan_reserve)], m^2. *)

val repeater_area : t -> float
(** Usable repeater area budget [A_R = repeater_fraction * die_area], m^2. *)

val effective_gate_pitch : t -> float
(** Gate pitch after redistributing the gates evenly over the actual die
    area: [sqrt (die_area / N)], m.  This pitch converts WLD lengths from
    gate pitches to meters. *)

val with_clock : t -> float -> t
(** Same design at a different target clock. *)

val with_repeater_fraction : t -> float -> t
(** Same design with a different usable repeater budget (the floorplan
    reserve — and so the die area and WLD — are unchanged). *)
