type t =
  | Linear
  | Affine of { floor : float }
  | Quadratic_blend of { weight : float }
[@@deriving show, eq]

let delay t ~clock ~l_max l =
  if not (clock > 0.0) then invalid_arg "Target.delay: clock must be > 0";
  if not (l_max > 0.0) then invalid_arg "Target.delay: l_max must be > 0";
  if l < 0.0 || l > l_max *. (1.0 +. 1e-9) then
    invalid_arg "Target.delay: length outside [0, l_max]";
  let period = 1.0 /. clock in
  let x = Float.min 1.0 (l /. l_max) in
  match t with
  | Linear -> x *. period
  | Affine { floor } ->
      if floor < 0.0 || floor >= period then
        invalid_arg "Target.delay: floor must lie in [0, period)";
      floor +. (x *. (period -. floor))
  | Quadratic_blend { weight } ->
      if weight < 0.0 || weight > 1.0 then
        invalid_arg "Target.delay: weight must lie in [0, 1]";
      period *. (((1.0 -. weight) *. x) +. (weight *. x *. x))

let monotone_check t ~clock ~l_max =
  let samples = Ir_phys.Numeric.linspace 0.0 l_max 64 in
  let rec check prev = function
    | [] -> true
    | l :: rest ->
        let d = delay t ~clock ~l_max l in
        if d +. 1e-18 < prev then false else check d rest
  in
  check neg_infinity samples
