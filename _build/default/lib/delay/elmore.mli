(** Distributed-RC ladder delays: the ground truth under Eq. (2).

    The paper's segment delay (Otten–Brayton) uses switching constants
    [a = 0.4] and [b = 0.7] — the classical 50%-threshold factors for a
    step driven into a distributed RC line ([0.4 r c l^2]) through a
    source resistance ([0.7 R C]).  This module computes the Elmore delay
    of an explicit N-segment π-ladder discretization of the same wire, so
    the coefficients can be checked against first principles instead of
    taken on faith:

    - the Elmore delay of the distributed line converges to
      [0.5 r c l^2] as N grows (Elmore overestimates the 50% point of a
      distributed line; the standard correction to the 50% threshold is
      the paper's 0.4),
    - the source-resistance term converges to [R (C + C_L)] (whose 50%
      correction is 0.69 ≈ the paper's 0.7).

    The test suite asserts both convergences and the resulting bands for
    a and b. *)

val ladder_delay :
  ?segments:int ->
  r_total:float ->
  c_total:float ->
  ?r_source:float ->
  ?c_load:float ->
  unit ->
  float
(** Elmore delay (seconds) to the far end of a wire of total resistance
    [r_total] and capacitance [c_total], discretized into [segments]
    (default 64) π-sections, driven through [r_source] (default 0) into a
    far-end load [c_load] (default 0):

    {v  T = sum_i R_upstream(i) * C(i)  v}

    @raise Invalid_argument if [segments < 1] or any value is
    negative. *)

val distributed_limit : r_total:float -> c_total:float -> float
(** The N -> infinity Elmore delay of the bare line, [r c / 2]. *)

val threshold_50_factor : float
(** 0.4: the 50%-threshold correction of the distributed-line Elmore
    delay (ln 2 scaled for the diffusion step response) — the paper's
    [a]. *)

val lumped_50_factor : float
(** ln 2 = 0.693...: the 50% threshold of a single-pole RC — the paper's
    [b] (rounded to 0.7). *)
