type line = { r_per_m : float; c_per_m : float } [@@deriving show, eq]
type coeffs = { a : float; b : float } [@@deriving show, eq]

let default_coeffs = { a = 0.4; b = 0.7 }

let line ~r_per_m ~c_per_m =
  if not (r_per_m > 0.0 && c_per_m > 0.0) then
    invalid_arg "Model.line: r and c per meter must be > 0";
  { r_per_m; c_per_m }

let check_s s = if not (s >= 1.0) then invalid_arg "Model: repeater size < 1"

(* b r_o (c_o + c_p): the per-stage intrinsic term of Eq. (3).  The
   parasitic capacitance scales with the repeater size, which is what
   collapses Eq. (2) with R_tr = r_o/s, C_L = c_o s into this form. *)
let stage_intrinsic coeffs (dev : Ir_tech.Device.t) =
  coeffs.b *. dev.r_o *. (dev.c_o +. dev.c_p)

let per_meter coeffs (dev : Ir_tech.Device.t) line ~s =
  coeffs.b
  *. ((line.c_per_m *. dev.r_o /. s) +. (line.r_per_m *. dev.c_o *. s))

let segment_delay ?(coeffs = default_coeffs) dev line ~s l =
  check_s s;
  if l < 0.0 then invalid_arg "Model.segment_delay: negative length";
  stage_intrinsic coeffs dev
  +. (per_meter coeffs dev line ~s *. l)
  +. (coeffs.a *. line.r_per_m *. line.c_per_m *. l *. l)

let wire_delay ?(coeffs = default_coeffs) dev line ~s ~eta l =
  check_s s;
  if eta < 1 then invalid_arg "Model.wire_delay: eta must be >= 1";
  if l < 0.0 then invalid_arg "Model.wire_delay: negative length";
  let eta_f = float_of_int eta in
  (stage_intrinsic coeffs dev *. eta_f)
  +. (per_meter coeffs dev line ~s *. l)
  +. (coeffs.a *. line.r_per_m *. line.c_per_m *. l *. l /. eta_f)

let s_opt (dev : Ir_tech.Device.t) line =
  Float.max 1.0
    (sqrt (line.c_per_m *. dev.r_o /. (dev.c_o *. line.r_per_m)))

let eta_opt_continuous ?(coeffs = default_coeffs) dev line l =
  l *. sqrt (coeffs.a *. line.r_per_m *. line.c_per_m
             /. stage_intrinsic coeffs dev)

let eta_opt ?(coeffs = default_coeffs) dev line ~s l =
  let cont = eta_opt_continuous ~coeffs dev line l in
  let lo = max 1 (int_of_float (Float.floor cont)) in
  let hi = lo + 1 in
  let d eta = wire_delay ~coeffs dev line ~s ~eta l in
  if d lo <= d hi then lo else hi

let min_delay ?(coeffs = default_coeffs) dev line ~s l =
  let eta = eta_opt ~coeffs dev line ~s l in
  wire_delay ~coeffs dev line ~s ~eta l

let repeaters_needed ?(coeffs = default_coeffs) ?(eta_cap = 1_000_000) dev
    line ~s ~target l =
  let d eta = wire_delay ~coeffs dev line ~s ~eta l in
  if d 1 <= target then Some 1
  else
    let eta_best = eta_opt ~coeffs dev line ~s l in
    if eta_best > eta_cap || d (min eta_best eta_cap) > target then None
    else begin
      (* D is decreasing on [1, eta_best]; find the first eta meeting the
         target by binary search. *)
      let rec search lo hi =
        (* Invariant: d lo > target, d hi <= target. *)
        if hi - lo <= 1 then hi
        else
          let mid = lo + ((hi - lo) / 2) in
          if d mid <= target then search lo mid else search mid hi
      in
      Some (search 1 eta_best)
    end
