(** The Otten–Brayton repeated-wire delay model (the paper's Eq. 2 and 3).

    A wire of length [l] on a layer-pair with per-unit-length resistance
    [r̄] and capacitance [c̄], divided into [eta] equal segments by [eta]
    uniform repeaters of size [s] (multiples of the minimum inverter), has
    total delay

    {v
      D(eta, s, l) = b r_o (c_o + c_p) eta
                   + b (c̄ r_o / s + r̄ c_o s) l
                   + a r̄ c̄ l^2 / eta
    v}

    with switching constants [a = 0.4] and [b = 0.7].  [D] is convex in
    [eta] and minimized at [s_opt = sqrt (c̄ r_o / (c_o r̄))] (the paper's
    Eq. 4), making the repeater-insertion subproblem per wire a 1-D integer
    search. *)

type line = {
  r_per_m : float;  (** r̄: wire resistance per meter, Ohm/m *)
  c_per_m : float;  (** c̄: effective switching capacitance per meter, F/m *)
}
[@@deriving show, eq]

type coeffs = { a : float; b : float } [@@deriving show, eq]

val default_coeffs : coeffs
(** [a = 0.4], [b = 0.7] — the paper's footnote 5 values. *)

val line : r_per_m:float -> c_per_m:float -> line
(** @raise Invalid_argument on non-positive values. *)

val segment_delay :
  ?coeffs:coeffs -> Ir_tech.Device.t -> line -> s:float -> float -> float
(** [segment_delay dev line ~s l] is the Eq. (2) delay of one repeater of
    size [s] driving a segment of length [l] meters, with
    [R_tr = r_o / s], [C_L = s c_o] and parasitic [s c_p]. *)

val wire_delay :
  ?coeffs:coeffs ->
  Ir_tech.Device.t ->
  line ->
  s:float ->
  eta:int ->
  float ->
  float
(** [wire_delay dev line ~s ~eta l] is the Eq. (3) total delay of a wire of
    length [l] meters with [eta >= 1] repeaters of size [s].
    @raise Invalid_argument if [eta < 1] or [s <= 0]. *)

val s_opt : Ir_tech.Device.t -> line -> float
(** Optimal repeater size for the layer-pair (Eq. 4), clamped below at 1
    (a repeater cannot be smaller than a minimum inverter). *)

val eta_opt_continuous :
  ?coeffs:coeffs -> Ir_tech.Device.t -> line -> float -> float
(** The real-valued repeater count minimizing Eq. (3):
    [l * sqrt (a r̄ c̄ / (b r_o (c_o + c_p)))]. *)

val eta_opt : ?coeffs:coeffs -> Ir_tech.Device.t -> line -> s:float -> float -> int
(** Integer repeater count (>= 1) minimizing Eq. (3) for a wire of length
    [l]; checks the two integers around {!eta_opt_continuous}. *)

val min_delay :
  ?coeffs:coeffs -> Ir_tech.Device.t -> line -> s:float -> float -> float
(** The smallest achievable delay of the wire with unlimited repeaters of
    size [s] (Eq. 3 at {!eta_opt}).  A wire whose target is below this value
    can never meet it on this layer-pair. *)

val repeaters_needed :
  ?coeffs:coeffs ->
  ?eta_cap:int ->
  Ir_tech.Device.t ->
  line ->
  s:float ->
  target:float ->
  float ->
  int option
(** [repeaters_needed dev line ~s ~target l] is the minimal [eta >= 1] such
    that [wire_delay ~eta l <= target], or [None] when even the optimal
    count misses the target (or would exceed [eta_cap], default 1_000_000 —
    the paper's "repeaters cannot be placed at appropriate intervals"
    guard).  Cost is O(log eta) via binary search on the decreasing branch
    of the convex delay curve. *)
