let ladder_delay ?(segments = 64) ~r_total ~c_total ?(r_source = 0.0)
    ?(c_load = 0.0) () =
  if segments < 1 then invalid_arg "Elmore.ladder_delay: segments < 1";
  if r_total < 0.0 || c_total < 0.0 || r_source < 0.0 || c_load < 0.0 then
    invalid_arg "Elmore.ladder_delay: negative value";
  let n = float_of_int segments in
  let r_seg = r_total /. n and c_seg = c_total /. n in
  (* pi-sections: half the segment capacitance before the segment
     resistance, half after.  Elmore delay to the far node is
     sum over capacitors of (upstream resistance * capacitance). *)
  let delay = ref (r_source *. (c_total +. c_load)) in
  for i = 1 to segments do
    let upstream = float_of_int i *. r_seg in
    (* capacitance at the node after segment i: half of segment i plus
       half of segment i+1 (or the load at the end). *)
    let c_here =
      if i = segments then (0.5 *. c_seg) +. c_load
      else c_seg
    in
    delay := !delay +. (upstream *. c_here)
  done;
  !delay

let distributed_limit ~r_total ~c_total = 0.5 *. r_total *. c_total
let threshold_50_factor = 0.4
let lumped_50_factor = log 2.0
