(** Per-wire target-delay requirement models.

    The paper (Section 4.1) assigns wire [i] of length [l_i] the target
    [d_i = (l_i / l_max) * (1 / f_c)]: delay budgets linear in length,
    normalized so the longest wire gets one clock period.  Its Section 6
    notes this is pessimistic for short wires (actual unbuffered delay is
    quadratic in length) and announces a study of alternatives; the
    [Affine] and [Quadratic_blend] models below implement the two natural
    candidates and are exercised by the extension benches. *)

type t =
  | Linear
      (** [d(l) = (l / l_max) / f_c] — the paper's model. *)
  | Affine of { floor : float }
      (** [d(l) = floor + (l / l_max) * (1/f_c - floor)]: a fixed delay
          floor (e.g. a couple of FO4s) plus a linear span, acknowledging
          that no wire can beat device delay. *)
  | Quadratic_blend of { weight : float }
      (** [d(l) = (1/f_c) * ((1-w) * (l/l_max) + w * (l/l_max)^2)]:
          interpolates between the paper's linear budget ([w = 0]) and a
          fully quadratic one ([w = 1]) matching unbuffered-delay scaling. *)
[@@deriving show, eq]

val delay : t -> clock:float -> l_max:float -> float -> float
(** [delay t ~clock ~l_max l] is the target delay in seconds for a wire of
    length [l] meters.
    @raise Invalid_argument if [clock <= 0], [l_max <= 0], [l < 0] or
    [l > l_max *. (1. +. 1e-9)]. *)

val monotone_check : t -> clock:float -> l_max:float -> bool
(** True when the model assigns non-decreasing targets to longer wires
    (sampled check; all three models are monotone for valid parameters). *)
