lib/delay/elmore.pp.ml:
