lib/delay/elmore.pp.mli:
