lib/delay/target.pp.ml: Float Ir_phys Ppx_deriving_runtime
