lib/delay/model.pp.ml: Float Ir_tech Ppx_deriving_runtime
