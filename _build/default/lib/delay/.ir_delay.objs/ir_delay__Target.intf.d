lib/delay/target.pp.mli: Ppx_deriving_runtime
