lib/delay/model.pp.mli: Ir_tech Ppx_deriving_runtime
