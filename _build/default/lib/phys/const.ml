let eps0 = 8.854187817e-12
let rho_cu_bulk = 1.68e-8
let rho_al_bulk = 2.65e-8
let k_sio2 = 3.9
let boltzmann = 1.380649e-23
let room_temperature = 300.0
