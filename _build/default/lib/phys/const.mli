(** Physical constants used throughout the interconnect models.

    All values are in SI units.  The constants here are process-independent;
    process-dependent values (resistivity after barrier/size effects, device
    parasitics, ...) live in {!module:Ir_tech}. *)

val eps0 : float
(** Vacuum permittivity, in F/m. *)

val rho_cu_bulk : float
(** Bulk resistivity of copper at room temperature, in Ohm-m. *)

val rho_al_bulk : float
(** Bulk resistivity of aluminum at room temperature, in Ohm-m.  The 180nm
    node of the paper's era used Al metallization. *)

val k_sio2 : float
(** Relative permittivity of undoped silicon dioxide.  This is the paper's
    baseline ILD permittivity (Table 2, [k] = 3.9). *)

val boltzmann : float
(** Boltzmann constant, in J/K. *)

val room_temperature : float
(** Nominal operating temperature used for resistivity derating, in K. *)
