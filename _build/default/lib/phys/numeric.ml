let close ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  let diff = Float.abs (a -. b) in
  diff <= atol || diff <= rtol *. Float.max (Float.abs a) (Float.abs b)

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let linspace a b n =
  if n < 2 then invalid_arg "Numeric.linspace: need n >= 2";
  let step = (b -. a) /. float_of_int (n - 1) in
  List.init n (fun i -> a +. (float_of_int i *. step))

let frange ~start ~stop ~step =
  if step = 0.0 then invalid_arg "Numeric.frange: zero step";
  let keep x =
    if step > 0.0 then x <= stop +. (0.5 *. step)
    else x >= stop +. (0.5 *. step)
  in
  let rec loop acc x = if keep x then loop (x :: acc) (x +. step) else acc in
  List.rev (loop [] start)

let integrate ?(n = 512) f a b =
  let n = if n mod 2 = 0 then n else n + 1 in
  if n < 2 then invalid_arg "Numeric.integrate: need n >= 2";
  let h = (b -. a) /. float_of_int n in
  let rec loop i acc =
    if i > n then acc
    else
      let x = a +. (float_of_int i *. h) in
      let w =
        if i = 0 || i = n then 1.0 else if i mod 2 = 1 then 4.0 else 2.0
      in
      loop (i + 1) (acc +. (w *. f x))
  in
  loop 0 0.0 *. h /. 3.0

let bisect ?(tol = 1e-12) ?(max_iter = 200) f lo hi =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then
    invalid_arg "Numeric.bisect: no sign change over the bracket"
  else
    let rec loop lo hi flo i =
      let mid = 0.5 *. (lo +. hi) in
      if i >= max_iter || hi -. lo <= tol *. (1.0 +. Float.abs mid) then mid
      else
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if flo *. fmid < 0.0 then loop lo mid flo (i + 1)
        else loop mid hi fmid (i + 1)
    in
    loop lo hi flo 0

let golden_min ?(tol = 1e-10) f a b =
  (* Invariant: a < c < d < b with c, d at golden-ratio positions. *)
  let invphi = (Float.sqrt 5.0 -. 1.0) /. 2.0 in
  let probe_lo a b = b -. (invphi *. (b -. a)) in
  let probe_hi a b = a +. (invphi *. (b -. a)) in
  let rec loop a b c d fc fd =
    if Float.abs (b -. a) <= tol *. (1.0 +. Float.abs a +. Float.abs b) then
      0.5 *. (a +. b)
    else if fc < fd then
      let b = d in
      let d = c and fd = fc in
      let c = probe_lo a b in
      loop a b c d (f c) fd
    else
      let a = c in
      let c = d and fc = fd in
      let d = probe_hi a b in
      loop a b c d fc (f d)
  in
  let c = probe_lo a b and d = probe_hi a b in
  loop a b c d (f c) (f d)

let int_search_min f lo hi =
  if lo > hi then invalid_arg "Numeric.int_search_min: empty range";
  let rec loop lo hi =
    if hi - lo <= 2 then begin
      let best = ref lo and best_v = ref (f lo) in
      for i = lo + 1 to hi do
        let v = f i in
        if v < !best_v then begin
          best := i;
          best_v := v
        end
      done;
      !best
    end
    else
      let m1 = lo + ((hi - lo) / 3) in
      let m2 = hi - ((hi - lo) / 3) in
      if f m1 <= f m2 then loop lo m2 else loop m1 hi
  in
  loop lo hi

let sum_floats xs =
  let sum = ref 0.0 and comp = ref 0.0 in
  let add x =
    let y = x -. !comp in
    let t = !sum +. y in
    comp := t -. !sum -. y;
    sum := t
  in
  List.iter add xs;
  !sum
