lib/phys/units.ml:
