lib/phys/numeric.ml: Float List
