lib/phys/numeric.mli:
