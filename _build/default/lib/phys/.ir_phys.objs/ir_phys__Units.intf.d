lib/phys/units.mli:
