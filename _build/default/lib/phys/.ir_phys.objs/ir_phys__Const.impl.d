lib/phys/const.ml:
