lib/phys/const.mli:
