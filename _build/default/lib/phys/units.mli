(** Unit conversion helpers.

    The library computes internally in SI units (meters, seconds, farads,
    ohms).  Technology tables and papers quote dimensions in micrometers and
    nanometers, frequencies in MHz/GHz, delays in ps/ns; these helpers keep
    conversion sites explicit and greppable. *)

val um : float -> float
(** [um x] is [x] micrometers in meters. *)

val nm : float -> float
(** [nm x] is [x] nanometers in meters. *)

val mm : float -> float
(** [mm x] is [x] millimeters in meters. *)

val to_um : float -> float
(** [to_um m] converts meters to micrometers. *)

val to_nm : float -> float
(** [to_nm m] converts meters to nanometers. *)

val to_mm2 : float -> float
(** [to_mm2 a] converts an area in m^2 to mm^2. *)

val mhz : float -> float
(** [mhz x] is [x] MHz in Hz. *)

val ghz : float -> float
(** [ghz x] is [x] GHz in Hz. *)

val ps : float -> float
(** [ps x] is [x] picoseconds in seconds. *)

val ns : float -> float
(** [ns x] is [x] nanoseconds in seconds. *)

val to_ps : float -> float
(** [to_ps s] converts seconds to picoseconds. *)

val to_ns : float -> float
(** [to_ns s] converts seconds to nanoseconds. *)

val ff : float -> float
(** [ff x] is [x] femtofarads in farads. *)

val to_ff : float -> float
(** [to_ff f] converts farads to femtofarads. *)
