(** Small numeric toolkit: comparisons, grids, quadrature, root finding and
    1-D minimization.

    These routines back the wire-length-distribution normalization
    (quadrature), repeater sizing cross-checks (minimization) and various
    calibration helpers.  They are deliberately simple, deterministic and
    dependency-free. *)

val close : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [close a b] is true when [a] and [b] agree within a relative tolerance
    [rtol] (default [1e-9]) or absolute tolerance [atol] (default [1e-12]). *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] limits [x] to the closed interval [lo, hi].
    Requires [lo <= hi]. *)

val linspace : float -> float -> int -> float list
(** [linspace a b n] is [n] evenly spaced points from [a] to [b] inclusive.
    Requires [n >= 2]. *)

val frange : start:float -> stop:float -> step:float -> float list
(** [frange ~start ~stop ~step] enumerates [start, start+step, ...] while the
    value has not passed [stop] (inclusive within half a step).  [step] may be
    negative for descending ranges. *)

val integrate : ?n:int -> (float -> float) -> float -> float -> float
(** [integrate f a b] approximates the integral of [f] over [a, b] with
    composite Simpson quadrature using [n] panels (default 512, forced even).
    [a > b] yields the negated integral. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f lo hi] finds a root of [f] in [lo, hi] by bisection.
    Requires [f lo] and [f hi] to have opposite signs (zero counts as
    either).  @raise Invalid_argument otherwise. *)

val golden_min :
  ?tol:float -> (float -> float) -> float -> float -> float
(** [golden_min f a b] returns an abscissa minimizing the unimodal function
    [f] over [a, b] via golden-section search. *)

val int_search_min : (int -> float) -> int -> int -> int
(** [int_search_min f lo hi] returns the integer in [lo, hi] minimizing [f],
    assuming [f] is unimodal (ternary search); exact for unimodal [f].
    Requires [lo <= hi]. *)

val sum_floats : float list -> float
(** Kahan-compensated summation, stable for long lists of small terms. *)
