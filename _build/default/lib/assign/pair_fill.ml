type result = { rep_area : float; rep_count : int; routing_area : float }
[@@deriving show, eq]

let assign t ~pair ~prefix_wires ~reps_above ~meet_lo ~meet_hi ~extra_hi
    ~rep_budget =
  let n = Problem.n_bunches t in
  if not (0 <= meet_lo && meet_lo <= meet_hi && meet_hi <= extra_hi
          && extra_hi <= n) then
    invalid_arg "Pair_fill.assign: malformed bunch ranges";
  if pair < 0 || pair >= Problem.n_pairs t then
    invalid_arg "Pair_fill.assign: pair out of range";
  match Problem.meeting_cost t ~pair ~lo:meet_lo ~hi:meet_hi with
  | None -> None
  | Some (rep_area, rep_count) ->
      if rep_area > rep_budget then None
      else
        let routing_area =
          Problem.interval_area t ~pair ~lo:meet_lo ~hi:extra_hi
        in
        let blocked =
          Problem.blocked t ~pair ~wires_above:prefix_wires
            ~reps_above
        in
        if routing_area +. blocked > Problem.capacity t then None
        else Some { rep_area; rep_count; routing_area }
