lib/assign/greedy_fill.pp.mli: Ppx_deriving_runtime Problem
