lib/assign/greedy_fill.pp.ml: Array Float Ir_ia List Option Ppx_deriving_runtime Problem
