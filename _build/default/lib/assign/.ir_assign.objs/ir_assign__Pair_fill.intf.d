lib/assign/pair_fill.pp.mli: Ppx_deriving_runtime Problem
