lib/assign/problem.pp.mli: Ir_delay Ir_ia Ir_wld
