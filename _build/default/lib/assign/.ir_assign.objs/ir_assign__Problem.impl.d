lib/assign/problem.pp.ml: Array Ir_delay Ir_ia Ir_rc Ir_tech Ir_wld
