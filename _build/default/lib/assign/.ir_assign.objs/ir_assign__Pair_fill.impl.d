lib/assign/pair_fill.pp.ml: Ppx_deriving_runtime Problem
