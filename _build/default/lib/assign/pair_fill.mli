(** Delay-constrained assignment of wires to a single layer-pair — the
    paper's Algorithm 4 (procedure [wire_assign], the recurrence's M' term).

    Assigns bunches [meet_lo .. extra_hi - 1] to one pair, of which the
    longest [meet_lo .. meet_hi - 1] must meet their targets within a
    repeater-area allowance.  The paper inserts uniform-size repeaters
    incrementally, longest wire first, until each wire meets its target;
    because Eq. (3) is convex in the repeater count, that incremental
    insertion uses exactly the per-wire minimum, so the procedure reduces
    to interval queries on the precomputed tables. *)

type result = {
  rep_area : float;  (** r2: repeater area actually used, m^2 *)
  rep_count : int;  (** repeaters inserted *)
  routing_area : float;  (** wire area consumed on the pair, m^2 *)
}
[@@deriving show, eq]

val assign :
  Problem.t ->
  pair:int ->
  prefix_wires:int ->
  reps_above:int ->
  meet_lo:int ->
  meet_hi:int ->
  extra_hi:int ->
  rep_budget:float ->
  result option
(** [assign t ~pair ~prefix_wires ~reps_above ~meet_lo ~meet_hi ~extra_hi
    ~rep_budget] returns [None] when (a) some bunch in the meeting range
    cannot reach its target on this pair at any repeater count, (b) the
    minimal repeater area exceeds [rep_budget], or (c) the bunches'
    routing area plus the via blockage from the [prefix_wires] wires and
    [reps_above] repeaters above exceeds the pair capacity.
    Requires [meet_lo <= meet_hi <= extra_hi].
    @raise Invalid_argument on malformed ranges. *)
