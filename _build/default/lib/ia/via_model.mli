(** Via blockage models.

    The paper's via accounting (its reference [3], Chen–Davis–Meindl,
    IEEE TVLSI 2000) charges routing area on every layer a via stack
    crosses.  Two models of the charged area per via are provided:

    - {!Pad}: a square landing pad of twice the drawn via width (via plus
      enclosure) — the library default, matching
      {!Ir_tech.Geometry.via_area}.
    - {!Track}: the compact physical model's observation that a via does
      not just consume its pad — it interrupts a routing {e track}, so the
      blocked area is the pad dilated by the layer's wire spacing in one
      direction and by the full routing pitch in the other:
      [(2 w_v + s_j) * (2 w_v + p_j)].  This is strictly more
      pessimistic and is what makes via blockage a first-order effect in
      layer-count studies (the paper's footnote 1). *)

type t = Pad | Track [@@deriving show, eq]

val blocked_area_per_via : t -> Ir_tech.Geometry.t -> float
(** Area charged on a layer-pair of the given geometry for one via stack
    crossing it, m^2. *)

val ratio : Ir_tech.Geometry.t -> float
(** [Track] blocked area over [Pad] blocked area for a geometry — the
    pessimism factor of the compact model (> 1). *)
