(** Interconnect architectures: an ordered set of layer-pairs over a die.

    The architecture fixes everything the rank computation needs about the
    target stack: the layer-pairs top-down (longest wires go to the topmost
    pair), their capacities, the via-blockage accounting, and the
    repeater-area budget.

    {b Capacity.} Each layer-pair consists of two routing layers of die
    area [A_d] each; an L-shaped wire of length [l] puts one segment on
    each layer and consumes [l * (W_j + S_j)] of the pair's total
    [2 * A_d * utilization] routing area (paper Section 3's assignment
    arithmetic, with both layers of the pair available).

    {b Via blockage.} Every wire connects its endpoints down to gates, so a
    wire assigned to pair [j] blocks [vias_per_wire] via pads on every pair
    strictly below [j]; every repeater inserted in a wire of pair [j]
    similarly blocks one via-stack pad on every pair below (footnote 1 and
    Section 4.2/4.3 of the paper, after Chen–Davis–Meindl). *)

type structure = {
  local_pairs : int;
  semi_global_pairs : int;
  global_pairs : int;
}
[@@deriving show, eq]

val baseline_structure : structure
(** The paper's Table 2 baseline: 2 semi-global pairs and 1 global pair
    plus one local pair (Table 3 specifies M1 geometry; the local pair
    carries the short-wire mass of the WLD). *)

type t = {
  design : Ir_tech.Design.t;
  stack : Ir_tech.Stack.t;
  device : Ir_tech.Device.t;
  materials : Materials.t;
  structure : structure;
  pairs : Layer_pair.t array;  (** index 0 = topmost pair *)
  die_area : float;  (** A_d, m^2 *)
  utilization : float;  (** routable fraction of each layer *)
  vias_per_wire : int;  (** v: via pads a wire blocks per pair below *)
  via_model : Via_model.t;  (** how much area one via stack blocks *)
}
[@@deriving show]

val make :
  ?structure:structure ->
  ?materials:Materials.t ->
  ?device:Ir_tech.Device.t ->
  ?stack:Ir_tech.Stack.t ->
  ?utilization:float ->
  ?vias_per_wire:int ->
  ?via_model:Via_model.t ->
  design:Ir_tech.Design.t ->
  unit ->
  t
(** Builds the architecture for the design's node.  Defaults:
    {!baseline_structure}, {!Materials.default}, node-default device,
    the node's Table 3 stack (override [stack] for synthetic studies),
    [utilization = 1.0], [vias_per_wire = 3] (two endpoint via stacks plus
    the L-corner via), [via_model = Pad].
    @raise Invalid_argument if the structure requests more pairs of a class
    than the node's stack provides, or requests no pairs at all. *)

val custom :
  ?materials:Materials.t ->
  ?device:Ir_tech.Device.t ->
  ?utilization:float ->
  ?vias_per_wire:int ->
  ?via_model:Via_model.t ->
  design:Ir_tech.Design.t ->
  pairs:(Ir_tech.Metal_class.t * Ir_tech.Geometry.t) list ->
  unit ->
  t
(** Builds an architecture from an explicit top-down list of layer-pair
    geometries — each pair gets its own geometry, unconstrained by the
    node's Table 3 stack.  Used by the n-tier generator and the direct
    optimizer; the class labels are for reporting only.
    @raise Invalid_argument on an empty pair list. *)

val pair_count : t -> int

val pair : t -> int -> Layer_pair.t
(** [pair t j] is the [j]-th pair from the top, [0 <= j < pair_count t]. *)

val pair_capacity : t -> float
(** Routing area available on each pair before via blockage:
    [2 * die_area * utilization], m^2. *)

val repeater_budget : t -> float
(** The design's repeater-area budget A_R, m^2. *)

val blocked_area : t -> pair_index:int -> wires_above:int -> repeaters_above:int -> float
(** Total via-blocked area on pair [pair_index] given the number of wires
    and repeaters living on pairs strictly above it: the paper's
    [A_v,j-1 + A_u,j-1]. *)

val with_materials : t -> Materials.t -> t
(** Rebuilds the architecture (and all derived electricals) with different
    materials; design, structure and device are preserved. *)

val with_design : t -> Ir_tech.Design.t -> t
(** Rebuilds the architecture for a modified design (e.g. different clock
    or repeater fraction). *)

val pp_summary : Format.formatter -> t -> unit
(** One-line-per-pair summary: class, pitch, r̄, c̄, s_opt. *)
