type t = Pad | Track [@@deriving show, eq]

let blocked_area_per_via model (g : Ir_tech.Geometry.t) =
  let pad = 2.0 *. g.via_width in
  match model with
  | Pad -> pad *. pad
  | Track -> (pad +. g.spacing) *. (pad +. Ir_tech.Geometry.pitch g)

let ratio g =
  blocked_area_per_via Track g /. blocked_area_per_via Pad g
