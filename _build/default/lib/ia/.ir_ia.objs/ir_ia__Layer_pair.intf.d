lib/ia/layer_pair.pp.mli: Ir_delay Ir_tech Materials Ppx_deriving_runtime
