lib/ia/via_model.pp.ml: Ir_tech Ppx_deriving_runtime
