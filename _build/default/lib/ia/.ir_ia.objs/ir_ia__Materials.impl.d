lib/ia/materials.pp.ml: Ir_phys Ir_rc Ir_tech Ppx_deriving_runtime
