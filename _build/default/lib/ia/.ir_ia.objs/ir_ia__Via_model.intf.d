lib/ia/via_model.pp.mli: Ir_tech Ppx_deriving_runtime
