lib/ia/arch.pp.ml: Array Format Ir_delay Ir_phys Ir_tech Layer_pair List Materials Ppx_deriving_runtime Printf Via_model
