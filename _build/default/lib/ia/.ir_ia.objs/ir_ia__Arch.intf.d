lib/ia/arch.pp.mli: Format Ir_tech Layer_pair Materials Ppx_deriving_runtime Via_model
