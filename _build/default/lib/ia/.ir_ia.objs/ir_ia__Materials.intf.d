lib/ia/materials.pp.mli: Ir_rc Ir_tech Ppx_deriving_runtime
