lib/ia/layer_pair.pp.ml: Ir_delay Ir_rc Ir_tech Materials Ppx_deriving_runtime
