type t = {
  k : float;
  miller : float;
  cap_model : Ir_rc.Capacitance.model;
  rho : float option;
}
[@@deriving show, eq]

let check t =
  if not (t.k > 0.0) then invalid_arg "Materials: k must be > 0";
  if t.miller < 0.0 then invalid_arg "Materials: miller must be >= 0";
  (match t.rho with
  | Some rho when not (rho > 0.0) ->
      invalid_arg "Materials: rho must be > 0"
  | _ -> ());
  t

let v ?(k = Ir_phys.Const.k_sio2) ?(miller = 2.0)
    ?(cap_model = Ir_rc.Capacitance.default_model) ?rho () =
  check { k; miller; cap_model; rho }

let default = v ()
let with_k t k = check { t with k }
let with_miller t miller = check { t with miller }

let resistivity t node =
  match t.rho with Some rho -> rho | None -> Ir_tech.Node.resistivity node
