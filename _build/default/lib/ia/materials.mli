(** Material and coupling assumptions of an interconnect architecture.

    These are the knobs the paper's Table 4 sweeps: ILD permittivity [k]
    (column K) and Miller coupling factor (column M), plus the capacitance
    model and an optional resistivity override for material studies
    (e.g. Cu vs Al). *)

type t = {
  k : float;  (** relative ILD permittivity (baseline 3.9, SiO2) *)
  miller : float;  (** Miller coupling factor (baseline 2.0) *)
  cap_model : Ir_rc.Capacitance.model;
  rho : float option;  (** metal resistivity override, Ohm-m *)
}
[@@deriving show, eq]

val default : t
(** The paper's Table 2 baseline: [k = 3.9], [miller = 2.0], Sakurai
    capacitance model, node-default resistivity. *)

val v :
  ?k:float ->
  ?miller:float ->
  ?cap_model:Ir_rc.Capacitance.model ->
  ?rho:float ->
  unit ->
  t
(** @raise Invalid_argument if [k <= 0], [miller < 0] or [rho <= 0]. *)

val with_k : t -> float -> t
val with_miller : t -> float -> t

val resistivity : t -> Ir_tech.Node.t -> float
(** The override if present, otherwise {!Ir_tech.Node.resistivity}. *)
