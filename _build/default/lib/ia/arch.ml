type structure = {
  local_pairs : int;
  semi_global_pairs : int;
  global_pairs : int;
}
[@@deriving show, eq]

let baseline_structure =
  { local_pairs = 1; semi_global_pairs = 2; global_pairs = 1 }

type t = {
  design : Ir_tech.Design.t;
  stack : Ir_tech.Stack.t;
  device : Ir_tech.Device.t;
  materials : Materials.t;
  structure : structure;
  pairs : Layer_pair.t array;
  die_area : float;
  utilization : float;
  vias_per_wire : int;
  via_model : Via_model.t;
}
[@@deriving show]

let build_pairs ~stack ~device ~materials ~node structure =
  let mk cls n =
    List.init n (fun _ ->
        Layer_pair.make ~device ~materials ~node ~cls
          (Ir_tech.Stack.geometry stack cls))
  in
  (* Topmost first: global, then semi-global, then local. *)
  Array.of_list
    (mk Ir_tech.Metal_class.Global structure.global_pairs
    @ mk Ir_tech.Metal_class.Semi_global structure.semi_global_pairs
    @ mk Ir_tech.Metal_class.Local structure.local_pairs)

let make ?(structure = baseline_structure) ?(materials = Materials.default)
    ?device ?stack ?(utilization = 1.0) ?(vias_per_wire = 3)
    ?(via_model = Via_model.Pad) ~design () =
  let node = design.Ir_tech.Design.node in
  let stack =
    match stack with Some s -> s | None -> Ir_tech.Stack.of_node node
  in
  let device =
    match device with Some d -> d | None -> Ir_tech.Device.of_node node
  in
  let check_pairs cls requested =
    let available = Ir_tech.Stack.max_pairs stack cls in
    if requested < 0 then
      invalid_arg "Arch.make: negative pair count";
    if requested > available then
      invalid_arg
        (Printf.sprintf "Arch.make: %d %s pairs requested, stack provides %d"
           requested
           (Ir_tech.Metal_class.to_string cls)
           available)
  in
  check_pairs Ir_tech.Metal_class.Local structure.local_pairs;
  check_pairs Ir_tech.Metal_class.Semi_global structure.semi_global_pairs;
  check_pairs Ir_tech.Metal_class.Global structure.global_pairs;
  let total =
    structure.local_pairs + structure.semi_global_pairs
    + structure.global_pairs
  in
  if total = 0 then invalid_arg "Arch.make: architecture has no layer-pairs";
  if not (utilization > 0.0 && utilization <= 1.0) then
    invalid_arg "Arch.make: utilization must lie in (0, 1]";
  if vias_per_wire < 0 then
    invalid_arg "Arch.make: vias_per_wire must be >= 0";
  {
    design;
    stack;
    device;
    materials;
    structure;
    pairs = build_pairs ~stack ~device ~materials ~node structure;
    die_area = Ir_tech.Design.die_area design;
    utilization;
    vias_per_wire;
    via_model;
  }

let custom ?(materials = Materials.default) ?device
    ?(utilization = 1.0) ?(vias_per_wire = 3) ?(via_model = Via_model.Pad)
    ~design ~pairs () =
  if pairs = [] then invalid_arg "Arch.custom: architecture has no layer-pairs";
  if not (utilization > 0.0 && utilization <= 1.0) then
    invalid_arg "Arch.custom: utilization must lie in (0, 1]";
  if vias_per_wire < 0 then
    invalid_arg "Arch.custom: vias_per_wire must be >= 0";
  let node = design.Ir_tech.Design.node in
  let device =
    match device with Some d -> d | None -> Ir_tech.Device.of_node node
  in
  let count cls =
    List.length (List.filter (fun (c, _) -> c = cls) pairs)
  in
  {
    design;
    stack = Ir_tech.Stack.of_node node;
    device;
    materials;
    structure =
      {
        local_pairs = count Ir_tech.Metal_class.Local;
        semi_global_pairs = count Ir_tech.Metal_class.Semi_global;
        global_pairs = count Ir_tech.Metal_class.Global;
      };
    pairs =
      Array.of_list
        (List.map
           (fun (cls, geom) ->
             Layer_pair.make ~device ~materials ~node ~cls geom)
           pairs);
    die_area = Ir_tech.Design.die_area design;
    utilization;
    vias_per_wire;
    via_model;
  }

let pair_count t = Array.length t.pairs

let pair t j =
  if j < 0 || j >= pair_count t then invalid_arg "Arch.pair: index out of range";
  t.pairs.(j)

let pair_capacity t = 2.0 *. t.die_area *. t.utilization
let repeater_budget t = Ir_tech.Design.repeater_area t.design

let blocked_area t ~pair_index ~wires_above ~repeaters_above =
  if wires_above < 0 || repeaters_above < 0 then
    invalid_arg "Arch.blocked_area: negative counts";
  let p = pair t pair_index in
  let pad = Via_model.blocked_area_per_via t.via_model p.Layer_pair.geom in
  let wire_pads = float_of_int (t.vias_per_wire * wires_above) in
  let repeater_pads = float_of_int repeaters_above in
  (wire_pads +. repeater_pads) *. pad

let with_materials t materials =
  make ~structure:t.structure ~materials ~device:t.device ~stack:t.stack
    ~utilization:t.utilization ~vias_per_wire:t.vias_per_wire
    ~via_model:t.via_model ~design:t.design ()

let with_design t design =
  make ~structure:t.structure ~materials:t.materials ~device:t.device
    ~stack:t.stack ~utilization:t.utilization
    ~vias_per_wire:t.vias_per_wire ~via_model:t.via_model ~design ()

let pp_summary ppf t =
  let open Format in
  fprintf ppf "@[<v>architecture on %s: %d pairs, die %.2f mm^2, budget %.3f mm^2@,"
    (Ir_tech.Node.name t.design.Ir_tech.Design.node)
    (pair_count t)
    (Ir_phys.Units.to_mm2 t.die_area)
    (Ir_phys.Units.to_mm2 (repeater_budget t));
  Array.iteri
    (fun j (p : Layer_pair.t) ->
      fprintf ppf
        "  pair %d (%s): pitch %.3f um, r=%.3g ohm/m, c=%.3g F/m, s_opt=%.1f@,"
        j
        (Ir_tech.Metal_class.to_string p.cls)
        (Ir_phys.Units.to_um (Layer_pair.pitch p))
        p.line.Ir_delay.Model.r_per_m p.line.Ir_delay.Model.c_per_m p.s_opt)
    t.pairs;
  fprintf ppf "@]"
