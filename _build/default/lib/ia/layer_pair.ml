type t = {
  cls : Ir_tech.Metal_class.t;
  geom : Ir_tech.Geometry.t;
  line : Ir_delay.Model.line;
  s_opt : float;
  repeater_area : float;
  via_area : float;
}
[@@deriving show, eq]

let make ~device ~materials ~node ~cls geom =
  let rho = Materials.resistivity materials node in
  let r_per_m = Ir_rc.Resistance.per_m ~rho geom in
  let c_per_m =
    Ir_rc.Capacitance.effective_per_m ~model:materials.Materials.cap_model
      ~k:materials.Materials.k ~miller:materials.Materials.miller geom
  in
  let line = Ir_delay.Model.line ~r_per_m ~c_per_m in
  let s_opt = Ir_delay.Model.s_opt device line in
  {
    cls;
    geom;
    line;
    s_opt;
    repeater_area = s_opt *. device.Ir_tech.Device.area;
    via_area = Ir_tech.Geometry.via_area geom;
  }

let pitch t = Ir_tech.Geometry.pitch t.geom
let wire_area t l = l *. pitch t
