(** A layer-pair with its derived electrical characteristics.

    A layer-pair is two adjacent metal layers of the same class, one routing
    horizontally and one vertically, so every L-shaped wire lives entirely
    inside one pair (paper Section 3).  All wires of a pair share the pair's
    width/spacing/thickness and hence its r̄, c̄, optimal repeater size and
    repeater-area unit. *)

type t = {
  cls : Ir_tech.Metal_class.t;
  geom : Ir_tech.Geometry.t;
  line : Ir_delay.Model.line;  (** r̄_j, c̄_j *)
  s_opt : float;  (** uniform repeater size s_opt_j for this pair (Eq. 4) *)
  repeater_area : float;  (** silicon area of one such repeater, m^2 *)
  via_area : float;  (** area blocked by one via crossing this pair, m^2 *)
}
[@@deriving show, eq]

val make :
  device:Ir_tech.Device.t ->
  materials:Materials.t ->
  node:Ir_tech.Node.t ->
  cls:Ir_tech.Metal_class.t ->
  Ir_tech.Geometry.t ->
  t
(** Derives r̄ from geometry and resistivity, c̄ from the materials'
    capacitance model (k, Miller), then the pair's repeater size and area. *)

val pitch : t -> float
(** Routing pitch [width + spacing] of the pair, m. *)

val wire_area : t -> float -> float
(** [wire_area t l] is the routing area an L-shaped wire of length [l]
    meters consumes on this pair: [l * pitch]. *)
