(** Greedy top-down rank computation — the suboptimal baseline of the
    paper's Figure 2.

    Wires are assigned strictly top-down: the topmost layer-pair is packed
    with as many of the longest wires as its capacity allows, then the next
    pair, and so on.  Repeaters are inserted longest-wire-first, each wire
    taking its minimal count, until the budget runs out; once a wire fails
    (budget exhausted or target unreachable on its pair), no further wire
    counts toward the rank, though all wires are still placed.

    The paper's Figure 2 shows why this is suboptimal: greedy fills the
    expensive top pair and burns the repeater budget there, while the
    optimal assignment moves wires to cheaper pairs.  Property tests assert
    [greedy rank <= DP rank] everywhere. *)

val compute : Ir_assign.Problem.t -> Outcome.t

val sweep :
  ?eligible:(int -> int -> bool) -> Ir_assign.Problem.t -> Outcome.t
(** The underlying top-down sweep with an intake predicate
    [eligible pair bunch]; a pair passes ineligible bunches to the pair
    below (the bottom pair takes everything).  {!compute} is
    [sweep ~eligible:(fun _ _ -> true)]; {!Rank_threshold} supplies
    length thresholds. *)
