module P = Ir_assign.Problem

let characteristic_length problem j =
  let arch = P.arch problem in
  let pair = Ir_ia.Arch.pair arch j in
  let device = arch.Ir_ia.Arch.device in
  let line = pair.Ir_ia.Layer_pair.line in
  let tau0 =
    0.7 *. device.Ir_tech.Device.r_o
    *. (device.Ir_tech.Device.c_o +. device.Ir_tech.Device.c_p)
  in
  sqrt
    (tau0
    /. (0.4 *. line.Ir_delay.Model.r_per_m *. line.Ir_delay.Model.c_per_m))

let compute ?(beta = 0.25) problem =
  if not (beta > 0.0) then
    invalid_arg "Rank_threshold.compute: beta must be > 0";
  let m = P.n_pairs problem in
  (* Per-pair thresholds, forced non-increasing from the top so that the
     assignment is a contiguous split by length. *)
  let thresholds = Array.make m 0.0 in
  for j = 0 to m - 1 do
    let t = beta *. characteristic_length problem j in
    thresholds.(j) <- if j = 0 then t else Float.min thresholds.(j - 1) t
  done;
  let eligible j b = P.bunch_length problem b >= thresholds.(j) in
  Rank_greedy.sweep ~eligible problem
