(** Exhaustive-search rank oracle for small instances.

    Enumerates every way to split the bunch sequence into contiguous
    per-pair intervals (the paper's constraint (i): longer wires on higher
    pairs) and, for each split, every meeting-prefix length; checks the
    repeater budget and per-pair capacities exactly as the DP does.  This
    is the ground truth the property tests compare {!Rank_dp} and
    {!Rank_greedy} against.

    Cost is O(C(n+m-1, m-1) * n * m); keep [n_bunches] below ~12.  Because
    bunches are atomic here while {!Ir_assign.Greedy_fill} may split a
    bunch across pairs, exact agreement with the DP is guaranteed only for
    instances with single-wire bunches (the tests use those). *)

val compute : ?max_bunches:int -> Ir_assign.Problem.t -> Outcome.t
(** @raise Invalid_argument if the instance has more than [max_bunches]
    (default 14) bunches. *)
