(** Paper-literal rank computation: the 4-D boolean dynamic program of the
    paper's Section 4 (Figures 3-5, recurrence Eq. 1).

    The boolean table [M[i, j, r, i']] states whether the top [i] bunches
    can occupy layer-pairs [1..j] with the top [i'] meeting their targets
    within [r] discrete units of repeater area, while the remaining bunches
    still fit below (the M'' term, {!Ir_assign.Greedy_fill}).  Repeater
    area is discretized into [r_steps] units of [budget / r_steps], and
    repeater counts are recovered from areas via the paper's Eq. (5)
    [z_r = r / s_j].

    This is a fidelity artifact: it follows the paper's O(m n^4 A_R^3)
    construction and is only practical for a dozen bunches — exactly the
    regime of the paper's Figure 2 counterexample, which the tests
    reproduce with it.  {!Rank_dp} is the production algorithm; on aligned
    instances (uniform repeater areas, costs commensurate with the
    quantum) the two agree, and in general
    [Rank_exact <= Rank_dp <= Rank_exact + discretization slack]. *)

val compute : ?r_steps:int -> ?max_bunches:int -> Ir_assign.Problem.t -> Outcome.t
(** [compute problem] runs the literal DP with [r_steps] repeater-area
    units (default 16).
    @raise Invalid_argument if the instance exceeds [max_bunches]
    (default 14) bunches. *)
