lib/core/rank_greedy.pp.ml: Float Ir_assign Ir_ia Outcome
