lib/core/rank_brute.pp.ml: Array Ir_assign Ir_ia Outcome
