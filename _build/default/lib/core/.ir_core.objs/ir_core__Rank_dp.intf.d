lib/core/rank_dp.pp.mli: Ir_assign Outcome
