lib/core/rank_exact.pp.mli: Ir_assign Outcome
