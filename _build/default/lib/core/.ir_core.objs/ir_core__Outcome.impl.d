lib/core/outcome.pp.ml: Format Ppx_deriving_runtime
