lib/core/assignment.pp.ml: Array Format Ir_assign Ir_ia Ir_tech List Outcome Ppx_deriving_runtime Printf Rank_dp String
