lib/core/assignment.pp.mli: Format Ir_assign Outcome Ppx_deriving_runtime
