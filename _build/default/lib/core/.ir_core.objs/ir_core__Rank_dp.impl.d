lib/core/rank_dp.pp.ml: Array Float Ir_assign List Option Outcome
