lib/core/rank.pp.ml: Ir_assign Ir_ia Ir_tech Ir_wld Ppx_deriving_runtime Rank_dp Rank_exact Rank_greedy
