lib/core/rank_greedy.pp.mli: Ir_assign Outcome
