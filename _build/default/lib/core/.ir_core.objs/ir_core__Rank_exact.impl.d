lib/core/rank_exact.pp.ml: Array Float Ir_assign Ir_ia Outcome
