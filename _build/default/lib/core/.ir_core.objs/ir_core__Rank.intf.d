lib/core/rank.pp.mli: Ir_assign Ir_delay Ir_ia Ir_tech Outcome Ppx_deriving_runtime
