lib/core/rank_threshold.pp.ml: Array Float Ir_assign Ir_delay Ir_ia Ir_tech Rank_greedy
