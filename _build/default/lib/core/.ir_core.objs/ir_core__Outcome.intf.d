lib/core/outcome.pp.mli: Format Ppx_deriving_runtime
