lib/core/rank_brute.pp.mli: Ir_assign Outcome
