lib/core/rank_threshold.pp.mli: Ir_assign Outcome
