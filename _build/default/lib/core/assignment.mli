(** Witness extraction: the actual optimal assignment behind a rank.

    {!Rank_dp.compute} returns only the metric; this module re-runs the DP
    keeping back-pointers and returns the full witness — which bunch
    interval landed on which layer-pair, with how many repeaters — plus
    per-pair utilization accounting.  Used by the reporting CLI, the
    examples, and the tests (which verify the witness actually satisfies
    every constraint the rank claims). *)

type pair_load = {
  pair : int;  (** layer-pair index, 0 = topmost *)
  bunch_lo : int;  (** meeting bunches [bunch_lo .. bunch_hi) on this pair *)
  bunch_hi : int;
  wires : int;  (** wires of those bunches *)
  repeaters : int;  (** repeaters inserted in them *)
  repeater_area : float;  (** m^2 *)
  routing_area : float;  (** routing area consumed by them, m^2 *)
}
[@@deriving show, eq]

type t = {
  outcome : Outcome.t;
  meeting : pair_load list;  (** loads of the meeting prefix, top-down *)
  overflow : Ir_assign.Greedy_fill.placement list;
      (** capacity-only placements of the non-meeting suffix *)
}
[@@deriving show]

val extract : ?max_pareto:int -> Ir_assign.Problem.t -> t
(** Computes the rank and a witness assignment achieving it.  The
    witness's rank always equals {!Rank_dp.compute}'s. *)

val check : Ir_assign.Problem.t -> t -> (unit, string) result
(** Independent validation of a witness: interval structure (contiguous,
    top-down, longest first), per-wire delay targets met with the claimed
    repeaters, repeater budget respected, per-pair capacity with via
    blockage respected, and every wire placed.  The property tests run
    this against {!extract}. *)

val utilization : Ir_assign.Problem.t -> t -> (int * float) list
(** Fraction of each pair's capacity used (routing + blockage), from the
    witness. *)

val pp_human : Ir_assign.Problem.t -> Format.formatter -> t -> unit
(** Table: per pair, the wire-length range, wires, repeaters and
    utilization. *)
