module P = Ir_assign.Problem
module GF = Ir_assign.Greedy_fill

type pair_load = {
  pair : int;
  bunch_lo : int;
  bunch_hi : int;
  wires : int;
  repeaters : int;
  repeater_area : float;
  routing_area : float;
}
[@@deriving show, eq]

type t = {
  outcome : Outcome.t;
  meeting : pair_load list;
  overflow : GF.placement list;
}
[@@deriving show]

let load_of_interval problem ~pair ~lo ~hi =
  let rep_area, repeaters =
    match P.meeting_cost problem ~pair ~lo ~hi with
    | Some (a, c) -> (a, c)
    | None ->
        (* The witness guarantees feasibility of its meeting intervals. *)
        assert false
  in
  {
    pair;
    bunch_lo = lo;
    bunch_hi = hi;
    wires = P.wires_before problem hi - P.wires_before problem lo;
    repeaters;
    repeater_area = rep_area;
    routing_area = P.interval_area problem ~pair ~lo ~hi;
  }

let extract ?max_pareto problem =
  let outcome, witness = Rank_dp.compute_with_witness ?max_pareto problem in
  match witness with
  | None -> { outcome; meeting = []; overflow = [] }
  | Some w ->
      let meeting = ref [] in
      let lo = ref 0 in
      List.iteri
        (fun j hi ->
          if hi > !lo then
            meeting := load_of_interval problem ~pair:j ~lo:!lo ~hi :: !meeting;
          lo := hi)
        w.Rank_dp.prefix_splits;
      if w.Rank_dp.meet_hi > w.Rank_dp.meet_lo then
        meeting :=
          load_of_interval problem ~pair:w.Rank_dp.boundary_pair
            ~lo:w.Rank_dp.meet_lo ~hi:w.Rank_dp.meet_hi
          :: !meeting;
      let meeting = List.rev !meeting in
      let top_pair_used =
        P.interval_area problem ~pair:w.Rank_dp.boundary_pair
          ~lo:w.Rank_dp.meet_lo ~hi:w.Rank_dp.meet_hi
      in
      let overflow =
        match
          GF.pack problem
            (GF.context ~top_pair_used
               ~wires_above_top:(P.wires_before problem w.Rank_dp.meet_lo)
               ~reps_above_top:w.Rank_dp.reps_above
               ~wires_above_below:(P.wires_before problem w.Rank_dp.meet_hi)
               ~reps_above_below:w.Rank_dp.reps_total
               ~from_bunch:w.Rank_dp.meet_hi
               ~top_pair:w.Rank_dp.boundary_pair ())
        with
        | Some p -> p
        | None ->
            (* The witness asserted this pack is feasible. *)
            assert false
      in
      { outcome; meeting; overflow }

(* Independent re-validation of a witness, using only Problem's public
   per-wire primitives (not the prefix tables the DP used). *)
let check problem t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let m = P.n_pairs problem in
  let budget = P.budget problem in
  let cap = P.capacity problem in
  (* 1. Meeting loads: contiguous, top-down, consistent with the rank. *)
  let rec check_contiguous lo pair = function
    | [] -> lo
    | l :: rest ->
        if l.bunch_lo <> lo then
          err "pair %d meeting interval starts at %d, expected %d" l.pair
            l.bunch_lo lo;
        if l.pair < pair then err "meeting pairs not top-down";
        check_contiguous l.bunch_hi l.pair rest
  in
  let boundary = check_contiguous 0 0 t.meeting in
  if boundary <> t.outcome.Outcome.boundary_bunch then
    err "meeting loads cover %d bunches, outcome says %d" boundary
      t.outcome.Outcome.boundary_bunch;
  (* 2. Per-wire delay feasibility and repeater accounting. *)
  let total_rep_area = ref 0.0 in
  List.iter
    (fun l ->
      let reps = ref 0 in
      for b = l.bunch_lo to l.bunch_hi - 1 do
        match P.eta_min problem ~pair:l.pair ~bunch:b with
        | None -> err "bunch %d cannot meet its target on pair %d" b l.pair
        | Some eta -> reps := !reps + (eta * P.bunch_count problem b)
      done;
      if !reps <> l.repeaters then
        err "pair %d claims %d repeaters, minimal is %d" l.pair l.repeaters
          !reps;
      total_rep_area := !total_rep_area +. l.repeater_area)
    t.meeting;
  if !total_rep_area > budget *. (1.0 +. 1e-9) then
    err "repeater area %.3g exceeds budget %.3g" !total_rep_area budget;
  (* 3. Per-pair capacity including via blockage and overflow placements. *)
  let routing = Array.make m 0.0 in
  let wires_on = Array.make m 0 in
  let reps_on = Array.make m 0 in
  List.iter
    (fun l ->
      routing.(l.pair) <- routing.(l.pair) +. l.routing_area;
      wires_on.(l.pair) <- wires_on.(l.pair) + l.wires;
      reps_on.(l.pair) <- reps_on.(l.pair) + l.repeaters)
    t.meeting;
  List.iter
    (fun (p : GF.placement) ->
      let pair_t = Ir_ia.Arch.pair (P.arch problem) p.pair in
      routing.(p.pair) <-
        routing.(p.pair)
        +. float_of_int p.wires
           *. P.bunch_length problem p.bunch
           *. Ir_ia.Layer_pair.pitch pair_t;
      wires_on.(p.pair) <- wires_on.(p.pair) + p.wires)
    t.overflow;
  let wires_above = ref 0 and reps_above = ref 0 in
  for j = 0 to m - 1 do
    let blocked =
      P.blocked problem ~pair:j ~wires_above:!wires_above
        ~reps_above:!reps_above
    in
    if routing.(j) +. blocked > cap *. (1.0 +. 1e-9) then
      err "pair %d over capacity: %.3g + %.3g > %.3g" j routing.(j) blocked
        cap;
    wires_above := !wires_above + wires_on.(j);
    reps_above := !reps_above + reps_on.(j)
  done;
  (* 4. Everything placed. *)
  if t.outcome.Outcome.assignable && !wires_above <> P.total_wires problem
  then err "placed %d wires of %d" !wires_above (P.total_wires problem);
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

let utilization problem t =
  let m = P.n_pairs problem in
  let cap = P.capacity problem in
  let routing = Array.make m 0.0 in
  let wires_on = Array.make m 0 in
  let reps_on = Array.make m 0 in
  List.iter
    (fun l ->
      routing.(l.pair) <- routing.(l.pair) +. l.routing_area;
      wires_on.(l.pair) <- wires_on.(l.pair) + l.wires;
      reps_on.(l.pair) <- reps_on.(l.pair) + l.repeaters)
    t.meeting;
  List.iter
    (fun (p : GF.placement) ->
      let pair_t = Ir_ia.Arch.pair (P.arch problem) p.pair in
      routing.(p.pair) <-
        routing.(p.pair)
        +. float_of_int p.wires
           *. P.bunch_length problem p.bunch
           *. Ir_ia.Layer_pair.pitch pair_t;
      wires_on.(p.pair) <- wires_on.(p.pair) + p.wires)
    t.overflow;
  let wires_above = ref 0 and reps_above = ref 0 in
  List.init m (fun j ->
      let blocked =
        P.blocked problem ~pair:j ~wires_above:!wires_above
          ~reps_above:!reps_above
      in
      wires_above := !wires_above + wires_on.(j);
      reps_above := !reps_above + reps_on.(j);
      (j, (routing.(j) +. blocked) /. cap))

let pp_human problem ppf t =
  let arch = P.arch problem in
  let util = utilization problem t in
  Format.fprintf ppf "@[<v>%a@," Outcome.pp_human t.outcome;
  List.iter
    (fun l ->
      let p = Ir_ia.Arch.pair arch l.pair in
      Format.fprintf ppf
        "pair %d (%s): meeting bunches [%d, %d), %d wires, %d repeaters, \
         utilization %.1f%%@,"
        l.pair
        (Ir_tech.Metal_class.to_string p.cls)
        l.bunch_lo l.bunch_hi l.wires l.repeaters
        (100.0 *. List.assoc l.pair util))
    t.meeting;
  let overflow_wires =
    List.fold_left (fun a (p : GF.placement) -> a + p.wires) 0 t.overflow
  in
  Format.fprintf ppf "overflow (capacity-only): %d wires across %d placements@]"
    overflow_wires (List.length t.overflow)
