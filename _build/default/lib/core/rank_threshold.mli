(** Length-threshold layer assignment — a baseline after Kahng–Stroobandt,
    "Wiring layer assignment with consistent stage delays" (SLIP 2000),
    the paper's reference [9].

    Instead of optimizing the splits, each layer-pair [j] is given a
    characteristic length

    {v  lambda_j = sqrt (b r_o (c_o + c_p) / (a r̄_j c̄_j))  v}

    — the optimal inter-repeater stage length of the pair — and a wire is
    sent to the topmost pair whose characteristic length it exceeds
    ([l >= beta * lambda_j]); wires shorter than every threshold fall to
    the bottom pair.  Since stacks are fabricated with r̄c̄ decreasing
    upward, the thresholds decrease downward and the assignment is a
    contiguous split, directly comparable to the DP's.  When a pair
    overflows its capacity the excess spills to the pair below.

    Repeaters are then inserted longest-first within the budget exactly as
    in the greedy baseline.  Property tests assert
    [threshold rank <= DP rank]. *)

val characteristic_length : Ir_assign.Problem.t -> int -> float
(** [characteristic_length problem j] is lambda_j in meters. *)

val compute : ?beta:float -> Ir_assign.Problem.t -> Outcome.t
(** Rank achieved by the threshold assignment; [beta] (default 0.25)
    scales every threshold.  On the Davis WLDs, large [beta] starves the
    upper pairs — almost all wires are far shorter than any pair's stage
    length — leaving so much capacity idle that the WLD no longer fits
    (Definition 3 rank 0), which is itself a useful illustration of why
    fixed threshold rules need the DP's global view. *)
