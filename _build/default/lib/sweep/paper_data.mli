(** The numbers the paper actually publishes, embedded for
    paper-vs-measured reporting (EXPERIMENTS.md and the bench harness).

    All are from Table 4 (normalized rank for the 130nm, 1M-gate baseline)
    and Table 2 (baseline parameters). *)

val table4_k : (float * float) list
(** ILD permittivity K -> normalized rank; K from 3.9 down to 1.8. *)

val table4_m : (float * float) list
(** Miller coupling factor M -> normalized rank; M from 2.0 down to 1.0. *)

val table4_c : (float * float) list
(** Target clock frequency (Hz) -> normalized rank; 0.5 GHz to 1.7 GHz. *)

val table4_r : (float * float) list
(** Max repeater fraction of die area -> normalized rank; 0.1 to 0.5. *)

val baseline_normalized_rank : float
(** 0.397288: the Table 4 value at the baseline point of every column. *)

val headline_k_reduction : float
(** 0.38: the abstract's ILD-permittivity reduction (3.9 -> ~2.4). *)

val headline_m_reduction : float
(** 0.425: the Section 5.2 Miller-factor reduction said to produce the
    same rank increase (2.0 -> 1.15). *)
