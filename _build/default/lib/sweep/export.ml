let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (dir ^ " exists and is not a directory")
  else
    match Sys.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg

let write_file path contents =
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc contents)
  with
  | () -> Ok path
  | exception Sys_error msg -> Error msg

let sweep_csv_path ~dir (sweep : Table4.sweep) =
  Filename.concat dir
    (Printf.sprintf "table4_%s.csv" (String.lowercase_ascii sweep.name))

let write_sweeps ~dir sweeps =
  match ensure_dir dir with
  | Error _ as e -> e
  | Ok () ->
      let rec loop acc = function
        | [] -> Ok (List.rev acc)
        | sweep :: rest -> (
            let buf = Buffer.create 1024 in
            Report.sweep_csv sweep buf;
            match write_file (sweep_csv_path ~dir sweep) (Buffer.contents buf)
            with
            | Ok path -> loop (path :: acc) rest
            | Error _ as e -> e)
      in
      loop [] sweeps

let write_cross ~dir cells =
  match ensure_dir dir with
  | Error msg -> Error msg
  | Ok () ->
      let buf = Buffer.create 512 in
      Report.csv
        ~header:[ "node"; "gates"; "normalized"; "rank_wires"; "total" ]
        ~rows:
          (List.map
             (fun (c : Cross_node.cell) ->
               [
                 Ir_tech.Node.name c.node;
                 string_of_int c.gates;
                 Printf.sprintf "%.6f" (Ir_core.Outcome.normalized c.outcome);
                 string_of_int c.outcome.Ir_core.Outcome.rank_wires;
                 string_of_int c.outcome.Ir_core.Outcome.total_wires;
               ])
             cells)
        buf;
      write_file (Filename.concat dir "cross_node.csv") (Buffer.contents buf)

let write_manifest ~dir ~entries =
  match ensure_dir dir with
  | Error msg -> Error msg
  | Ok () ->
      let buf = Buffer.create 512 in
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\n" k v))
        entries;
      write_file (Filename.concat dir "MANIFEST.txt") (Buffer.contents buf)
