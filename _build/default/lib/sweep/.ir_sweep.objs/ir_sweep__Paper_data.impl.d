lib/sweep/paper_data.pp.ml:
