lib/sweep/export.pp.mli: Cross_node Table4
