lib/sweep/figure2.pp.ml: Array Float Ir_assign Ir_core Ir_ia Ir_phys Ir_tech Ir_wld List
