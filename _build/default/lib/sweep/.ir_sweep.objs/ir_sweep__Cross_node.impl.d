lib/sweep/cross_node.pp.ml: Ir_core Ir_tech List Ppx_deriving_runtime Sys
