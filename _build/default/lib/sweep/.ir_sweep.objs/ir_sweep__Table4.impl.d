lib/sweep/table4.pp.ml: Ir_assign Ir_core Ir_delay Ir_ia Ir_phys Ir_tech Ir_wld List Logs Paper_data Ppx_deriving_runtime Sys
