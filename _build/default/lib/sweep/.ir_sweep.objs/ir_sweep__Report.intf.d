lib/sweep/report.pp.mli: Buffer Cross_node Format Table4
