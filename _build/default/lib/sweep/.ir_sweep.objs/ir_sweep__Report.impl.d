lib/sweep/report.pp.ml: Buffer Cross_node Float Format Ir_core Ir_tech List Option Printf String Table4
