lib/sweep/equivalence.pp.mli: Ppx_deriving_runtime Table4
