lib/sweep/export.pp.ml: Buffer Cross_node Filename Ir_core Ir_tech List Out_channel Printf Report String Sys Table4
