lib/sweep/paper_data.pp.mli:
