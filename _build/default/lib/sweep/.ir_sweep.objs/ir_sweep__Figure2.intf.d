lib/sweep/figure2.pp.mli: Ir_assign Ir_core Ir_tech
