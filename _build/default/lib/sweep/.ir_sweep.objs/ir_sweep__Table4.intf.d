lib/sweep/table4.pp.mli: Ir_core Ir_delay Ir_ia Ir_tech Ppx_deriving_runtime
