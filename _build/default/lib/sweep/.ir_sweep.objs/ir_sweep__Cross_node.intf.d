lib/sweep/cross_node.pp.mli: Ir_core Ir_ia Ir_tech Ppx_deriving_runtime
