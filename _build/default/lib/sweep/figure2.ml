type scenario = {
  problem : Ir_assign.Problem.t;
  greedy : Ir_core.Outcome.t;
  optimal : Ir_core.Outcome.t;
  exact : Ir_core.Outcome.t;
}

let um = Ir_phys.Units.um

(* Inverted stack: the "global" pair on top is thin, resistive and tightly
   coupled (high r̄ and c̄); the "semi-global" pair below is fat and fast.
   Figure 2's premise: "RC delay of the upper layer-pair is much larger
   than that of the bottom layer-pair". *)
let stack () =
  {
    Ir_tech.Stack.node =
      Ir_tech.Node.Custom { name = "figure2"; feature = 130e-9 };
    local = Ir_tech.Geometry.v ~width:(um 0.16) ~spacing:(um 0.18)
        ~thickness:(um 0.336) ();
    semi_global =
      Ir_tech.Geometry.v ~width:(um 0.40) ~spacing:(um 0.40)
        ~thickness:(um 0.40) ();
    global =
      Ir_tech.Geometry.v ~width:(um 0.10) ~spacing:(um 0.10)
        ~thickness:(um 0.20) ();
    mx_layers = 2;
    mt_layers = 1;
  }

let structure =
  { Ir_ia.Arch.local_pairs = 0; semi_global_pairs = 1; global_pairs = 1 }

let build ~wire_length ~clock ~gates ~repeater_fraction =
  let node = Ir_tech.Node.Custom { name = "figure2"; feature = 130e-9 } in
  let design = Ir_tech.Design.v ~node ~gates ~clock ~repeater_fraction () in
  let arch = Ir_ia.Arch.make ~structure ~stack:(stack ()) ~design () in
  let bunches =
    Array.init 4 (fun _ -> { Ir_wld.Dist.length = wire_length; count = 1 })
  in
  Ir_assign.Problem.of_bunches ~arch ~bunches ()

(* Search a deterministic grid for a (length, clock) combination where the
   counterexample manifests: budget sized for exactly four bottom-pair
   wires, greedy spends it on two top-pair wires. *)
let scenario () =
  let try_one ~wire_length ~clock =
    (* Gate count making each pair comfortably hold all four wires. *)
    let node = Ir_tech.Node.Custom { name = "figure2"; feature = 130e-9 } in
    let g = Ir_tech.Node.gate_pitch node in
    let pitch_b = um 0.8 in
    let gates =
      max 64
        (int_of_float
           (Float.ceil (3.0 *. wire_length *. pitch_b *. 0.6 /. (g *. g))))
    in
    (* First pass with a placeholder budget to read off the bottom pair's
       repeater need; then rebuild with the budget for exactly four
       bottom-pair wires. *)
    let probe =
      build ~wire_length ~clock ~gates ~repeater_fraction:0.99
    in
    match Ir_assign.Problem.eta_min probe ~pair:1 ~bunch:0 with
    | None -> None
    | Some eta_b ->
          let arch = Ir_assign.Problem.arch probe in
          let bottom = Ir_ia.Arch.pair arch 1 in
          let budget =
            4.0 *. float_of_int eta_b *. bottom.Ir_ia.Layer_pair.repeater_area
          in
          let die = Ir_ia.Arch.pair_capacity arch /. 2.0 in
          let fraction = budget /. die in
          if fraction >= 1.0 then None
          else
            let problem =
              build ~wire_length ~clock ~gates ~repeater_fraction:fraction
            in
            let greedy = Ir_core.Rank_greedy.compute problem in
            let optimal = Ir_core.Rank_dp.compute problem in
            if
              greedy.Ir_core.Outcome.rank_wires = 2
              && optimal.Ir_core.Outcome.rank_wires = 4
            then
              let exact = Ir_core.Rank_exact.compute ~r_steps:16 problem in
              Some { problem; greedy; optimal; exact }
            else None
  in
  let lengths = List.map Ir_phys.Units.mm [ 0.5; 1.0; 2.0; 4.0; 8.0 ] in
  let clocks =
    List.map Ir_phys.Units.ghz
      [ 0.2; 0.3; 0.4; 0.5; 0.7; 1.0; 1.4; 2.0; 3.0; 5.0 ]
  in
  let found =
    List.find_map
      (fun wire_length ->
        List.find_map (fun clock -> try_one ~wire_length ~clock) clocks)
      lengths
  in
  match found with
  | Some s -> s
  | None ->
      failwith
        "Figure2.scenario: no counterexample found on the search grid \
         (calibration drift?)"
