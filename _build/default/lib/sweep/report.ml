let table ~header ~rows ppf =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        Format.fprintf ppf "%s%s  " cell
          (String.make (max 0 (w - String.length cell)) ' '))
      row;
    Format.fprintf ppf "@,"
  in
  Format.fprintf ppf "@[<v>";
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  Format.fprintf ppf "@]"

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv ~header ~rows buf =
  let line row =
    Buffer.add_string buf (String.concat "," (List.map csv_cell row));
    Buffer.add_char buf '\n'
  in
  line header;
  List.iter line rows

let lookup_paper paper param =
  List.find_opt (fun (p, _) -> Float.abs (p -. param) < 1e-9 *. (1. +. Float.abs param)) paper

let sweep_rows (sweep : Table4.sweep) =
  let paper = sweep.Table4.paper in
  List.map
    (fun (r : Table4.row) ->
      let measured = Ir_core.Outcome.normalized r.Table4.outcome in
      let paper_s, delta_s =
        match lookup_paper paper r.Table4.param with
        | Some (_, p) ->
            (Printf.sprintf "%.6f" p, Printf.sprintf "%+.4f" (measured -. p))
        | None -> ("-", "-")
      in
      [
        Printf.sprintf "%.4g" r.Table4.param;
        Printf.sprintf "%.6f" measured;
        paper_s;
        delta_s;
        string_of_int r.Table4.outcome.Ir_core.Outcome.rank_wires;
        Printf.sprintf "%.2f" r.Table4.seconds;
      ])
    sweep.Table4.rows

let sweep_header (sweep : Table4.sweep) =
  [ sweep.Table4.name; "measured"; "paper"; "delta"; "rank(wires)"; "sec" ]

let sweep_table sweep ppf =
  Format.fprintf ppf "@[<v>Table 4, column %s (%s)@," sweep.Table4.name
    sweep.Table4.legend;
  table ~header:(sweep_header sweep) ~rows:(sweep_rows sweep) ppf;
  Format.fprintf ppf "@]"

let sweep_csv sweep buf =
  csv ~header:(sweep_header sweep) ~rows:(sweep_rows sweep) buf

let cross_node_table cells ppf =
  let rows =
    List.map
      (fun (c : Cross_node.cell) ->
        [
          Ir_tech.Node.name c.node;
          string_of_int c.gates;
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized c.outcome);
          string_of_int c.outcome.Ir_core.Outcome.rank_wires;
          string_of_int c.outcome.Ir_core.Outcome.total_wires;
          Printf.sprintf "%.2f" c.seconds;
        ])
      cells
  in
  table
    ~header:[ "node"; "gates"; "normalized"; "rank(wires)"; "total"; "sec" ]
    ~rows ppf

let matched measured paper =
  List.filter_map
    (fun (p, v) ->
      Option.map (fun (_, pv) -> (v, pv)) (lookup_paper paper p))
    measured

let correlation measured paper =
  let pairs = matched measured paper in
  let n = List.length pairs in
  if n < 2 then nan
  else
    let nf = float_of_int n in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pairs /. nf in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pairs /. nf in
    let cov, vx, vy =
      List.fold_left
        (fun (c, vx, vy) (x, y) ->
          let dx = x -. sx and dy = y -. sy in
          (c +. (dx *. dy), vx +. (dx *. dx), vy +. (dy *. dy)))
        (0.0, 0.0, 0.0) pairs
    in
    if vx = 0.0 || vy = 0.0 then nan else cov /. sqrt (vx *. vy)

let max_abs_delta measured paper =
  List.fold_left
    (fun acc (x, y) -> Float.max acc (Float.abs (x -. y)))
    0.0 (matched measured paper)
