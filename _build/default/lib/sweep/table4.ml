type row = { param : float; outcome : Ir_core.Outcome.t; seconds : float }
[@@deriving show]

type sweep = {
  name : string;
  legend : string;
  rows : row list;
  paper : (float * float) list;
}

type config = {
  design : Ir_tech.Design.t;
  structure : Ir_ia.Arch.structure;
  bunch_size : int;
  target_model : Ir_delay.Target.t;
  algo : Ir_core.Rank.algo;
}

let default_config =
  {
    design = Ir_core.Rank.baseline_design Ir_tech.Node.N130;
    structure = Ir_ia.Arch.baseline_structure;
    bunch_size = 10000;
    target_model = Ir_delay.Target.Linear;
    algo = Ir_core.Rank.Dp;
  }

let with_design config design = { config with design }

let shared_wld config =
  let d = config.design in
  Ir_wld.Davis.generate
    (Ir_wld.Davis.params ~gates:d.Ir_tech.Design.gates
       ~rent_p:d.Ir_tech.Design.rent_p ~fan_out:d.Ir_tech.Design.fan_out ())

(* One sweep point: build the architecture for this parameter value,
   bunch the shared WLD against it, compute the rank, time it. *)
let point config wld ~materials ~design param =
  let arch = Ir_ia.Arch.make ~structure:config.structure ~materials ~design () in
  let problem =
    Ir_assign.Problem.make ~target_model:config.target_model
      ~bunch_size:config.bunch_size ~arch ~wld ()
  in
  let t0 = Sys.time () in
  let outcome = Ir_core.Rank.compute ~algo:config.algo problem in
  { param; outcome; seconds = Sys.time () -. t0 }

let run config ~name ~legend ~paper points =
  let wld = shared_wld config in
  let rows =
    List.map
      (fun (param, materials, design) ->
        Logs.debug (fun f -> f "table4 %s: param %.4g" name param);
        point config wld ~materials ~design param)
      points
  in
  { name; legend; rows; paper }

let grid_desc ~from ~until ~step =
  Ir_phys.Numeric.frange ~start:from ~stop:until ~step:(-.step)

let k_sweep ?(config = default_config) () =
  let points =
    List.map
      (fun k -> (k, Ir_ia.Materials.v ~k (), config.design))
      (grid_desc ~from:3.9 ~until:1.8 ~step:0.1)
  in
  run config ~name:"K" ~legend:"ILD permittivity"
    ~paper:Paper_data.table4_k points

let m_sweep ?(config = default_config) () =
  let points =
    List.map
      (fun m -> (m, Ir_ia.Materials.v ~miller:m (), config.design))
      (grid_desc ~from:2.0 ~until:1.0 ~step:0.05)
  in
  run config ~name:"M" ~legend:"Miller coupling factor"
    ~paper:Paper_data.table4_m points

let c_sweep ?(config = default_config) () =
  let clocks =
    Ir_phys.Numeric.frange ~start:0.5e9 ~stop:1.7e9 ~step:0.1e9
  in
  let points =
    List.map
      (fun c ->
        (c, Ir_ia.Materials.default, Ir_tech.Design.with_clock config.design c))
      clocks
  in
  run config ~name:"C" ~legend:"target clock frequency (Hz)"
    ~paper:Paper_data.table4_c points

let r_sweep ?(config = default_config) () =
  let fractions = [ 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  let points =
    List.map
      (fun r ->
        ( r,
          Ir_ia.Materials.default,
          Ir_tech.Design.with_repeater_fraction config.design r ))
      fractions
  in
  run config ~name:"R" ~legend:"max repeater fraction of die area"
    ~paper:Paper_data.table4_r points

let all ?(config = default_config) () =
  [ k_sweep ~config (); m_sweep ~config (); c_sweep ~config ();
    r_sweep ~config () ]

let normalized sweep =
  List.map
    (fun r -> (r.param, Ir_core.Outcome.normalized r.outcome))
    sweep.rows
