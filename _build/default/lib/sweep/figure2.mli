(** The paper's Figure 2: a concrete instance where greedy top-down
    assignment is suboptimal.

    The construction follows the figure: two layer-pairs whose RC delay is
    {e inverted} (the upper pair is much slower than the lower one), four
    wires of equal length, and a repeater budget that optimal assignment
    spends on the cheap pair.  Greedy fills the expensive top pair first
    and exhausts the budget there, achieving rank 2; the DP routes all
    four wires onto the cheap pair and achieves rank 4. *)

type scenario = {
  problem : Ir_assign.Problem.t;
  greedy : Ir_core.Outcome.t;
  optimal : Ir_core.Outcome.t;
  exact : Ir_core.Outcome.t;  (** the paper-literal DP on the same instance *)
}

val scenario : unit -> scenario
(** Builds the counterexample.  Postconditions (asserted by the tests):
    [greedy.rank_wires = 2], [optimal.rank_wires = 4], and the literal DP
    agrees with the optimal DP. *)

val stack : unit -> Ir_tech.Stack.t
(** The inverted synthetic stack used by the scenario: a thin, resistive
    "global" pair above a fat, fast "semi-global" pair. *)
