(** Rendering of experiment results: fixed-width text tables, CSV, and
    paper-vs-measured comparisons for the Table 4 sweeps. *)

val table :
  header:string list -> rows:string list list -> Format.formatter -> unit
(** Prints a fixed-width table; column widths fit the widest cell. *)

val csv : header:string list -> rows:string list list -> Buffer.t -> unit
(** Appends RFC-4180-ish CSV (quoting cells containing commas/quotes). *)

val sweep_table : Table4.sweep -> Format.formatter -> unit
(** Renders one Table 4 column with, where the paper published the same
    grid point, the paper's value and the delta alongside the measured
    normalized rank. *)

val sweep_csv : Table4.sweep -> Buffer.t -> unit

val cross_node_table : Cross_node.cell list -> Format.formatter -> unit

val correlation : (float * float) list -> (float * float) list -> float
(** Pearson correlation between measured and published series, matched on
    the parameter value (within 1e-9); used by EXPERIMENTS.md to
    summarize trend agreement.  Returns [nan] with fewer than two matched
    points. *)

val max_abs_delta : (float * float) list -> (float * float) list -> float
(** Largest |measured - paper| over matched grid points. *)
