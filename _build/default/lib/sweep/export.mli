(** Artifact export: write experiment results to a directory.

    The bench harness prints its tables; this module also persists them —
    one CSV per Table 4 column plus a cross-node CSV and a plain-text
    manifest — so downstream plotting or regression-diffing does not have
    to re-run hour-scale sweeps.  Paths are created as needed; existing
    files are overwritten. *)

val sweep_csv_path : dir:string -> Table4.sweep -> string
(** The file a sweep will be written to: [<dir>/table4_<name>.csv]. *)

val write_sweeps : dir:string -> Table4.sweep list -> (string list, string) result
(** Writes each sweep's paper-vs-measured CSV; returns the written paths
    (or the first filesystem error). *)

val write_cross : dir:string -> Cross_node.cell list -> (string, string) result
(** Writes [<dir>/cross_node.csv]. *)

val write_manifest :
  dir:string -> entries:(string * string) list -> (string, string) result
(** Writes [<dir>/MANIFEST.txt] with one [key: value] line per entry
    (e.g. key experiment ids, value one-line summaries). *)
