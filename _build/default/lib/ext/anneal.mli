(** Simulated-annealing refinement of direct IA optimization.

    {!Optimizer} scans a coarse grid of class-wide scalings; this module
    searches the continuous space the paper's Section 6 actually poses —
    every layer-pair's width, spacing and thickness independently — with
    a seeded Metropolis annealer.  Moves perturb one dimension of one
    pair by a log-uniform factor; energy is the negated normalized rank,
    with unassignable architectures (Definition 3) heavily penalized so
    the search retreats from them.

    Deterministic for a fixed seed; the WLD is generated once and shared
    by all evaluations.

    A finding worth knowing before using this: at relaxed clocks the rank
    metric alone rewards unboundedly thin, widely spaced wiring (smaller
    c̄ means cheaper repeaters means more wires buffered) and the
    annealer will happily drive the stack to the lithography floor and
    reach rank 1.0.  Counter-pressure only appears at demanding clocks,
    where thin wires' resistance breaks delay feasibility — or from
    constraints outside the metric (noise budgets, cost).  That is the
    paper's own co-optimization conclusion seen from the optimizer's
    side. *)

type result = {
  arch : Ir_ia.Arch.t;  (** best architecture found *)
  outcome : Ir_core.Outcome.t;  (** its rank *)
  initial : Ir_core.Outcome.t;  (** the starting (Table-3) rank *)
  evaluations : int;
  accepted : int;  (** accepted moves, including uphill ones *)
}

val optimize :
  ?seed:int ->
  ?steps:int ->
  ?bunch_size:int ->
  ?initial_temperature:float ->
  ?move_scale:float ->
  Ir_tech.Design.t ->
  result
(** [optimize design] anneals for [steps] (default 120) proposals from
    the node's baseline architecture.  [initial_temperature] (default
    0.02, in units of normalized rank) decays geometrically to ~1% of
    itself; [move_scale] (default 0.25) bounds the log-factor of a
    perturbation.  The best architecture ever visited is returned, so the
    result is never worse than the baseline.
    @raise Invalid_argument on non-positive [steps], [bunch_size],
    [initial_temperature] or [move_scale]. *)
