(** Parameter-sensitivity analysis of the rank metric.

    The paper's Section 3 asks for a metric "sensitive to interconnect
    geometric parameters as well as material properties" — which cuts
    both ways: a reproduction whose calibrated constants are uncertain
    (DESIGN.md §5) should report how much that uncertainty moves the
    metric.  This module runs a seeded Monte-Carlo over multiplicative
    perturbations of the electrical inputs (ILD permittivity, Miller
    factor, resistivity, device r_o/c_o) and summarizes the resulting
    rank distribution.

    Geometry and the repeater budget are held at nominal: the study
    isolates the constants the paper does not publish from the ones it
    does. *)

type spec = {
  sigma_k : float;  (** relative std-dev of the permittivity, e.g. 0.05 *)
  sigma_miller : float;
  sigma_rho : float;
  sigma_device : float;  (** applied to r_o and c_o independently *)
}
[@@deriving show, eq]

val default_spec : spec
(** 5% on every knob. *)

type summary = {
  nominal : float;  (** normalized rank with unperturbed parameters *)
  mean : float;
  std : float;
  min : float;
  max : float;
  samples : int;
}
[@@deriving show]

val run :
  ?spec:spec ->
  ?samples:int ->
  ?seed:int ->
  ?bunch_size:int ->
  Ir_tech.Design.t ->
  summary
(** [run design] draws [samples] (default 25) perturbed parameter sets
    (log-normal-ish: factors [exp (sigma * gaussian)]), recomputes the
    rank for each, and summarizes.  The WLD is generated once.
    @raise Invalid_argument if [samples <= 0] or any sigma is
    negative. *)
