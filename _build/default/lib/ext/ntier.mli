(** n-tier architecture generation (after Venkatesan/Davis/Bowman/Meindl,
    "Optimal n-tier multilevel interconnect architectures for GSI",
    IEEE TVLSI 2001 — the paper's reference [13]).

    The n-tier methodology sizes each wiring tier to its traffic: the WLD
    is split into [n] contiguous length ranges carrying equal total wire
    length, and each tier's routing pitch is set so that its range just
    fits the tier's capacity at a chosen fill factor, with thickness
    following a fixed aspect ratio.  The result is an architecture whose
    pitches grow from bottom to top like the classic reverse-scaled
    stacks.

    Evaluating these generated architectures with the rank metric is the
    cross-method comparison the paper's Section 6 proposes ("evaluating
    ITRS and foundry BEOL architectures"). *)

type tier = {
  cls : Ir_tech.Metal_class.t;  (** reporting label (bottom = local) *)
  geometry : Ir_tech.Geometry.t;
  l_min : float;  (** shortest wire of the tier's range, meters *)
  l_max : float;  (** longest wire, meters *)
  demand : float;  (** total wire length of the range, meters *)
}
[@@deriving show]

val design_tiers :
  ?tiers:int ->
  ?fill:float ->
  ?aspect_ratio:float ->
  Ir_tech.Design.t ->
  tier list
(** [design_tiers design] partitions the design's Davis WLD into [tiers]
    (default 4) equal-total-length ranges and sizes each tier's pitch to
    [fill] (default 0.6) of the pair capacity, clamped below at the
    node's M1 pitch; [aspect_ratio] (default 2.0) sets thickness/width.
    Returned bottom-up won't decrease in pitch. *)

val architecture :
  ?tiers:int ->
  ?fill:float ->
  ?aspect_ratio:float ->
  ?materials:Ir_ia.Materials.t ->
  Ir_tech.Design.t ->
  Ir_ia.Arch.t
(** The {!Ir_ia.Arch.custom} architecture built from {!design_tiers}
    (topmost tier first). *)

val compare_with_baseline :
  ?tiers:int -> ?bunch_size:int -> Ir_tech.Design.t ->
  [ `Ntier of Ir_core.Outcome.t ] * [ `Baseline of Ir_core.Outcome.t ]
(** Rank of the generated n-tier architecture versus the node's Table-3
    baseline on the same WLD. *)
