type step = {
  structure : Ir_ia.Arch.structure;
  outcome : Ir_core.Outcome.t;
}
[@@deriving show]

let ladder stack =
  let max_sg = Ir_tech.Stack.max_pairs stack Ir_tech.Metal_class.Semi_global in
  let max_gl = Ir_tech.Stack.max_pairs stack Ir_tech.Metal_class.Global in
  let base =
    { Ir_ia.Arch.local_pairs = 1; semi_global_pairs = 0; global_pairs = 0 }
  in
  let with_sg =
    List.init max_sg (fun i ->
        { base with Ir_ia.Arch.semi_global_pairs = i + 1 })
  in
  let with_gl =
    List.init max_gl (fun i ->
        {
          base with
          Ir_ia.Arch.semi_global_pairs = max_sg;
          global_pairs = i + 1;
        })
  in
  (base :: with_sg) @ with_gl

let search ?(bunch_size = 10000) ~accept design =
  let stack = Ir_tech.Stack.of_node design.Ir_tech.Design.node in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.Ir_tech.Design.rent_p
         ~fan_out:design.Ir_tech.Design.fan_out ())
  in
  let evaluate structure =
    let arch = Ir_ia.Arch.make ~structure ~stack ~design () in
    let problem = Ir_assign.Problem.make ~bunch_size ~arch ~wld () in
    { structure; outcome = Ir_core.Rank_dp.compute problem }
  in
  let steps = List.map evaluate (ladder stack) in
  match List.find_opt (fun s -> accept s.outcome) steps with
  | Some s -> Ok (s, steps)
  | None -> Error "no structure within the stack satisfies the target"

let min_pairs_for_assignability ?bunch_size design =
  search ?bunch_size ~accept:(fun o -> o.Ir_core.Outcome.assignable) design

let min_pairs_for_rank ?bunch_size ~target design =
  if not (target >= 0.0 && target <= 1.0) then
    invalid_arg "Layers.min_pairs_for_rank: target must lie in [0, 1]";
  search ?bunch_size
    ~accept:(fun o -> Ir_core.Outcome.normalized o >= target)
    design
