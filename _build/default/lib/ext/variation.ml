type spec = {
  sigma_k : float;
  sigma_miller : float;
  sigma_rho : float;
  sigma_device : float;
}
[@@deriving show, eq]

let default_spec =
  { sigma_k = 0.05; sigma_miller = 0.05; sigma_rho = 0.05;
    sigma_device = 0.05 }

type summary = {
  nominal : float;
  mean : float;
  std : float;
  min : float;
  max : float;
  samples : int;
}
[@@deriving show]

(* Box-Muller standard normal from the seeded state. *)
let gaussian rng =
  let u1 = Random.State.float rng 1.0 in
  let u2 = Random.State.float rng 1.0 in
  sqrt (-2.0 *. log (Float.max u1 1e-12)) *. cos (2.0 *. Float.pi *. u2)

let factor rng sigma = exp (sigma *. gaussian rng)

let run ?(spec = default_spec) ?(samples = 25) ?(seed = 42)
    ?(bunch_size = 10000) design =
  if samples <= 0 then invalid_arg "Variation.run: samples must be > 0";
  List.iter
    (fun s -> if s < 0.0 then invalid_arg "Variation.run: negative sigma")
    [ spec.sigma_k; spec.sigma_miller; spec.sigma_rho; spec.sigma_device ];
  let rng = Random.State.make [| seed |] in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.Ir_tech.Design.rent_p
         ~fan_out:design.Ir_tech.Design.fan_out ())
  in
  let node = design.Ir_tech.Design.node in
  let nominal_device = Ir_tech.Device.of_node node in
  let rank ~k ~miller ~rho ~device =
    let arch =
      Ir_ia.Arch.make ~materials:(Ir_ia.Materials.v ~k ~miller ~rho ())
        ~device ~design ()
    in
    Ir_core.Outcome.normalized
      (Ir_core.Rank_dp.compute
         (Ir_assign.Problem.make ~bunch_size ~arch ~wld ()))
  in
  let nominal =
    rank ~k:Ir_phys.Const.k_sio2 ~miller:2.0
      ~rho:(Ir_tech.Node.resistivity node)
      ~device:nominal_device
  in
  let draws =
    List.init samples (fun _ ->
        let k = Ir_phys.Const.k_sio2 *. factor rng spec.sigma_k in
        let miller = 2.0 *. factor rng spec.sigma_miller in
        let rho =
          Ir_tech.Node.resistivity node *. factor rng spec.sigma_rho
        in
        let device =
          Ir_tech.Device.v
            ~r_o:(nominal_device.r_o *. factor rng spec.sigma_device)
            ~c_o:(nominal_device.c_o *. factor rng spec.sigma_device)
            ~c_p:nominal_device.c_p ~area:nominal_device.area
        in
        rank ~k ~miller ~rho ~device)
  in
  let n = float_of_int samples in
  let mean = List.fold_left ( +. ) 0.0 draws /. n in
  let var =
    List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 draws /. n
  in
  {
    nominal;
    mean;
    std = sqrt var;
    min = List.fold_left Float.min infinity draws;
    max = List.fold_left Float.max neg_infinity draws;
    samples;
  }
