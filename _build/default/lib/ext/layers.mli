(** Layer-count analyses: the inverse of the rank metric.

    The related work the paper builds on (Venkatesan et al.; Kahng,
    Mantik, Stroobandt; Chen, Davis, Meindl) asks "how many layers does a
    design need?", with via blockage and repeaters pushing the answer up
    (the paper's footnote 1).  These helpers answer two versions of that
    question with the rank machinery:

    - {!min_pairs_for_assignability}: the fewest layer-pairs for which the
      WLD fits at all (Definition 3);
    - {!min_pairs_for_rank}: the fewest layer-pairs whose rank reaches a
      target normalized value. *)

type step = {
  structure : Ir_ia.Arch.structure;
  outcome : Ir_core.Outcome.t;
}
[@@deriving show]

val ladder : Ir_tech.Stack.t -> Ir_ia.Arch.structure list
(** The growth order explored, from smallest to largest, within what the
    stack provides: 1 local pair, then adding semi-global pairs, then
    global pairs. *)

val min_pairs_for_assignability :
  ?bunch_size:int -> Ir_tech.Design.t -> (step * step list, string) result
(** Walks {!ladder} until the design becomes assignable; returns the first
    assignable step and all steps evaluated.  [Error] when even the full
    stack cannot hold the WLD. *)

val min_pairs_for_rank :
  ?bunch_size:int ->
  target:float ->
  Ir_tech.Design.t ->
  (step * step list, string) result
(** Like {!min_pairs_for_assignability} but requiring
    [normalized rank >= target].
    @raise Invalid_argument if [target] is outside [0, 1]. *)
