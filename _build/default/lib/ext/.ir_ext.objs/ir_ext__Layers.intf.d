lib/ext/layers.pp.mli: Ir_core Ir_ia Ir_tech Ppx_deriving_runtime
