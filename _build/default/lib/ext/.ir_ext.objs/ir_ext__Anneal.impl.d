lib/ext/anneal.pp.ml: Array Float Ir_assign Ir_core Ir_ia Ir_tech Ir_wld Random
