lib/ext/variation.pp.ml: Float Ir_assign Ir_core Ir_ia Ir_phys Ir_tech Ir_wld List Ppx_deriving_runtime Random
