lib/ext/anneal.pp.mli: Ir_core Ir_ia Ir_tech
