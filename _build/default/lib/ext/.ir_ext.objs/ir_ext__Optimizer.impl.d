lib/ext/optimizer.pp.ml: Float Ir_assign Ir_core Ir_delay Ir_ia Ir_tech Ir_wld List Logs Ppx_deriving_runtime
