lib/ext/layers.pp.ml: Ir_assign Ir_core Ir_ia Ir_tech Ir_wld List Ppx_deriving_runtime
