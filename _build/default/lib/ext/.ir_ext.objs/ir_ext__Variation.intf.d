lib/ext/variation.pp.mli: Ir_tech Ppx_deriving_runtime
