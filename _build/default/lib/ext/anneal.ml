type result = {
  arch : Ir_ia.Arch.t;
  outcome : Ir_core.Outcome.t;
  initial : Ir_core.Outcome.t;
  evaluations : int;
  accepted : int;
}

(* The annealing state: one geometry per pair (top-down), mutated one
   dimension at a time. *)
type dims = { width : float; spacing : float; thickness : float }

let geometry_of_dims ~via_width d =
  Ir_tech.Geometry.v ~width:d.width ~spacing:d.spacing
    ~thickness:d.thickness ~ild_thickness:d.thickness ~via_width ()

let optimize ?(seed = 42) ?(steps = 120) ?(bunch_size = 2000)
    ?(initial_temperature = 0.02) ?(move_scale = 0.25) design =
  if steps <= 0 then invalid_arg "Anneal.optimize: steps must be > 0";
  if bunch_size <= 0 then
    invalid_arg "Anneal.optimize: bunch_size must be > 0";
  if not (initial_temperature > 0.0) then
    invalid_arg "Anneal.optimize: initial_temperature must be > 0";
  if not (move_scale > 0.0) then
    invalid_arg "Anneal.optimize: move_scale must be > 0";
  let rng = Random.State.make [| seed |] in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.Ir_tech.Design.rent_p
         ~fan_out:design.Ir_tech.Design.fan_out ())
  in
  let baseline = Ir_ia.Arch.make ~design () in
  let classes =
    Array.map (fun (p : Ir_ia.Layer_pair.t) -> p.cls) baseline.pairs
  in
  let via_widths =
    Array.map
      (fun (p : Ir_ia.Layer_pair.t) -> p.geom.Ir_tech.Geometry.via_width)
      baseline.pairs
  in
  let floors =
    (* Never shrink below half the node's M1 dimensions — a lithography
       floor that keeps the search physical. *)
    let m1 = (Ir_tech.Stack.of_node design.Ir_tech.Design.node).local in
    {
      width = 0.5 *. m1.Ir_tech.Geometry.width;
      spacing = 0.5 *. m1.Ir_tech.Geometry.spacing;
      thickness = 0.5 *. m1.Ir_tech.Geometry.thickness;
    }
  in
  let build state =
    let pairs =
      Array.to_list
        (Array.mapi
           (fun i d ->
             (classes.(i), geometry_of_dims ~via_width:via_widths.(i) d))
           state)
    in
    Ir_ia.Arch.custom ~materials:baseline.materials ~design ~pairs ()
  in
  let evaluations = ref 0 in
  let energy arch =
    incr evaluations;
    let o =
      Ir_core.Rank_dp.compute
        (Ir_assign.Problem.make ~bunch_size ~arch ~wld ())
    in
    let e =
      if o.Ir_core.Outcome.assignable then
        -.Ir_core.Outcome.normalized o
      else 1.0 (* Definition 3: strongly repelled *)
    in
    (e, o)
  in
  let state =
    Array.map
      (fun (p : Ir_ia.Layer_pair.t) ->
        {
          width = p.geom.Ir_tech.Geometry.width;
          spacing = p.geom.Ir_tech.Geometry.spacing;
          thickness = p.geom.Ir_tech.Geometry.thickness;
        })
      baseline.pairs
  in
  let current_arch = ref (build state) in
  let current_e, initial_outcome = energy !current_arch in
  let current_e = ref current_e in
  let best_arch = ref !current_arch in
  let best_e = ref !current_e in
  let best_outcome = ref initial_outcome in
  let accepted = ref 0 in
  let cooling = Float.pow 0.01 (1.0 /. float_of_int steps) in
  let temperature = ref initial_temperature in
  for _ = 1 to steps do
    let pair = Random.State.int rng (Array.length state) in
    let dim = Random.State.int rng 3 in
    let f = exp ((Random.State.float rng 2.0 -. 1.0) *. move_scale) in
    let old = state.(pair) in
    let proposed =
      match dim with
      | 0 -> { old with width = Float.max floors.width (old.width *. f) }
      | 1 ->
          { old with spacing = Float.max floors.spacing (old.spacing *. f) }
      | _ ->
          {
            old with
            thickness = Float.max floors.thickness (old.thickness *. f);
          }
    in
    state.(pair) <- proposed;
    let arch = build state in
    let e, o = energy arch in
    let de = e -. !current_e in
    let accept =
      de <= 0.0
      || Random.State.float rng 1.0 < exp (-.de /. !temperature)
    in
    if accept then begin
      incr accepted;
      current_arch := arch;
      current_e := e;
      if e < !best_e then begin
        best_e := e;
        best_arch := arch;
        best_outcome := o
      end
    end
    else state.(pair) <- old;
    temperature := !temperature *. cooling
  done;
  {
    arch = !best_arch;
    outcome = !best_outcome;
    initial = initial_outcome;
    evaluations = !evaluations;
    accepted = !accepted;
  }
