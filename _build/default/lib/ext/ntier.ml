type tier = {
  cls : Ir_tech.Metal_class.t;
  geometry : Ir_tech.Geometry.t;
  l_min : float;
  l_max : float;
  demand : float;
}
[@@deriving show]

(* Split the (meter-scaled) WLD into [tiers] contiguous ranges of roughly
   equal total wire length, shortest range first. *)
let equal_length_ranges ~tiers dist =
  let bins = Ir_wld.Dist.bins dist in
  let total = Ir_wld.Dist.total_wire_length dist in
  let per_tier = total /. float_of_int tiers in
  let ranges = ref [] in
  let acc = ref 0.0 and lo = ref 0 in
  let tier_end = ref per_tier in
  Array.iteri
    (fun i (b : Ir_wld.Dist.bin) ->
      acc := !acc +. (b.length *. float_of_int b.count);
      let last = i = Array.length bins - 1 in
      if (!acc >= !tier_end && List.length !ranges < tiers - 1) || last then begin
        let demand =
          Array.fold_left
            (fun s j -> s +. (j : Ir_wld.Dist.bin).length *. float_of_int j.count)
            0.0
            (Array.sub bins !lo (i - !lo + 1))
        in
        ranges :=
          (bins.(!lo).Ir_wld.Dist.length, b.Ir_wld.Dist.length, demand)
          :: !ranges;
        lo := i + 1;
        tier_end := !tier_end +. per_tier
      end)
    bins;
  List.rev !ranges

let class_of_index ~tiers i =
  (* bottom tier(s) local, top tier global, middle semi-global *)
  if i = 0 then Ir_tech.Metal_class.Local
  else if i = tiers - 1 then Ir_tech.Metal_class.Global
  else Ir_tech.Metal_class.Semi_global

let design_tiers ?(tiers = 4) ?(fill = 0.6) ?(aspect_ratio = 2.0) design =
  if tiers < 1 then invalid_arg "Ntier.design_tiers: tiers must be >= 1";
  if not (fill > 0.0 && fill <= 1.0) then
    invalid_arg "Ntier.design_tiers: fill must lie in (0, 1]";
  if not (aspect_ratio > 0.0) then
    invalid_arg "Ntier.design_tiers: aspect_ratio must be > 0";
  let node = design.Ir_tech.Design.node in
  let pitch_floor =
    Ir_tech.Geometry.pitch (Ir_tech.Stack.of_node node).local
  in
  let wld =
    Ir_wld.Davis.generate_meters
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.Ir_tech.Design.rent_p
         ~fan_out:design.Ir_tech.Design.fan_out ())
      ~pitch:(Ir_tech.Design.effective_gate_pitch design)
  in
  let capacity = 2.0 *. Ir_tech.Design.die_area design in
  List.mapi
    (fun i (l_min, l_max, demand) ->
      (* Size the pitch so the tier's demand fills [fill] of a pair. *)
      let pitch = Float.max pitch_floor (fill *. capacity /. demand) in
      let width = pitch /. 2.0 in
      let geometry =
        Ir_tech.Geometry.v ~width ~spacing:width
          ~thickness:(aspect_ratio *. width)
          ~via_width:width ()
      in
      { cls = class_of_index ~tiers i; geometry; l_min; l_max; demand })
    (equal_length_ranges ~tiers wld)

let architecture ?tiers ?fill ?aspect_ratio ?materials design =
  let ts = design_tiers ?tiers ?fill ?aspect_ratio design in
  (* Arch wants topmost first; tiers are bottom-up. *)
  let pairs = List.rev_map (fun t -> (t.cls, t.geometry)) ts in
  Ir_ia.Arch.custom ?materials ~design ~pairs ()

let compare_with_baseline ?tiers ?(bunch_size = 10000) design =
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.Ir_tech.Design.rent_p
         ~fan_out:design.Ir_tech.Design.fan_out ())
  in
  let rank arch =
    Ir_core.Rank_dp.compute
      (Ir_assign.Problem.make ~bunch_size ~arch ~wld ())
  in
  let ntier = rank (architecture ?tiers design) in
  let baseline = rank (Ir_ia.Arch.make ~design ()) in
  (`Ntier ntier, `Baseline baseline)
