lib/rc/resistance.pp.ml: Ir_tech
