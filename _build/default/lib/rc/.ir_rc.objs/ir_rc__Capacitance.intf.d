lib/rc/capacitance.pp.mli: Ir_tech Ppx_deriving_runtime
