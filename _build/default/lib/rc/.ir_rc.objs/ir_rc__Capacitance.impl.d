lib/rc/capacitance.pp.ml: Float Ir_phys Ir_tech Ppx_deriving_runtime
