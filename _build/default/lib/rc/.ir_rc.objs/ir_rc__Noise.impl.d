lib/rc/noise.pp.ml: Capacitance
