lib/rc/resistance.pp.mli: Ir_tech
