lib/rc/noise.pp.mli: Ir_tech
