let per_m ~rho (g : Ir_tech.Geometry.t) =
  if not (rho > 0.0) then invalid_arg "Resistance.per_m: rho must be > 0";
  rho /. (g.width *. g.thickness)

let per_m_with_barrier ~rho ~barrier (g : Ir_tech.Geometry.t) =
  if not (rho > 0.0) then
    invalid_arg "Resistance.per_m_with_barrier: rho must be > 0";
  if barrier < 0.0 then
    invalid_arg "Resistance.per_m_with_barrier: barrier must be >= 0";
  let w = g.width -. (2.0 *. barrier) in
  let t = g.thickness -. barrier in
  if not (w > 0.0 && t > 0.0) then
    invalid_arg "Resistance.per_m_with_barrier: barrier consumes conductor";
  rho /. (w *. t)

let temperature_derated ~r ~tcr ~dt = r *. (1.0 +. (tcr *. dt))

let sheet_resistance ~rho ~thickness =
  if not (thickness > 0.0) then
    invalid_arg "Resistance.sheet_resistance: thickness must be > 0";
  rho /. thickness
