let peak_ratio ?(k = 3.9) ?(miller = 2.0) g =
  if miller <= 1.0 then 0.0
  else
    let c_g = 2.0 *. Capacitance.ground_per_m ~model:Sakurai ~k g in
    let c_c = 2.0 *. Capacitance.coupling_per_m ~model:Sakurai ~k g in
    (* The victim driver fights the injected charge; model it as an extra
       holding capacitance equal to half the ground capacitance (a weak
       holder — pessimistic, as noise analyses should be). *)
    let c_drv = 0.5 *. c_g in
    c_c /. (c_c +. c_g +. c_drv)

let passes ?k ?miller ~limit g =
  if limit < 0.0 then invalid_arg "Noise.passes: negative limit";
  peak_ratio ?k ?miller g <= limit
