type model = Parallel_plate | Parallel_plate_fringe | Sakurai | Coupling_only
[@@deriving show, eq]

let default_model = Coupling_only

let check_k k =
  if not (k > 0.0) then invalid_arg "Capacitance: k must be > 0"

let eps k = k *. Ir_phys.Const.eps0

(* Sakurai's empirical fits (normalized to the dielectric permittivity):
   ground:   1.15 (W/H) + 2.80 (T/H)^0.222
   coupling: [0.03 (W/H) + 0.83 (T/H) - 0.07 (T/H)^0.222] (S/H)^-1.34 *)

let ground_per_m ?(model = default_model) ~k (g : Ir_tech.Geometry.t) =
  check_k k;
  let w_h = g.width /. g.ild_thickness in
  let t_h = g.thickness /. g.ild_thickness in
  let shape =
    match model with
    | Parallel_plate -> w_h
    | Parallel_plate_fringe -> w_h +. 1.0
    | Sakurai -> (1.15 *. w_h) +. (2.80 *. Float.pow t_h 0.222)
    | Coupling_only -> 0.0
  in
  eps k *. shape

let coupling_per_m ?(model = default_model) ~k (g : Ir_tech.Geometry.t) =
  check_k k;
  let t_s = g.thickness /. g.spacing in
  let shape =
    match model with
    | Parallel_plate | Parallel_plate_fringe | Coupling_only -> t_s
    | Sakurai ->
        let w_h = g.width /. g.ild_thickness in
        let t_h = g.thickness /. g.ild_thickness in
        let s_h = g.spacing /. g.ild_thickness in
        let v =
          (0.03 *. w_h) +. (0.83 *. t_h)
          -. (0.07 *. Float.pow t_h 0.222)
        in
        (* Guard against the fit going slightly negative for very squat
           cross-sections; lateral capacitance is physically positive. *)
        Float.max (v *. Float.pow s_h (-1.34)) (0.1 *. t_s)
  in
  eps k *. shape

let effective_per_m ?(model = default_model) ~k ~miller g =
  if miller < 0.0 then invalid_arg "Capacitance: miller must be >= 0";
  let c_g = ground_per_m ~model ~k g in
  let c_c = coupling_per_m ~model ~k g in
  (2.0 *. c_g) +. (2.0 *. miller *. c_c)

let breakdown ?(model = default_model) ~k ~miller g =
  if miller < 0.0 then invalid_arg "Capacitance: miller must be >= 0";
  let c_g = 2.0 *. ground_per_m ~model ~k g in
  let c_c = 2.0 *. miller *. coupling_per_m ~model ~k g in
  (`Ground c_g, `Coupling c_c, `Total (c_g +. c_c))
