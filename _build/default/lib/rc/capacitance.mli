(** Wire capacitance per unit length.

    The effective capacitance per unit length c̄_j of a layer-pair is the
    quantity the paper's rank metric is most sensitive to: the ILD
    permittivity sweep (Table 4, column K) scales it globally and the Miller
    coupling sweep (column M) scales its lateral component.

    A wire inside a layer-pair sees (i) ground capacitance to the dense
    orthogonal layers above and below, across the ILD of height [H], and
    (ii) lateral coupling to its two same-layer neighbors at spacing [S].
    The Miller factor [m] multiplies the lateral component, modeling
    worst-case simultaneous opposite switching (m = 2, the paper's baseline)
    through fully shielded lines (m = 1, the paper's footnote 8). *)

type model =
  | Parallel_plate  (** plates only — lower bound, no fringe *)
  | Parallel_plate_fringe  (** plates plus a constant fringe term *)
  | Sakurai  (** Sakurai's empirical closed form (JSSC 1983/1993) *)
  | Coupling_only
      (** lateral parallel-plate coupling only, zero ground capacitance:
          the model the paper's Table 4 implies, since its K and M columns
          are numerically interchangeable — rank there depends on the
          product [k * miller], which requires [c̄ ∝ k * m]. *)
[@@deriving show, eq]

val default_model : model
(** {!Coupling_only} — the paper-faithful model (see above); switch to
    {!Sakurai} for physically fuller studies (the ablation bench compares
    all four). *)

val ground_per_m : ?model:model -> k:float -> Ir_tech.Geometry.t -> float
(** Capacitance per meter to {e one} adjacent ground plane across the ILD,
    in F/m.  @raise Invalid_argument if [k <= 0]. *)

val coupling_per_m : ?model:model -> k:float -> Ir_tech.Geometry.t -> float
(** Lateral capacitance per meter to {e one} same-layer neighbor at minimum
    spacing, in F/m. *)

val effective_per_m :
  ?model:model -> k:float -> miller:float -> Ir_tech.Geometry.t -> float
(** Total switching capacitance per meter seen by the delay model:
    two ground planes plus two neighbors weighted by the Miller factor,
    [2*c_g + 2*miller*c_c].
    @raise Invalid_argument if [miller < 0]. *)

val breakdown :
  ?model:model ->
  k:float ->
  miller:float ->
  Ir_tech.Geometry.t ->
  [ `Ground of float ] * [ `Coupling of float ] * [ `Total of float ]
(** Same as {!effective_per_m} but returning the ground and (Miller-weighted)
    coupling contributions separately, for reporting. *)
