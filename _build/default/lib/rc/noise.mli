(** Crosstalk noise estimation.

    The paper motivates the rank metric against the usual IA yardsticks of
    "delay, crosstalk noise, number of interconnection layers and
    congestion" (its Section 1, citing Hu et al. and Rahmat et al.).  This
    module provides the classic charge-sharing peak-noise estimate for a
    quiet victim wire between two switching aggressors,

    {v  V_peak / V_dd = C_c / (C_c + C_g + C_drv)  v}

    where [C_c] is the total lateral coupling, [C_g] the ground
    capacitance and [C_drv] an equivalent holding capacitance of the
    victim driver.  For long wires the per-unit-length capacitances
    dominate and the ratio becomes length-independent, so noise acts as a
    {e per-layer-pair} pass/fail — which is how the rank pipeline consumes
    it (see {!Ir_assign.Problem.make}'s [noise_limit]).

    Noise is always evaluated with the physically-complete {!Sakurai}
    capacitance model: the paper's coupling-only c̄ would degenerate the
    ratio to 1.  Shielded lines ([miller <= 1], the paper's footnote 8)
    have one aggressor replaced by a grounded shield, halving the active
    coupling. *)

val peak_ratio :
  ?k:float -> ?miller:float -> Ir_tech.Geometry.t -> float
(** Peak victim noise as a fraction of Vdd for a minimum-pitch wire of the
    given geometry.  Defaults: [k = 3.9], [miller = 2.0] (two switching
    aggressors; [miller <= 1.0] models double-sided shielding, which
    grounds both neighbors and returns 0).
    The result lies in [0, 1). *)

val passes : ?k:float -> ?miller:float -> limit:float ->
  Ir_tech.Geometry.t -> bool
(** [passes ~limit g] is [peak_ratio g <= limit].  A typical noise budget
    is 10-15% of Vdd. *)
