(** Wire resistance per unit length.

    The paper's delay model needs the resistance per unit length r̄_j of a
    layer-pair, fully determined by the wire width and thickness of the pair
    and the metal resistivity (Section 4.1). *)

val per_m : rho:float -> Ir_tech.Geometry.t -> float
(** [per_m ~rho g] is the resistance per meter of a wire with cross-section
    [g.width * g.thickness], in Ohm/m.
    @raise Invalid_argument if [rho <= 0]. *)

val per_m_with_barrier :
  rho:float -> barrier:float -> Ir_tech.Geometry.t -> float
(** Like {!per_m} but removing a diffusion-barrier liner of thickness
    [barrier] from both sides of the width and the bottom of the thickness
    (the Cu damascene penalty).
    @raise Invalid_argument if the barrier consumes the whole conductor. *)

val temperature_derated : r:float -> tcr:float -> dt:float -> float
(** [temperature_derated ~r ~tcr ~dt] scales resistance [r] measured at the
    nominal temperature by [1 + tcr * dt] for an excursion of [dt] kelvin
    (copper tcr ~ 0.0039 / K). *)

val sheet_resistance : rho:float -> thickness:float -> float
(** [rho / thickness], Ohm/square — a convenient cross-check quantity. *)
