lib/wld/davis.pp.mli: Dist Ppx_deriving_runtime
