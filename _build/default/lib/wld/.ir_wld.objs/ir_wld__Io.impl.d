lib/wld/io.pp.ml: Array Buffer Dist In_channel List Out_channel Printf String
