lib/wld/dist.pp.ml: Array Float List Ppx_deriving_runtime Printf String
