lib/wld/davis.pp.ml: Dist Float Ir_phys List Ppx_deriving_runtime
