lib/wld/rent.pp.ml: Float
