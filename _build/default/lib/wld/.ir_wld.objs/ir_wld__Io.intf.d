lib/wld/io.pp.mli: Dist
