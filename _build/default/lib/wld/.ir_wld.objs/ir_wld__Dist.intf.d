lib/wld/dist.pp.mli: Ppx_deriving_runtime
