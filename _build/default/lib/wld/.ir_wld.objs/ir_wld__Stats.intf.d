lib/wld/stats.pp.mli: Dist Format Ppx_deriving_runtime
