lib/wld/stats.pp.ml: Array Dist Float Format Ir_phys List Ppx_deriving_runtime String
