lib/wld/coarsen.pp.ml: Array Dist List
