lib/wld/rent.pp.mli:
