lib/wld/coarsen.pp.mli: Dist
