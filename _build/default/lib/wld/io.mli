(** Loading and saving wire length distributions.

    The paper uses the stochastic Davis WLD, but the rank metric is
    defined for {e any} WLD — a user with extracted netlist statistics can
    evaluate architectures against the real distribution.  The format is
    two-column CSV, [length,count], one bin per line; a header line is
    permitted and blank lines and [#] comments are skipped.  Lengths are
    in whatever unit the caller declares (the rank pipeline expects gate
    pitches from {!Ir_assign.Problem.make}). *)

val of_string : string -> (Dist.t, string) result
(** Parses CSV text into a distribution.  Bins merge and sort as in
    {!Dist.of_bins}.  Errors carry the offending line number. *)

val to_string : Dist.t -> string
(** Renders the distribution as CSV (ascending lengths, with header). *)

val load : string -> (Dist.t, string) result
(** [load path] reads and parses the file. *)

val save : string -> Dist.t -> (unit, string) result
(** [save path d] writes the distribution. *)
