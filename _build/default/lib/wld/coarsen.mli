(** Instance coarsening: bunching and binning (paper Section 5.1).

    The rank DP is far too expensive to run one wire at a time on
    million-gate WLDs, so the paper assigns wires in {e bunches} of uniform
    length (bunch size 10000 in its experiments).  The rank error introduced
    is at most the size of the largest bunch.  A second, orthogonal
    {e binning} reduction (the paper's footnote 7) replaces groups of nearby
    lengths by their mean. *)

val bunch : bunch_size:int -> Dist.t -> Dist.bin array
(** [bunch ~bunch_size d] splits every bin of [d] into bunches of at most
    [bunch_size] wires of identical length — e.g. a 100-wire bin at bunch
    size 40 becomes bunches of 40, 40 and 20 — and returns all bunches
    sorted by {e non-increasing} length (the assignment order of the rank
    algorithms).  Total wire count is preserved exactly.
    @raise Invalid_argument if [bunch_size <= 0]. *)

val bunch_count : bunch_size:int -> Dist.t -> int
(** Number of bunches {!bunch} would produce, without building them. *)

val bin : group:int -> Dist.t -> Dist.t
(** [bin ~group d] merges every run of [group] consecutive bins into one bin
    whose length is the count-weighted mean of the group and whose count is
    the group's total — footnote 7's reduction (which uses the simple mean;
    the weighted mean conserves total wire length better and coincides for
    equal counts).  Total wire count is preserved exactly.
    @raise Invalid_argument if [group <= 0]. *)

val max_bunch_error : bunch_size:int -> Dist.t -> int
(** Upper bound on the rank error introduced by bunching: the size of the
    largest bunch actually formed. *)
