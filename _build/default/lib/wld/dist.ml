type bin = { length : float; count : int } [@@deriving show, eq]
type t = { bins : bin array; total : int } [@@deriving show, eq]

let of_bins bins =
  List.iter
    (fun b ->
      if b.count < 0 then invalid_arg "Dist.of_bins: negative count";
      if not (b.length > 0.0) then
        invalid_arg "Dist.of_bins: lengths must be > 0")
    bins;
  let nonzero = List.filter (fun b -> b.count > 0) bins in
  let sorted = List.sort (fun a b -> Float.compare a.length b.length) nonzero in
  let merged =
    List.fold_left
      (fun acc b ->
        match acc with
        | prev :: rest when prev.length = b.length ->
            { prev with count = prev.count + b.count } :: rest
        | _ -> b :: acc)
      [] sorted
    |> List.rev
  in
  let bins = Array.of_list merged in
  let total = Array.fold_left (fun acc b -> acc + b.count) 0 bins in
  { bins; total }

let bins t = Array.copy t.bins
let total t = t.total
let n_bins t = Array.length t.bins
let is_empty t = t.total = 0

let l_max t =
  if is_empty t then invalid_arg "Dist.l_max: empty distribution";
  t.bins.(Array.length t.bins - 1).length

let l_min t =
  if is_empty t then invalid_arg "Dist.l_min: empty distribution";
  t.bins.(0).length

let mean_length t =
  if is_empty t then 0.0
  else
    let sum =
      Array.fold_left
        (fun acc b -> acc +. (b.length *. float_of_int b.count))
        0.0 t.bins
    in
    sum /. float_of_int t.total

let total_wire_length t =
  Array.fold_left
    (fun acc b -> acc +. (b.length *. float_of_int b.count))
    0.0 t.bins

let count_at_least t l =
  Array.fold_left
    (fun acc b -> if b.length >= l then acc + b.count else acc)
    0 t.bins

let fold_desc f init t =
  let acc = ref init in
  for i = Array.length t.bins - 1 downto 0 do
    let b = t.bins.(i) in
    acc := f ~acc:!acc ~length:b.length ~count:b.count
  done;
  !acc

let to_desc_list t = fold_desc (fun ~acc ~length ~count -> { length; count } :: acc) [] t |> List.rev

let length_at_rank t r =
  if r < 1 || r > t.total then invalid_arg "Dist.length_at_rank: out of range";
  let rec find i remaining =
    let b = t.bins.(i) in
    if remaining <= b.count then b.length else find (i - 1) (remaining - b.count)
  in
  find (Array.length t.bins - 1) r

let map_length f t =
  of_bins
    (Array.to_list t.bins
    |> List.map (fun b -> { b with length = f b.length }))

let check_invariants t =
  let problems = ref [] in
  let add msg = problems := msg :: !problems in
  Array.iteri
    (fun i b ->
      if b.count <= 0 then add (Printf.sprintf "bin %d: non-positive count" i);
      if not (b.length > 0.0) then
        add (Printf.sprintf "bin %d: non-positive length" i);
      if i > 0 && t.bins.(i - 1).length >= b.length then
        add (Printf.sprintf "bin %d: not strictly ascending" i))
    t.bins;
  let sum = Array.fold_left (fun acc b -> acc + b.count) 0 t.bins in
  if sum <> t.total then add "total does not match bin counts";
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))
