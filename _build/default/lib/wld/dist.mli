(** Discrete wire length distributions.

    A distribution is a set of bins [(length, count)], lengths expressed in
    gate pitches, kept sorted by increasing length.  The paper consumes the
    WLD sorted by {e non-increasing} length (rank 1 = longest wire);
    {!fold_desc} and {!to_desc_list} provide that view. *)

type bin = { length : float;  (** wire length in gate pitches *)
             count : int  (** number of wires of this length *) }
[@@deriving show, eq]

type t [@@deriving show, eq]

val of_bins : bin list -> t
(** Builds a distribution from bins; bins with [count = 0] are dropped, bins
    with equal length are merged, and the result is sorted ascending.
    @raise Invalid_argument on negative counts or non-positive lengths. *)

val bins : t -> bin array
(** The bins, ascending by length.  The array is fresh. *)

val total : t -> int
(** Total number of wires. *)

val n_bins : t -> int

val l_max : t -> float
(** Length of the longest wire (gate pitches).
    @raise Invalid_argument on an empty distribution. *)

val l_min : t -> float
(** Length of the shortest wire (gate pitches).
    @raise Invalid_argument on an empty distribution. *)

val is_empty : t -> bool

val mean_length : t -> float
(** Count-weighted mean length (gate pitches). *)

val total_wire_length : t -> float
(** Sum of all wire lengths (gate pitches). *)

val count_at_least : t -> float -> int
(** [count_at_least t l] is the number of wires of length >= [l]. *)

val length_at_rank : t -> int -> float
(** [length_at_rank t r] is the length of the wire of rank [r] (1 = longest).
    @raise Invalid_argument if [r] is outside [1, total t]. *)

val fold_desc : (acc:'a -> length:float -> count:int -> 'a) -> 'a -> t -> 'a
(** Folds over bins from longest to shortest. *)

val to_desc_list : t -> bin list
(** Bins from longest to shortest. *)

val map_length : (float -> float) -> t -> t
(** Applies a strictly monotone transformation to every bin length (e.g.
    pitch-to-meter conversion). *)

val check_invariants : t -> (unit, string) result
(** Validates sortedness, positive lengths and positive counts; used by
    property tests. *)
