type params = { gates : int; rent_p : float; fan_out : float }
[@@deriving show, eq]

let params ?(rent_p = 0.6) ?(fan_out = 3.0) ~gates () =
  if gates <= 0 then invalid_arg "Davis.params: gates must be > 0";
  if not (rent_p > 0.0 && rent_p < 1.0) then
    invalid_arg "Davis.params: rent_p must lie in (0, 1)";
  if not (fan_out > 0.0) then invalid_arg "Davis.params: fan_out must be > 0";
  { gates; rent_p; fan_out }

let l_max p = 2.0 *. sqrt (float_of_int p.gates)

(* Integral of l^a over [l1, l2], handling the a = -1 logarithmic case
   (reached exactly when rent_p is 0, 0.5, 1 or 1.5). *)
let power_integral a l1 l2 =
  if Float.abs (a +. 1.0) < 1e-12 then log (l2 /. l1)
  else (Float.pow l2 (a +. 1.0) -. Float.pow l1 (a +. 1.0)) /. (a +. 1.0)

(* The unnormalized density is a sum of terms coef * l^expo; regions share
   the structure, so both the density and its antiderivative derive from the
   same term lists. *)
let region1_terms p =
  let n = float_of_int p.gates in
  let sqn = sqrt n in
  let e = (2.0 *. p.rent_p) -. 4.0 in
  [ (1.0 /. 3.0, e +. 3.0); (-2.0 *. sqn, e +. 2.0); (2.0 *. n, e +. 1.0) ]

let region2_terms p =
  let n = float_of_int p.gates in
  let sqn = sqrt n in
  let e = (2.0 *. p.rent_p) -. 4.0 in
  (* (2 sqrt N - l)^3 / 3 = (8 N^1.5 - 12 N l + 6 sqrt(N) l^2 - l^3) / 3 *)
  [
    (8.0 *. n *. sqn /. 3.0, e);
    (-4.0 *. n, e +. 1.0);
    (2.0 *. sqn, e +. 2.0);
    (-1.0 /. 3.0, e +. 3.0);
  ]

let eval_terms terms l =
  List.fold_left (fun acc (c, e) -> acc +. (c *. Float.pow l e)) 0.0 terms

let integrate_terms terms l1 l2 =
  List.fold_left
    (fun acc (c, e) -> acc +. (c *. power_integral e l1 l2))
    0.0 terms

(* Unnormalized cumulative from l = 1 to l, clamped to the support. *)
let raw_cumulative p l =
  let sqn = sqrt (float_of_int p.gates) in
  let lmax = 2.0 *. sqn in
  let l = Ir_phys.Numeric.clamp ~lo:1.0 ~hi:lmax l in
  let r1 = integrate_terms (region1_terms p) 1.0 (Float.min l sqn) in
  let r2 =
    if l > sqn then integrate_terms (region2_terms p) sqn l else 0.0
  in
  r1 +. r2

let total p = p.fan_out *. float_of_int p.gates

let norm p =
  let raw_total = raw_cumulative p (l_max p) in
  if not (raw_total > 0.0) then
    invalid_arg "Davis: degenerate distribution (raw mass is zero)";
  total p /. raw_total

let density p l =
  let n = float_of_int p.gates in
  let sqn = sqrt n in
  if l < 1.0 || l > 2.0 *. sqn then 0.0
  else
    let raw =
      if l <= sqn then eval_terms (region1_terms p) l
      else eval_terms (region2_terms p) l
    in
    norm p *. raw

let cumulative p l = norm p *. raw_cumulative p l

let generate p =
  let lmax = l_max p in
  let n_lengths = int_of_float (Float.round lmax) in
  let cum = cumulative p in
  (* Cumulative rounding keeps the grand total exact and lets unit counts
     appear in the sparse tail instead of rounding it away. *)
  let count_up_to l = int_of_float (Float.round (cum l)) in
  let bins = ref [] in
  let prev = ref (count_up_to 1.0) in
  (* Wires in (0.5, 1.5] land in the l = 1 bin; the density starts at 1. *)
  let first = count_up_to 1.5 in
  if first > 0 then bins := { Dist.length = 1.0; count = first } :: !bins;
  prev := first;
  for l = 2 to n_lengths do
    let upper = Float.min (float_of_int l +. 0.5) lmax in
    let c = count_up_to upper in
    let here = c - !prev in
    if here > 0 then
      bins := { Dist.length = float_of_int l; count = here } :: !bins;
    prev := c
  done;
  Dist.of_bins (List.rev !bins)

let generate_meters p ~pitch =
  if not (pitch > 0.0) then
    invalid_arg "Davis.generate_meters: pitch must be > 0";
  Dist.map_length (fun l -> l *. pitch) (generate p)
