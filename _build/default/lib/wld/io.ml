let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char ',' line with
    | [ a; b ] -> (
        match
          (float_of_string_opt (String.trim a),
           int_of_string_opt (String.trim b))
        with
        | Some length, Some count ->
            if count < 0 then
              Error (Printf.sprintf "line %d: negative count" lineno)
            else if not (length > 0.0) then
              Error (Printf.sprintf "line %d: non-positive length" lineno)
            else Ok (Some { Dist.length; count })
        | _ ->
            (* Tolerate one header line. *)
            if lineno = 1 then Ok None
            else Error (Printf.sprintf "line %d: expected 'length,count'" lineno))
    | _ -> Error (Printf.sprintf "line %d: expected two comma-separated fields" lineno)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> loop (lineno + 1) acc rest
        | Ok (Some bin) -> loop (lineno + 1) (bin :: acc) rest)
  in
  match loop 1 [] lines with
  | Error _ as e -> e
  | Ok bins -> (
      match Dist.of_bins bins with
      | d -> Ok d
      | exception Invalid_argument msg -> Error msg)

let to_string d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "length,count\n";
  Array.iter
    (fun (b : Dist.bin) ->
      Buffer.add_string buf (Printf.sprintf "%.17g,%d\n" b.length b.count))
    (Dist.bins d);
  Buffer.contents buf

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let save path d =
  match Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (to_string d))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
