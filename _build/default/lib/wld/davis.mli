(** The Davis–De–Meindl stochastic wire-length distribution
    (IEEE Trans. Electron Devices 45(3), 1998) — the WLD used by the paper
    (its footnote 2).

    The distribution of point-to-point interconnect lengths in an [N]-gate
    random logic design with Rent exponent [p] and average fan-out [f.o.] is,
    in gate-pitch units [l]:

    {v
      region I  (1 <= l <= sqrt N):
        i(l) = c * (l^3/3 - 2 sqrt(N) l^2 + 2 N l) * l^(2p-4)
      region II (sqrt N <= l <= 2 sqrt N):
        i(l) = c * ((2 sqrt(N) - l)^3 / 3) * l^(2p-4)
    v}

    where the constant [c = alpha k Gamma / 2] is fixed by normalizing the
    total interconnect count to [alpha * k * N = f.o. * N] (the [1 -
    N^(p-1)] correction of the exact Davis normalization is below 0.5% for
    the million-gate designs studied and is absorbed into the
    normalization).  The density is continuous at [sqrt N]. *)

type params = { gates : int; rent_p : float; fan_out : float }
[@@deriving show, eq]

val params :
  ?rent_p:float -> ?fan_out:float -> gates:int -> unit -> params
(** Defaults: [rent_p = 0.6] (the paper's value), [fan_out = 3.0].
    @raise Invalid_argument if [gates <= 0], [rent_p] outside (0, 1) or
    [fan_out <= 0]. *)

val l_max : params -> float
(** Maximum wire length, [2 sqrt N] gate pitches. *)

val density : params -> float -> float
(** [density p l] is the normalized interconnect density i(l) at length [l]
    gate pitches; zero outside [1, 2 sqrt N]. *)

val cumulative : params -> float -> float
(** [cumulative p l] is the expected number of wires of length <= [l],
    computed from the closed-form antiderivative (exact up to the
    normalization constant; no quadrature). *)

val total : params -> float
(** Expected total interconnect count, [f.o. * N]. *)

val generate : params -> Dist.t
(** Discretizes the distribution into integer gate-pitch bins
    [l = 1, 2, ...] with cumulative rounding, so the total count matches
    {!total} to within one wire and sparse tails are preserved. *)

val generate_meters : params -> pitch:float -> Dist.t
(** {!generate} followed by scaling lengths by the effective gate pitch in
    meters. *)
