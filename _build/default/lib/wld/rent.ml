let terminals ~k_rent ~p b =
  if b <= 0 then invalid_arg "Rent.terminals: block size must be > 0";
  k_rent *. Float.pow (float_of_int b) p

let alpha ~fan_out =
  if not (fan_out > 0.0) then invalid_arg "Rent.alpha: fan_out must be > 0";
  fan_out /. (fan_out +. 1.0)

let k_rent_of_fan_out ~fan_out =
  if not (fan_out > 0.0) then
    invalid_arg "Rent.k_rent_of_fan_out: fan_out must be > 0";
  fan_out +. 1.0

let expected_interconnects ~fan_out ~gates =
  alpha ~fan_out *. k_rent_of_fan_out ~fan_out *. float_of_int gates
