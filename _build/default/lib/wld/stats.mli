(** Descriptive statistics of wire length distributions.

    Reporting helpers over {!Dist.t}: count-weighted moments, quantiles
    from either end, logarithmic histograms for terminal display, and a
    one-call summary.  Lengths are in whatever unit the distribution
    carries (gate pitches from {!Davis.generate}, meters after
    scaling). *)

type summary = {
  total : int;
  mean : float;
  std : float;
  median : float;
  p90 : float;  (** 90th percentile of length *)
  p99 : float;
  l_min : float;
  l_max : float;
  total_length : float;
}
[@@deriving show]

val summary : Dist.t -> summary
(** @raise Invalid_argument on an empty distribution. *)

val quantile : Dist.t -> float -> float
(** [quantile d q] is the smallest length such that at least [q] of the
    wires are no longer than it, [0 < q <= 1].
    @raise Invalid_argument outside that range or on empty input. *)

val std : Dist.t -> float
(** Count-weighted standard deviation of length. *)

val histogram : ?bins:int -> Dist.t -> (float * float * int) list
(** [histogram d] buckets the wires into [bins] (default 12)
    logarithmically spaced length ranges; each triple is
    [(lo, hi, count)] with contiguous coverage of [l_min, l_max]. *)

val pp_histogram : Format.formatter -> Dist.t -> unit
(** ASCII bar rendering of {!histogram} (log-scaled bars, since WLD
    counts span six decades). *)
