type summary = {
  total : int;
  mean : float;
  std : float;
  median : float;
  p90 : float;
  p99 : float;
  l_min : float;
  l_max : float;
  total_length : float;
}
[@@deriving show]

let std d =
  let n = float_of_int (Dist.total d) in
  if n = 0.0 then 0.0
  else
    let mean = Dist.mean_length d in
    let var =
      Array.fold_left
        (fun acc (b : Dist.bin) ->
          let dl = b.length -. mean in
          acc +. (float_of_int b.count *. dl *. dl))
        0.0 (Dist.bins d)
      /. n
    in
    sqrt var

let quantile d q =
  if Dist.is_empty d then invalid_arg "Stats.quantile: empty distribution";
  if not (q > 0.0 && q <= 1.0) then
    invalid_arg "Stats.quantile: q must lie in (0, 1]";
  let target =
    int_of_float (Float.ceil (q *. float_of_int (Dist.total d)))
  in
  let bins = Dist.bins d in
  let rec walk i acc =
    let acc = acc + bins.(i).count in
    if acc >= target then bins.(i).length else walk (i + 1) acc
  in
  walk 0 0

let summary d =
  if Dist.is_empty d then invalid_arg "Stats.summary: empty distribution";
  {
    total = Dist.total d;
    mean = Dist.mean_length d;
    std = std d;
    median = quantile d 0.5;
    p90 = quantile d 0.9;
    p99 = quantile d 0.99;
    l_min = Dist.l_min d;
    l_max = Dist.l_max d;
    total_length = Dist.total_wire_length d;
  }

let histogram ?(bins = 12) d =
  if bins < 1 then invalid_arg "Stats.histogram: bins must be >= 1";
  if Dist.is_empty d then []
  else
    let lo = Dist.l_min d and hi = Dist.l_max d in
    if lo = hi then [ (lo, hi, Dist.total d) ]
    else
      let log_lo = log lo and log_hi = log hi in
      let step = (log_hi -. log_lo) /. float_of_int bins in
      let edge i = exp (log_lo +. (float_of_int i *. step)) in
      let counts = Array.make bins 0 in
      Array.iter
        (fun (b : Dist.bin) ->
          let idx =
            Ir_phys.Numeric.clamp ~lo:0.0
              ~hi:(float_of_int (bins - 1))
              (Float.floor ((log b.length -. log_lo) /. step))
          in
          let i = int_of_float idx in
          counts.(i) <- counts.(i) + b.count)
        (Dist.bins d);
      List.init bins (fun i -> (edge i, edge (i + 1), counts.(i)))

let pp_histogram ppf d =
  let buckets = histogram d in
  let max_count =
    List.fold_left (fun a (_, _, c) -> max a c) 1 buckets
  in
  let bar c =
    if c = 0 then ""
    else
      let w =
         1 + int_of_float (40.0 *. log (float_of_int c)
                           /. log (float_of_int (max max_count 2)))
      in
      String.make (min 41 (max 1 w)) '#'
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (lo, hi, c) ->
      Format.fprintf ppf "%10.1f - %10.1f  %9d  %s@," lo hi c (bar c))
    buckets;
  Format.fprintf ppf "@]"
