(** Rent's rule helpers.

    Rent's rule [T = k_rent * B^p] relates the number of terminals [T] of a
    logic block to its gate count [B].  The Davis wire-length distribution is
    derived from it; these helpers expose the constants the distribution
    needs and a few sanity-check quantities. *)

val terminals : k_rent:float -> p:float -> int -> float
(** [terminals ~k_rent ~p b] is [k_rent * b^p], the expected terminal count
    of a [b]-gate block. *)

val alpha : fan_out:float -> float
(** Fraction of terminals that are interconnect sources,
    [f.o. / (f.o. + 1)] (Davis Eq. for multi-fan-out correction). *)

val k_rent_of_fan_out : fan_out:float -> float
(** Average terminals per gate, [f.o. + 1].  This is the [k] of Rent's rule
    at the single-gate anchor. *)

val expected_interconnects : fan_out:float -> gates:int -> float
(** Expected number of point-to-point connections in an [N]-gate design:
    [alpha * k_rent * N = f.o. * N]. *)
