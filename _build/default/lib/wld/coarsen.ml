let split_bin ~bunch_size (b : Dist.bin) =
  let rec loop remaining acc =
    if remaining <= 0 then acc
    else
      let take = min remaining bunch_size in
      loop (remaining - take) ({ b with Dist.count = take } :: acc)
  in
  loop b.Dist.count []

let bunch ~bunch_size d =
  if bunch_size <= 0 then invalid_arg "Coarsen.bunch: bunch_size must be > 0";
  let desc = Dist.to_desc_list d in
  let bunches = List.concat_map (split_bin ~bunch_size) desc in
  (* split_bin returns its pieces in arbitrary-size-last order; lengths are
     equal within a bin so only the bin order matters. *)
  Array.of_list bunches

let bunch_count ~bunch_size d =
  if bunch_size <= 0 then
    invalid_arg "Coarsen.bunch_count: bunch_size must be > 0";
  Array.fold_left
    (fun acc (b : Dist.bin) -> acc + ((b.count + bunch_size - 1) / bunch_size))
    0 (Dist.bins d)

let bin ~group d =
  if group <= 0 then invalid_arg "Coarsen.bin: group must be > 0";
  let bins = Dist.bins d in
  let merged = ref [] in
  let i = ref 0 in
  let n = Array.length bins in
  while !i < n do
    let stop = min n (!i + group) in
    let count = ref 0 and weighted = ref 0.0 in
    for j = !i to stop - 1 do
      count := !count + bins.(j).count;
      weighted := !weighted +. (bins.(j).length *. float_of_int bins.(j).count)
    done;
    if !count > 0 then
      merged :=
        { Dist.length = !weighted /. float_of_int !count; count = !count }
        :: !merged;
    i := stop
  done;
  Dist.of_bins (List.rev !merged)

let max_bunch_error ~bunch_size d =
  if Dist.is_empty d then 0
  else
    Array.fold_left
      (fun acc (b : Dist.bin) ->
        let largest =
          if b.count >= bunch_size then bunch_size
          else b.count
        in
        max acc largest)
      0 (Dist.bins d)
