lib/netlist/circuit.pp.ml: Array Float Ppx_deriving_runtime Random
