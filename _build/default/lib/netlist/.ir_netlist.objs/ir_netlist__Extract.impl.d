lib/netlist/extract.pp.ml: Array Circuit Hashtbl Ir_wld Option Ppx_deriving_runtime
