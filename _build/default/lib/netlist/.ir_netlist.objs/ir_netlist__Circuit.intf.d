lib/netlist/circuit.pp.mli: Ppx_deriving_runtime
