lib/netlist/extract.pp.mli: Circuit Ir_wld Ppx_deriving_runtime
