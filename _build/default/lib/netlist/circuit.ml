type net = { src : int; dst : int } [@@deriving show, eq]

type t = {
  width : int;
  height : int;
  rent_p : float;
  fan_out : float;
  nets : net array;
}
[@@deriving show]

let gates t = t.width * t.height

let position t i =
  if i < 0 || i >= gates t then invalid_arg "Circuit.position: out of range";
  (i mod t.width, i / t.width)

let rent_terminals t b =
  (t.fan_out +. 1.0) *. Float.pow (float_of_int b) t.rent_p

let average_degree t = float_of_int (Array.length t.nets) /. float_of_int (gates t)

(* Smallest power-of-two side whose square holds [gates]. *)
let side_for gates =
  let rec grow s = if s * s >= gates then s else grow (2 * s) in
  grow 1

let generate ?(seed = 42) ?(rent_p = 0.6) ?(fan_out = 3.0) ~gates () =
  if gates <= 0 then invalid_arg "Circuit.generate: gates must be > 0";
  if not (rent_p > 0.0 && rent_p < 1.0) then
    invalid_arg "Circuit.generate: rent_p must lie in (0, 1)";
  if not (fan_out > 0.0) then
    invalid_arg "Circuit.generate: fan_out must be > 0";
  let side = side_for gates in
  let rng = Random.State.make [| seed |] in
  let k_rent = fan_out +. 1.0 in
  let alpha = fan_out /. (fan_out +. 1.0) in
  let terminals b = k_rent *. Float.pow (float_of_int b) rent_p in
  let nets = ref [] in
  let gate_at x y = (y * side) + x in
  (* Uniform gate inside the square block at (x0, y0) with side s. *)
  let random_gate x0 y0 s =
    gate_at (x0 + Random.State.int rng s) (y0 + Random.State.int rng s)
  in
  let rec build x0 y0 s =
    if s > 1 then begin
      let h = s / 2 in
      let block = s * s and child = h * h in
      (* Two-pin nets crossing between the four children at this level:
         each crossing net consumes one terminal of two children, so
         crossings = alpha * (4 T(child) - T(block)) / 2, the Davis/Rent
         bookkeeping with the multi-fan-out source fraction alpha. *)
      let crossings =
        int_of_float
          (Float.round
             (alpha
             *. ((4.0 *. terminals child) -. terminals block)
             /. 2.0))
      in
      let quadrant = [| (x0, y0); (x0 + h, y0); (x0, y0 + h); (x0 + h, y0 + h) |] in
      for _ = 1 to max 0 crossings do
        let a = Random.State.int rng 4 in
        let b = (a + 1 + Random.State.int rng 3) mod 4 in
        let ax, ay = quadrant.(a) and bx, by = quadrant.(b) in
        nets := { src = random_gate ax ay h; dst = random_gate bx by h } :: !nets
      done;
      Array.iter (fun (cx, cy) -> build cx cy h) quadrant
    end
  in
  build 0 0 side;
  {
    width = side;
    height = side;
    rent_p;
    fan_out;
    nets = Array.of_list !nets;
  }
