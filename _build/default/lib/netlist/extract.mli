(** Wire-length extraction from placed synthetic circuits.

    The generated circuit's hierarchy {e is} its placement (children of a
    block are its spatial quadrants), so point-to-point wire lengths are
    Manhattan distances on the gate grid — the same length measure the
    Davis derivation uses.  The result is a {!Ir_wld.Dist.t} in gate
    pitches, directly usable by the rank pipeline in place of the
    closed-form WLD. *)

val wld : Circuit.t -> Ir_wld.Dist.t
(** Distribution of Manhattan net lengths, in gate pitches.  Zero-length
    nets (both pins on the same gate) are counted at length 1, the
    shortest routable wire. *)

type validation = {
  gates : int;
  measured_mean : float;  (** mean extracted length, gate pitches *)
  davis_mean : float;  (** mean of the closed-form WLD, same parameters *)
  measured_tail : float;  (** fraction of wires >= sqrt(gates)/4 *)
  davis_tail : float;
  net_count_ratio : float;
      (** extracted nets / (fan_out * gates); ~0.5 by construction, see
          {!Circuit} on terminal-pair vs directed-connection counting *)
}
[@@deriving show]

val validate_against_davis : Circuit.t -> validation
(** Side-by-side summary statistics of the extracted distribution and the
    Davis closed form at the circuit's (N, p, f.o.) — the reproduction's
    check of the paper's footnote-2 modelling assumption.  The test suite
    asserts the means agree within a factor and the tails order
    consistently with Rent exponents. *)
