let wld circuit =
  let counts = Hashtbl.create 256 in
  Array.iter
    (fun { Circuit.src; dst } ->
      let sx, sy = Circuit.position circuit src in
      let dx, dy = Circuit.position circuit dst in
      let len = max 1 (abs (sx - dx) + abs (sy - dy)) in
      Hashtbl.replace counts len
        (1 + Option.value (Hashtbl.find_opt counts len) ~default:0))
    circuit.Circuit.nets;
  Ir_wld.Dist.of_bins
    (Hashtbl.fold
       (fun len count acc ->
         { Ir_wld.Dist.length = float_of_int len; count } :: acc)
       counts [])

type validation = {
  gates : int;
  measured_mean : float;
  davis_mean : float;
  measured_tail : float;
  davis_tail : float;
  net_count_ratio : float;
}
[@@deriving show]

let validate_against_davis circuit =
  let gates = Circuit.gates circuit in
  let measured = wld circuit in
  let davis =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates ~rent_p:circuit.Circuit.rent_p
         ~fan_out:circuit.Circuit.fan_out ())
  in
  let cutoff = sqrt (float_of_int gates) /. 4.0 in
  let tail d =
    float_of_int (Ir_wld.Dist.count_at_least d cutoff)
    /. float_of_int (Ir_wld.Dist.total d)
  in
  {
    gates;
    measured_mean = Ir_wld.Dist.mean_length measured;
    davis_mean = Ir_wld.Dist.mean_length davis;
    measured_tail = tail measured;
    davis_tail = tail davis;
    net_count_ratio =
      float_of_int (Ir_wld.Dist.total measured)
      /. (circuit.Circuit.fan_out *. float_of_int gates);
  }
