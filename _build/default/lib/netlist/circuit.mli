(** Synthetic Rent-rule circuits.

    The paper takes the Davis stochastic WLD on faith (its footnote 2);
    Davis et al. derived it from Rent's rule and validated it against
    placed designs.  This module closes that loop inside the
    reproduction: it {e generates} gate-level circuits whose hierarchical
    connectivity obeys Rent's rule — the construction of Stroobandt-style
    synthetic benchmarks — so that {!Placement} and {!Extract} can
    measure an actual wire length distribution and compare it with the
    closed form.

    Construction: gates sit on a w x h grid; the grid is quadrisected
    recursively, and at every hierarchy level the number of nets crossing
    the cut is set by Rent's rule,

    {v  cuts(block) = alpha * (sum T(children) - T(block)) / 2,
        T(B) = k_rent * B^p  v}

    with [alpha] the source fraction (Davis's f.o./(f.o.+1)).  Each
    crossing net connects a uniformly drawn gate in one child to one in a
    sibling — two-pin nets, matching the point-to-point interconnects the
    Davis distribution counts.  All randomness flows from a caller-seeded
    PRNG, so circuits are reproducible.

    Terminal conservation fixes the {e count} scale at [alpha k N / 2]
    two-pin nets — about half of Davis's [f.o. * N] directed connections,
    because a real multi-fan-out net shares its source terminal across
    sinks while independent two-pin nets cannot.  The distribution's
    {e shape} is unaffected (see {!Extract.validate_against_davis}), and
    shape is what the rank pipeline consumes. *)

type net = { src : int; dst : int } [@@deriving show, eq]
(** A two-pin net between gate indices (gate i sits at grid position
    [(i mod width, i / width)]). *)

type t = {
  width : int;
  height : int;
  rent_p : float;
  fan_out : float;
  nets : net array;
}
[@@deriving show]

val gates : t -> int
(** [width * height]. *)

val position : t -> int -> int * int
(** Grid coordinates of a gate index.
    @raise Invalid_argument when out of range. *)

val generate :
  ?seed:int -> ?rent_p:float -> ?fan_out:float -> gates:int -> unit -> t
(** Generates a circuit with at least [gates] gates (rounded up to the
    enclosing power-of-four grid so quadrisection is exact).  Defaults:
    [seed = 42], [rent_p = 0.6], [fan_out = 3.0] — the paper's WLD
    parameters.  The net count is close to [alpha * (fan_out + 1) *
    gates / 2] (see the module preamble; tests bound the deviation).
    @raise Invalid_argument if [gates <= 0] or parameters are out of
    range. *)

val rent_terminals : t -> int -> float
(** [rent_terminals t b] is the Rent terminal estimate [k * b^p] with the
    circuit's parameters, exposed for tests. *)

val average_degree : t -> float
(** Nets per gate — should approach the fan-out. *)
