test/test_phys.ml: Alcotest Float Helpers Ir_phys List QCheck2
