test/test_assign.mli:
