test/test_ia.mli:
