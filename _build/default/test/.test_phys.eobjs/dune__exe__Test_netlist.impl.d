test/test_netlist.ml: Alcotest Array Helpers Ir_assign Ir_core Ir_ia Ir_netlist Ir_tech Ir_wld QCheck2
