test/test_wld.mli:
