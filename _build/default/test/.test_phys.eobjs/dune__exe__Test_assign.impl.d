test/test_assign.ml: Alcotest Array Helpers Ir_assign Ir_ia Ir_tech Ir_wld List Printf QCheck2
