test/helpers.ml: Alcotest Array Float Ir_assign Ir_ia Ir_phys Ir_tech Ir_wld List Printf QCheck2 QCheck_alcotest
