test/test_ext.ml: Alcotest Helpers Ir_core Ir_ext Ir_ia Ir_tech List
