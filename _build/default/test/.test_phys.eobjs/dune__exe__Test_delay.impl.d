test/test_delay.ml: Alcotest Float Format Helpers Ir_delay Ir_phys Ir_tech List Printf QCheck2
