test/test_phys.mli:
