test/test_core.ml: Alcotest Array Astring_contains Format Helpers Ir_assign Ir_core Ir_ia Ir_sweep Ir_tech Ir_wld List QCheck2
