test/test_rc.ml: Alcotest Helpers Ir_phys Ir_rc Ir_tech List
