test/test_ia.ml: Alcotest Float Helpers Ir_ia Ir_phys Ir_rc Ir_tech
