test/test_integration.ml: Alcotest Array Fun Helpers Ir_assign Ir_core Ir_ia Ir_rc Ir_tech Ir_wld List Printf QCheck2
