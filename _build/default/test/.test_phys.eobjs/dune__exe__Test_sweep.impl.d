test/test_sweep.ml: Alcotest Array Astring_contains Buffer Filename Float Format Fun Helpers In_channel Ir_sweep Ir_tech List Printf Sys
