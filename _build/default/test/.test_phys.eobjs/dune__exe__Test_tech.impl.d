test/test_tech.ml: Alcotest Astring_contains Format Helpers Ir_phys Ir_tech List Option
