test/test_wld.ml: Alcotest Array Astring_contains Filename Format Fun Helpers Ir_phys Ir_wld List QCheck2 Sys
