(* Tests for the synthetic Rent-rule circuit generator and the WLD
   extraction that validates the Davis closed form. *)

open Helpers

let circuit = Ir_netlist.Circuit.generate ~gates:16384 ()

let test_generate_shape () =
  Alcotest.(check int) "power-of-four grid" (128 * 128)
    (Ir_netlist.Circuit.gates circuit);
  Alcotest.(check bool) "has nets" true
    (Array.length circuit.nets > 1000);
  (* All endpoints in range, none degenerate at generation level
     (src and dst sit in different quadrants of some block). *)
  Array.iter
    (fun { Ir_netlist.Circuit.src; dst } ->
      Alcotest.(check bool) "src in range" true
        (src >= 0 && src < Ir_netlist.Circuit.gates circuit);
      Alcotest.(check bool) "dst in range" true
        (dst >= 0 && dst < Ir_netlist.Circuit.gates circuit);
      Alcotest.(check bool) "two distinct pins" true (src <> dst))
    circuit.nets

let test_generate_deterministic () =
  let a = Ir_netlist.Circuit.generate ~seed:7 ~gates:1024 () in
  let b = Ir_netlist.Circuit.generate ~seed:7 ~gates:1024 () in
  Alcotest.(check bool) "same seed, same circuit" true (a.nets = b.nets);
  let c = Ir_netlist.Circuit.generate ~seed:8 ~gates:1024 () in
  Alcotest.(check bool) "different seed, different circuit" true
    (a.nets <> c.nets)

let test_generate_validation () =
  Alcotest.check_raises "gates"
    (Invalid_argument "Circuit.generate: gates must be > 0") (fun () ->
      ignore (Ir_netlist.Circuit.generate ~gates:0 ()));
  Alcotest.check_raises "rent"
    (Invalid_argument "Circuit.generate: rent_p must lie in (0, 1)")
    (fun () -> ignore (Ir_netlist.Circuit.generate ~rent_p:1.2 ~gates:64 ()))

let test_position () =
  let x, y = Ir_netlist.Circuit.position circuit 129 in
  Alcotest.(check (pair int int)) "position" (1, 1) (x, y);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Circuit.position: out of range") (fun () ->
      ignore
        (Ir_netlist.Circuit.position circuit
           (Ir_netlist.Circuit.gates circuit)))

let test_net_count_scale () =
  (* Terminal conservation puts the count near alpha * k * N / 2. *)
  let n = float_of_int (Ir_netlist.Circuit.gates circuit) in
  let expected = 0.75 *. 4.0 *. n /. 2.0 in
  let actual = float_of_int (Array.length circuit.nets) in
  check_in_range "net count near terminal bookkeeping"
    ~lo:(0.75 *. expected) ~hi:(1.25 *. expected) actual

let test_extracted_wld () =
  let d = Ir_netlist.Extract.wld circuit in
  Alcotest.(check (result unit string)) "valid distribution" (Ok ())
    (Ir_wld.Dist.check_invariants d);
  Alcotest.(check int) "mass equals nets" (Array.length circuit.nets)
    (Ir_wld.Dist.total d);
  Alcotest.(check bool) "lengths bounded by grid diameter" true
    (Ir_wld.Dist.l_max d <= 2.0 *. 128.0)

let test_davis_agreement () =
  let v = Ir_netlist.Extract.validate_against_davis circuit in
  check_in_range "mean within 2x of Davis"
    ~lo:(0.5 *. v.davis_mean) ~hi:(2.0 *. v.davis_mean) v.measured_mean;
  check_in_range "tail within 3x of Davis"
    ~lo:(v.davis_tail /. 3.0) ~hi:(3.0 *. v.davis_tail) v.measured_tail;
  check_in_range "net count ratio ~ 0.5" ~lo:0.35 ~hi:0.7 v.net_count_ratio

let test_rent_tail_ordering () =
  (* Higher Rent exponent must fatten the measured tail too, exactly as
     it does the closed form (Davis suite's companion property). *)
  let tail p =
    let c = Ir_netlist.Circuit.generate ~seed:3 ~rent_p:p ~gates:16384 () in
    let v = Ir_netlist.Extract.validate_against_davis c in
    v.measured_tail
  in
  Alcotest.(check bool) "p=0.7 tail > p=0.5 tail" true (tail 0.7 > tail 0.5)

let test_rank_on_synthetic_wld () =
  (* End-to-end: rank an architecture against the measured WLD. *)
  let design = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:16384 () in
  let arch = Ir_ia.Arch.make ~design () in
  let wld = Ir_netlist.Extract.wld circuit in
  let problem = Ir_assign.Problem.make ~bunch_size:200 ~arch ~wld () in
  let o = Ir_core.Rank_dp.compute problem in
  Alcotest.(check bool) "synthetic netlist is rankable" true o.assignable;
  Alcotest.(check bool) "positive rank" true (o.rank_wires > 0)

let prop_generation_sane =
  qtest ~count:20 "random parameters generate consistent circuits"
    QCheck2.Gen.(triple (int_range 1 1000) (float_range 0.35 0.75)
                   (int_range 64 4096))
    (fun (seed, rent_p, gates) ->
      let c = Ir_netlist.Circuit.generate ~seed ~rent_p ~gates () in
      Array.for_all
        (fun { Ir_netlist.Circuit.src; dst } ->
          src <> dst && src >= 0 && dst >= 0
          && src < Ir_netlist.Circuit.gates c
          && dst < Ir_netlist.Circuit.gates c)
        c.nets
      && (gates <= 1 || Array.length c.nets > 0))

let () =
  Alcotest.run "netlist"
    [
      ( "circuit",
        [
          Alcotest.test_case "shape" `Quick test_generate_shape;
          Alcotest.test_case "deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "validation" `Quick test_generate_validation;
          Alcotest.test_case "position" `Quick test_position;
          Alcotest.test_case "net count scale" `Quick test_net_count_scale;
          prop_generation_sane;
        ] );
      ( "extract",
        [
          Alcotest.test_case "wld" `Quick test_extracted_wld;
          Alcotest.test_case "agrees with Davis" `Quick test_davis_agreement;
          Alcotest.test_case "Rent tail ordering" `Slow
            test_rent_tail_ordering;
          Alcotest.test_case "rank on synthetic WLD" `Slow
            test_rank_on_synthetic_wld;
        ] );
    ]
