(* Tests for the resistance/capacitance models. *)

open Helpers

let um = Ir_phys.Units.um

let geom =
  Ir_tech.Geometry.v ~width:(um 0.2) ~spacing:(um 0.21) ~thickness:(um 0.34)
    ()

let test_resistance () =
  let rho = 2.2e-8 in
  let r = Ir_rc.Resistance.per_m ~rho geom in
  check_close "rho / (W T)" (rho /. (um 0.2 *. um 0.34)) r;
  check_in_range "plausible ohm/um at 130nm Mx" ~lo:0.1e6 ~hi:1.0e6 r;
  Alcotest.check_raises "bad rho"
    (Invalid_argument "Resistance.per_m: rho must be > 0") (fun () ->
      ignore (Ir_rc.Resistance.per_m ~rho:0.0 geom))

let test_resistance_barrier () =
  let rho = 2.2e-8 in
  let r0 = Ir_rc.Resistance.per_m ~rho geom in
  let rb = Ir_rc.Resistance.per_m_with_barrier ~rho ~barrier:(um 0.01) geom in
  Alcotest.(check bool) "barrier increases resistance" true (rb > r0);
  check_close "zero barrier is plain" r0
    (Ir_rc.Resistance.per_m_with_barrier ~rho ~barrier:0.0 geom);
  Alcotest.check_raises "barrier eats conductor"
    (Invalid_argument "Resistance.per_m_with_barrier: barrier consumes conductor")
    (fun () ->
      ignore (Ir_rc.Resistance.per_m_with_barrier ~rho ~barrier:(um 0.2) geom))

let test_temperature () =
  check_close "tcr derating" 1.39
    (Ir_rc.Resistance.temperature_derated ~r:1.0 ~tcr:0.0039 ~dt:100.0);
  check_close "sheet" (2.2e-8 /. um 0.34)
    (Ir_rc.Resistance.sheet_resistance ~rho:2.2e-8 ~thickness:(um 0.34))

let test_capacitance_models () =
  let k = 3.9 in
  (* Plate ground is W/H. *)
  check_close "plate ground"
    (k *. Ir_phys.Const.eps0 *. (um 0.2 /. um 0.34))
    (Ir_rc.Capacitance.ground_per_m ~model:Parallel_plate ~k geom);
  (* Coupling_only has zero ground... *)
  check_close "coupling-only ground" 0.0
    (Ir_rc.Capacitance.ground_per_m ~model:Coupling_only ~k geom);
  (* ...and plate coupling T/S. *)
  check_close "lateral plate"
    (k *. Ir_phys.Const.eps0 *. (um 0.34 /. um 0.21))
    (Ir_rc.Capacitance.coupling_per_m ~model:Coupling_only ~k geom);
  (* Sakurai exceeds bare plates (fringe). *)
  Alcotest.(check bool)
    "sakurai ground > plate ground" true
    (Ir_rc.Capacitance.ground_per_m ~model:Sakurai ~k geom
    > Ir_rc.Capacitance.ground_per_m ~model:Parallel_plate ~k geom)

let test_effective () =
  let k = 3.9 in
  let c2 = Ir_rc.Capacitance.effective_per_m ~model:Coupling_only ~k
      ~miller:2.0 geom in
  let c1 = Ir_rc.Capacitance.effective_per_m ~model:Coupling_only ~k
      ~miller:1.0 geom in
  check_close "coupling-only scales with miller" 2.0 (c2 /. c1);
  let ck = Ir_rc.Capacitance.effective_per_m ~model:Coupling_only ~k:1.95
      ~miller:2.0 geom in
  check_close "scales with k" 2.0 (c2 /. ck);
  let `Ground g, `Coupling c, `Total t =
    Ir_rc.Capacitance.breakdown ~model:Sakurai ~k ~miller:2.0 geom
  in
  check_close "breakdown sums" t (g +. c);
  check_close "breakdown matches effective"
    (Ir_rc.Capacitance.effective_per_m ~model:Sakurai ~k ~miller:2.0 geom)
    t

let test_validation () =
  Alcotest.check_raises "bad k" (Invalid_argument "Capacitance: k must be > 0")
    (fun () -> ignore (Ir_rc.Capacitance.ground_per_m ~k:0.0 geom));
  Alcotest.check_raises "bad miller"
    (Invalid_argument "Capacitance: miller must be >= 0") (fun () ->
      ignore (Ir_rc.Capacitance.effective_per_m ~k:3.9 ~miller:(-1.0) geom))

let prop_capacitance_positive =
  qtest "all models give positive coupling" Helpers.gen_geometry (fun g ->
      List.for_all
        (fun model ->
          Ir_rc.Capacitance.coupling_per_m ~model ~k:3.9 g > 0.0)
        [ Ir_rc.Capacitance.Parallel_plate; Parallel_plate_fringe; Sakurai;
          Coupling_only ])

let prop_capacitance_monotone_k =
  qtest "effective capacitance increases with k" Helpers.gen_geometry
    (fun g ->
      let at k =
        Ir_rc.Capacitance.effective_per_m ~model:Sakurai ~k ~miller:2.0 g
      in
      at 3.9 > at 2.0 && at 2.0 > at 1.5)

let prop_resistance_monotone =
  qtest "resistance decreases with cross-section" Helpers.gen_geometry
    (fun g ->
      let bigger = Ir_tech.Geometry.scaled g 1.5 in
      Ir_rc.Resistance.per_m ~rho:2.2e-8 bigger
      < Ir_rc.Resistance.per_m ~rho:2.2e-8 g)

let test_noise_basics () =
  let r = Ir_rc.Noise.peak_ratio geom in
  check_in_range "peak ratio sensible" ~lo:0.05 ~hi:0.8 r;
  check_close "shielded victim is quiet" 0.0
    (Ir_rc.Noise.peak_ratio ~miller:1.0 geom);
  Alcotest.(check bool) "passes generous limit" true
    (Ir_rc.Noise.passes ~limit:0.9 geom);
  Alcotest.(check bool) "fails tiny limit" false
    (Ir_rc.Noise.passes ~limit:0.01 geom);
  Alcotest.check_raises "negative limit"
    (Invalid_argument "Noise.passes: negative limit") (fun () ->
      ignore (Ir_rc.Noise.passes ~limit:(-0.1) geom))

let prop_noise_bounded =
  qtest "peak noise ratio lies in [0, 1)" Helpers.gen_geometry (fun g ->
      let r = Ir_rc.Noise.peak_ratio g in
      r >= 0.0 && r < 1.0)

let prop_noise_wider_spacing_quieter =
  qtest "wider spacing lowers noise" Helpers.gen_geometry (fun g ->
      let wider =
        Ir_tech.Geometry.v ~width:g.width ~spacing:(2.0 *. g.spacing)
          ~thickness:g.thickness ~ild_thickness:g.ild_thickness
          ~via_width:g.via_width ()
      in
      Ir_rc.Noise.peak_ratio wider <= Ir_rc.Noise.peak_ratio g +. 1e-12)

let () =
  Alcotest.run "rc"
    [
      ( "resistance",
        [
          Alcotest.test_case "per_m" `Quick test_resistance;
          Alcotest.test_case "barrier" `Quick test_resistance_barrier;
          Alcotest.test_case "temperature/sheet" `Quick test_temperature;
          prop_resistance_monotone;
        ] );
      ( "capacitance",
        [
          Alcotest.test_case "models" `Quick test_capacitance_models;
          Alcotest.test_case "effective" `Quick test_effective;
          Alcotest.test_case "validation" `Quick test_validation;
          prop_capacitance_positive;
          prop_capacitance_monotone_k;
        ] );
      ( "noise",
        [
          Alcotest.test_case "basics" `Quick test_noise_basics;
          prop_noise_bounded;
          prop_noise_wider_spacing_quieter;
        ] );
    ]
