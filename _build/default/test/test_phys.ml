(* Unit and property tests for the numeric/units substrate. *)

open Helpers

let test_constants () =
  check_in_range "eps0" ~lo:8.8e-12 ~hi:8.9e-12 Ir_phys.Const.eps0;
  check_in_range "rho Cu" ~lo:1.5e-8 ~hi:1.9e-8 Ir_phys.Const.rho_cu_bulk;
  check_close "k SiO2" 3.9 Ir_phys.Const.k_sio2;
  Alcotest.(check bool)
    "Al more resistive than Cu" true
    (Ir_phys.Const.rho_al_bulk > Ir_phys.Const.rho_cu_bulk)

let test_units_roundtrip () =
  check_close "um" 1e-6 (Ir_phys.Units.um 1.0);
  check_close "nm" 130e-9 (Ir_phys.Units.nm 130.0);
  check_close "um roundtrip" 0.23 (Ir_phys.Units.to_um (Ir_phys.Units.um 0.23));
  check_close "ps roundtrip" 17.5 (Ir_phys.Units.to_ps (Ir_phys.Units.ps 17.5));
  check_close "ns" 2e-9 (Ir_phys.Units.ns 2.0);
  check_close "ghz" 1.7e9 (Ir_phys.Units.ghz 1.7);
  check_close "mhz" 5e8 (Ir_phys.Units.mhz 500.0);
  check_close "ff roundtrip" 0.7 (Ir_phys.Units.to_ff (Ir_phys.Units.ff 0.7));
  check_close "mm2" 4.47 (Ir_phys.Units.to_mm2 4.47e-6)

let test_close () =
  Alcotest.(check bool) "equal" true (Ir_phys.Numeric.close 1.0 1.0);
  Alcotest.(check bool)
    "within rtol" true
    (Ir_phys.Numeric.close ~rtol:1e-6 1.0 (1.0 +. 1e-8));
  Alcotest.(check bool)
    "outside rtol" false
    (Ir_phys.Numeric.close ~rtol:1e-9 1.0 1.001);
  Alcotest.(check bool)
    "atol catches near-zero" true
    (Ir_phys.Numeric.close ~atol:1e-9 0.0 1e-12)

let test_clamp () =
  check_close "below" 1.0 (Ir_phys.Numeric.clamp ~lo:1.0 ~hi:2.0 0.5);
  check_close "above" 2.0 (Ir_phys.Numeric.clamp ~lo:1.0 ~hi:2.0 3.0);
  check_close "inside" 1.5 (Ir_phys.Numeric.clamp ~lo:1.0 ~hi:2.0 1.5)

let test_linspace () =
  let xs = Ir_phys.Numeric.linspace 0.0 1.0 5 in
  Alcotest.(check int) "length" 5 (List.length xs);
  check_close "first" 0.0 (List.nth xs 0);
  check_close "middle" 0.5 (List.nth xs 2);
  check_close "last" 1.0 (List.nth xs 4);
  Alcotest.check_raises "n=1 rejected" (Invalid_argument "Numeric.linspace: need n >= 2")
    (fun () -> ignore (Ir_phys.Numeric.linspace 0.0 1.0 1))

let test_frange () =
  let xs = Ir_phys.Numeric.frange ~start:3.9 ~stop:1.8 ~step:(-0.1) in
  Alcotest.(check int) "descending length" 22 (List.length xs);
  check_close ~eps:1e-6 "last" 1.8 (List.nth xs 21);
  let ys = Ir_phys.Numeric.frange ~start:0.1 ~stop:0.5 ~step:0.1 in
  Alcotest.(check int) "ascending length" 5 (List.length ys)

let test_integrate () =
  let r = Ir_phys.Numeric.integrate (fun x -> x *. x) 0.0 1.0 in
  check_close ~eps:1e-8 "x^2 over [0,1]" (1.0 /. 3.0) r;
  let s = Ir_phys.Numeric.integrate sin 0.0 Float.pi in
  check_close ~eps:1e-8 "sin over [0,pi]" 2.0 s;
  let rev = Ir_phys.Numeric.integrate (fun x -> x) 1.0 0.0 in
  check_close ~eps:1e-8 "reversed bounds negate" (-0.5) rev

let test_bisect () =
  let root = Ir_phys.Numeric.bisect (fun x -> (x *. x) -. 2.0) 0.0 2.0 in
  check_close ~eps:1e-9 "sqrt 2" (Float.sqrt 2.0) root;
  Alcotest.check_raises "no sign change"
    (Invalid_argument "Numeric.bisect: no sign change over the bracket")
    (fun () -> ignore (Ir_phys.Numeric.bisect (fun x -> x +. 10.0) 0.0 1.0))

let test_golden_min () =
  let x = Ir_phys.Numeric.golden_min (fun x -> (x -. 1.3) ** 2.0) 0.0 4.0 in
  check_close ~eps:1e-6 "quadratic minimum" 1.3 x

let test_int_search_min () =
  let f i = abs (i - 17) in
  Alcotest.(check int) "unimodal" 17
    (Ir_phys.Numeric.int_search_min (fun i -> float_of_int (f i)) 0 100);
  Alcotest.(check int) "boundary lo" 0
    (Ir_phys.Numeric.int_search_min float_of_int 0 100);
  Alcotest.(check int) "single point" 7
    (Ir_phys.Numeric.int_search_min (fun _ -> 0.0) 7 7)

let test_sum_floats () =
  let xs = List.init 10000 (fun _ -> 0.1) in
  check_close ~eps:1e-12 "kahan" 1000.0 (Ir_phys.Numeric.sum_floats xs)

let prop_integrate_linearity =
  qtest "integrate is linear in the integrand"
    QCheck2.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (a, b) ->
      let f x = (a *. x) +. b in
      let got = Ir_phys.Numeric.integrate f 0.0 2.0 in
      Ir_phys.Numeric.close ~rtol:1e-6 ~atol:1e-9 got ((2.0 *. a) +. (2.0 *. b)))

let prop_golden_finds_min =
  qtest "golden section finds quadratic minimum"
    QCheck2.Gen.(float_range (-3.0) 3.0)
    (fun c ->
      let x = Ir_phys.Numeric.golden_min (fun x -> (x -. c) ** 2.0) (-4.0) 4.0 in
      Float.abs (x -. c) < 1e-5)

let () =
  Alcotest.run "phys"
    [
      ( "const",
        [ Alcotest.test_case "values plausible" `Quick test_constants ] );
      ( "units",
        [ Alcotest.test_case "roundtrips" `Quick test_units_roundtrip ] );
      ( "numeric",
        [
          Alcotest.test_case "close" `Quick test_close;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "frange" `Quick test_frange;
          Alcotest.test_case "integrate" `Quick test_integrate;
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "golden_min" `Quick test_golden_min;
          Alcotest.test_case "int_search_min" `Quick test_int_search_min;
          Alcotest.test_case "sum_floats" `Quick test_sum_floats;
          prop_integrate_linearity;
          prop_golden_finds_min;
        ] );
    ]
