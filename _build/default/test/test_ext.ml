(* Tests for the extensions: direct IA optimization, layer-count
   analyses, the n-tier generator. *)

open Helpers

let small_design =
  Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:40_000 ()

let test_scaled_stack () =
  let stack = Ir_tech.Stack.of_node Ir_tech.Node.N130 in
  let s =
    Ir_ext.Optimizer.scaled_stack stack ~pitch_scale:2.0 ~thickness_scale:0.5
  in
  check_close "Mx width doubled" (2.0 *. stack.semi_global.width)
    s.semi_global.width;
  check_close "Mx thickness halved" (0.5 *. stack.semi_global.thickness)
    s.semi_global.thickness;
  check_close "M1 untouched" stack.local.width s.local.width;
  check_close "via untouched" stack.semi_global.via_width
    s.semi_global.via_width

let test_optimizer () =
  let knobs =
    {
      Ir_ext.Optimizer.semi_global_pairs = [ 1; 2 ];
      global_pairs = [ 1 ];
      pitch_scale = [ 1.0; 1.25 ];
      thickness_scale = [ 1.0 ];
    }
  in
  let best, all =
    Ir_ext.Optimizer.optimize ~knobs ~bunch_size:500 small_design
  in
  Alcotest.(check int) "grid size" 4 (List.length all);
  List.iter
    (fun (c : Ir_ext.Optimizer.candidate) ->
      Alcotest.(check bool) "best dominates" true
        (best.outcome.rank_wires >= c.outcome.rank_wires))
    all;
  (* The baseline point is in the grid, so the optimum is at least it. *)
  let baseline =
    Ir_core.Rank.of_design ~bunch_size:500 small_design
  in
  Alcotest.(check bool) "optimum >= baseline" true
    (best.outcome.rank_wires >= baseline.rank_wires)

let test_layers_ladder () =
  let stack = Ir_tech.Stack.of_node Ir_tech.Node.N130 in
  let ladder = Ir_ext.Layers.ladder stack in
  Alcotest.(check int) "ladder length" 4 (List.length ladder);
  let last = List.nth ladder 3 in
  Alcotest.(check int) "tops out at full stack" 2
    last.Ir_ia.Arch.semi_global_pairs;
  Alcotest.(check int) "with global" 1 last.Ir_ia.Arch.global_pairs

let test_layers_assignability () =
  match
    Ir_ext.Layers.min_pairs_for_assignability ~bunch_size:500 small_design
  with
  | Error e -> Alcotest.failf "expected assignable: %s" e
  | Ok (first, steps) ->
      Alcotest.(check bool) "first step assignable" true
        first.outcome.assignable;
      (* Steps before the first assignable one are not assignable. *)
      let before =
        List.filter
          (fun (s : Ir_ext.Layers.step) ->
            s.structure <> first.structure
            && Ir_ia.Arch.show_structure s.structure
               < Ir_ia.Arch.show_structure first.structure)
          steps
      in
      ignore before;
      Alcotest.(check bool) "evaluated at least one step" true
        (List.length steps >= 1)

let test_layers_rank_target () =
  (match
     Ir_ext.Layers.min_pairs_for_rank ~bunch_size:500 ~target:0.2
       small_design
   with
  | Error e -> Alcotest.failf "0.2 should be reachable: %s" e
  | Ok (step, _) ->
      Alcotest.(check bool) "meets target" true
        (Ir_core.Outcome.normalized step.outcome >= 0.2));
  (match
     Ir_ext.Layers.min_pairs_for_rank ~bunch_size:500 ~target:0.999
       small_design
   with
  | Error _ -> ()
  | Ok (step, _) ->
      (* If it claims success the rank must genuinely be that high. *)
      Alcotest.(check bool) "high target honest" true
        (Ir_core.Outcome.normalized step.outcome >= 0.999));
  Alcotest.check_raises "bad target"
    (Invalid_argument "Layers.min_pairs_for_rank: target must lie in [0, 1]")
    (fun () ->
      ignore
        (Ir_ext.Layers.min_pairs_for_rank ~target:1.5 small_design))

let test_ntier_tiers () =
  let tiers = Ir_ext.Ntier.design_tiers ~tiers:3 small_design in
  Alcotest.(check int) "three tiers" 3 (List.length tiers);
  let demands = List.map (fun (t : Ir_ext.Ntier.tier) -> t.demand) tiers in
  let total = List.fold_left ( +. ) 0.0 demands in
  List.iter
    (fun d ->
      check_in_range "roughly equal demand" ~lo:(0.15 *. total)
        ~hi:(0.55 *. total) d)
    demands;
  (* ranges are increasing and disjoint *)
  let rec check_ranges = function
    | (a : Ir_ext.Ntier.tier) :: (b : Ir_ext.Ntier.tier) :: rest ->
        Alcotest.(check bool) "ranges ordered" true (a.l_max <= b.l_min);
        check_ranges (b :: rest)
    | _ -> ()
  in
  check_ranges tiers;
  (* pitch floor respected *)
  let floor =
    Ir_tech.Geometry.pitch (Ir_tech.Stack.of_node Ir_tech.Node.N130).local
  in
  List.iter
    (fun (t : Ir_ext.Ntier.tier) ->
      Alcotest.(check bool) "pitch above floor" true
        (Ir_tech.Geometry.pitch t.geometry >= floor -. 1e-12))
    tiers

let test_ntier_architecture () =
  let arch = Ir_ext.Ntier.architecture ~tiers:3 small_design in
  Alcotest.(check int) "three pairs" 3 (Ir_ia.Arch.pair_count arch);
  (* topmost pair is the global tier *)
  Alcotest.(check bool) "top is global" true
    ((Ir_ia.Arch.pair arch 0).cls = Ir_tech.Metal_class.Global)

let test_ntier_compare () =
  let `Ntier n, `Baseline b =
    Ir_ext.Ntier.compare_with_baseline ~bunch_size:500 small_design
  in
  Alcotest.(check bool) "both computed" true
    (n.total_wires = b.total_wires);
  Alcotest.(check bool) "n-tier routes the design" true n.assignable

let test_ntier_validation () =
  Alcotest.check_raises "bad tiers"
    (Invalid_argument "Ntier.design_tiers: tiers must be >= 1") (fun () ->
      ignore (Ir_ext.Ntier.design_tiers ~tiers:0 small_design));
  Alcotest.check_raises "bad fill"
    (Invalid_argument "Ntier.design_tiers: fill must lie in (0, 1]")
    (fun () -> ignore (Ir_ext.Ntier.design_tiers ~fill:0.0 small_design))

let test_anneal () =
  (* At a demanding clock the annealer improves on the baseline without
     degenerating; the best outcome is never worse than the start. *)
  let design =
    Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:40_000 ~clock:1.2e9 ()
  in
  let r = Ir_ext.Anneal.optimize ~steps:30 ~bunch_size:500 design in
  Alcotest.(check bool) "never worse than baseline" true
    (r.outcome.rank_wires >= r.initial.rank_wires);
  Alcotest.(check int) "one eval per step plus initial" 31 r.evaluations;
  Alcotest.(check bool) "some moves accepted" true (r.accepted > 0);
  (* Deterministic under a seed. *)
  let r2 = Ir_ext.Anneal.optimize ~steps:30 ~bunch_size:500 design in
  Alcotest.(check int) "deterministic" r.outcome.rank_wires
    r2.outcome.rank_wires;
  Alcotest.check_raises "bad steps"
    (Invalid_argument "Anneal.optimize: steps must be > 0") (fun () ->
      ignore (Ir_ext.Anneal.optimize ~steps:0 design))

let test_variation () =
  let s =
    Ir_ext.Variation.run ~samples:8 ~bunch_size:500 small_design
  in
  Alcotest.(check int) "sample count" 8 s.samples;
  Alcotest.(check bool) "min <= mean <= max" true
    (s.min <= s.mean && s.mean <= s.max);
  Alcotest.(check bool) "nominal in a sane band" true
    (s.nominal > 0.0 && s.nominal < 1.0);
  (* 5% parameter noise should not move the rank by an order of
     magnitude. *)
  check_in_range "mean near nominal" ~lo:(0.5 *. s.nominal)
    ~hi:(1.5 *. s.nominal) s.mean;
  (* Determinism: same seed, same summary. *)
  let s2 = Ir_ext.Variation.run ~samples:8 ~bunch_size:500 small_design in
  check_close "deterministic" s.mean s2.mean;
  (* Different seed perturbs the draws. *)
  let s3 =
    Ir_ext.Variation.run ~samples:8 ~seed:7 ~bunch_size:500 small_design
  in
  Alcotest.(check bool) "seed matters" true (s3.mean <> s.mean || s3.std <> s.std);
  Alcotest.check_raises "bad samples"
    (Invalid_argument "Variation.run: samples must be > 0") (fun () ->
      ignore (Ir_ext.Variation.run ~samples:0 small_design))

let test_variation_zero_sigma () =
  let spec =
    { Ir_ext.Variation.sigma_k = 0.0; sigma_miller = 0.0; sigma_rho = 0.0;
      sigma_device = 0.0 }
  in
  let s =
    Ir_ext.Variation.run ~spec ~samples:4 ~bunch_size:500 small_design
  in
  check_close "no noise, no spread" 0.0 s.std;
  check_close "mean is nominal" s.nominal s.mean

let () =
  Alcotest.run "ext"
    [
      ( "optimizer",
        [
          Alcotest.test_case "stack scaling" `Quick test_scaled_stack;
          Alcotest.test_case "grid search" `Slow test_optimizer;
        ] );
      ( "layers",
        [
          Alcotest.test_case "ladder" `Quick test_layers_ladder;
          Alcotest.test_case "min pairs for assignability" `Slow
            test_layers_assignability;
          Alcotest.test_case "min pairs for rank" `Slow
            test_layers_rank_target;
        ] );
      ( "anneal",
        [ Alcotest.test_case "improves and is deterministic" `Slow
            test_anneal ] );
      ( "variation",
        [
          Alcotest.test_case "summary" `Slow test_variation;
          Alcotest.test_case "zero sigma" `Slow test_variation_zero_sigma;
        ] );
      ( "ntier",
        [
          Alcotest.test_case "tier design" `Quick test_ntier_tiers;
          Alcotest.test_case "architecture" `Quick test_ntier_architecture;
          Alcotest.test_case "compare with baseline" `Slow test_ntier_compare;
          Alcotest.test_case "validation" `Quick test_ntier_validation;
        ] );
    ]
