(* Tests for materials, layer-pairs and architectures. *)

open Helpers

let design = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:100_000 ()

let test_materials () =
  let m = Ir_ia.Materials.default in
  check_close "default k" 3.9 m.k;
  check_close "default miller" 2.0 m.miller;
  Alcotest.(check bool) "paper cap model" true
    (m.cap_model = Ir_rc.Capacitance.Coupling_only);
  let m2 = Ir_ia.Materials.with_k m 2.0 in
  check_close "with_k" 2.0 m2.k;
  check_close "miller preserved" 2.0 m2.miller;
  Alcotest.check_raises "bad k" (Invalid_argument "Materials: k must be > 0")
    (fun () -> ignore (Ir_ia.Materials.v ~k:(-1.0) ()));
  check_close "rho override" 9.9e-8
    (Ir_ia.Materials.resistivity
       (Ir_ia.Materials.v ~rho:9.9e-8 ())
       Ir_tech.Node.N130);
  check_close "rho default"
    (Ir_tech.Node.resistivity Ir_tech.Node.N130)
    (Ir_ia.Materials.resistivity Ir_ia.Materials.default Ir_tech.Node.N130)

let test_layer_pair () =
  let stack = Ir_tech.Stack.of_node Ir_tech.Node.N130 in
  let device = Ir_tech.Device.of_node Ir_tech.Node.N130 in
  let p =
    Ir_ia.Layer_pair.make ~device ~materials:Ir_ia.Materials.default
      ~node:Ir_tech.Node.N130 ~cls:Ir_tech.Metal_class.Semi_global
      stack.semi_global
  in
  check_close "pitch" (Ir_tech.Geometry.pitch stack.semi_global)
    (Ir_ia.Layer_pair.pitch p);
  check_close "wire area" (2e-3 *. Ir_ia.Layer_pair.pitch p)
    (Ir_ia.Layer_pair.wire_area p 2e-3);
  check_close "repeater area = s_opt * quantum" (p.s_opt *. device.area)
    p.repeater_area;
  check_in_range "s_opt in the usual decades" ~lo:10.0 ~hi:500.0 p.s_opt;
  (* c̄ matches the materials model *)
  check_close "c per m"
    (Ir_rc.Capacitance.effective_per_m ~model:Ir_rc.Capacitance.Coupling_only
       ~k:3.9 ~miller:2.0 stack.semi_global)
    p.line.c_per_m

let test_arch_structure () =
  let arch = Ir_ia.Arch.make ~design () in
  Alcotest.(check int) "baseline pair count" 4 (Ir_ia.Arch.pair_count arch);
  Alcotest.(check bool) "topmost is global" true
    ((Ir_ia.Arch.pair arch 0).cls = Ir_tech.Metal_class.Global);
  Alcotest.(check bool) "bottom is local" true
    ((Ir_ia.Arch.pair arch 3).cls = Ir_tech.Metal_class.Local);
  check_close "capacity is both layers"
    (2.0 *. Ir_tech.Design.die_area design)
    (Ir_ia.Arch.pair_capacity arch);
  check_close "budget" (Ir_tech.Design.repeater_area design)
    (Ir_ia.Arch.repeater_budget arch);
  Alcotest.check_raises "pair out of range"
    (Invalid_argument "Arch.pair: index out of range") (fun () ->
      ignore (Ir_ia.Arch.pair arch 4))

let test_arch_validation () =
  Alcotest.check_raises "too many global pairs"
    (Invalid_argument "Arch.make: 3 global pairs requested, stack provides 1")
    (fun () ->
      ignore
        (Ir_ia.Arch.make
           ~structure:
             { Ir_ia.Arch.local_pairs = 0; semi_global_pairs = 0;
               global_pairs = 3 }
           ~design ()));
  Alcotest.check_raises "empty architecture"
    (Invalid_argument "Arch.make: architecture has no layer-pairs")
    (fun () ->
      ignore
        (Ir_ia.Arch.make
           ~structure:
             { Ir_ia.Arch.local_pairs = 0; semi_global_pairs = 0;
               global_pairs = 0 }
           ~design ()))

let test_blocked_area () =
  let arch = Ir_ia.Arch.make ~design () in
  check_close "no blockage" 0.0
    (Ir_ia.Arch.blocked_area arch ~pair_index:1 ~wires_above:0
       ~repeaters_above:0);
  let pad = (Ir_ia.Arch.pair arch 1).via_area in
  check_close "wires contribute v pads each" (3.0 *. 10.0 *. pad)
    (Ir_ia.Arch.blocked_area arch ~pair_index:1 ~wires_above:10
       ~repeaters_above:0);
  check_close "repeaters contribute one pad each" (7.0 *. pad)
    (Ir_ia.Arch.blocked_area arch ~pair_index:1 ~wires_above:0
       ~repeaters_above:7);
  Alcotest.check_raises "negative counts"
    (Invalid_argument "Arch.blocked_area: negative counts") (fun () ->
      ignore
        (Ir_ia.Arch.blocked_area arch ~pair_index:0 ~wires_above:(-1)
           ~repeaters_above:0))

let test_with_materials () =
  let arch = Ir_ia.Arch.make ~design () in
  let low_k = Ir_ia.Arch.with_materials arch (Ir_ia.Materials.v ~k:2.0 ()) in
  let c0 = (Ir_ia.Arch.pair arch 1).line.c_per_m in
  let c1 = (Ir_ia.Arch.pair low_k 1).line.c_per_m in
  check_close "c scales with k" (2.0 /. 3.9) (c1 /. c0);
  Alcotest.(check bool) "s_opt drops with k" true
    ((Ir_ia.Arch.pair low_k 1).s_opt < (Ir_ia.Arch.pair arch 1).s_opt);
  let faster = Ir_ia.Arch.with_design arch (Ir_tech.Design.with_clock design 1e9) in
  check_close "die preserved" arch.die_area faster.die_area

let test_via_model () =
  let g = Ir_tech.Geometry.v ~width:(Ir_phys.Units.um 0.2)
      ~spacing:(Ir_phys.Units.um 0.2) ~thickness:(Ir_phys.Units.um 0.3)
      ~via_width:(Ir_phys.Units.um 0.25) () in
  check_close "pad model matches geometry pad"
    (Ir_tech.Geometry.via_area g)
    (Ir_ia.Via_model.blocked_area_per_via Ir_ia.Via_model.Pad g);
  Alcotest.(check bool) "track model is more pessimistic" true
    (Ir_ia.Via_model.ratio g > 1.0);
  let pad = 2.0 *. Ir_phys.Units.um 0.25 in
  check_close "track dilation"
    ((pad +. g.spacing) *. (pad +. Ir_tech.Geometry.pitch g))
    (Ir_ia.Via_model.blocked_area_per_via Ir_ia.Via_model.Track g)

let test_arch_via_model () =
  let arch_pad = Ir_ia.Arch.make ~design () in
  let arch_track =
    Ir_ia.Arch.make ~via_model:Ir_ia.Via_model.Track ~design ()
  in
  let blocked a =
    Ir_ia.Arch.blocked_area a ~pair_index:2 ~wires_above:1000
      ~repeaters_above:100
  in
  Alcotest.(check bool) "track blocks more" true
    (blocked arch_track > blocked arch_pad)

let test_arch_custom () =
  let g = Ir_tech.Geometry.v ~width:(Ir_phys.Units.um 0.3)
      ~spacing:(Ir_phys.Units.um 0.3) ~thickness:(Ir_phys.Units.um 0.5) () in
  let arch =
    Ir_ia.Arch.custom ~design
      ~pairs:
        [ (Ir_tech.Metal_class.Global, g); (Ir_tech.Metal_class.Local, g) ]
      ()
  in
  Alcotest.(check int) "two pairs" 2 (Ir_ia.Arch.pair_count arch);
  Alcotest.(check int) "structure counts derived" 1
    arch.structure.global_pairs;
  check_close "pitch from explicit geometry" (Ir_phys.Units.um 0.6)
    (Ir_ia.Layer_pair.pitch (Ir_ia.Arch.pair arch 0));
  Alcotest.check_raises "empty pairs"
    (Invalid_argument "Arch.custom: architecture has no layer-pairs")
    (fun () -> ignore (Ir_ia.Arch.custom ~design ~pairs:[] ()))

let prop_s_opt_scales_with_k =
  qtest "repeater size scales as sqrt(k)" Helpers.gen_stack (fun stack ->
      let node = Ir_tech.Node.Custom { name = "q"; feature = 130e-9 } in
      let device = Ir_tech.Device.of_node node in
      let mk k =
        Ir_ia.Layer_pair.make ~device ~materials:(Ir_ia.Materials.v ~k ())
          ~node ~cls:Ir_tech.Metal_class.Semi_global stack.semi_global
      in
      let a = mk 3.9 and b = mk 1.95 in
      (* s_opt clamps at 1; skip degenerate cases *)
      a.s_opt <= 1.0 || b.s_opt <= 1.0
      || Float.abs ((a.s_opt /. b.s_opt) -. sqrt 2.0) < 1e-6)

let () =
  Alcotest.run "ia"
    [
      ("materials", [ Alcotest.test_case "basics" `Quick test_materials ]);
      ( "layer pair",
        [
          Alcotest.test_case "derived electricals" `Quick test_layer_pair;
          prop_s_opt_scales_with_k;
        ] );
      ( "arch",
        [
          Alcotest.test_case "structure" `Quick test_arch_structure;
          Alcotest.test_case "validation" `Quick test_arch_validation;
          Alcotest.test_case "blocked area" `Quick test_blocked_area;
          Alcotest.test_case "with_materials/design" `Quick
            test_with_materials;
          Alcotest.test_case "custom pairs" `Quick test_arch_custom;
          Alcotest.test_case "via model in blockage" `Quick
            test_arch_via_model;
        ] );
      ( "via model",
        [ Alcotest.test_case "pad vs track" `Quick test_via_model ] );
    ]
