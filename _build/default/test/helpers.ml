(* Shared helpers for the test suites: float assertions, random instance
   generators for the rank algorithms, and qcheck plumbing. *)

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Ir_phys.Numeric.close ~rtol:eps ~atol:eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_in_range msg ~lo ~hi x =
  if not (x >= lo && x <= hi) then
    Alcotest.failf "%s: %.12g outside [%.12g, %.12g]" msg x lo hi

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* ---- Random rank instances ------------------------------------------- *)

(* A synthetic stack with geometry drawn from sensible ranges; the global
   class is not forced to be faster than the others, so layer orderings
   both regular and inverted (the Figure 2 situation) are generated. *)
let gen_geometry =
  let open QCheck2.Gen in
  let dim lo hi = map (fun x -> Ir_phys.Units.um x) (float_range lo hi) in
  let* width = dim 0.1 0.6 in
  let* spacing = dim 0.1 0.6 in
  let* thickness = dim 0.15 1.2 in
  let* via_width = dim 0.1 0.4 in
  return (Ir_tech.Geometry.v ~width ~spacing ~thickness ~via_width ())

let gen_stack =
  let open QCheck2.Gen in
  let* local = gen_geometry in
  let* semi_global = gen_geometry in
  let* global = gen_geometry in
  return
    {
      Ir_tech.Stack.node =
        Ir_tech.Node.Custom { name = "qcheck"; feature = 130e-9 };
      local;
      semi_global;
      global;
      mx_layers = 5;
      mt_layers = 1;
    }

type instance = {
  problem : Ir_assign.Problem.t;
  label : string;  (* reproduction hint in failure output *)
}

(* Random instance: synthetic stack, a small design, and n single-wire
   bunches with decreasing lengths.  Shaped so that all the interesting
   regimes appear: sometimes everything fits, sometimes nothing, usually
   in between. *)
let gen_instance =
  let open QCheck2.Gen in
  let* stack = gen_stack in
  let* n = int_range 2 8 in
  let* m_total = int_range 1 3 in
  let* gates_scale = int_range 1 40 in
  let* clock_ghz = float_range 0.2 4.0 in
  let* fraction = float_range 0.01 0.9 in
  let* lengths =
    list_repeat n (float_range 0.05 4.0)
  in
  let node = Ir_tech.Node.Custom { name = "qcheck"; feature = 130e-9 } in
  let gates = 64 * gates_scale in
  let design =
    Ir_tech.Design.v ~node ~gates ~clock:(clock_ghz *. 1e9)
      ~repeater_fraction:fraction ()
  in
  let structure =
    match m_total with
    | 1 -> { Ir_ia.Arch.local_pairs = 0; semi_global_pairs = 1; global_pairs = 0 }
    | 2 -> { Ir_ia.Arch.local_pairs = 0; semi_global_pairs = 1; global_pairs = 1 }
    | _ -> { Ir_ia.Arch.local_pairs = 1; semi_global_pairs = 1; global_pairs = 1 }
  in
  let arch = Ir_ia.Arch.make ~structure ~stack ~design () in
  let sorted = List.sort (fun a b -> Float.compare b a) lengths in
  let bunches =
    Array.of_list
      (List.map
         (fun l -> { Ir_wld.Dist.length = Ir_phys.Units.mm l; count = 1 })
         sorted)
  in
  let problem = Ir_assign.Problem.of_bunches ~arch ~bunches () in
  let label =
    Printf.sprintf "n=%d m=%d gates=%d clock=%.2fGHz frac=%.2f" n m_total
      gates clock_ghz fraction
  in
  return { problem; label }

let baseline_130nm_small ?(gates = 40_000) ?(bunch_size = 500) () =
  (* A scaled-down version of the paper's baseline that keeps sweeps
     fast in unit tests. *)
  let design = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates () in
  let arch = Ir_ia.Arch.make ~design () in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates ~rent_p:0.6 ~fan_out:3.0 ())
  in
  Ir_assign.Problem.make ~bunch_size ~arch ~wld ()
