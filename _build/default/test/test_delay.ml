(* Tests for the Otten-Brayton delay model, optimal repeater sizing and
   the target-delay requirement models. *)

open Helpers

let device = Ir_tech.Device.of_node Ir_tech.Node.N130

let line =
  (* 130nm semi-global-ish parasitics. *)
  Ir_delay.Model.line ~r_per_m:3.2e5 ~c_per_m:2.2e-10

let mm = Ir_phys.Units.mm

let test_line_validation () =
  Alcotest.check_raises "bad r"
    (Invalid_argument "Model.line: r and c per meter must be > 0") (fun () ->
      ignore (Ir_delay.Model.line ~r_per_m:0.0 ~c_per_m:1e-10))

let test_segment_delay_structure () =
  (* Eq. (2): tau(l) = tau0 + P l + a rc l^2; check the three terms by
     finite differencing. *)
  let s = 50.0 in
  let d0 = Ir_delay.Model.segment_delay device line ~s 0.0 in
  check_close "l=0 leaves the intrinsic term"
    (0.7 *. device.r_o *. (device.c_o +. device.c_p))
    d0;
  let l = mm 1.0 in
  let quad = 0.4 *. 3.2e5 *. 2.2e-10 *. l *. l in
  let lin =
    0.7 *. ((2.2e-10 *. device.r_o /. s) +. (3.2e5 *. device.c_o *. s)) *. l
  in
  check_close "full decomposition" (d0 +. lin +. quad)
    (Ir_delay.Model.segment_delay device line ~s l)

let test_wire_delay_eq3 () =
  (* Eq. (3) equals eta times the segment delay of length l/eta. *)
  let s = 40.0 and l = mm 4.0 in
  let seg = Ir_delay.Model.segment_delay device line ~s (l /. 5.0) in
  check_close "D = eta * tau(l/eta)" (5.0 *. seg)
    (Ir_delay.Model.wire_delay device line ~s ~eta:5 l);
  Alcotest.check_raises "eta 0 rejected"
    (Invalid_argument "Model.wire_delay: eta must be >= 1") (fun () ->
      ignore (Ir_delay.Model.wire_delay device line ~s ~eta:0 l))

let test_s_opt_formula () =
  check_close "Eq. (4)"
    (sqrt (2.2e-10 *. device.r_o /. (device.c_o *. 3.2e5)))
    (Ir_delay.Model.s_opt device line)

let test_s_opt_minimizes () =
  (* The closed form matches a golden-section search of Eq. (3) in s. *)
  let l = mm 2.0 in
  let f s = Ir_delay.Model.wire_delay device line ~s ~eta:3 l in
  let s_num = Ir_phys.Numeric.golden_min f 1.0 2000.0 in
  let s_cl = Ir_delay.Model.s_opt device line in
  Alcotest.(check bool)
    (Printf.sprintf "closed form %.2f vs numeric %.2f" s_cl s_num)
    true
    (Float.abs (s_cl -. s_num) /. s_cl < 1e-3)

let test_eta_opt_minimizes () =
  let l = mm 3.0 in
  let s = Ir_delay.Model.s_opt device line in
  let eta = Ir_delay.Model.eta_opt device line ~s l in
  let d e = Ir_delay.Model.wire_delay device line ~s ~eta:e l in
  Alcotest.(check bool) "not beaten by neighbors" true
    (d eta <= d (eta + 1) && (eta = 1 || d eta <= d (eta - 1)));
  check_close "min_delay consistent" (d eta)
    (Ir_delay.Model.min_delay device line ~s l)

let test_repeaters_needed () =
  let l = mm 3.0 in
  let s = Ir_delay.Model.s_opt device line in
  let dmin = Ir_delay.Model.min_delay device line ~s l in
  (match
     Ir_delay.Model.repeaters_needed device line ~s ~target:(dmin *. 4.0) l
   with
  | None -> Alcotest.fail "loose target must be feasible"
  | Some eta ->
      let d e = Ir_delay.Model.wire_delay device line ~s ~eta:e l in
      Alcotest.(check bool) "meets" true (d eta <= dmin *. 4.0);
      Alcotest.(check bool) "minimal" true
        (eta = 1 || d (eta - 1) > dmin *. 4.0));
  Alcotest.(check bool) "impossible target" true
    (Ir_delay.Model.repeaters_needed device line ~s ~target:(dmin *. 0.9) l
    = None);
  Alcotest.(check bool) "floor achievable" true
    (Ir_delay.Model.repeaters_needed device line ~s ~target:dmin l <> None)

let prop_delay_convex_in_eta =
  qtest "Eq. (3) is convex in the repeater count"
    QCheck2.Gen.(pair (float_range 0.2 10.0) (int_range 2 60))
    (fun (lmm, eta) ->
      let l = mm lmm in
      let s = Ir_delay.Model.s_opt device line in
      let d e = Ir_delay.Model.wire_delay device line ~s ~eta:e l in
      d eta <= ((d (eta - 1) +. d (eta + 1)) /. 2.0) +. 1e-18)

let prop_repeaters_needed_minimal =
  qtest "repeaters_needed returns the least feasible count"
    QCheck2.Gen.(pair (float_range 0.2 12.0) (float_range 1.0 100.0))
    (fun (lmm, scale) ->
      let l = mm lmm in
      let s = Ir_delay.Model.s_opt device line in
      let target = Ir_delay.Model.min_delay device line ~s l *. scale in
      match Ir_delay.Model.repeaters_needed device line ~s ~target l with
      | None -> false
      | Some eta ->
          Ir_delay.Model.wire_delay device line ~s ~eta l <= target
          && (eta = 1
             || Ir_delay.Model.wire_delay device line ~s ~eta:(eta - 1) l
                > target))

let prop_min_delay_increases_with_rc =
  qtest "min delay increases with line RC"
    QCheck2.Gen.(float_range 0.5 8.0)
    (fun lmm ->
      let l = mm lmm in
      let slow = Ir_delay.Model.line ~r_per_m:6.4e5 ~c_per_m:4.4e-10 in
      let s1 = Ir_delay.Model.s_opt device line in
      let s2 = Ir_delay.Model.s_opt device slow in
      Ir_delay.Model.min_delay device slow ~s:s2 l
      > Ir_delay.Model.min_delay device line ~s:s1 l)

(* ---- Elmore ladder (first-principles check of a and b) ---------------- *)

let test_elmore_distributed_limit () =
  let r = 1e5 and c = 2e-10 in
  let d = Ir_delay.Elmore.ladder_delay ~segments:256 ~r_total:r ~c_total:c () in
  check_close ~eps:1e-9 "converges to rc/2"
    (Ir_delay.Elmore.distributed_limit ~r_total:r ~c_total:c)
    d;
  (* pi-discretization is exact at every N for the bare line *)
  let d4 = Ir_delay.Elmore.ladder_delay ~segments:4 ~r_total:r ~c_total:c () in
  check_close ~eps:1e-9 "exact even at N=4" d d4

let test_elmore_source_term () =
  let r = 1e5 and c = 2e-10 and rs = 3e3 and cl = 5e-14 in
  let with_src =
    Ir_delay.Elmore.ladder_delay ~r_total:r ~c_total:c ~r_source:rs
      ~c_load:cl ()
  in
  let bare = Ir_delay.Elmore.ladder_delay ~r_total:r ~c_total:c () in
  check_close ~eps:1e-9 "source adds R(C + C_L), wire adds r*c_load"
    ((rs *. (c +. cl)) +. (r *. cl))
    (with_src -. bare)

let test_elmore_vs_paper_coefficients () =
  (* The paper's a = 0.4 is the 50%-threshold correction of the
     distributed Elmore delay (0.5 -> 0.4), and b = 0.7 is the lumped
     50% factor ln 2.  Check the constants the delay model inherits. *)
  check_close "a factor" 0.4 Ir_delay.Elmore.threshold_50_factor;
  check_in_range "b factor" ~lo:0.69 ~hi:0.70 Ir_delay.Elmore.lumped_50_factor;
  (* Eq. (2)'s quadratic term equals a/0.5 of the ladder's wire delay. *)
  let device = Ir_tech.Device.of_node Ir_tech.Node.N130 in
  let line = Ir_delay.Model.line ~r_per_m:3.2e5 ~c_per_m:2.2e-10 in
  let l = Ir_phys.Units.mm 2.0 in
  let quad_term =
    Ir_delay.Model.segment_delay device line ~s:1.0 l
    -. Ir_delay.Model.segment_delay device line ~s:1.0 0.0
    -. ((Ir_delay.Model.segment_delay device line ~s:1.0 1e-6
         -. Ir_delay.Model.segment_delay device line ~s:1.0 0.0)
        /. 1e-6 *. l)
  in
  let ladder =
    Ir_delay.Elmore.ladder_delay ~r_total:(3.2e5 *. l)
      ~c_total:(2.2e-10 *. l) ()
  in
  check_close ~eps:1e-3 "quadratic term is 0.8x the Elmore wire delay"
    (0.4 /. 0.5) (quad_term /. ladder)

let test_elmore_validation () =
  Alcotest.check_raises "segments"
    (Invalid_argument "Elmore.ladder_delay: segments < 1") (fun () ->
      ignore
        (Ir_delay.Elmore.ladder_delay ~segments:0 ~r_total:1.0 ~c_total:1.0
           ()));
  Alcotest.check_raises "negative"
    (Invalid_argument "Elmore.ladder_delay: negative value") (fun () ->
      ignore
        (Ir_delay.Elmore.ladder_delay ~r_total:(-1.0) ~c_total:1.0 ()))

let prop_elmore_monotone =
  qtest "ladder delay increases with every element"
    QCheck2.Gen.(
      quad (float_range 1e3 1e6) (float_range 1e-12 1e-9)
        (float_range 0.0 1e4) (float_range 0.0 1e-13))
    (fun (r, c, rs, cl) ->
      let d = Ir_delay.Elmore.ladder_delay ~r_total:r ~c_total:c
          ~r_source:rs ~c_load:cl () in
      let bigger = Ir_delay.Elmore.ladder_delay ~r_total:(r *. 1.5)
          ~c_total:c ~r_source:rs ~c_load:cl () in
      bigger > d && d > 0.0)

(* ---- target models ---------------------------------------------------- *)

let test_target_linear () =
  let d = Ir_delay.Target.delay Linear ~clock:5e8 ~l_max:1.0 in
  check_close "longest wire gets the period" 2e-9 (d 1.0);
  check_close "half" 1e-9 (d 0.5);
  check_close "zero" 0.0 (d 0.0)

let test_target_affine () =
  let floor = 5e-11 in
  let d = Ir_delay.Target.delay (Affine { floor }) ~clock:5e8 ~l_max:1.0 in
  check_close "floor at zero" floor (d 0.0);
  check_close "period at l_max" 2e-9 (d 1.0)

let test_target_quadratic () =
  let d =
    Ir_delay.Target.delay (Quadratic_blend { weight = 1.0 }) ~clock:5e8
      ~l_max:1.0
  in
  check_close "quadratic half" (2e-9 *. 0.25) (d 0.5);
  check_close "period at l_max" 2e-9 (d 1.0);
  let half =
    Ir_delay.Target.delay (Quadratic_blend { weight = 0.5 }) ~clock:5e8
      ~l_max:1.0 0.5
  in
  check_close "blend" (2e-9 *. ((0.5 *. 0.5) +. (0.5 *. 0.25))) half

let test_target_validation () =
  Alcotest.check_raises "l beyond l_max"
    (Invalid_argument "Target.delay: length outside [0, l_max]") (fun () ->
      ignore (Ir_delay.Target.delay Linear ~clock:5e8 ~l_max:1.0 1.1));
  Alcotest.check_raises "bad floor"
    (Invalid_argument "Target.delay: floor must lie in [0, period)")
    (fun () ->
      ignore
        (Ir_delay.Target.delay (Affine { floor = 1.0 }) ~clock:5e8 ~l_max:1.0
           0.5))

let test_target_monotone () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Format.asprintf "%a monotone" Ir_delay.Target.pp m)
        true
        (Ir_delay.Target.monotone_check m ~clock:5e8 ~l_max:3.6e-3))
    [
      Ir_delay.Target.Linear;
      Affine { floor = 1e-10 };
      Quadratic_blend { weight = 0.3 };
      Quadratic_blend { weight = 1.0 };
    ]

let prop_quadratic_harder_for_short =
  qtest "quadratic targets are tighter than linear below l_max"
    QCheck2.Gen.(float_range 0.01 0.99)
    (fun x ->
      let lin = Ir_delay.Target.delay Linear ~clock:5e8 ~l_max:1.0 x in
      let quad =
        Ir_delay.Target.delay (Quadratic_blend { weight = 1.0 }) ~clock:5e8
          ~l_max:1.0 x
      in
      quad < lin)

let () =
  Alcotest.run "delay"
    [
      ( "model",
        [
          Alcotest.test_case "line validation" `Quick test_line_validation;
          Alcotest.test_case "segment delay (Eq 2)" `Quick
            test_segment_delay_structure;
          Alcotest.test_case "wire delay (Eq 3)" `Quick test_wire_delay_eq3;
          Alcotest.test_case "s_opt formula (Eq 4)" `Quick test_s_opt_formula;
          Alcotest.test_case "s_opt minimizes" `Quick test_s_opt_minimizes;
          Alcotest.test_case "eta_opt minimizes" `Quick test_eta_opt_minimizes;
          Alcotest.test_case "repeaters_needed" `Quick test_repeaters_needed;
          prop_delay_convex_in_eta;
          prop_repeaters_needed_minimal;
          prop_min_delay_increases_with_rc;
        ] );
      ( "elmore",
        [
          Alcotest.test_case "distributed limit" `Quick
            test_elmore_distributed_limit;
          Alcotest.test_case "source term" `Quick test_elmore_source_term;
          Alcotest.test_case "paper coefficients" `Quick
            test_elmore_vs_paper_coefficients;
          Alcotest.test_case "validation" `Quick test_elmore_validation;
          prop_elmore_monotone;
        ] );
      ( "target",
        [
          Alcotest.test_case "linear (paper)" `Quick test_target_linear;
          Alcotest.test_case "affine" `Quick test_target_affine;
          Alcotest.test_case "quadratic blend" `Quick test_target_quadratic;
          Alcotest.test_case "validation" `Quick test_target_validation;
          Alcotest.test_case "monotone" `Quick test_target_monotone;
          prop_quadratic_harder_for_short;
        ] );
    ]
