(* The paper's Figure 2: why rank computation needs a DP.

   Greedy top-down assignment packs the topmost layer-pair first and
   inserts repeaters as it goes.  On an architecture whose upper pair has
   much larger RC delay than the lower pair, greedy burns the whole
   repeater budget on two expensive wires; the optimal assignment routes
   all four wires on the cheap pair and meets every target.

   Run with:  dune exec examples/greedy_vs_optimal.exe *)

let () =
  let s = Ir_sweep.Figure2.scenario () in
  let problem = s.problem in
  let arch = Ir_assign.Problem.arch problem in

  Format.printf "Figure 2 counterexample@.@.%a@." Ir_ia.Arch.pp_summary arch;

  let top = Ir_ia.Arch.pair arch 0 and bottom = Ir_ia.Arch.pair arch 1 in
  let rc (p : Ir_ia.Layer_pair.t) =
    p.line.Ir_delay.Model.r_per_m *. p.line.Ir_delay.Model.c_per_m
  in
  Format.printf
    "RC of the top pair is %.1fx the bottom pair's (the figure's premise).@."
    (rc top /. rc bottom);

  Format.printf "@.Four equal wires of %.2f mm, budget sized for four \
                 bottom-pair wires:@."
    (Ir_assign.Problem.bunch_length problem 0 *. 1e3);
  List.iter
    (fun b ->
      Format.printf "  repeaters needed on %-12s: %s@."
        (Ir_tech.Metal_class.to_string (Ir_ia.Arch.pair arch b).cls)
        (match Ir_assign.Problem.eta_min problem ~pair:b ~bunch:0 with
        | Some e -> string_of_int e
        | None -> "unreachable"))
    [ 0; 1 ];

  Format.printf "@.greedy top-down : %a@." Ir_core.Outcome.pp_human s.greedy;
  Format.printf "optimal DP      : %a@." Ir_core.Outcome.pp_human s.optimal;
  Format.printf "paper-literal DP: %a@." Ir_core.Outcome.pp_human s.exact;
  Format.printf
    "@.As in the paper's Figure 2: greedy achieves rank 2, optimal rank 4.@."
