(* Material-vs-coupling tradeoff: the paper's headline result.

   "We observe that 42% reduction in Miller coupling factor achieves the
   same rank improvement as a 38% reduction in inter-layer dielectric
   permittivity for a 1M gate design in the 130nm technology."

   This example sweeps both knobs on the paper's baseline and then asks
   the equivalence solver for the Miller reduction matching a 38% ILD
   reduction.

   Run with:  dune exec examples/lowk_study.exe
   (a few seconds: ~45 full rank computations on the 3M-wire WLD) *)

let () =
  let config = Ir_sweep.Table4.default_config in

  Format.printf "Low-k vs shielding study on the 130nm / 1M-gate baseline@.@.";

  let k = Ir_sweep.Table4.k_sweep ~config () in
  Ir_sweep.Report.sweep_table k Format.std_formatter;
  Format.printf "@.";

  let m = Ir_sweep.Table4.m_sweep ~config () in
  Ir_sweep.Report.sweep_table m Format.std_formatter;
  Format.printf "@.";

  let r =
    Ir_sweep.Equivalence.matching_miller_reduction ~config
      ~k_reduction:Ir_sweep.Paper_data.headline_k_reduction ()
  in
  Format.printf
    "A %.0f%% ILD permittivity reduction (rank %.4f) is matched by a \
     %.1f%% Miller-factor reduction (rank %.4f).@."
    (100.0 *. r.k_reduction) r.k_rank
    (100.0 *. r.m_reduction) r.m_rank;
  Format.printf "The paper reports %.1f%% as the matching Miller reduction.@."
    (100.0 *. Ir_sweep.Paper_data.headline_m_reduction);

  let corr =
    Ir_sweep.Report.correlation
      (Ir_sweep.Table4.normalized k)
      Ir_sweep.Paper_data.table4_k
  in
  Format.printf "@.Correlation with the published K column: %.4f@." corr
