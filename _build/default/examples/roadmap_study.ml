(* Rank across ITRS generations: the paper's concluding claim.

   "The variation of rank with several geometric and technology
   parameters shows the need to co-optimize across several material,
   process, and design characteristics... it is not possible to enable
   future MPU-class designs by material improvements alone."  (Section 6)

   Two tables over the ITRS-2001-style roadmap, each generation on its
   own stack depth, under three material assumptions — frozen SiO2
   (k = 3.9, Miller 2), the roadmap low-k trend, and low-k plus full
   shielding (Miller 1):

   (a) a constant 1M-gate, 500 MHz design migrated across generations:
       here the repeater budget binds and the material columns separate —
       the per-generation value of the roadmap's material program;
   (b) each generation's own MPU-class design at its own roadmap clock:
       here the linear delay targets tighten with die size and frequency
       until whole length classes become infeasible, and no material
       column escapes the collapse — the paper's "not possible to enable
       future MPU-class designs by material improvements alone".

   Run with:  dune exec examples/roadmap_study.exe
   (the 2010 generation is a 16M-gate design; allow ~a minute) *)

let architecture ?gates ~clock entry ~k ~miller =
  let node = entry.Ir_tech.Itrs.node in
  (* Grow the stack to the generation's metal-layer count: 1 M1 layer,
     one Mt layer, the rest Mx. *)
  let stack =
    { (Ir_tech.Stack.of_node node) with
      mx_layers = entry.Ir_tech.Itrs.metal_layers - 2 }
  in
  let structure =
    {
      Ir_ia.Arch.local_pairs = 1;
      semi_global_pairs =
        Ir_tech.Stack.max_pairs stack Ir_tech.Metal_class.Semi_global;
      global_pairs = 1;
    }
  in
  let design = Ir_tech.Itrs.design_of_entry ?gates ~clock entry in
  Ir_ia.Arch.make ~structure ~stack
    ~materials:(Ir_ia.Materials.v ~k ~miller ())
    ~design ()

let rank ?gates ~clock entry ~k ~miller =
  let arch = architecture ?gates ~clock entry ~k ~miller in
  let design = arch.Ir_ia.Arch.design in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.rent_p ~fan_out:design.fan_out ())
  in
  Ir_core.Outcome.normalized
    (Ir_core.Rank_dp.compute (Ir_assign.Problem.make ~arch ~wld ()))

let material_columns ?gates ~clock (e : Ir_tech.Itrs.entry) =
  [
    Printf.sprintf "%.4f" (rank ?gates ~clock e ~k:3.9 ~miller:2.0);
    Printf.sprintf "%.4f" (rank ?gates ~clock e ~k:e.ild_k ~miller:2.0);
    Printf.sprintf "%.4f" (rank ?gates ~clock e ~k:e.ild_k ~miller:1.0);
  ]

let material_header = [ "frozen SiO2"; "roadmap low-k"; "low-k + shielding" ]

let () =
  Format.printf
    "(a) Constant design (1M gates, 500 MHz) migrated across \
     generations:@.@.";
  Ir_sweep.Report.table
    ~header:([ "year"; "node"; "layers" ] @ material_header)
    ~rows:
      (List.map
         (fun (e : Ir_tech.Itrs.entry) ->
           [ string_of_int e.year; Ir_tech.Node.name e.node;
             string_of_int e.metal_layers ]
           @ material_columns ~gates:1_000_000 ~clock:0.5e9 e)
         Ir_tech.Itrs.roadmap)
    Format.std_formatter;
  Format.printf
    "@.(b) Each generation's MPU-class design at its own roadmap \
     clock:@.@.";
  Ir_sweep.Report.table
    ~header:([ "year"; "node"; "gates"; "clock" ] @ material_header)
    ~rows:
      (List.map
         (fun (e : Ir_tech.Itrs.entry) ->
           [
             string_of_int e.year; Ir_tech.Node.name e.node;
             string_of_int e.mpu_gates;
             Printf.sprintf "%.1f GHz" (e.max_clock /. 1e9);
           ]
           @ material_columns ~clock:e.max_clock e)
         Ir_tech.Itrs.roadmap)
    Format.std_formatter;
  Format.printf
    "@.In (a) the budget binds and each material step buys rank.  In (b) \
     the roadmap's@.own clocks and die sizes tighten the delay targets \
     until rank collapses for every@.material column — the paper's \
     conclusion that materials alone cannot enable@.future MPU-class \
     designs.@."
