(* Noise-aware rank and the shielding tradeoff.

   The paper reaches its minimum Miller factor of 1.0 "by double-sided
   shielding of lines" (its footnote 8).  Shielding buys two things at
   once: the delay improvement the paper's Table 4 column M quantifies,
   and immunity to coupling noise.  This example evaluates the rank under
   peak-noise budgets, with and without shielding, and prints the
   per-pair noise the budgets act on.

   Run with:  dune exec examples/noise_shielding.exe *)

let () =
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let stack = Ir_tech.Stack.of_node Ir_tech.Node.N130 in

  Format.printf "Peak coupling noise per layer class (charge sharing):@.";
  List.iter
    (fun cls ->
      let g = Ir_tech.Stack.geometry stack cls in
      Format.printf "  %-12s %.1f%% of Vdd@."
        (Ir_tech.Metal_class.to_string cls)
        (100.0 *. Ir_rc.Noise.peak_ratio g))
    Ir_tech.Metal_class.all;

  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.gates ~rent_p:design.rent_p
         ~fan_out:design.fan_out ())
  in
  let rank ?noise_limit ~miller () =
    let arch =
      Ir_ia.Arch.make ~materials:(Ir_ia.Materials.v ~miller ()) ~design ()
    in
    Ir_core.Outcome.normalized
      (Ir_core.Rank_dp.compute
         (Ir_assign.Problem.make ?noise_limit ~arch ~wld ()))
  in
  Format.printf "@.Rank of the 130nm/1M baseline under noise budgets:@.@.";
  let rows =
    List.map
      (fun (label, noise_limit) ->
        [
          label;
          Printf.sprintf "%.6f" (rank ?noise_limit ~miller:2.0 ());
          Printf.sprintf "%.6f" (rank ?noise_limit ~miller:1.0 ());
        ])
      [
        ("none", None);
        ("30% Vdd", Some 0.30);
        ("25% Vdd", Some 0.25);
        ("20% Vdd", Some 0.20);
      ]
  in
  Ir_sweep.Report.table
    ~header:[ "noise budget"; "unshielded (M=2)"; "shielded (M=1)" ]
    ~rows Format.std_formatter;
  Format.printf
    "@.Tight budgets zero the unshielded rank (every minimum-pitch pair \
     violates them),@.while the shielded architecture keeps both its noise \
     immunity and its higher rank.@."
