(* Direct IA optimization by rank (the paper's Section 6 future work).

   Searches pair counts and Mx/Mt geometry scalings around the 130nm
   Table 3 stack for the architecture with the highest rank on a 1M-gate
   design, i.e. uses the paper's metric as an objective instead of a
   yardstick.

   Run with:  dune exec examples/optimize_ia.exe
   (~36 full rank computations; around half a minute) *)

let () =
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  Format.printf
    "Optimizing the 130nm architecture for a 1M-gate design by rank...@.@.";
  let best, all = Ir_ext.Optimizer.optimize design in
  let rows =
    List.map
      (fun (c : Ir_ext.Optimizer.candidate) ->
        [
          Printf.sprintf "%d sg + %d gl"
            c.structure.Ir_ia.Arch.semi_global_pairs
            c.structure.Ir_ia.Arch.global_pairs;
          Printf.sprintf "%.2f" c.pitch_scale;
          Printf.sprintf "%.2f" c.thickness_scale;
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized c.outcome);
          (if c.outcome.Ir_core.Outcome.assignable then "yes" else "NO");
        ])
      all
  in
  Ir_sweep.Report.table
    ~header:[ "pairs"; "pitch x"; "thickness x"; "normalized rank";
              "assignable" ]
    ~rows Format.std_formatter;
  Format.printf "@.Best candidate: %d semi-global + %d global pairs, pitch \
                 x%.2f, thickness x%.2f -> %a@."
    best.structure.Ir_ia.Arch.semi_global_pairs
    best.structure.Ir_ia.Arch.global_pairs best.pitch_scale
    best.thickness_scale Ir_core.Outcome.pp_human best.outcome
