(* Technology scaling study: rank across nodes and design sizes.

   The paper's Section 5.2 names three baseline experiments — 1M gates at
   180nm, 1M at 130nm, 4M at 90nm — but prints only the 130nm column "for
   space reasons".  This example regenerates all three, adds the 4M/130nm
   and 10M/90nm points mentioned in Section 5, and prints each node's
   Table 3 parameters alongside.

   Run with:  dune exec examples/tech_scaling.exe
   (the 10M-gate WLD takes a few seconds) *)

let () =
  List.iter
    (fun node ->
      Format.printf "%a@.@." Ir_tech.Stack.pp_table3
        (Ir_tech.Stack.of_node node))
    [ Ir_tech.Node.N180; Ir_tech.Node.N130; Ir_tech.Node.N90 ];

  let matrix =
    [
      (Ir_tech.Node.N180, 1_000_000);
      (Ir_tech.Node.N130, 1_000_000);
      (Ir_tech.Node.N130, 4_000_000);
      (Ir_tech.Node.N90, 4_000_000);
      (Ir_tech.Node.N90, 10_000_000);
    ]
  in
  Format.printf "Baseline rank across nodes and design sizes@.";
  Format.printf "(Table 2 parameters: p = 0.6, 500 MHz, R = 0.4)@.@.";
  let cells = Ir_sweep.Cross_node.run ~matrix () in
  Ir_sweep.Report.cross_node_table cells Format.std_formatter;

  (* The per-node clock ceilings from ITRS 2001, for context. *)
  Format.printf "@.ITRS-2001 max MPU clocks: ";
  List.iter
    (fun n ->
      Format.printf "%s %.2f GHz  " (Ir_tech.Node.name n)
        (Ir_tech.Node.itrs_max_clock n /. 1e9))
    [ Ir_tech.Node.N180; Ir_tech.Node.N130; Ir_tech.Node.N90 ];
  Format.printf "@."
