(* Validating the stochastic WLD against synthetic placed circuits.

   The paper adopts the Davis closed-form wire length distribution (its
   footnote 2) without re-validating it.  This example generates
   Rent-rule synthetic circuits (hierarchy = placement), measures their
   actual Manhattan wire lengths, compares the distribution with the
   closed form, and shows the rank metric is stable across the two.

   Run with:  dune exec examples/netlist_validation.exe *)

let () =
  Format.printf
    "Davis closed form vs measured synthetic-circuit WLDs (p = 0.6, f.o. \
     = 3):@.@.";
  let rows =
    List.map
      (fun gates ->
        let c = Ir_netlist.Circuit.generate ~gates () in
        let v = Ir_netlist.Extract.validate_against_davis c in
        [
          string_of_int v.gates;
          Printf.sprintf "%.2f" v.measured_mean;
          Printf.sprintf "%.2f" v.davis_mean;
          Printf.sprintf "%.4f" v.measured_tail;
          Printf.sprintf "%.4f" v.davis_tail;
        ])
      [ 4_096; 16_384; 65_536; 262_144 ]
  in
  Ir_sweep.Report.table
    ~header:
      [ "gates"; "mean (meas.)"; "mean (Davis)"; "tail (meas.)";
        "tail (Davis)" ]
    ~rows Format.std_formatter;

  (* Rank stability: same architecture, measured vs closed-form WLD. *)
  let gates = 65_536 in
  let design = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates () in
  let arch = Ir_ia.Arch.make ~design () in
  let rank wld =
    Ir_core.Outcome.normalized
      (Ir_core.Rank_dp.compute
         (Ir_assign.Problem.make ~bunch_size:500 ~arch ~wld ()))
  in
  let raw = Ir_netlist.Extract.wld (Ir_netlist.Circuit.generate ~gates ()) in
  (* The synthetic generator conserves Rent terminals, which yields about
     half of Davis's directed-connection count (sources are shared by
     multi-fan-out nets; see Ir_netlist.Circuit).  Double the counts so
     both WLDs describe the same traffic volume before comparing ranks. *)
  let measured =
    Ir_wld.Dist.of_bins
      (Array.to_list (Ir_wld.Dist.bins raw)
      |> List.map (fun (b : Ir_wld.Dist.bin) -> { b with count = 2 * b.count }))
  in
  let davis = Ir_wld.Davis.generate (Ir_wld.Davis.params ~gates ()) in
  Format.printf "@.Rank of the 130nm architecture at %d gates:@." gates;
  Format.printf "  against the Davis WLD                    : %.4f@."
    (rank davis);
  Format.printf "  against the measured WLD (count-matched) : %.4f@."
    (rank measured);
  Format.printf
    "@.With traffic volumes matched, the closed form and the placed \
     synthetic circuits@.agree on the architecture's rank to within the \
     distributions' shape difference.@."
