examples/optimize_ia.ml: Format Ir_core Ir_ext Ir_ia Ir_sweep Ir_tech List Printf
