examples/lowk_study.mli:
