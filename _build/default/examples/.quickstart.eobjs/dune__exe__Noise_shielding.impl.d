examples/noise_shielding.ml: Format Ir_assign Ir_core Ir_ia Ir_rc Ir_sweep Ir_tech Ir_wld List Printf
