examples/netlist_validation.ml: Array Format Ir_assign Ir_core Ir_ia Ir_netlist Ir_sweep Ir_tech Ir_wld List Printf
