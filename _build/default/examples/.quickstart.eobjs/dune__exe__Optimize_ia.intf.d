examples/optimize_ia.mli:
