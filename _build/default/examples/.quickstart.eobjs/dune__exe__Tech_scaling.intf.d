examples/tech_scaling.mli:
