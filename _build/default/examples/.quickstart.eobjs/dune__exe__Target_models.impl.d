examples/target_models.ml: Format Ir_core Ir_delay Ir_sweep Ir_tech List Printf
