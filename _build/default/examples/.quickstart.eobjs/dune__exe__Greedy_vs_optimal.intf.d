examples/greedy_vs_optimal.mli:
