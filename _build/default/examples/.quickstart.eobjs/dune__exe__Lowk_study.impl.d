examples/lowk_study.ml: Format Ir_sweep
