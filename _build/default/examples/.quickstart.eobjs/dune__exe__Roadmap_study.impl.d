examples/roadmap_study.ml: Format Ir_assign Ir_core Ir_ia Ir_sweep Ir_tech Ir_wld List Printf
