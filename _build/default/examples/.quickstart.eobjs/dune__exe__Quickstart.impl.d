examples/quickstart.ml: Format Ir_assign Ir_core Ir_ia Ir_tech
