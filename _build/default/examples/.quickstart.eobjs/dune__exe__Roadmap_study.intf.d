examples/roadmap_study.mli:
