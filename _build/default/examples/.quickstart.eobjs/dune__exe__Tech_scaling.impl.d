examples/tech_scaling.ml: Format Ir_sweep Ir_tech List
