examples/noise_shielding.mli:
