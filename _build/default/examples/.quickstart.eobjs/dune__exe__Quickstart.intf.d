examples/quickstart.mli:
