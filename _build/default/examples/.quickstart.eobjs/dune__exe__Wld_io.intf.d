examples/wld_io.mli:
