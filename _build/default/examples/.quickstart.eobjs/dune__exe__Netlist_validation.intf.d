examples/netlist_validation.mli:
