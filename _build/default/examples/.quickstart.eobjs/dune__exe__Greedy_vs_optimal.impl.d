examples/greedy_vs_optimal.ml: Format Ir_assign Ir_core Ir_delay Ir_ia Ir_sweep Ir_tech List
