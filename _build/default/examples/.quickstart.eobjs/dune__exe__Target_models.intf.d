examples/target_models.mli:
