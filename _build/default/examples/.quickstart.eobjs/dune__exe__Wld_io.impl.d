examples/wld_io.ml: Array Filename Format Ir_assign Ir_core Ir_ia Ir_tech Ir_wld List Sys
