(* Quickstart: compute the rank of the paper's baseline architecture.

   This is the 30-second tour of the public API:
     1. describe a design (node, gate count, clock, repeater budget),
     2. let the library build the Davis WLD and the Table-3 architecture,
     3. compute the rank (the paper's metric) with the optimal DP.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The paper's Table 2 baseline: 1M gates at 130nm, Rent p = 0.6,
     500 MHz target clock, repeater area = 40% of the die. *)
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in

  (* One call from design parameters to the metric. *)
  let outcome = Ir_core.Rank.of_design design in

  Format.printf "Design: %s, %d gates, %.0f MHz, repeater fraction %.1f@."
    (Ir_tech.Node.name design.node)
    design.gates
    (design.clock /. 1e6)
    design.repeater_fraction;
  Format.printf "Rank:   %a@." Ir_core.Outcome.pp_human outcome;
  Format.printf "Paper reports 0.397288 for this configuration (Table 4).@.";

  (* The pieces are also available separately, e.g. to inspect the
     architecture the rank was computed against... *)
  let arch = Ir_ia.Arch.make ~design () in
  Format.printf "@.%a@." Ir_ia.Arch.pp_summary arch;

  (* ...or to see how coarse the WLD bunching was. *)
  let problem = Ir_core.Rank.problem_of_design design in
  Format.printf "Instance: %d wires in %d bunches of at most 10000.@."
    (Ir_assign.Problem.total_wires problem)
    (Ir_assign.Problem.n_bunches problem)
