(* Evaluating an architecture against a user-supplied WLD.

   The rank metric works for any wire length distribution, not just the
   stochastic Davis model: this example writes a Davis WLD to CSV (the
   same thing an extraction flow would produce from a real netlist),
   perturbs it — doubling the long-wire tail, as a datapath-heavy design
   might — reloads it, and compares ranks.

   Run with:  dune exec examples/wld_io.exe *)

let () =
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let arch = Ir_ia.Arch.make ~design () in
  let davis =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.gates ~rent_p:design.rent_p
         ~fan_out:design.fan_out ())
  in

  (* Round-trip through the CSV format. *)
  let path = Filename.temp_file "davis_wld" ".csv" in
  (match Ir_wld.Io.save path davis with
  | Ok () -> Format.printf "wrote %s (%d bins)@." path (Ir_wld.Dist.n_bins davis)
  | Error e -> failwith e);
  let reloaded =
    match Ir_wld.Io.load path with Ok d -> d | Error e -> failwith e
  in
  Sys.remove path;
  assert (Ir_wld.Dist.equal davis reloaded);

  (* A tail-heavy variant: 25% more wires beyond 100 gate pitches. *)
  let tail_heavy =
    Ir_wld.Dist.of_bins
      (Array.to_list (Ir_wld.Dist.bins davis)
      |> List.map (fun (b : Ir_wld.Dist.bin) ->
             if b.length > 100.0 then { b with count = b.count * 5 / 4 }
             else b))
  in

  let rank wld =
    Ir_core.Rank_dp.compute (Ir_assign.Problem.make ~arch ~wld ())
  in
  Format.printf "Davis WLD      : %a@." Ir_core.Outcome.pp_human (rank davis);
  Format.printf "tail-heavy WLD : %a@." Ir_core.Outcome.pp_human
    (rank tail_heavy);
  Format.printf
    "@.The tail-heavy netlist ranks lower on the same architecture: more \
     long wires@.compete for the same repeater budget — the \
     design-dependence the paper's@.Section 3 asks of an IA metric.@."
