(* Alternative per-connection delay requirements (the paper's Section 6).

   The paper's target model is linear in wire length, d = (l/l_max)/f_c,
   and its conclusion notes this is "unreasonable since the actual delay
   of the connections is proportional to the square of length" — and
   announces a study of alternatives.  This example runs that study: the
   baseline rank under the linear model, an affine model with a device-
   delay floor, and quadratic blends.

   Run with:  dune exec examples/target_models.exe *)

let () =
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let models =
    [
      ("linear (paper)", Ir_delay.Target.Linear);
      ("affine, 20ps floor", Ir_delay.Target.Affine { floor = 20e-12 });
      ("affine, 100ps floor", Ir_delay.Target.Affine { floor = 100e-12 });
      ("quadratic blend 0.25", Ir_delay.Target.Quadratic_blend { weight = 0.25 });
      ("quadratic blend 0.5", Ir_delay.Target.Quadratic_blend { weight = 0.5 });
      ("fully quadratic", Ir_delay.Target.Quadratic_blend { weight = 1.0 });
    ]
  in
  Format.printf
    "Rank of the 130nm/1M baseline under different target-delay models@.@.";
  let rows =
    List.map
      (fun (name, model) ->
        let o = Ir_core.Rank.of_design ~target_model:model design in
        [
          name;
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
          string_of_int o.rank_wires;
        ])
      models
  in
  Ir_sweep.Report.table
    ~header:[ "target model"; "normalized rank"; "rank (wires)" ]
    ~rows Format.std_formatter;
  Format.printf
    "@.A delay floor rescues short wires (whose linear targets drop below \
     device delay),@.while quadratic blends tighten mid-length targets — \
     exactly the sensitivity the@.paper's future-work section predicts.@."
