type placement = { pair : int; bunch : int; wires : int }
[@@deriving show, eq]

(* All deterministic quantities — totals depend only on the calls made,
   not on domain scheduling (see Ir_obs). *)
let stat_calls = Ir_obs.counter "greedy_fill/calls"
let stat_wires = Ir_obs.counter "greedy_fill/wires_packed"
let stat_early = Ir_obs.counter "greedy_fill/early_exits"
let stat_take_adjust = Ir_obs.counter "greedy_fill/take_adjustments"
let stat_fast_fail = Ir_obs.counter "greedy_fill/fast_fails"

type context = {
  from_bunch : int;
  top_pair : int;
  top_pair_used : float;
  wires_above_top : int;
  reps_above_top : int;
  wires_above_below : int;
  reps_above_below : int;
}

let context ?(top_pair_used = 0.0) ?(wires_above_top = 0)
    ?(reps_above_top = 0) ?(wires_above_below = 0) ?(reps_above_below = 0)
    ~from_bunch ~top_pair () =
  {
    from_bunch;
    top_pair;
    top_pair_used;
    wires_above_top;
    reps_above_top;
    wires_above_below;
    reps_above_below;
  }

(* Max wires of one bunch that fit on pair q.

   Condition for x wires (given a_w wire-area already on q, and
   suffix_above wires of the suffix currently above q besides these x):

     a_w + x * wire_area
       + v_a * (v * (base_wires + suffix_above - x) + reps) <= cap_q

   i.e. x * (wire_area - v * v_a) <= room, where packing a wire onto q
   both consumes its routing area and removes its via stack from q's
   blockage. *)
let max_take ~cap ~a_w ~wire_area ~via ~v ~base_wires ~reps ~suffix_above
    ~available =
  let vf = float_of_int v in
  (* The feasibility condition for taking x wires, in its original
     uncollapsed form.  The closed-form estimate below rearranges it
     algebraically, but float algebra is not equivalence-preserving —
     every candidate is verified against this predicate, which is the
     single source of truth. *)
  let ok x =
    a_w
    +. (float_of_int x *. wire_area)
    +. (via
       *. ((vf *. float_of_int (base_wires + suffix_above - x))
          +. float_of_int reps))
    <= cap
  in
  let net = wire_area -. (vf *. via) in
  if net <= 0.0 then
    (* Packing a wire frees at least as much blockage as it consumes, so
       feasibility is monotone increasing in x: all or nothing. *)
    if ok available then available else 0
  else if ok available then available
  else begin
    (* Estimate x by the rearranged linear solve x <= room / net, then
       verify-and-adjust: the division can land one off in either
       direction (e.g. room/net = 7.000000000000001 when only 6 wires
       actually fit, or 6.999999999999999 when 7 do), and [room] itself
       compounds rearrangement error.  The estimate is within rounding
       of the true boundary, so the adjustment loops take at most a
       couple of steps. *)
    let fixed =
      a_w
      +. (via
         *. ((vf *. float_of_int (base_wires + suffix_above))
            +. float_of_int reps))
    in
    let room = cap -. fixed in
    let estimate =
      if room <= 0.0 then 0
      else min available (int_of_float (Float.floor (room /. net)))
    in
    let x = ref (max 0 estimate) in
    let adjusted = ref 0 in
    while !x > 0 && not (ok !x) do
      decr x;
      incr adjusted
    done;
    while !x < available && ok (!x + 1) do
      incr x;
      incr adjusted
    done;
    (* Only count the off-by-rounding cases: an exact-on-first-try
       estimate is not an adjustment, and bumping the counter by zero
       would make its event count (and any future rate math over it)
       meaningless. *)
    if !adjusted > 0 then Ir_obs.add stat_take_adjust !adjusted;
    !x
  end

(* O(pairs) fast-fail before the O(bunches) packing loop: compare an
   area {e demand lower bound} (the whole suffix routed at the
   narrowest available pitch — any real split across pairs costs at
   least that) against an {e availability upper bound} (per-pair
   capacity minus the blockage floor: via stacks of the context wires
   and repeaters only, as if no unplaced suffix wire ever crossed the
   pair).  Demand strictly above availability is a certain reject; the
   relative slack keeps float summation-order noise (both sides are
   prefix-table differences, the packer accumulates in another order)
   from ever rejecting a context the packer could satisfy.

   Exposed on its own so the pruning layer (Ir_core.Bounds) can answer
   a suffix query with {e this exact computation} — same expressions,
   same evaluation order — before the memo or the packer is consulted:
   the pre-screen then rejects precisely the contexts [run] would,
   never more. *)
let fast_reject t ctx =
  let n = Problem.n_bunches t in
  let m = Problem.n_pairs t in
  let cap = Problem.capacity t in
  let total_suffix =
    Problem.total_wires t - Problem.wires_before t ctx.from_bunch
  in
  total_suffix > 0
  &&
  let demand_lb = ref infinity and avail_ub = ref 0.0 in
  for q = ctx.top_pair to m - 1 do
    let area = Problem.interval_area t ~pair:q ~lo:ctx.from_bunch ~hi:n in
    if area < !demand_lb then demand_lb := area;
    let at_top = q = ctx.top_pair in
    let cap_q = if at_top then cap -. ctx.top_pair_used else cap in
    let blocked_lb =
      Problem.blocked t ~pair:q
        ~wires_above:
          (if at_top then ctx.wires_above_top else ctx.wires_above_below)
        ~reps_above:
          (if at_top then ctx.reps_above_top else ctx.reps_above_below)
    in
    avail_ub := !avail_ub +. Float.max 0.0 (cap_q -. blocked_lb)
  done;
  !demand_lb > !avail_ub *. (1.0 +. 1e-9)

let run ?scratch t ctx ~record =
  Ir_obs.incr stat_calls;
  let n = Problem.n_bunches t in
  let m = Problem.n_pairs t in
  if ctx.from_bunch < 0 || ctx.from_bunch > n then
    invalid_arg "Greedy_fill: from_bunch out of range";
  if ctx.top_pair < 0 || ctx.top_pair >= m then
    invalid_arg "Greedy_fill: top_pair out of range";
  if ctx.wires_above_top < 0 || ctx.reps_above_top < 0
     || ctx.wires_above_below < 0 || ctx.reps_above_below < 0 then
    invalid_arg "Greedy_fill: negative context counts";
  let cap = Problem.capacity t in
  let arch = Problem.arch t in
  let v = arch.Ir_ia.Arch.vias_per_wire in
  let total_suffix =
    Problem.total_wires t - Problem.wires_before t ctx.from_bunch
  in
  if fast_reject t ctx then begin
    Ir_obs.incr stat_fast_fail;
    None
  end
  else
  let placements = ref [] in
  (* The packing loop only ever touches [remaining.(b)] for [b < n], so a
     scratch buffer longer than [n] is fine; the refill writes exactly
     the values [Array.init] would. *)
  let remaining =
    match scratch with
    | None -> Array.init n (fun b -> Problem.bunch_count t b)
    | Some s ->
        let r = Scratch.ints s n in
        for b = 0 to n - 1 do
          r.(b) <- Problem.bunch_count t b
        done;
        r
  in
  for b = 0 to ctx.from_bunch - 1 do
    remaining.(b) <- 0
  done;
  let next = ref (n - 1) in
  let packed_total = ref 0 in
  let exception Done of bool in
  try
    let q = ref (m - 1) in
    while !q >= ctx.top_pair do
      while !next >= ctx.from_bunch && remaining.(!next) = 0 do
        decr next
      done;
      if !next < ctx.from_bunch then begin
        (* Everything packed with pairs to spare. *)
        Ir_obs.incr stat_early;
        raise (Done true)
      end;
      let pair = Ir_ia.Arch.pair arch !q in
      let via = pair.Ir_ia.Layer_pair.via_area in
      let at_top = !q = ctx.top_pair in
      let base_wires =
        if at_top then ctx.wires_above_top else ctx.wires_above_below
      in
      let reps =
        if at_top then ctx.reps_above_top else ctx.reps_above_below
      in
      let cap_q = if at_top then cap -. ctx.top_pair_used else cap in
      (* Suffix wires above q (besides those being packed onto q now):
         everything not yet packed below. *)
      let a_w = ref 0.0 in
      let continue_pair = ref true in
      while !continue_pair && !next >= ctx.from_bunch do
        if remaining.(!next) = 0 then decr next
        else begin
          let b = !next in
          let wire_area =
            Problem.bunch_length t b *. Ir_ia.Layer_pair.pitch pair
          in
          (* Suffix wires currently unplaced (they will sit above q unless
             packed onto it now); max_take subtracts the x it packs. *)
          let suffix_above = total_suffix - !packed_total in
          let take =
            max_take ~cap:cap_q ~a_w:!a_w ~wire_area ~via ~v ~base_wires
              ~reps ~suffix_above ~available:remaining.(b)
          in
          if take > 0 then begin
            remaining.(b) <- remaining.(b) - take;
            packed_total := !packed_total + take;

            a_w := !a_w +. (float_of_int take *. wire_area);
            if record then
              placements :=
                { pair = !q; bunch = b; wires = take } :: !placements
          end;
          if remaining.(b) > 0 then continue_pair := false
        end
      done;
      decr q
    done;
    while !next >= ctx.from_bunch && remaining.(!next) = 0 do
      decr next
    done;
    raise (Done (!next < ctx.from_bunch))
  with Done ok ->
    Ir_obs.add stat_wires !packed_total;
    if ok then Some (List.rev !placements) else None

let pack ?scratch t ctx = run ?scratch t ctx ~record:true
let fits ?scratch t ctx = Option.is_some (run ?scratch t ctx ~record:false)
