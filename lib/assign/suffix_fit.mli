(** Memoized, monotonicity-exploiting front-end for
    {!Greedy_fill.fits}.

    [Greedy_fill.fits] is antitone in every scalar load parameter of its
    context: raising [top_pair_used], [wires_above_top],
    [reps_above_top], [wires_above_below] or [reps_above_below] (the
    rest fixed, same [(from_bunch, top_pair)]) only removes capacity or
    adds blockage, so a context pointwise easier than a known-feasible
    one is feasible and one pointwise harder than a known-infeasible one
    is infeasible.  A [t] caches per-[(from_bunch, top_pair)] frontiers
    of {e oracle-answered} contexts and answers dominated queries by
    coordinatewise comparison alone — no rearranged float arithmetic —
    so every answer is byte-identical to calling the oracle directly
    (pinned by the differential property in [test_assign]).  Queries no
    frontier covers fall through to [Greedy_fill.fits] and their answers
    join it.

    Hits and misses are tallied on the [suffix_fit/hits] /
    [suffix_fit/misses] counters (deterministic: the query sequence of a
    fixed workload is).

    The verdict never depends on the repeater budget ([Greedy_fill]
    ignores it), so one memo may serve a whole budget-rebound family —
    that is what makes sharing it across {!Rank_dp.search_budgets}
    fractions sound, where identical probe contexts repeat per fraction.

    A [t] is single-domain mutable state: do not share one across
    concurrently-running probes (speculative parallel probes each take a
    fresh memo). *)

type t

val create : ?scratch:Scratch.t -> Problem.t -> t
(** A fresh, empty memo for [problem]'s capacity/architecture/WLD family.
    Valid for the problem itself and any [Problem.with_repeater_fraction]
    rebinding of it.  [?scratch] is handed to {!Greedy_fill.fits} on
    every miss, reusing one arena across the memo's oracle calls; it is
    single-user, exactly like the memo. *)

val fits :
  t ->
  from_bunch:int ->
  top_pair:int ->
  top_pair_used:float ->
  wires_above_top:int ->
  reps_above_top:int ->
  wires_above_below:int ->
  reps_above_below:int ->
  bool
(** Same verdict as [Greedy_fill.fits] on the corresponding
    {!Greedy_fill.context} — by frontier dominance when covered, by the
    oracle otherwise. *)

val note_preempted : unit -> unit
(** Record on [bounds/memo_preempted] that the pruning layer's bound
    oracle answered a suffix query {e before} this memo was consulted
    ({!fits} was never called for it).  The counter lives here so the
    memo's accounting stays closed: [suffix_fit/hits] +
    [suffix_fit/misses] + [bounds/memo_preempted] is the total number
    of suffix-feasibility questions the DP asked while a memo was
    installed. *)
