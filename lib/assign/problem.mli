(** A rank-computation instance: an architecture plus a coarsened WLD with
    per-bunch targets and precomputed assignment tables.

    The unit of assignment is a {e bunch} of identical-length wires (paper
    Section 5.1); bunch index 0 holds the longest wires.  For every
    (layer-pair, bunch) combination the constructor precomputes the routing
    area the bunch consumes, and the minimal per-wire repeater count that
    meets the bunch's target delay on that pair (or its infeasibility).
    Prefix-sum tables make every interval query O(1), which is what gives
    the optimized rank DP its speed. *)

type t

val make :
  ?target_model:Ir_delay.Target.t ->
  ?noise_limit:float ->
  ?activity:float ->
  ?power_budget:float ->
  ?bunch_size:int ->
  arch:Ir_ia.Arch.t ->
  wld:Ir_wld.Dist.t ->
  unit ->
  t
(** [make ~arch ~wld ()] builds an instance from a WLD whose lengths are in
    gate pitches (converted to meters with the design's effective gate
    pitch).  Defaults: [target_model = Linear] (the paper's),
    [bunch_size = 10000] (the paper's Section 5.2 value), no noise limit.

    When [noise_limit] is given (a fraction of Vdd, e.g. 0.15), a
    layer-pair whose {!Ir_rc.Noise.peak_ratio} exceeds it cannot host
    meeting wires at all — a noise-aware variant of the rank metric (the
    signal-integrity concern of the paper's Section 1).

    [activity] (default {!default_activity}) is the switching activity
    factor of the repeater power model; [power_budget] (watts, default
    [infinity] = unconstrained) is the second budget axis.  Both are
    validated: activity in (0, 1], budget positive.
    @raise Invalid_argument on an empty WLD. *)

val of_bunches :
  ?target_model:Ir_delay.Target.t ->
  ?noise_limit:float ->
  ?activity:float ->
  ?power_budget:float ->
  arch:Ir_ia.Arch.t ->
  bunches:Ir_wld.Dist.bin array ->
  unit ->
  t
(** Builds an instance directly from bunches whose lengths are in {e
    meters}, sorted by non-increasing length (checked).  Used by tests and
    by synthetic scenarios such as the paper's Figure 2.
    @raise Invalid_argument if bunches are empty, unsorted or have
    non-positive counts/lengths. *)

(** {1 Dimensions} *)

val arch : t -> Ir_ia.Arch.t
val n_bunches : t -> int
val n_pairs : t -> int
val total_wires : t -> int

val bunch_length : t -> int -> float
(** Length in meters of the wires of bunch [b]. *)

val bunch_count : t -> int -> int
(** Number of wires in bunch [b]. *)

val wires_before : t -> int -> int
(** [wires_before t i] is the total wire count of bunches [0 .. i-1]
    (so [wires_before t 0 = 0] and
    [wires_before t (n_bunches t) = total_wires t]). *)

val target : t -> int -> float
(** Target delay (seconds) of each wire in bunch [b]. *)

(** {1 Capacities and budgets} *)

val capacity : t -> float
(** Routing capacity of each layer-pair before via blockage, m^2. *)

val budget : t -> float
(** Repeater area budget A_R, m^2. *)

val default_activity : float
(** Default switching activity factor (0.15, the conventional estimate
    for global interconnect). *)

val activity : t -> float
(** Switching activity factor of the power model. *)

val power_budget : t -> float
(** Repeater power budget P_R, watts; [infinity] when unconstrained. *)

val power_budgeted : t -> bool
(** [power_budget t < infinity] — whether the DP must run in power mode. *)

val per_rep_power : t -> pair:int -> float
(** Watts consumed by one repeater on [pair]:
    [activity * (s_opt * c_o) * Vdd^2 * f_clock + s_opt * leakage].
    Calibration constants come from {!Ir_tech.Node} ([vdd],
    [leakage_per_size]); the activity factor is this instance's. *)

val blocked : t -> pair:int -> wires_above:int -> reps_above:int -> float
(** Via-blocked area on [pair] given wires and repeaters on pairs above. *)

(** {1 Interval queries (O(1))} *)

val interval_area : t -> pair:int -> lo:int -> hi:int -> float
(** Routing area consumed on [pair] by bunches [lo .. hi-1], m^2. *)

val eta_min : t -> pair:int -> bunch:int -> int option
(** Minimal per-wire repeater count for bunch [bunch] to meet its target on
    [pair]; [None] when the target is unreachable there. *)

val meeting_cost : t -> pair:int -> lo:int -> hi:int -> (float * int) option
(** [meeting_cost t ~pair ~lo ~hi] is [Some (area, count)]: the repeater
    area (m^2) and repeater count needed for {e every} wire of bunches
    [lo .. hi-1] to meet its target on [pair]; [None] if any of those
    bunches is infeasible there.  The count is exact — it is differenced
    from an integer prefix table, never recovered from floats. *)

val meeting_feasible : t -> pair:int -> lo:int -> hi:int -> bool
(** [meeting_cost] is [Some _] — as a bare boolean, for the DP hot loop. *)

val meeting_area : t -> pair:int -> lo:int -> hi:int -> float
(** The area component of {!meeting_cost}, unboxed.  Meaningful only when
    {!meeting_feasible} holds (infeasible bunches contribute 0). *)

val meeting_count : t -> pair:int -> lo:int -> hi:int -> int
(** The count component of {!meeting_cost}, unboxed; same caveat.

    These three exist because {!meeting_cost} allocates a [Some (float *
    int)] per call — hundreds of millions of calls per table build in the
    rank DP made that option the dominant allocation source. *)

val meeting_power : t -> pair:int -> lo:int -> hi:int -> float
(** Watts the interval's repeaters burn: {!meeting_count} times
    {!per_rep_power} — the O(1) incremental form the DP's power mode
    accumulates along a chain.  Summing intervals top-down reproduces the
    accumulated per-state power byte-for-byte (same float products in the
    same order).  Meaningful only when {!meeting_feasible} holds. *)

val min_rep_area_before : t -> int -> float
(** [min_rep_area_before t i] is a {e lower bound} on the repeater area
    any assignment must spend to meet the targets of bunches [[0..i)]:
    each bunch independently takes the cheapest pair that can meet it
    (a fractional relaxation of the contiguous-split constraint the DP
    enforces).  Returns [+infinity] once [[0..i)] contains a bunch
    infeasible on every pair — no assignment can meet that far.
    Differencing two finite prefix values bounds the suffix cost of a
    partial DP state; the pruning layer ([Ir_core.Bounds]) scales the
    difference by [1 -. 1e-9] to absorb prefix-rounding before using it
    as an admissible bound.  Like the other repeater tables this is
    budget-independent, so it survives {!with_repeater_fraction}
    verbatim. *)

val min_rep_power_before : t -> int -> float
(** The power analog of {!min_rep_area_before}: a lower bound (watts) on
    the repeater power any assignment must spend to meet bunches
    [[0..i)], each bunch independently on its power-cheapest pair.  The
    per-axis minima may pick different pairs — each axis's bound is
    admissible on its own, which is all the componentwise pruning bound
    needs.  Budget-independent like the area prefix. *)

val wire_delay_on_pair : t -> pair:int -> eta:int -> float -> float
(** Eq. (3) delay of a single wire of the given length (m) on [pair] with
    [eta] repeaters of the pair's uniform size — exposed for reporting. *)

(** {1 Rescale-reuse constructors}

    Sweeps that vary only the repeater budget or the target clock (the
    paper's Table 4 columns R and C) need not re-bunch the WLD or rebuild
    every prefix table; these constructors derive a new instance from an
    existing one, reusing everything a parameter change leaves valid.
    Both return a fresh immutable value — the original stays usable, so
    the sweep points built from one base instance can be evaluated
    concurrently. *)

val with_repeater_fraction : t -> float -> t
(** [with_repeater_fraction t r] is [t] with the usable repeater fraction
    set to [r].  The budget enters no precomputed table, so every table is
    shared with [t] as-is.
    @raise Invalid_argument if [r] is outside [0, 1]. *)

val with_power_budget : t -> float -> t
(** [with_power_budget t p] is [t] with the repeater power budget set to
    [p] watts — a pure rebind, every table shared verbatim (the power
    budget, like the area budget, enters no precomputed table).  This is
    what lets one power-mode build answer a whole power-budget sweep
    ([Rank_dp.compute_pareto_power]'s displacement argument).
    @raise Invalid_argument if [p <= 0] ([infinity] is allowed). *)

val with_activity : t -> float -> t
(** [with_activity t a] rebuilds only the power tables (per-repeater
    power and its relaxation prefix) at activity factor [a]; everything
    else is shared verbatim.
    @raise Invalid_argument if [a] is outside (0, 1]. *)

val with_clock : t -> float -> t
(** [with_clock t f] is [t] with the target clock set to [f] Hz.  Reuses
    the bunching, wire and routing-area prefixes; recomputes the targets
    and the repeater tables they determine.
    @raise Invalid_argument if [f <= 0]. *)

val with_materials : t -> Ir_ia.Materials.t -> t
(** [with_materials t mats] is [t] with the dielectric/capacitance
    materials replaced (the paper's Table 4 columns K and M).  Reuses the
    bunching, targets (clock-only), wire and routing-area prefixes
    (geometry-only); re-derives the architecture's electricals and the
    repeater tables.  The result is bit-equal to constructing a fresh
    instance at the new materials — the reused fields are the same
    expressions over unchanged inputs. *)
