(* Per-domain reusable buffers for the assignment hot paths.

   Under parallel sweeps the dominant minor-GC pressure comes from the
   O(bunches) working arrays [Greedy_fill.run] and the rank DP allocate
   per call — and OCaml 5 minor collections are stop-the-world across
   every running domain, so each worker's allocation churn stalls all of
   them.  An arena is a growable buffer pair a caller refills in place:
   the values written are exactly the ones a fresh [Array.init] would
   have produced, so every counter and verdict stays byte-identical to
   the allocating path (the differential tests in [test_assign] pin
   this).

   Arenas are handed out per {e domain} via DLS, but the serve layer
   runs systhreads that share one domain's DLS slot — hence the [busy]
   flag: [with_arena] borrows the domain's arena by CAS and falls back
   to a fresh short-lived arena when another thread of the same domain
   already holds it.  Correctness never depends on winning the CAS, only
   the allocation savings do. *)

type t = {
  mutable ints : int array;
  mutable floats : float array;
  busy : bool Atomic.t;
}

let create () = { ints = [||]; floats = [||]; busy = Atomic.make false }

(* Doubling growth keeps refills amortized O(1) across the mixed problem
   sizes of one sweep; buffers never shrink for the arena's lifetime.
   Callers receive a buffer of {e at least} [n] cells and must treat
   only [0 .. n-1] as theirs. *)
let ints t n =
  if Array.length t.ints < n then
    t.ints <- Array.make (max n (2 * Array.length t.ints)) 0;
  t.ints

let floats t n =
  if Array.length t.floats < n then
    t.floats <- Array.make (max n (2 * Array.length t.floats)) 0.0;
  t.floats

let key : t Domain.DLS.key = Domain.DLS.new_key create

let with_arena f =
  let s = Domain.DLS.get key in
  if Atomic.compare_and_set s.busy false true then
    Fun.protect ~finally:(fun () -> Atomic.set s.busy false) (fun () -> f s)
  else
    (* Another systhread of this domain holds the arena (serve worker
       threads share the domain's DLS slot): run on a fresh one rather
       than block — same results, just no reuse for this call. *)
    f (create ())
