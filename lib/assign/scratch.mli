(** Per-domain reusable scratch buffers for assignment hot paths.

    Parallel sweeps used to allocate their O(bunches) working arrays
    fresh per feasibility probe; under OCaml 5's stop-the-world minor GC
    every worker's churn stalls all domains.  A [t] is a pair of
    growable buffers the hot paths refill in place instead.  Refilling
    writes exactly the values fresh allocation would have, so verdicts,
    placements and counters are byte-identical either way — scratch is a
    pure allocation-traffic optimization, and the differential tests in
    [test_assign]/[test_core] assert as much.

    A [t] is single-user mutable state: never share one across
    concurrently running probes.  The intended lifecycle is one arena
    per worker domain ({!with_arena}), or one arena owned by a
    [Rank_dp] scratch record threaded through a search. *)

type t

val create : unit -> t
(** A fresh arena with empty buffers; they grow on demand and never
    shrink. *)

val ints : t -> int -> int array
(** [ints t n] returns the arena's int buffer, grown to at least [n]
    cells.  Contents beyond what the caller writes are unspecified
    (stale from previous uses) — callers must initialize [0 .. n-1]
    themselves and read nothing past it. *)

val floats : t -> int -> float array
(** Same contract for the float buffer. *)

val with_arena : (t -> 'a) -> 'a
(** [with_arena f] runs [f] with the calling {e domain}'s arena,
    borrow-guarded: if another systhread of the same domain is already
    inside [with_arena] (the serve layer's worker threads share the
    domain's DLS slot), [f] gets a fresh throwaway arena instead — same
    results, no reuse.  Reentrant calls from [f] itself likewise fall
    back.  The borrow is released on return or raise. *)
