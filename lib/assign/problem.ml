type t = {
  arch : Ir_ia.Arch.t;
  target_model : Ir_delay.Target.t;
  noise_limit : float option;
  bunches : Ir_wld.Dist.bin array;  (* non-increasing length, meters *)
  targets : float array;  (* per-bunch target delay, seconds *)
  wire_prefix : int array;  (* wire_prefix.(i) = wires in bunches [0..i) *)
  (* Per pair j, prefix tables over bunches:
     area_prefix.(j).(i)   : routing area of bunches [0..i) on pair j
     eta.(j).(b)           : minimal per-wire repeater count, -1 = infeasible
     rep_area_prefix.(j).(i), rep_count_prefix.(j).(i) :
       repeater area / count to meet targets for bunches [0..i)
       (infeasible bunches contribute 0 and are masked by bad_prefix)
     bad_prefix.(j).(i)    : number of infeasible bunches in [0..i)

     Repeater counts are integers by construction (count * eta summed over
     bunches), so the count prefix is kept as an int array: differencing a
     float prefix and truncating back with int_of_float can lose a unit to
     cancellation (6.9999... -> 6), under-counting repeaters and hence the
     via blockage they charge below. *)
  area_prefix : float array array;
  eta : int array array;
  rep_area_prefix : float array array;
  rep_count_prefix : int array array;
  bad_prefix : int array array;
  (* min_rep_area_prefix.(i): lower bound on the repeater area needed to
     meet bunches [0..i), letting every bunch pick its cheapest pair
     independently (a fractional relaxation of the contiguous-split
     constraint).  +infinity from the first bunch infeasible on every
     pair onward: no assignment can meet past it. *)
  min_rep_area_prefix : float array;
  (* Repeater power model (the second budget axis).  activity is the
     switching activity factor; power_budget is in watts, infinity =
     unconstrained (the default — the DP only enters power mode on a
     finite budget, so infinite-budget instances take exactly the
     historical code paths).  per_rep_power.(j): watts per repeater on
     pair j — activity * C_in(s_opt) * Vdd^2 * f_clock dynamic term plus
     s_opt-proportional leakage.  min_rep_power_prefix.(i): the power
     analog of min_rep_area_prefix — each bunch takes the pair with the
     cheapest power independently, so the prefix difference is an
     admissible lower bound on any suffix's power (the bound may pick
     different pairs per axis; each axis's bound is admissible on its
     own). *)
  activity : float;
  power_budget : float;
  per_rep_power : float array;
  min_rep_power_prefix : float array;
}

let arch t = t.arch
let n_bunches t = Array.length t.bunches
let n_pairs t = Ir_ia.Arch.pair_count t.arch
let total_wires t = t.wire_prefix.(n_bunches t)
let bunch_length t b = t.bunches.(b).Ir_wld.Dist.length
let bunch_count t b = t.bunches.(b).Ir_wld.Dist.count
let wires_before t i = t.wire_prefix.(i)
let target t b = t.targets.(b)
let capacity t = Ir_ia.Arch.pair_capacity t.arch
let budget t = Ir_ia.Arch.repeater_budget t.arch

let blocked t ~pair ~wires_above ~reps_above =
  Ir_ia.Arch.blocked_area t.arch ~pair_index:pair ~wires_above
    ~repeaters_above:reps_above

let interval_area t ~pair ~lo ~hi =
  t.area_prefix.(pair).(hi) -. t.area_prefix.(pair).(lo)

let eta_min t ~pair ~bunch =
  let e = t.eta.(pair).(bunch) in
  if e < 0 then None else Some e

let meeting_feasible t ~pair ~lo ~hi =
  t.bad_prefix.(pair).(hi) - t.bad_prefix.(pair).(lo) = 0

let meeting_area t ~pair ~lo ~hi =
  t.rep_area_prefix.(pair).(hi) -. t.rep_area_prefix.(pair).(lo)

let meeting_count t ~pair ~lo ~hi =
  t.rep_count_prefix.(pair).(hi) - t.rep_count_prefix.(pair).(lo)

(* Interval power is count * per-repeater power — the count is exact (int
   prefix difference), so this is the one float product per interval, and
   summing intervals top-down reproduces the DP's own accumulation
   byte-for-byte (same expressions in the same order). *)
let meeting_power t ~pair ~lo ~hi =
  float_of_int (t.rep_count_prefix.(pair).(hi) - t.rep_count_prefix.(pair).(lo))
  *. t.per_rep_power.(pair)

let min_rep_area_before t i = t.min_rep_area_prefix.(i)
let activity t = t.activity
let power_budget t = t.power_budget
let power_budgeted t = t.power_budget < infinity
let per_rep_power t ~pair = t.per_rep_power.(pair)
let min_rep_power_before t i = t.min_rep_power_prefix.(i)
let with_power_budget t b =
  if not (b > 0.0) then invalid_arg "Problem.with_power_budget: budget <= 0";
  { t with power_budget = b }

let meeting_cost t ~pair ~lo ~hi =
  if meeting_feasible t ~pair ~lo ~hi then
    Some (meeting_area t ~pair ~lo ~hi, meeting_count t ~pair ~lo ~hi)
  else None

let wire_delay_on_pair t ~pair ~eta l =
  let p = Ir_ia.Arch.pair t.arch pair in
  Ir_delay.Model.wire_delay t.arch.Ir_ia.Arch.device p.Ir_ia.Layer_pair.line
    ~s:p.Ir_ia.Layer_pair.s_opt ~eta l

let targets_for ~arch ~target_model bunches =
  let clock = arch.Ir_ia.Arch.design.Ir_tech.Design.clock in
  let l_max = bunches.(0).Ir_wld.Dist.length in
  Array.map
    (fun (b : Ir_wld.Dist.bin) ->
      Ir_delay.Target.delay target_model ~clock ~l_max b.length)
    bunches

(* Routing-area prefixes: per pair, geometry-only — independent of the
   targets (clock), the repeater budget and the noise limit. *)
let area_tables ~arch bunches =
  let n = Array.length bunches in
  let m = Ir_ia.Arch.pair_count arch in
  let area_prefix = Array.make_matrix m (n + 1) 0.0 in
  for j = 0 to m - 1 do
    let p = Ir_ia.Arch.pair arch j in
    for b = 0 to n - 1 do
      let { Ir_wld.Dist.length = l; count } = bunches.(b) in
      area_prefix.(j).(b + 1) <-
        area_prefix.(j).(b)
        +. (float_of_int count *. Ir_ia.Layer_pair.wire_area p l)
    done
  done;
  area_prefix

(* Repeater tables: per pair, the minimal per-wire count meeting each
   bunch's target, with area/count/infeasibility prefixes.  Depends on the
   targets (hence the clock) and the noise limit, but not on the repeater
   budget. *)
let repeater_tables ~arch ~noise_limit ~targets bunches =
  let n = Array.length bunches in
  let m = Ir_ia.Arch.pair_count arch in
  let device = arch.Ir_ia.Arch.device in
  let eta = Array.make_matrix m n (-1) in
  let rep_area_prefix = Array.make_matrix m (n + 1) 0.0 in
  let rep_count_prefix = Array.make_matrix m (n + 1) 0 in
  let bad_prefix = Array.make_matrix m (n + 1) 0 in
  for j = 0 to m - 1 do
    let p = Ir_ia.Arch.pair arch j in
    let line = p.Ir_ia.Layer_pair.line in
    let s = p.Ir_ia.Layer_pair.s_opt in
    let rep_area = p.Ir_ia.Layer_pair.repeater_area in
    (* A pair failing its crosstalk budget cannot host meeting wires: the
       charge-sharing ratio is length-independent, so noise is a per-pair
       verdict (see Ir_rc.Noise). *)
    let materials = arch.Ir_ia.Arch.materials in
    let noisy =
      match noise_limit with
      | None -> false
      | Some limit ->
          not
            (Ir_rc.Noise.passes ~k:materials.Ir_ia.Materials.k
               ~miller:materials.Ir_ia.Materials.miller ~limit
               p.Ir_ia.Layer_pair.geom)
    in
    for b = 0 to n - 1 do
      let { Ir_wld.Dist.length = l; count } = bunches.(b) in
      let need =
        if noisy then None
        else
          Ir_delay.Model.repeaters_needed device line ~s ~target:targets.(b)
            l
      in
      match need with
      | Some e ->
          eta.(j).(b) <- e;
          rep_area_prefix.(j).(b + 1) <-
            rep_area_prefix.(j).(b)
            +. (float_of_int count *. float_of_int e *. rep_area);
          rep_count_prefix.(j).(b + 1) <-
            rep_count_prefix.(j).(b) + (count * e);
          bad_prefix.(j).(b + 1) <- bad_prefix.(j).(b)
      | None ->
          rep_area_prefix.(j).(b + 1) <- rep_area_prefix.(j).(b);
          rep_count_prefix.(j).(b + 1) <- rep_count_prefix.(j).(b);
          bad_prefix.(j).(b + 1) <- bad_prefix.(j).(b) + 1
    done
  done;
  (* Relaxation prefix: each bunch takes the cheapest pair that can meet
     it, ignoring contiguity.  Any real split pays at least this much, so
     the prefix is admissible for the pruning bound (Ir_core.Bounds). *)
  let min_rep_area_prefix = Array.make (n + 1) 0.0 in
  for b = 0 to n - 1 do
    let best = ref infinity in
    for j = 0 to m - 1 do
      if eta.(j).(b) >= 0 then
        let a = rep_area_prefix.(j).(b + 1) -. rep_area_prefix.(j).(b) in
        if a < !best then best := a
    done;
    min_rep_area_prefix.(b + 1) <- min_rep_area_prefix.(b) +. !best
  done;
  (eta, rep_area_prefix, rep_count_prefix, bad_prefix, min_rep_area_prefix)

(* Power tables: watts per repeater per pair, and the fractional-relaxation
   power prefix.  Depends on eta (hence the clock / materials / noise
   limit) and on the activity factor, but — like every repeater table —
   not on either budget. *)
let default_activity = 0.15

let power_tables ~arch ~activity ~eta bunches =
  let n = Array.length bunches in
  let m = Ir_ia.Arch.pair_count arch in
  let design = arch.Ir_ia.Arch.design in
  let node = design.Ir_tech.Design.node in
  let clock = design.Ir_tech.Design.clock in
  let vdd = Ir_tech.Node.vdd node in
  let leak = Ir_tech.Node.leakage_per_size node in
  let c_o = arch.Ir_ia.Arch.device.Ir_tech.Device.c_o in
  let per_rep_power =
    Array.init m (fun j ->
        let s = (Ir_ia.Arch.pair arch j).Ir_ia.Layer_pair.s_opt in
        (* Dynamic switching: a size-s repeater presents s * c_o of input
           capacitance, toggled at activity * f_clock; static: leakage
           scales with the size.  Eq. per DESIGN section 17. *)
        (activity *. s *. c_o *. vdd *. vdd *. clock) +. (leak *. s))
  in
  let min_rep_power_prefix = Array.make (n + 1) 0.0 in
  for b = 0 to n - 1 do
    let best = ref infinity in
    for j = 0 to m - 1 do
      let e = eta.(j).(b) in
      if e >= 0 then begin
        let w =
          float_of_int (bunches.(b).Ir_wld.Dist.count * e)
          *. per_rep_power.(j)
        in
        if w < !best then best := w
      end
    done;
    min_rep_power_prefix.(b + 1) <- min_rep_power_prefix.(b) +. !best
  done;
  (per_rep_power, min_rep_power_prefix)

let build ?(activity = default_activity) ?(power_budget = infinity) ~arch
    ~target_model ~noise_limit bunches =
  let n = Array.length bunches in
  if n = 0 then invalid_arg "Problem: empty instance";
  Array.iter
    (fun (b : Ir_wld.Dist.bin) ->
      if b.count <= 0 then invalid_arg "Problem: non-positive bunch count";
      if not (b.length > 0.0) then
        invalid_arg "Problem: non-positive bunch length")
    bunches;
  for i = 1 to n - 1 do
    if bunches.(i).Ir_wld.Dist.length > bunches.(i - 1).Ir_wld.Dist.length
    then invalid_arg "Problem: bunches must be sorted by non-increasing length"
  done;
  if not (activity > 0.0 && activity <= 1.0) then
    invalid_arg "Problem: activity must be in (0, 1]";
  if not (power_budget > 0.0) then
    invalid_arg "Problem: power budget must be positive";
  let targets = targets_for ~arch ~target_model bunches in
  let wire_prefix = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    wire_prefix.(i + 1) <- wire_prefix.(i) + bunches.(i).Ir_wld.Dist.count
  done;
  let area_prefix = area_tables ~arch bunches in
  let eta, rep_area_prefix, rep_count_prefix, bad_prefix, min_rep_area_prefix
      =
    repeater_tables ~arch ~noise_limit ~targets bunches
  in
  let per_rep_power, min_rep_power_prefix =
    power_tables ~arch ~activity ~eta bunches
  in
  {
    arch;
    target_model;
    noise_limit;
    bunches;
    targets;
    wire_prefix;
    area_prefix;
    eta;
    rep_area_prefix;
    rep_count_prefix;
    bad_prefix;
    min_rep_area_prefix;
    activity;
    power_budget;
    per_rep_power;
    min_rep_power_prefix;
  }

let of_bunches ?(target_model = Ir_delay.Target.Linear) ?noise_limit
    ?activity ?power_budget ~arch ~bunches () =
  build ?activity ?power_budget ~arch ~target_model ~noise_limit
    (Array.copy bunches)

let make ?(target_model = Ir_delay.Target.Linear) ?noise_limit ?activity
    ?power_budget ?(bunch_size = 10000) ~arch ~wld () =
  if Ir_wld.Dist.is_empty wld then invalid_arg "Problem.make: empty WLD";
  let pitch =
    Ir_tech.Design.effective_gate_pitch arch.Ir_ia.Arch.design
  in
  let meters = Ir_wld.Dist.map_length (fun l -> l *. pitch) wld in
  let bunches = Ir_wld.Coarsen.bunch ~bunch_size meters in
  build ?activity ?power_budget ~arch ~target_model ~noise_limit bunches

(* ---- rescale-reuse paths ---------------------------------------------- *)

(* The repeater budget A_R = fraction * die_area enters no precomputed
   table (the DP reads it through [budget] at query time), and the die
   area itself depends on the floorplan reserve, not on the usable
   fraction, so rescaling R keeps every table valid verbatim. *)
let with_repeater_fraction t fraction =
  let design =
    Ir_tech.Design.with_repeater_fraction t.arch.Ir_ia.Arch.design fraction
  in
  { t with arch = Ir_ia.Arch.with_design t.arch design }

(* A materials change (k, miller, cap model) moves the electricals —
   line RC, optimal repeater sizing, noise verdicts — so eta and the
   repeater prefixes are rebuilt against the re-derived architecture.
   The targets (clock + l_max only), the bunching, the wire prefix and
   the routing-area prefixes ([wire_area] is length * pitch, geometry
   only) are reused verbatim: the rebuilt fields are bit-equal to a
   from-scratch construction at the new materials because they are the
   same float expressions over the same inputs. *)
let with_materials t materials =
  let arch = Ir_ia.Arch.with_materials t.arch materials in
  let eta, rep_area_prefix, rep_count_prefix, bad_prefix, min_rep_area_prefix
      =
    repeater_tables ~arch ~noise_limit:t.noise_limit ~targets:t.targets
      t.bunches
  in
  (* The electricals moved s_opt, hence the per-repeater power. *)
  let per_rep_power, min_rep_power_prefix =
    power_tables ~arch ~activity:t.activity ~eta t.bunches
  in
  {
    t with
    arch;
    eta;
    rep_area_prefix;
    rep_count_prefix;
    bad_prefix;
    min_rep_area_prefix;
    per_rep_power;
    min_rep_power_prefix;
  }

(* A clock change moves only the per-bunch targets and everything derived
   from them (eta and the repeater prefixes); the bunching, wire prefix
   and routing-area prefixes are geometry-only and are reused. *)
let with_clock t clock =
  let design = Ir_tech.Design.with_clock t.arch.Ir_ia.Arch.design clock in
  let arch = Ir_ia.Arch.with_design t.arch design in
  let targets = targets_for ~arch ~target_model:t.target_model t.bunches in
  let eta, rep_area_prefix, rep_count_prefix, bad_prefix, min_rep_area_prefix
      =
    repeater_tables ~arch ~noise_limit:t.noise_limit ~targets t.bunches
  in
  (* The dynamic power term is proportional to the clock; eta moved too. *)
  let per_rep_power, min_rep_power_prefix =
    power_tables ~arch ~activity:t.activity ~eta t.bunches
  in
  {
    t with
    arch;
    targets;
    eta;
    rep_area_prefix;
    rep_count_prefix;
    bad_prefix;
    min_rep_area_prefix;
    per_rep_power;
    min_rep_power_prefix;
  }

(* Only the power tables depend on the activity factor — everything else
   is reused verbatim.  The eta matrix is private state; recompute the
   power tables from it directly. *)
let with_activity t activity =
  if not (activity > 0.0 && activity <= 1.0) then
    invalid_arg "Problem.with_activity: activity must be in (0, 1]";
  let per_rep_power, min_rep_power_prefix =
    power_tables ~arch:t.arch ~activity ~eta:t.eta t.bunches
  in
  { t with activity; per_rep_power; min_rep_power_prefix }
