(** Capacity-only wire packing — the paper's Algorithm 5 (procedure
    [greedy_assign], the recurrence's M'' term).

    Packs the suffix of the WLD (the wires below the meeting-delay
    boundary) into the remaining layer-pairs bottom-up, shortest wires
    first, ignoring delay.  The paper's Lemma 1 argues this bottom-up
    packing is optimal; it is exactly the feasibility check behind
    Definition 3.

    Via blockage follows the paper's Table 1 definitions: pair [q] loses
    [v_a(q)] per via from every wire ([v] vias each) and every repeater on
    pairs {e strictly above} [q].  (Algorithm 5's pseudocode instead
    charges wires packed so far — an approximation of the same quantity;
    we implement the definition, see DESIGN.md.)  A wire's own vias are
    part of its routing area (Section 3's assumption list).  Since the
    number of suffix wires that end up above [q] depends on how many land
    on [q], the per-pair fill solves the resulting linear condition in
    closed form per bunch; bunches may split across pairs, as the paper
    packs individual wires. *)

type placement = {
  pair : int;  (** layer-pair index (0 = topmost) *)
  bunch : int;  (** bunch index *)
  wires : int;  (** how many wires of the bunch landed on this pair *)
}
[@@deriving show, eq]

type context = {
  from_bunch : int;  (** suffix bunches [from_bunch ..] are to be packed *)
  top_pair : int;  (** pairs [top_pair ..] are available *)
  top_pair_used : float;
      (** routing area already consumed on [top_pair] by meeting wires *)
  wires_above_top : int;
      (** wires on pairs strictly above [top_pair] (blockage for it) *)
  reps_above_top : int;
      (** repeaters in wires on pairs strictly above [top_pair] *)
  wires_above_below : int;
      (** wires on pairs [<= top_pair] that are not suffix wires — blockage
          baseline for every pair strictly below [top_pair] *)
  reps_above_below : int;
      (** all repeaters (they all live at or above [top_pair]) *)
}

val context :
  ?top_pair_used:float ->
  ?wires_above_top:int ->
  ?reps_above_top:int ->
  ?wires_above_below:int ->
  ?reps_above_below:int ->
  from_bunch:int ->
  top_pair:int ->
  unit ->
  context
(** All optional fields default to zero. *)

val max_take :
  cap:float ->
  a_w:float ->
  wire_area:float ->
  via:float ->
  v:int ->
  base_wires:int ->
  reps:int ->
  suffix_above:int ->
  available:int ->
  int
(** The per-pair fill step: the largest [x <= available] wires of one
    bunch that fit on a pair with capacity [cap], [a_w] wire-area already
    packed on it, [via]/[v] the via area and vias per wire, [base_wires]
    non-suffix wires above, [reps] repeaters above, and [suffix_above]
    suffix wires currently above the pair (including the candidates).
    The returned [x] is verified against the exact capacity inequality —
    the closed-form [floor (room / net)] solve alone can be off by one in
    either direction from float rounding.  Exposed for the regression
    tests pinning that behaviour. *)

val pack : ?scratch:Scratch.t -> Problem.t -> context -> placement list option
(** Packs the suffix; returns placements (bottom-up order) or [None] when
    it does not fit.  [?scratch] reuses the arena's int buffer for the
    O(bunches) per-call working array instead of allocating — verdicts,
    placements and counters are byte-identical either way (the refill
    writes exactly what fresh allocation would).
    @raise Invalid_argument on out-of-range context fields.

    Both entry points first run an O(pairs) capacity screen: when the
    suffix's area demand at the narrowest available pitch already
    exceeds the summed per-pair capacity net of the context's blockage
    floor, the packing loop cannot succeed and is skipped (counter
    [greedy_fill/fast_fails]).  The screen is conservative — same
    verdicts, with a relative slack absorbing float summation-order
    differences — so only [greedy_fill/wires_packed] totals change. *)

val fits : ?scratch:Scratch.t -> Problem.t -> context -> bool
(** {!pack} without materializing the placement list. *)

val fast_reject : Problem.t -> context -> bool
(** The O(pairs) demand-vs-availability screen {!pack} and {!fits} run
    before their O(bunches) packing loop, exposed on its own: [true] is
    a {e certain} reject ([fits] would return [false], charging a
    [greedy_fill/fast_fails] event on the way).  The pruning layer
    ([Ir_core.Bounds]) calls this before consulting the {!Suffix_fit}
    memo or the packer; because it is the very same computation — not a
    reimplementation — the pre-screen can never disagree with the
    oracle.  Does not validate or count: the context must already be
    in-range (as every context built by the DP is), and no
    [greedy_fill/*] counters move. *)
