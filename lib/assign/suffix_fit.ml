(* Memoized front-end for [Greedy_fill.fits].

   A phase-B feasibility probe asks whether the WLD suffix [from_bunch..n)
   packs below a prospective boundary, under scalar load parameters (area
   already used on the top pair, wires/repeaters above it and above the
   pairs below).  [Greedy_fill.fits] answers by packing the whole suffix —
   O(bunches) per call, ~10M wires on the large bench cells — yet the
   answer is {e antitone} in every load coordinate: raising any of
   [top_pair_used], [wires_above_*] or [reps_above_*] with the rest fixed
   only removes capacity or adds blockage, so a feasible packing for the
   harder context is feasible verbatim for the easier one, and greedy
   fill (which dominates any particular feasible packing, Lemma 1)
   preserves the verdict.

   This module exploits that monotonicity without trusting it to float
   algebra: per [(from_bunch, top_pair)] it keeps two small frontiers of
   {e oracle-answered} contexts — Pareto-maximal feasible ones and
   Pareto-minimal infeasible ones.  A query pointwise-dominated by a
   known-feasible context is feasible; one that pointwise-dominates a
   known-infeasible context is infeasible; anything else goes to the real
   [Greedy_fill.fits] and its answer joins the frontier.  Every cached
   verdict is therefore derived from actual oracle calls by coordinatewise
   comparison only — no rearranged arithmetic — so the answers are
   byte-identical to always calling the oracle (the differential QCheck
   property in [test_assign] pins this).

   The big win is cross-query reuse where identical contexts repeat: the
   R-column of Table 4 re-probes the same boundaries under different
   repeater budgets, and [Greedy_fill.fits] never reads the budget, so a
   memo shared across the fractions (see [Rank_dp.search_budgets]) turns
   the repeats into O(frontier) comparisons.

   A [t] is single-domain mutable state: share it across sequential
   searches of one problem family (budget rebinds included — the oracle
   ignores the budget), never across concurrently-running probes. *)

let stat_hits = Ir_obs.counter "suffix_fit/hits"
let stat_misses = Ir_obs.counter "suffix_fit/misses"

(* Queries the bound oracle (Ir_core.Bounds) answered before this memo
   was even consulted.  Kept here, next to hits/misses, so the bench's
   hit-rate math can use one denominator: hits + misses + preempted =
   suffix queries issued by the DP. *)
let stat_preempted = Ir_obs.counter "bounds/memo_preempted"
let note_preempted () = Ir_obs.incr stat_preempted

(* One bounded Pareto frontier: parallel arrays of answered contexts.
   [used] is the float load; the other four are the int load counts.
   Capacity-bounded with round-robin replacement — dropping an entry can
   only cause extra oracle calls, never a wrong answer. *)
type frontier = {
  mutable len : int;
  mutable next : int;  (* replacement cursor once full *)
  used : float array;
  wt : int array;  (* wires above the top pair *)
  rt : int array;  (* repeaters above the top pair *)
  wb : int array;  (* wires above the pairs below *)
  rb : int array;  (* repeaters above the pairs below *)
}

let width = 16

let frontier () =
  {
    len = 0;
    next = 0;
    used = Array.make width 0.0;
    wt = Array.make width 0;
    rt = Array.make width 0;
    wb = Array.make width 0;
    rb = Array.make width 0;
  }

type cell = { feas : frontier; infeas : frontier }

type t = {
  problem : Problem.t;
  stride : int;  (* n_pairs, for the (from_bunch, top_pair) key *)
  cells : (int, cell) Hashtbl.t;
  scratch : Scratch.t option;
      (* arena for the oracle's working array on misses; single-user,
         like the memo itself *)
}

let create ?scratch problem =
  {
    problem;
    stride = Problem.n_pairs problem;
    cells = Hashtbl.create 64;
    scratch;
  }

(* Does frontier [f] contain an entry >= (resp. <=) the query in every
   coordinate?  [ge = true] scans for a harder-or-equal entry (used by
   the feasible side), [ge = false] for an easier-or-equal one. *)
let covered f ~ge ~used ~wt ~rt ~wb ~rb =
  let hit = ref false in
  let i = ref 0 in
  while (not !hit) && !i < f.len do
    let k = !i in
    (if ge then
       f.used.(k) >= used && f.wt.(k) >= wt && f.rt.(k) >= rt
       && f.wb.(k) >= wb && f.rb.(k) >= rb
     else
       f.used.(k) <= used && f.wt.(k) <= wt && f.rt.(k) <= rt
       && f.wb.(k) <= wb && f.rb.(k) <= rb)
    |> fun c -> if c then hit := true;
    incr i
  done;
  !hit

(* Insert an answered context, first evicting entries it makes redundant:
   on the feasible side an entry <= the newcomer everywhere is dominated
   (the newcomer certifies strictly more), on the infeasible side an
   entry >= it everywhere is. *)
let remember f ~dominates_if_ge ~used ~wt ~rt ~wb ~rb =
  let w = ref 0 in
  for k = 0 to f.len - 1 do
    let redundant =
      if dominates_if_ge then
        f.used.(k) <= used && f.wt.(k) <= wt && f.rt.(k) <= rt
        && f.wb.(k) <= wb && f.rb.(k) <= rb
      else
        f.used.(k) >= used && f.wt.(k) >= wt && f.rt.(k) >= rt
        && f.wb.(k) >= wb && f.rb.(k) >= rb
    in
    if not redundant then begin
      if !w < k then begin
        f.used.(!w) <- f.used.(k);
        f.wt.(!w) <- f.wt.(k);
        f.rt.(!w) <- f.rt.(k);
        f.wb.(!w) <- f.wb.(k);
        f.rb.(!w) <- f.rb.(k)
      end;
      incr w
    end
  done;
  f.len <- !w;
  let slot =
    if f.len < width then begin
      let s = f.len in
      f.len <- f.len + 1;
      s
    end
    else begin
      (* Full of mutually-incomparable entries: rotate one out. *)
      let s = f.next mod width in
      f.next <- s + 1;
      s
    end
  in
  f.used.(slot) <- used;
  f.wt.(slot) <- wt;
  f.rt.(slot) <- rt;
  f.wb.(slot) <- wb;
  f.rb.(slot) <- rb

let fits t ~from_bunch ~top_pair ~top_pair_used ~wires_above_top
    ~reps_above_top ~wires_above_below ~reps_above_below =
  let key = (from_bunch * t.stride) + top_pair in
  let cell =
    match Hashtbl.find_opt t.cells key with
    | Some c -> c
    | None ->
        let c = { feas = frontier (); infeas = frontier () } in
        Hashtbl.add t.cells key c;
        c
  in
  let used = top_pair_used
  and wt = wires_above_top
  and rt = reps_above_top
  and wb = wires_above_below
  and rb = reps_above_below in
  if covered cell.feas ~ge:true ~used ~wt ~rt ~wb ~rb then begin
    Ir_obs.incr stat_hits;
    true
  end
  else if covered cell.infeas ~ge:false ~used ~wt ~rt ~wb ~rb then begin
    Ir_obs.incr stat_hits;
    false
  end
  else begin
    Ir_obs.incr stat_misses;
    let answer =
      Greedy_fill.fits ?scratch:t.scratch t.problem
        (Greedy_fill.context ~top_pair_used ~wires_above_top ~reps_above_top
           ~wires_above_below ~reps_above_below ~from_bunch ~top_pair ())
    in
    (if answer then
       remember cell.feas ~dominates_if_ge:true ~used ~wt ~rt ~wb ~rb
     else remember cell.infeas ~dominates_if_ge:false ~used ~wt ~rt ~wb ~rb);
    answer
  end
