module P = Ir_assign.Problem

(* Shared top-down sweep: pair j takes bunches while capacity allows and
   [eligible j bunch] holds; ineligible or overflowing bunches spill to
   the next pair down.  The plain greedy baseline is the
   everything-eligible instance; Rank_threshold restricts intake by
   length thresholds. *)
let sweep ?(eligible = fun _ _ -> true) problem =
  let n = P.n_bunches problem in
  let m = P.n_pairs problem in
  let cap = P.capacity problem in
  let total = P.total_wires problem in
  let budget = ref (P.budget problem) in
  let reps_above = ref 0 in
  let placed_wires = ref 0 in
  let rank_wires = ref 0 in
  let boundary_bunch = ref 0 in
  let failed = ref false in
  (* Remaining wires of the bunch currently being consumed. *)
  let b = ref 0 in
  let remaining = ref (if n > 0 then P.bunch_count problem 0 else 0) in
  for j = 0 to m - 1 do
    let pair = Ir_ia.Arch.pair (P.arch problem) j in
    let blocked =
      P.blocked problem ~pair:j ~wires_above:!placed_wires
        ~reps_above:!reps_above
    in
    let room = ref (cap -. blocked) in
    let pair_full = ref false in
    while (not !pair_full) && !b < n do
      if !remaining = 0 then begin
        incr b;
        if !b < n then remaining := P.bunch_count problem !b
      end
      else begin
        let len = P.bunch_length problem !b in
        let wire_area = len *. Ir_ia.Layer_pair.pitch pair in
        let fit =
          if wire_area <= 0.0 then !remaining
          else int_of_float (Float.floor (!room /. wire_area))
        in
        let take =
          if j < m - 1 && not (eligible j !b) then 0
          else min !remaining fit
        in
        if take = 0 then pair_full := true
        else begin
          (* Repeater insertion for the taken wires, longest-first; they
             are identical, so the affordable count is a division. *)
          if not !failed then begin
            match P.eta_min problem ~pair:j ~bunch:!b with
            | None ->
                failed := true;
                boundary_bunch := !b
            | Some eta ->
                let per_wire =
                  float_of_int eta *. pair.Ir_ia.Layer_pair.repeater_area
                in
                let afford =
                  if per_wire <= 0.0 then take
                  else int_of_float (Float.floor (!budget /. per_wire))
                in
                let meet = min take afford in
                budget := !budget -. (float_of_int meet *. per_wire);
                reps_above := !reps_above + (meet * eta);
                rank_wires := !rank_wires + meet;
                if meet < take then begin
                  failed := true;
                  boundary_bunch := !b
                end
                else if !remaining = take then boundary_bunch := !b + 1
          end;
          room := !room -. (float_of_int take *. wire_area);
          placed_wires := !placed_wires + take;
          remaining := !remaining - take
        end
      end
    done
  done;
  let assignable = !placed_wires = total in
  if not assignable then Outcome.unassignable ~total_wires:total ()
  else
    Outcome.v ~rank_wires:!rank_wires ~total_wires:total ~assignable:true
      ~boundary_bunch:!boundary_bunch ()

let compute problem = sweep problem
