module P = Ir_assign.Problem
module GF = Ir_assign.Greedy_fill
module Scratch = Ir_assign.Scratch

(* Observability instruments (see Ir_obs).  Every counter here is a
   deterministic quantity: its total depends only on the instances
   processed, never on domain scheduling — the cross-domain determinism
   tests compare these between jobs=1 and jobs=N runs.  Counters on the
   hot paths are accumulated locally (inside Front for the kernel ones)
   and flushed once per call, so the inner loops never touch an atomic.
   The gauge records the largest per-build state arena, i.e. how many
   states survived insertion at least once in the worst build — a
   capacity watermark for the flat kernel, and deterministic like the
   counters (a maximum is order-independent). *)
let stat_states = Ir_obs.counter "rank_dp/states_expanded"
let stat_inserts = Ir_obs.counter "rank_dp/pareto_inserts"
let stat_dominated = Ir_obs.counter "rank_dp/pareto_dominated"
let stat_truncations = Ir_obs.counter "rank_dp/pareto_truncations"
let stat_witness_probes = Ir_obs.counter "rank_dp/witness_probes"
let stat_search_probes = Ir_obs.counter "rank_dp/search_probes"
let stat_widen_retries = Ir_obs.counter "rank_dp/widen_retries"
let stat_hinted = Ir_obs.counter "rank_dp/hinted_searches"
let stat_hint_saved = Ir_obs.counter "rank_dp/hint_saved_probes"
let stat_fan_rounds = Ir_obs.counter "rank_dp/probe_fan_rounds"

(* Power-mode instruments, moved only by power-budgeted builds/queries:
   with an infinite power budget the historical code paths run and these
   stay at zero — which is itself asserted by the bench identity leg.
   Deterministic like the rest (per-build tallies, sequential flush). *)
let stat_power_points = Ir_obs.counter "power/sweep_points"
let stat_power_states = Ir_obs.counter "power/states"
let stat_power_wrejects = Ir_obs.counter "power/witness_rejects"
let stat_power_inserts = Ir_obs.counter "power/front_inserts"
let gauge_arena = Ir_obs.gauge "rank_dp/front_arena_states"
let span_build = Ir_obs.span "rank_dp/build_tables"
let span_search = Ir_obs.span "rank_dp/search"

type witness = {
  boundary_pair : int;  (** pair holding the last meeting bunches *)
  prefix_splits : int list;
      (** interval end per pair above the boundary, top-down *)
  meet_lo : int;  (** meeting interval on the boundary pair *)
  meet_hi : int;
  reps_above : int;  (** repeaters in pairs above the boundary *)
  reps_total : int;  (** including the boundary pair's *)
}

type tables = {
  problem : P.t;
  front : Front.t;
      (* cell j * (n + 1) + i: pairs [0..j) hold bunches [0..i), all
         meeting.  Dominance is on (repeater area, repeater count); the
         interval splits live in the front's parent-pointer arena and are
         reconstructed only for witness probes. *)
  n : int;
  m : int;
  max_pareto : int;
  truncations : int;
      (* non-dominated states dropped past max_pareto during the build;
         0 means the phase-A front is complete and the search is exact *)
  bounds : Bounds.t option;
      (* present iff the build ran with pruning: feasible_witness then
         pre-screens suffix queries with the bound oracle *)
  incumbent_floor : int;
      (* largest boundary proven achievable during a pruned build; -1
         for unpruned tables.  States that could only have certified
         boundaries <= floor may have been pruned away, so searches must
         start from the floor (never probe at or below it) — which is
         also why the floor always travels with its witness below. *)
  floor_witness : witness option;
      (* the achievability certificate behind incumbent_floor; Some
         whenever incumbent_floor >= 0 *)
  approx_drops : int;
      (* candidates dropped by epsilon-dominance (builder ~epsilon > 0);
         like truncations, nonzero forfeits the exact claim — unlike
         truncations it never triggers the widening ladder, because a
         wider front would not bring the dropped states back *)
}

let cell ~n j i = (j * (n + 1)) + i

(* Per-domain scratch for the transient compute paths: a greedy-fill
   arena plus the previous build's [Front.t], recycled into the next
   build instead of reallocated ([Front.recycle] — indistinguishable from
   a fresh store, so results and counters are byte-identical).  Holding a
   scratch makes the tables it builds {e transient}: the next build with
   the same scratch reuses their arrays.  The entry points that return
   plain outcomes ([compute], [search], [search_budgets],
   [feasible_boundary]) thread one automatically; [build_tables] without
   an explicit scratch always allocates fresh, which is what table
   holders like the serve warm pool need. *)
type scratch = {
  gf : Scratch.t;
  mutable front : Front.t option;
  busy : bool Atomic.t;
}

let create_scratch () =
  { gf = Scratch.create (); front = None; busy = Atomic.make false }

let scratch_key : scratch Domain.DLS.key = Domain.DLS.new_key create_scratch

(* Same borrow discipline as [Scratch.with_arena]: the domain's scratch
   by CAS, a throwaway one when a sibling systhread already holds it. *)
let with_domain_scratch f =
  let s = Domain.DLS.get scratch_key in
  if Atomic.compare_and_set s.busy false true then
    Fun.protect ~finally:(fun () -> Atomic.set s.busy false) (fun () -> f s)
  else f (create_scratch ())

let with_scratch ?scratch f =
  match scratch with Some s -> f s | None -> with_domain_scratch f

exception Break

(* ---- incremental level-stepped build ----------------------------------- *)

(* The phase-A build decomposed into per-boundary-pair steps: a [builder]
   holds one build's front store plus the next level [j] to expand, and
   [builder_step] runs exactly the [for i = 0 to n] body that the
   monolithic loop ran for that [j].  [build_tables] below is the fused
   create / step-to-completion / finish, so the per-point path and any
   level-synchronous driver ([Rank_grid]'s wavefront, which interleaves
   the levels of many builds) execute the {e same} expansion code on the
   same state — byte-identical fronts, tallies and witnesses by
   construction, not by reimplementation. *)
(* One pruning context: the bound oracle, the shared incumbent cell, the
   smallest budget any query of this build will run under (the floor's
   witness must be achievable there — budget monotonicity extends it to
   every larger fraction), and the witness of the currently published
   incumbent.  [pr_witness] is only written from sequential sections
   (prune_for, the barrier hook below), same convention as
   [Incumbent.publish]. *)
type prune = {
  pr_bounds : Bounds.t;
  pr_inc : Ir_exec.Incumbent.t;
  pr_budget_min : float;
  mutable pr_witness : witness option;
}

(* The floor witness is the probe's own certifying chain — a DP path
   the exact build also constructs (Bounds.pessimistic_probe evaluates
   the expansion screens with the DP's float expressions), re-packaged
   in [feasible_witness]'s shape.  Witness payloads are internal
   (outcomes carry rank / boundary / flags only), so the floor case
   never leaks a non-canonical witness to an observable surface. *)
let probe_witness (pb : Bounds.probe) =
  {
    boundary_pair = pb.Bounds.pb_pair;
    prefix_splits = pb.Bounds.pb_splits;
    meet_lo = pb.Bounds.pb_meet_lo;
    meet_hi = pb.Bounds.pb_boundary;
    reps_above = pb.Bounds.pb_reps_above;
    reps_total = pb.Bounds.pb_reps_total;
  }

let prune_for ?gf ?budget_min problem =
  let bounds = Bounds.create problem in
  let budget_min =
    match budget_min with Some b -> b | None -> P.budget problem
  in
  let pr =
    {
      pr_bounds = bounds;
      pr_inc = Ir_exec.Incumbent.create ();
      pr_budget_min = budget_min;
      pr_witness = None;
    }
  in
  let pb = Bounds.pessimistic_probe ?scratch:gf bounds ~budget:budget_min in
  Ir_exec.Incumbent.offer pr.pr_inc pb.Bounds.pb_boundary;
  if Ir_exec.Incumbent.publish pr.pr_inc then begin
    Bounds.note_incumbent ();
    pr.pr_witness <- Some (probe_witness pb)
  end;
  pr

type builder = {
  b_problem : P.t;
  b_front : Front.t;
  b_n : int;
  b_m : int;
  b_max_pareto : int;
  b_cap : float;
  b_budget : float;
  b_blocked_k : float array;
  b_prune : prune option;
  b_epsilon : float;
  b_thresh : float array;  (* per-column prune thresholds, len n + 1 *)
  b_powered : bool;  (* P.power_budgeted: 3-way front, power screens on *)
  b_pbudget : float;  (* the power budget (infinity when not powered) *)
  b_pthresh : float array;  (* power-axis prune thresholds (powered+prune) *)
  b_live_idx : int array;  (* power-mode survivor indices, len width *)
  mutable b_thresh_inc : int;  (* incumbent the thresholds encode; -2 stale *)
  mutable b_level : int;  (* next boundary pair to expand *)
  mutable b_states : int;
  mutable b_skipped : int;
  mutable b_pruned : int;
  mutable b_eps_drops : int;
}

let builder ?(max_pareto = 8) ?(epsilon = 0.0) ?prune ?scratch problem =
  let n = P.n_bunches problem in
  let m = P.n_pairs problem in
  let width = max 1 max_pareto in
  let cells = (m + 1) * (n + 1) in
  (* A finite power budget switches the build to power mode: a 3-way
     (area, count, power) front and power screens mirroring the budget
     screens.  With the default infinite budget, [power_budgeted] is
     false and the build takes exactly the historical code paths — the
     byte-identity anchor the bench asserts. *)
  let powered = P.power_budgeted problem in
  let fresh () =
    if powered then Front.create_powered ~cells ~width
    else Front.create ~cells ~width
  in
  let front =
    match scratch with
    | None -> fresh ()
    | Some s ->
        (* Consumes the previous transient build's store (if any) — the
           scratch contract says those tables are dead by now. *)
        let fr =
          match s.front with
          | Some old ->
              if powered then Front.recycle_powered old ~cells ~width
              else Front.recycle old ~cells ~width
          | None -> fresh ()
        in
        s.front <- Some fr;
        fr
  in
  Front.seed front (cell ~n 0 0) ~area:0.0 ~count:0;
  (* [P.blocked] depends on the pair, [wires_above], and the state's
     repeater count — not on the interval end — so one scratch fill per
     (pair, start) replaces a boxed call per (state, end). *)
  let blocked_k =
    (* Only [0 .. len-1] (len <= width) is written-then-read per cell, so
       an arena buffer longer than [width] behaves like the fresh array. *)
    match scratch with
    | None -> Array.make width 0.0
    | Some s -> Scratch.floats s.gf width
  in
  if not (epsilon >= 0.0) then invalid_arg "Rank_dp.builder: epsilon < 0";
  (* ε-dominance is a 2-way notion (area-inflated cover); extending it to
     the power axis is a separate design decision, so power mode refuses
     it outright rather than silently ignoring the axis. *)
  if powered && epsilon > 0.0 then
    invalid_arg "Rank_dp.builder: epsilon-dominance unsupported in power mode";
  {
    b_problem = problem;
    b_front = front;
    b_n = n;
    b_m = m;
    b_max_pareto = max_pareto;
    b_cap = P.capacity problem;
    b_budget = P.budget problem;
    b_blocked_k = blocked_k;
    b_prune = prune;
    b_epsilon = epsilon;
    b_thresh = (match prune with None -> [||] | Some _ -> Array.make (n + 1) infinity);
    b_powered = powered;
    b_pbudget = P.power_budget problem;
    b_pthresh =
      (match prune with
      | Some _ when powered -> Array.make (n + 1) infinity
      | _ -> [||]);
    b_live_idx = (if powered then Array.make width 0 else [||]);
    b_thresh_inc = -2;
    b_level = 0;
    b_states = 0;
    b_skipped = 0;
    b_pruned = 0;
    b_eps_drops = 0;
  }

let builder_levels b = b.b_m
let builder_level b = b.b_level
let builder_done b = b.b_level >= b.b_m

(* Power-mode analog of [builder_step]'s level body below — same
   structure, three deltas.  (1) States carry a third coordinate: the
   accumulated repeater power, advanced by [P.meeting_power] exactly as
   area is advanced by [meeting_area], and screened against the power
   budget wherever area is screened against the area budget.  (2)
   Dominance is 3-way ([Front.covers_pw]/[insert_pw]); a powered cell
   keeps areas ascending but not counts descending, so the survivor set
   of source-state pruning is no longer an area-sorted prefix — the
   survivors are gathered into [b_live_idx] by a linear scan instead of
   a binary search.  (3) There is no power analog of the [min_area
   +. d_area > budget] early break: the cell's min-area state need not
   be its min-power state, so the power screen stays per-state. *)
let builder_step_power b =
  let j = b.b_level in
  let problem = b.b_problem in
  let front = b.b_front in
  let n = b.b_n in
  let cap = b.b_cap in
  let budget = b.b_budget in
  let pbudget = b.b_pbudget in
  let blocked_k = b.b_blocked_k in
  let live_idx = b.b_live_idx in
  let f_area = Front.raw_area front in
  let f_count = Front.raw_count front in
  let f_power = Front.raw_power front in
  let stride = Front.stride front in
  let pruning =
    match b.b_prune with
    | None -> false
    | Some pr ->
        let inc = Ir_exec.Incumbent.current pr.pr_inc in
        if inc <> b.b_thresh_inc then begin
          Bounds.fill_thresholds pr.pr_bounds ~budget:b.b_budget ~incumbent:inc
            b.b_thresh;
          Bounds.fill_power_thresholds pr.pr_bounds ~power_budget:pbudget
            ~incumbent:inc b.b_pthresh;
          b.b_thresh_inc <- inc
        end;
        inc >= 0
  in
  let thresh = b.b_thresh in
  let pthresh = b.b_pthresh in
  for i = 0 to n do
    let src = cell ~n j i in
    let len = Front.length front src in
    if len > 0 then begin
      let sbase = src * stride in
      (* Componentwise source-state pruning: over either axis's column
         threshold means no completion beats incumbent + 1 within both
         budgets.  Linear gather (see header note). *)
      let live = ref 0 in
      if not pruning then begin
        for k = 0 to len - 1 do
          live_idx.(k) <- k
        done;
        live := len
      end
      else begin
        let ta = thresh.(i) and tp = pthresh.(i) in
        for k = 0 to len - 1 do
          if f_area.{sbase + k} <= ta && f_power.{sbase + k} <= tp then begin
            live_idx.(!live) <- k;
            incr live
          end
        done
      end;
      let live = !live in
      b.b_pruned <- b.b_pruned + (len - live);
      if live > 0 then begin
        b.b_states <- b.b_states + live;
        let wires_above = P.wires_before problem i in
        let min_area = Front.min_area front src in
        for t = 0 to live - 1 do
          blocked_k.(t) <-
            P.blocked problem ~pair:j ~wires_above
              ~reps_above:f_count.{sbase + live_idx.(t)}
        done;
        try
          for i2 = i to n do
            if i2 = i then begin
              (* Empty interval: pair j left unused; area, count and
                 power all carry over unchanged, and survivors are by
                 definition within this column's thresholds. *)
              let dst = cell ~n (j + 1) i in
              for t = 0 to live - 1 do
                let k = live_idx.(t) in
                let a = f_area.{sbase + k} in
                let c = f_count.{sbase + k} in
                let w = f_power.{sbase + k} in
                if Front.covers_pw front dst ~area:a ~count:c ~power:w then
                  b.b_skipped <- b.b_skipped + 1
                else
                  Front.insert_pw front dst ~area:a ~count:c ~power:w ~split:i
                    ~parent:(Front.state front src k)
              done
            end
            else if not (P.meeting_feasible problem ~pair:j ~lo:i ~hi:i2) then
              raise Break
            else begin
              let d_area = P.meeting_area problem ~pair:j ~lo:i ~hi:i2 in
              if min_area +. d_area > budget then raise Break;
              let routing = P.interval_area problem ~pair:j ~lo:i ~hi:i2 in
              if routing > cap then raise Break;
              let d_count = P.meeting_count problem ~pair:j ~lo:i ~hi:i2 in
              let d_power = P.meeting_power problem ~pair:j ~lo:i ~hi:i2 in
              let dst = cell ~n (j + 1) i2 in
              let t2 = if pruning then thresh.(i2) else infinity in
              let t2p = if pruning then pthresh.(i2) else infinity in
              for t = 0 to live - 1 do
                let k = live_idx.(t) in
                let a = f_area.{sbase + k} +. d_area in
                let c = f_count.{sbase + k} + d_count in
                let w = f_power.{sbase + k} +. d_power in
                if
                  a <= budget && w <= pbudget
                  && routing +. blocked_k.(t) <= cap
                then begin
                  if pruning && (a > t2 || w > t2p) then
                    b.b_pruned <- b.b_pruned + 1
                  else if Front.covers_pw front dst ~area:a ~count:c ~power:w
                  then b.b_skipped <- b.b_skipped + 1
                  else
                    Front.insert_pw front dst ~area:a ~count:c ~power:w
                      ~split:i2
                      ~parent:(Front.state front src k)
                end
              done
            end
          done
        with Break -> ()
      end
    end
  done;
  b.b_level <- j + 1;
  b.b_level < b.b_m

(* Expand one boundary-pair level.  Returns [true] while more levels
   remain.  The step touches only this builder's own state (front,
   tallies), so independent builders may step on different domains —
   provided each individual builder's steps are externally ordered (the
   wavefront driver's per-level barrier). *)
let builder_step b =
  if builder_done b then false
  else if b.b_powered then builder_step_power b
  else begin
    let j = b.b_level in
    let problem = b.b_problem in
    let front = b.b_front in
    let n = b.b_n in
    let cap = b.b_cap in
    let budget = b.b_budget in
    let blocked_k = b.b_blocked_k in
    (* Raw views into the front's planes, for the inlined dominance
       pre-check below.  Without flambda every [Front.insert] call boxes
       its float [~area] argument, and ~99.7% of candidates are rejected
       as dominated — running the same binary search here first skips the
       call (and its allocation) on that path.  The atomics stay
       byte-identical: each skip would have counted as one insert and one
       dominated drop, so both are added back at the flush. *)
    let f_area = Front.raw_area front in
    let f_count = Front.raw_count front in
    let f_len = Front.raw_len front in
    let stride = Front.stride front in
    (* Pruning thresholds for this level.  The incumbent is read once,
       here, and the level is expanded against that single value: the
       cell is only published at sequential barriers (Incumbent's
       contract), so every domain stepping builders of this wavefront
       level sees the same thresholds and the prune tallies stay
       jobs-invariant.  Refreshed only when the incumbent moved. *)
    let pruning =
      match b.b_prune with
      | None -> false
      | Some pr ->
          let inc = Ir_exec.Incumbent.current pr.pr_inc in
          if inc <> b.b_thresh_inc then begin
            Bounds.fill_thresholds pr.pr_bounds ~budget:b.b_budget
              ~incumbent:inc b.b_thresh;
            b.b_thresh_inc <- inc
          end;
          inc >= 0
    in
    let thresh = b.b_thresh in
    let epsilon = b.b_epsilon in
    for i = 0 to n do
      let src = cell ~n j i in
      let len = Front.length front src in
      if len > 0 then begin
        let sbase = src * stride in
        (* Source-state pruning: a state over the column threshold
           cannot reach boundary incumbent + 1 within the budget
           (admissible bound, see Bounds), and neither can any successor
           — extending a chain only adds at least the relaxed suffix
           cost.  Areas ascend within a cell, so the prunable states are
           a suffix: one binary search bounds the survivors.  (A NaN
           threshold — infinite relaxation prefix — only occurs for
           unreachable columns, whose cells are empty.) *)
        let live =
          if not pruning then len
          else begin
            let tl = thresh.(i) in
            let lo = ref 0 and hi = ref len in
            while !hi > !lo do
              let mid = (!lo + !hi) / 2 in
              if f_area.{sbase + mid} <= tl then lo := mid + 1
              else hi := mid
            done;
            !lo
          end
        in
        b.b_pruned <- b.b_pruned + (len - live);
        if live > 0 then begin
          b.b_states <- b.b_states + live;
          let wires_above = P.wires_before problem i in
          let min_area = Front.min_area front src in
          for k = 0 to live - 1 do
            blocked_k.(k) <-
              P.blocked problem ~pair:j ~wires_above
                ~reps_above:f_count.{sbase + k}
          done;
          try
            for i2 = i to n do
              if i2 = i then begin
                (* Empty interval: pair j left unused.  Survivors are by
                   definition within this column's threshold, so no
                   candidate check is needed here. *)
                let dst = cell ~n (j + 1) i in
                let dbase = dst * stride in
                for k = 0 to live - 1 do
                  let a = f_area.{sbase + k} in
                  let c = f_count.{sbase + k} in
                  let lo = ref 0 and hi = ref f_len.{dst} in
                  while !hi > !lo do
                    let mid = (!lo + !hi) / 2 in
                    if f_area.{dbase + mid} <= a then lo := mid + 1
                    else hi := mid
                  done;
                  let p = !lo in
                  if p > 0 && f_count.{dbase + p - 1} <= c then
                    b.b_skipped <- b.b_skipped + 1
                  else if
                    epsilon > 0.0
                    && Front.covers front dst
                         ~area:(a *. (1.0 +. epsilon))
                         ~count:c
                  then b.b_eps_drops <- b.b_eps_drops + 1
                  else
                    Front.insert front dst ~area:a ~count:c ~split:i
                      ~parent:(Front.state front src k)
                done
              end
              else if not (P.meeting_feasible problem ~pair:j ~lo:i ~hi:i2)
              then raise Break
              else begin
                let d_area = P.meeting_area problem ~pair:j ~lo:i ~hi:i2 in
                if min_area +. d_area > budget then raise Break;
                let routing = P.interval_area problem ~pair:j ~lo:i ~hi:i2 in
                if routing > cap then raise Break;
                let d_count = P.meeting_count problem ~pair:j ~lo:i ~hi:i2 in
                let dst = cell ~n (j + 1) i2 in
                let dbase = dst * stride in
                let t2 = if pruning then thresh.(i2) else infinity in
                for k = 0 to live - 1 do
                  let a = f_area.{sbase + k} +. d_area in
                  let c = f_count.{sbase + k} + d_count in
                  if a <= budget && routing +. blocked_k.(k) <= cap then begin
                    if pruning && a > t2 then
                      (* Candidate lands at column i2 already over that
                         column's threshold: prune before the front is
                         even consulted. *)
                      b.b_pruned <- b.b_pruned + 1
                    else begin
                      let lo = ref 0 and hi = ref f_len.{dst} in
                      while !hi > !lo do
                        let mid = (!lo + !hi) / 2 in
                        if f_area.{dbase + mid} <= a then lo := mid + 1
                        else hi := mid
                      done;
                      let p = !lo in
                      if p > 0 && f_count.{dbase + p - 1} <= c then
                        b.b_skipped <- b.b_skipped + 1
                      else if
                        epsilon > 0.0
                        && Front.covers front dst
                             ~area:(a *. (1.0 +. epsilon))
                             ~count:c
                      then b.b_eps_drops <- b.b_eps_drops + 1
                      else
                        Front.insert front dst ~area:a ~count:c ~split:i2
                          ~parent:(Front.state front src k)
                    end
                  end
                done
              end
            done
          with Break -> ()
        end
      end
    done;
    b.b_level <- j + 1;
    b.b_level < b.b_m
  end

(* Flush the tallies and seal the build.  Must be called exactly once per
   builder (the counters would double-count otherwise), after the last
   level. *)
let builder_finish b =
  if not (builder_done b) then
    invalid_arg "Rank_dp.builder_finish: build not complete";
  let front = b.b_front in
  Ir_obs.add stat_states b.b_states;
  Ir_obs.add stat_inserts (Front.inserts front + b.b_skipped);
  Ir_obs.add stat_dominated (Front.dominated front + b.b_skipped);
  Ir_obs.add stat_truncations (Front.truncations front);
  Ir_obs.set_max gauge_arena (Front.arena_states front);
  if b.b_powered then begin
    (* Power-mode builds additionally land on the power/* instruments —
       the rank_dp/* totals above still include them, so the power
       counters isolate the power-mode share for the bench identity
       legs. *)
    Ir_obs.add stat_power_states b.b_states;
    Ir_obs.add stat_power_inserts (Front.inserts front + b.b_skipped)
  end;
  Bounds.note_pruned b.b_pruned;
  Bounds.note_epsilon b.b_eps_drops;
  let bounds, incumbent_floor, floor_witness =
    match b.b_prune with
    | None -> (None, -1, None)
    | Some pr ->
        let floor = Ir_exec.Incumbent.current pr.pr_inc in
        (* The floor is the largest incumbent any level pruned against:
           the incumbent only grows, so every pruned state could at most
           have certified a boundary <= floor — which the witness below
           certifies anyway.  An incumbent always comes with its
           certificate (prune_for and the barrier hook set both under
           the same publish). *)
        assert (floor < 0 || pr.pr_witness <> None);
        (Some pr.pr_bounds, floor, pr.pr_witness)
  in
  {
    problem = b.b_problem;
    front;
    n = b.b_n;
    m = b.b_m;
    max_pareto = b.b_max_pareto;
    truncations = Front.truncations front;
    bounds;
    incumbent_floor;
    floor_witness;
    approx_drops = b.b_eps_drops;
  }

(* Sequential-barrier hook: after a level completes (and before the next
   one reads the incumbent), try to raise the incumbent from the freshly
   built row.  Non-empty cells are scanned deepest-first and each cell's
   cheapest state greedy-chain-extended over the remaining pairs
   (Bounds.chain_probe: the exact expansion screens, then the largest
   packer-certified boundary along the chain); the best certified
   boundary of the scan is published.  Exact prefix plus greedy
   completion typically lands within a bunch or two of the DP optimum,
   which is what arms the thresholds for the heavy later levels — and
   since a build has only [m] barriers, probing a handful of columns per
   barrier costs noise next to the witness probes it saves.  The
   optimistic-bound pre-check (O(log n), no packer) skips columns whose
   relaxation cannot beat the best boundary seen, so the probe budget
   [max_barrier_probes] is spent only on genuine contenders.  A probed
   state's area must fit the smallest budget of the build's query family
   ([pr_budget_min]): budget monotonicity then makes the floor valid for
   every fraction the shared tables will answer.  Must only run from
   sequential sections — it publishes (see Ir_exec.Incumbent). *)
let max_barrier_probes = 32

let builder_advance_incumbent ?gf b =
  match b.b_prune with
  | None -> ()
  | Some pr ->
      let row = b.b_level in
      if row >= 1 && row < b.b_m then begin
        let n = b.b_n in
        let front = b.b_front in
        let best = ref None in
        let best_c = ref (Ir_exec.Incumbent.current pr.pr_inc) in
        let probes = ref 0 in
        let i = ref n in
        while !probes < max_barrier_probes && !i >= 0 do
          let src = cell ~n row !i in
          if Front.length front src > 0 then begin
            (* Element 0 is the cell's min-area state — the extender
               with the most budget left for the suffix; if it is over
               the family's smallest budget, every state in the cell
               is.  (In power mode it need not be the min-power state,
               but the gate stays sound: it only decides which cells
               get probed, never an answer.)  Every non-empty cell the
               optimistic pre-check turns away is a packer call that
               never ran — the [bounds/probe_gated] tally. *)
            let a0 = Front.min_area front src in
            let w0 = if b.b_powered then Front.power front src 0 else 0.0 in
            let gated =
              a0 > pr.pr_budget_min
              || w0 > b.b_pbudget
              || (if b.b_powered then
                    Bounds.optimistic_boundary_pw pr.pr_bounds
                      ~budget:pr.pr_budget_min ~power_budget:b.b_pbudget
                      ~area:a0 ~power:w0 ~from:!i
                  else
                    Bounds.optimistic_boundary pr.pr_bounds
                      ~budget:pr.pr_budget_min ~area:a0 ~from:!i)
                 <= !best_c
            in
            if gated then Bounds.note_gated ()
            else begin
              incr probes;
              let count = Front.count front src 0 in
              match
                Bounds.chain_probe ?scratch:gf ~power:w0 pr.pr_bounds
                  ~budget:pr.pr_budget_min ~from_pair:row ~from_col:!i
                  ~area:a0 ~count
              with
              | Some pb when pb.Bounds.pb_boundary > !best_c ->
                  best_c := pb.Bounds.pb_boundary;
                  best := Some (pb, src)
              | _ -> ()
            end
          end;
          decr i
        done;
        match !best with
        | Some (pb, src) ->
            Ir_exec.Incumbent.offer pr.pr_inc pb.Bounds.pb_boundary;
            if Ir_exec.Incumbent.publish pr.pr_inc then begin
              Bounds.note_incumbent ();
              pr.pr_witness <-
                Some
                  {
                    boundary_pair = pb.Bounds.pb_pair;
                    prefix_splits =
                      Front.splits front (Front.state front src 0)
                      @ pb.Bounds.pb_splits;
                    meet_lo = pb.Bounds.pb_meet_lo;
                    meet_hi = pb.Bounds.pb_boundary;
                    reps_above = pb.Bounds.pb_reps_above;
                    reps_total = pb.Bounds.pb_reps_total;
                  }
            end
        | None -> ()
      end

let build_tables ?max_pareto ?epsilon ?prune ?scratch problem =
  Ir_obs.time span_build @@ fun () ->
  let b = builder ?max_pareto ?epsilon ?prune ?scratch problem in
  let gf = Option.map (fun s -> s.gf) scratch in
  while builder_step b do
    builder_advance_incumbent ?gf b
  done;
  builder_finish b

let table_truncations tables = tables.truncations
let table_incumbent_floor tables = tables.incumbent_floor
let table_approx_drops tables = tables.approx_drops

(* ---- snapshot serialization ------------------------------------------- *)

(* The problem is deliberately excluded from the blob: the caller rebuilds
   it from the query fingerprint (it is cheap next to the DP build) and
   passes it to [decode_tables], which only accepts the blob if its
   geometry matches.  The payload is [Marshal] output — the front is
   Bigarray planes and ints — prefixed with its own 16-byte MD5:
   [Marshal.from_string] on corrupted bytes is not safe (it trusts the
   embedded block sizes), so [decode_tables] verifies the digest before
   unmarshaling anything.  Truncated, bit-flipped, or wrong-blob payloads
   therefore return [None] without ever reaching [Marshal].  Callers
   layering their own framing ({!Ir_serve.Snapshot}) still checksum the
   whole blob externally; this internal digest is the last line of
   defense, not a substitute for theirs. *)
let encode_tables t =
  (* Pruned or epsilon-compressed tables are deliberately not
     snapshotable: a snapshot is replayed against arbitrary future
     fractions (the floor's budget_min would not cover them) and the
     blob format predates both modes.  The serve tier only ever encodes
     unpruned pool builds, so this is an invariant check, not a
     limitation anyone hits. *)
  if t.incumbent_floor >= 0 || t.approx_drops > 0 then
    invalid_arg "Rank_dp.encode_tables: pruned/approximate tables";
  (* Powered tables are likewise out: the blob format predates the power
     plane and a snapshot would be replayed against arbitrary future
     power budgets (the displacement argument only covers budgets up to
     the build's own).  The serve tier answers power-budgeted queries
     cold, so nothing ever tries. *)
  if Front.powered t.front then
    invalid_arg "Rank_dp.encode_tables: power-mode tables";
  let payload =
    Marshal.to_string (t.n, t.m, t.max_pareto, t.truncations, t.front) []
  in
  Digest.string payload ^ payload

let decode_tables problem blob =
  let digest_len = 16 in
  let blen = String.length blob in
  if blen < digest_len then None
  else
    let payload = String.sub blob digest_len (blen - digest_len) in
    if not (String.equal (String.sub blob 0 digest_len) (Digest.string payload))
    then None
    else
      match
        (Marshal.from_string payload 0 : int * int * int * int * Front.t)
      with
      | exception _ -> None
      | n, m, max_pareto, truncations, front ->
          if
            n = P.n_bunches problem
            && m = P.n_pairs problem
            && Front.cells front = (m + 1) * (n + 1)
            && Front.width front = max 1 max_pareto
            && truncations >= 0
          then
            Some
              {
                problem;
                front;
                n;
                m;
                max_pareto;
                truncations;
                bounds = None;
                incumbent_floor = -1;
                floor_witness = None;
                approx_drops = 0;
              }
          else None

(* Can the top c bunches all meet their targets in some complete
   assignment?  Try every boundary pair j and every phase-A state of
   cell (j, i): bunches [i..c) meet on pair j, the rest is capacity-only.
   Returns the witness state on success.

   The budget is read from [tables.problem] here, at query time — which
   is what lets [search_budgets] reuse one build across budgets: a state
   within a smaller budget is accepted or rejected per probe, and states
   over it are filtered by the [e.area + m_area > budget] check (prefix
   areas only grow along a chain, so no over-budget prefix can lead to a
   within-budget witness). *)
let feasible_witness ?memo ?gf tables c =
  let { problem; front; n; m; bounds; _ } = tables in
  let cap = P.capacity problem in
  let budget = P.budget problem in
  (* The power budget is read from the problem at query time exactly like
     the area budget, so power-budget rebinds of one powered build answer
     a whole sweep ([compute_pareto_power]).  A powered front queried at
     an infinite budget degrades to the pure area checks; the converse —
     a finite power budget against a 2-way front — cannot be answered
     (the states carry no power coordinate) and is a caller bug. *)
  let powered = Front.powered front in
  let pbudget = P.power_budget problem in
  if (not powered) && pbudget < infinity then
    invalid_arg "Rank_dp.feasible_witness: power-budgeted query on 2-way tables";
  let wires_c = P.wires_before problem c in
  (* With a memo, the greedy-fill suffix check goes through the
     [Suffix_fit] frontier cache (byte-identical verdicts, fewer oracle
     packings); without one, straight to the oracle.  The memo's oracle
     runs against the problem it was created for — sound here because a
     memo is only ever shared within a budget-rebound family and the
     suffix check never reads the budget (see [search_budgets]). *)
  let suffix_fits ~top_pair_used ~wires_above_top ~reps_above_top
      ~reps_above_below ~top_pair =
    match memo with
    | Some sf ->
        Ir_assign.Suffix_fit.fits sf ~from_bunch:c ~top_pair ~top_pair_used
          ~wires_above_top ~reps_above_top ~wires_above_below:wires_c
          ~reps_above_below
    | None ->
        GF.fits ?scratch:gf problem
          (GF.context ~top_pair_used ~wires_above_top ~reps_above_top
             ~wires_above_below:wires_c ~reps_above_below ~from_bunch:c
             ~top_pair ())
  in
  (* With a bound oracle installed (pruned builds), its O(pairs) screen
     — the packer's own fast-fail, not a reimplementation — answers
     certain-rejects before the memo or the packer run.  Each hit is an
     oracle call saved; when a memo was installed it is also a query the
     memo never saw, counted so the memo's hit-rate denominator stays
     honest (Suffix_fit.note_preempted). *)
  let bound_rejects ~top_pair_used ~wires_above_top ~reps_above_top
      ~reps_above_below ~top_pair =
    match bounds with
    | None -> false
    | Some bo ->
        let r =
          Bounds.suffix_reject bo
            (GF.context ~top_pair_used ~wires_above_top ~reps_above_top
               ~wires_above_below:wires_c ~reps_above_below ~from_bunch:c
               ~top_pair ())
        in
        if r then begin
          Bounds.note_saved ();
          if memo <> None then Ir_assign.Suffix_fit.note_preempted ()
        end;
        r
  in
  let probes = ref 0 in
  let power_rejects = ref 0 in
  let exception Found of witness in
  let result =
    try
      for j = 0 to m - 1 do
        for i = 0 to c do
          let src = cell ~n j i in
          let len = Front.length front src in
          if len > 0 then begin
            (* Probes are counted per state even when the whole cell is
               rejected below, matching the historical per-state counter. *)
            probes := !probes + len;
            (* Everything depending only on (j, i, c) is hoisted out of
               the per-state loop: the meeting interval's feasibility and
               cost, its routing area, and the wires above. *)
            if P.meeting_feasible problem ~pair:j ~lo:i ~hi:c then begin
              let m_area = P.meeting_area problem ~pair:j ~lo:i ~hi:c in
              let m_count = P.meeting_count problem ~pair:j ~lo:i ~hi:c in
              let used_j = P.interval_area problem ~pair:j ~lo:i ~hi:c in
              let m_power =
                if powered then P.meeting_power problem ~pair:j ~lo:i ~hi:c
                else 0.0
              in
              let wires_i = P.wires_before problem i in
              for k = 0 to len - 1 do
                let area = Front.area front src k in
                let count = Front.count front src k in
                if
                  powered && Front.power front src k +. m_power > pbudget
                then incr power_rejects
                else if area +. m_area <= budget then begin
                  let blocked_j =
                    P.blocked problem ~pair:j ~wires_above:wires_i
                      ~reps_above:count
                  in
                  if
                    used_j +. blocked_j <= cap
                    && (not
                          (bound_rejects ~top_pair_used:used_j
                             ~wires_above_top:wires_i ~reps_above_top:count
                             ~reps_above_below:(count + m_count) ~top_pair:j))
                    && suffix_fits ~top_pair_used:used_j
                         ~wires_above_top:wires_i ~reps_above_top:count
                         ~reps_above_below:(count + m_count) ~top_pair:j
                  then
                    raise
                      (Found
                         {
                           boundary_pair = j;
                           prefix_splits =
                             Front.splits front (Front.state front src k);
                           meet_lo = i;
                           meet_hi = c;
                           reps_above = count;
                           reps_total = count + m_count;
                         })
                end
              done
            end
          end
        done
      done;
      None
    with Found w -> Some w
  in
  Ir_obs.add stat_witness_probes !probes;
  if !power_rejects > 0 then Ir_obs.add stat_power_wrejects !power_rejects;
  result

let feasible ?gf tables c = Option.is_some (feasible_witness ?gf tables c)

let outcome_of_boundary problem ~assignable ~exact c =
  Outcome.v ~exact
    ~rank_wires:(P.wires_before problem c)
    ~total_wires:(P.total_wires problem)
    ~assignable ~boundary_bunch:c ()

(* Monotonicity of [feasible] in the boundary c — why the binary search
   below is exact.

   Claim: if the top c bunches can all meet their targets in some complete
   assignment (c > 0), so can the top c - 1.

   Take a witness for c: prefix splits on pairs [0..j), meeting interval
   [i, c) on the boundary pair j (repeater area a, count r on it), and a
   greedy-fill certificate (Definition 3 / Lemma 1) packing bunches
   [c..n) on pairs [j..m) below it.  Shrink the meeting interval to
   [i, c-1): bunch c-1 gives up its repeaters, so repeater area and count
   only decrease — the budget constraint stays satisfied, and the via
   blockage repeaters charge on every pair below pair j only shrinks.
   Bunch c-1 then joins the capacity-only suffix: the area it occupied on
   pair j is exactly freed, so the packing that places bunch c-1 back on
   pair j in its old position and keeps every other suffix wire where the
   certificate for c put it is feasible — every pair's routing area is
   unchanged and its blockage is no larger (wires above each pair are the
   same wires; repeaters above are fewer).  Greedy_fill packs bottom-up
   shortest-first, which Lemma 1 shows dominates any particular feasible
   packing, so [GF.fits] accepts the suffix from c-1.  Hence the witness
   survives with boundary c-1, and {exists witness for c} is a downward-
   closed property of c: binary search over it is exact.  (The
   [~exhaustive] scan below and the randomized property test in
   [test_core.ml] cross-check this equivalence.) *)

(* Nominal probe cost of a cold (hint-less, fan-less) search: the first
   probe at [n] plus one bisection probe per halving of [0, n].  The real
   cold path can differ by one probe depending on which half each odd
   split descends into; this deterministic figure is the baseline the
   [hint_saved_probes] counter is measured against. *)
let cold_probe_cost n =
  let steps = ref 1 and w = ref n in
  while !w > 1 do
    incr steps;
    w := !w - (!w / 2)
  done;
  !steps

let search_tables ?(exhaustive = false) ?memo ?hint ?(probe_fan = 1) ?scratch
    tables =
  Ir_obs.time span_search @@ fun () ->
  with_scratch ?scratch @@ fun s ->
  let gf = s.gf in
  let problem = tables.problem in
  let n = tables.n in
  let exact = tables.truncations = 0 && tables.approx_drops = 0 in
  let probes = ref 0 in
  (* Pruned tables carry a pre-certified floor: boundaries at or below
     it are known achievable (witness included), and states that could
     only have certified those boundaries may be gone — so the search
     starts from the floor and never probes at or below it.  Unpruned
     tables have floor -1 and take the historical c = 0 probe. *)
  let start =
    match tables.floor_witness with
    | Some w when tables.incumbent_floor >= 0 ->
        Some (tables.incumbent_floor, w)
    | _ -> (
        match feasible_witness ?memo ~gf tables 0 with
        | None -> None
        | Some w0 -> Some (0, w0))
  in
  let result =
    match start with
    | None ->
        ( Outcome.unassignable ~exact ~total_wires:(P.total_wires problem) (),
          None )
    | Some (c0, w0) ->
        let best = ref c0 and best_w = ref w0 in
        let try_c c =
          incr probes;
          match feasible_witness ?memo ~gf tables c with
          | Some w ->
              best := c;
              best_w := w;
              true
          | None -> false
        in
        (* Invariant threaded through every strategy below: [!best] is a
           boundary that produced a witness (feasible unconditionally),
           [hi] when < n + 1 was probed infeasible.  Monotonicity (proof
           above) makes the final [best] also maximal.  [lo] starts at
           the certified floor [c0] (0 for unpruned tables), and no
           strategy probes at or below it. *)
        let lo = ref c0 and hi = ref (n + 1) in
        let bisect () =
          while !hi - !lo > 1 do
            let mid = !lo + ((!hi - !lo) / 2) in
            if try_c mid then lo := mid else hi := mid
          done
        in
        (* Speculative multi-section rounds for an otherwise idle pool:
           split [lo, hi] at [fan] interior points and evaluate them all
           concurrently — every probe runs to completion (no cancellation),
           so probe and greedy-fill counter totals depend only on the
           configured fan, never on scheduling.  The round keeps the
           largest feasible probe and smallest infeasible one; with [fan]
           probes the interval shrinks by a factor [fan + 1] per round, so
           wall time drops to log_(fan+1) while total probe work grows —
           a trade only worth making when the extra domains are idle
           (Cross_node's starved-pool searches).  Probes bypass the memo:
           a [Suffix_fit.t] is single-domain state. *)
        let fan_rounds () =
          while !hi - !lo > 1 do
            let width = !hi - !lo in
            let k = min probe_fan (width - 1) in
            let pts = Array.make k 0 in
            let prev = ref !lo in
            for t = 0 to k - 1 do
              let pos = !lo + (width * (t + 1) / (k + 1)) in
              let pos = max (!prev + 1) pos in
              pts.(t) <- pos;
              prev := pos
            done;
            Ir_obs.incr stat_fan_rounds;
            probes := !probes + k;
            let answers =
              if k = 1 then
                [| (pts.(0), feasible_witness ~gf tables pts.(0)) |]
              else begin
                (* Plain [Domain.spawn] per probe rather than the Ir_exec
                   pool: a search may itself be running inside a pool
                   worker, and a nested pool run would clobber
                   [last_pool_stats] for the driver that launched us.
                   Spawned probes allocate fresh — their domain (and any
                   arena in it) dies at the join, so there is nothing to
                   reuse; only the caller-domain probe gets the arena. *)
                let spawned =
                  Array.init (k - 1) (fun t ->
                      let c = pts.(t + 1) in
                      Domain.spawn (fun () -> (c, feasible_witness tables c)))
                in
                let first = (pts.(0), feasible_witness ~gf tables pts.(0)) in
                Array.append [| first |] (Array.map Domain.join spawned)
              end
            in
            (* Deterministic sequential fold of the round's verdicts. *)
            Array.iter
              (fun (c, w) ->
                match w with
                | Some w when c > !best ->
                    best := c;
                    best_w := w;
                    lo := c
                | Some _ -> ()
                | None -> if c < !hi then hi := c)
              answers
          done
        in
        if exhaustive then begin
          let c = ref n in
          while !c > c0 && not (try_c !c) do
            decr c
          done
        end
        else begin
          (match hint with
          | Some h when n > c0 ->
              (* Warm start: bracket the boundary by galloping away from
                 the hint.  Any hint value is sound — the bracket is
                 established by probes, the hint only chooses where they
                 land — so stale or out-of-range hints cost extra probes,
                 never a wrong rank.  Clamped above the floor: probes
                 at or below [c0] are answered by its certificate. *)
              Ir_obs.incr stat_hinted;
              let h = min (max h (c0 + 1)) n in
              if try_c h then begin
                lo := h;
                let step = ref 1 in
                (try
                   while !lo < n do
                     let c = min n (!lo + !step) in
                     if try_c c then lo := c else begin
                       hi := c;
                       raise Break
                     end;
                     step := 2 * !step
                   done
                 with Break -> ())
              end
              else begin
                hi := h;
                let step = ref 1 in
                (try
                   while !hi > c0 + 1 do
                     let c = max (c0 + 1) (!hi - !step) in
                     if try_c c then begin
                       lo := c;
                       raise Break
                     end
                     else hi := c;
                     step := 2 * !step
                   done
                 with Break -> ())
              end
          | _ ->
              (* Cold: probe [n] first (the historical path — also what
                 the [cold_probe_cost] baseline models).  A floor of [n]
                 needs no probe at all. *)
              if c0 < n then if try_c n then lo := n else hi := n);
          if !hi - !lo > 1 then
            if probe_fan > 1 then fan_rounds () else bisect ();
          if hint <> None then
            Ir_obs.add stat_hint_saved (max 0 (cold_probe_cost n - !probes))
        end;
        (outcome_of_boundary problem ~assignable:true ~exact !best,
         Some !best_w)
  in
  Ir_obs.add stat_search_probes !probes;
  result

let default_widen_cap = 128

(* If the Pareto front overflowed, the tables may have lost the state
   behind the true optimum — silently returning a lower bound while
   claiming exactness was the bug this retry fixes.  Double [max_pareto]
   while the overflow looks eliminable: the first retry is always taken,
   and each further doubling requires the previous one to have at least
   halved the truncation count.  Small overflows (a front of 9-20 states
   at width 8) converge to zero in one or two doublings; a genuinely
   exponential front (millions of truncations that barely move when the
   width doubles) would otherwise multiply the build cost by the whole
   ladder and still come back truncated, so it is abandoned after one
   probe and reported as a lower bound ([exact = false]) — callers can
   pass a larger [max_pareto] explicitly.  Build cost grows superlinearly
   with the width, which is why the ladder is gated on convergence rather
   than run to [widen_cap] unconditionally. *)
(* The ladder is split into [widen_attempt] (build one rung, then decide)
   and [widen_continue] (the decision) so a caller that already built the
   first rung elsewhere — the grid wavefront builds every plane's first
   attempt in one batched pass — can resume the ladder from its tables and
   retry through the {e same} code: [build_widened problem] and
   [widen_tables (build_tables problem)] take identical rung sequences. *)
let rec widen_attempt ~widen_on_overflow ~widen_cap ?epsilon ?prune ?scratch
    problem mp prev_truncations =
  (* Each widened retry recycles the abandoned attempt's store through
     the scratch — the doubled width usually forces a fresh allocation
     anyway, but the arena capacity carries over.  A retry keeps the
     prune context: the incumbent only grows, so a later rung prunes at
     least as hard (and stays sound for the same reason the first rung
     was). *)
  let tables = build_tables ~max_pareto:mp ?epsilon ?prune ?scratch problem in
  widen_continue ~widen_on_overflow ~widen_cap ?epsilon ?prune ?scratch
    tables prev_truncations

and widen_continue ~widen_on_overflow ~widen_cap ?epsilon ?prune ?scratch
    tables prev_truncations =
  let t = tables.truncations in
  let mp = tables.max_pareto in
  let converging =
    match prev_truncations with None -> true | Some p -> 2 * t <= p
  in
  (* Gated on truncations only: epsilon drops are deliberate lossiness —
     a wider front would not bring those states back, so they must never
     drive the ladder. *)
  if t > 0 && widen_on_overflow && mp < widen_cap && converging then begin
    Ir_obs.incr stat_widen_retries;
    widen_attempt ~widen_on_overflow ~widen_cap ?epsilon ?prune ?scratch
      tables.problem
      (min widen_cap (2 * mp))
      (Some t)
  end
  else tables

let build_widened ?(max_pareto = 8) ?(widen_on_overflow = true)
    ?(widen_cap = default_widen_cap) ?epsilon ?prune ?scratch problem =
  widen_attempt ~widen_on_overflow ~widen_cap ?epsilon ?prune ?scratch
    problem (max 1 max_pareto) None

let widen_tables ?(widen_on_overflow = true) ?(widen_cap = default_widen_cap)
    ?epsilon ?prune ?scratch tables =
  widen_continue ~widen_on_overflow ~widen_cap ?epsilon ?prune ?scratch
    tables None

let unfittable ?gf problem =
  (* Definition 3: if the WLD does not even fit ignoring delay, the rank
     is 0 and the DP tables are not worth building.  Capacity-only, so
     the verdict is independent of the repeater budget. *)
  not (GF.fits ?scratch:gf problem (GF.context ~from_bunch:0 ~top_pair:0 ()))

let search ?max_pareto ?widen_on_overflow ?widen_cap ?exhaustive ?hint
    ?probe_fan ?epsilon ?(prune = false) ?scratch problem =
  with_scratch ?scratch @@ fun s ->
  if unfittable ~gf:s.gf problem then
    (Outcome.unassignable ~total_wires:(P.total_wires problem) (), None)
  else
    let pr = if prune then Some (prune_for ~gf:s.gf problem) else None in
    search_tables ?exhaustive ?hint ?probe_fan ~scratch:s
      (build_widened ?max_pareto ?widen_on_overflow ?widen_cap ?epsilon
         ?prune:pr ~scratch:s problem)

let compute ?max_pareto ?widen_on_overflow ?widen_cap ?exhaustive ?hint
    ?probe_fan ?epsilon ?prune ?scratch problem =
  fst
    (search ?max_pareto ?widen_on_overflow ?widen_cap ?exhaustive ?hint
       ?probe_fan ?epsilon ?prune ?scratch problem)

let compute_with_witness ?max_pareto ?widen_on_overflow problem =
  search ?max_pareto ?widen_on_overflow problem

(* One build, many budgets.  The repeater budget prunes states during
   construction, so tables built at the largest requested fraction hold
   every state any smaller budget admits: a budget prunes only states
   whose (monotone non-decreasing along a chain) prefix area exceeds it,
   and a state within a small budget can only be displaced from a wider
   build's front by a dominator — lower area and count — which is itself
   within that budget and passes every query check the displaced state
   would have (budget, blockage and the greedy-fill suffix are all
   monotone in (area, count)).  Hence, as long as the shared build
   truncates nothing, querying it with the budget rebound per fraction
   returns exactly the per-fraction builds' outcomes.  If it does
   truncate, the displacement argument no longer holds and we fall back
   to independent per-fraction computes (paying the historical cost, but
   never a wrong answer). *)
(* The post-build tail of [search_budgets], shared with the grid kernel
   ([search_budgets_tables] below): answer every fraction from [shared]
   when it is truncation-free, else fall back to per-fraction computes.
   [?memo] lets the grid thread one family-wide suffix-fit memo through
   every plane (sound because [Greedy_fill.fits] verdicts depend only on
   capacity-side data, which the whole K x M x C x R family shares);
   [?hint] seeds the first search (hints are probe-count optimizations,
   never answer-changing — property-tested). *)
let answer_budgets ~s ?max_pareto ?widen_on_overflow ?widen_cap ?memo ?hint
    ~shared problem fractions =
  if shared.truncations = 0 then begin
    (* The greedy-fill verdict never reads the budget, so one
       suffix-fit memo serves every fraction — the per-boundary probe
       contexts repeat exactly across budgets and answer as cache
       hits.  The boundary is monotone in the budget too, so each
       fraction's result (fractions ascend in the Table-4 R column)
       warm-starts the next search. *)
    let memo =
      match memo with
      | Some m -> m
      | None -> Ir_assign.Suffix_fit.create ~scratch:s.gf shared.problem
    in
    let hint = ref hint in
    List.map
      (fun f ->
        let p = P.with_repeater_fraction problem f in
        let outcome =
          fst
            (search_tables ~memo ?hint:!hint ~scratch:s
               { shared with problem = p })
        in
        if outcome.Outcome.assignable then
          hint := Some outcome.Outcome.boundary_bunch;
        outcome)
      fractions
  end
  else
    (* [shared] is dead from here on (its front may be recycled by the
       per-fraction builds below — they run through the same scratch). *)
    List.map
      (fun f ->
        compute ?max_pareto ?widen_on_overflow ?widen_cap ~scratch:s
          (P.with_repeater_fraction problem f))
      fractions

let search_budgets ?max_pareto ?widen_on_overflow ?widen_cap ?epsilon
    ?(prune = false) ?scratch problem fractions =
  with_scratch ?scratch @@ fun s ->
  match fractions with
  | [] -> []
  | _ when unfittable ~gf:s.gf problem ->
      List.map
        (fun _ ->
          Outcome.unassignable ~total_wires:(P.total_wires problem) ())
        fractions
  | _ ->
      let f_max = List.fold_left Float.max neg_infinity fractions in
      let build_problem = P.with_repeater_fraction problem f_max in
      (* The shared build is pruned against the {e smallest} fraction's
         budget on the achievable side (the floor must hold for every
         fraction it answers — budget monotonicity lifts it upward) and
         the largest on the optimistic side (the build's own budget),
         which is what keeps the displacement argument above intact per
         fraction. *)
      let pr =
        if prune then
          let f_min = List.fold_left Float.min infinity fractions in
          Some
            (prune_for ~gf:s.gf
               ~budget_min:(P.budget (P.with_repeater_fraction problem f_min))
               build_problem)
        else None
      in
      let shared =
        build_widened ?max_pareto ?widen_on_overflow ?widen_cap ?epsilon
          ?prune:pr ~scratch:s build_problem
      in
      answer_budgets ~s ?max_pareto ?widen_on_overflow ?widen_cap ~shared
        problem fractions

(* [search_budgets] with the shared build performed externally: the grid
   wavefront builds every plane's tables in one batched pass and hands
   each plane here.  [shared] must be phase-A tables of
   [with_repeater_fraction problem f_max] (f_max = max of [fractions]) at
   the caller's widening policy — {!widen_tables} continues the ladder
   from a plain {!build_tables} first rung.  Same answers as
   [search_budgets] by shared code. *)
let search_budgets_tables ?max_pareto ?widen_on_overflow ?widen_cap ?scratch
    ?memo ?hint ~shared problem fractions =
  with_scratch ?scratch @@ fun s ->
  match fractions with
  | [] -> []
  | _ when unfittable ~gf:s.gf problem ->
      List.map
        (fun _ ->
          Outcome.unassignable ~total_wires:(P.total_wires problem) ())
        fractions
  | _ ->
      answer_budgets ~s ?max_pareto ?widen_on_overflow ?widen_cap ?memo ?hint
        ~shared problem fractions

(* [search] with the phase-A build performed externally (the batch
   wavefront): same unfittable screen, ladder continuation and search as
   [search ?hint problem], so outcomes and witnesses coincide by shared
   code.  The heterogeneous-batch analogue of [search_budgets_tables]. *)
let search_with_tables ?widen_on_overflow ?widen_cap ?hint ?probe_fan
    ?scratch tables =
  with_scratch ?scratch @@ fun s ->
  if unfittable ~gf:s.gf tables.problem then
    (Outcome.unassignable ~total_wires:(P.total_wires tables.problem) (), None)
  else
    search_tables ?hint ?probe_fan ~scratch:s
      (widen_tables ?widen_on_overflow ?widen_cap tables)

let build_tables_widened = build_widened

(* The serving layer's warm path: one pool entry's tables (built at the
   full repeater budget) answer any smaller fraction of the same family.
   Soundness is the [search_budgets] displacement argument above — the
   caller must check [table_truncations t = 0] before relying on
   exactness (the server falls back to a cold compute otherwise). *)
let search_tables_rebudget ?memo ?hint ?probe_fan ~fraction tables =
  search_tables ?memo ?hint ?probe_fan
    { tables with problem = P.with_repeater_fraction tables.problem fraction }

let feasible_boundary ?(max_pareto = 8) problem c =
  with_domain_scratch @@ fun s ->
  if unfittable ~gf:s.gf problem then false
  else feasible ~gf:s.gf (build_tables ~max_pareto ~scratch:s problem) c

(* ---- rank-vs-power Pareto sweep ---------------------------------------- *)

(* Repeater power a witness actually burns: the meeting intervals of the
   prefix pairs (top-down) plus the boundary pair's, each an O(1)
   [P.meeting_power] lookup.  Summed in the DP's own accumulation order
   (top-down, empty intervals contributing nothing), so the figure is
   byte-identical to the power coordinate the power-mode build carried
   for that state — which is what lets tests assert the sweep's reported
   powers against the model without a tolerance. *)
let witness_power problem (w : witness) =
  let total = ref 0.0 in
  let lo = ref 0 in
  List.iteri
    (fun j e ->
      if e > !lo then
        total := !total +. P.meeting_power problem ~pair:j ~lo:!lo ~hi:e;
      lo := e)
    w.prefix_splits;
  if w.meet_hi > w.meet_lo then
    total :=
      !total
      +. P.meeting_power problem ~pair:w.boundary_pair ~lo:w.meet_lo
           ~hi:w.meet_hi;
  !total

type power_point = {
  pp_budget : float;  (** the power budget this point was evaluated at *)
  pp_outcome : Outcome.t;
  pp_power : float;
      (** repeater power (watts) of the returned witness; 0 when
          unassignable *)
}

(* One power-mode build, many power budgets — the displacement argument
   of [search_budgets], componentwise.  The power budget, like the area
   budget, enters no phase-A table: a power-mode build at the largest
   finite budget [b_max] screens states by [power <= b_max], and a state
   admissible at a smaller budget can only be displaced from its front
   by a 3-way dominator — itself within that budget and passing every
   query check the displaced state would have.  So, truncation-free,
   tables built at [b_max] with the budget rebound per point answer each
   finite budget exactly.  Infinite budgets are NOT answerable from
   those tables (states over [b_max] power were screened out of them);
   they take the historical area-only path instead, which doubles as the
   soundness anchor: [budget = infinity] runs code untouched by this
   module's power mode. *)
type power_prep = {
  pw_problem : P.t;
  pw_shared : tables option;
      (* power-mode shared build at the largest finite budget; None when
         no finite budget was requested or the instance does not fit *)
  pw_unfit : bool;
  pw_max_pareto : int option;
  pw_widen_on_overflow : bool option;
  pw_widen_cap : int option;
}

let power_prepare ?max_pareto ?widen_on_overflow ?widen_cap ?scratch problem
    budgets =
  with_scratch ?scratch @@ fun s ->
  List.iter
    (fun b ->
      if not (b > 0.0) then
        invalid_arg "Rank_dp.power_prepare: power budget <= 0")
    budgets;
  Ir_obs.add stat_power_points (List.length budgets);
  let unfit = unfittable ~gf:s.gf problem in
  let finite = List.filter (fun b -> b < infinity) budgets in
  let shared =
    if unfit || finite = [] then None
    else
      let b_max = List.fold_left Float.max neg_infinity finite in
      (* Built without a scratch deliberately: the shared tables outlive
         this call and are read by every [power_answer] — possibly from
         several domains at once ([Rank_grid.compute_pareto_power]), and
         concurrently with fallback computes that build transient tables
         through whatever scratch is around.  A scratch-built (transient)
         store would be recycled out from under them. *)
      Some
        (build_widened ?max_pareto ?widen_on_overflow ?widen_cap
           (P.with_power_budget problem b_max))
  in
  {
    pw_problem = problem;
    pw_shared = shared;
    pw_unfit = unfit;
    pw_max_pareto = max_pareto;
    pw_widen_on_overflow = widen_on_overflow;
    pw_widen_cap = widen_cap;
  }

let power_answer ?memo ?hint ?scratch prep budget =
  let point outcome w p =
    {
      pp_budget = budget;
      pp_outcome = outcome;
      pp_power = (match w with Some w -> witness_power p w | None -> 0.0);
    }
  in
  if prep.pw_unfit then
    {
      pp_budget = budget;
      pp_outcome =
        Outcome.unassignable ~total_wires:(P.total_wires prep.pw_problem) ();
      pp_power = 0.0;
    }
  else
    let shared_live =
      match prep.pw_shared with
      | Some sh when sh.truncations = 0 -> Some sh
      | _ -> None
    in
    let p = P.with_power_budget prep.pw_problem budget in
    match shared_live with
    | Some sh when budget < infinity ->
        let outcome, w =
          search_tables ?memo ?hint ?scratch { sh with problem = p }
        in
        point outcome w p
    | _ ->
        (* Independent compute: infinite budgets (the historical
           area-only path — the byte-identity anchor) and the
           truncated-shared fallback.  Safe against the shared tables
           even mid-sweep: they were built scratch-free, so this build's
           transient tables recycle only the scratch's own store. *)
        let outcome, w =
          search ?max_pareto:prep.pw_max_pareto
            ?widen_on_overflow:prep.pw_widen_on_overflow
            ?widen_cap:prep.pw_widen_cap ?hint ?scratch p
        in
        point outcome w p

let compute_pareto_power ?max_pareto ?widen_on_overflow ?widen_cap ?scratch
    problem budgets =
  with_scratch ?scratch @@ fun s ->
  match budgets with
  | [] -> []
  | _ ->
      let prep =
        power_prepare ?max_pareto ?widen_on_overflow ?widen_cap ~scratch:s
          problem budgets
      in
      (* The memo serves every budget of the family: greedy-fill verdicts
         are capacity-side only, untouched by power-budget rebinds.  Each
         point's boundary warm-starts the next search — budgets usually
         ascend, and any hint is sound regardless. *)
      let memo =
        match prep.pw_shared with
        | Some sh when sh.truncations = 0 ->
            Some (Ir_assign.Suffix_fit.create ~scratch:s.gf sh.problem)
        | _ -> None
      in
      let hint = ref None in
      List.map
        (fun budget ->
          let pt = power_answer ?memo ?hint:!hint ~scratch:s prep budget in
          if pt.pp_outcome.Outcome.assignable then
            hint := Some pt.pp_outcome.Outcome.boundary_bunch;
          pt)
        budgets
