module P = Ir_assign.Problem
module GF = Ir_assign.Greedy_fill

(* Observability instruments (see Ir_obs).  Every counter here is a
   deterministic quantity: its total depends only on the instances
   processed, never on domain scheduling — the cross-domain determinism
   tests compare these between jobs=1 and jobs=N runs.  Counters on the
   hot paths are accumulated in local refs and flushed once per call, so
   the inner loops never touch an atomic. *)
let stat_states = Ir_obs.counter "rank_dp/states_expanded"
let stat_inserts = Ir_obs.counter "rank_dp/pareto_inserts"
let stat_dominated = Ir_obs.counter "rank_dp/pareto_dominated"
let stat_truncations = Ir_obs.counter "rank_dp/pareto_truncations"
let stat_witness_probes = Ir_obs.counter "rank_dp/witness_probes"
let stat_search_probes = Ir_obs.counter "rank_dp/search_probes"
let stat_widen_retries = Ir_obs.counter "rank_dp/widen_retries"
let span_build = Ir_obs.span "rank_dp/build_tables"
let span_search = Ir_obs.span "rank_dp/search"

(* A phase-A state: repeater area and count consumed so far, plus the
   interval ends chosen for the pairs processed so far (most recent
   first) so a witness assignment can be reconstructed.  Dominance is on
   (area, count) only. *)
type elt = { area : float; count : int; splits : int list }

type witness = {
  boundary_pair : int;  (** pair holding the last meeting bunches *)
  prefix_splits : int list;
      (** interval end per pair above the boundary, top-down *)
  meet_lo : int;  (** meeting interval on the boundary pair *)
  meet_hi : int;
  reps_above : int;  (** repeaters in pairs above the boundary *)
  reps_total : int;  (** including the boundary pair's *)
}

(* Per-build tallies, flushed to the Ir_obs counters once per build. *)
type build_stats = {
  mutable inserts : int;
  mutable dominated : int;
  mutable truncations : int;
  mutable states : int;
}

let dominates a b = a.area <= b.area && a.count <= b.count

let insert ~max_pareto ~stats set e =
  stats.inserts <- stats.inserts + 1;
  if List.exists (fun x -> dominates x e) set then begin
    stats.dominated <- stats.dominated + 1;
    set
  end
  else
    let survivors = List.filter (fun x -> not (dominates e x)) set in
    let merged =
      List.sort (fun a b -> Float.compare a.area b.area) (e :: survivors)
    in
    let len = List.length merged in
    if len <= max_pareto then merged
    else begin
      (* Dropping a non-dominated state: the DP may now under-report the
         rank.  Count it — [truncations = 0] is what licenses the
         [exact] claim on the outcome. *)
      stats.truncations <- stats.truncations + (len - max_pareto);
      (* Keep the smallest-area elements plus the min-count one (the last:
         area-ascending implies count-descending in a Pareto set). *)
      let arr = Array.of_list merged in
      Array.to_list (Array.sub arr 0 (max_pareto - 1)) @ [ arr.(len - 1) ]
    end

type tables = {
  problem : P.t;
  dp : elt list array array;
      (* dp.(j).(i): pairs [0..j) hold bunches [0..i), all meeting *)
  n : int;
  m : int;
  max_pareto : int;
  truncations : int;
      (* non-dominated states dropped past max_pareto during the build;
         0 means the phase-A front is complete and the search is exact *)
}

let build_tables ?(max_pareto = 8) problem =
  Ir_obs.time span_build @@ fun () ->
  let stats = { inserts = 0; dominated = 0; truncations = 0; states = 0 } in
  let n = P.n_bunches problem in
  let m = P.n_pairs problem in
  let cap = P.capacity problem in
  let budget = P.budget problem in
  let dp = Array.make_matrix (m + 1) (n + 1) [] in
  dp.(0).(0) <- [ { area = 0.0; count = 0; splits = [] } ];
  for j = 0 to m - 1 do
    for i = 0 to n do
      match dp.(j).(i) with
      | [] -> ()
      | elts ->
          stats.states <- stats.states + List.length elts;
          let wires_above = P.wires_before problem i in
          let min_area =
            List.fold_left (fun acc e -> Float.min acc e.area) infinity elts
          in
          let exception Break in
          (try
             for i2 = i to n do
               if i2 = i then
                 (* Empty interval: pair j left unused. *)
                 List.iter
                   (fun e ->
                     dp.(j + 1).(i) <-
                       insert ~max_pareto ~stats dp.(j + 1).(i)
                         { e with splits = i :: e.splits })
                   elts
               else begin
                 match P.meeting_cost problem ~pair:j ~lo:i ~hi:i2 with
                 | None -> raise Break
                 | Some (d_area, d_count) ->
                     if min_area +. d_area > budget then raise Break;
                     let routing =
                       P.interval_area problem ~pair:j ~lo:i ~hi:i2
                     in
                     if routing > cap then raise Break;
                     List.iter
                       (fun e ->
                         let blocked =
                           P.blocked problem ~pair:j ~wires_above
                             ~reps_above:e.count
                         in
                         if e.area +. d_area <= budget
                            && routing +. blocked <= cap then
                           dp.(j + 1).(i2) <-
                             insert ~max_pareto ~stats dp.(j + 1).(i2)
                               {
                                 area = e.area +. d_area;
                                 count = e.count + d_count;
                                 splits = i2 :: e.splits;
                               })
                       elts
               end
             done
           with Break -> ())
    done
  done;
  Ir_obs.add stat_states stats.states;
  Ir_obs.add stat_inserts stats.inserts;
  Ir_obs.add stat_dominated stats.dominated;
  Ir_obs.add stat_truncations stats.truncations;
  { problem; dp; n; m; max_pareto; truncations = stats.truncations }

let table_truncations tables = tables.truncations

(* Can the top c bunches all meet their targets in some complete
   assignment?  Try every boundary pair j and every phase-A state
   dp.(j).(i): bunches [i..c) meet on pair j, the rest is capacity-only.
   Returns the witness state on success. *)
let feasible_witness tables c =
  let { problem; dp; n = _; m; _ } = tables in
  let cap = P.capacity problem in
  let budget = P.budget problem in
  let wires_c = P.wires_before problem c in
  let probes = ref 0 in
  let try_state j i e =
    incr probes;
    match P.meeting_cost problem ~pair:j ~lo:i ~hi:c with
    | None -> None
    | Some (m_area, m_count) ->
        if e.area +. m_area > budget then None
        else
          let used_j = P.interval_area problem ~pair:j ~lo:i ~hi:c in
          let wires_i = P.wires_before problem i in
          let blocked_j =
            P.blocked problem ~pair:j ~wires_above:wires_i
              ~reps_above:e.count
          in
          if used_j +. blocked_j > cap then None
          else if
            GF.fits problem
              (GF.context ~top_pair_used:used_j ~wires_above_top:wires_i
                 ~reps_above_top:e.count ~wires_above_below:wires_c
                 ~reps_above_below:(e.count + m_count) ~from_bunch:c
                 ~top_pair:j ())
          then
            Some
              {
                boundary_pair = j;
                prefix_splits = List.rev e.splits;
                meet_lo = i;
                meet_hi = c;
                reps_above = e.count;
                reps_total = e.count + m_count;
              }
          else None
  in
  let exception Found of witness in
  let result =
    try
      for j = 0 to m - 1 do
        for i = 0 to c do
          List.iter
            (fun e ->
              match try_state j i e with
              | Some w -> raise (Found w)
              | None -> ())
            dp.(j).(i)
        done
      done;
      None
    with Found w -> Some w
  in
  Ir_obs.add stat_witness_probes !probes;
  result

let feasible tables c = Option.is_some (feasible_witness tables c)

let outcome_of_boundary problem ~assignable ~exact c =
  Outcome.v ~exact
    ~rank_wires:(P.wires_before problem c)
    ~total_wires:(P.total_wires problem)
    ~assignable ~boundary_bunch:c ()

(* Monotonicity of [feasible] in the boundary c — why the binary search
   below is exact.

   Claim: if the top c bunches can all meet their targets in some complete
   assignment (c > 0), so can the top c - 1.

   Take a witness for c: prefix splits on pairs [0..j), meeting interval
   [i, c) on the boundary pair j (repeater area a, count r on it), and a
   greedy-fill certificate (Definition 3 / Lemma 1) packing bunches
   [c..n) on pairs [j..m) below it.  Shrink the meeting interval to
   [i, c-1): bunch c-1 gives up its repeaters, so repeater area and count
   only decrease — the budget constraint stays satisfied, and the via
   blockage repeaters charge on every pair below pair j only shrinks.
   Bunch c-1 then joins the capacity-only suffix: the area it occupied on
   pair j is exactly freed, so the packing that places bunch c-1 back on
   pair j in its old position and keeps every other suffix wire where the
   certificate for c put it is feasible — every pair's routing area is
   unchanged and its blockage is no larger (wires above each pair are the
   same wires; repeaters above are fewer).  Greedy_fill packs bottom-up
   shortest-first, which Lemma 1 shows dominates any particular feasible
   packing, so [GF.fits] accepts the suffix from c-1.  Hence the witness
   survives with boundary c-1, and {exists witness for c} is a downward-
   closed property of c: binary search over it is exact.  (The
   [~exhaustive] scan below and the randomized property test in
   [test_core.ml] cross-check this equivalence.) *)

let search_tables ?(exhaustive = false) tables =
  Ir_obs.time span_search @@ fun () ->
  let problem = tables.problem in
  let n = tables.n in
  let exact = tables.truncations = 0 in
  let probes = ref 0 in
  let result =
    match feasible_witness tables 0 with
    | None ->
        ( Outcome.unassignable ~exact ~total_wires:(P.total_wires problem) (),
          None )
    | Some w0 ->
        let best = ref 0 and best_w = ref w0 in
        let try_c c =
          incr probes;
          match feasible_witness tables c with
          | Some w ->
              best := c;
              best_w := w;
              true
          | None -> false
        in
        if exhaustive then begin
          let c = ref n in
          while !c > 0 && not (try_c !c) do
            decr c
          done
        end
        else if not (try_c n) then begin
          (* Invariant: feasible lo (recorded), not (feasible hi).  [best]
             only ever holds a boundary that produced a witness, so the
             reported rank is feasible unconditionally; monotonicity (proof
             above) is what makes it also maximal. *)
          let lo = ref 0 and hi = ref n in
          while !hi - !lo > 1 do
            let mid = !lo + ((!hi - !lo) / 2) in
            if try_c mid then lo := mid else hi := mid
          done
        end;
        (outcome_of_boundary problem ~assignable:true ~exact !best,
         Some !best_w)
  in
  Ir_obs.add stat_search_probes !probes;
  result

let default_widen_cap = 128

let search ?(max_pareto = 8) ?(widen_on_overflow = true)
    ?(widen_cap = default_widen_cap) ?exhaustive problem =
  (* Definition 3 first: if the WLD does not even fit ignoring delay,
     the rank is 0 and the DP tables are not worth building. *)
  if not (GF.fits problem (GF.context ~from_bunch:0 ~top_pair:0 ())) then
    (Outcome.unassignable ~total_wires:(P.total_wires problem) (), None)
  else
    (* If the Pareto front overflowed, the tables may have lost the state
       behind the true optimum — silently returning a lower bound while
       claiming exactness was the bug this retry fixes.  Double
       [max_pareto] while the overflow looks eliminable: the first retry
       is always taken, and each further doubling requires the previous
       one to have at least halved the truncation count.  Small overflows
       (a front of 9-20 states at width 8) converge to zero in one or two
       doublings; a genuinely exponential front (millions of truncations
       that barely move when the width doubles) would otherwise multiply
       the build cost by the whole ladder and still come back truncated,
       so it is abandoned after one probe and reported as a lower bound
       ([exact = false]) — callers can pass a larger [max_pareto]
       explicitly.  Build cost grows superlinearly with the width, which
       is why the ladder is gated on convergence rather than run to
       [widen_cap] unconditionally. *)
    let rec attempt mp prev_truncations =
      let tables = build_tables ~max_pareto:mp problem in
      let t = tables.truncations in
      let converging =
        match prev_truncations with None -> true | Some p -> 2 * t <= p
      in
      if t > 0 && widen_on_overflow && mp < widen_cap && converging
      then begin
        Ir_obs.incr stat_widen_retries;
        attempt (min widen_cap (2 * mp)) (Some t)
      end
      else search_tables ?exhaustive tables
    in
    attempt (max 1 max_pareto) None

let compute ?max_pareto ?widen_on_overflow ?widen_cap ?exhaustive problem =
  fst (search ?max_pareto ?widen_on_overflow ?widen_cap ?exhaustive problem)

let compute_with_witness ?max_pareto ?widen_on_overflow problem =
  search ?max_pareto ?widen_on_overflow problem

let feasible_boundary ?(max_pareto = 8) problem c =
  if not (GF.fits problem (GF.context ~from_bunch:0 ~top_pair:0 ())) then
    false
  else feasible (build_tables ~max_pareto problem) c
