(** Admissible bound oracle for the rank DP's pruning layer.

    A partial DP state at column [i] (bunches [[0..i)] meeting, prefix
    repeater area [a]) can only contribute a boundary [c > i] if the
    {e suffix} [[i..c)] can also be met within what is left of the
    repeater budget.  This module bounds that suffix cost from below by
    a fractional relaxation — every bunch independently takes the
    cheapest pair that can meet it ({!Ir_assign.Problem.min_rep_area_before}),
    dropping the contiguous-split constraint the DP enforces — which is
    admissible: any real assignment pays at least the relaxed cost, so

    {v a + lb(i -> c) > budget  =>  no completion of the state reaches c v}

    and a state whose optimistic boundary cannot beat the current
    {e incumbent} (best boundary already proven achievable, held in an
    {!Ir_exec.Incumbent} cell) is dropped before Front insertion and
    before any Greedy_fill / Suffix_fit oracle call.  The lower bound is
    additionally scaled by [1 -. 1e-9]: the relaxation prefix and the
    DP's own accumulation sum the same products in different orders, and
    the slack absorbs that rounding so "lower bound" remains literally
    true (soundness is re-proven empirically by the pruned ≡ unpruned
    QCheck differential).

    The matching {e achievable} side is {!pessimistic_probe}: a greedy
    DP chain whose largest packer-certified boundary seeds the
    incumbent, and
    {!suffix_reject}, the packer's own O(pairs) demand-vs-availability
    screen re-exposed so a certain-reject answers before the memo.

    All [bounds/*] counters declared here are deterministic (jobs=1 ≡
    jobs=N) because the incumbent is only published at sequential
    barriers — see {!Ir_exec.Incumbent}. *)

type t

val create : Ir_assign.Problem.t -> t
(** O(1): captures the problem's precomputed relaxation prefix.  Valid
    for every budget rebind of the same problem family (the prefix is
    budget-independent); the budget is passed per query below. *)

val suffix_cost : t -> from:int -> target:int -> float
(** Slack-scaled admissible lower bound on the repeater area needed to
    meet bunches [[from..target)]; [0.] when [target <= from],
    [+infinity] when the range contains a bunch no pair can meet. *)

val optimistic_boundary : t -> budget:float -> area:float -> from:int -> int
(** Largest [c] a column-[from] state with prefix area [area] could
    conceivably reach: [area +. suffix_cost ~from ~target:c <= budget].
    An upper bound on the state's attainable boundary (admissibility
    above); exposed for tests and diagnostics — the hot path uses
    {!fill_thresholds} instead. *)

val suffix_power : t -> from:int -> target:int -> float
(** The power-axis analog of {!suffix_cost}: slack-scaled admissible
    lower bound (watts) on the repeater power needed to meet bunches
    [[from..target)] ({!Ir_assign.Problem.min_rep_power_before}
    differenced).  The per-axis relaxations may pick different pairs per
    bunch — each bound is admissible on its own axis, which is all the
    componentwise pruning below needs. *)

val optimistic_boundary_pw :
  t ->
  budget:float ->
  power_budget:float ->
  area:float ->
  power:float ->
  from:int ->
  int
(** Componentwise {!optimistic_boundary}: largest [c] satisfying both
    the area and the power budget predicates.  Both relaxation prefixes
    are non-decreasing, so the conjunction is monotone in [c] and one
    binary search decides it exactly.  Equal to {!optimistic_boundary}
    whenever [power_budget] is [infinity]. *)

val fill_thresholds : t -> budget:float -> incumbent:int -> float array -> unit
(** [fill_thresholds t ~budget ~incumbent thresh] writes, for each
    column [i <= n], the largest prefix area a state there may carry
    while still able to beat [incumbent]:
    [thresh.(i) = budget -. suffix_cost ~from:i ~target:(incumbent+1)].
    The DP prunes a state iff [area > thresh.(i)] — one float compare
    per state.  [incumbent < 0] writes [+infinity] everywhere (pruning
    off), [incumbent >= n] writes [neg_infinity] (nothing can beat a
    full rank).  [thresh] must have length [>= n + 1]. *)

val fill_power_thresholds :
  t -> power_budget:float -> incumbent:int -> float array -> unit
(** {!fill_thresholds} on the power axis: [thresh.(i) = power_budget -.
    suffix_power ~from:i ~target:(incumbent+1)], with the same sentinel
    conventions for [incumbent < 0] / [incumbent >= n].  The power-mode
    DP prunes a state iff it fails {e either} axis's threshold. *)

val suffix_reject : t -> Ir_assign.Greedy_fill.context -> bool
(** {!Ir_assign.Greedy_fill.fast_reject} on the oracle's problem:
    [true] is a certain packer reject, answered in O(pairs) before the
    {!Ir_assign.Suffix_fit} memo or the packer runs.  Capacity-side
    only, so the verdict holds across budget rebinds of the family. *)

type probe = {
  pb_boundary : int;  (** certified achievable boundary; 0 = nothing *)
  pb_splits : int list;
      (** meeting ends of the pairs above [pb_pair], top-down — the
          [prefix_splits] of the certifying DP path *)
  pb_pair : int;  (** the boundary pair *)
  pb_meet_lo : int;  (** start of the boundary pair's meeting interval *)
  pb_reps_above : int;  (** repeater count strictly above [pb_pair] *)
  pb_reps_total : int;  (** ... plus the boundary pair's own meeting *)
}

val chain_probe :
  ?scratch:Ir_assign.Scratch.t ->
  ?power:float ->
  t ->
  budget:float ->
  from_pair:int ->
  from_col:int ->
  area:float ->
  count:int ->
  probe option
(** Greedy chain extension of an existing DP state: starting at column
    [from_col] with prefix repeater area [area] and count [count], pairs
    [from_pair ..] extend the met prefix maximally under the DP's own
    expansion screens, and the largest boundary along the chain whose
    suffix the packer certifies is returned (binary search; usually one
    packer call).  [pb_splits] covers the {e extension} pairs only — the
    caller prepends the start state's own split history.
    [pb_reps_above] includes the start state's [count].  [None] when no
    boundary at all could be certified (even the degenerate empty
    extension's suffix was refused, or no pairs remain).

    [power] (default [0.]) is the start state's accumulated repeater
    power; the chain's expansion screen then also enforces the problem's
    power budget componentwise (the suffix beyond the boundary carries
    zero repeaters, hence zero power, so the packer side needs no power
    check).  With the default infinite budget the chain is exactly the
    historical one. *)
val pessimistic_probe :
  ?scratch:Ir_assign.Scratch.t -> t -> budget:float -> probe
(** [chain_probe] from the root (column 0, empty prefix): the
    achievable boundary that seeds the incumbent before the build's
    first level.  Every prefix of the chain is a state the exact DP
    also builds, so the certified boundary is sound as an incumbent
    floor.  Returns [pb_boundary = 0] (known achievable without
    certification) when even the empty chain's suffix is refused. *)

(** {2 Counters}

    [bounds/states_pruned], [bounds/oracle_calls_saved],
    [bounds/incumbent_updates], [bounds/epsilon_drops],
    [bounds/probe_gated] — flushed by the DP once per build/search,
    zero-increment calls skipped. *)

val note_pruned : int -> unit
val note_saved : unit -> unit
val note_incumbent : unit -> unit
val note_epsilon : int -> unit

val note_gated : unit -> unit
(** One optimistic-bound pre-check just gated (skipped) a chain-probe
    packer call: the state's {!optimistic_boundary} (componentwise in
    power mode) could not beat the incumbent, so the probe was never
    run.  Deterministic like the rest — the gate reads the incumbent at
    a sequential barrier. *)
