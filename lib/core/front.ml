(* Flat struct-of-arrays Pareto-front store for the phase-A rank DP.

   One [t] holds every (pair, bunch) cell of a DP build: per cell a
   fixed-capacity slice of parallel Bigarray planes sorted area-ascending
   (hence, by the Pareto invariant, count-descending).  Dominance checks
   are a binary search over the slice, insertion is an in-place blit
   shift, and the interval splits previously carried by every state as an
   [int list] live in a compact parent-pointer arena instead — the hot
   loop allocates nothing per insert (the arena grows only for states
   that actually enter a front, by doubling).

   The planes are flat [Bigarray.Array1] buffers rather than OCaml
   arrays: unboxed float64 / native-int storage outside the OCaml heap,
   so a grid of resident builds (the whole-sweep wavefront kernel holds
   one store per parameter plane concurrently) costs the minor GC
   nothing to scan, and a recycled scratch plane is a plain memset.
   Access cost is the same as [float array] — [Array1] float64 reads are
   unboxed — and the blit shift is a [memmove], which tolerates the
   overlapping ranges the insertion shuffle produces.

   The semantics are exactly those of the historical list-based kernel
   (kept as the reference implementation in [test_core.ml]'s differential
   property test): same surviving states in the same order, same
   dominated/truncation tallies, including the width-overflow rule that
   keeps the [width - 1] smallest-area states plus the min-count last
   one. *)

type farray = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type iarray = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let falloc len : farray =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
  Bigarray.Array1.fill a 0.0;
  a

let ialloc ?(init = 0) len : iarray =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len in
  Bigarray.Array1.fill a init;
  a

(* memmove-backed blit between (possibly overlapping) ranges of the same
   plane — the insertion shuffle moves a cell's tail up by one slot. *)
let fblit (a : farray) ~src ~dst ~len =
  if len > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub a src len)
      (Bigarray.Array1.sub a dst len)

let iblit (a : iarray) ~src ~dst ~len =
  if len > 0 then
    Bigarray.Array1.blit
      (Bigarray.Array1.sub a src len)
      (Bigarray.Array1.sub a dst len)

type t = {
  width : int;  (* max states per cell (max_pareto) *)
  stride : int;  (* width + 1: one slack slot for the overflow shuffle *)
  cells : int;
  area : farray;  (* cells * stride, area-ascending per cell *)
  count : iarray;  (* cells * stride, count-descending per cell *)
  (* Third objective plane, allocated only for power-mode stores
     ([create ~powered:true]); length 0 otherwise so the 2-way paths pay
     nothing.  In a powered store areas still ascend per cell but counts
     no longer necessarily descend (3-way Pareto sets have no 2-D sorted
     structure), so the 2-way binary-search entry points ([covers],
     [insert]) must not be used — [seed_pw]/[insert_pw] below scan
     linearly, which is cheap at width <= a few dozen. *)
  power : farray;  (* cells * stride when powered, else empty *)
  powered : bool;
  state : iarray;  (* cells * stride, arena id per element *)
  len : iarray;  (* cells *)
  (* Parent-pointer arena: one (split, parent) pair per live state.  Ids
     are stable across growth.  Slots of evicted states are recycled
     through a free list threaded via [arena_parent]: the DP build only
     inserts into a cell {e before} that cell is expanded, so a state
     evicted from its front can never be the parent of a live state and
     its slot is immediately reusable.  (Callers must therefore never
     retain an id past its element's eviction — [Rank_dp] reads parent
     ids fresh from live elements at expansion time.)  Without recycling
     the arena grows with every insert that survives even briefly: the
     10M-gate N90 bench cell reached 70.8M slots (~GBs of int arrays,
     doubling copies and page-fault churn) against a live-state peak
     three orders of magnitude smaller. *)
  mutable arena_split : iarray;
  mutable arena_parent : iarray;
  mutable arena_len : int;  (* slots ever touched: free list + live *)
  mutable arena_free : int;  (* head of the free list, or [no_parent] *)
  mutable arena_live : int;
  mutable arena_hw : int;  (* high-water mark of [arena_live] *)
  (* Per-build tallies, flushed to Ir_obs by the caller. *)
  mutable inserts : int;
  mutable dominated : int;
  mutable truncations : int;
}

let no_parent = -1

let create_gen ~powered ~cells ~width =
  if cells <= 0 then invalid_arg "Front.create: cells must be positive";
  if width <= 0 then invalid_arg "Front.create: width must be positive";
  let stride = width + 1 in
  {
    width;
    stride;
    cells;
    area = falloc (cells * stride);
    count = ialloc (cells * stride);
    power = falloc (if powered then cells * stride else 0);
    powered;
    state = ialloc ~init:no_parent (cells * stride);
    len = ialloc cells;
    arena_split = ialloc 256;
    arena_parent = ialloc ~init:no_parent 256;
    arena_len = 0;
    arena_free = no_parent;
    arena_live = 0;
    arena_hw = 0;
    inserts = 0;
    dominated = 0;
    truncations = 0;
  }

let create ~cells ~width = create_gen ~powered:false ~cells ~width
let create_powered ~cells ~width = create_gen ~powered:true ~cells ~width

(* Rebind [old]'s backing planes to a fresh logical store when they are
   big enough, else allocate.  Only [len] (the per-cell live lengths) and
   the arena bookkeeping need resetting: [seed]/[insert] never read an
   element beyond a cell's length, so stale [area]/[count]/[state]
   contents are unreachable.  The arena planes keep their grown capacity
   — that is the point: a sweep reusing one scratch front stops paying
   the doubling climb per build.  The source becomes invalid (it shares
   every plane with the result).  Power-mode recycling additionally
   requires the old store's power plane to cover the new geometry — a
   2-way store recycled into a powered build falls back to a fresh
   allocation (and vice versa costs nothing: the powered plane is simply
   left unused). *)
let recycle_gen old ~powered ~cells ~width =
  if cells <= 0 then invalid_arg "Front.recycle: cells must be positive";
  if width <= 0 then invalid_arg "Front.recycle: width must be positive";
  let stride = width + 1 in
  if
    cells * stride > Bigarray.Array1.dim old.area
    || cells > Bigarray.Array1.dim old.len
    || (powered && cells * stride > Bigarray.Array1.dim old.power)
  then create_gen ~powered ~cells ~width
  else begin
    Bigarray.Array1.fill (Bigarray.Array1.sub old.len 0 cells) 0;
    {
      width;
      stride;
      cells;
      area = old.area;
      count = old.count;
      power = old.power;
      powered;
      state = old.state;
      len = old.len;
      arena_split = old.arena_split;
      arena_parent = old.arena_parent;
      arena_len = 0;
      arena_free = no_parent;
      arena_live = 0;
      arena_hw = 0;
      inserts = 0;
      dominated = 0;
      truncations = 0;
    }
  end

let recycle old ~cells ~width = recycle_gen old ~powered:false ~cells ~width

let recycle_powered old ~cells ~width =
  recycle_gen old ~powered:true ~cells ~width

let width t = t.width
let cells t = t.cells
let powered t = t.powered
let length t cell = t.len.{cell}
let area t cell k = t.area.{(cell * t.stride) + k}
let count t cell k = t.count.{(cell * t.stride) + k}
let power t cell k = t.power.{(cell * t.stride) + k}
let state t cell k = t.state.{(cell * t.stride) + k}

(* Area-ascending order makes the minimum the first element. *)
let min_area t cell = t.area.{cell * t.stride}
let stride t = t.stride

(* The backing planes are never reallocated (only the arena grows), so
   these aliases stay valid for the lifetime of [t]. *)
let raw_area t = t.area
let raw_count t = t.count
let raw_power t = t.power
let raw_len t = t.len
let inserts t = t.inserts
let dominated t = t.dominated
let truncations t = t.truncations
let arena_states t = t.arena_hw

let alloc_state t ~split ~parent =
  let id =
    if t.arena_free <> no_parent then begin
      let id = t.arena_free in
      t.arena_free <- t.arena_parent.{id};
      id
    end
    else begin
      let cap = Bigarray.Array1.dim t.arena_split in
      if t.arena_len = cap then begin
        let splits = ialloc (2 * cap) in
        let parents = ialloc ~init:no_parent (2 * cap) in
        Bigarray.Array1.blit t.arena_split (Bigarray.Array1.sub splits 0 cap);
        Bigarray.Array1.blit t.arena_parent
          (Bigarray.Array1.sub parents 0 cap);
        t.arena_split <- splits;
        t.arena_parent <- parents
      end;
      let id = t.arena_len in
      t.arena_len <- id + 1;
      id
    end
  in
  t.arena_split.{id} <- split;
  t.arena_parent.{id} <- parent;
  t.arena_live <- t.arena_live + 1;
  if t.arena_live > t.arena_hw then t.arena_hw <- t.arena_live;
  id

(* Return an evicted state's slot to the free list.  Sound because of
   the insert-before-expand discipline documented on the arena fields:
   nothing live can still point at [id]. *)
let release_state t id =
  t.arena_parent.{id} <- t.arena_free;
  t.arena_free <- id;
  t.arena_live <- t.arena_live - 1

let seed t cell ~area ~count =
  if t.len.{cell} <> 0 then invalid_arg "Front.seed: cell not empty";
  let base = cell * t.stride in
  t.area.{base} <- area;
  t.count.{base} <- count;
  if t.powered then t.power.{base} <- 0.0;
  t.state.{base} <- alloc_state t ~split:(-1) ~parent:no_parent;
  t.len.{cell} <- 1

let covers t cell ~area:a ~count:c =
  let base = cell * t.stride in
  let n = t.len.{cell} in
  (* Same search as [insert]'s dominance pre-check: first index whose
     area exceeds [a]; counts descend, so the last element at or below
     [a] carries the minimum count among them. *)
  let lo = ref 0 and hi = ref n in
  while !hi > !lo do
    let mid = (!lo + !hi) / 2 in
    if t.area.{base + mid} <= a then lo := mid + 1 else hi := mid
  done;
  let p = !lo in
  p > 0 && t.count.{base + p - 1} <= c

let insert t cell ~area:a ~count:c ~split ~parent =
  t.inserts <- t.inserts + 1;
  let base = cell * t.stride in
  let n = t.len.{cell} in
  (* Upper bound: first index whose area exceeds [a]. *)
  let lo = ref 0 and hi = ref n in
  while !hi > !lo do
    let mid = (!lo + !hi) / 2 in
    if t.area.{base + mid} <= a then lo := mid + 1 else hi := mid
  done;
  let p = !lo in
  (* Everything in [0, p) has area <= a; counts descend, so the last of
     them carries their minimum count — it dominates the candidate iff
     any element does. *)
  if p > 0 && t.count.{base + p - 1} <= c then
    t.dominated <- t.dominated + 1
  else begin
    (* Elements dominated by the candidate (area >= a and count >= c)
       form the contiguous run [s, q): area >= a is a suffix starting at
       p — or at p - 1 when that element ties on area, in which case the
       dominance check above guarantees its count exceeds c — and
       count >= c is a prefix. *)
    let s = if p > 0 && t.area.{base + p - 1} = a then p - 1 else p in
    let lo = ref s and hi = ref n in
    while !hi > !lo do
      let mid = (!lo + !hi) / 2 in
      if t.count.{base + mid} >= c then lo := mid + 1 else hi := mid
    done;
    let q = !lo in
    for d = s to q - 1 do
      release_state t t.state.{base + d}
    done;
    let tail = n - q in
    fblit t.area ~src:(base + q) ~dst:(base + s + 1) ~len:tail;
    iblit t.count ~src:(base + q) ~dst:(base + s + 1) ~len:tail;
    iblit t.state ~src:(base + q) ~dst:(base + s + 1) ~len:tail;
    t.area.{base + s} <- a;
    t.count.{base + s} <- c;
    t.state.{base + s} <- alloc_state t ~split ~parent;
    let n' = n - (q - s) + 1 in
    if n' > t.width then begin
      (* Dropping a non-dominated state: the DP may now under-report the
         rank.  Count it — [truncations = 0] is what licenses the [exact]
         claim on the outcome.  Keep the smallest-area states plus the
         min-count last one (the same rule as the list kernel). *)
      t.truncations <- t.truncations + (n' - t.width);
      for d = t.width - 1 to n' - 2 do
        release_state t t.state.{base + d}
      done;
      t.area.{base + t.width - 1} <- t.area.{base + n' - 1};
      t.count.{base + t.width - 1} <- t.count.{base + n' - 1};
      t.state.{base + t.width - 1} <- t.state.{base + n' - 1};
      t.len.{cell} <- t.width
    end
    else t.len.{cell} <- n'
  end

(* ---- 3-way (area, count, power) operations ----------------------------- *)

(* The 2-way fast paths above lean on the sorted-both-ways invariant; a
   3-objective Pareto set only keeps areas ascending, so dominance and
   eviction are linear scans.  Width is small (max_pareto, default 8), so
   the scans cost about what the binary searches do — the point of the
   separate entry points is that the 2-way code above stays byte-for-byte
   untouched for every power-blind build. *)

let covers_pw t cell ~area:a ~count:c ~power:w =
  let base = cell * t.stride in
  let n = t.len.{cell} in
  let k = ref 0 and hit = ref false in
  while (not !hit) && !k < n do
    if
      t.area.{base + !k} <= a
      && t.count.{base + !k} <= c
      && t.power.{base + !k} <= w
    then hit := true;
    incr k
  done;
  !hit

let insert_pw t cell ~area:a ~count:c ~power:w ~split ~parent =
  t.inserts <- t.inserts + 1;
  if covers_pw t cell ~area:a ~count:c ~power:w then
    t.dominated <- t.dominated + 1
  else begin
    let base = cell * t.stride in
    let n = t.len.{cell} in
    (* Compact the survivors (elements the candidate does not dominate)
       in place, preserving their area-ascending order. *)
    let keep = ref 0 in
    for k = 0 to n - 1 do
      if a <= t.area.{base + k} && c <= t.count.{base + k}
         && w <= t.power.{base + k}
      then release_state t t.state.{base + k}
      else begin
        if !keep <> k then begin
          t.area.{base + !keep} <- t.area.{base + k};
          t.count.{base + !keep} <- t.count.{base + k};
          t.power.{base + !keep} <- t.power.{base + k};
          t.state.{base + !keep} <- t.state.{base + k}
        end;
        incr keep
      end
    done;
    let n = !keep in
    (* Insert position: after every element of equal or smaller area
       (deterministic tie order, same convention as the 2-way path). *)
    let p = ref 0 in
    while !p < n && t.area.{base + !p} <= a do
      incr p
    done;
    let p = !p in
    let tail = n - p in
    fblit t.area ~src:(base + p) ~dst:(base + p + 1) ~len:tail;
    iblit t.count ~src:(base + p) ~dst:(base + p + 1) ~len:tail;
    fblit t.power ~src:(base + p) ~dst:(base + p + 1) ~len:tail;
    iblit t.state ~src:(base + p) ~dst:(base + p + 1) ~len:tail;
    t.area.{base + p} <- a;
    t.count.{base + p} <- c;
    t.power.{base + p} <- w;
    t.state.{base + p} <- alloc_state t ~split ~parent;
    let n' = n + 1 in
    if n' > t.width then begin
      (* Width overflow drops the largest-area state (possibly the
         candidate itself).  Any deterministic rule is sound here — the
         drop is counted in [truncations], which forfeits the exact
         claim and drives the widening ladder exactly as in 2-way
         mode. *)
      t.truncations <- t.truncations + 1;
      release_state t t.state.{base + n' - 1};
      t.len.{cell} <- t.width
    end
    else t.len.{cell} <- n'
  end

let splits t id =
  (* Seeds record split -1 (they carry no interval end); every other
     state contributes its split and continues into its parent chain,
     which ends either at a seed or at a root-parented insert. *)
  let rec walk id acc =
    if id = no_parent then acc
    else
      let split = t.arena_split.{id} in
      if split < 0 then acc else walk t.arena_parent.{id} (split :: acc)
  in
  walk id []
