module P = Ir_assign.Problem

(* For a fixed split (pair_of.(b) = pair of bunch b, non-decreasing) and
   meeting-prefix c, verify budget and per-pair capacity. *)
let feasible problem ~pair_of ~c =
  let n = P.n_bunches problem in
  let m = P.n_pairs problem in
  let budget = P.budget problem in
  let cap = P.capacity problem in
  let exception No in
  try
    (* Per-bunch repeater needs for the meeting prefix. *)
    let rep_count = Array.make m 0 in
    let total_area = ref 0.0 in
    for b = 0 to c - 1 do
      let j = pair_of.(b) in
      match P.eta_min problem ~pair:j ~bunch:b with
      | None -> raise No
      | Some eta ->
          let cnt = P.bunch_count problem b in
          let reps = eta * cnt in
          let pair = Ir_ia.Arch.pair (P.arch problem) j in
          rep_count.(j) <- rep_count.(j) + reps;
          total_area :=
            !total_area
            +. (float_of_int reps *. pair.Ir_ia.Layer_pair.repeater_area)
    done;
    if !total_area > budget then raise No;
    (* Capacity per pair with blockage from wires and repeaters above. *)
    let wires_above = ref 0 and reps_above = ref 0 in
    let routing = Array.make m 0.0 in
    for b = 0 to n - 1 do
      let j = pair_of.(b) in
      let pair = Ir_ia.Arch.pair (P.arch problem) j in
      routing.(j) <-
        routing.(j)
        +. (float_of_int (P.bunch_count problem b)
            *. P.bunch_length problem b
            *. Ir_ia.Layer_pair.pitch pair)
    done;
    for j = 0 to m - 1 do
      let blocked =
        P.blocked problem ~pair:j ~wires_above:!wires_above
          ~reps_above:!reps_above
      in
      if routing.(j) +. blocked > cap then raise No;
      (* accumulate wires and repeaters of this pair for pairs below *)
      for b = 0 to n - 1 do
        if pair_of.(b) = j then
          wires_above := !wires_above + P.bunch_count problem b
      done;
      reps_above := !reps_above + rep_count.(j)
    done;
    true
  with No -> false

let compute ?(max_bunches = 14) problem =
  let n = P.n_bunches problem in
  let m = P.n_pairs problem in
  if n > max_bunches then
    invalid_arg "Rank_brute.compute: instance too large for brute force";
  let best = ref (-1) in
  let assignable = ref false in
  let pair_of = Array.make n 0 in
  (* Enumerate non-decreasing pair assignments (contiguous splits). *)
  let rec enumerate b min_pair =
    if b = n then begin
      if feasible problem ~pair_of ~c:0 then assignable := true;
      let c = ref n in
      let continue_scan = ref true in
      while !continue_scan && !c > !best do
        if feasible problem ~pair_of ~c:!c then begin
          best := max !best !c;
          continue_scan := false
        end
        else decr c
      done
    end
    else
      for j = min_pair to m - 1 do
        pair_of.(b) <- j;
        enumerate (b + 1) j
      done
  in
  if n = 0 then
    Outcome.v ~rank_wires:0 ~total_wires:0 ~assignable:true ~boundary_bunch:0
      ()
  else begin
    enumerate 0 0;
    if not !assignable then
      Outcome.unassignable ~total_wires:(P.total_wires problem) ()
    else
      let c = max 0 !best in
      Outcome.v
        ~rank_wires:(P.wires_before problem c)
        ~total_wires:(P.total_wires problem)
        ~assignable:true ~boundary_bunch:c ()
  end
