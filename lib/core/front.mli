(** Flat struct-of-arrays Pareto-front store for the phase-A rank DP.

    A single value holds the fronts of {e every} DP cell of one
    {!Rank_dp.build_tables} run as pre-allocated parallel flat
    [Bigarray.Array1] planes: per cell, areas ascend strictly and
    repeater counts descend strictly (the Pareto invariant), so a
    dominance check is an O(log width) binary search and an insertion an
    in-place [memmove] shift — the hot loop performs no per-insert
    allocation, and the planes live outside the OCaml heap so a grid of
    resident stores (one per parameter plane of a {!Rank_grid} wavefront
    run) adds nothing to minor-GC scan work.  The interval split carried
    by each state lives in a compact growable parent-pointer arena;
    {!splits} rebuilds the historical [splits : int list] on demand (only
    for the O(log n) witness probes, never in the build loop).

    Semantics — surviving states, their order, and the
    dominated/truncation tallies — are exactly those of the list-based
    kernel this replaces; [test_core]'s differential property test keeps
    that reference implementation and checks equality on random insert
    sequences. *)

type t

type farray =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type iarray = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : cells : int -> width : int -> t
(** [create ~cells ~width] pre-allocates [cells] empty fronts of capacity
    [width] ([max_pareto]) each.  Raises [Invalid_argument] unless both
    are positive. *)

val create_powered : cells : int -> width : int -> t
(** {!create} with a third objective plane (power, watts) allocated
    beside area and count, for 3-way Pareto builds.  In a powered store
    areas still ascend per cell but counts need not descend, so use only
    {!seed}, {!insert_pw} and {!covers_pw} on it — the 2-way
    {!insert}/{!covers} binary searches assume the 2-D sorted invariant
    and must not be mixed in.  {!powered} tells the two kinds apart. *)

val recycle : t -> cells : int -> width : int -> t
(** [recycle old ~cells ~width] is {!create} that reuses [old]'s backing
    arrays when they are large enough for the requested geometry (falling
    back to a fresh allocation when not).  The result is an empty store
    indistinguishable from [create ~cells ~width] — same behaviour, same
    statistics from zero — because no reader ever looks past a cell's
    live length or the arena's reset length; only the allocation traffic
    differs.  [old] is {e consumed}: it shares every array with the
    result and must not be touched again.  This is the per-domain scratch
    path of the parallel sweeps ({!Rank_dp.with_scratch}); tables that
    outlive a computation (the serve layer's warm pool) must keep using
    {!create}.  Raises [Invalid_argument] unless both arguments are
    positive. *)

val recycle_powered : t -> cells : int -> width : int -> t
(** {!recycle} into a powered store: reuses [old]'s planes when they are
    large enough {e including} a power plane of the requested geometry
    (recycling a 2-way store into a powered build falls back to a fresh
    allocation).  Same contract as {!recycle} otherwise. *)

val width : t -> int

val cells : t -> int
(** The cell count the store was created (or last recycled) for. *)

val powered : t -> bool
(** Whether the store carries the power plane (created via
    {!create_powered}/{!recycle_powered}). *)

(** {1 Front access}

    Cells are caller-numbered [0 .. cells-1]; elements of a cell are
    indexed [0 .. length t cell - 1] in ascending-area order. *)

val length : t -> int -> int
val area : t -> int -> int -> float
val count : t -> int -> int -> int

val power : t -> int -> int -> float
(** Power coordinate of the element, watts.  Powered stores only —
    reading it on a 2-way store is out of bounds. *)

val state : t -> int -> int -> int
(** Arena id of the element, for {!splits} and as [~parent] of successor
    states.  An id is valid only while its element remains in the front:
    eviction (dominance or truncation) recycles the arena slot, so read
    ids fresh from live elements at use time — never cache one across
    inserts into the same cell.  The DP build respects this by
    construction: every insert into a cell happens before that cell is
    expanded, so an evicted state can have no live descendants. *)

val min_area : t -> int -> float
(** Smallest area in the cell — undefined when the cell is empty. *)

(** {1 Expert read-only access}

    Aliases of the live internal planes, for callers whose inner loop
    cannot afford a function call per element (without flambda, every
    call boxes float arguments and returns).  Element [k] of [cell]
    lives at index [cell * stride t + k]; the live length of a cell is
    [(raw_len t).{cell}].  The aliases stay valid for the lifetime of
    [t] and reflect mutations made by {!insert}.  Never write through
    them — all updates must go through {!seed} and {!insert} or the
    Pareto invariant and the statistics break. *)

val stride : t -> int
val raw_area : t -> farray
val raw_count : t -> iarray
val raw_len : t -> iarray

val raw_power : t -> farray
(** The power plane (empty on 2-way stores); same aliasing contract. *)

(** {1 Building} *)

val seed : t -> int -> area : float -> count : int -> unit
(** Places a root state ([splits = []]) in an empty cell directly,
    without touching the insert statistics (mirrors the old kernel's
    direct [dp.(0).(0) <- ...] seeding).  Raises [Invalid_argument] if
    the cell is non-empty. *)

val insert :
  t -> int -> area : float -> count : int -> split : int -> parent : int -> unit
(** [insert t cell ~area ~count ~split ~parent] offers a candidate state
    to the cell's front: dropped if a present element dominates it
    (area and count both [<=], counted in {!dominated}); otherwise placed
    in order, evicting the elements it dominates.  If the front then
    exceeds [width], the smallest-area [width - 1] elements plus the
    min-count last one are kept and {!truncations} grows by the number
    dropped.  [parent] is the arena id of the predecessor state
    ({!Front.state}), or [-1] for a root. *)

val covers : t -> int -> area : float -> count : int -> bool
(** [covers t cell ~area ~count]: does the cell already hold an element
    with area [<= area] {e and} count [<= count]?  This is exactly
    {!insert}'s dominance pre-check, without the insertion — the
    ε-dominance mode of the DP calls it with an inflated area bound
    ([a *. (1. +. epsilon)]) to drop candidates an existing state
    almost-dominates.  O(log width), no statistics move. *)

(** {1 3-way operations (powered stores)}

    With a third objective the Pareto set loses its 2-D sorted structure
    (only areas stay ascending), so dominance and eviction are O(width)
    linear scans — equivalent in cost to the binary searches at the
    default width.  These are the only mutation/query entry points valid
    on a powered store (besides {!seed}, whose root state has power 0). *)

val insert_pw :
  t ->
  int ->
  area : float ->
  count : int ->
  power : float ->
  split : int ->
  parent : int ->
  unit
(** 3-way {!insert}: the candidate is dropped if some element has area,
    count {e and} power all [<=] (counted in {!dominated}); otherwise it
    evicts the elements it dominates and lands in area order.  On width
    overflow the largest-area element is dropped and {!truncations}
    grows — same exactness forfeit and widening-ladder trigger as the
    2-way rule (the specific drop choice is sound because truncation
    already downgrades the build to a lower bound). *)

val covers_pw : t -> int -> area : float -> count : int -> power : float -> bool
(** 3-way {!covers}: some element with area, count and power all [<=]. *)

(** {1 Witness reconstruction} *)

val splits : t -> int -> int list
(** [splits t id] walks the parent chain of arena state [id] and returns
    the recorded splits top-down — the [splits] list the historical
    per-state representation carried inline. *)

(** {1 Statistics} *)

val inserts : t -> int
val dominated : t -> int
val truncations : t -> int

val arena_states : t -> int
(** High-water mark of {e live} arena states — evicted states return
    their slots to a free list, so this is the peak concurrent state
    population (the kernel's true memory footprint), not the historical
    insert count.  Reported to the [rank_dp/front_arena] gauge. *)
