(** Optimal rank computation — an optimized, exactly equivalent
    reformulation of the paper's dynamic program (Section 4).

    The paper's recurrence (its Eq. 1) ranges a boolean table over
    (wires assigned, pairs used, repeater area, wires meeting delay) in
    O(m n^4 A_R^3).  Two structural facts collapse this:

    - In every entry combined by Eq. (1), the wires that meet delay are
      exactly the {e longest} prefix of the WLD (the recurrence composes
      [M[i'_1, j, r_1, i'_1]] — all assigned wires above the boundary pair
      meet), so an optimal solution is described by: interval splits of the
      bunch sequence across pairs, a boundary bunch index [c], repeaters
      only above the boundary.
    - Given the splits, per-wire repeater counts are forced to their
      minima (Eq. 3 is convex in the count), so the only optimization
      freedom is where the splits fall; repeater area and repeater count
      (which drives via blockage below) are then determined, and dominated
      (area, count) combinations can be pruned per state.

    Phase A tabulates Pareto-minimal (repeater area, repeater count) for
    "bunches [0..i) on pairs [0..j), all meeting"; phase B picks the
    boundary pair, the meeting interval on it, and checks the capacity-only
    suffix with {!Ir_assign.Greedy_fill} (the paper's M'').  A binary
    search finds the largest feasible boundary; feasibility is monotone
    (shrinking the meeting prefix only removes repeaters and blockage).

    Complexity: O(m n^2) table construction plus O(log n) boundary probes,
    versus the paper's O(m n^4 A_R^3) — with no repeater-area
    discretization at all. *)

type witness = {
  boundary_pair : int;  (** pair holding the last meeting bunches *)
  prefix_splits : int list;
      (** interval end per pair above the boundary, top-down *)
  meet_lo : int;  (** meeting interval on the boundary pair *)
  meet_hi : int;
  reps_above : int;  (** repeaters in pairs above the boundary *)
  reps_total : int;  (** including the boundary pair's *)
}
(** A certificate of the rank: the phase-A interval splits above the
    boundary pair, the boundary pair's meeting interval, and the repeater
    counts.  {!Assignment.extract} turns it into a full placement. *)

type tables
(** The phase-A DP tables of one problem instance, reusable across
    boundary probes.  Since this PR they are a flat struct-of-arrays
    {!Front} store: per-cell area/count arrays (binary-search dominance,
    blit insertion, no per-insert allocation) plus a parent-pointer arena
    from which witness splits are reconstructed on demand.  They are not
    mutated after the build, so feasibility queries against the same
    tables may run concurrently (e.g. from an {!Ir_exec} domain pool).

    The repeater {e budget} prunes states during construction, so a
    problem derived with {!Ir_assign.Problem.with_clock} (or a {e
    larger} budget) needs its own tables.  A {e smaller} budget does
    not: the budget is re-read from the problem at query time, which is
    what {!search_budgets} exploits to answer a whole budget sweep from
    one build. *)

type scratch
(** Per-domain reusable buffers for the transient compute paths: a
    {!Ir_assign.Scratch} arena for the greedy-fill working arrays plus
    the previous build's {!Front} store, recycled into the next build
    instead of reallocated.  Purely an allocation-traffic optimization —
    results, counters and gauges are byte-identical with or without one
    (the recycled store is indistinguishable from a fresh allocation; the
    differential tests in [test_core] assert it) — but under parallel
    sweeps it is what keeps per-probe allocation churn from triggering
    stop-the-world minor collections across every worker domain.

    A scratch is single-user mutable state, and tables built through one
    are {e transient}: the next build with the same scratch consumes
    their arrays.  Entry points returning plain outcomes ([compute],
    [search_budgets], [feasible_boundary], the searches) borrow the
    calling domain's scratch automatically when [?scratch] is omitted
    (CAS-guarded, so sibling systhreads sharing the domain fall back to
    fresh allocation); pass one explicitly only to pin reuse across a
    caller-managed sequence. *)

val create_scratch : unit -> scratch
(** A fresh private scratch, independent of any domain's. *)

type prune
(** One pruning context: the admissible bound oracle ({!Bounds}), the
    shared incumbent cell ({!Ir_exec.Incumbent}), the smallest budget
    any query of the build will run under, and the witness certifying
    the published incumbent.  Create one per (plane, budget family) with
    {!prune_for}; hand the {e same} value to every build rung and the
    wavefront barrier hook so the incumbent accumulates. *)

val prune_for :
  ?gf:Ir_assign.Scratch.t ->
  ?budget_min:float ->
  Ir_assign.Problem.t ->
  prune
(** Creates a pruning context for [problem] (built at the {e largest}
    budget of its query family) and seeds the incumbent with one
    {!Bounds.pessimistic_probe} at [budget_min] (default: [problem]'s
    own budget).  [budget_min] must be the smallest budget the tables
    will ever be queried at — the probe's witness must hold there;
    budget monotonicity lifts it to every larger fraction.  Sequential
    code only (it publishes). *)

val build_tables :
  ?max_pareto:int ->
  ?epsilon:float ->
  ?prune:prune ->
  ?scratch:scratch ->
  Ir_assign.Problem.t ->
  tables
(** Tabulates phase A (default [max_pareto = 8]).  Without [?scratch]
    the tables own freshly allocated storage and stay valid forever —
    required for holders like the serve warm pool.  With [?scratch] the
    build recycles the scratch's previous store: cheaper, but the result
    is only valid until the next build through the same scratch.

    [?prune] threads a pruning context through the build: states (and
    candidate insertions) whose admissible optimistic bound cannot beat
    the published incumbent are dropped before any Front insertion, and
    the incumbent is advanced between levels ({!builder_advance_incumbent}).
    With the default [epsilon = 0.0] pruning is {e invisible} in results:
    ranks, exact flags and payloads are byte-identical to an unpruned
    build-and-search (QCheck-differential-tested); only the [bounds/*]
    and work counters move.  [?epsilon > 0] additionally drops candidates
    an existing state almost-dominates (area within a relative [epsilon]),
    trading exactness ([exact = false] on any drop, reported via
    {!table_approx_drops}) for a narrower front. *)

(** {2 Incremental level-stepped build}

    The same phase-A tabulation, decomposed into one step per boundary
    pair so a level-synchronous driver ({!Rank_grid}'s wavefront) can
    interleave the levels of many concurrent builds.  {!build_tables} is
    exactly [builder] / [builder_step]-to-completion / [builder_finish],
    so stepped and monolithic builds produce byte-identical fronts,
    counter tallies and witnesses by shared code, not by contract. *)

type builder
(** One in-progress phase-A build: the front store plus the next level to
    expand.  Not domain-safe individually — all steps of one builder must
    be externally ordered — but distinct builders may step concurrently
    on different domains (each touches only its own state). *)

val builder :
  ?max_pareto:int ->
  ?epsilon:float ->
  ?prune:prune ->
  ?scratch:scratch ->
  Ir_assign.Problem.t ->
  builder
(** Allocates the front store and seeds the root cell.  [?scratch] has
    the {!build_tables} contract (recycled store, result transient).
    Builders handed to other domains must not use a scratch — the arena
    buffer inside is the owning domain's.  [?epsilon]/[?prune] are as in
    {!build_tables}; each {!builder_step} re-reads the published
    incumbent once at entry, so all builders stepped between two
    barriers prune against the same value regardless of scheduling. *)

val builder_levels : builder -> int
(** Total number of boundary-pair levels ([Problem.n_pairs]). *)

val builder_level : builder -> int
(** Next level to expand: [0 .. levels]; equals [levels] when done. *)

val builder_done : builder -> bool

val builder_step : builder -> bool
(** Expands one boundary-pair level.  Returns [true] while more levels
    remain, [false] once the build is complete (further calls are
    no-ops returning [false]). *)

val builder_advance_incumbent : ?gf:Ir_assign.Scratch.t -> builder -> unit
(** Sequential-barrier hook for pruned builds (no-op otherwise): takes
    the deepest state of the last completed level, greedy-chain-extends
    it across the remaining pairs ({!Ir_core.Bounds.chain_probe} — the
    DP's own expansion screens, then usually one packer call) and, if
    the certified boundary beats the incumbent (within the context's
    [budget_min]), offers and {e publishes} it.  An optimistic-bound
    pre-check skips states whose relaxation cannot beat the incumbent.
    Call between levels from sequential code only — the wavefront
    driver calls it at its per-level barrier, {!build_tables} between
    its own steps — never from inside a [parallel_map] body. *)

val builder_finish : builder -> tables
(** Seals the build: flushes the per-build tallies to the [rank_dp/*]
    counters (exactly once — call once per builder, from one domain) and
    returns the tables.  Raises [Invalid_argument] before the last level
    has been stepped. *)

val table_truncations : tables -> int
(** Number of non-dominated states dropped because a per-state Pareto set
    exceeded [max_pareto] during the build.  [0] means phase A is
    complete and any search over these tables is exact; positive means
    outcomes derived from them carry [exact = false] (a lower bound). *)

val table_incumbent_floor : tables -> int
(** Largest boundary proven achievable during a pruned build ([-1] for
    unpruned tables).  Searches over these tables start from the floor
    and never probe at or below it: states that could only have
    certified smaller boundaries may have been pruned away, but the
    floor's own witness travels with the tables.  The floor is only
    valid for budgets at or above the [budget_min] the pruning context
    was created with — {!Rank_grid} rebuilds a plane rather than query a
    pruned one below that fraction. *)

val table_approx_drops : tables -> int
(** Candidates dropped by ε-dominance compression ([epsilon > 0]
    builds); [0] for exact builds.  Like truncations this forfeits the
    [exact] claim, but it never drives the widening ladder — a wider
    front would not restore deliberately dropped states. *)

val encode_tables : tables -> string
(** Serializes the phase-A tables (everything except the problem) into a
    binary blob for {!decode_tables} — the serve tier's warm-table
    snapshot path.  The blob is [Marshal] output prefixed with its own
    16-byte MD5; {!decode_tables} verifies the digest before unmarshaling,
    so truncated or bit-flipped blobs return [None] instead of crashing.
    Stores should still layer their own framing checks (the snapshot
    store checksums the whole blob externally).

    Raises [Invalid_argument] on pruned or ε-compressed tables: a
    snapshot is replayed against arbitrary future fractions, which a
    pruning floor's [budget_min] would not cover.  The serve tier only
    snapshots unpruned pool builds. *)

val decode_tables : Ir_assign.Problem.t -> string -> tables option
(** Rebinds a blob from {!encode_tables} to [problem] (the caller
    reconstructs the problem the tables were built from — for the serve
    pool, the family's query at repeater fraction 1.0).  [None] if the
    blob does not parse or its dimensions disagree with [problem].
    Searches over restored tables are byte-identical to searches over
    the originals: the blob carries the complete phase-A state. *)

val search_tables :
  ?exhaustive:bool ->
  ?memo:Ir_assign.Suffix_fit.t ->
  ?hint:int ->
  ?probe_fan:int ->
  ?scratch:scratch ->
  tables ->
  Outcome.t * witness option
(** Runs the boundary search on prebuilt tables — {!compute} minus table
    construction.  Unlike {!compute} it skips the Definition-3 pre-check
    (a no-fit instance simply reports unassignable through the [c = 0]
    probe).  The outcome's [exact] flag is [table_truncations t = 0].

    The result bytes are identical whatever the options; they change only
    how many probes run and where:

    - [memo]: a {!Ir_assign.Suffix_fit} cache the greedy-fill suffix
      checks answer through.  Pass one shared across sequential searches
      of a budget-rebound family to convert repeated probe contexts into
      O(1) dominance hits ({!search_budgets} does).  Single-domain state:
      never share across concurrent searches.
    - [hint]: expected boundary (e.g. the neighbouring sweep point's
      [boundary_bunch]).  The search brackets the true boundary by
      galloping from the hint, then bisects the bracket — an accurate
      hint answers in O(log distance) probes instead of O(log n).  {e
      Any} value is sound (out-of-range hints are clamped, stale ones
      just gallop further); savings land on [rank_dp/hint_saved_probes],
      measured against the nominal cold cost.
    - [probe_fan]: when > 1, bisection is replaced by speculative
      multi-section rounds — [fan] boundary probes evaluated concurrently
      on their own domains, each run to completion, shrinking the bracket
      by [fan + 1] per round.  Total probe work grows (it lands on the
      same deterministic counters, independent of scheduling); wall time
      shrinks when the machine is otherwise idle.  Meant for
      starved-pool searches ({!Ir_sweep.Cross_node}); fan probes bypass
      [memo]. *)

val default_widen_cap : int
(** Default ceiling (128) for [widen_cap] below. *)

val build_tables_widened :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?epsilon:float ->
  ?prune:prune ->
  ?scratch:scratch ->
  Ir_assign.Problem.t ->
  tables
(** {!build_tables} behind the widening ladder {!compute} uses: on Pareto
    overflow the build retries with [max_pareto] doubled (first retry
    unconditionally, then only while each doubling at least halves the
    truncation count, up to [widen_cap]).  This is how long-lived table
    holders — the {!Ir_serve} warm pool — get the same
    exactness-restoring behaviour as one-shot computes; check
    {!table_truncations} on the result before relying on exactness. *)

val widen_tables :
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?epsilon:float ->
  ?prune:prune ->
  ?scratch:scratch ->
  tables ->
  tables
(** Continues the {!build_tables_widened} ladder from an already-built
    first rung: returns the tables unchanged when truncation-free (or
    widening is off / capped), else rebuilds at doubled [max_pareto]
    under the ladder's convergence gate.  Rebuilds of a pruned first
    rung keep pruning only if the {e same} [?prune] context is passed
    back in (the wavefront driver does); ε-drops never trigger the
    ladder.  [widen_tables (build_tables p)]
    takes exactly the rung sequence of [build_tables_widened p] — this is
    how the grid wavefront (which batch-builds every plane's first rung)
    re-joins the per-point widening policy. *)

val search_with_tables :
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?hint:int ->
  ?probe_fan:int ->
  ?scratch:scratch ->
  tables ->
  Outcome.t * witness option
(** {!search} with the phase-A build performed externally: runs the same
    unfittable screen, {!widen_tables} ladder continuation and phase-B
    search, so the outcome and witness are those of
    [search ?hint (tables.problem)] by shared code.  Used by the grid
    kernel's heterogeneous batches ({!Ir_sweep.Cross_node},
    {!Ir_ext.Optimizer}). *)

val search_budgets_tables :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?scratch:scratch ->
  ?memo:Ir_assign.Suffix_fit.t ->
  ?hint:int ->
  shared:tables ->
  Ir_assign.Problem.t ->
  float list ->
  Outcome.t list
(** {!search_budgets} with the shared build performed externally.
    [shared] must be phase-A tables of
    [with_repeater_fraction problem f_max] where [f_max] is the maximum
    of [fractions], built under the caller's widening policy (see
    {!widen_tables}).  Answers are those of [search_budgets problem
    fractions] by shared code: exact sharing when [shared] is
    truncation-free, transparent per-fraction compute fallback otherwise.
    [?memo] substitutes a caller-held suffix-fit memo (the grid kernel
    threads one family-wide memo across planes — sound because greedy-fill
    verdicts depend only on capacity-side data shared by the family);
    [?hint] warm-starts the first fraction's search.  Both change probe
    counts only, never answers. *)

val search_tables_rebudget :
  ?memo:Ir_assign.Suffix_fit.t ->
  ?hint:int ->
  ?probe_fan:int ->
  fraction:float ->
  tables ->
  Outcome.t * witness option
(** {!search_tables} with the problem's repeater fraction rebound to
    [fraction] first.  Exact — byte-identical to a cold {!compute} at
    [fraction] — iff [fraction] does not exceed the fraction the tables
    were built at {e and} [table_truncations t = 0] (the
    {!search_budgets} displacement argument); callers must fall back to
    a fresh compute otherwise.  This is the warm path of the serving
    layer's table pool: tables built once at fraction 1.0 answer every
    repeater fraction of the (node, architecture, WLD, clock) family. *)

val search_budgets :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?epsilon:float ->
  ?prune:bool ->
  ?scratch:scratch ->
  Ir_assign.Problem.t ->
  float list ->
  Outcome.t list
(** [search_budgets problem fractions] computes the rank of [problem] at
    each repeater fraction (in list order), building the phase-A tables
    {e once} at the largest fraction and re-querying them with the budget
    rebound per fraction — the paper's Table 4 R column in one build
    instead of one per point.  Outcomes are identical to running
    {!compute} on {!Ir_assign.Problem.with_repeater_fraction} per
    fraction: tables built at the widest budget contain every state a
    narrower budget admits (or a dominator of it, which passes the same
    query checks), so sharing is exact whenever the shared build has no
    Pareto truncation; if it does truncate, this function transparently
    falls back to independent per-fraction computes.  The widening ladder
    options are as in {!compute}.

    The shared-build path also shares one {!Ir_assign.Suffix_fit} memo
    across the fractions (the greedy-fill verdict ignores the budget, so
    repeated probe contexts answer as cache hits) and warm-starts each
    fraction's search with the previous fraction's boundary — pure probe
    savings, same outcomes.

    [~prune:true] builds the shared tables under a pruning context whose
    achievable floor is probed at the {e smallest} fraction (so it holds
    for every fraction answered — budget monotonicity) while optimistic
    bounds use the build's own largest-fraction budget (preserving the
    displacement argument).  With [epsilon = 0] the outcomes are
    byte-identical to the unpruned path.  [~epsilon] as in
    {!build_tables}. *)

val compute :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?exhaustive:bool ->
  ?hint:int ->
  ?probe_fan:int ->
  ?epsilon:float ->
  ?prune:bool ->
  ?scratch:scratch ->
  Ir_assign.Problem.t ->
  Outcome.t
(** [compute problem] returns the optimal rank.  [~prune:true] runs the
    build through the admissible-bound pruning layer ({!Bounds}) — with
    the default [epsilon = 0.0] the outcome is byte-identical, only
    cheaper; [epsilon > 0] additionally enables lossy ε-dominance
    compression ([exact = false] on any drop).  [hint]/[probe_fan] are
    forwarded to {!search_tables} (same results, different probe
    schedule).  [max_pareto] bounds the
    per-state Pareto set (default 8; larger is slower and only matters on
    adversarial instances).  If a build truncates a non-dominated state,
    the result could silently under-report the rank; by default
    ([widen_on_overflow = true]) the tables are rebuilt with [max_pareto]
    doubled — the first retry unconditionally, further doublings only
    while each one at least halves the truncation count, up to
    [widen_cap] (default {!default_widen_cap}).  Small overflows
    therefore converge to an exact result, while genuinely exponential
    fronts (where widening cannot win) cost one probe retry and come
    back as an honest lower bound with [exact = false]; pass a larger
    [max_pareto] explicitly to push further.  [exhaustive] replaces the
    binary search with a top-down linear scan (used by tests to
    cross-check monotonicity). *)

val compute_with_witness :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  Ir_assign.Problem.t ->
  Outcome.t * witness option
(** Like {!compute} but also returns the witness (absent only when the
    instance is unassignable). *)

val feasible_boundary : ?max_pareto:int -> Ir_assign.Problem.t -> int -> bool
(** [feasible_boundary problem c] decides whether the top [c] bunches can
    all meet their targets in some feasible full assignment — the
    predicate the search maximizes; exposed for tests. *)

(** {2 Power mode and the rank-vs-power Pareto sweep}

    A problem with a {e finite} power budget
    ({!Ir_assign.Problem.power_budgeted}) switches the build to power
    mode: every state carries a third coordinate — the accumulated
    repeater power, advanced by {!Ir_assign.Problem.meeting_power}
    exactly as area is advanced by [meeting_area] — screened against the
    power budget wherever area is screened against the area budget, with
    3-way Pareto dominance ({!Front.insert_pw}).  Like the area budget,
    the power budget is re-read from the problem at query time, so one
    power-mode build answers a whole budget sweep
    ({!compute_pareto_power}).  With an {e infinite} budget the
    historical 2-way paths run untouched — ranks, exact flags and every
    counter byte-identical to a build without this mode (the bench
    identity leg asserts it).  Power mode refuses [epsilon > 0]
    (ε-dominance is a 2-way notion), and power-mode tables refuse
    {!encode_tables} (the snapshot blob predates the power plane).

    The [power/*] counters ([power/sweep_points], [power/states],
    [power/witness_rejects], [power/front_inserts]) move only in power
    mode and are deterministic (jobs=1 ≡ jobs=N). *)

val witness_power : Ir_assign.Problem.t -> witness -> float
(** Repeater power (watts) the witness's assignment burns: the sum of
    {!Ir_assign.Problem.meeting_power} over its meeting intervals,
    top-down — the DP's own accumulation order, so the figure is
    byte-identical to the power coordinate the power-mode build carried
    for that state.  The capacity-only suffix holds no repeaters and
    contributes nothing. *)

type power_point = {
  pp_budget : float;  (** the power budget this point was evaluated at *)
  pp_outcome : Outcome.t;
  pp_power : float;
      (** repeater power (watts) of the returned witness; 0 when
          unassignable *)
}
(** One point of the rank-vs-power frontier: the optimal rank at
    [pp_budget] watts (and the fixed area budget), plus the witness's
    actual power spend ([pp_power <= pp_budget] whenever assignable and
    the budget is finite). *)

val compute_pareto_power :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?scratch:scratch ->
  Ir_assign.Problem.t ->
  float list ->
  power_point list
(** [compute_pareto_power problem budgets] evaluates the rank at each
    power budget (watts, in list order; [infinity] allowed) with the
    area budget fixed at [problem]'s own — the rank-vs-power Pareto
    surface at one area budget.  One power-mode build at the largest
    {e finite} budget answers every finite point (the {!search_budgets}
    displacement argument, componentwise: the power budget enters no
    phase-A table, and a state admissible at a smaller budget survives
    the widest build or is 3-way-dominated by one that answers the same
    queries), sharing one suffix-fit memo and warm-starting each search
    with the previous point's boundary.  If the shared build truncates,
    points fall back transparently to independent per-budget computes.
    [infinity] entries always take the historical area-only path — they
    are {e not} answerable from the finite-budget build (states above
    the build's power screen are absent from it), and running the
    untouched 2-way code doubles as the byte-identity anchor.
    @raise Invalid_argument on a budget [<= 0]. *)

type power_prep
(** The shared state of one power sweep — the base problem, the
    power-mode shared build (when some budget is finite and the
    instance fits), and the widening policy — prepared once and
    consulted per point.  The shared tables are allocated scratch-free,
    so points may be answered concurrently from several domains
    ({!Rank_grid.compute_pareto_power}). *)

val power_prepare :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?scratch:scratch ->
  Ir_assign.Problem.t ->
  float list ->
  power_prep
(** Builds the sweep's shared state for exactly the given budget list:
    the unfittable screen, then the power-mode shared build at the
    largest finite budget (absent when all budgets are infinite).
    [?scratch] serves only the screen's greedy-fill scratch — the shared
    tables never recycle through it.  Counts the points on
    [power/sweep_points].  @raise Invalid_argument on a budget [<= 0]. *)

val power_answer :
  ?memo:Ir_assign.Suffix_fit.t ->
  ?hint:int ->
  ?scratch:scratch ->
  power_prep ->
  float ->
  power_point
(** One point of the sweep: finite budgets answer from the shared build
    (power budget rebound per query) when it exists truncation-free,
    everything else through an independent compute.  [?memo]/[?hint]
    are probe-count optimizations exactly as in {!search_tables}
    (single-domain state — parallel callers must omit them, which is
    also what keeps their probe counters schedule-independent).
    [power_answer (power_prepare problem budgets) b] for each [b] of
    [budgets] is {!compute_pareto_power} minus the memo/hint chaining —
    identical outcomes by shared code. *)
