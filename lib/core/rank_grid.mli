(** Grid-batched DP engine: evaluate a whole parameter sweep in one
    level-synchronous wavefront pass, with incremental re-evaluation.

    A Table-4-style grid perturbs one knob per point — dielectric K,
    Miller factor M, clock C, repeater fraction R — over a fixed
    technology/WLD family.  Points sharing (materials, clock) share their
    entire phase-A DP (the budget enters no table), so the grid groups
    points into planes, builds all planes boundary-pair-by-boundary-pair
    in one batched wavefront (the {!Ir_exec} pool parallelizes across
    planes {e inside} each level, with a barrier per level), and answers
    every point from resident tables with one family-wide
    {!Ir_assign.Suffix_fit} memo and boundary hints threaded grid-wide.

    Outcomes — rank, [exact] flag and witness — are byte-identical to the
    per-point {!Rank_dp} path: the wavefront drives
    {!Rank_dp.builder_step} (the same expansion code as
    {!Rank_dp.build_tables}) and phase B runs
    {!Rank_dp.search_budgets_tables} / {!Rank_dp.search_with_tables}
    (the same screen/ladder/search code as {!Rank_dp.compute}).

    Counters: [grid/cells_evaluated], [grid/cells_shared] (points
    answered from a plane built for another point),
    [grid/wavefront_levels] (barrier rounds), [grid/perturb_recomputed]
    (cells re-evaluated by {!perturb}) — all structural, jobs-invariant
    quantities. *)

type t
(** A resident evaluated grid: per-point outcomes plus every plane's
    phase-A tables, kept for {!perturb} and the serve tier's
    neighboring-query path.  Not domain-safe — one owner at a time. *)

type point = {
  materials : Ir_ia.Materials.t option;  (** [None] = the base's *)
  clock : float option;  (** Hz; [None] = the base's *)
  fraction : float option;  (** repeater fraction; [None] = the base's *)
}
(** One grid cell, as overrides of the base problem.  Overrides equal to
    the base value are canonicalized away, so e.g. a K sweep's base-k
    point lands in the same plane as the R column. *)

val point :
  ?materials:Ir_ia.Materials.t ->
  ?clock:float ->
  ?fraction:float ->
  unit ->
  point

val evaluate :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?jobs:int ->
  ?prune:bool ->
  Ir_assign.Problem.t ->
  point array ->
  t
(** [evaluate base points] runs the batched wavefront and answers every
    point.  Options are {!Rank_dp.compute}'s widening policy plus the
    pool size; outcomes are independent of [jobs] (asserted by the bench
    counter-identity table).

    [~prune:true] (default false) runs every plane's build through the
    admissible-bound pruning layer: each plane gets one incumbent cell
    seeded at its points' {e smallest} fraction, raised and published at
    the wavefront's per-level sequential barrier, with thresholds at the
    build's own largest-fraction budget.  Outcomes are byte-identical to
    the unpruned grid ([epsilon] never enters the grid path); only the
    work and [bounds/*] counters move, and they remain jobs-invariant
    because the incumbent is only published at barriers. *)

val results : t -> Outcome.t array
(** Per-point outcomes, in [points] order (a copy). *)

val outcome : t -> int -> Outcome.t
(** One cell's outcome (index into the original [points], or an index
    returned by {!perturb}). *)

val cells : t -> int
(** Number of grid cells currently held (grows with {!perturb}). *)

val planes : t -> int
(** Number of distinct (materials, clock) planes built. *)

val perturb : t -> point -> int array
(** [perturb g pt] appends one cell for [pt] and recomputes {e only} the
    wavefront slice the delta invalidates, returning the indices of the
    recomputed cells (always including the new cell, [cells g - 1] after
    the call):
    - plane resident, fraction within its build, truncation-free: one
      phase-B search, [[| new |]] — no phase-A work;
    - fraction above the resident build, plane truncated, or a pruned
      plane queried below the fraction its incumbent floor was certified
      at: that plane's slice is rebuilt over the widened fraction range
      and all {e its} cells re-answered (values are preserved by the displacement argument;
      they are still reported as recomputed);
    - new (materials, clock) value: one new plane built alone,
      [[| new |]].
    Every other plane's cells are untouched — strictly fewer cells than
    re-running {!evaluate} whenever the grid holds more than one plane.
    Mutates [g] in place. *)

(** {2 Resident grids for the serve tier}

    The warm-table pool keeps one resident grid per query {e family}
    (everything but materials, clock and repeater fraction fixed) and
    grows it one plane at a time: {!adopt} installs snapshot-restored
    tables, {!query} answers a point from resident planes without
    growing the grid, and a full {!perturb} builds the missing plane.
    One family-wide suffix-fit memo and one boundary hint persist inside
    the grid across calls. *)

val resident :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?jobs:int ->
  Ir_assign.Problem.t ->
  t
(** [resident base] is an empty grid (no cells, no planes) around
    [base].  The serve tier passes the family's problem rebound to the
    full repeater budget so every later fraction rebinds downward. *)

val plane_tables : t -> point -> Rank_dp.tables option
(** The resident phase-A tables of [point]'s (materials, clock) plane,
    if that plane has been built or adopted — the serve tier's snapshot
    source.  The point's fraction is ignored. *)

val adopt : t -> point -> Rank_dp.tables -> unit
(** [adopt g pt tables] installs externally built (snapshot-restored)
    tables as the resident plane for [pt]'s (materials, clock) key,
    replacing any current tables.  The tables must be truncation-free
    and built at [g]'s base repeater fraction ({!resident}'s contract —
    the serve tier only ever snapshots such planes, and never pruned
    ones — a pruning floor is only valid down to the fraction range it
    was built for, which an adopted plane cannot know).
    @raise Invalid_argument if the tables are truncated or pruned. *)

val query : t -> point -> Outcome.t option
(** [query g pt] answers [pt] from resident planes only: [Some outcome]
    — byte-identical to a cold per-point compute — when the plane is
    resident, truncation-free and was built at a fraction [>=] the
    point's; [None] otherwise (caller decides whether to {!perturb} or
    fall through cold).  Unlike {!perturb} it never builds and never
    grows the cell arrays, so a long-running server can answer
    arbitrarily many queries from a bounded grid. *)

val eval_batch :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?jobs:int ->
  ?hint:int ->
  ?probe_fan:int ->
  ?prune:bool ->
  Ir_assign.Problem.t array ->
  Outcome.t array
(** Heterogeneous batch (cross-node cells, optimizer candidates): each
    problem is its own plane — no table sharing — but phase A still runs
    as one batched wavefront and phase B threads boundary hints down the
    batch.  Outcome [i] equals [Rank_dp.compute problems.(i)] (same
    code path via {!Rank_dp.search_with_tables}; [hint]/[probe_fan] are
    probe-schedule-only).  [~prune:true] as in {!evaluate}, with each
    cell's incumbent probed at its own budget. *)

val compute_pareto_power :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?jobs:int ->
  Ir_assign.Problem.t ->
  float list ->
  Rank_dp.power_point list
(** {!Rank_dp.compute_pareto_power} on the grid engine: the shared
    power-mode build runs once (sequentially), then the points answer
    concurrently on the {!Ir_exec} pool.  Point [i] equals the
    sequential sweep's point [i] by shared code
    ({!Rank_dp.power_answer}); the memo and hint chain are deliberately
    dropped — they are single-domain, order-dependent state — which is
    what keeps every counter jobs=1 ≡ jobs=N.
    @raise Invalid_argument on a budget [<= 0]. *)
