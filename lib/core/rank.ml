type algo = Dp | Greedy | Exact of { r_steps : int } [@@deriving show, eq]

let problem_of_design ?structure ?materials ?target_model ?bunch_size design
    =
  let arch = Ir_ia.Arch.make ?structure ?materials ~design () in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.Ir_tech.Design.rent_p
         ~fan_out:design.Ir_tech.Design.fan_out ())
  in
  Ir_assign.Problem.make ?target_model ?bunch_size ~arch ~wld ()

let compute ?(algo = Dp) ?hint ?probe_fan ?epsilon ?prune problem =
  match algo with
  | Dp -> Rank_dp.compute ?hint ?probe_fan ?epsilon ?prune problem
  | Greedy -> Rank_greedy.compute problem
  | Exact { r_steps } -> Rank_exact.compute ~r_steps problem

let compute_budgets ?(algo = Dp) ?epsilon ?prune problem fractions =
  match algo with
  | Dp -> Rank_dp.search_budgets ?epsilon ?prune problem fractions
  | Greedy | Exact _ ->
      (* No shared-tables path for these algorithms; evaluate each
         fraction independently. *)
      List.map
        (fun f ->
          compute ~algo (Ir_assign.Problem.with_repeater_fraction problem f))
        fractions

let of_design ?algo ?structure ?materials ?target_model ?bunch_size design =
  compute ?algo
    (problem_of_design ?structure ?materials ?target_model ?bunch_size
       design)

let baseline_design ?(gates = 1_000_000) node =
  Ir_tech.Design.v ~node ~gates ()
