type t = {
  rank_wires : int;
  total_wires : int;
  assignable : bool;
  boundary_bunch : int;
  exact : bool;
}
[@@deriving show, eq]

let v ?(exact = true) ~rank_wires ~total_wires ~assignable ~boundary_bunch ()
    =
  if rank_wires < 0 || total_wires < 0 || boundary_bunch < 0 then
    invalid_arg "Outcome.v: negative counts";
  if rank_wires > total_wires then
    invalid_arg "Outcome.v: rank exceeds total";
  if rank_wires > 0 && not assignable then
    invalid_arg "Outcome.v: positive rank requires assignability";
  { rank_wires; total_wires; assignable; boundary_bunch; exact }

let unassignable ?exact ~total_wires () =
  v ?exact ~rank_wires:0 ~total_wires ~assignable:false ~boundary_bunch:0 ()

let normalized t =
  if t.total_wires = 0 then 0.0
  else float_of_int t.rank_wires /. float_of_int t.total_wires

let pp_human ppf t =
  Format.fprintf ppf "rank %d / %d (%.6f)%s%s" t.rank_wires t.total_wires
    (normalized t)
    (if t.assignable then "" else " [unassignable]")
    (if t.exact then "" else " [pareto-truncated: lower bound]")
