module P = Ir_assign.Problem
module GF = Ir_assign.Greedy_fill
module PF = Ir_assign.Pair_fill

(* The paper's Eq. (5): repeater count for area r on pair j is r / s_j.
   Our repeater areas are in m^2, so the count is area / (per-repeater
   area of the pair). *)
let z_of_area problem ~pair area =
  let p = Ir_ia.Arch.pair (P.arch problem) pair in
  let unit = p.Ir_ia.Layer_pair.repeater_area in
  if unit <= 0.0 then 0 else int_of_float (Float.round (area /. unit))

(* M''(n, i, m, j+1, z): bunches [i..n) fit into pairs strictly below
   0-based pair [jp], given z repeaters above. *)
let m_double_prime problem ~i ~below_pair ~z =
  let n = P.n_bunches problem in
  let m = P.n_pairs problem in
  if i >= n then true
  else if below_pair >= m then false
  else
    let wires_above = P.wires_before problem i in
    GF.fits problem
      (GF.context ~wires_above_top:wires_above ~reps_above_top:z
         ~wires_above_below:wires_above ~reps_above_below:z ~from_bunch:i
         ~top_pair:below_pair ())

let compute ?(r_steps = 16) ?(max_bunches = 14) problem =
  let n = P.n_bunches problem in
  let m = P.n_pairs problem in
  if n > max_bunches then
    invalid_arg "Rank_exact.compute: instance too large for the literal DP";
  if r_steps < 1 then invalid_arg "Rank_exact.compute: r_steps must be >= 1";
  let quantum = P.budget problem /. float_of_int r_steps in
  let total = P.total_wires problem in
  (* mm.(i).(j).(r).(i'): i bunches on (1-based) pairs 1..j+1, top i'
     meeting, <= r quanta of repeater area, rest fits below. *)
  let mm =
    Array.init (n + 1) (fun _ ->
        Array.init m (fun _ -> Array.make_matrix (r_steps + 1) (n + 1) false))
  in
  (* used_z.(i).(j).(r): repeater count corresponding to the cheapest
     realization of a fully-meeting cell M[i, j, r, i] (Eq. 5 track). *)
  let used_z =
    Array.init (n + 1) (fun _ -> Array.make_matrix m (r_steps + 1) max_int)
  in
  (* Initialize_M: pair 1 (0-based 0). *)
  for i = 0 to n do
    for r = 0 to r_steps do
      for i' = 0 to i do
        let budget_area = float_of_int r *. quantum in
        match
          PF.assign problem ~pair:0 ~prefix_wires:0 ~reps_above:0 ~meet_lo:0
            ~meet_hi:i' ~extra_hi:i ~rep_budget:budget_area
        with
        | None -> ()
        | Some res ->
            let z = z_of_area problem ~pair:0 res.PF.rep_area in
            if m_double_prime problem ~i ~below_pair:1 ~z then begin
              mm.(i).(0).(r).(i') <- true;
              if i' = i && z < used_z.(i).(0).(r) then
                used_z.(i).(0).(r) <- z
            end
      done
    done
  done;
  (* update_M: the Eq. (1) recurrence, pairs 2..m. *)
  for j = 0 to m - 2 do
    for i = 0 to n do
      for r = 0 to r_steps do
        for i' = 0 to i do
          if not mm.(i).(j + 1).(r).(i') then begin
            let found = ref false in
            let best_z = ref max_int in
            for i1 = 0 to i' do
              for r1 = 0 to r do
                if (not !found) || i' = i then
                  if (i1 = 0 && r1 = 0) || (i1 > 0 && mm.(i1).(j).(r1).(i1))
                  then begin
                    let z1 =
                      if i1 = 0 then 0
                      else if used_z.(i1).(j).(r1) = max_int then 0
                      else used_z.(i1).(j).(r1)
                    in
                    let i2 = i' - i1 in
                    if i1 <= i then
                      let r3 = float_of_int (r - r1) *. quantum in
                      match
                        PF.assign problem ~pair:(j + 1)
                          ~prefix_wires:(P.wires_before problem i1)
                          ~reps_above:z1 ~meet_lo:i1 ~meet_hi:(i1 + i2)
                          ~extra_hi:i ~rep_budget:r3
                      with
                      | None -> ()
                      | Some res ->
                          let z2 =
                            z_of_area problem ~pair:(j + 1) res.PF.rep_area
                          in
                          if
                            m_double_prime problem ~i ~below_pair:(j + 2)
                              ~z:(z1 + z2)
                          then begin
                            found := true;
                            if i' = i then best_z := min !best_z (z1 + z2)
                          end
                  end
              done
            done;
            if !found then begin
              mm.(i).(j + 1).(r).(i') <- true;
              if i' = i && !best_z < used_z.(i).(j + 1).(r) then
                used_z.(i).(j + 1).(r) <- !best_z
            end
          end
        done
      done
    done
  done;
  (* Rank extraction (Algorithm 1): the best i' over cells at full budget
     with all n bunches placed. *)
  let best = ref (-1) in
  for j = m - 1 downto 0 do
    for i = n downto 0 do
      for i' = i downto 0 do
        if !best < i' && mm.(i).(j).(r_steps).(i') then best := i'
      done
    done
  done;
  if !best < 0 then Outcome.unassignable ~total_wires:total ()
  else
    Outcome.v
      ~rank_wires:(P.wires_before problem !best)
      ~total_wires:total ~assignable:true ~boundary_bunch:!best ()
