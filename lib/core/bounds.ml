module P = Ir_assign.Problem
module GF = Ir_assign.Greedy_fill

(* Deterministic like every other counter outside exec/sched/ — the
   pruning layer only reads the incumbent at sequential barriers, so the
   tallies depend on the instances processed, never on scheduling (the
   jobs=1 vs jobs=N identity test covers them). *)
let stat_pruned = Ir_obs.counter "bounds/states_pruned"
let stat_saved = Ir_obs.counter "bounds/oracle_calls_saved"
let stat_incumbent = Ir_obs.counter "bounds/incumbent_updates"
let stat_eps = Ir_obs.counter "bounds/epsilon_drops"
let stat_gated = Ir_obs.counter "bounds/probe_gated"
let note_pruned n = if n > 0 then Ir_obs.add stat_pruned n
let note_saved () = Ir_obs.incr stat_saved
let note_incumbent () = Ir_obs.incr stat_incumbent
let note_epsilon n = if n > 0 then Ir_obs.add stat_eps n
let note_gated () = Ir_obs.incr stat_gated

(* The prefix differences below subtract two accumulated float sums; the
   DP accumulates the same physical quantity one meeting interval at a
   time, in a different order.  Both agree to ~n*ulp relative error, so
   shrinking the lower bound by 1e-9 relative keeps it a true lower
   bound with orders of magnitude to spare while costing nothing
   measurable in pruning power. *)
let slack = 1.0 -. 1e-9

type t = { problem : P.t; n : int }

let create problem = { problem; n = P.n_bunches problem }

(* Admissible suffix cost: meeting bunches [i..c) costs at least the
   fractional relaxation prefix difference (Problem.min_rep_area_before),
   whatever contiguous split the DP ends up choosing. *)
let suffix_cost t ~from ~target =
  if target <= from then 0.0
  else
    (P.min_rep_area_before t.problem target
    -. P.min_rep_area_before t.problem from)
    *. slack

let optimistic_boundary t ~budget ~area ~from =
  (* Largest c with area + lb(from -> c) <= budget: the relaxation
     prefix is non-decreasing, so binary search is exact. *)
  let lo = ref from and hi = ref t.n in
  while !hi > !lo do
    let mid = !lo + ((!hi - !lo + 1) / 2) in
    if area +. suffix_cost t ~from ~target:mid <= budget then lo := mid
    else hi := mid - 1
  done;
  !lo

(* The power analog — same slack rationale (the DP accumulates interval
   powers one product at a time, the prefix sums per-bunch minima; both
   agree to ~n*ulp). *)
let suffix_power t ~from ~target =
  if target <= from then 0.0
  else
    (P.min_rep_power_before t.problem target
    -. P.min_rep_power_before t.problem from)
    *. slack

(* Componentwise optimistic boundary: both relaxation prefixes are
   non-decreasing, so the conjunction of the two budget predicates is
   monotone in c and one binary search decides it exactly.  Equals
   [optimistic_boundary] whenever the power budget is infinite. *)
let optimistic_boundary_pw t ~budget ~power_budget ~area ~power ~from =
  let lo = ref from and hi = ref t.n in
  while !hi > !lo do
    let mid = !lo + ((!hi - !lo + 1) / 2) in
    if
      area +. suffix_cost t ~from ~target:mid <= budget
      && power +. suffix_power t ~from ~target:mid <= power_budget
    then lo := mid
    else hi := mid - 1
  done;
  !lo

(* thresh.(i): the largest prefix repeater area a column-i state may
   carry and still conceivably reach boundary >= incumbent + 1 within
   [budget].  Written so the comparisons in the DP hot loop degrade
   safely: an unreachable column can have an infinite relaxation prefix
   (making [need] NaN), and NaN thresholds compare false — no pruning —
   which is exactly right for a cell that is empty anyway.  A column
   already past the target needs nothing more, and an incumbent of n
   cannot be beaten at all. *)
let fill_thresholds t ~budget ~incumbent thresh =
  let n = t.n in
  if incumbent < 0 then Array.fill thresh 0 (n + 1) infinity
  else if incumbent >= n then Array.fill thresh 0 (n + 1) neg_infinity
  else
    let c_star = incumbent + 1 in
    for i = 0 to n do
      thresh.(i) <- budget -. suffix_cost t ~from:i ~target:c_star
    done

(* Power-axis thresholds, identical shape: a power-mode state at column i
   whose accumulated power exceeds [power_budget - suffix_power(i ->
   incumbent+1)] cannot beat the incumbent within the power budget. *)
let fill_power_thresholds t ~power_budget ~incumbent thresh =
  let n = t.n in
  if incumbent < 0 then Array.fill thresh 0 (n + 1) infinity
  else if incumbent >= n then Array.fill thresh 0 (n + 1) neg_infinity
  else
    let c_star = incumbent + 1 in
    for i = 0 to n do
      thresh.(i) <- power_budget -. suffix_power t ~from:i ~target:c_star
    done

(* The O(pairs) suffix screen, by construction the exact computation
   [Greedy_fill] itself runs first: a [true] here is a verdict the
   packer was always going to return, answered without touching the
   Suffix_fit memo or the packing loop. *)
let suffix_reject t ctx = GF.fast_reject t.problem ctx

type probe = {
  pb_boundary : int;
  pb_splits : int list;
  pb_pair : int;
  pb_meet_lo : int;
  pb_reps_above : int;
  pb_reps_total : int;
}

let probe_nothing =
  {
    pb_boundary = 0;
    pb_splits = [];
    pb_pair = 0;
    pb_meet_lo = 0;
    pb_reps_above = 0;
    pb_reps_total = 0;
  }

(* Greedy-chain achievable boundary.  Build one explicit DP path: pair
   by pair, extend the met prefix as far as the DP's own expansion
   screens allow (meeting feasibility, cumulative area within [budget],
   interval routing plus blockage within capacity — the same float
   expressions [Rank_dp.builder_step] evaluates, so every prefix of the
   chain is a state the exact DP also builds).  The chain fixes a split
   vector; the largest boundary [c] along it whose remaining suffix one
   packer call certifies is then found by binary search — feasibility of
   (truncate the chain at [c], pack the rest) is downward-closed in [c]
   by the witness-shrinking argument on [Rank_dp.feasible] (the freed
   meeting area exactly re-houses the surrendered bunch).  Because the
   boundary-region bunches dominate the budget on real instances, the
   chain typically lands within a few bunches of the DP optimum, which
   is what gives the incumbent its pruning power from level 0.  On total
   refusal the probe degrades to boundary 0, which the caller has
   already established achievable via the standard unfittable screen. *)
let chain_probe ?scratch ?(power = 0.0) t ~budget ~from_pair ~from_col ~area
    ~count =
  let p = t.problem in
  let n = t.n in
  let m = P.n_pairs p in
  let cap = P.capacity p in
  (* The power budget rides along componentwise: with the default
     infinite budget every power comparison is trivially true and the
     chain (and its packer calls) is exactly the historical one. *)
  let pbudget = P.power_budget p in
  let npairs = m - from_pair in
  if npairs <= 0 then None
  else begin
    (* ends.(jj): met prefix after extension pair [from_pair + jj];
       areas/counts/powers.(jj): cumulative repeater cost strictly above
       it, seeded with the start state's own area, count and power. *)
    let ends = Array.make npairs from_col in
    let areas = Array.make (npairs + 1) area in
    let counts = Array.make (npairs + 1) count in
    let powers = Array.make (npairs + 1) power in
    let last = ref from_col in
    for jj = 0 to npairs - 1 do
      let j = from_pair + jj in
      let lo_j = !last in
      let wires_lo = P.wires_before p lo_j in
      let blocked_j =
        P.blocked p ~pair:j ~wires_above:wires_lo ~reps_above:counts.(jj)
      in
      let ok c =
        c = lo_j
        || P.meeting_feasible p ~pair:j ~lo:lo_j ~hi:c
           && areas.(jj) +. P.meeting_area p ~pair:j ~lo:lo_j ~hi:c <= budget
           && powers.(jj) +. P.meeting_power p ~pair:j ~lo:lo_j ~hi:c
              <= pbudget
           && P.interval_area p ~pair:j ~lo:lo_j ~hi:c +. blocked_j <= cap
      in
      let lo = ref lo_j and hi = ref n in
      while !hi > !lo do
        let mid = !lo + ((!hi - !lo + 1) / 2) in
        if ok mid then lo := mid else hi := mid - 1
      done;
      let e = !lo in
      ends.(jj) <- e;
      if e = lo_j then begin
        areas.(jj + 1) <- areas.(jj);
        counts.(jj + 1) <- counts.(jj);
        powers.(jj + 1) <- powers.(jj)
      end
      else begin
        areas.(jj + 1) <-
          areas.(jj) +. P.meeting_area p ~pair:j ~lo:lo_j ~hi:e;
        counts.(jj + 1) <-
          counts.(jj) + P.meeting_count p ~pair:j ~lo:lo_j ~hi:e;
        powers.(jj + 1) <-
          powers.(jj) +. P.meeting_power p ~pair:j ~lo:lo_j ~hi:e
      end;
      last := e
    done;
    (* Truncate the chain at boundary [c]: the boundary pair is the
       first whose meeting reaches [c]; pairs above keep their full
       meetings, pairs below go unused and their capacity serves the
       suffix. *)
    let witness_at c =
      let jj = ref 0 in
      while ends.(!jj) < c do
        incr jj
      done;
      let jj = !jj in
      let lo_j = if jj = 0 then from_col else ends.(jj - 1) in
      let reps_above = counts.(jj) in
      let m_count =
        if c = lo_j then 0
        else P.meeting_count p ~pair:(from_pair + jj) ~lo:lo_j ~hi:c
      in
      (jj, lo_j, reps_above, m_count)
    in
    let feasible_at c =
      let jj, lo_j, reps_above, m_count = witness_at c in
      let j = from_pair + jj in
      let m_area =
        if c = lo_j then 0.0 else P.meeting_area p ~pair:j ~lo:lo_j ~hi:c
      in
      let used_j =
        if c = lo_j then 0.0 else P.interval_area p ~pair:j ~lo:lo_j ~hi:c
      in
      let wires_lo = P.wires_before p lo_j in
      let blocked_j = P.blocked p ~pair:j ~wires_above:wires_lo ~reps_above in
      areas.(jj) +. m_area <= budget
      && used_j +. blocked_j <= cap
      && GF.fits ?scratch p
           (GF.context ~top_pair_used:used_j ~wires_above_top:wires_lo
              ~reps_above_top:reps_above
              ~wires_above_below:(P.wires_before p c)
              ~reps_above_below:(reps_above + m_count) ~from_bunch:c
              ~top_pair:j ())
    in
    let c_max = ends.(npairs - 1) in
    (* Common case first: the full chain's suffix fits — one packer
       call.  Otherwise verify the chain's own start (the degenerate
       empty extension) and bisect; feasibility along the chain is
       downward-closed (witness-shrinking argument in Rank_dp). *)
    let best =
      if feasible_at c_max then Some c_max
      else if c_max = from_col || not (feasible_at from_col) then None
      else begin
        let lo = ref from_col and hi = ref (c_max - 1) in
        while !hi > !lo do
          let mid = !lo + ((!hi - !lo + 1) / 2) in
          if feasible_at mid then lo := mid else hi := mid - 1
        done;
        Some !lo
      end
    in
    match best with
    | None -> None
    | Some c ->
        let jj, lo_j, reps_above, m_count = witness_at c in
        Some
          {
            pb_boundary = c;
            pb_splits = List.init jj (fun k -> ends.(k));
            pb_pair = from_pair + jj;
            pb_meet_lo = lo_j;
            pb_reps_above = reps_above;
            pb_reps_total = reps_above + m_count;
          }
  end

let pessimistic_probe ?scratch t ~budget =
  match
    chain_probe ?scratch t ~budget ~from_pair:0 ~from_col:0 ~area:0.0 ~count:0
  with
  | Some pb -> pb
  | None -> probe_nothing
