(** The result of a rank computation.

    Per the paper's Definitions 1-3: the rank of an architecture w.r.t. a
    WLD is the number of longest wires that meet their target delays under
    the best assignment, provided {e all} wires can be assigned at all;
    otherwise the rank is 0. *)

type t = {
  rank_wires : int;  (** r(alpha): wires meeting delay (a WLD prefix) *)
  total_wires : int;  (** n: wires in the WLD *)
  assignable : bool;  (** Definition 3: all wires fit in the architecture *)
  boundary_bunch : int;
      (** bunches [0 .. boundary_bunch) meet their targets *)
  exact : bool;
      (** [true] unless the producing algorithm knowingly degraded to a
          heuristic — for {!Rank_dp}, [false] iff a Pareto set overflowed
          [max_pareto] during the winning search, in which case
          [rank_wires] is only a lower bound on the true rank.  The
          default search widens [max_pareto] on overflow until the DP is
          exact again, so [false] escapes only when widening is disabled
          or capped out. *)
}
[@@deriving show, eq]

val v :
  ?exact:bool ->
  rank_wires:int ->
  total_wires:int ->
  assignable:bool ->
  boundary_bunch:int ->
  unit ->
  t
(** [exact] defaults to [true].
    @raise Invalid_argument if counts are negative, [rank_wires >
    total_wires], or [rank_wires > 0] while [assignable] is false. *)

val unassignable : ?exact:bool -> total_wires:int -> unit -> t
(** Rank 0 because the WLD does not fit (Definition 3). *)

val normalized : t -> float
(** [rank_wires / total_wires] — the paper's Table 4 reports this
    normalization. *)

val pp_human : Format.formatter -> t -> unit
(** e.g. ["rank 1191864 / 3000000 (0.3973)"]; appends markers for
    unassignable and inexact (Pareto-truncated) outcomes. *)
