(* Grid-batched DP engine: one wavefront pass over a whole parameter grid.

   A sweep point of the paper's Table 4 perturbs exactly one of four
   knobs of a fixed technology/WLD family — dielectric constant K,
   Miller factor M, clock C, repeater fraction R.  Points sharing
   (materials, clock) share their {e entire} phase-A DP (the repeater
   budget enters no table; [Rank_dp.search_budgets]'s displacement
   argument), so the grid groups points into (materials, clock) planes,
   builds every plane's tables in one level-synchronous wavefront pass
   (all planes advance boundary-pair level j together; the [Ir_exec]
   work-stealing pool parallelizes {e across planes inside each level},
   with a barrier per level), and then answers every point from its
   plane's resident tables with one family-wide suffix-fit memo and
   boundary hints threaded across the whole grid.

   Three sharing layers, each proved elsewhere and reused here:
   - plane sharing: points differing only in R reuse one build
     (displacement argument in [Rank_dp.search_budgets]);
   - oracle sharing: [Greedy_fill.fits] verdicts depend only on
     capacity-side data (capacity, pitches, via blockage, bunches, wire
     and routing-area prefixes) which the whole K x M x C x R family
     shares, so one [Suffix_fit] memo answers probes for every plane;
   - code sharing: the wavefront drives [Rank_dp.builder_step] — the
     identical expansion code [build_tables] runs — and phase B goes
     through [Rank_dp.search_budgets_tables]; identity with the
     per-point path is by construction, and the differential tests in
     [test_core]/[test_sweep] keep it honest.

   The planes stay resident after evaluation: [perturb] answers a
   one-parameter delta by recomputing only the slice it invalidates — a
   new R point on a truncation-free plane is one phase-B search, a new
   K/M/C value is one new plane's build — never the whole grid.  The
   serve tier's warm pool leans on this to answer neighboring-query
   misses from a resident grid. *)

module P = Ir_assign.Problem

(* Deterministic quantities (structural counts, never timing- or
   scheduling-dependent): the bench asserts jobs=1 = jobs=N on these. *)
let stat_cells = Ir_obs.counter "grid/cells_evaluated"
let stat_shared = Ir_obs.counter "grid/cells_shared"
let stat_levels = Ir_obs.counter "grid/wavefront_levels"
let stat_perturb = Ir_obs.counter "grid/perturb_recomputed"
let span_wavefront = Ir_obs.span "grid/wavefront"
let span_answer = Ir_obs.span "grid/answer"

type point = {
  materials : Ir_ia.Materials.t option;
  clock : float option;
  fraction : float option;
}

let point ?materials ?clock ?fraction () = { materials; clock; fraction }

(* A (materials, clock) plane: one phase-A build shared by every grid
   point of that plane, held at the largest repeater fraction any of its
   points ever asked for. *)
type plane = {
  pl_materials : Ir_ia.Materials.t option;  (* canonical: None = base *)
  pl_clock : float option;
  pl_problem : P.t;  (* at the base fraction; rebound per query *)
  mutable pl_f_max : float;
  (* Smallest fraction the plane's pruning floor was certified at: a
     pruned build's tables only answer budgets >= this fraction's (the
     floor witness is only proven achievable there — budget
     monotonicity covers everything above).  Unpruned planes keep it at
     the smallest fraction seen, but nothing reads it then. *)
  mutable pl_f_min : float;
  mutable pl_tables : Rank_dp.tables;
  mutable pl_points : int list;  (* grid cell indices, oldest first *)
}

type t = {
  g_base : P.t;
  g_base_fraction : float;
  g_max_pareto : int option;
  g_widen_on_overflow : bool option;
  g_widen_cap : int option;
  g_jobs : int option;
  g_prune : bool;
  mutable g_points : point array;  (* canonicalized; index = grid cell *)
  mutable g_outcomes : Outcome.t array;  (* index = grid cell *)
  mutable g_planes : plane list;  (* oldest first *)
  mutable g_memo : Ir_assign.Suffix_fit.t option;  (* family-wide, lazy *)
  mutable g_hint : int option;  (* last assignable boundary served *)
}

let base_clock p = (P.arch p).Ir_ia.Arch.design.Ir_tech.Design.clock

let base_fraction p =
  (P.arch p).Ir_ia.Arch.design.Ir_tech.Design.repeater_fraction

(* Collapse overrides equal to the base value to [None] so that e.g. the
   K sweep's 3.9 point, the M sweep's 2.0 point and the C sweep's base
   clock land in the {e same} plane as the R column — that coincidence is
   where most of [cells_shared] comes from on the Table-4 grid. *)
let canonical base pt =
  let materials =
    match pt.materials with
    | Some m when Ir_ia.Materials.equal m (P.arch base).Ir_ia.Arch.materials
      ->
        None
    | o -> o
  in
  let clock =
    match pt.clock with Some c when c = base_clock base -> None | o -> o
  in
  let fraction =
    match pt.fraction with
    | Some f when f = base_fraction base -> None
    | o -> o
  in
  { materials; clock; fraction }

(* A plane's identity is its canonical (materials, clock) override pair. *)
let key_equal (m1, c1) (m2, c2) =
  (match (m1, m2) with
  | None, None -> true
  | Some a, Some b -> Ir_ia.Materials.equal a b
  | _ -> false)
  && c1 = c2

let plane_key_equal pl pt =
  key_equal (pl.pl_materials, pl.pl_clock) (pt.materials, pt.clock)

(* Derive a plane's problem from the base via the rescale-reuse
   constructors: [with_materials] / [with_clock] rebuild exactly the
   tables the knob moves and reuse the rest bit-for-bit, so the derived
   problem equals a from-scratch construction at those parameters (the
   per-point sweep path's problems). *)
let plane_problem base pt =
  let p =
    match pt.materials with
    | None -> base
    | Some m -> P.with_materials base m
  in
  match pt.clock with None -> p | Some c -> P.with_clock p c

let point_fraction g pt =
  match pt.fraction with None -> g.g_base_fraction | Some f -> f

(* ---- wavefront phase A ------------------------------------------------- *)

(* Build many planes' tables in one level-synchronous pass: every
   still-active builder expands boundary-pair level j before any builder
   touches level j+1.  Inside a level the builders are independent (each
   steps only its own front), so the work-stealing pool fans them out;
   the barrier between levels is [parallel_map]'s join.  Builders
   deliberately take no scratch — a builder migrates between pool domains
   from level to level, and a scratch arena belongs to one domain.
   Finishing (counter flush) and the widening-ladder continuation run
   sequentially afterwards, so every [Ir_obs] tally is deterministic. *)
let wavefront ?jobs ?max_pareto ?widen_on_overflow ?widen_cap ?prunes
    problems =
  Ir_obs.time span_wavefront @@ fun () ->
  let prune_of i =
    match prunes with None -> None | Some a -> a.(i)
  in
  let builders =
    Array.mapi
      (fun i p -> Rank_dp.builder ?max_pareto ?prune:(prune_of i) p)
      problems
  in
  let active = ref (Array.to_list builders) in
  while !active <> [] do
    let batch = Array.of_list !active in
    let more = Ir_exec.parallel_map ?jobs Rank_dp.builder_step batch in
    Ir_obs.incr stat_levels;
    (* Sequential barrier: raise and {e publish} each plane's incumbent
       from the level just built, in the deterministic batch order —
       the only place the cells move, which is what keeps the bounds/*
       tallies identical across jobs settings (a no-op for unpruned
       builders).  The next level's thresholds then see the new floors. *)
    Array.iter Rank_dp.builder_advance_incumbent batch;
    let still = ref [] in
    for i = Array.length batch - 1 downto 0 do
      if more.(i) then still := batch.(i) :: !still
    done;
    active := !still
  done;
  Array.mapi
    (fun i b ->
      Rank_dp.widen_tables ?widen_on_overflow ?widen_cap ?prune:(prune_of i)
        (Rank_dp.builder_finish b))
    builders

(* ---- grid evaluation --------------------------------------------------- *)

(* One suffix-fit memo for the whole family — see the oracle-sharing
   argument at the top of the file.  Bound to the base problem (any
   member's capacity-side data is the family's); created lazily and kept
   for the grid's resident lifetime, so serve-tier queries reuse probe
   verdicts across requests. *)
let family_memo g =
  match g.g_memo with
  | Some m -> m
  | None ->
      let m = Ir_assign.Suffix_fit.create g.g_base in
      g.g_memo <- Some m;
      m

(* Answer one plane's points from its resident tables.  Points are
   evaluated in ascending-fraction order (the R-column convention — each
   fraction's boundary warm-starts the next) and scattered back to their
   grid cells.  The grid-wide boundary hint [g_hint] threads across
   planes and across calls.  Sequential and deterministic. *)
let answer_plane g pl =
  let pts =
    List.map (fun idx -> (idx, point_fraction g g.g_points.(idx))) pl.pl_points
  in
  let pts = List.stable_sort (fun (_, a) (_, b) -> compare a b) pts in
  let outcomes =
    Rank_dp.search_budgets_tables ?max_pareto:g.g_max_pareto
      ?widen_on_overflow:g.g_widen_on_overflow ?widen_cap:g.g_widen_cap
      ~memo:(family_memo g) ?hint:g.g_hint ~shared:pl.pl_tables pl.pl_problem
      (List.map snd pts)
  in
  Ir_obs.add stat_cells (List.length pts);
  List.iter2
    (fun (idx, _) o ->
      g.g_outcomes.(idx) <- o;
      if o.Outcome.assignable then g.g_hint <- Some o.Outcome.boundary_bunch)
    pts outcomes

(* Mutable pre-build grouping record: planes get their tables only after
   the wavefront. *)
type group = {
  gr_pt : point;
  gr_problem : P.t;
  mutable gr_f_max : float;
  mutable gr_f_min : float;
  mutable gr_points : int list;  (* reversed during grouping *)
}

let group_points g points =
  let groups = ref [] in
  Array.iteri
    (fun idx pt ->
      let f = point_fraction g pt in
      match
        List.find_opt
          (fun gr ->
            key_equal
              (gr.gr_pt.materials, gr.gr_pt.clock)
              (pt.materials, pt.clock))
          !groups
      with
      | Some gr ->
          gr.gr_f_max <- Float.max gr.gr_f_max f;
          gr.gr_f_min <- Float.min gr.gr_f_min f;
          gr.gr_points <- idx :: gr.gr_points;
          Ir_obs.incr stat_shared
      | None ->
          groups :=
            {
              gr_pt = pt;
              gr_problem = plane_problem g.g_base pt;
              gr_f_max = f;
              gr_f_min = f;
              gr_points = [ idx ];
            }
            :: !groups)
    points;
  List.rev !groups

(* A plane's pruning context: bounds and thresholds live at the build
   problem (the plane's f_max budget — preserving the displacement
   argument that lets one build answer every fraction), while the
   incumbent floor is probed at the {e smallest} fraction any of the
   plane's points asks for, so its witness holds for every query (budget
   monotonicity).  Sequential: prune_for publishes. *)
let plane_prune gr build_problem =
  Rank_dp.prune_for
    ~budget_min:
      (P.budget (P.with_repeater_fraction gr.gr_problem gr.gr_f_min))
    build_problem

let evaluate ?max_pareto ?widen_on_overflow ?widen_cap ?jobs ?(prune = false)
    base points =
  let points = Array.map (canonical base) points in
  let n = Array.length points in
  let g =
    {
      g_base = base;
      g_base_fraction = base_fraction base;
      g_max_pareto = max_pareto;
      g_widen_on_overflow = widen_on_overflow;
      g_widen_cap = widen_cap;
      g_jobs = jobs;
      g_prune = prune;
      g_points = points;
      g_outcomes =
        Array.make (max 1 n)
          (Outcome.unassignable ~total_wires:(P.total_wires base) ());
      g_planes = [];
      g_memo = None;
      g_hint = None;
    }
  in
  let groups = group_points g points in
  (* One wavefront over every plane, at each plane's own f_max. *)
  let build_problems =
    Array.of_list
      (List.map
         (fun gr -> P.with_repeater_fraction gr.gr_problem gr.gr_f_max)
         groups)
  in
  let prunes =
    if not prune then None
    else
      Some
        (Array.of_list
           (List.mapi
              (fun i gr -> Some (plane_prune gr build_problems.(i)))
              groups))
  in
  let shared =
    wavefront ?jobs ?max_pareto ?widen_on_overflow ?widen_cap ?prunes
      build_problems
  in
  g.g_planes <-
    List.mapi
      (fun i gr ->
        {
          pl_materials = gr.gr_pt.materials;
          pl_clock = gr.gr_pt.clock;
          pl_problem = gr.gr_problem;
          pl_f_max = gr.gr_f_max;
          pl_f_min = gr.gr_f_min;
          pl_tables = shared.(i);
          pl_points = List.rev gr.gr_points;
        })
      groups;
  (* Phase B: sequential over planes, one family memo, hints threaded
     through the whole grid. *)
  Ir_obs.time span_answer (fun () -> List.iter (answer_plane g) g.g_planes);
  g

let results g = Array.sub g.g_outcomes 0 (Array.length g.g_points)
let outcome g idx = g.g_outcomes.(idx)
let cells g = Array.length g.g_points
let planes g = List.length g.g_planes

(* ---- incremental re-evaluation ----------------------------------------- *)

let perturb g pt =
  let pt = canonical g.g_base pt in
  let idx = Array.length g.g_points in
  let f = point_fraction g pt in
  g.g_points <- Array.append g.g_points [| pt |];
  if Array.length g.g_outcomes < idx + 1 then
    g.g_outcomes <-
      Array.append g.g_outcomes
        [| Outcome.unassignable ~total_wires:(P.total_wires g.g_base) () |];
  let changed =
    match List.find_opt (fun pl -> plane_key_equal pl pt) g.g_planes with
    | Some pl
      when f <= pl.pl_f_max
           && Rank_dp.table_truncations pl.pl_tables = 0
           && (Rank_dp.table_incumbent_floor pl.pl_tables < 0
              || f >= pl.pl_f_min) ->
        (* Resident plane already covers this budget: one phase-B search
           against the resident tables, nothing rebuilt. *)
        Ir_obs.incr stat_shared;
        let outcomes =
          Rank_dp.search_budgets_tables ?max_pareto:g.g_max_pareto
            ?widen_on_overflow:g.g_widen_on_overflow
            ?widen_cap:g.g_widen_cap ~memo:(family_memo g) ?hint:g.g_hint
            ~shared:pl.pl_tables pl.pl_problem [ f ]
        in
        Ir_obs.incr stat_cells;
        let o = List.hd outcomes in
        if o.Outcome.assignable then g.g_hint <- Some o.Outcome.boundary_bunch;
        g.g_outcomes.(idx) <- o;
        pl.pl_points <- pl.pl_points @ [ idx ];
        [| idx |]
    | Some pl ->
        (* Budget grew past the resident build, the plane is truncated,
           or a pruned plane is asked below its certified floor
           fraction: rebuild this plane's slice over the widened
           fraction range and re-answer {e its} points only — every
           other plane's cells are untouched. *)
        pl.pl_f_max <- Float.max pl.pl_f_max f;
        pl.pl_f_min <- Float.min pl.pl_f_min f;
        pl.pl_points <- pl.pl_points @ [ idx ];
        Ir_obs.incr stat_shared;
        let build_problem =
          P.with_repeater_fraction pl.pl_problem pl.pl_f_max
        in
        let prunes =
          if not g.g_prune then None
          else
            Some
              [|
                Some
                  (Rank_dp.prune_for
                     ~budget_min:
                       (P.budget
                          (P.with_repeater_fraction pl.pl_problem
                             pl.pl_f_min))
                     build_problem);
              |]
        in
        let shared =
          wavefront ?jobs:g.g_jobs ?max_pareto:g.g_max_pareto
            ?widen_on_overflow:g.g_widen_on_overflow
            ?widen_cap:g.g_widen_cap ?prunes [| build_problem |]
        in
        pl.pl_tables <- shared.(0);
        answer_plane g pl;
        Array.of_list pl.pl_points
    | None ->
        (* New (materials, clock) value: one new plane, built alone. *)
        let problem = plane_problem g.g_base pt in
        let build_problem = P.with_repeater_fraction problem f in
        let prunes =
          if not g.g_prune then None
          else Some [| Some (Rank_dp.prune_for build_problem) |]
        in
        let shared =
          wavefront ?jobs:g.g_jobs ?max_pareto:g.g_max_pareto
            ?widen_on_overflow:g.g_widen_on_overflow
            ?widen_cap:g.g_widen_cap ?prunes [| build_problem |]
        in
        let pl =
          {
            pl_materials = pt.materials;
            pl_clock = pt.clock;
            pl_problem = problem;
            pl_f_max = f;
            pl_f_min = f;
            pl_tables = shared.(0);
            pl_points = [ idx ];
          }
        in
        g.g_planes <- g.g_planes @ [ pl ];
        answer_plane g pl;
        [| idx |]
  in
  Ir_obs.add stat_perturb (Array.length changed);
  changed

(* ---- resident grids for the serve tier --------------------------------- *)

(* The serve tier's warm pool holds one resident grid per query family
   (everything but materials, clock and repeater fraction) and feeds it
   planes one query at a time — starting empty, adopting
   snapshot-restored tables, and answering neighboring-query misses with
   [query] without growing the cell arrays. *)

let resident ?max_pareto ?widen_on_overflow ?widen_cap ?jobs base =
  {
    g_base = base;
    g_base_fraction = base_fraction base;
    g_max_pareto = max_pareto;
    g_widen_on_overflow = widen_on_overflow;
    g_widen_cap = widen_cap;
    g_jobs = jobs;
    g_prune = false;
    g_points = [||];
    g_outcomes = [||];
    g_planes = [];
    g_memo = None;
    g_hint = None;
  }

let find_plane g pt =
  let pt = canonical g.g_base pt in
  List.find_opt (fun pl -> plane_key_equal pl pt) g.g_planes

let plane_tables g pt = Option.map (fun pl -> pl.pl_tables) (find_plane g pt)

let adopt g pt tables =
  if Rank_dp.table_truncations tables <> 0 then
    invalid_arg "Rank_grid.adopt: truncated tables";
  if Rank_dp.table_incumbent_floor tables >= 0 then
    invalid_arg "Rank_grid.adopt: pruned tables";
  let pt = canonical g.g_base pt in
  match List.find_opt (fun pl -> plane_key_equal pl pt) g.g_planes with
  | Some pl ->
      pl.pl_tables <- tables;
      pl.pl_f_max <- g.g_base_fraction;
      pl.pl_f_min <- g.g_base_fraction
  | None ->
      g.g_planes <-
        g.g_planes
        @ [
            {
              pl_materials = pt.materials;
              pl_clock = pt.clock;
              pl_problem = plane_problem g.g_base pt;
              pl_f_max = g.g_base_fraction;
              pl_f_min = g.g_base_fraction;
              pl_tables = tables;
              pl_points = [];
            };
          ]

let query g pt =
  let pt = canonical g.g_base pt in
  let f = point_fraction g pt in
  match List.find_opt (fun pl -> plane_key_equal pl pt) g.g_planes with
  | Some pl
    when f <= pl.pl_f_max
         && Rank_dp.table_truncations pl.pl_tables = 0
         && (Rank_dp.table_incumbent_floor pl.pl_tables < 0
            || f >= pl.pl_f_min) ->
      let outcomes =
        Rank_dp.search_budgets_tables ?max_pareto:g.g_max_pareto
          ?widen_on_overflow:g.g_widen_on_overflow ?widen_cap:g.g_widen_cap
          ~memo:(family_memo g) ?hint:g.g_hint ~shared:pl.pl_tables
          pl.pl_problem [ f ]
      in
      Ir_obs.incr stat_cells;
      Ir_obs.incr stat_shared;
      let o = List.hd outcomes in
      if o.Outcome.assignable then g.g_hint <- Some o.Outcome.boundary_bunch;
      Some o
  | Some _ | None -> None

(* ---- heterogeneous batches --------------------------------------------- *)

(* Cross_node / Optimizer grids: every cell is its own problem (different
   bunches or stacks), so no plane sharing — the win is the batched
   wavefront (pool parallelism inside levels, not across points) and the
   sequential hint chain.  Identity with per-point [Rank_dp.search] is by
   [search_with_tables] running the same screen/ladder/search code. *)
let eval_batch ?max_pareto ?widen_on_overflow ?widen_cap ?jobs ?hint
    ?probe_fan ?(prune = false) problems =
  let prunes =
    (* Heterogeneous cells each query at their own build budget, so the
       default budget_min (the problem's own) is exactly right. *)
    if not prune then None
    else Some (Array.map (fun p -> Some (Rank_dp.prune_for p)) problems)
  in
  let shared =
    wavefront ?jobs ?max_pareto ?widen_on_overflow ?widen_cap ?prunes
      problems
  in
  Ir_obs.add stat_cells (Array.length problems);
  let hint = ref hint in
  Array.map
    (fun tables ->
      let o, _w =
        Rank_dp.search_with_tables ?widen_on_overflow ?widen_cap ?hint:!hint
          ?probe_fan tables
      in
      if o.Outcome.assignable then hint := Some o.Outcome.boundary_bunch;
      o)
    shared

(* ---- rank-vs-power Pareto sweep ---------------------------------------- *)

(* The grid engine's power sweep: one shared power-mode build
   (Rank_dp.power_prepare — sequential, scratch-free so every domain may
   read it), then the points answered concurrently on the pool.  No memo
   and no hint chain — those are single-domain, order-dependent state;
   dropping them is exactly what makes every per-point probe count
   independent of scheduling, so the power/* and rank_dp/* counters stay
   jobs=1 ≡ jobs=N (the bench power leg asserts it).  Outcomes equal
   [Rank_dp.compute_pareto_power problem budgets] point for point by
   shared code ([Rank_dp.power_answer]). *)
let compute_pareto_power ?max_pareto ?widen_on_overflow ?widen_cap ?jobs
    problem budgets =
  match budgets with
  | [] -> []
  | _ ->
      let prep =
        Rank_dp.power_prepare ?max_pareto ?widen_on_overflow ?widen_cap
          problem budgets
      in
      Ir_obs.add stat_cells (List.length budgets);
      Array.to_list
        (Ir_exec.parallel_map ?jobs
           (fun b -> Rank_dp.power_answer prep b)
           (Array.of_list budgets))
