(** High-level rank computation: from a design description straight to the
    paper's metric.

    This is the library's front door.  It wires together the Davis WLD
    generator, the architecture builder, bunching, and an algorithm
    choice: {!Rank_dp} (the optimal DP, default), {!Rank_greedy} (the
    Figure-2 baseline) or {!Rank_exact} (the paper-literal DP, small
    instances only). *)

type algo =
  | Dp  (** optimized optimal DP — the paper's metric *)
  | Greedy  (** suboptimal top-down baseline (Figure 2) *)
  | Exact of { r_steps : int }  (** paper-literal 4-D boolean DP *)
[@@deriving show, eq]

val problem_of_design :
  ?structure:Ir_ia.Arch.structure ->
  ?materials:Ir_ia.Materials.t ->
  ?target_model:Ir_delay.Target.t ->
  ?bunch_size:int ->
  Ir_tech.Design.t ->
  Ir_assign.Problem.t
(** Generates the design's Davis WLD, builds the architecture (baseline
    structure and materials by default) and bunches the instance
    (default bunch size 10000, the paper's). *)

val compute :
  ?algo:algo ->
  ?hint:int ->
  ?probe_fan:int ->
  ?epsilon:float ->
  ?prune:bool ->
  Ir_assign.Problem.t ->
  Outcome.t
(** Runs the chosen algorithm (default [Dp]) on a prepared instance.
    [hint] (an expected boundary bunch, e.g. a neighbouring sweep point's
    [boundary_bunch]) and [probe_fan] (speculative concurrent boundary
    probes for an otherwise idle machine) are forwarded to
    {!Rank_dp.search_tables} under [Dp] and ignored by the other
    algorithms; either way the result bytes are unaffected.  [prune]
    (default false) enables {!Rank_dp}'s admissible-bound pruning —
    byte-identical results, less work; [epsilon] (default 0.) its lossy
    ε-dominance compression ([exact = false] on any drop).  Both are
    [Dp]-only and ignored elsewhere. *)

val compute_budgets :
  ?algo:algo ->
  ?epsilon:float ->
  ?prune:bool ->
  Ir_assign.Problem.t ->
  float list ->
  Outcome.t list
(** [compute_budgets problem fractions] is the rank of [problem] at each
    repeater fraction, in list order.  With [Dp] (the default) this is
    {!Rank_dp.search_budgets} — one phase-A build shared across the whole
    budget sweep; other algorithms evaluate each fraction independently.
    Results are identical to mapping {!compute} over
    {!Ir_assign.Problem.with_repeater_fraction}.  [epsilon]/[prune] as
    in {!compute} ([Dp] only). *)

val of_design :
  ?algo:algo ->
  ?structure:Ir_ia.Arch.structure ->
  ?materials:Ir_ia.Materials.t ->
  ?target_model:Ir_delay.Target.t ->
  ?bunch_size:int ->
  Ir_tech.Design.t ->
  Outcome.t
(** [problem_of_design] followed by [compute] — one call from design
    parameters to the rank. *)

val baseline_design : ?gates:int -> Ir_tech.Node.t -> Ir_tech.Design.t
(** The paper's Table 2 baseline design for a node: 1M gates (overridable),
    Rent p 0.6, 500 MHz, repeater fraction 0.4. *)
