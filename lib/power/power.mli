(** Repeater power accounting over rank assignments.

    The model ({!Ir_assign.Problem.per_rep_power}) charges each repeater
    on layer-pair [j]

    {v activity * (s_opt_j * c_o) * Vdd^2 * f_clock  +  s_opt_j * leakage v}

    — dynamic switching of its input capacitance at the design clock
    under the instance's activity factor, plus size-proportional leakage
    — with [Vdd] and the per-size leakage calibrated per technology node
    ({!Ir_tech.Node.vdd}, {!Ir_tech.Node.leakage_per_size}) and [s_opt]
    the pair's delay-optimal repeater size.  Only the meeting prefix
    holds repeaters, so an assignment's power is a sum of O(1) interval
    lookups over its meeting pair loads.

    This module is the reporting surface of the model; the optimizing
    side — a second budget threaded through the DP and the
    rank-vs-power frontier — lives in {!Ir_core.Rank_dp} (power mode,
    [compute_pareto_power]) and is re-exported here as {!pareto}. *)

val per_repeater : Ir_assign.Problem.t -> pair:int -> float
(** Watts one repeater burns on [pair] —
    {!Ir_assign.Problem.per_rep_power}. *)

val of_assignment : Ir_assign.Problem.t -> Ir_core.Assignment.t -> float
(** Total repeater power (watts) of an extracted assignment: the sum of
    {!Ir_assign.Problem.meeting_power} over its meeting pair loads,
    top-down.  The capacity-only overflow holds no repeaters and
    contributes nothing.  Byte-identical to {!of_witness} on the witness
    behind the same assignment, and to the power coordinate the
    power-mode DP carried for that state — same products, same
    summation order (property-tested without a tolerance). *)

val of_witness : Ir_assign.Problem.t -> Ir_core.Rank_dp.witness -> float
(** {!Ir_core.Rank_dp.witness_power}, re-exported: the same sum taken
    directly from a search witness. *)

val pareto :
  ?max_pareto:int ->
  ?widen_on_overflow:bool ->
  ?widen_cap:int ->
  ?jobs:int ->
  Ir_assign.Problem.t ->
  float list ->
  Ir_core.Rank_dp.power_point list
(** The rank-vs-power frontier at [problem]'s area budget: the rank at
    each power budget (watts, [infinity] allowed), one shared power-mode
    build answering every finite point.  Without [?jobs] this is
    {!Ir_core.Rank_dp.compute_pareto_power} (sequential, memo + hint
    chained); with [?jobs] the points evaluate concurrently on the
    {!Ir_exec} pool via {!Ir_core.Rank_grid.compute_pareto_power} —
    identical outcomes by shared code.
    @raise Invalid_argument on a budget [<= 0]. *)
