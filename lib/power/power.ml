module P = Ir_assign.Problem

let per_repeater = P.per_rep_power

(* Summed in the same top-down pair order (and with the same
   [meeting_power] products) as the DP's power accumulation and
   [Rank_dp.witness_power], so all three figures agree byte-for-byte on
   the same assignment — the QCheck suite asserts the equalities
   without a tolerance.  The overflow suffix is capacity-only: it holds
   no repeaters, hence burns none. *)
let of_assignment problem (a : Ir_core.Assignment.t) =
  List.fold_left
    (fun acc (pl : Ir_core.Assignment.pair_load) ->
      if pl.bunch_hi > pl.bunch_lo then
        acc
        +. P.meeting_power problem ~pair:pl.pair ~lo:pl.bunch_lo
             ~hi:pl.bunch_hi
      else acc)
    0.0 a.Ir_core.Assignment.meeting

let of_witness = Ir_core.Rank_dp.witness_power

let pareto ?max_pareto ?widen_on_overflow ?widen_cap ?jobs problem budgets =
  match jobs with
  | Some _ ->
      Ir_core.Rank_grid.compute_pareto_power ?max_pareto ?widen_on_overflow
        ?widen_cap ?jobs problem budgets
  | None ->
      Ir_core.Rank_dp.compute_pareto_power ?max_pareto ?widen_on_overflow
        ?widen_cap problem budgets
