(** Cross-node, cross-size rank comparison.

    The paper's Section 5.2 mentions baseline experiments with 1M gates at
    180nm, 1M at 130nm and 4M at 90nm (only the 130nm/1M column is
    printed); Section 5 also names 1M/4M/10M-gate WLDs.  This module runs
    the baseline rank for any (node, gate-count) matrix so those
    unreported baselines can be regenerated and compared. *)

type cell = {
  node : Ir_tech.Node.t;
  gates : int;
  outcome : Ir_core.Outcome.t;
  seconds : float;
}
[@@deriving show]

val default_matrix : (Ir_tech.Node.t * int) list
(** The paper's named baselines: (180nm, 1M), (130nm, 1M), (90nm, 4M). *)

val run :
  ?jobs:int ->
  ?probe_fan:int ->
  ?bunch_size:int ->
  ?structure:Ir_ia.Arch.structure ->
  ?matrix:(Ir_tech.Node.t * int) list ->
  unit ->
  cell list
(** Computes the baseline (Table 2 parameters) rank for every matrix
    entry.  Gate counts of 10M are supported but take a few seconds
    each.  Problems are built on the {!Ir_exec} pool ([?jobs],
    heaviest design first) and then ranked as {e one}
    {!Ir_core.Rank_grid.eval_batch} wavefront — the pool parallelizes
    inside each DP level rather than across whole cells, so the largest
    design never runs alone on a drained pool.  The returned list keeps
    the matrix order and is independent of the job count (timings
    aside; the batched search cost is reported amortized evenly).

    [probe_fan] is forwarded to each cell's boundary search: the
    batch's phase B is a sequential hint chain, so by default every
    search fans out over the whole effective pool with speculative
    concurrent probes.  Results are identical for any fan; the probe
    {e counters} scale with it, so pass [~probe_fan:1] when counter
    totals must not depend on the machine. *)
