(** The paper's headline experiment (its abstract and Section 5.2): a 42%
    reduction in Miller coupling factor achieves the same rank improvement
    as a 38% reduction in ILD permittivity for the 1M-gate 130nm design.

    Given a K reduction, we find the M reduction whose rank matches (and
    vice versa) by scanning the M grid and interpolating. *)

type result = {
  k_reduction : float;  (** relative reduction of ILD permittivity *)
  k_rank : float;  (** normalized rank at the reduced K *)
  m_reduction : float;  (** Miller reduction achieving the same rank *)
  m_rank : float;  (** normalized rank at that Miller value *)
}
[@@deriving show]

val matching_miller_reduction :
  ?jobs:int -> ?config:Table4.config -> k_reduction:float -> unit -> result
(** [matching_miller_reduction ~k_reduction:0.38 ()] reproduces the
    headline: reduce K by 38% (3.9 -> 2.418), measure the rank, then find
    the Miller factor in [1, 2] whose rank is closest (scanning steps of
    0.025 and refusing to extrapolate beyond the scan).  The grid probes
    run on the {!Ir_exec} pool ([?jobs]); the selected match is
    independent of the job count.
    @raise Invalid_argument if [k_reduction] is outside (0, 1). *)
