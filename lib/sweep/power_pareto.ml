type row = {
  fraction : float;
  budget : float;
  outcome : Ir_core.Outcome.t;
  power : float;
}

type result = {
  activity : float;
  unconstrained : Ir_core.Outcome.t;
  unconstrained_power : float;
  rows : row list;
  seconds : float;
}

(* Denser near the pinch: the interesting part of the frontier is where
   the budget starts displacing the area-optimal witness, which on the
   baseline happens well below half the unconstrained spend. *)
let default_fractions =
  [ 0.05; 0.1; 0.15; 0.2; 0.25; 0.3; 0.4; 0.5; 0.6; 0.8; 1.0 ]

let run ?jobs ?(config = Table4.default_config) ?activity
    ?(fractions = default_fractions) () =
  List.iter
    (fun f ->
      if not (f > 0.0 && f <= 1.0) then
        invalid_arg "Power_pareto.run: fractions must lie in (0, 1]")
    fractions;
  let base = Table4.baseline_problem ?activity config in
  let t0 = Ir_exec.now () in
  (* Anchor: the area-only optimum and the watts its witness burns.
     Fractions of that spend make the sweep self-calibrating — the grid
     tracks the model constants instead of hard-coding watt values. *)
  let unconstrained, w = Ir_core.Rank_dp.compute_with_witness base in
  let p_inf =
    match w with Some w -> Ir_power.Power.of_witness base w | None -> 0.0
  in
  let rows =
    if p_inf <= 0.0 then
      (* Unassignable (or repeater-free) baseline: there is no spend to
         budget a fraction of, and a frontier over it would be all
         unassignable points. *)
      []
    else
      let budgets = List.map (fun f -> f *. p_inf) fractions in
      List.map2
        (fun fraction (pt : Ir_core.Rank_dp.power_point) ->
          {
            fraction;
            budget = pt.Ir_core.Rank_dp.pp_budget;
            outcome = pt.Ir_core.Rank_dp.pp_outcome;
            power = pt.Ir_core.Rank_dp.pp_power;
          })
        fractions
        (Ir_power.Power.pareto ?jobs base budgets)
  in
  {
    activity = Ir_assign.Problem.activity base;
    unconstrained;
    unconstrained_power = p_inf;
    rows;
    seconds = Ir_exec.now () -. t0;
  }

let monotone result =
  let rec walk = function
    | a :: (b :: _ as rest) ->
        a.outcome.Ir_core.Outcome.rank_wires
        <= b.outcome.Ir_core.Outcome.rank_wires
        && walk rest
    | _ -> true
  in
  (* Ascending fractions: the rank may only grow with the budget, and
     the full-spend point must recover the unconstrained rank (budget =
     the unconstrained witness's own power makes that witness
     feasible). *)
  walk result.rows
  && (match List.rev result.rows with
     | last :: _ when last.fraction = 1.0 ->
         last.outcome.Ir_core.Outcome.rank_wires
         = result.unconstrained.Ir_core.Outcome.rank_wires
     | _ -> true)
