type cell = {
  node : Ir_tech.Node.t;
  gates : int;
  outcome : Ir_core.Outcome.t;
  seconds : float;
}
[@@deriving show]

let default_matrix =
  [
    (Ir_tech.Node.N180, 1_000_000);
    (Ir_tech.Node.N130, 1_000_000);
    (Ir_tech.Node.N90, 4_000_000);
  ]

let stat_cells = Ir_obs.counter "sweep/cross_cells"
let span_cell_build = Ir_obs.span "sweep/cross_build"
let span_cell_search = Ir_obs.span "sweep/cross_search"

(* Matrix cells are independent (each builds its own design, WLD and
   problem — distinct designs share no tables), so every cell is its own
   scheduling group; the gate count is the weight, so the largest design
   (which dominates the matrix wall time) is dispatched first instead of
   possibly being claimed last by an otherwise-drained pool.  Results
   come back in matrix order.  The spans split the per-cell cost into
   WLD + architecture construction vs rank search.

   The matrix is typically {e narrower} than the pool (a handful of
   cells), so once the small cells drain, spare domains idle while the
   largest cell bisects alone.  The default [probe_fan] hands those
   spare domains to the boundary search as speculative probes: with
   [w] effective workers over [k] cells each search fans
   [max 1 (w / k)] wide.  That default is machine-coupled (the probe
   counters then depend on the core count); pass [~probe_fan:1] when
   counter totals must be machine-independent. *)
let run ?jobs ?probe_fan ?(bunch_size = 10000) ?structure
    ?(matrix = default_matrix) () =
  let probe_fan =
    match probe_fan with
    | Some f -> max 1 f
    | None ->
        let workers =
          let requested =
            match jobs with Some j -> j | None -> Ir_exec.default_jobs ()
          in
          min (max 1 requested) (Ir_exec.hardware_jobs ())
        in
        max 1 (workers / max 1 (List.length matrix))
  in
  Array.to_list
    (Ir_exec.parallel_group_map ?jobs
       ~weight:(fun (_, gates) -> gates)
       (fun (node, gates) ->
         Ir_obs.incr stat_cells;
         let design = Ir_core.Rank.baseline_design ~gates node in
         let t0 = Ir_exec.now () in
         let problem =
           Ir_obs.time span_cell_build @@ fun () ->
           Ir_core.Rank.problem_of_design ?structure ~bunch_size design
         in
         let outcome =
           Ir_obs.time span_cell_search @@ fun () ->
           Ir_core.Rank.compute ~probe_fan problem
         in
         { node; gates; outcome; seconds = Ir_exec.now () -. t0 })
       (Array.of_list matrix))
