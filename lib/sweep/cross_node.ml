type cell = {
  node : Ir_tech.Node.t;
  gates : int;
  outcome : Ir_core.Outcome.t;
  seconds : float;
}
[@@deriving show]

let default_matrix =
  [
    (Ir_tech.Node.N180, 1_000_000);
    (Ir_tech.Node.N130, 1_000_000);
    (Ir_tech.Node.N90, 4_000_000);
  ]

let stat_cells = Ir_obs.counter "sweep/cross_cells"
let span_cell_build = Ir_obs.span "sweep/cross_build"
let span_cell_search = Ir_obs.span "sweep/cross_search"

(* Matrix cells are independent (each builds its own design, WLD and
   problem), so they run on the Ir_exec pool; results come back in matrix
   order.  The spans split the per-cell cost into WLD + architecture
   construction vs rank search. *)
let run ?jobs ?(bunch_size = 10000) ?structure ?(matrix = default_matrix) ()
    =
  Ir_exec.parallel_list_map ?jobs
    (fun (node, gates) ->
      Ir_obs.incr stat_cells;
      let design = Ir_core.Rank.baseline_design ~gates node in
      let t0 = Ir_exec.now () in
      let problem =
        Ir_obs.time span_cell_build @@ fun () ->
        Ir_core.Rank.problem_of_design ?structure ~bunch_size design
      in
      let outcome =
        Ir_obs.time span_cell_search @@ fun () ->
        Ir_core.Rank.compute problem
      in
      { node; gates; outcome; seconds = Ir_exec.now () -. t0 })
    matrix
