type cell = {
  node : Ir_tech.Node.t;
  gates : int;
  outcome : Ir_core.Outcome.t;
  seconds : float;
}
[@@deriving show]

let default_matrix =
  [
    (Ir_tech.Node.N180, 1_000_000);
    (Ir_tech.Node.N130, 1_000_000);
    (Ir_tech.Node.N90, 4_000_000);
  ]

(* Matrix cells are independent (each builds its own design, WLD and
   problem), so they run on the Ir_exec pool; results come back in matrix
   order. *)
let run ?jobs ?(bunch_size = 10000) ?structure ?(matrix = default_matrix) ()
    =
  Ir_exec.parallel_list_map ?jobs
    (fun (node, gates) ->
      let design = Ir_core.Rank.baseline_design ~gates node in
      let t0 = Ir_exec.now () in
      let outcome = Ir_core.Rank.of_design ?structure ~bunch_size design in
      { node; gates; outcome; seconds = Ir_exec.now () -. t0 })
    matrix
