type cell = {
  node : Ir_tech.Node.t;
  gates : int;
  outcome : Ir_core.Outcome.t;
  seconds : float;
}
[@@deriving show]

let default_matrix =
  [
    (Ir_tech.Node.N180, 1_000_000);
    (Ir_tech.Node.N130, 1_000_000);
    (Ir_tech.Node.N90, 4_000_000);
  ]

let stat_cells = Ir_obs.counter "sweep/cross_cells"
let span_cell_build = Ir_obs.span "sweep/cross_build"
let span_cell_search = Ir_obs.span "sweep/cross_search"

(* Matrix cells build independent problems (each its own design and WLD —
   distinct designs share no tables), but their phase-A DPs now run as
   {e one} batched [Rank_grid.eval_batch] wavefront: the pool
   parallelizes across the cells' builders inside each boundary-pair
   level instead of across whole cells, so the largest design no longer
   bisects alone while drained workers idle.  Problem construction stays
   a per-cell pool task (heaviest design first).  Results come back in
   matrix order.  The spans split the matrix cost into WLD +
   architecture construction vs the batched rank search.

   The batch's phase B is a sequential hint chain, so the default
   [probe_fan] hands the whole pool to each boundary search as
   speculative probes.  That default is machine-coupled (the probe
   counters then depend on the core count); pass [~probe_fan:1] when
   counter totals must be machine-independent. *)
let run ?jobs ?probe_fan ?(bunch_size = 10000) ?structure
    ?(matrix = default_matrix) () =
  let probe_fan =
    match probe_fan with
    | Some f -> max 1 f
    | None ->
        let requested =
          match jobs with Some j -> j | None -> Ir_exec.default_jobs ()
        in
        min (max 1 requested) (Ir_exec.hardware_jobs ())
  in
  let built =
    Ir_exec.parallel_group_map ?jobs
      ~weight:(fun (_, gates) -> gates)
      (fun (node, gates) ->
        Ir_obs.incr stat_cells;
        let design = Ir_core.Rank.baseline_design ~gates node in
        let t0 = Ir_exec.now () in
        let problem =
          Ir_obs.time span_cell_build @@ fun () ->
          Ir_core.Rank.problem_of_design ?structure ~bunch_size design
        in
        [| (node, gates, problem, Ir_exec.now () -. t0) |])
      (Array.of_list matrix)
  in
  let built = Array.map (fun row -> row.(0)) built in
  let t0 = Ir_exec.now () in
  let outcomes =
    Ir_obs.time span_cell_search @@ fun () ->
    Ir_core.Rank_grid.eval_batch ?jobs ~probe_fan
      (Array.map (fun (_, _, p, _) -> p) built)
  in
  (* The search is collective (one wavefront), so each cell reports its
     own build time plus an even share of the batched search. *)
  let per =
    (Ir_exec.now () -. t0) /. float_of_int (max 1 (Array.length built))
  in
  Array.to_list
    (Array.mapi
       (fun i (node, gates, _, build_s) ->
         { node; gates; outcome = outcomes.(i); seconds = build_s +. per })
       built)
