type row = { param : float; outcome : Ir_core.Outcome.t; seconds : float }
[@@deriving show]

type sweep = {
  name : string;
  legend : string;
  rows : row list;
  paper : (float * float) list;
}

type config = {
  design : Ir_tech.Design.t;
  structure : Ir_ia.Arch.structure;
  bunch_size : int;
  target_model : Ir_delay.Target.t;
  algo : Ir_core.Rank.algo;
  activity : float;
  power_budget : float;
}

let default_config =
  {
    design = Ir_core.Rank.baseline_design Ir_tech.Node.N130;
    structure = Ir_ia.Arch.baseline_structure;
    bunch_size = 10000;
    target_model = Ir_delay.Target.Linear;
    algo = Ir_core.Rank.Dp;
    activity = Ir_assign.Problem.default_activity;
    power_budget = infinity;
  }

let with_design config design = { config with design }

let shared_wld config =
  let d = config.design in
  Ir_wld.Davis.generate
    (Ir_wld.Davis.params ~gates:d.Ir_tech.Design.gates
       ~rent_p:d.Ir_tech.Design.rent_p ~fan_out:d.Ir_tech.Design.fan_out ())

(* The config's baseline instance — the point every sweep column
   perturbs — built exactly as [run_defs] builds it (same WLD, same
   bunching, default materials), exposed so companion experiments (the
   power Pareto sweep) anchor on the grid's own base cell. *)
let baseline_problem ?activity config =
  let wld = shared_wld config in
  let pitch = Ir_tech.Design.effective_gate_pitch config.design in
  let bunches =
    Ir_wld.Coarsen.bunch ~bunch_size:config.bunch_size
      (Ir_wld.Dist.map_length (fun l -> l *. pitch) wld)
  in
  let arch =
    Ir_ia.Arch.make ~structure:config.structure
      ~materials:Ir_ia.Materials.default ~design:config.design ()
  in
  let activity = Option.value activity ~default:config.activity in
  Ir_assign.Problem.of_bunches ~activity ~target_model:config.target_model
    ~arch ~bunches ()

(* How one sweep point differs from the baseline.  [Rebuild] changes the
   electrical model and needs a full instance (on the shared bunches —
   the bunching depends only on the design's gate pitch, which every
   point of a config shares); [Rescale_clock] derives from the shared
   base instance via [Problem.with_clock], reusing the geometry tables.
   Budget points carry no per-point spec at all: the whole budget grid of
   a sweep is one table-sharing group answered by
   [Rank.compute_budgets] from a single phase-A build. *)
type spec =
  | Rebuild of Ir_ia.Materials.t
  | Rescale_clock of float

(* One sweep's points: independent per-point tasks, or a budget grid
   evaluated as one shared-tables group. *)
type points = Each of (float * spec) list | Budgets of float list

type def = {
  d_name : string;
  d_legend : string;
  d_paper : (float * float) list;
  d_points : points;
}

(* A schedulable work unit of a (possibly fused multi-sweep) run.  The
   pool parallelizes across tasks; table reuse — and boundary-hint
   threading — happens within one.  [Each] points are grouped into
   {e chains} of [chain_len] consecutive grid points: the rank boundary
   is monotone along a sweep column, so each point's search warm-starts
   from its chain predecessor's boundary ([?hint]).  The chain length is
   a fixed constant — never derived from the job count — so the probe
   and greedy-fill counter totals stay identical whatever the
   parallelism; it only bounds how much column-locality one worker
   exploits before the next chunk can start on another domain. *)
type task =
  | Chain of { sweep : int; pts : (int * float * spec) array }
  | Budget_group of { sweep : int; pts : (int * float) array }

let chain_len = 6

(* Which execution engine answers a run's points.  [Grid] batches the
   whole fused run through [Rank_grid.evaluate]: one level-synchronous
   wavefront builds every (materials, clock) plane's tables at once (the
   pool parallelizes {e inside} each level, not across points) and the
   budget column shares the base plane with the C column's base point.
   [Per_point] is the historical chain/budget-group scheduler, kept
   selectable so the bench can measure one against the other.  The DP
   results are byte-identical either way; non-DP algos have no batched
   kernel and always take the per-point path. *)
type engine = Per_point | Grid

let stat_points = Ir_obs.counter "sweep/points"
let span_point_build = Ir_obs.span "sweep/point_build"
let span_point_search = Ir_obs.span "sweep/point_search"
let span_grid = Ir_obs.span "sweep/grid"

let def_length d =
  match d.d_points with Each pts -> List.length pts | Budgets fs -> List.length fs

(* Relative cost, for heaviest-first dispatch: a chain is about one
   phase-A build per point; a budget group is one build plus cheap
   shared-tables searches. *)
let task_weight = function
  | Chain { pts; _ } -> Array.length pts
  | Budget_group _ -> 2

(* Scatter [(sweep, idx, row)] triples back into the defs' grid order. *)
let assemble defs results =
  let rows =
    Array.of_list (List.map (fun d -> Array.make (def_length d) None) defs)
  in
  Array.iter
    (Array.iter (fun (s, i, row) -> rows.(s).(i) <- Some row))
    results;
  List.mapi
    (fun s d ->
      {
        name = d.d_name;
        legend = d.d_legend;
        paper = d.d_paper;
        rows =
          Array.to_list
            (Array.map
               (function Some r -> r | None -> assert false)
               rows.(s));
      })
    defs

(* The grid engine: flatten every def's points into [Rank_grid.point]
   overrides of the shared base instance and evaluate them as one
   batched wavefront.  The wall time is inherently collective (planes
   are built level-by-level across the whole grid), so each row reports
   the run's cost amortized evenly — the same convention budget groups
   already use. *)
let run_grid ?jobs ?prune problem_of_materials defs =
  let cells =
    List.concat
      (List.mapi
         (fun sweep d ->
           match d.d_points with
           | Each pts ->
               List.mapi
                 (fun idx (param, spec) ->
                   let pt =
                     match spec with
                     | Rebuild materials ->
                         Ir_core.Rank_grid.point ~materials ()
                     | Rescale_clock clock ->
                         Ir_core.Rank_grid.point ~clock ()
                   in
                   (sweep, idx, param, pt))
                 pts
           | Budgets fs ->
               List.mapi
                 (fun idx f ->
                   (sweep, idx, f, Ir_core.Rank_grid.point ~fraction:f ()))
                 fs)
         defs)
  in
  let base = problem_of_materials Ir_ia.Materials.default in
  let points =
    Array.of_list (List.map (fun (_, _, _, pt) -> pt) cells)
  in
  Logs.debug (fun f ->
      f "table4: grid of %d cells" (Array.length points));
  let t0 = Ir_exec.now () in
  let grid =
    Ir_obs.time span_grid @@ fun () ->
    Ir_core.Rank_grid.evaluate ?jobs ?prune base points
  in
  let per =
    (Ir_exec.now () -. t0) /. float_of_int (max 1 (Array.length points))
  in
  let results =
    Array.of_list
      (List.mapi
         (fun i (sweep, idx, param, _) ->
           Ir_obs.incr stat_points;
           let outcome = Ir_core.Rank_grid.outcome grid i in
           (sweep, idx, { param; outcome; seconds = per }))
         cells)
  in
  assemble defs [| results |]

let run_defs ?jobs ?(engine = Grid) ?prune config defs =
  let wld = shared_wld config in
  (* Bunching depends only on the design (WLD + gate pitch), not on the
     materials, clock or budget a point varies — one bunching serves
     every task of the run. *)
  let pitch = Ir_tech.Design.effective_gate_pitch config.design in
  let bunches =
    Ir_wld.Coarsen.bunch ~bunch_size:config.bunch_size
      (Ir_wld.Dist.map_length (fun l -> l *. pitch) wld)
  in
  let problem_of_materials materials =
    let arch =
      Ir_ia.Arch.make ~structure:config.structure ~materials
        ~design:config.design ()
    in
    Ir_assign.Problem.of_bunches ~activity:config.activity
      ~power_budget:config.power_budget ~target_model:config.target_model
      ~arch ~bunches ()
  in
  match (engine, config.algo, config.power_budget < infinity) with
  | Grid, Ir_core.Rank.Dp, false ->
      run_grid ?jobs ?prune problem_of_materials defs
  (* A power-budgeted config takes the per-point scheduler: the grid
     wavefront's plane-sharing has no power-mode story yet, while the
     per-point path runs each (powered) instance through exactly the
     code the power tests exercise. *)
  | (Grid | Per_point), _, _ ->
  (* The shared base instance for rescale/budget tasks is immutable after
     build, so they may all read it concurrently; build it eagerly rather
     than behind a [lazy] (forcing a [lazy] from several domains would
     race). *)
  let base =
    if
      List.exists
        (fun d ->
          match d.d_points with
          | Budgets _ -> true
          | Each pts ->
              List.exists
                (fun (_, s) ->
                  match s with Rescale_clock _ -> true | Rebuild _ -> false)
                pts)
        defs
    then Some (problem_of_materials Ir_ia.Materials.default)
    else None
  in
  let tasks =
    List.concat
      (List.mapi
         (fun sweep d ->
           match d.d_points with
           | Each pts ->
               let pts =
                 Array.of_list
                   (List.mapi (fun idx (param, spec) -> (idx, param, spec)) pts)
               in
               let n = Array.length pts in
               List.init
                 ((n + chain_len - 1) / chain_len)
                 (fun chunk ->
                   let lo = chunk * chain_len in
                   Chain
                     {
                       sweep;
                       pts = Array.sub pts lo (min chain_len (n - lo));
                     })
           | Budgets fs ->
               [
                 Budget_group
                   {
                     sweep;
                     pts = Array.of_list (List.mapi (fun i f -> (i, f)) fs);
                   };
               ])
         defs)
  in
  let exec = function
    | Chain { sweep; pts } ->
        (* Consecutive grid points of one column: thread each point's
           boundary into the next search as its warm-start hint.  The
           hint chain restarts at every chunk boundary, so the hint a
           point receives depends only on the (fixed) chunking — not on
           which worker ran the previous chunk. *)
        let hint = ref None in
        Array.map
          (fun (idx, param, spec) ->
            Logs.debug (fun f -> f "table4: param %.4g" param);
            Ir_obs.incr stat_points;
            let problem =
              Ir_obs.time span_point_build @@ fun () ->
              match (spec, base) with
              | Rebuild materials, _ -> problem_of_materials materials
              | Rescale_clock clock, Some base ->
                  Ir_assign.Problem.with_clock base clock
              | Rescale_clock _, None -> assert false
            in
            let t0 = Ir_exec.now () in
            let outcome =
              Ir_obs.time span_point_search @@ fun () ->
              Ir_core.Rank.compute ~algo:config.algo ?hint:!hint problem
            in
            if outcome.Ir_core.Outcome.assignable then
              hint := Some outcome.Ir_core.Outcome.boundary_bunch;
            (sweep, idx, { param; outcome; seconds = Ir_exec.now () -. t0 }))
          pts
    | Budget_group { sweep; pts } ->
        Logs.debug (fun f ->
            f "table4: budget group of %d fractions" (Array.length pts));
        Array.iter (fun _ -> Ir_obs.incr stat_points) pts;
        let base =
          match base with Some b -> b | None -> assert false
        in
        let t0 = Ir_exec.now () in
        let outcomes =
          Ir_obs.time span_point_search @@ fun () ->
          Ir_core.Rank.compute_budgets ~algo:config.algo base
            (Array.to_list (Array.map snd pts))
        in
        (* The group's cost is shared by construction; report it
           amortized evenly across its rows. *)
        let per =
          (Ir_exec.now () -. t0) /. float_of_int (max 1 (Array.length pts))
        in
        Array.of_list
          (List.map2
             (fun (idx, param) outcome ->
               (sweep, idx, { param; outcome; seconds = per }))
             (Array.to_list pts) outcomes)
  in
  let results =
    Ir_exec.parallel_group_map ?jobs ~weight:task_weight exec
      (Array.of_list tasks)
  in
  assemble defs results

let grid_desc ~from ~until ~step =
  Ir_phys.Numeric.frange ~start:from ~stop:until ~step:(-.step)

let k_def () =
  {
    d_name = "K";
    d_legend = "ILD permittivity";
    d_paper = Paper_data.table4_k;
    d_points =
      Each
        (List.map
           (fun k -> (k, Rebuild (Ir_ia.Materials.v ~k ())))
           (grid_desc ~from:3.9 ~until:1.8 ~step:0.1));
  }

let m_def () =
  {
    d_name = "M";
    d_legend = "Miller coupling factor";
    d_paper = Paper_data.table4_m;
    d_points =
      Each
        (List.map
           (fun m -> (m, Rebuild (Ir_ia.Materials.v ~miller:m ())))
           (grid_desc ~from:2.0 ~until:1.0 ~step:0.05));
  }

let c_def () =
  {
    d_name = "C";
    d_legend = "target clock frequency (Hz)";
    d_paper = Paper_data.table4_c;
    d_points =
      Each
        (List.map
           (fun c -> (c, Rescale_clock c))
           (Ir_phys.Numeric.frange ~start:0.5e9 ~stop:1.7e9 ~step:0.1e9));
  }

let r_def () =
  {
    d_name = "R";
    d_legend = "max repeater fraction of die area";
    d_paper = Paper_data.table4_r;
    d_points = Budgets [ 0.1; 0.2; 0.3; 0.4; 0.5 ];
  }

let one ?jobs ?engine ?prune config d =
  List.hd (run_defs ?jobs ?engine ?prune config [ d ])

let k_sweep ?jobs ?engine ?prune ?(config = default_config) () =
  one ?jobs ?engine ?prune config (k_def ())

let m_sweep ?jobs ?engine ?prune ?(config = default_config) () =
  one ?jobs ?engine ?prune config (m_def ())

let c_sweep ?jobs ?engine ?prune ?(config = default_config) () =
  one ?jobs ?engine ?prune config (c_def ())

let r_sweep ?jobs ?engine ?prune ?(config = default_config) () =
  one ?jobs ?engine ?prune config (r_def ())

(* The four columns fused into one pool run: with per-sweep runs the pool
   drains between columns (the tail of one sweep idles workers the next
   could use); fusing exposes every task — or, on the grid engine, every
   plane of one wavefront — at once. *)
let all ?jobs ?engine ?prune ?(config = default_config) () =
  run_defs ?jobs ?engine ?prune config [ k_def (); m_def (); c_def (); r_def () ]

let normalized sweep =
  List.map
    (fun r -> (r.param, Ir_core.Outcome.normalized r.outcome))
    sweep.rows
