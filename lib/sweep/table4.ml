type row = { param : float; outcome : Ir_core.Outcome.t; seconds : float }
[@@deriving show]

type sweep = {
  name : string;
  legend : string;
  rows : row list;
  paper : (float * float) list;
}

type config = {
  design : Ir_tech.Design.t;
  structure : Ir_ia.Arch.structure;
  bunch_size : int;
  target_model : Ir_delay.Target.t;
  algo : Ir_core.Rank.algo;
}

let default_config =
  {
    design = Ir_core.Rank.baseline_design Ir_tech.Node.N130;
    structure = Ir_ia.Arch.baseline_structure;
    bunch_size = 10000;
    target_model = Ir_delay.Target.Linear;
    algo = Ir_core.Rank.Dp;
  }

let with_design config design = { config with design }

let shared_wld config =
  let d = config.design in
  Ir_wld.Davis.generate
    (Ir_wld.Davis.params ~gates:d.Ir_tech.Design.gates
       ~rent_p:d.Ir_tech.Design.rent_p ~fan_out:d.Ir_tech.Design.fan_out ())

(* How one sweep point differs from the baseline.  [Rebuild] changes the
   electrical model and needs a full instance; the rescales derive from a
   shared base instance via the [Problem] reuse paths, skipping the WLD
   bunching and (for the budget) every prefix table. *)
type spec =
  | Rebuild of { materials : Ir_ia.Materials.t; design : Ir_tech.Design.t }
  | Rescale_clock of float
  | Rescale_budget of float

let build_problem config ~materials ~design wld =
  let arch =
    Ir_ia.Arch.make ~structure:config.structure ~materials ~design ()
  in
  Ir_assign.Problem.make ~target_model:config.target_model
    ~bunch_size:config.bunch_size ~arch ~wld ()

let stat_points = Ir_obs.counter "sweep/points"
let span_point_build = Ir_obs.span "sweep/point_build"
let span_point_search = Ir_obs.span "sweep/point_search"

(* One sweep point: realize the instance for this parameter value, compute
   the rank, time the rank computation (wall clock; under parallel
   execution CPU time would aggregate every domain).  The spans split the
   per-point cost into instance realization vs rank search. *)
let point config wld ~base (param, spec) =
  Logs.debug (fun f -> f "table4: param %.4g" param);
  Ir_obs.incr stat_points;
  let problem =
    Ir_obs.time span_point_build @@ fun () ->
    match (spec, base) with
    | Rebuild { materials; design }, _ ->
        build_problem config ~materials ~design wld
    | Rescale_clock clock, Some base ->
        Ir_assign.Problem.with_clock base clock
    | Rescale_budget r, Some base ->
        Ir_assign.Problem.with_repeater_fraction base r
    | (Rescale_clock _ | Rescale_budget _), None -> assert false
  in
  let t0 = Ir_exec.now () in
  let outcome =
    Ir_obs.time span_point_search @@ fun () ->
    Ir_core.Rank.compute ~algo:config.algo problem
  in
  { param; outcome; seconds = Ir_exec.now () -. t0 }

let run ?jobs config ~name ~legend ~paper points =
  let wld = shared_wld config in
  (* The shared base instance for rescale points is immutable after build,
     so they may all read it concurrently; build it eagerly rather than
     behind a [lazy] (forcing a [lazy] from several domains would race). *)
  let base =
    if
      List.exists
        (fun (_, s) -> match s with Rebuild _ -> false | _ -> true)
        points
    then
      Some
        (build_problem config ~materials:Ir_ia.Materials.default
           ~design:config.design wld)
    else None
  in
  let rows =
    Array.to_list
      (Ir_exec.parallel_map ?jobs
         (point config wld ~base)
         (Array.of_list points))
  in
  { name; legend; rows; paper }

let grid_desc ~from ~until ~step =
  Ir_phys.Numeric.frange ~start:from ~stop:until ~step:(-.step)

let k_sweep ?jobs ?(config = default_config) () =
  let points =
    List.map
      (fun k ->
        (k, Rebuild { materials = Ir_ia.Materials.v ~k (); design = config.design }))
      (grid_desc ~from:3.9 ~until:1.8 ~step:0.1)
  in
  run ?jobs config ~name:"K" ~legend:"ILD permittivity"
    ~paper:Paper_data.table4_k points

let m_sweep ?jobs ?(config = default_config) () =
  let points =
    List.map
      (fun m ->
        ( m,
          Rebuild
            { materials = Ir_ia.Materials.v ~miller:m (); design = config.design }
        ))
      (grid_desc ~from:2.0 ~until:1.0 ~step:0.05)
  in
  run ?jobs config ~name:"M" ~legend:"Miller coupling factor"
    ~paper:Paper_data.table4_m points

let c_sweep ?jobs ?(config = default_config) () =
  let clocks =
    Ir_phys.Numeric.frange ~start:0.5e9 ~stop:1.7e9 ~step:0.1e9
  in
  let points = List.map (fun c -> (c, Rescale_clock c)) clocks in
  run ?jobs config ~name:"C" ~legend:"target clock frequency (Hz)"
    ~paper:Paper_data.table4_c points

let r_sweep ?jobs ?(config = default_config) () =
  let fractions = [ 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  let points = List.map (fun r -> (r, Rescale_budget r)) fractions in
  run ?jobs config ~name:"R" ~legend:"max repeater fraction of die area"
    ~paper:Paper_data.table4_r points

let all ?jobs ?(config = default_config) () =
  [ k_sweep ?jobs ~config (); m_sweep ?jobs ~config ();
    c_sweep ?jobs ~config (); r_sweep ?jobs ~config () ]

let normalized sweep =
  List.map
    (fun r -> (r.param, Ir_core.Outcome.normalized r.outcome))
    sweep.rows
