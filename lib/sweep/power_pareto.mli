(** The rank-vs-power Pareto surface at the Table 2 baseline: how much
    rank the design keeps as the repeater power budget tightens, with
    the area budget held at the baseline's.

    The sweep is self-calibrating: it first computes the area-only
    optimum and the watts its witness burns ({e the unconstrained
    power}), then evaluates the frontier at a grid of {e fractions} of
    that spend — so the exported table tracks the power model's
    calibration instead of hard-coding watt values.  All finite points
    are answered from one shared power-mode build
    ({!Ir_power.Power.pareto}); [?jobs] evaluates them concurrently with
    identical outcomes and jobs-invariant [power/*] counters. *)

type row = {
  fraction : float;  (** budget as a fraction of the unconstrained power *)
  budget : float;  (** the power budget, watts *)
  outcome : Ir_core.Outcome.t;
  power : float;  (** watts the point's witness actually burns *)
}

type result = {
  activity : float;  (** switching activity factor the model ran at *)
  unconstrained : Ir_core.Outcome.t;  (** the area-only optimum *)
  unconstrained_power : float;  (** watts its witness burns *)
  rows : row list;  (** one per fraction, ascending *)
  seconds : float;  (** wall time of the whole sweep *)
}

val default_fractions : float list
(** 0.05 … 1.0, denser below 0.5 where the frontier bends. *)

val run :
  ?jobs:int ->
  ?config:Table4.config ->
  ?activity:float ->
  ?fractions:float list ->
  unit ->
  result
(** Runs the sweep on [config]'s baseline instance
    ({!Table4.baseline_problem}).  [rows] is empty when the baseline is
    unassignable or repeater-free (no spend to budget a fraction of).
    @raise Invalid_argument on a fraction outside (0, 1]. *)

val monotone : result -> bool
(** The frontier's sanity contract, exposed for the bench gate: rank
    non-decreasing in the budget, and the fraction-1.0 point (budget =
    the unconstrained witness's own spend) recovering exactly the
    unconstrained rank. *)
