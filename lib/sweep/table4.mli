(** The paper's Table 4: variation of (normalized) rank with ILD
    permittivity K, Miller coupling factor M, target clock frequency C and
    maximum repeater fraction R, for a baseline design.

    Each sweep varies one parameter over the paper's exact grid while
    holding the Table 2 baseline for the rest, recomputing the optimal
    rank at every point.  The WLD is generated — and bunched — once per
    config and shared across every point (bunching depends only on the
    design's gate pitch, not on the materials, clock or budget a point
    varies).

    By default ({!Grid}, DP algo) the whole run is dispatched as one
    batch through {!Ir_core.Rank_grid}: every (materials, clock) plane's
    phase-A tables are built in a single level-synchronous wavefront —
    the {!Ir_exec} domain pool ([?jobs], default
    {!Ir_exec.default_jobs}) parallelizes {e inside} each level, not
    across points — and the R column, the C column's base point and any
    base-valued K/M point all share one resident plane.

    On {!Per_point} (or any non-DP algo) work is instead scheduled in
    {e table-sharing groups}: the K and M points rebuild their own
    instance (on the shared bunches), the C points derive from a shared
    base instance via {!Ir_assign.Problem.with_clock}, and the whole R
    column is a single group answered by
    {!Ir_core.Rank.compute_budgets} from {e one} phase-A table build
    (the repeater budget is only a query-time pruning bound).  Workers
    parallelize across groups and reuse tables within a group.

    Either way {!all} fuses the four columns into one run, rows come
    back in grid order with identical ranks whatever the job count, and
    {!Ir_obs} counters are jobs-invariant, so sequential and parallel
    runs produce byte-identical tables (only the [seconds] timings
    differ; batched rows report their batch's cost amortized evenly).
    The two engines agree rank-for-rank — the grid kernel runs the same
    DP code — which the bench's [grid] leg measures and the sweep tests
    assert. *)

type row = {
  param : float;
  outcome : Ir_core.Outcome.t;
  seconds : float;  (** wall time of this rank computation *)
}
[@@deriving show]

type sweep = {
  name : string;  (** e.g. ["K"] *)
  legend : string;  (** e.g. ["ILD permittivity"] *)
  rows : row list;
  paper : (float * float) list;  (** published values for this column *)
}

type config = {
  design : Ir_tech.Design.t;
  structure : Ir_ia.Arch.structure;
  bunch_size : int;
  target_model : Ir_delay.Target.t;
  algo : Ir_core.Rank.algo;
  activity : float;
      (** switching activity factor of the repeater power model *)
  power_budget : float;
      (** repeater power budget, watts; [infinity] (the default) keeps
          every sweep on the historical area-only paths.  A finite
          budget runs each point in power mode on the per-point
          scheduler (the grid wavefront has no power-mode plane sharing)
          and requires the DP algorithm. *)
}

val default_config : config
(** The paper's Table 2 baseline: 130nm, 1M gates, p = 0.6, 500 MHz,
    repeater fraction 0.4, bunch size 10000, linear targets, optimal DP,
    default activity, unconstrained power. *)

val with_design : config -> Ir_tech.Design.t -> config

val baseline_problem : ?activity:float -> config -> Ir_assign.Problem.t
(** The config's baseline assignment instance (default materials, the
    config's own WLD and bunching) — the base cell every sweep column
    perturbs, exposed so companion experiments such as
    {!Power_pareto.run} anchor on exactly the grid's base point.
    [?activity] sets the power model's switching activity factor
    (default {!Ir_assign.Problem.default_activity}). *)

type engine =
  | Per_point  (** historical chain/budget-group scheduler *)
  | Grid
      (** one {!Ir_core.Rank_grid} wavefront for the whole run
          (default; DP only — non-DP algos fall back to {!Per_point}) *)

(** Every sweep entry point takes [?prune] (default false):
    {!Ir_core.Rank_grid.evaluate}'s admissible-bound pruning, grid
    engine only (the per-point fallback ignores it).  Results are
    byte-identical either way — the flag only moves work counters. *)

val k_sweep :
  ?jobs:int -> ?engine:engine -> ?prune:bool -> ?config:config -> unit -> sweep
(** ILD permittivity from 3.9 down to 1.8 in steps of 0.1 (Table 4 K). *)

val m_sweep :
  ?jobs:int -> ?engine:engine -> ?prune:bool -> ?config:config -> unit -> sweep
(** Miller factor from 2.0 down to 1.0 in steps of 0.05 (Table 4 M). *)

val c_sweep :
  ?jobs:int -> ?engine:engine -> ?prune:bool -> ?config:config -> unit -> sweep
(** Clock from 0.5 GHz to 1.7 GHz in steps of 0.1 GHz (Table 4 C). *)

val r_sweep :
  ?jobs:int -> ?engine:engine -> ?prune:bool -> ?config:config -> unit -> sweep
(** Repeater fraction from 0.1 to 0.5 in steps of 0.1 (Table 4 R). *)

val all :
  ?jobs:int ->
  ?engine:engine ->
  ?prune:bool ->
  ?config:config ->
  unit ->
  sweep list
(** The four columns in the paper's order: K, M, C, R — fused into a
    single batch (one grid wavefront, or one pool run of per-point
    groups) so the tail of one column cannot idle workers the next
    could use. *)

val normalized : sweep -> (float * float) list
(** (param, normalized rank) pairs of the measured rows. *)
