(** Artifact export: write experiment results to a directory.

    The bench harness prints its tables; this module also persists them —
    one CSV per Table 4 column plus a cross-node CSV and a plain-text
    manifest — so downstream plotting or regression-diffing does not have
    to re-run hour-scale sweeps.  Output directories are created
    recursively as needed; existing files are overwritten. *)

val ensure_dir : string -> (unit, string) result
(** Creates [dir] and any missing parents ([mkdir -p]); tolerates a
    concurrent creator.  [Error] names the path when a non-directory is
    in the way. *)

val sweep_csv_path : dir:string -> Table4.sweep -> string
(** The file a sweep will be written to: [<dir>/table4_<name>.csv].  The
    sweep name is lowercased, so names differing only in case collide —
    {!write_sweeps} rejects such batches. *)

val write_sweeps : dir:string -> Table4.sweep list -> (string list, string) result
(** Writes each sweep's paper-vs-measured CSV; returns the written paths
    (or the first filesystem error).  Fails up front, before writing
    anything, if two sweeps in the batch would export to the same file
    (see {!sweep_csv_path}). *)

val write_cross : dir:string -> Cross_node.cell list -> (string, string) result
(** Writes [<dir>/cross_node.csv]. *)

val power_pareto_csv_path : dir:string -> string
(** The file {!write_power_pareto} writes: [<dir>/power_pareto.csv]. *)

val write_power_pareto :
  dir:string -> Power_pareto.result -> (string, string) result
(** Writes the rank-vs-power frontier as one CSV row per budget point
    (fraction, budget and witness watts, rank, normalized rank,
    boundary, flags).  The committed golden copy under [results/] is
    what CI diffs and uploads. *)

val write_manifest :
  dir:string -> entries:(string * string) list -> (string, string) result
(** Writes [<dir>/MANIFEST.txt] with one [key: value] line per entry
    (e.g. key experiment ids, value one-line summaries). *)

val bench_json_path : dir:string -> string
(** The file {!write_bench_json} writes: [<dir>/BENCH_sweeps.json]. *)

type parallel_report = {
  requested_jobs : int;  (** the [?jobs] the parallel leg asked for *)
  effective_jobs : int;  (** workers after the {!Ir_exec} hardware clamp *)
  jobs1_seconds : float;
  jobsn_seconds : float option;
      (** [None] when the parallel leg was skipped because the hardware
          has a single core — rerunning identical work at
          [effective_jobs = 1] can only measure its own overhead *)
}
(** Scaling summary of the two table4 legs, exported under ["parallel"]
    with a derived ["speedup"] and a machine-readable
    ["parallel_regression"] flag: [true] when the parallel leg was slower
    than the sequential one (the condition the bench also warns about on
    stdout), [false] when it was not, and the string
    ["skipped_single_core"] when [jobsn_seconds = None] — a single-core
    box previously reported a {e false} [true] here. *)

type scaling_report = {
  max_jobs : int;  (** {!Ir_exec.hardware_jobs} at bench time *)
  points : (int * float) list;
      (** [(jobs, seconds)] per measured worker count, ascending,
          starting at the jobs=1 baseline *)
}
(** The [--scaling] bench mode's jobs=1..ncores curve, exported under
    ["scaling"] (schema 6).  Export derives the rest from the raw
    timings: per-point ["speedup"] (jobs1 seconds over the point's) and
    ["parallel_regression"] (point slower than jobs=1), a ["knee_jobs"]
    marginal-gain knee (the last point whose speedup improves on its
    predecessor's by at least 5%), and an overall ["status"] — ["ok"],
    ["regression"] (some jobs>1 point is slower than jobs=1), or
    ["skipped_single_core"] (no jobs>1 point exists to measure). *)

type serving_report = {
  trace_requests : int;  (** requests replayed against the query server *)
  distinct_queries : int;  (** distinct fingerprints in the trace *)
  hit_rate : float;  (** cache hits / requests over the whole trace *)
  p50_ms : float;  (** request latency percentiles, milliseconds *)
  p95_ms : float;
  p99_ms : float;
  computes : int;  (** actual rank computations the trace triggered *)
  table_builds : int;  (** warm-table families built for it *)
  counters_match : bool;
      (** the [serve]/[serve_cache] counter identity between the jobs=1
          and jobs=N replays — the serving layer's determinism check *)
}
(** The bench's serving leg, exported under ["serving"] (since schema 5):
    a query trace replayed against an in-process server, summarized by
    hit rate, latency percentiles and the counter-identity verdict. *)

type grid_report = {
  grid_points : int;  (** cells the sweep grid evaluated *)
  grid_planes : int;  (** distinct (materials, clock) planes it built *)
  per_point_seconds : float;  (** Table4 wall time, {!Table4.Per_point} *)
  grid_seconds : float;  (** same workload, same jobs, {!Table4.Grid} *)
  grid_identical : bool;
      (** rank / exact-flag identity between the two engines, and
          between the grid leg's jobs=1 and jobs=N runs *)
  grid_counters_match : bool;
      (** [grid/*] (and all other) counter identity between the grid
          leg's jobs=1 and jobs=N runs — the counters are structural *)
  perturb_recomputed : int;
      (** cells the perturb micro-leg re-evaluated for a one-parameter
          delta *)
  perturb_grid_cells : int;
      (** cells a full re-evaluation of that micro grid would touch —
          perturb must recompute strictly fewer *)
  perturb_seconds : float;  (** wall time of the incremental path *)
  full_eval_seconds : float;  (** wall time of the full micro-grid build *)
}
(** The grid-engine leg, exported under ["grid"] (schema 8): the same
    Table-4 sweep run through the historical per-point scheduler and
    through the {!Ir_core.Rank_grid} wavefront at the same worker count,
    plus a perturb micro-leg on a small grid.  Export derives a
    ["speedup"] (per-point seconds over grid seconds — reported, never
    gated) and a ["status"] the CI gate keys on: ["ok"], ["mismatch"]
    (the engines, or the grid's own jobs=1/jobs=N runs, disagree on a
    rank or exact flag), ["counters_mismatch"] (the structural [grid/*]
    counters varied with the worker count), or
    ["perturb_not_incremental"] ({!Ir_core.Rank_grid.perturb} recomputed
    as many cells as a full rebuild). *)

val grid_status : grid_report -> string
(** The derived ["status"] string described above — exposed so the bench
    harness can print and gate on the same verdict the JSON exports. *)

type pruning_report = {
  pruning_points : int;  (** Table-4 cells both legs evaluated *)
  baseline_seconds : float;  (** grid leg, pruning off *)
  pruned_seconds : float;  (** same workload, same jobs, [~prune:true] *)
  front_inserts_baseline : int;  (** [rank_dp/pareto_inserts], baseline *)
  front_inserts_pruned : int;
  witness_probes_baseline : int;  (** [rank_dp/witness_probes], baseline *)
  witness_probes_pruned : int;
  states_pruned : int;  (** [bounds/states_pruned], pruned leg *)
  oracle_calls_saved : int;  (** [bounds/oracle_calls_saved], pruned leg *)
  incumbent_updates : int;  (** [bounds/incumbent_updates], pruned leg *)
  memo_preempted : int;  (** [bounds/memo_preempted], pruned leg *)
  pruning_identical : bool;
      (** per-cell rank / exact-flag / payload identity between the legs *)
  pruning_counters_match : bool;
      (** [bounds/*] identity between the pruned leg's jobs=1 and
          jobs=N runs — published-at-barriers makes them structural *)
}
(** The admissible-bound pruning leg, exported under ["pruning"]
    (schema 9): the Table-4 grid run unpruned and with [~prune:true] at
    the same worker count.  Export derives ["front_insert_reduction"] /
    ["witness_probe_reduction"] (fractions of baseline work the bound
    eliminated — reported, never gated) and a ["status"] the CI gate
    keys on: ["ok"], ["mismatch"] (ε=0 byte-identity broken) or
    ["counters_mismatch"] ([bounds/*] varied with the worker count). *)

val pruning_status : pruning_report -> string
(** The derived ["status"] string described above — exposed so the bench
    harness can print and gate on the same verdict the JSON exports. *)

type power_report = {
  power_points : int;  (** budget points in the measured frontier *)
  unconstrained_power : float;
      (** watts the area-only optimum's witness burns — the sweep's
          self-calibration anchor *)
  power_identity_ok : bool;
      (** infinite-budget runs over the full Table-4 corpus were
          byte-identical — ranks, exact flags and every counter — to
          power-free runs (the soundness anchor of the subsystem) *)
  power_counters_match : bool;
      (** [power/*] (and all other) counter identity between the
          frontier's jobs=1 and jobs=N evaluations *)
  power_engines_agree : bool;
      (** the sequential ({!Ir_core.Rank_dp.compute_pareto_power}) and
          grid ({!Ir_core.Rank_grid.compute_pareto_power}) engines
          returned identical frontiers *)
  power_monotone : bool;  (** {!Power_pareto.monotone} on the frontier *)
  power_seconds : float;  (** wall time of the frontier sweep *)
}
(** The power-budget leg, exported under ["power"] (schema 10): the
    {!Power_pareto} frontier on the Table 2 baseline plus the
    subsystem's four contracts.  Export derives a ["status"] the CI gate
    keys on: ["ok"], ["identity_broken"] (a power-free and an
    infinite-budget run diverged somewhere on the Table-4 corpus),
    ["counters_mismatch"] ([power/*] varied with the worker count),
    ["engine_mismatch"] (sequential vs grid frontier disagreement) or
    ["frontier_not_monotone"].  The frontier's shape is reported in
    [results/power_pareto.csv], never gated. *)

val power_status : power_report -> string
(** The derived ["status"] string described above — exposed so the bench
    harness can print and gate on the same verdict the JSON exports. *)

type serving_sharded_report = {
  shards : int;  (** worker processes in the fleet *)
  clients : int;  (** concurrent storm client threads *)
  storm_requests : int;  (** total requests the storm issued *)
  distinct_families : int;
      (** distinct warm-table families among the storm's DP queries *)
  sh_distinct_queries : int;  (** distinct fingerprints in the storm *)
  sh_p50_ms : float;  (** storm request latency percentiles, milliseconds *)
  sh_p95_ms : float;
  sh_p99_ms : float;
  shed_rate : float;  (** [Overloaded] answers / storm requests *)
  coalesce_rate : float;  (** fleet-wide [serve/coalesced] / [serve/requests] *)
  table_builds_per_shard : int list;
      (** each shard's [serve/table_builds] after the storm — their sum
          must not exceed [distinct_families] (family-affinity routing) *)
  byte_identical : bool;
      (** post-storm: every distinct query re-asked through the router
          matched a local cold compute byte-for-byte *)
}
(** The sharded load-generator leg, exported under ["serving_sharded"]
    (since schema 7): a zipf-skewed client storm against a forked shard
    fleet behind TCP.  Export derives a ["status"] the CI gate keys on:
    ["ok"], ["mismatch"] (byte-identity broken),
    ["duplicate_family_builds"] (some family's tables were built by more
    than one shard), or ["shed_exceeded"] (more than half the storm was
    shed). *)

val sharded_status : serving_sharded_report -> string
(** The derived ["status"] string described above — exposed so the bench
    harness can print and gate on the same verdict the JSON exports. *)

val write_bench_json :
  dir:string ->
  jobs:int ->
  timings:(string * float) list ->
  ?metrics:Ir_obs.snapshot ->
  ?kernel:(string * float) list ->
  ?parallel:parallel_report ->
  ?scaling:scaling_report ->
  ?grid:grid_report ->
  ?pruning:pruning_report ->
  ?power:power_report ->
  ?serving:serving_report ->
  ?serving_sharded:serving_sharded_report ->
  sweeps:Table4.sweep list ->
  cross:Cross_node.cell list ->
  unit ->
  (string, string) result
(** Writes the machine-readable sweep benchmark
    ([<dir>/BENCH_sweeps.json], schema [ia-rank/bench-sweeps/10]) used to
    track the perf trajectory across PRs: the named wall-clock [timings]
    (e.g. the sequential and parallel table4 legs), an optional [kernel]
    timings object (flat name/seconds pairs from the kernel
    microbenchmarks — front insert cost, a timed phase-A build, the two
    table4 legs), an optional [metrics] object (an {!Ir_obs.snapshot}
    rendered as [{"counters": {name: int}, "gauges": {name: int},
    "spans": {name: {"calls", "seconds"}}}] — since schema 4 the counters
    include the phase-B probe economics: [suffix_fit/hits]/[misses],
    [rank_dp/hinted_searches], [rank_dp/hint_saved_probes],
    [rank_dp/probe_fan_rounds] and [greedy_fill/fast_fails]), an optional
    [parallel] two-leg report (see {!parallel_report}), an optional
    [scaling] jobs curve (see {!scaling_report}), an optional [grid]
    engine report (see {!grid_report}), an optional [pruning] leg
    (see {!pruning_report}, since schema 9), an optional [power] leg
    (see {!power_report}, since schema 10), every Table 4 row
    (param, normalized rank, rank wires, exactness, per-point seconds)
    and the cross-node cells.  [jobs] records the worker count the
    parallel leg requested. *)
