type result = {
  k_reduction : float;
  k_rank : float;
  m_reduction : float;
  m_rank : float;
}
[@@deriving show]

let rank_at config ~materials ~design =
  let arch =
    Ir_ia.Arch.make ~structure:config.Table4.structure ~materials ~design ()
  in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.Ir_tech.Design.rent_p
         ~fan_out:design.Ir_tech.Design.fan_out ())
  in
  let problem =
    Ir_assign.Problem.make ~target_model:config.Table4.target_model
      ~bunch_size:config.Table4.bunch_size ~arch ~wld ()
  in
  Ir_core.Outcome.normalized
    (Ir_core.Rank.compute ~algo:config.Table4.algo problem)

let matching_miller_reduction ?jobs ?(config = Table4.default_config)
    ~k_reduction () =
  if not (k_reduction > 0.0 && k_reduction < 1.0) then
    invalid_arg "Equivalence: k_reduction must lie in (0, 1)";
  let design = config.Table4.design in
  let k_base = Ir_phys.Const.k_sio2 in
  let k = k_base *. (1.0 -. k_reduction) in
  let k_rank = rank_at config ~materials:(Ir_ia.Materials.v ~k ()) ~design in
  (* Scan Miller factors from 2.0 down to 1.0 and keep the closest rank.
     The probes are independent rank computations, so they run on the
     Ir_exec pool; the winner is picked by a sequential fold in grid
     order, which preserves the sequential tie-breaking exactly. *)
  let grid = Ir_phys.Numeric.frange ~start:2.0 ~stop:1.0 ~step:(-0.025) in
  let probes =
    Ir_exec.parallel_list_map ?jobs
      (fun m ->
        (m, rank_at config ~materials:(Ir_ia.Materials.v ~miller:m ()) ~design))
      grid
  in
  let best =
    List.fold_left
      (fun acc (m, r) ->
        let d = Float.abs (r -. k_rank) in
        match acc with
        | Some (_, _, best_d) when best_d <= d -> acc
        | _ -> Some (m, r, d))
      None probes
  in
  match best with
  | None -> assert false
  | Some (m, m_rank, _) ->
      { k_reduction; k_rank; m_reduction = (2.0 -. m) /. 2.0; m_rank }
