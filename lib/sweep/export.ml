let rec ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else
      Error
        (Printf.sprintf
           "%s exists and is not a directory (remove it or pick another \
            output directory)"
           dir)
  else
    let parent = Filename.dirname dir in
    (* [dirname] is a fixpoint at roots ("/", "."), which always exist,
       so the recursion terminates there. *)
    match if parent = dir then Ok () else ensure_dir parent with
    | Error _ as e -> e
    | Ok () -> (
        match Sys.mkdir dir 0o755 with
        | () -> Ok ()
        | exception Sys_error msg ->
            (* Another process may have created it between the existence
               check and the mkdir; that is success, not an error. *)
            if Sys.file_exists dir && Sys.is_directory dir then Ok ()
            else Error msg)

let write_file path contents =
  match
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc contents)
  with
  | () -> Ok path
  | exception Sys_error msg -> Error msg

let sweep_csv_path ~dir (sweep : Table4.sweep) =
  Filename.concat dir
    (Printf.sprintf "table4_%s.csv" (String.lowercase_ascii sweep.name))

(* [sweep_csv_path] lowercases the sweep name, so distinct sweeps can
   collide on one file ("K" and "k" both map to table4_k.csv) — detect
   that up front instead of silently overwriting the earlier sweep. *)
let sweep_path_collision ~dir sweeps =
  let seen = Hashtbl.create 8 in
  List.find_map
    (fun (s : Table4.sweep) ->
      let path = sweep_csv_path ~dir s in
      match Hashtbl.find_opt seen path with
      | Some earlier when earlier <> s.name ->
          Some
            (Printf.sprintf
               "sweeps %S and %S both export to %s; rename one" earlier
               s.name path)
      | _ ->
          Hashtbl.replace seen path s.name;
          None)
    sweeps

let write_sweeps ~dir sweeps =
  match sweep_path_collision ~dir sweeps with
  | Some msg -> Error msg
  | None -> (
      match ensure_dir dir with
      | Error _ as e -> e
      | Ok () ->
          let rec loop acc = function
            | [] -> Ok (List.rev acc)
            | sweep :: rest -> (
                let buf = Buffer.create 1024 in
                Report.sweep_csv sweep buf;
                match
                  write_file (sweep_csv_path ~dir sweep)
                    (Buffer.contents buf)
                with
                | Ok path -> loop (path :: acc) rest
                | Error _ as e -> e)
          in
          loop [] sweeps)

let power_pareto_csv_path ~dir = Filename.concat dir "power_pareto.csv"

let write_power_pareto ~dir (r : Power_pareto.result) =
  match ensure_dir dir with
  | Error msg -> Error msg
  | Ok () ->
      let buf = Buffer.create 1024 in
      Report.csv
        ~header:
          [
            "fraction"; "budget_watts"; "power_watts"; "rank_wires";
            "total_wires"; "normalized"; "boundary_bunch"; "assignable";
            "exact";
          ]
        ~rows:
          (List.map
             (fun (row : Power_pareto.row) ->
               let o = row.outcome in
               [
                 Printf.sprintf "%.4f" row.fraction;
                 (* %.6e keeps the golden file stable and readable; the
                    byte-exact frontier lives in the tests, not here. *)
                 Printf.sprintf "%.6e" row.budget;
                 Printf.sprintf "%.6e" row.power;
                 string_of_int o.Ir_core.Outcome.rank_wires;
                 string_of_int o.Ir_core.Outcome.total_wires;
                 Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
                 string_of_int o.Ir_core.Outcome.boundary_bunch;
                 (if o.Ir_core.Outcome.assignable then "true" else "false");
                 (if o.Ir_core.Outcome.exact then "true" else "false");
               ])
             r.Power_pareto.rows)
        buf;
      write_file (power_pareto_csv_path ~dir) (Buffer.contents buf)

let write_cross ~dir cells =
  match ensure_dir dir with
  | Error msg -> Error msg
  | Ok () ->
      let buf = Buffer.create 512 in
      Report.csv
        ~header:[ "node"; "gates"; "normalized"; "rank_wires"; "total" ]
        ~rows:
          (List.map
             (fun (c : Cross_node.cell) ->
               [
                 Ir_tech.Node.name c.node;
                 string_of_int c.gates;
                 Printf.sprintf "%.6f" (Ir_core.Outcome.normalized c.outcome);
                 string_of_int c.outcome.Ir_core.Outcome.rank_wires;
                 string_of_int c.outcome.Ir_core.Outcome.total_wires;
               ])
             cells)
        buf;
      write_file (Filename.concat dir "cross_node.csv") (Buffer.contents buf)

(* ---- machine-readable sweep benchmark -------------------------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* %.17g round-trips every finite float; ranks and wall times are always
   finite here. *)
let json_float x = Printf.sprintf "%.17g" x

let json_list f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let json_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let bench_json_path ~dir = Filename.concat dir "BENCH_sweeps.json"

let json_metrics (snap : Ir_obs.snapshot) =
  json_obj
    [
      ( "counters",
        json_obj
          (List.map
             (fun (name, v) -> (name, string_of_int v))
             snap.Ir_obs.counters) );
      ( "gauges",
        json_obj
          (List.map
             (fun (name, v) -> (name, string_of_int v))
             snap.Ir_obs.gauges) );
      ( "spans",
        json_obj
          (List.map
             (fun (name, { Ir_obs.calls; seconds }) ->
               ( name,
                 json_obj
                   [
                     ("calls", string_of_int calls);
                     ("seconds", json_float seconds);
                   ] ))
             snap.Ir_obs.spans) );
    ]

type parallel_report = {
  requested_jobs : int;
  effective_jobs : int;
  jobs1_seconds : float;
  jobsn_seconds : float option;
}

let json_parallel p =
  json_obj
    ([
       ("requested_jobs", string_of_int p.requested_jobs);
       ("effective_jobs", string_of_int p.effective_jobs);
       ("jobs1_seconds", json_float p.jobs1_seconds);
     ]
    @
    match p.jobsn_seconds with
    | None ->
        (* Single-core box: the parallel leg would have rerun identical
           work at effective_jobs = 1 and flagged its own overhead as a
           "regression".  Schema 6 reports the skip explicitly instead
           of a false positive. *)
        [ ("parallel_regression", json_string "skipped_single_core") ]
    | Some jn ->
        [
          ("jobsN_seconds", json_float jn);
          ("speedup", json_float (p.jobs1_seconds /. Float.max 1e-9 jn));
          (* The machine-readable version of the bench's stdout warning:
             the parallel table4 leg took longer than the sequential one,
             i.e. parallelism lost to its own overhead on this
             machine/workload. *)
          ( "parallel_regression",
            if jn > p.jobs1_seconds then "true" else "false" );
        ])

type scaling_report = {
  max_jobs : int;
  points : (int * float) list;
}

(* Marginal-gain knee: walk the ascending-jobs curve and keep the last
   point whose speedup still improves on the previous point's by >= 5% —
   past it, extra workers buy nothing worth their GC synchronization. *)
let scaling_knee ~jobs1 points =
  let speedup s = jobs1 /. Float.max 1e-9 s in
  let rec walk knee prev = function
    | [] -> knee
    | (j, s) :: rest ->
        if speedup s >= 1.05 *. speedup prev then walk j s rest
        else walk knee prev rest
  in
  match points with
  | [] -> 1
  | (j0, s0) :: rest -> walk j0 s0 rest

let json_scaling sc =
  match List.assoc_opt 1 sc.points with
  | None -> json_string "missing_jobs1_point"
  | Some jobs1 ->
      let point (j, s) =
        json_obj
          ([
             ("jobs", string_of_int j);
             ("seconds", json_float s);
             ("speedup", json_float (jobs1 /. Float.max 1e-9 s));
           ]
          @
          if j = 1 then []
          else
            [ ("parallel_regression", if s > jobs1 then "true" else "false") ])
      in
      let multi = List.filter (fun (j, _) -> j > 1) sc.points in
      let status =
        if multi = [] then "skipped_single_core"
        else if List.exists (fun (_, s) -> s > jobs1) multi then "regression"
        else "ok"
      in
      json_obj
        [
          ("max_jobs", string_of_int sc.max_jobs);
          ("status", json_string status);
          ("knee_jobs", string_of_int (scaling_knee ~jobs1 sc.points));
          ("points", json_list point sc.points);
        ]

type serving_report = {
  trace_requests : int;
  distinct_queries : int;
  hit_rate : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  computes : int;
  table_builds : int;
  counters_match : bool;
}

let json_serving s =
  json_obj
    [
      ("trace_requests", string_of_int s.trace_requests);
      ("distinct_queries", string_of_int s.distinct_queries);
      ("hit_rate", json_float s.hit_rate);
      ("p50_ms", json_float s.p50_ms);
      ("p95_ms", json_float s.p95_ms);
      ("p99_ms", json_float s.p99_ms);
      ("computes", string_of_int s.computes);
      ("table_builds", string_of_int s.table_builds);
      ("counters_match", if s.counters_match then "true" else "false");
    ]

type grid_report = {
  grid_points : int;
  grid_planes : int;
  per_point_seconds : float;
  grid_seconds : float;
  grid_identical : bool;
  grid_counters_match : bool;
  perturb_recomputed : int;
  perturb_grid_cells : int;
  perturb_seconds : float;
  full_eval_seconds : float;
}

(* The CI gate reads [status]; anything but "ok" fails the build.  The
   conditions are the grid engine's contracts — byte-identity with the
   per-point path, jobs-invariant structural counters, and perturb
   touching strictly fewer cells than a full re-evaluation.  The
   measured speedup is reported but never gated: it is hardware truth,
   not a correctness property. *)
let grid_status g =
  if not g.grid_identical then "mismatch"
  else if not g.grid_counters_match then "counters_mismatch"
  else if g.perturb_recomputed >= g.perturb_grid_cells then
    "perturb_not_incremental"
  else "ok"

let json_grid g =
  json_obj
    [
      ("status", json_string (grid_status g));
      ("points", string_of_int g.grid_points);
      ("planes", string_of_int g.grid_planes);
      ("per_point_seconds", json_float g.per_point_seconds);
      ("grid_seconds", json_float g.grid_seconds);
      ( "speedup",
        json_float (g.per_point_seconds /. Float.max 1e-9 g.grid_seconds) );
      ("identical", if g.grid_identical then "true" else "false");
      ("counters_match", if g.grid_counters_match then "true" else "false");
      ( "perturb",
        json_obj
          [
            ("recomputed_cells", string_of_int g.perturb_recomputed);
            ("grid_cells", string_of_int g.perturb_grid_cells);
            ("perturb_seconds", json_float g.perturb_seconds);
            ("full_eval_seconds", json_float g.full_eval_seconds);
          ] );
    ]

type pruning_report = {
  pruning_points : int;
  baseline_seconds : float;
  pruned_seconds : float;
  front_inserts_baseline : int;
  front_inserts_pruned : int;
  witness_probes_baseline : int;
  witness_probes_pruned : int;
  states_pruned : int;
  oracle_calls_saved : int;
  incumbent_updates : int;
  memo_preempted : int;
  pruning_identical : bool;
  pruning_counters_match : bool;
}

(* The CI gate reads [status]; anything but "ok" fails the build.  The
   pruning layer's contracts: at ε=0 the pruned grid must answer every
   Table-4 cell byte-identically to the unpruned one, and the bounds/*
   tallies must not depend on the worker count (the incumbent is only
   published at sequential barriers).  The reduction itself — how much
   work the bound actually cuts — is reported but never gated: it is a
   property of the corpus, not a correctness claim. *)
let pruning_status p =
  if not p.pruning_identical then "mismatch"
  else if not p.pruning_counters_match then "counters_mismatch"
  else "ok"

let reduction ~baseline ~pruned =
  if baseline <= 0 then 0.0
  else float_of_int (baseline - pruned) /. float_of_int baseline

let json_pruning p =
  json_obj
    [
      ("status", json_string (pruning_status p));
      ("points", string_of_int p.pruning_points);
      ("baseline_seconds", json_float p.baseline_seconds);
      ("pruned_seconds", json_float p.pruned_seconds);
      ("front_inserts_baseline", string_of_int p.front_inserts_baseline);
      ("front_inserts_pruned", string_of_int p.front_inserts_pruned);
      ( "front_insert_reduction",
        json_float
          (reduction ~baseline:p.front_inserts_baseline
             ~pruned:p.front_inserts_pruned) );
      ("witness_probes_baseline", string_of_int p.witness_probes_baseline);
      ("witness_probes_pruned", string_of_int p.witness_probes_pruned);
      ( "witness_probe_reduction",
        json_float
          (reduction ~baseline:p.witness_probes_baseline
             ~pruned:p.witness_probes_pruned) );
      ("states_pruned", string_of_int p.states_pruned);
      ("oracle_calls_saved", string_of_int p.oracle_calls_saved);
      ("incumbent_updates", string_of_int p.incumbent_updates);
      ("memo_preempted", string_of_int p.memo_preempted);
      ("identical", if p.pruning_identical then "true" else "false");
      ( "counters_match",
        if p.pruning_counters_match then "true" else "false" );
    ]

type power_report = {
  power_points : int;
  unconstrained_power : float;
  power_identity_ok : bool;
  power_counters_match : bool;
  power_engines_agree : bool;
  power_monotone : bool;
  power_seconds : float;
}

(* The CI gate reads [status]; anything but "ok" fails the build.  The
   power subsystem's contracts, in soundness order: an infinite budget
   must leave every rank, exact flag and counter byte-identical to a
   power-free run (the anchor everything else stands on); the [power/*]
   counters must not depend on the worker count; the sequential and
   grid sweep engines must agree point-for-point; and the frontier must
   be monotone with the full-spend point recovering the unconstrained
   rank.  The frontier's shape — where it bends, what rank a half-power
   budget keeps — is data, never gated. *)
let power_status p =
  if not p.power_identity_ok then "identity_broken"
  else if not p.power_counters_match then "counters_mismatch"
  else if not p.power_engines_agree then "engine_mismatch"
  else if not p.power_monotone then "frontier_not_monotone"
  else "ok"

let json_power p =
  json_obj
    [
      ("status", json_string (power_status p));
      ("points", string_of_int p.power_points);
      ("unconstrained_power_watts", json_float p.unconstrained_power);
      ("identity_ok", if p.power_identity_ok then "true" else "false");
      ( "counters_match",
        if p.power_counters_match then "true" else "false" );
      ("engines_agree", if p.power_engines_agree then "true" else "false");
      ("monotone", if p.power_monotone then "true" else "false");
      ("seconds", json_float p.power_seconds);
    ]

type serving_sharded_report = {
  shards : int;
  clients : int;
  storm_requests : int;
  distinct_families : int;
  sh_distinct_queries : int;
  sh_p50_ms : float;
  sh_p95_ms : float;
  sh_p99_ms : float;
  shed_rate : float;
  coalesce_rate : float;
  table_builds_per_shard : int list;
  byte_identical : bool;
}

(* The CI gate reads [status]; anything but "ok" fails the build.  The
   conditions mirror the serving tier's contracts: sharded answers must
   be byte-identical to single-process cold computes; the fleet must
   build each warm-table family at most once (that is what routing by
   family buys); and backpressure must shed a bounded fraction, not the
   majority, of a plausible storm. *)
let sharded_status s =
  if not s.byte_identical then "mismatch"
  else if
    List.fold_left ( + ) 0 s.table_builds_per_shard > s.distinct_families
  then "duplicate_family_builds"
  else if s.shed_rate > 0.5 then "shed_exceeded"
  else "ok"

let json_serving_sharded s =
  json_obj
    [
      ("status", json_string (sharded_status s));
      ("shards", string_of_int s.shards);
      ("clients", string_of_int s.clients);
      ("storm_requests", string_of_int s.storm_requests);
      ("distinct_queries", string_of_int s.sh_distinct_queries);
      ("distinct_families", string_of_int s.distinct_families);
      ("p50_ms", json_float s.sh_p50_ms);
      ("p95_ms", json_float s.sh_p95_ms);
      ("p99_ms", json_float s.sh_p99_ms);
      ("shed_rate", json_float s.shed_rate);
      ("coalesce_rate", json_float s.coalesce_rate);
      ( "table_builds_per_shard",
        json_list string_of_int s.table_builds_per_shard );
      ("byte_identical", if s.byte_identical then "true" else "false");
    ]

let write_bench_json ~dir ~jobs ~timings ?metrics ?kernel ?parallel ?scaling
    ?grid ?pruning ?power ?serving ?serving_sharded ~sweeps ~cross () =
  match ensure_dir dir with
  | Error msg -> Error msg
  | Ok () ->
      let row (r : Table4.row) =
        json_obj
          [
            ("param", json_float r.param);
            ( "normalized",
              json_float (Ir_core.Outcome.normalized r.outcome) );
            ( "rank_wires",
              string_of_int r.outcome.Ir_core.Outcome.rank_wires );
            ( "total_wires",
              string_of_int r.outcome.Ir_core.Outcome.total_wires );
            ( "exact",
              if r.outcome.Ir_core.Outcome.exact then "true" else "false" );
            ("seconds", json_float r.seconds);
          ]
      in
      let sweep (s : Table4.sweep) =
        json_obj
          [
            ("name", json_string s.name);
            ("legend", json_string s.legend);
            ( "seconds",
              json_float
                (List.fold_left
                   (fun a (r : Table4.row) -> a +. r.seconds)
                   0.0 s.rows) );
            ("rows", json_list row s.rows);
          ]
      in
      let cell (c : Cross_node.cell) =
        json_obj
          [
            ("node", json_string (Ir_tech.Node.name c.node));
            ("gates", string_of_int c.gates);
            ( "normalized",
              json_float (Ir_core.Outcome.normalized c.outcome) );
            ( "rank_wires",
              string_of_int c.outcome.Ir_core.Outcome.rank_wires );
            ( "exact",
              if c.outcome.Ir_core.Outcome.exact then "true" else "false" );
            ("seconds", json_float c.seconds);
          ]
      in
      let contents =
        json_obj
          ([
             ("schema", json_string "ia-rank/bench-sweeps/10");
             ("jobs", string_of_int jobs);
             ( "timings",
               json_obj (List.map (fun (k, v) -> (k, json_float v)) timings)
             );
           ]
          @ (match parallel with
            | None -> []
            | Some p -> [ ("parallel", json_parallel p) ])
          @ (match scaling with
            | None -> []
            | Some sc -> [ ("scaling", json_scaling sc) ])
          @ (match kernel with
            | None -> []
            | Some ks ->
                [
                  ( "kernel",
                    json_obj
                      (List.map (fun (k, v) -> (k, json_float v)) ks) );
                ])
          @ (match grid with
            | None -> []
            | Some g -> [ ("grid", json_grid g) ])
          @ (match pruning with
            | None -> []
            | Some p -> [ ("pruning", json_pruning p) ])
          @ (match power with
            | None -> []
            | Some p -> [ ("power", json_power p) ])
          @ (match serving with
            | None -> []
            | Some s -> [ ("serving", json_serving s) ])
          @ (match serving_sharded with
            | None -> []
            | Some s -> [ ("serving_sharded", json_serving_sharded s) ])
          @ (match metrics with
            | None -> []
            | Some snap -> [ ("metrics", json_metrics snap) ])
          @ [
              ("table4", json_list sweep sweeps);
              ("cross_node", json_list cell cross);
            ])
        ^ "\n"
      in
      write_file (bench_json_path ~dir) contents

let write_manifest ~dir ~entries =
  match ensure_dir dir with
  | Error msg -> Error msg
  | Ok () ->
      let buf = Buffer.create 512 in
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\n" k v))
        entries;
      write_file (Filename.concat dir "MANIFEST.txt") (Buffer.contents buf)
