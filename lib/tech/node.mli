(** Technology nodes.

    The paper studies the TSMC-style 180nm, 130nm and 90nm nodes (its
    Table 3).  [Custom] supports synthetic nodes for tests and for the direct
    IA-optimization extension. *)

type t = N180 | N130 | N90 | Custom of { name : string; feature : float }
[@@deriving show, eq]

val name : t -> string
(** e.g. ["180nm"]. *)

val feature_size : t -> float
(** Drawn feature size in meters (180e-9, 130e-9, 90e-9, or the custom
    value). *)

val gate_pitch : t -> float
(** Average gate pitch [g = 12.6 *. feature_size], the paper's ITRS-based
    empirical rule (Section 5.2), in meters. *)

val itrs_max_clock : t -> float
(** Maximum MPU clock frequency per ITRS 2001 for this node, in Hz (used by
    the paper to pick the top of the clock sweep: 1.7 GHz at 130nm). *)

val resistivity : t -> float
(** Effective metal resistivity in Ohm-m, including a barrier/liner penalty
    over the bulk value: Al-based at 180nm, Cu-based below. *)

val vdd : t -> float
(** Nominal supply voltage in volts (ITRS-2001-era: 1.8 / 1.2 / 1.0 V at
    180/130/90nm; custom nodes follow a square-root-of-feature trend
    clamped to [0.5, 2.5] V).  Drives the repeater power model's dynamic
    switching term ([Ir_assign.Problem]'s per-repeater power tables). *)

val leakage_per_size : t -> float
(** Static (leakage) power of a minimum-sized inverter, watts — a
    size-[s] repeater leaks [s] times this.  Grows steeply as the node
    shrinks (1 nW at 180nm to 20 nW at 90nm), which is what makes the
    power-optimal repeater plan diverge from the area-optimal one at
    fine nodes. *)

val of_string : string -> t option
(** Parses the paper's nodes (["180nm"], ["180"], ["n180"], ...) and any
    other positive feature size — ["65nm"], ["45"], ["32.5nm"] — as a
    [Custom] node whose electrical parameters follow this module's scaled
    ITRS trends.  Returns [None] for non-numeric or non-positive input. *)
