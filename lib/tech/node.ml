type t = N180 | N130 | N90 | Custom of { name : string; feature : float }
[@@deriving show, eq]

let name = function
  | N180 -> "180nm"
  | N130 -> "130nm"
  | N90 -> "90nm"
  | Custom { name; _ } -> name

let feature_size = function
  | N180 -> 180e-9
  | N130 -> 130e-9
  | N90 -> 90e-9
  | Custom { feature; _ } -> feature

let gate_pitch t = 12.6 *. feature_size t

let itrs_max_clock = function
  | N180 -> 1.25e9
  | N130 -> 1.7e9
  | N90 -> 2.5e9
  | Custom { feature; _ } ->
      (* Rough ITRS-2001 trend: clock scales inversely with feature size,
         anchored at 1.7 GHz for 130nm. *)
      1.7e9 *. (130e-9 /. feature)

let resistivity = function
  | N180 -> Ir_phys.Const.rho_al_bulk *. 1.05
  | N130 -> Ir_phys.Const.rho_cu_bulk *. 1.30
  | N90 -> Ir_phys.Const.rho_cu_bulk *. 1.45
  | Custom _ -> Ir_phys.Const.rho_cu_bulk *. 1.30

let vdd = function
  | N180 -> 1.8
  | N130 -> 1.2
  | N90 -> 1.0
  | Custom { feature; _ } ->
      (* ITRS-2001 trend: supply scales roughly with the square root of
         the feature size, anchored at 1.0 V for 90nm.  Clamped to the
         range real CMOS processes of the era shipped at so synthetic
         test nodes stay physical. *)
      Float.min 2.5 (Float.max 0.5 (1.0 *. sqrt (feature /. 90e-9)))

let leakage_per_size = function
  | N180 -> 1.0e-9
  | N130 -> 5.0e-9
  | N90 -> 2.0e-8
  | Custom { feature; _ } ->
      (* Subthreshold leakage grows steeply as the feature (and with it
         the threshold voltage) shrinks; quadratic-in-inverse-feature is
         a serviceable fit to the 180/130/90 anchors above. *)
      let r = 90e-9 /. feature in
      2.0e-8 *. r *. r

let of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  match s with
  | "180" | "180nm" | "n180" -> Some N180
  | "130" | "130nm" | "n130" -> Some N130
  | "90" | "90nm" | "n90" -> Some N90
  | _ ->
      (* Any other positive feature size becomes a Custom node with the
         ITRS-trend defaults of this module (resistivity, clock, pitch all
         scale off the feature size). *)
      let digits =
        if String.length s > 2 && String.sub s (String.length s - 2) 2 = "nm"
        then String.sub s 0 (String.length s - 2)
        else if String.length s > 1 && s.[0] = 'n' then
          String.sub s 1 (String.length s - 1)
        else s
      in
      (match float_of_string_opt digits with
      | Some f when f > 0.0 && Float.is_finite f ->
          Some (Custom { name = Printf.sprintf "%gnm" f; feature = f *. 1e-9 })
      | _ -> None)
