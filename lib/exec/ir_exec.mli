(** Parallel execution over OCaml 5 domains.

    The evaluation layer of this reproduction recomputes the optimal rank
    at every sweep point; the points are independent, so the sweeps are
    embarrassingly parallel.  This module provides the small domain pool
    they all share: a work-stealing [parallel_map] over arrays whose
    results are written back by input index, so the output order — and
    therefore every table, CSV and JSON artifact built from it — is {e
    byte-identical} to a sequential run regardless of how the items were
    scheduled across domains.

    {2 Job-count resolution}

    The worker count used when [?jobs] is omitted is resolved, in order,
    from:

    + the process-wide override installed with {!set_default_jobs}
      (the CLI's [-j] flag);
    + the [IA_RANK_JOBS] environment variable;
    + [Domain.recommended_domain_count () - 1], the hardware parallelism
      minus one domain's worth of headroom for the caller's process.

    The result is clamped to at least 1.  With [jobs = 1] every function
    degrades to its sequential [Array.map]/[List.map] equivalent on the
    calling domain — no domain is spawned, so existing single-threaded
    behavior (allocation pattern included) is exactly reproducible.

    Whatever the request, the {e effective} worker count is additionally
    clamped to {!hardware_jobs}: running more CPU-bound domains than
    cores is a pure loss under OCaml 5's stop-the-world minor GC (each
    collection waits for every runnable-but-descheduled domain to reach
    a safepoint — measured 2x slower than sequential on the Table-4
    bench leg at jobs=4 on one core).  Tests that deliberately want
    contended multi-domain scheduling can lift the clamp with
    {!set_allow_oversubscribe}.  Result bytes never depend on the
    worker count either way.

    {2 Determinism and exceptions}

    [f] runs at most once per element.  Results land at the index of the
    element that produced them.  If one or more applications of [f] raise,
    the remaining items are still drained (the pool never abandons a
    domain), and the exception raised by the {e lowest-indexed} failing
    element is re-raised in the caller with its original backtrace — again
    independent of scheduling.

    Sharing read-only data (e.g. an {!Ir_assign.Problem.t} after [build])
    across the workers is safe; mutating shared state from [f] is the
    caller's responsibility.

    {2 GC tuning}

    OCaml 5 minor collections are stop-the-world across all running
    domains, so the default 256k-word minor heap makes an allocating
    parallel workload pay a synchronization barrier every few hundred
    kilobytes of allocation.  Spawning a pool therefore raises the
    per-domain minor heap to at least 4M words (one-way: an existing
    larger setting — [OCAMLRUNPARAM=s=...] or the caller's own [Gc.set]
    — is respected, and the pool never shrinks it back).  [jobs = 1]
    runs never touch GC parameters. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1 —
    the hardware default before overrides. *)

val hardware_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1 — the
    ceiling on effective workers unless oversubscription is allowed. *)

val set_allow_oversubscribe : bool -> unit
(** [set_allow_oversubscribe true] lets an explicit [?jobs] (or
    override/env) request spawn more workers than {!hardware_jobs}.
    Off by default; meant for determinism tests that must exercise
    real cross-domain interleaving even on small machines. *)

val set_default_jobs : int option -> unit
(** Install ([Some n], clamped to at least 1) or clear ([None]) the
    process-wide job-count override.  Used by the CLI's [-j]. *)

val with_default_jobs : int option -> (unit -> 'a) -> 'a
(** Runs the thunk with the override installed and restores the
    {e previous} override (not merely [None]) on the way out, exceptions
    included — a plain [set_default_jobs] pair leaks the override into
    everything after the first exception.  The bench's serving leg uses
    this to replay a trace at jobs=1 and jobs=N without the last replay's
    setting bleeding into later sections. *)

val default_jobs : unit -> int
(** The job count used when [?jobs] is omitted (see resolution order
    above). *)

type pool_stats = {
  jobs : int;  (** workers used, caller domain included *)
  wall_seconds : float;  (** elapsed time of the whole run *)
  units : int array;
      (** elements processed per worker (index 0 = caller domain).
          Individual entries are scheduling-dependent; the sum is always
          the input length. *)
  busy_seconds : float array;  (** per-worker busy wall time *)
}
(** Accounting for one [parallel_map]/[parallel_map_chunked] run.  A
    sequential ([jobs = 1]) run produces the degenerate single-worker
    record, so callers can report uniformly. *)

val last_pool_stats : unit -> pool_stats option
(** Stats of the most recent map run in this process, if any.  Written
    after the join, so reading it right after a map call is race-free;
    concurrent maps from multiple domains overwrite each other (the
    sweep drivers run one map at a time). *)

val effective_parallelism : pool_stats -> float
(** Sum of per-worker busy time over wall time — ~[jobs] when workers
    stay saturated, lower when work is skewed or spawn overhead
    dominates.  [1.0] when wall time is too small to measure. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] evaluated by up to [jobs]
    domains (the caller included), one element per work unit.  Result
    order is the input order. *)

val parallel_map_chunked :
  ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map} but workers claim contiguous chunks of [chunk]
    elements (default: a chunk size targeting ~4 chunks per worker) —
    lower scheduling overhead when [f] is cheap relative to an atomic
    fetch-and-add.  Same ordering and exception guarantees.
    @raise Invalid_argument if [chunk <= 0]. *)

val parallel_list_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} for lists; preserves list order. *)

val parallel_group_map :
  ?jobs:int -> ?weight:('a -> int) -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map}, but when [weight] is given the items are
    dispatched to the workers in decreasing weight order (ties broken by
    input index — the schedule is deterministic) while results still come
    back in {e input} order.  Use it when task costs are skewed and known
    up front (a fused multi-sweep run, a cross-node matrix whose largest
    design dominates): heaviest-first dispatch keeps the long poles from
    being claimed last and stretching the makespan.  Without [weight]
    this is exactly {!parallel_map}.  Determinism and accounting are as
    in {!parallel_map}; when several items raise, the re-raised exception
    is the {e earliest-dispatched} (heaviest) failing item's — still
    deterministic, since the dispatch order is. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]).  The sweep layer's per-point
    timings use wall time, not [Sys.time]: under parallel execution the
    process CPU time aggregates every domain and stops measuring the
    latency a user actually observes. *)
