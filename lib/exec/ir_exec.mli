(** Parallel execution over OCaml 5 domains.

    The evaluation layer of this reproduction recomputes the optimal rank
    at every sweep point; the points are independent, so the sweeps are
    embarrassingly parallel.  This module provides the small domain pool
    they all share: a work-stealing [parallel_map] over arrays whose
    results are written back by input index, so the output order — and
    therefore every table, CSV and JSON artifact built from it — is {e
    byte-identical} to a sequential run regardless of how the items were
    scheduled across domains.

    {2 Scheduling}

    Each run seeds one task queue per worker: tasks (contiguous input
    ranges — single elements for {!parallel_map} and {!parallel_group_map},
    chunks for {!parallel_map_chunked}) are dealt round-robin across the
    queues in dispatch-priority order (input order, or heaviest-first
    when {!parallel_group_map} is given weights), so each queue descends
    in priority front to back.  Every task carries an atomic claim flag;
    owners drain their own queue front to back, and a worker that runs
    out {e steals}, scanning the other queues from the tail — the
    cheapest still-unclaimed work, farthest from where its owner is
    working (Chase–Lev style).  A skewed workload therefore no longer
    serializes on whichever worker was seeded the hot tasks: the idle
    workers drain the rest of its queue around it.  Steals are tallied
    per worker in {!pool_stats} and on the [exec/sched/steals] counter.

    Because results land by input index and every task runs exactly once
    (the claim CAS), the schedule — including how many steals happened —
    affects wall time only, never result bytes or the deterministic
    counters.  The [exec/sched/] counters are the deliberate exception:
    they count scheduling events themselves; jobs=1 vs jobs=N identity
    checks strip them with [Ir_obs.filter_out ~prefix:"exec/sched/"].

    {2 Job-count resolution}

    The worker count used when [?jobs] is omitted is resolved, in order,
    from:

    + the process-wide override installed with {!set_default_jobs}
      (the CLI's [-j] flag);
    + the [IA_RANK_JOBS] environment variable;
    + [Domain.recommended_domain_count () - 1], the hardware parallelism
      minus one domain's worth of headroom for the caller's process.

    The result is clamped to at least 1.  With [jobs = 1] every function
    degrades to its sequential [Array.map]/[List.map] equivalent on the
    calling domain — no domain is spawned, so existing single-threaded
    behavior (allocation pattern included) is exactly reproducible.

    Whatever the request, the {e effective} worker count is additionally
    clamped to {!hardware_jobs}: running more CPU-bound domains than
    cores is a pure loss under OCaml 5's stop-the-world minor GC (each
    collection waits for every runnable-but-descheduled domain to reach
    a safepoint — measured 2x slower than sequential on the Table-4
    bench leg at jobs=4 on one core).  The clamp is {e not} silent: the
    first time it bites, a one-line warning goes to stderr, and every
    occurrence increments the [exec/sched/jobs_clamped] counter — so
    [-j 8] on a 4-core box is visible, not a quiet no-op.  Tests that
    deliberately want contended multi-domain scheduling can lift the
    clamp with {!set_allow_oversubscribe}.  Result bytes never depend on
    the worker count either way.

    {2 Determinism and exceptions}

    [f] runs at most once per element.  Results land at the index of the
    element that produced them.  If one or more applications of [f] raise,
    the remaining items are still drained (the pool never abandons a
    domain), and the exception raised by the {e lowest-indexed} failing
    element is re-raised in the caller with its original backtrace — again
    independent of scheduling.

    Sharing read-only data (e.g. an {!Ir_assign.Problem.t} after [build])
    across the workers is safe; mutating shared state from [f] is the
    caller's responsibility.

    {2 GC tuning}

    OCaml 5 minor collections are stop-the-world across all running
    domains, so the default 256k-word minor heap makes an allocating
    parallel workload pay a synchronization barrier every few hundred
    kilobytes of allocation.  Spawning a pool therefore raises the
    per-domain minor heap to at least {!pool_minor_heap_words} for the
    duration of the run, and {e restores} the previous size once the
    outermost pool scope drains — a serve process that briefly fans out
    no longer keeps the large minor heap forever.  An existing larger
    setting — [OCAMLRUNPARAM=s=...] or the caller's own [Gc.set] — is
    respected (never shrunk), and the restore is skipped if someone else
    changed the size in between.  Drivers that run several pools
    back-to-back can hold the raised heap across all of them with
    {!with_pool_heap}.  [jobs = 1] runs never touch GC parameters. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1 —
    the hardware default before overrides. *)

val hardware_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1 — the
    ceiling on effective workers unless oversubscription is allowed. *)

val set_allow_oversubscribe : bool -> unit
(** [set_allow_oversubscribe true] lets an explicit [?jobs] (or
    override/env) request spawn more workers than {!hardware_jobs}.
    Off by default; meant for determinism tests that must exercise
    real cross-domain interleaving even on small machines. *)

val set_default_jobs : int option -> unit
(** Install ([Some n], clamped to at least 1) or clear ([None]) the
    process-wide job-count override.  Used by the CLI's [-j]. *)

val with_default_jobs : int option -> (unit -> 'a) -> 'a
(** Runs the thunk with the override installed and restores the
    {e previous} override (not merely [None]) on the way out, exceptions
    included — a plain [set_default_jobs] pair leaks the override into
    everything after the first exception.  The bench's serving leg uses
    this to replay a trace at jobs=1 and jobs=N without the last replay's
    setting bleeding into later sections. *)

val default_jobs : unit -> int
(** The job count used when [?jobs] is omitted (see resolution order
    above). *)

type pool_stats = {
  jobs : int;  (** workers used, caller domain included *)
  wall_seconds : float;  (** elapsed time of the whole run *)
  units : int array;
      (** elements processed per worker (index 0 = caller domain).
          Individual entries are scheduling-dependent; the sum is always
          the input length. *)
  busy_seconds : float array;  (** per-worker busy wall time *)
  steals : int array;
      (** tasks each worker claimed out of {e another} worker's queue.
          Scheduling-dependent, like the per-worker unit split; zero
          everywhere on a perfectly balanced run and on [jobs = 1]. *)
}
(** Accounting for one [parallel_map]/[parallel_map_chunked] run.  A
    sequential ([jobs = 1]) run produces the degenerate single-worker
    record, so callers can report uniformly. *)

val last_pool_stats : unit -> pool_stats option
(** Stats of the most recent map run in this process, if any.  Written
    after the join, so reading it right after a map call is race-free;
    concurrent maps from multiple domains overwrite each other (the
    sweep drivers run one map at a time). *)

val effective_parallelism : pool_stats -> float
(** Sum of per-worker busy time over wall time — ~[jobs] when workers
    stay saturated, lower when work is skewed or spawn overhead
    dominates.  [1.0] when wall time is too small to measure. *)

val pool_minor_heap_words : int
(** The minor-heap size (4M words) a running pool raises every domain
    to; see the GC-tuning notes above.  Exposed for the tests pinning
    the raise-and-restore behaviour. *)

val with_pool_heap : (unit -> 'a) -> 'a
(** Holds the pool's raised minor heap across the whole thunk: pools
    started inside resize on entry of the outermost scope only, and the
    pre-existing size is restored when the thunk exits (exceptions
    included).  Use around a burst of back-to-back pool runs — the
    bench's scaling sweep — to avoid paying a [Gc.set]-forced collection
    per run. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] evaluated by up to [jobs]
    domains (the caller included), one element per stealable task.
    Result order is the input order. *)

val parallel_map_chunked :
  ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map} but tasks are contiguous chunks of [chunk]
    elements (default: a chunk size targeting ~4 chunks per worker) —
    lower scheduling overhead when [f] is cheap relative to a claim CAS.
    Same ordering and exception guarantees.
    @raise Invalid_argument if [chunk <= 0]. *)

val parallel_list_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} for lists; preserves list order. *)

val parallel_group_map :
  ?jobs:int -> ?weight:('a -> int) -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map}, but when [weight] is given the items are
    seeded into the worker queues in decreasing weight order (ties broken
    by input index — the seed is deterministic) while results still come
    back in {e input} order.  Use it when task costs are skewed and known
    up front (a fused multi-sweep run, a cross-node matrix whose largest
    design dominates): heaviest-first seeding keeps the long poles from
    starting last, and work stealing lets the other workers drain around
    whoever is pinned on one.  Without [weight] this is exactly
    {!parallel_map}.  Determinism and accounting are as in
    {!parallel_map}; when several items raise, the re-raised exception
    is the {e earliest-dispatched} (heaviest) failing item's — still
    deterministic, since the dispatch order is. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]).  The sweep layer's per-point
    timings use wall time, not [Sys.time]: under parallel execution the
    process CPU time aggregates every domain and stops measuring the
    latency a user actually observes. *)

(** {2 Shared incumbent cell}

    A monotone integer shared across pool domains, used by the DP
    pruning layer as its incumbent (best {e achievable} boundary found
    so far).  The cell is split in two so that concurrent improvement
    never leaks into in-flight work:

    - {!Incumbent.offer} folds a candidate into the {e pending} side
      with an atomic max — commutative, so any interleaving of offers
      from any number of domains converges to the same value;
    - {!Incumbent.publish} copies pending into the {e published} side —
      the only value {!Incumbent.current} ever returns.

    The determinism contract is a calling convention, not a lock:
    [publish] must only be called from sequential sections (between
    wavefront levels, before a build), never from inside a
    [parallel_map] body.  Workers then observe the same published
    incumbent for the whole level regardless of the schedule, which is
    what keeps the [bounds/*] counters jobs=1 ≡ jobs=N identical. *)
module Incumbent : sig
  type t

  val create : ?floor:int -> unit -> t
  (** Fresh cell; both sides start at [floor] (default [-1] = no
      incumbent). *)

  val offer : t -> int -> unit
  (** Atomic max into the pending side.  Safe from any domain. *)

  val publish : t -> bool
  (** Make the pending value visible to {!current}.  Returns [true] iff
      the published value was raised.  Sequential sections only (see
      above). *)

  val current : t -> int
  (** The last published value.  Safe from any domain. *)

  val best_offer : t -> int
  (** The pending value (diagnostics; may be ahead of {!current}). *)
end
