let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)
let hardware_jobs () = max 1 (Domain.recommended_domain_count ())

(* Spawning more domains than the hardware can run is a pure loss for
   this CPU-bound workload: OCaml 5 minor collections are stop-the-world,
   so every collection must wait for each runnable-but-descheduled domain
   to get a timeslice and reach its safepoint.  Measured on the Table-4
   bench leg (one core): jobs=4 took 5.1 s against 2.4 s sequential with
   identical work — pure oversubscription, not GC frequency (the minor
   heap ratchet below was already active).  Worker counts are therefore
   clamped to the hardware parallelism unless a caller that {e wants}
   contended multi-domain scheduling — the cross-domain determinism
   tests, which exist to exercise real interleaving — opts out. *)
let oversubscribe = Atomic.make false
let set_allow_oversubscribe b = Atomic.set oversubscribe b

let override = Atomic.make None

let set_default_jobs jobs =
  Atomic.set override (Option.map (fun j -> max 1 j) jobs)

let with_default_jobs jobs f =
  let saved = Atomic.get override in
  set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Atomic.set override saved) f

let env_jobs () =
  match Sys.getenv_opt "IA_RANK_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)

let default_jobs () =
  match Atomic.get override with
  | Some j -> j
  | None -> (
      match env_jobs () with Some j -> j | None -> recommended_jobs ())

type pool_stats = {
  jobs : int;
  wall_seconds : float;
  units : int array;
  busy_seconds : float array;
}

let last_stats : pool_stats option Atomic.t = Atomic.make None
let last_pool_stats () = Atomic.get last_stats

let effective_parallelism s =
  if s.wall_seconds <= 0.0 then 1.0
  else Array.fold_left ( +. ) 0.0 s.busy_seconds /. s.wall_seconds

(* Deterministic counters (totals are scheduling-independent; both the
   sequential and the pooled path count identically) plus a busy-time
   span, which is cumulative across worker domains. *)
let stat_runs = Ir_obs.counter "exec/pool_runs"
let stat_items = Ir_obs.counter "exec/items_processed"
let span_busy = Ir_obs.span "exec/worker_busy"

(* OCaml 5 minor collections are stop-the-world: every running domain
   must reach a safepoint before any of them can collect, so with the
   default 256k-word minor heap an allocating workload degenerates into
   a synchronization storm as soon as several domains run (measured on
   the Table-4 bench leg: the jobs=4 run was ~3x slower than jobs=1 on
   one core from this alone).  Raising the per-domain minor heap bounds
   the sync rate.  One-way ratchet: a caller's own larger setting is
   respected, and we never shrink after the pool returns — repeated
   resizing would itself force collections. *)
let pool_minor_heap_words = 4 * 1024 * 1024

let ensure_pool_minor_heap () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < pool_minor_heap_words then
    Gc.set { g with Gc.minor_heap_size = pool_minor_heap_words }

(* One parallel run: [workers] domains (the caller included) pull work
   units off an atomic counter.  Each unit is a contiguous index range
   [start, start + chunk) of the input; results are written to the slot of
   the element that produced them, which is what makes the output order
   independent of scheduling.  A raising [f] marks its slot instead of
   tearing the pool down; after the join, the lowest-indexed recorded
   exception is re-raised with its original backtrace. *)
let run_pool ~jobs ~chunk f xs =
  ensure_pool_minor_heap ();
  let n = Array.length xs in
  let results = Array.make n None in
  let errors = Array.make n None in
  let next = Atomic.make 0 in
  let units = Array.make jobs 0 in
  let busy = Array.make jobs 0.0 in
  (* Worker w writes only units.(w)/busy.(w); Domain.join makes the
     writes visible to the caller, same as [results]. *)
  let worker w =
    let t0 = Unix.gettimeofday () in
    let rec loop () =
      let start = Atomic.fetch_and_add next chunk in
      if start < n then begin
        let stop = min n (start + chunk) in
        units.(w) <- units.(w) + (stop - start);
        for i = start to stop - 1 do
          match f xs.(i) with
          | y -> results.(i) <- Some y
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              errors.(i) <- Some (e, bt)
        done;
        loop ()
      end
    in
    loop ();
    let dt = Unix.gettimeofday () -. t0 in
    busy.(w) <- dt;
    Ir_obs.record span_busy dt
  in
  let t0 = Unix.gettimeofday () in
  let spawned =
    Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
  in
  worker 0;
  Array.iter Domain.join spawned;
  Atomic.set last_stats
    (Some
       {
         jobs;
         wall_seconds = Unix.gettimeofday () -. t0;
         units;
         busy_seconds = busy;
       });
  Ir_obs.incr stat_runs;
  Ir_obs.add stat_items n;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
    errors;
  Array.map (function Some y -> y | None -> assert false) results

(* The jobs = 1 degenerate pool: same accounting, no domain spawned. *)
let seq_map f xs =
  let n = Array.length xs in
  let t0 = Unix.gettimeofday () in
  let result = Array.map f xs in
  let dt = Unix.gettimeofday () -. t0 in
  Atomic.set last_stats
    (Some
       {
         jobs = 1;
         wall_seconds = dt;
         units = [| n |];
         busy_seconds = [| dt |];
       });
  Ir_obs.incr stat_runs;
  Ir_obs.add stat_items n;
  Ir_obs.record span_busy dt;
  result

let resolve_jobs jobs n =
  let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let j = if Atomic.get oversubscribe then j else min j (hardware_jobs ()) in
  min j (max 1 n)

let parallel_map ?jobs f xs =
  let jobs = resolve_jobs jobs (Array.length xs) in
  if jobs <= 1 then seq_map f xs else run_pool ~jobs ~chunk:1 f xs

let parallel_map_chunked ?jobs ?chunk f xs =
  let n = Array.length xs in
  let jobs = resolve_jobs jobs n in
  let chunk =
    match chunk with
    | Some c when c <= 0 ->
        invalid_arg "Ir_exec.parallel_map_chunked: chunk must be > 0"
    | Some c -> c
    | None -> max 1 (n / (jobs * 4))
  in
  if jobs <= 1 then seq_map f xs else run_pool ~jobs ~chunk f xs

let parallel_list_map ?jobs f xs =
  Array.to_list (parallel_map ?jobs f (Array.of_list xs))

(* Heaviest-first dispatch: items are handed to the pool in decreasing
   [weight] order (ties by input index, so the permutation is
   deterministic) and results scattered back to input order.  With
   unequal task costs — one sweep group dominating a fused run, the
   10M-gate cell dominating a cross-node matrix — starting the heavy
   items first bounds the makespan: a heavy item claimed last would
   otherwise run alone after every other worker has drained. *)
let parallel_group_map ?jobs ?weight f xs =
  match weight with
  | None -> parallel_map ?jobs f xs
  | Some w ->
      let n = Array.length xs in
      let order = Array.init n Fun.id in
      let wt = Array.map w xs in
      Array.sort
        (fun a b ->
          match compare wt.(b) wt.(a) with 0 -> compare a b | c -> c)
        order;
      let permuted = Array.map (fun i -> xs.(i)) order in
      let res = parallel_map ?jobs f permuted in
      let out = Array.make n None in
      Array.iteri (fun k i -> out.(i) <- Some res.(k)) order;
      Array.map (function Some y -> y | None -> assert false) out

let now () = Unix.gettimeofday ()
