let recommended_jobs () = max 1 (Domain.recommended_domain_count () - 1)
let hardware_jobs () = max 1 (Domain.recommended_domain_count ())

(* Spawning more domains than the hardware can run is a pure loss for
   this CPU-bound workload: OCaml 5 minor collections are stop-the-world,
   so every collection must wait for each runnable-but-descheduled domain
   to get a timeslice and reach its safepoint.  Measured on the Table-4
   bench leg (one core): jobs=4 took 5.1 s against 2.4 s sequential with
   identical work — pure oversubscription, not GC frequency (the minor
   heap ratchet below was already active).  Worker counts are therefore
   clamped to the hardware parallelism unless a caller that {e wants}
   contended multi-domain scheduling — the cross-domain determinism
   tests, which exist to exercise real interleaving — opts out. *)
let oversubscribe = Atomic.make false
let set_allow_oversubscribe b = Atomic.set oversubscribe b

let override = Atomic.make None

let set_default_jobs jobs =
  Atomic.set override (Option.map (fun j -> max 1 j) jobs)

let with_default_jobs jobs f =
  let saved = Atomic.get override in
  set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Atomic.set override saved) f

let env_jobs () =
  match Sys.getenv_opt "IA_RANK_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)

let default_jobs () =
  match Atomic.get override with
  | Some j -> j
  | None -> (
      match env_jobs () with Some j -> j | None -> recommended_jobs ())

type pool_stats = {
  jobs : int;
  wall_seconds : float;
  units : int array;
  busy_seconds : float array;
  steals : int array;
}

let last_stats : pool_stats option Atomic.t = Atomic.make None
let last_pool_stats () = Atomic.get last_stats

let effective_parallelism s =
  if s.wall_seconds <= 0.0 then 1.0
  else Array.fold_left ( +. ) 0.0 s.busy_seconds /. s.wall_seconds

(* Deterministic counters (totals are scheduling-independent; both the
   sequential and the pooled path count identically) plus a busy-time
   span, which is cumulative across worker domains.  The [exec/sched/]
   instruments are the exception: they describe the schedule itself —
   how many tasks moved between workers, how often the hardware clamp
   bit — so their totals legitimately differ between jobs=1 and jobs=N
   runs.  Identity checks strip them with [Ir_obs.filter_out
   ~prefix:"exec/sched/"]. *)
let stat_runs = Ir_obs.counter "exec/pool_runs"
let stat_items = Ir_obs.counter "exec/items_processed"
let span_busy = Ir_obs.span "exec/worker_busy"
let stat_steals = Ir_obs.counter "exec/sched/steals"
let stat_clamped = Ir_obs.counter "exec/sched/jobs_clamped"

(* OCaml 5 minor collections are stop-the-world: every running domain
   must reach a safepoint before any of them can collect, so with the
   default 256k-word minor heap an allocating workload degenerates into
   a synchronization storm as soon as several domains run (measured on
   the Table-4 bench leg: the jobs=4 run was ~3x slower than jobs=1 on
   one core from this alone).  Raising the per-domain minor heap bounds
   the sync rate.

   The raise is {e scoped}, not a one-way ratchet: the pre-pool size is
   restored once the outermost pool scope drains, so a long-lived
   process that briefly fans out (the serve daemon answering one batched
   request) does not keep a 4M-word minor heap forever.  A caller's own
   larger setting is still respected — we only raise, never shrink, and
   we only restore if the size at exit is exactly the one we installed
   (a concurrent [Gc.set] by the caller wins).  Nested pools and
   [with_pool_heap] share one depth counter, so consecutive runs inside
   a scope resize once, not per run — repeated resizing itself forces
   collections. *)
let pool_minor_heap_words = 4 * 1024 * 1024

let heap_depth = Atomic.make 0
let heap_saved : int option Atomic.t = Atomic.make None

let enter_pool_heap () =
  if Atomic.fetch_and_add heap_depth 1 = 0 then begin
    let g = Gc.get () in
    if g.Gc.minor_heap_size < pool_minor_heap_words then begin
      Atomic.set heap_saved (Some g.Gc.minor_heap_size);
      Gc.set { g with Gc.minor_heap_size = pool_minor_heap_words }
    end
  end

let leave_pool_heap () =
  if Atomic.fetch_and_add heap_depth (-1) = 1 then
    match Atomic.exchange heap_saved None with
    | None -> ()
    | Some words ->
        let g = Gc.get () in
        if g.Gc.minor_heap_size = pool_minor_heap_words then
          Gc.set { g with Gc.minor_heap_size = words }

let with_pool_heap f =
  enter_pool_heap ();
  Fun.protect ~finally:leave_pool_heap f

(* One parallel run, scheduled by work stealing over pre-seeded
   per-worker queues.

   [tasks] is an array of contiguous input ranges [(lo, hi)) in {e
   dispatch priority} order (input order for plain maps, heaviest-first
   for weighted group maps).  Worker [w]'s queue is the subsequence of
   tasks at positions [w, w + jobs, w + 2*jobs, ...] — round-robin
   seeding, so the heaviest tasks land spread across all queues and
   each queue descends in priority front to back.  Every task carries a
   CAS claim flag; a task runs exactly once, on whichever worker wins
   the claim.  Owners drain their own queue front to back (heaviest
   first); a worker that runs out steals by scanning the other queues
   {e from the tail} — the cheapest still-unclaimed work, farthest from
   where its owner is working, Chase–Lev style.  No task is ever added
   after the seed, so one claim-and-run pass over every queue is a
   complete schedule: termination needs no retry loop.

   Results are written to the slot of the element that produced them,
   which is what makes the output order independent of scheduling.  A
   raising [f] marks its slot instead of tearing the pool down; after
   the join, the earliest-{e dispatched} recorded exception is re-raised
   with its original backtrace (for plain maps the dispatch order is the
   input order, so this is the lowest-indexed one).  Worker w writes
   only units.(w)/busy.(w)/steals.(w); [Domain.join] makes the writes
   visible to the caller, same as [results] — per-worker tallies merge
   into the shared counters deterministically after the join, never
   from inside the workers. *)
let run_pool ~jobs ~tasks f xs =
  enter_pool_heap ();
  Fun.protect ~finally:leave_pool_heap @@ fun () ->
  let n = Array.length xs in
  let nt = Array.length tasks in
  let results = Array.make n None in
  let errors = Array.make n None in
  let claimed = Array.init nt (fun _ -> Atomic.make false) in
  let units = Array.make jobs 0 in
  let busy = Array.make jobs 0.0 in
  let steals = Array.make jobs 0 in
  let queue_len w = if w >= nt then 0 else ((nt - w - 1) / jobs) + 1 in
  let run w t ~stolen =
    let lo, hi = tasks.(t) in
    units.(w) <- units.(w) + (hi - lo);
    if stolen then steals.(w) <- steals.(w) + 1;
    for i = lo to hi - 1 do
      match f xs.(i) with
      | y -> results.(i) <- Some y
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          errors.(i) <- Some (e, bt)
    done
  in
  let worker w =
    let t0 = Unix.gettimeofday () in
    let mine = queue_len w in
    for k = 0 to mine - 1 do
      let t = w + (k * jobs) in
      if Atomic.compare_and_set claimed.(t) false true then
        run w t ~stolen:false
    done;
    for dv = 1 to jobs - 1 do
      let v = (w + dv) mod jobs in
      for k = queue_len v - 1 downto 0 do
        let t = v + (k * jobs) in
        if Atomic.compare_and_set claimed.(t) false true then
          run w t ~stolen:true
      done
    done;
    let dt = Unix.gettimeofday () -. t0 in
    busy.(w) <- dt;
    Ir_obs.record span_busy dt
  in
  let t0 = Unix.gettimeofday () in
  let spawned =
    Array.init (jobs - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1)))
  in
  worker 0;
  Array.iter Domain.join spawned;
  Atomic.set last_stats
    (Some
       {
         jobs;
         wall_seconds = Unix.gettimeofday () -. t0;
         units;
         busy_seconds = busy;
         steals;
       });
  Ir_obs.incr stat_runs;
  Ir_obs.add stat_items n;
  Ir_obs.add stat_steals (Array.fold_left ( + ) 0 steals);
  Array.iter
    (fun (lo, hi) ->
      for i = lo to hi - 1 do
        match errors.(i) with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      done)
    tasks;
  Array.map (function Some y -> y | None -> assert false) results

(* The jobs = 1 degenerate pool: same accounting, no domain spawned. *)
let seq_map f xs =
  let n = Array.length xs in
  let t0 = Unix.gettimeofday () in
  let result = Array.map f xs in
  let dt = Unix.gettimeofday () -. t0 in
  Atomic.set last_stats
    (Some
       {
         jobs = 1;
         wall_seconds = dt;
         units = [| n |];
         busy_seconds = [| dt |];
         steals = [| 0 |];
       });
  Ir_obs.incr stat_runs;
  Ir_obs.add stat_items n;
  Ir_obs.record span_busy dt;
  result

(* The hardware clamp used to be silent, so `-j 8` on a 4-core box was
   an invisible no-op; now it warns once per process on stderr and
   counts every occurrence (scheduling-dependent by nature, hence under
   exec/sched/). *)
let clamp_warned = Atomic.make false

let resolve_jobs jobs n =
  let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let j =
    if Atomic.get oversubscribe then j
    else begin
      let hw = hardware_jobs () in
      if j > hw then begin
        Ir_obs.incr stat_clamped;
        if not (Atomic.exchange clamp_warned true) then
          Printf.eprintf
            "ia-rank: requested %d jobs exceeds the hardware parallelism \
             (%d); running %d workers \
             (Ir_exec.set_allow_oversubscribe lifts the clamp)\n%!"
            j hw hw
      end;
      min j hw
    end
  in
  min j (max 1 n)

let seq_tasks n chunk =
  let nt = (n + chunk - 1) / chunk in
  Array.init nt (fun c -> (c * chunk, min n ((c + 1) * chunk)))

let parallel_map ?jobs f xs =
  let n = Array.length xs in
  let jobs = resolve_jobs jobs n in
  if jobs <= 1 then seq_map f xs
  else run_pool ~jobs ~tasks:(seq_tasks n 1) f xs

let parallel_map_chunked ?jobs ?chunk f xs =
  let n = Array.length xs in
  let jobs = resolve_jobs jobs n in
  let chunk =
    match chunk with
    | Some c when c <= 0 ->
        invalid_arg "Ir_exec.parallel_map_chunked: chunk must be > 0"
    | Some c -> c
    | None -> max 1 (n / (jobs * 4))
  in
  if jobs <= 1 then seq_map f xs
  else run_pool ~jobs ~tasks:(seq_tasks n chunk) f xs

let parallel_list_map ?jobs f xs =
  Array.to_list (parallel_map ?jobs f (Array.of_list xs))

(* Heaviest-first dispatch: the priority permutation orders items by
   decreasing [weight] (ties by input index, so the schedule is
   deterministic), and the seeding spreads that order round-robin across
   the worker queues.  With unequal task costs — one sweep group
   dominating a fused run, the 10M-gate cell dominating a cross-node
   matrix — starting the heavy items first bounds the makespan: a heavy
   item claimed last would otherwise run alone after every other worker
   has drained.  Work stealing covers the residual skew: a worker whose
   seeded share finishes early claims the still-unclaimed tail of the
   others' queues instead of idling. *)
let parallel_group_map ?jobs ?weight f xs =
  match weight with
  | None -> parallel_map ?jobs f xs
  | Some w ->
      let n = Array.length xs in
      let order = Array.init n Fun.id in
      let wt = Array.map w xs in
      Array.sort
        (fun a b ->
          match compare wt.(b) wt.(a) with 0 -> compare a b | c -> c)
        order;
      let jobs = resolve_jobs jobs n in
      if jobs <= 1 then begin
        (* Same dispatch order as the pool (heaviest first), results
           scattered back to input order. *)
        let permuted = Array.map (fun i -> xs.(i)) order in
        let res = seq_map f permuted in
        let out = Array.make n None in
        Array.iteri (fun k i -> out.(i) <- Some res.(k)) order;
        Array.map (function Some y -> y | None -> assert false) out
      end
      else
        run_pool ~jobs ~tasks:(Array.map (fun i -> (i, i + 1)) order) f xs

let now () = Unix.gettimeofday ()

module Incumbent = struct
  type t = { pending : int Atomic.t; published : int Atomic.t }

  let create ?(floor = -1) () =
    { pending = Atomic.make floor; published = Atomic.make floor }

  let offer t v =
    let rec raise_to cell =
      let cur = Atomic.get cell in
      if v > cur && not (Atomic.compare_and_set cell cur v) then raise_to cell
    in
    raise_to t.pending

  let publish t =
    let p = Atomic.get t.pending in
    let rec raise_to () =
      let cur = Atomic.get t.published in
      if p > cur then
        if Atomic.compare_and_set t.published cur p then true else raise_to ()
      else false
    in
    raise_to ()

  let current t = Atomic.get t.published
  let best_offer t = Atomic.get t.pending
end
