(** Domain-safe counters and span timers with a process-wide registry.

    The sweep engine fans rank computations out over OCaml 5 domains
    ({!Ir_exec}); this module is how the hot paths underneath it
    ({!Ir_core.Rank_dp}, {!Ir_assign.Greedy_fill}, the sweep drivers)
    report what they did.  Three kinds of instruments:

    - {e counters} — monotone integer event counts ([Atomic] adds, so
      concurrent increments from worker domains never lose updates).
      With one carve-out, every counter in this codebase counts a {e
      deterministic} quantity: its total after a run depends only on the
      work performed, not on how that work was scheduled across domains.
      Running the same sweep at [jobs = 1] and [jobs = N] must therefore
      produce {e identical} counter snapshots — an invariant the test
      suite and the bench harness both assert, and a cheap cross-domain
      determinism check for every future caching or sharding change.
      The carve-out is the [exec/sched/] namespace: counters there
      (steal counts, hardware-clamp events) describe the {e schedule
      itself} and legitimately differ between worker counts — identity
      checks strip them with {!filter_out} before comparing.
    - {e gauges} — high-water marks ([set_max]); deterministic under the
      same condition as counters, since a maximum is order-independent.
    - {e spans} — cumulative wall-clock timers with call counts.  Spans
      may nest freely (a [rank_dp/search] span inside a
      [sweep/point_search] span records into both), and workers time
      concurrently, so span seconds are {e cumulative across domains}
      and may exceed elapsed wall time; ratios of span totals (busy /
      wall = effective parallelism) are the meaningful reading.  Span
      values are scheduling-dependent — only counters are deterministic.

    Instruments are registered by name on first use and cached by the
    instrumented module (lookup is mutex-guarded; the increments
    themselves are lock-free).  Names are [subsystem/event], e.g.
    [rank_dp/pareto_truncations].  {!reset} zeroes every registered
    instrument without unregistering it, so cached handles stay valid.

    Collection is always on — an atomic add costs nanoseconds, far below
    the table builds it counts — and the CLI [--stats] flag (or
    [IA_RANK_STATS=1]) merely controls whether the report is printed. *)

type counter
(** A named monotone event counter. *)

val counter : string -> counter
(** [counter name] returns the registered counter for [name], creating
    it (at zero) on first use.  The same name always yields the same
    underlying counter. *)

val incr : counter -> unit
(** Add 1 (atomic). *)

val add : counter -> int -> unit
(** Add [n] (atomic).  Negative [n] is allowed but unused here; counters
    are treated as monotone. *)

val value : counter -> int
(** Current value. *)

type gauge
(** A named high-water mark: holds the maximum value ever offered via
    {!set_max}.  Unlike counters, gauges do not accumulate — but like
    them they are deterministic across schedulings whenever the offered
    values are (a maximum is order-independent), so the jobs=1 vs jobs=N
    identity checks cover gauges too.  Used for kernel capacity
    watermarks, e.g. [rank_dp/front_arena_states]. *)

val gauge : string -> gauge
(** [gauge name] returns the registered gauge for [name], creating it
    (at zero) on first use. *)

val set_max : gauge -> int -> unit
(** [set_max g v] raises [g] to [v] if [v] is larger (atomic CAS loop;
    the max of concurrent calls wins regardless of interleaving). *)

val gauge_value : gauge -> int
(** Current high-water mark. *)

type span
(** A named cumulative wall-clock timer with a call count. *)

val span : string -> span
(** [span name] returns the registered span for [name], creating it on
    first use. *)

val record : span -> float -> unit
(** [record s dt] adds [dt] seconds and one call (atomic). *)

val time : span -> (unit -> 'a) -> 'a
(** [time s f] runs [f ()] and records its wall-clock duration into [s]
    whether it returns or raises.  Nested [time] calls (on the same or
    different spans) are safe — each records its own full duration. *)

type span_stat = { calls : int; seconds : float }

type snapshot = {
  counters : (string * int) list;  (** name-sorted *)
  gauges : (string * int) list;  (** name-sorted *)
  spans : (string * span_stat) list;  (** name-sorted *)
}
(** A consistent-enough point-in-time copy of the registry: each
    instrument is read atomically; the set is not fenced against
    concurrent increments (snapshots are taken between sweep legs). *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered counter and span (registrations survive, so
    handles cached by instrumented modules remain valid). *)

val filter : prefix:string -> snapshot -> snapshot
(** The sub-snapshot of instruments whose names start with [prefix]
    (e.g. [~prefix:"serve"] isolates the serving layer's counters for
    the bench's determinism comparison). *)

val filter_out : prefix:string -> snapshot -> snapshot
(** The complement of {!filter}: drops instruments whose names start
    with [prefix].  The jobs=1 vs jobs=N identity checks use
    [~prefix:"exec/sched/"] to strip the scheduling-dependent scheduler
    counters (steals, clamp events) before comparing — everything else
    must still match exactly. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_span : snapshot -> string -> span_stat option

val pp_report : Format.formatter -> snapshot -> unit
(** Aligned tables: counters (name, value), gauges (name, max), then
    spans (name, calls, seconds).  Empty sections are omitted; an
    entirely empty snapshot prints a single placeholder line. *)
