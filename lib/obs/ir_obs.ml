type counter = int Atomic.t
type gauge = int Atomic.t

(* Spans accumulate integer nanoseconds: [Atomic.fetch_and_add] exists
   for ints only, and ns precision over decades of accumulated busy time
   stays far within 63 bits. *)
type span = { calls : int Atomic.t; ns : int Atomic.t }

(* Registration is rare (module init, first use) and mutex-guarded; the
   instruments themselves are lock-free atomics, safe to bump from any
   domain. *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32
let spans : (string, span) Hashtbl.t = Hashtbl.create 32

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add counters name c;
          c)

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let gauge name =
  with_lock (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
          let g = Atomic.make 0 in
          Hashtbl.add gauges name g;
          g)

(* CAS loop: the max of concurrent [set_max] calls always lands, from
   any domain, and the result is order-independent — a gauge over
   deterministic per-call values is itself deterministic across
   schedulings, like the counters. *)
let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

let gauge_value g = Atomic.get g

let span name =
  with_lock (fun () ->
      match Hashtbl.find_opt spans name with
      | Some s -> s
      | None ->
          let s = { calls = Atomic.make 0; ns = Atomic.make 0 } in
          Hashtbl.add spans name s;
          s)

let record s dt =
  ignore (Atomic.fetch_and_add s.calls 1);
  ignore (Atomic.fetch_and_add s.ns (int_of_float (dt *. 1e9)))

let time s f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record s (Unix.gettimeofday () -. t0)) f

type span_stat = { calls : int; seconds : float }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  spans : (string * span_stat) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  with_lock (fun () ->
      {
        counters =
          List.sort by_name
            (Hashtbl.fold
               (fun name c acc -> (name, Atomic.get c) :: acc)
               counters []);
        gauges =
          List.sort by_name
            (Hashtbl.fold
               (fun name g acc -> (name, Atomic.get g) :: acc)
               gauges []);
        spans =
          List.sort by_name
            (Hashtbl.fold
               (fun name (s : span) acc ->
                 ( name,
                   {
                     calls = Atomic.get s.calls;
                     seconds = float_of_int (Atomic.get s.ns) /. 1e9;
                   } )
                 :: acc)
               spans []);
      })

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g 0) gauges;
      Hashtbl.iter
        (fun _ (s : span) ->
          Atomic.set s.calls 0;
          Atomic.set s.ns 0)
        spans)

let has_prefix ~prefix name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let filter ~prefix snap =
  {
    counters = List.filter (fun (n, _) -> has_prefix ~prefix n) snap.counters;
    gauges = List.filter (fun (n, _) -> has_prefix ~prefix n) snap.gauges;
    spans = List.filter (fun (n, _) -> has_prefix ~prefix n) snap.spans;
  }

let filter_out ~prefix snap =
  {
    counters =
      List.filter (fun (n, _) -> not (has_prefix ~prefix n)) snap.counters;
    gauges = List.filter (fun (n, _) -> not (has_prefix ~prefix n)) snap.gauges;
    spans = List.filter (fun (n, _) -> not (has_prefix ~prefix n)) snap.spans;
  }

let find_counter snap name = List.assoc_opt name snap.counters
let find_gauge snap name = List.assoc_opt name snap.gauges
let find_span snap name = List.assoc_opt name snap.spans

let pp_report ppf snap =
  let name_width rows =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 rows
  in
  Format.fprintf ppf "@[<v>";
  if snap.counters = [] && snap.gauges = [] && snap.spans = [] then
    Format.fprintf ppf "(no metrics registered)@,";
  if snap.counters <> [] then begin
    let w = max (name_width snap.counters) (String.length "counter") in
    Format.fprintf ppf "%-*s  %12s@," w "counter" "value";
    Format.fprintf ppf "%s  %s@," (String.make w '-') (String.make 12 '-');
    List.iter
      (fun (n, v) -> Format.fprintf ppf "%-*s  %12d@," w n v)
      snap.counters
  end;
  if snap.gauges <> [] then begin
    if snap.counters <> [] then Format.fprintf ppf "@,";
    let w = max (name_width snap.gauges) (String.length "gauge") in
    Format.fprintf ppf "%-*s  %12s@," w "gauge" "max";
    Format.fprintf ppf "%s  %s@," (String.make w '-') (String.make 12 '-');
    List.iter
      (fun (n, v) -> Format.fprintf ppf "%-*s  %12d@," w n v)
      snap.gauges
  end;
  if snap.spans <> [] then begin
    if snap.counters <> [] || snap.gauges <> [] then Format.fprintf ppf "@,";
    let w = max (name_width snap.spans) (String.length "span") in
    Format.fprintf ppf "%-*s  %8s  %12s@," w "span" "calls" "seconds";
    Format.fprintf ppf "%s  %s  %s@," (String.make w '-') (String.make 8 '-')
      (String.make 12 '-');
    List.iter
      (fun (n, { calls; seconds }) ->
        Format.fprintf ppf "%-*s  %8d  %12.6f@," w n calls seconds)
      snap.spans
  end;
  Format.fprintf ppf "@]"
