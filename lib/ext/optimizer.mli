(** Direct optimization of interconnect architectures by rank — the
    paper's announced next step (Section 6: "we are also pursuing direct
    optimization of interconnect architectures according to our proposed
    metric, with the goal of evaluating ITRS and foundry BEOL
    architectures").

    The optimizer explores a candidate space around a node's Table 3
    stack: how many semi-global and global pairs to use, and geometry
    scalings (width+spacing pitch scaling, thickness scaling) of the
    semi-global and global classes — the same degrees of freedom the
    n-tier literature (Venkatesan et al., TVLSI 2001) optimizes — and
    evaluates each candidate with the full rank DP on a shared WLD. *)

type knob = {
  semi_global_pairs : int list;  (** candidate pair counts *)
  global_pairs : int list;
  pitch_scale : float list;  (** width+spacing multipliers for Mx and Mt *)
  thickness_scale : float list;  (** thickness multipliers for Mx and Mt *)
}

val default_knobs : knob
(** Pairs {1, 2} x {1}, pitch scales {0.8, 1.0, 1.25}, thickness scales
    {0.8, 1.0, 1.25} — 36 candidates. *)

type candidate = {
  structure : Ir_ia.Arch.structure;
  pitch_scale : float;
  thickness_scale : float;
  outcome : Ir_core.Outcome.t;
}
[@@deriving show]

val optimize :
  ?jobs:int ->
  ?knobs:knob ->
  ?bunch_size:int ->
  ?target_model:Ir_delay.Target.t ->
  Ir_tech.Design.t ->
  candidate * candidate list
(** [optimize design] evaluates the whole candidate grid (skipping
    candidates the node's stack cannot provide) and returns the best
    candidate (largest rank; ties broken toward fewer pairs, then
    unscaled geometry) together with all evaluated candidates.
    The WLD is generated once and shared; candidate problems are built
    on the {!Ir_exec} pool ([?jobs]) and ranked as one
    {!Ir_core.Rank_grid.eval_batch} wavefront (pool parallelism inside
    each DP level, boundary hints threaded down the batch), reported in
    grid order, so the winner does not depend on the job count.
    @raise Invalid_argument if no candidate is buildable. *)

val scaled_stack :
  Ir_tech.Stack.t -> pitch_scale:float -> thickness_scale:float ->
  Ir_tech.Stack.t
(** The stack transform the optimizer applies: width and spacing of the
    Mx and Mt classes multiplied by [pitch_scale], their thickness by
    [thickness_scale]; M1 and via widths untouched. *)
