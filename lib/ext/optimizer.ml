type knob = {
  semi_global_pairs : int list;
  global_pairs : int list;
  pitch_scale : float list;
  thickness_scale : float list;
}

let default_knobs =
  {
    semi_global_pairs = [ 1; 2 ];
    global_pairs = [ 1 ];
    pitch_scale = [ 0.8; 1.0; 1.25 ];
    thickness_scale = [ 0.8; 1.0; 1.25 ];
  }

type candidate = {
  structure : Ir_ia.Arch.structure;
  pitch_scale : float;
  thickness_scale : float;
  outcome : Ir_core.Outcome.t;
}
[@@deriving show]

let scale_geometry (g : Ir_tech.Geometry.t) ~pitch_scale ~thickness_scale =
  Ir_tech.Geometry.v
    ~width:(g.width *. pitch_scale)
    ~spacing:(g.spacing *. pitch_scale)
    ~thickness:(g.thickness *. thickness_scale)
    ~ild_thickness:(g.ild_thickness *. thickness_scale)
    ~via_width:g.via_width ()

let scaled_stack (stack : Ir_tech.Stack.t) ~pitch_scale ~thickness_scale =
  {
    stack with
    semi_global =
      scale_geometry stack.semi_global ~pitch_scale ~thickness_scale;
    global = scale_geometry stack.global ~pitch_scale ~thickness_scale;
  }

(* Better-candidate ordering: rank first, then fewer pairs, then the less
   exotic geometry (scales closest to 1). *)
let better a b =
  let pairs c =
    c.structure.Ir_ia.Arch.local_pairs
    + c.structure.Ir_ia.Arch.semi_global_pairs
    + c.structure.Ir_ia.Arch.global_pairs
  in
  let exoticism c =
    Float.abs (log c.pitch_scale) +. Float.abs (log c.thickness_scale)
  in
  if a.outcome.Ir_core.Outcome.rank_wires
     <> b.outcome.Ir_core.Outcome.rank_wires then
    a.outcome.Ir_core.Outcome.rank_wires
    > b.outcome.Ir_core.Outcome.rank_wires
  else if pairs a <> pairs b then pairs a < pairs b
  else exoticism a < exoticism b

let optimize ?jobs ?(knobs = default_knobs) ?(bunch_size = 10000)
    ?(target_model = Ir_delay.Target.Linear) design =
  let node = design.Ir_tech.Design.node in
  let base_stack = Ir_tech.Stack.of_node node in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.Ir_tech.Design.gates
         ~rent_p:design.Ir_tech.Design.rent_p
         ~fan_out:design.Ir_tech.Design.fan_out ())
  in
  (* Bunching depends only on the design's gate pitch — the candidates
     vary structure and geometry, never the design — so one bunching
     serves the whole grid instead of re-coarsening the WLD per
     candidate. *)
  let bunches =
    let pitch = Ir_tech.Design.effective_gate_pitch design in
    Ir_wld.Coarsen.bunch ~bunch_size
      (Ir_wld.Dist.map_length (fun l -> l *. pitch) wld)
  in
  (* Enumerate the grid first, drop candidates the stack cannot provide,
     build every survivor's problem on the Ir_exec pool (independent —
     each builds its own arch; the WLD is shared read-only), then rank
     the whole batch as one [Rank_grid.eval_batch] wavefront.  The pool
     parallelizes {e inside} each DP level instead of across candidates,
     and the batch's sequential phase B threads each candidate's
     boundary into the next search as its warm start — the same
     column-locality the old anchor hint exploited, but deterministic
     for the whole chain rather than one fixed anchor.  The result list
     keeps grid order, so the [better] fold below picks the same winner
     as a sequential scan. *)
  let combos =
    List.concat_map
      (fun sg ->
        List.concat_map
          (fun gl ->
            List.concat_map
              (fun ps ->
                List.map (fun ts -> (sg, gl, ps, ts)) knobs.thickness_scale)
              knobs.pitch_scale)
          knobs.global_pairs)
      knobs.semi_global_pairs
  in
  let metas =
    List.filter_map
      (fun (sg, gl, ps, ts) ->
        let structure =
          { Ir_ia.Arch.local_pairs = 1; semi_global_pairs = sg;
            global_pairs = gl }
        in
        let stack = scaled_stack base_stack ~pitch_scale:ps
            ~thickness_scale:ts in
        match Ir_ia.Arch.make ~structure ~stack ~design () with
        | exception Invalid_argument _ -> None
        | arch -> Some (structure, ps, ts, arch))
      combos
  in
  let candidates =
    let problems =
      Ir_exec.parallel_list_map ?jobs
        (fun (_, _, _, arch) ->
          Ir_assign.Problem.of_bunches ~target_model ~arch ~bunches ())
        metas
    in
    Logs.debug (fun f ->
        f "optimizer: batching %d candidates" (List.length problems));
    let outcomes =
      Ir_core.Rank_grid.eval_batch ?jobs (Array.of_list problems)
    in
    List.mapi
      (fun i (structure, pitch_scale, thickness_scale, _) ->
        { structure; pitch_scale; thickness_scale; outcome = outcomes.(i) })
      metas
  in
  match candidates with
  | [] -> invalid_arg "Optimizer.optimize: no buildable candidate"
  | first :: rest ->
      let best =
        List.fold_left (fun acc c -> if better c acc then c else acc) first
          rest
      in
      (best, candidates)
