(** Loading and saving wire length distributions.

    The paper uses the stochastic Davis WLD, but the rank metric is
    defined for {e any} WLD — a user with extracted netlist statistics can
    evaluate architectures against the real distribution.  The format is
    two-column CSV, [length,count], one bin per line; a header line is
    permitted and blank lines and [#] comments are skipped.  Lengths are
    in whatever unit the caller declares (the rank pipeline expects gate
    pitches from {!Ir_assign.Problem.make}).

    {b Untrusted input.}  The serving layer feeds client-supplied WLDs
    through this parser, so every malformed entry must be rejected with a
    descriptive error rather than silently repaired: lengths and counts
    that fail to parse, negative counts, non-positive / NaN / infinite
    lengths all name the offending line (and the file, when [name] is
    given).  [strict] additionally rejects files whose data lines are not
    strictly increasing in length — a trusting caller relies on
    {!Dist.of_bins} to sort and merge, but for untrusted input an
    out-of-order or duplicated line is far more likely a corrupted or
    truncated upload than a deliberate encoding, and merging it would
    silently change the query being answered. *)

val of_string : ?name:string -> ?strict:bool -> string -> (Dist.t, string) result
(** Parses CSV text into a distribution.  Bins merge and sort as in
    {!Dist.of_bins}.  Errors carry the offending line number, prefixed
    with [name] when given (e.g. ["wld.csv:3: ..."]).  [strict] (default
    [false]) rejects non-monotone data lines — see above. *)

val to_string : Dist.t -> string
(** Renders the distribution as CSV (ascending lengths, with header).
    The rendering is canonical: equal distributions render to identical
    bytes ({!Ir_serve.Fingerprint} hashes it). *)

val load : ?strict:bool -> string -> (Dist.t, string) result
(** [load path] reads and parses the file; parse errors are prefixed
    with [path] and the line number. *)

val save : string -> Dist.t -> (unit, string) result
(** [save path d] writes the distribution. *)
