(* Server inputs are untrusted: every failure names the line (and file,
   when the caller provides one) and nothing non-finite or negative gets
   past parsing.  [float_of_string_opt] happily accepts "nan" and "inf",
   so the positivity check below is written to reject NaN too
   (NaN > 0.0 is false). *)

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char ',' line with
    | [ a; b ] -> (
        match
          (float_of_string_opt (String.trim a),
           int_of_string_opt (String.trim b))
        with
        | Some length, Some count ->
            if count < 0 then
              Error (Printf.sprintf "line %d: negative count %d" lineno count)
            else if Float.is_nan length then
              Error (Printf.sprintf "line %d: NaN length" lineno)
            else if not (Float.is_finite length) then
              Error (Printf.sprintf "line %d: non-finite length" lineno)
            else if not (length > 0.0) then
              Error
                (Printf.sprintf "line %d: non-positive length %.17g" lineno
                   length)
            else Ok (Some { Dist.length; count })
        | _ ->
            (* Tolerate one header line. *)
            if lineno = 1 then Ok None
            else
              Error
                (Printf.sprintf "line %d: expected 'length,count', got %S"
                   lineno line))
    | _ ->
        Error
          (Printf.sprintf "line %d: expected two comma-separated fields"
             lineno)

let of_string ?name ?(strict = false) text =
  let where msg = match name with None -> msg | Some n -> n ^ ": " ^ msg in
  let lines = String.split_on_char '\n' text in
  (* [prev] tracks the last accepted data line for the strict monotone
     check: untrusted files must list lengths strictly increasing, so a
     shuffled or duplicated (truncated-and-reuploaded) file is rejected
     instead of silently merged into a different distribution. *)
  let rec loop lineno prev acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error e -> Error (where e)
        | Ok None -> loop (lineno + 1) prev acc rest
        | Ok (Some bin) ->
            (match prev with
            | Some (prev_lineno, prev_len)
              when strict && bin.Dist.length <= prev_len ->
                Error
                  (where
                     (Printf.sprintf
                        "line %d: length %.17g not strictly greater than \
                         %.17g on line %d (strict mode requires ascending \
                         lengths)"
                        lineno bin.Dist.length prev_len prev_lineno))
            | _ ->
                loop (lineno + 1)
                  (Some (lineno, bin.Dist.length))
                  (bin :: acc) rest))
  in
  match loop 1 None [] lines with
  | Error _ as e -> e
  | Ok [] -> Error (where "no data lines (empty distribution)")
  | Ok bins -> (
      match Dist.of_bins bins with
      | d -> Ok d
      | exception Invalid_argument msg -> Error (where msg))

let to_string d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "length,count\n";
  Array.iter
    (fun (b : Dist.bin) ->
      Buffer.add_string buf (Printf.sprintf "%.17g,%d\n" b.length b.count))
    (Dist.bins d);
  Buffer.contents buf

let load ?strict path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string ~name:path ?strict text
  | exception Sys_error msg -> Error msg

let save path d =
  match Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (to_string d))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
