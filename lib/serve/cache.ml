let stat_mem_hits = Ir_obs.counter "serve_cache/mem_hits"
let stat_disk_hits = Ir_obs.counter "serve_cache/disk_hits"
let stat_misses = Ir_obs.counter "serve_cache/misses"
let stat_evictions = Ir_obs.counter "serve_cache/evictions"
let stat_disk_corrupt = Ir_obs.counter "serve_cache/disk_corrupt"
let stat_disk_errors = Ir_obs.counter "serve_cache/disk_errors"
let stat_stores = Ir_obs.counter "serve_cache/stores"
let stat_tmp_swept = Ir_obs.counter "serve_cache/tmp_swept"

(* ---- in-memory LRU ---------------------------------------------------- *)

(* Classic doubly-linked recency list + hashtable.  [head] is the most
   recently used end, [tail] the next eviction victim.  All mutation
   happens under the cache lock. *)
type node = {
  digest : string;
  payload : string;
  mutable prev : node option;  (* towards head (more recent) *)
  mutable next : node option;  (* towards tail (less recent) *)
}

type t = {
  capacity : int;
  dir : string option;
  lock : Mutex.t;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

(* Insert or refresh under the lock; evicts past capacity. *)
let mem_store_locked t ~digest payload =
  (match Hashtbl.find_opt t.table digest with
  | Some n -> unlink t n; Hashtbl.remove t.table digest
  | None -> ());
  let n = { digest; payload; prev = None; next = None } in
  push_front t n;
  Hashtbl.replace t.table digest n;
  while Hashtbl.length t.table > t.capacity do
    match t.tail with
    | None -> assert false
    | Some victim ->
        unlink t victim;
        Hashtbl.remove t.table victim.digest;
        Ir_obs.incr stat_evictions
  done

let mem_find_locked t ~digest =
  match Hashtbl.find_opt t.table digest with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.payload

(* ---- on-disk store ---------------------------------------------------- *)

(* Entry file layout (text, four lines):
     ia-rank/cache/1
     digest: <fingerprint digest hex>
     payload-md5: <hex md5 of the payload line, without its newline>
     <payload>
   The schema tag versions the whole serving stack's result semantics: a
   future PR that changes what a payload means bumps it and every old
   entry self-invalidates on load. *)
let schema_tag = "ia-rank/cache/1"

let entry_path ~dir ~digest =
  (* Digests are hex, so the filename needs no escaping; reject anything
     else outright rather than building a traversal path. *)
  if
    digest = ""
    || String.exists
         (fun c ->
           not
             ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
             || (c >= 'A' && c <= 'F')))
         digest
  then invalid_arg "Cache.entry_path: digest is not hex";
  Filename.concat dir (digest ^ ".entry")

let render_entry ~digest payload =
  String.concat ""
    [
      schema_tag; "\n"; "digest: "; digest; "\n"; "payload-md5: ";
      Digest.to_hex (Digest.string payload); "\n"; payload; "\n";
    ]

let disk_store t ~digest payload =
  match t.dir with
  | None -> ()
  | Some dir -> (
      (* Temp-file + rename: concurrent servers sharing a cache dir (or a
         crash mid-write) can never publish a torn entry — readers see
         the old file or the complete new one. *)
      match Filename.temp_file ~temp_dir:dir ("." ^ digest) ".tmp" with
      | exception Sys_error _ -> Ir_obs.incr stat_disk_errors
      | tmp -> (
          match
            Out_channel.with_open_bin tmp (fun oc ->
                Out_channel.output_string oc (render_entry ~digest payload));
            Sys.rename tmp (entry_path ~dir ~digest)
          with
          | () -> ()
          | exception Sys_error _ ->
              (* A failed write or rename must not leave the temp file
                 behind: under steady traffic against a full or
                 misbehaving disk the orphans would accumulate without
                 bound (and each pins a directory entry the sweeps below
                 then have to reap). *)
              Ir_obs.incr stat_disk_errors;
              (try Sys.remove tmp with Sys_error _ -> ())))

(* Crash-orphaned temp files (a server killed between [temp_file] and the
   rename) are reaped when a cache is opened over the directory.  Only
   files demonstrably stale are touched: a concurrent server's in-flight
   temp file is at most seconds old, so the age threshold keeps the sweep
   safe against live writers sharing the directory. *)
let tmp_stale_age = 600.0

let sweep_stale_tmps dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      let now = Unix.gettimeofday () in
      Array.iter
        (fun name ->
          if
            String.length name > 4
            && name.[0] = '.'
            && Filename.check_suffix name ".tmp"
          then
            let path = Filename.concat dir name in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> ()
            | st ->
                if now -. st.Unix.st_mtime > tmp_stale_age then (
                  match Sys.remove path with
                  | () -> Ir_obs.incr stat_tmp_swept
                  | exception Sys_error _ -> ()))
        names

let discard_corrupt ~path =
  Ir_obs.incr stat_disk_corrupt;
  try Sys.remove path with Sys_error _ -> ()

(* Validate everything before believing anything: schema tag, recorded
   digest vs the digest requested, payload checksum.  The filename alone
   proves nothing (an attacker or a confused sync tool can rename
   files). *)
let disk_find t ~digest =
  match t.dir with
  | None -> None
  | Some dir -> (
      let path = entry_path ~dir ~digest in
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error _ -> None (* absent: a plain miss, not corruption *)
      | contents -> (
          match String.split_on_char '\n' contents with
          | [ tag; digest_line; md5_line; payload; "" ]
            when tag = schema_tag
                 && digest_line = "digest: " ^ digest
                 && md5_line
                    = "payload-md5: "
                      ^ Digest.to_hex (Digest.string payload) ->
              Some payload
          | _ ->
              discard_corrupt ~path;
              None))

(* ---- public API ------------------------------------------------------- *)

let create ?(capacity = 512) ?dir () =
  let capacity = max 1 capacity in
  let make () =
    {
      capacity;
      dir;
      lock = Mutex.create ();
      table = Hashtbl.create (2 * capacity);
      head = None;
      tail = None;
    }
  in
  match dir with
  | None -> Ok (make ())
  | Some d -> (
      match Ir_sweep.Export.ensure_dir d with
      | Ok () ->
          sweep_stale_tmps d;
          Ok (make ())
      | Error e -> Error e)

type source = Memory | Disk

let find t ~digest =
  match with_lock t (fun () -> mem_find_locked t ~digest) with
  | Some payload ->
      Ir_obs.incr stat_mem_hits;
      Some (payload, Memory)
  | None -> (
      match disk_find t ~digest with
      | Some payload ->
          (* Promote: the next lookup is a memory hit. *)
          with_lock t (fun () -> mem_store_locked t ~digest payload);
          Ir_obs.incr stat_disk_hits;
          Some (payload, Disk)
      | None ->
          Ir_obs.incr stat_misses;
          None)

let store t ~digest payload =
  Ir_obs.incr stat_stores;
  with_lock t (fun () -> mem_store_locked t ~digest payload);
  disk_store t ~digest payload

let mem_count t = with_lock t (fun () -> Hashtbl.length t.table)

let mem_keys_lru_first t =
  with_lock t (fun () ->
      let rec walk acc = function
        | None -> acc
        | Some n -> walk (n.digest :: acc) n.next
      in
      (* Walk head->tail collects most-recent-first; the accumulator
         reverses it into LRU-first. *)
      walk [] t.head)
