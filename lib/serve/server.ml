let stat_requests = Ir_obs.counter "serve/requests"
let stat_coalesced = Ir_obs.counter "serve/coalesced"
let stat_shed = Ir_obs.counter "serve/shed"
let stat_timeouts = Ir_obs.counter "serve/timeouts"
let stat_computes = Ir_obs.counter "serve/computes"
let stat_cold = Ir_obs.counter "serve/cold_computes"
let stat_table_builds = Ir_obs.counter "serve/table_builds"
let stat_table_hits = Ir_obs.counter "serve/table_hits"
let stat_table_restores = Ir_obs.counter "serve/table_restores"
let stat_grid_hits = Ir_obs.counter "serve/grid_hits"
let gauge_queue = Ir_obs.gauge "serve/queue_depth_max"
let span_request = Ir_obs.span "serve/request"
let span_compute = Ir_obs.span "serve/compute"

type job = {
  digest : string;
  fp : Fingerprint.t;
  mutable payload : (string, Protocol.error) result option;
  mutable attached : int;  (* coalesced waiters beyond the creator *)
}

(* One resident grid family ({!Fingerprint.family_key}): a
   {!Ir_core.Rank_grid} holding every (materials, clock) plane the
   family's queries have touched, so a query that misses its own
   {!Fingerprint.table_key} but neighbors a warm family is answered from
   the resident grid (one plane build or — for a known plane — one
   phase-B search) instead of starting cold.  [entry_lock] serializes
   access within the family: the grid's suffix-fit memo and boundary
   hint are single-domain mutable state, and under systhreads the
   computations could not overlap anyway.  Truncated planes stay
   resident but are never queried ({!Ir_core.Rank_grid.query} refuses
   them), pinning those table keys cold without rebuild loops. *)
type pool_entry = {
  entry_lock : Mutex.t;
  mutable grid : Ir_core.Rank_grid.t option;  (* None until first query *)
  mutable last_used : int;  (* pool's logical clock, for LRU eviction *)
}

type t = {
  cache : Cache.t;
  snapshot : Snapshot.t option;
  queue_capacity : int;
  table_pool : int;
  request_timeout : float;
  on_compute_start : string -> unit;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  inflight : (string, job) Hashtbl.t;
  pool : (string, pool_entry) Hashtbl.t;
  mutable pool_clock : int;
  draining : bool Atomic.t;
  ticker_stop : bool Atomic.t;
  stop_pipe_r : Unix.file_descr;
  stop_pipe_w : Unix.file_descr;
  registry : Tcp.registry;  (* live socket connections *)
  mutable threads : Thread.t list;  (* workers + ticker *)
}

let draining t = Atomic.get t.draining

(* ---- warm-table pool -------------------------------------------------- *)

let pool_entry t key =
  Mutex.lock t.mutex;
  let entry =
    match Hashtbl.find_opt t.pool key with
    | Some e -> e
    | None ->
        if Hashtbl.length t.pool >= t.table_pool then begin
          (* Evict the least recently used family.  A worker still
             holding the evicted entry keeps its own reference; dropping
             it from the table only stops new queries from finding it. *)
          let victim =
            Hashtbl.fold
              (fun k e acc ->
                match acc with
                | Some (_, best) when best.last_used <= e.last_used -> acc
                | _ -> Some (k, e))
              t.pool None
          in
          match victim with
          | Some (k, _) -> Hashtbl.remove t.pool k
          | None -> ()
        end;
        let e = { entry_lock = Mutex.create (); grid = None; last_used = 0 } in
        Hashtbl.replace t.pool key e;
        e
  in
  t.pool_clock <- t.pool_clock + 1;
  entry.last_used <- t.pool_clock;
  Mutex.unlock t.mutex;
  entry

(* The warm path is taken only when provably exact: DP algorithm, the
   query's (materials, clock) plane resident in the family grid, built
   at the full repeater budget with zero Pareto truncation — then one
   phase-B search rebinds the budget (the
   {!Ir_core.Rank_dp.search_budgets} displacement argument, via
   {!Ir_core.Rank_grid.query}).  Everything else falls through to a cold
   compute, so served outcomes are always byte-identical to
   [Fingerprint.compute_cold]. *)
let compute_outcome t (fp : Fingerprint.t) =
  let warm () =
    match fp.algo with
    | Fingerprint.Greedy -> None
    (* ε-compressed queries are deliberately inexact; the pool only
       holds exact full-budget tables, so they always compute cold. *)
    | Fingerprint.Dp when fp.epsilon <> 0.0 -> None
    (* Power-budgeted queries need the power plane, which the pool's
       2-way tables predate; the budget-rebinding displacement argument
       does not extend across that representation change, so they
       compute cold (see DESIGN.md §17 on budget rebinding). *)
    | Fingerprint.Dp when fp.power_budget < infinity -> None
    | Fingerprint.Dp ->
        let entry = pool_entry t (Fingerprint.family_key fp) in
        Mutex.lock entry.entry_lock;
        Fun.protect ~finally:(fun () -> Mutex.unlock entry.entry_lock)
        @@ fun () ->
        (* The family's full-budget problem.  Only the first query of a
           family builds it from scratch; every later plane derives from
           the resident grid's base via the rescale-reuse constructors
           (bit-equal to from-scratch — [Problem.with_materials] /
           [with_clock] rebuild exactly what the knob moves). *)
        let full () =
          Ir_assign.Problem.with_repeater_fraction (Fingerprint.problem fp)
            1.0
        in
        let grid =
          match entry.grid with
          | Some g -> g
          | None ->
              let g = Ir_core.Rank_grid.resident (full ()) in
              entry.grid <- Some g;
              g
        in
        let materials = Ir_ia.Materials.v ~k:fp.k ~miller:fp.miller () in
        let plane = Ir_core.Rank_grid.point ~materials ~clock:fp.clock () in
        (match Ir_core.Rank_grid.plane_tables grid plane with
        | Some _ -> Ir_obs.incr stat_table_hits
        | None -> (
            if Ir_core.Rank_grid.planes grid > 0 then
              (* A neighboring family member left its grid resident:
                 this table-key miss grows it by one plane instead of
                 starting cold. *)
              Ir_obs.incr stat_grid_hits;
            let key = Fingerprint.table_key fp in
            (* Prefer a snapshotted build from a previous process.  Only
               truncation-free tables are ever saved, but re-check anyway
               — the exactness invariant must not rest on what a disk
               claims. *)
            let restored =
              match t.snapshot with
              | None -> None
              | Some s -> (
                  match Snapshot.load s ~key ~problem:(full ()) with
                  | Some tables
                    when Ir_core.Rank_dp.table_truncations tables = 0 ->
                      Some tables
                  | Some _ | None -> None)
            in
            match restored with
            | Some tables ->
                Ir_obs.incr stat_table_restores;
                Ir_core.Rank_grid.adopt grid plane tables
            | None -> (
                Ir_obs.incr stat_table_builds;
                (* The fraction-less point is the full-budget cell:
                   [perturb] builds the plane at the grid's base
                   fraction, 1.0. *)
                ignore (Ir_core.Rank_grid.perturb grid plane);
                match Ir_core.Rank_grid.plane_tables grid plane with
                | Some tables
                  when Ir_core.Rank_dp.table_truncations tables = 0 -> (
                    match t.snapshot with
                    | Some s -> Snapshot.save s ~key tables
                    | None -> ())
                | Some _ | None -> ())));
        Ir_core.Rank_grid.query grid
          (Ir_core.Rank_grid.point ~materials ~clock:fp.clock
             ~fraction:fp.repeater_fraction ())
  in
  match warm () with
  | Some outcome -> outcome
  | None ->
      Ir_obs.incr stat_cold;
      Fingerprint.compute_cold fp

let compute_payload t fp =
  Ir_obs.time span_compute @@ fun () ->
  Protocol.result_payload (compute_outcome t fp)

(* ---- workers ---------------------------------------------------------- *)

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if draining t then None
    else begin
      (* Woken by submitters and by the ticker (which also converts a
         [shutdown] — async-signal-safe, so it cannot broadcast — into a
         wakeup within one tick). *)
      Condition.wait t.cond t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some job ->
      Mutex.unlock t.mutex;
      Ir_obs.incr stat_computes;
      t.on_compute_start job.digest;
      let result =
        match compute_payload t job.fp with
        | payload -> Ok payload
        | exception e -> Error (Protocol.Internal (Printexc.to_string e))
      in
      (* Publish to the cache before waking waiters: a racing duplicate
         query that misses the inflight table must still hit the cache. *)
      (match result with
      | Ok payload -> Cache.store t.cache ~digest:job.digest payload
      | Error _ -> ());
      Mutex.lock t.mutex;
      job.payload <- Some result;
      Hashtbl.remove t.inflight job.digest;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      worker_loop t

let ticker_loop t =
  while not (Atomic.get t.ticker_stop) do
    Thread.delay 0.05;
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  done

let create ?(workers = 2) ?(queue_capacity = 64) ?(table_pool = 8)
    ?(request_timeout = 300.) ?(on_compute_start = fun _ -> ()) ?snapshot
    ~cache () =
  let stop_pipe_r, stop_pipe_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      cache;
      snapshot;
      queue_capacity = max 1 queue_capacity;
      table_pool = max 1 table_pool;
      request_timeout;
      on_compute_start;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      inflight = Hashtbl.create 64;
      pool = Hashtbl.create 16;
      pool_clock = 0;
      draining = Atomic.make false;
      ticker_stop = Atomic.make false;
      stop_pipe_r;
      stop_pipe_w;
      registry = Tcp.registry ();
      threads = [];
    }
  in
  let workers = max 1 workers in
  t.threads <-
    Thread.create ticker_loop t
    :: List.init workers (fun _ -> Thread.create worker_loop t);
  t

let shutdown t =
  (* Callable from a SIGTERM handler: an atomic store and a pipe write,
     no locks.  Sleeping workers notice at the next ticker broadcast;
     the accept loop notices through the pipe immediately. *)
  if not (Atomic.exchange t.draining true) then
    ignore (Unix.write t.stop_pipe_w (Bytes.of_string "x") 0 1)

let join t =
  Atomic.set t.ticker_stop true;
  List.iter (fun th -> try Thread.join th with _ -> ()) t.threads;
  t.threads <- []

(* ---- the request path ------------------------------------------------- *)

let pending_waiters t ~digest =
  Mutex.lock t.mutex;
  let n =
    match Hashtbl.find_opt t.inflight digest with
    | Some job -> job.attached
    | None -> 0
  in
  Mutex.unlock t.mutex;
  n

(* Wait (holding [t.mutex]) until the job resolves or the deadline
   passes.  OCaml's [Condition] has no timed wait; the ticker bounds how
   long past the deadline a waiter can sleep. *)
let rec await_job t job ~deadline =
  match job.payload with
  | Some r -> r
  | None ->
      if Ir_exec.now () > deadline then begin
        Ir_obs.incr stat_timeouts;
        (* The computation carries on and still populates the cache;
           only this waiter gives up. *)
        Error Protocol.Timeout
      end
      else begin
        Condition.wait t.cond t.mutex;
        await_job t job ~deadline
      end

let submit_query t fp =
  let digest = Fingerprint.digest fp in
  match Cache.find t.cache ~digest with
  | Some (payload, Cache.Memory) -> Ok (payload, "memory")
  | Some (payload, Cache.Disk) -> Ok (payload, "disk")
  | None ->
      let deadline = Ir_exec.now () +. t.request_timeout in
      Mutex.lock t.mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
      if draining t then Error Protocol.Shutting_down
      else begin
        let job =
          match Hashtbl.find_opt t.inflight digest with
          | Some job ->
              job.attached <- job.attached + 1;
              Ir_obs.incr stat_coalesced;
              Ok job
          | None ->
              if Queue.length t.queue >= t.queue_capacity then begin
                Ir_obs.incr stat_shed;
                Error Protocol.Overloaded
              end
              else begin
                let job = { digest; fp; payload = None; attached = 0 } in
                Hashtbl.replace t.inflight digest job;
                Queue.push job t.queue;
                Ir_obs.set_max gauge_queue (Queue.length t.queue);
                Condition.broadcast t.cond;
                Ok job
              end
        in
        match job with
        | Error e -> Error e
        | Ok job -> (
            match await_job t job ~deadline with
            | Ok payload ->
                (* Coalesced waiters and the creator answer identically:
                   the payload was computed for this very request, so the
                   source is "cold" for all of them — byte-identical
                   responses for identical concurrent queries. *)
                Ok (payload, "cold")
            | Error e -> Error e)
      end

let stats t =
  ignore t;
  (* Both serve/* and serve_cache/* — the whole serving layer. *)
  (Ir_obs.filter ~prefix:"serve" (Ir_obs.snapshot ())).Ir_obs.counters

let handle t (req : Protocol.request) =
  Ir_obs.time span_request @@ fun () ->
  Ir_obs.incr stat_requests;
  let body =
    match req.op with
    | Protocol.Ping -> Protocol.Pong
    | Protocol.Stats -> Protocol.Stats_reply (stats t)
    | Protocol.Query q -> (
        match Protocol.fingerprint_of_query q with
        | Error msg -> Protocol.Error (Protocol.Bad_request msg)
        | Ok fp -> (
            match submit_query t fp with
            | Ok (payload, source) -> Protocol.Result { source; payload }
            | Error e -> Protocol.Error e))
  in
  { Protocol.id = req.id; body }

(* ---- transports ------------------------------------------------------- *)

let handle_line t line =
  match Protocol.decode_request line with
  | Ok req -> Protocol.encode_response (handle t req)
  | Error e ->
      Protocol.encode_response { Protocol.id = ""; body = Protocol.Error e }

let serve_stdio t ic oc =
  (* A supervisor pipe can vanish as abruptly as a socket client: ignore
     SIGPIPE and treat any channel error as end-of-conversation instead
     of letting Sys_error unwind through the daemon. *)
  Tcp.ignore_sigpipe ();
  let rec loop () =
    match In_channel.input_line ic with
    | exception Sys_error _ -> ()
    | None -> ()
    | Some line -> (
        match
          Out_channel.output_string oc (handle_line t line);
          Out_channel.output_char oc '\n';
          Out_channel.flush oc
        with
        | () -> loop ()
        | exception Sys_error _ -> ())
  in
  loop ()

let live_connections t = Tcp.live_connections t.registry

let serve_listeners t ?tcp ?on_tcp_listen ?socket () =
  match Tcp.bind_listeners ?tcp ?on_tcp_listen ?socket () with
  | Error e -> Error e
  | Ok (fds, cleanup) ->
      Tcp.serve_loop ~registry:t.registry ~stop:t.stop_pipe_r
        ~draining:(fun () -> draining t)
        ~handler:(handle_line t) fds;
      cleanup ();
      shutdown t;
      join t;
      Ok ()

let serve_unix t ~socket = serve_listeners t ~socket ()
