(** Sharded serve tier: a fleet of [ia_rank serve] worker processes
    behind one router.

    {!start} forks-and-execs [shards] copies of the serve binary, each a
    full single-process {!Server} listening on its own unix socket under
    [dir], all sharing one disk {!Cache} directory and one {!Snapshot}
    directory (both are safe for concurrent writers).  The router then
    accepts client connections (TCP and/or unix, via {!serve}) and
    forwards each query — {e the original request line, verbatim} — to
    the shard owning its warm-table family, relaying the response line
    verbatim back.  Routing hashes {!Fingerprint.table_key}, so every
    repeater fraction of a family lands on the same shard and the fleet
    builds each family's phase-A DP tables exactly once; because nothing
    is re-encoded in flight, a sharded answer is byte-identical to a
    single-process one.

    Per shard the router keeps a small pool of idle connections, retried
    once on a fresh connection when a pooled one turns out stale.  When
    even the fresh connection fails, the router plays supervisor: a
    [waitpid WNOHANG] that reaps the shard's pid is proof of death, and
    the router forks one replacement onto the same socket path (counted
    in [serve_shard/restarts]) and retries once more.  A shard that is
    merely wedged — alive but unresponsive — is never killed or
    replaced; its query answers with the [Internal] error while the rest
    of the fleet keeps serving.

    [Ping] answers locally; [Stats] fans out to every shard and returns
    the summed counters plus the router's own [serve_router/*]
    ([requests], [forwarded], [retries], [shard_errors]).

    The router itself computes nothing and holds no tables: it is a few
    hash lookups and line copies per request, which is what lets one
    process front many compute-bound shards. *)

type t

val start :
  ?workers:int ->
  ?cache_entries:int ->
  ?table_pool:int ->
  ?queue_capacity:int ->
  ?request_timeout:float ->
  ?cache_dir:string ->
  ?snapshot_dir:string ->
  exe:string ->
  shards:int ->
  dir:string ->
  unit ->
  (t, string) result
(** Spawns the fleet and waits (up to 30 s) for every shard's socket to
    come up; on failure the already-spawned shards are killed.  [exe] is
    the serve binary (normally [Sys.executable_name]); the per-shard
    options are forwarded to each worker's [serve] command line. *)

val serve :
  t ->
  ?tcp:string * int ->
  ?on_tcp_listen:(int -> unit) ->
  ?socket:string ->
  unit ->
  (unit, string) result
(** Accepts and routes until {!shutdown}, on a TCP endpoint (port 0
    binds ephemerally, reported through [on_tcp_listen]), a unix socket,
    or both — the same hardened accept loop as
    {!Server.serve_listeners}.  On return the listeners are closed and
    the fleet is stopped ({!stop}). *)

val handle_line : t -> string -> string
(** One raw request line in, one response line out — the routing step
    without a listener, exposed for tests. *)

val route_key : t -> string -> int
(** Which shard owns a {!Fingerprint.table_key} (exposed so tests and
    the bench can assert the family-affinity invariant). *)

val shards : t -> int

val shard_sockets : t -> string array
(** Each shard's own unix socket — direct per-shard access for
    per-shard stats in the bench. *)

val shard_pids : t -> int array
(** A copy of the fleet's current pids (a restarted shard's entry is its
    replacement's pid) — exposed so the crash-recovery test can SIGKILL
    a real shard and assert the supervisor respawned it. *)

val live_connections : t -> int
(** Currently open router client connections. *)

val shutdown : t -> unit
(** Begins draining the router; async-signal-usable (atomic flag plus
    self-pipe, callable from a SIGTERM handler).  Idempotent. *)

val stop : t -> unit
(** SIGTERMs the fleet (SIGKILL after a 10 s grace), reaps the
    children, closes pooled connections and removes leftover shard
    sockets.  {!serve} calls this on the way out; call it directly only
    if {!serve} was never entered. *)
