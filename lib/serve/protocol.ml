let version = 1

type query = {
  node : string;
  gates : int;
  rent_p : float option;
  fan_out : float option;
  clock : float option;
  repeater_fraction : float option;
  k : float option;
  miller : float option;
  bunch_size : int option;
  structure : (int * int * int) option;
  greedy : bool;
  epsilon : float option;
  power_budget : float option;
  activity : float option;
  wld_csv : string option;
}

let query ?rent_p ?fan_out ?clock ?repeater_fraction ?k ?miller ?bunch_size
    ?structure ?(greedy = false) ?epsilon ?power_budget ?activity ?wld_csv
    ~node ~gates () =
  {
    node;
    gates;
    rent_p;
    fan_out;
    clock;
    repeater_fraction;
    k;
    miller;
    bunch_size;
    structure;
    greedy;
    epsilon;
    power_budget;
    activity;
    wld_csv;
  }

type op = Ping | Stats | Query of query
type request = { id : string; op : op }

type error =
  | Bad_request of string
  | Overloaded
  | Timeout
  | Shutting_down
  | Internal of string

let retryable = function
  | Overloaded | Shutting_down -> true
  | Bad_request _ | Timeout | Internal _ -> false

let error_code = function
  | Bad_request _ -> "bad_request"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Shutting_down -> "shutting_down"
  | Internal _ -> "internal"

let error_message = function
  | Bad_request m -> m
  | Overloaded -> "queue full, retry later"
  | Timeout -> "request deadline exceeded"
  | Shutting_down -> "server draining, retry elsewhere"
  | Internal m -> m

type body =
  | Pong
  | Stats_reply of (string * int) list
  | Result of { source : string; payload : string }
  | Error of error

type response = { id : string; body : body }

let fingerprint_of_query q =
  let ( let* ) = Result.bind in
  let* wld =
    match q.wld_csv with
    | None -> Ok None
    | Some csv -> (
        match Ir_wld.Io.of_string ~name:"wld" ~strict:true csv with
        | Ok d -> Ok (Some d)
        | Error e -> Error e)
  in
  let structure =
    Option.map
      (fun (l, s, g) ->
        {
          Ir_ia.Arch.local_pairs = l;
          semi_global_pairs = s;
          global_pairs = g;
        })
      q.structure
  in
  Fingerprint.v ?rent_p:q.rent_p ?fan_out:q.fan_out ?clock:q.clock
    ?repeater_fraction:q.repeater_fraction ?k:q.k ?miller:q.miller
    ?bunch_size:q.bunch_size ?structure ?epsilon:q.epsilon
    ?power_budget:q.power_budget ?activity:q.activity ?wld
    ~algo:(if q.greedy then Fingerprint.Greedy else Fingerprint.Dp)
    ~node:q.node ~gates:q.gates ()

(* Fixed field order: these bytes are the cache payload and must be
   deterministic across call sites. *)
let result_payload (o : Ir_core.Outcome.t) =
  Json.to_string
    (Obj
       [
         ("rank_wires", Json.Int o.rank_wires);
         ("total_wires", Json.Int o.total_wires);
         ("assignable", Json.Bool o.assignable);
         ("boundary_bunch", Json.Int o.boundary_bunch);
         ("exact", Json.Bool o.exact);
         ("normalized", Json.Float (Ir_core.Outcome.normalized o));
       ])

(* ---- encoding --------------------------------------------------------- *)

let opt name conv = function None -> [] | Some x -> [ (name, conv x) ]

let json_of_query q =
  Json.Obj
    ([ ("node", Json.Str q.node); ("gates", Json.Int q.gates) ]
    @ opt "rent_p" (fun f -> Json.Float f) q.rent_p
    @ opt "fan_out" (fun f -> Json.Float f) q.fan_out
    @ opt "clock" (fun f -> Json.Float f) q.clock
    @ opt "repeater_fraction" (fun f -> Json.Float f) q.repeater_fraction
    @ opt "k" (fun f -> Json.Float f) q.k
    @ opt "miller" (fun f -> Json.Float f) q.miller
    @ opt "bunch_size" (fun n -> Json.Int n) q.bunch_size
    @ opt "structure"
        (fun (l, s, g) -> Json.Arr [ Json.Int l; Json.Int s; Json.Int g ])
        q.structure
    @ (if q.greedy then [ ("greedy", Json.Bool true) ] else [])
    @ opt "epsilon" (fun f -> Json.Float f) q.epsilon
    @ opt "power_budget" (fun f -> Json.Float f) q.power_budget
    @ opt "activity" (fun f -> Json.Float f) q.activity
    @ opt "wld_csv" (fun s -> Json.Str s) q.wld_csv)

let encode_request { id; op } =
  let op_name, extra =
    match op with
    | Ping -> ("ping", [])
    | Stats -> ("stats", [])
    | Query q -> ("query", [ ("query", json_of_query q) ])
  in
  Json.to_string
    (Obj
       ([
          ("v", Json.Int version);
          ("id", Json.Str id);
          ("op", Json.Str op_name);
        ]
       @ extra))

let encode_response { id; body } =
  let fields =
    match body with
    | Pong -> [ ("status", Json.Str "pong") ]
    | Stats_reply counters ->
        [
          ("status", Json.Str "stats");
          ( "counters",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
        ]
    | Result { source; payload } -> (
        (* The payload bytes are canonical JSON we produced; re-embedding
           the parsed value keeps the envelope a single well-formed
           object while [decode_response] re-canonicalizes to the same
           bytes (fixed field order both ways). *)
        match Json.of_string payload with
        | Ok j ->
            [
              ("status", Json.Str "ok");
              ("source", Json.Str source);
              ("result", j);
            ]
        | Error e -> invalid_arg ("Protocol.encode_response: bad payload: " ^ e)
        )
    | Error err ->
        [
          ("status", Json.Str "error");
          ("error", Json.Str (error_code err));
          ("message", Json.Str (error_message err));
          ("retryable", Json.Bool (retryable err));
        ]
  in
  Json.to_string
    (Obj ([ ("v", Json.Int version); ("id", Json.Str id) ] @ fields))

(* ---- decoding --------------------------------------------------------- *)

let field name j = Json.member name j

let require what = function
  | Some x -> Ok x
  | None -> Result.error (Printf.sprintf "missing or ill-typed %s" what)

let get_str name j = require (name ^ " (string)") (Option.bind (field name j) Json.to_str)
let get_int name j = require (name ^ " (int)") (Option.bind (field name j) Json.to_int)

let opt_field name conv what j =
  match field name j with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None ->
          Result.error (Printf.sprintf "field %s must be %s" name what))

let query_of_json j =
  let ( let* ) = Result.bind in
  let* node = get_str "node" j in
  let* gates = get_int "gates" j in
  let* rent_p = opt_field "rent_p" Json.to_float "a number" j in
  let* fan_out = opt_field "fan_out" Json.to_float "a number" j in
  let* clock = opt_field "clock" Json.to_float "a number" j in
  let* repeater_fraction =
    opt_field "repeater_fraction" Json.to_float "a number" j
  in
  let* k = opt_field "k" Json.to_float "a number" j in
  let* miller = opt_field "miller" Json.to_float "a number" j in
  let* bunch_size = opt_field "bunch_size" Json.to_int "an int" j in
  let* structure =
    opt_field "structure"
      (fun v ->
        match Json.to_list v with
        | Some [ a; b; c ] -> (
            match (Json.to_int a, Json.to_int b, Json.to_int c) with
            | Some l, Some s, Some g -> Some (l, s, g)
            | _ -> None)
        | _ -> None)
      "an [l,s,g] int triple" j
  in
  let* greedy =
    let* b = opt_field "greedy" Json.to_bool "a bool" j in
    Ok (Option.value b ~default:false)
  in
  let* epsilon = opt_field "epsilon" Json.to_float "a number" j in
  (* Optional fields within protocol version 1: servers predating them
     never see the keys (clients omit them at their defaults), and old
     clients simply never send them — same compatibility stance as
     [epsilon]. *)
  let* power_budget = opt_field "power_budget" Json.to_float "a number" j in
  let* activity = opt_field "activity" Json.to_float "a number" j in
  let* wld_csv = opt_field "wld_csv" Json.to_str "a string" j in
  Ok
    {
      node;
      gates;
      rent_p;
      fan_out;
      clock;
      repeater_fraction;
      k;
      miller;
      bunch_size;
      structure;
      greedy;
      epsilon;
      power_budget;
      activity;
      wld_csv;
    }

let check_version j =
  match Option.bind (field "v" j) Json.to_int with
  | Some v when v = version -> Ok ()
  | Some v ->
      Result.error
        (Printf.sprintf "protocol version %d not supported (this is %d)" v
           version)
  | None -> Result.error "missing protocol version field v"

let decode_request line =
  let bad m = Stdlib.Error (Bad_request m) in
  match Json.of_string line with
  | Error e -> bad ("request is not valid JSON: " ^ e)
  | Ok j -> (
      match
        let ( let* ) = Result.bind in
        let* () = check_version j in
        let* id = get_str "id" j in
        let* op_name = get_str "op" j in
        let* op =
          match op_name with
          | "ping" -> Ok Ping
          | "stats" -> Ok Stats
          | "query" ->
              let* qj = require "query object" (field "query" j) in
              let* q = query_of_json qj in
              Ok (Query q)
          | other -> Result.error (Printf.sprintf "unknown op %S" other)
        in
        Ok { id; op }
      with
      | Ok r -> Ok r
      | Stdlib.Error m -> bad m)

let error_of_code ~code ~message =
  match code with
  | "bad_request" -> Bad_request message
  | "overloaded" -> Overloaded
  | "timeout" -> Timeout
  | "shutting_down" -> Shutting_down
  | _ -> Internal message

let decode_response line =
  let ( let* ) = Result.bind in
  let* j = Json.of_string line in
  let* () = check_version j in
  let* id = get_str "id" j in
  let* status = get_str "status" j in
  let* body =
    match status with
    | "pong" -> Ok Pong
    | "stats" -> (
        match field "counters" j with
        | Some (Json.Obj kvs) ->
            let* counters =
              List.fold_left
                (fun acc (k, v) ->
                  let* acc = acc in
                  match Json.to_int v with
                  | Some n -> Ok ((k, n) :: acc)
                  | None -> Result.error ("non-integer counter " ^ k))
                (Ok []) kvs
            in
            Ok (Stats_reply (List.rev counters))
        | _ -> Result.error "stats response lacks a counters object")
    | "ok" ->
        let* source = get_str "source" j in
        let* result = require "result object" (field "result" j) in
        Ok (Result { source; payload = Json.to_string result })
    | "error" ->
        let* code = get_str "error" j in
        let* message = get_str "message" j in
        Ok (Error (error_of_code ~code ~message))
    | other -> Result.error (Printf.sprintf "unknown status %S" other)
  in
  Ok { id; body }
