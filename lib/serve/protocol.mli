(** Versioned line-delimited JSON protocol of the rank query service.

    One request per line, one response per line, correlated by a
    client-chosen [id].  Every message carries the protocol version
    ([v = 1]); a server receiving any other version answers
    [Bad_request] rather than guessing.

    {b Canonical result payloads.}  A successful query response embeds
    the outcome as the {e verbatim} bytes of {!result_payload} — a
    canonical JSON object (fixed field order, [%.17g] floats).  Those
    bytes are what the cache stores and what the coalescing layer fans
    out, so a cold compute, a memory hit, a disk hit and a coalesced
    wait all deliver byte-identical payloads for equal queries.  Where
    the answer came from travels in the envelope ([source]), outside the
    cached bytes.

    {b Error variants} are explicit and closed: [Bad_request] (the
    request itself is at fault — do not retry), [Overloaded] (queue
    full, shed — retry later), [Timeout] (the per-request deadline
    passed), [Shutting_down] (server draining — retry against a new
    server), [Internal] (a bug; the message is for humans).  [retryable]
    encodes which of these a well-behaved client may retry verbatim. *)

val version : int

type query = {
  node : string;  (** raw; canonicalized by {!Fingerprint.v} *)
  gates : int;
  rent_p : float option;
  fan_out : float option;
  clock : float option;
  repeater_fraction : float option;
  k : float option;
  miller : float option;
  bunch_size : int option;
  structure : (int * int * int) option;
      (** (local, semi-global, global) pair counts *)
  greedy : bool;  (** [true] selects {!Fingerprint.Greedy} *)
  epsilon : float option;
      (** ε-dominance compression (DP only); omitted or [0.] = exact —
          see {!Fingerprint.t} *)
  power_budget : float option;
      (** repeater power budget in watts; omitted = unconstrained.
          Optional within protocol version 1, like [epsilon]: old
          clients never send the key, old servers never receive it *)
  activity : float option;
      (** switching activity factor of the power model; meaningful only
          alongside [power_budget] — see {!Fingerprint.t} *)
  wld_csv : string option;
      (** inline WLD as CSV text; parsed strictly ({!Ir_wld.Io.of_string}
          with [strict = true]) because it crosses a trust boundary *)
}
(** The wire form of a query: optional fields default on the server
    (inside {!Fingerprint.v}), so a client that omits [rent_p] and one
    that sends the default value fingerprint identically. *)

val query :
  ?rent_p:float ->
  ?fan_out:float ->
  ?clock:float ->
  ?repeater_fraction:float ->
  ?k:float ->
  ?miller:float ->
  ?bunch_size:int ->
  ?structure:int * int * int ->
  ?greedy:bool ->
  ?epsilon:float ->
  ?power_budget:float ->
  ?activity:float ->
  ?wld_csv:string ->
  node:string ->
  gates:int ->
  unit ->
  query

type op = Ping | Stats | Query of query

type request = { id : string; op : op }

type error =
  | Bad_request of string
  | Overloaded
  | Timeout
  | Shutting_down
  | Internal of string

val retryable : error -> bool
(** [true] for [Overloaded] and [Shutting_down]. *)

val error_message : error -> string

type body =
  | Pong
  | Stats_reply of (string * int) list  (** counter name, value; sorted *)
  | Result of { source : string; payload : string }
      (** [payload] is verbatim {!result_payload} bytes; [source] is
          ["cold"], ["memory"], ["disk"] or ["coalesced"] *)
  | Error of error

type response = { id : string; body : body }

val fingerprint_of_query : query -> (Fingerprint.t, string) result
(** Resolves the wire form into a validated fingerprint, parsing any
    inline WLD strictly.  The [Error] string is the [Bad_request]
    message. *)

val result_payload : Ir_core.Outcome.t -> string
(** Canonical result bytes:
    [{"rank_wires":..,"total_wires":..,"assignable":..,"boundary_bunch":..,
    "exact":..,"normalized":..}]. *)

val encode_request : request -> string
(** One line, no trailing newline. *)

val decode_request : string -> (request, error) result
(** Parse failures and version mismatches come back as [Bad_request]
    with a descriptive message — never an exception. *)

val encode_response : response -> string

val decode_response : string -> (response, string) result
(** Client side; a malformed response is a hard error (the server is
    trusted once reached, but a human-readable message beats a crash). *)
