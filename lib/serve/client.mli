(** Blocking client for the rank query service ([ia_rank query]).

    One connection, synchronous request/response (the protocol is
    line-delimited and the server answers in arrival order per
    connection).  Ids are generated locally and checked on receipt, so a
    desynchronized stream surfaces as an error instead of a mismatched
    answer. *)

type t

val connect : socket:string -> (t, string) result

val connect_tcp : host:string -> port:int -> (t, string) result
(** Same client over the TCP listener ([ia_rank serve --tcp]). *)

val close : t -> unit

val request : t -> Protocol.op -> (Protocol.body, string) result
(** Sends one operation and waits for its response.  [Error] covers
    transport and framing failures only; protocol-level errors come back
    as [Protocol.Error _] inside [Ok]. *)

val ping : t -> (unit, string) result

val stats : t -> ((string * int) list, string) result

val query :
  t ->
  Protocol.query ->
  (Ir_core.Outcome.t * string * string, string) result
(** [(outcome, source, payload)] on success — the outcome decoded from
    the canonical payload bytes (also returned verbatim for [--json]
    output and differential tests).  Protocol errors are rendered as
    [Error] with the server's message, prefixed by the error code. *)
