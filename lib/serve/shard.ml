let stat_requests = Ir_obs.counter "serve_router/requests"
let stat_forwarded = Ir_obs.counter "serve_router/forwarded"
let stat_retries = Ir_obs.counter "serve_router/retries"
let stat_shard_errors = Ir_obs.counter "serve_router/shard_errors"
let stat_restarts = Ir_obs.counter "serve_shard/restarts"

(* One pooled connection to a shard: a raw fd plus its buffered reader
   (the reader must live with the fd — it may hold bytes of a previous
   response's tail, though in practice each request yields exactly one
   line). *)
type conn = { fd : Unix.file_descr; reader : Tcp.line_reader }

type link = {
  socket : string;
  mu : Mutex.t;
  mutable free : conn list;  (* idle connections, reused across requests *)
}

type t = {
  shards : int;
  dir : string;
  links : link array;
  pids : int array;
  exe : string;
  argvs : string array array;  (* per-shard argv, kept for respawns *)
  pid_mu : Mutex.t;  (* serializes death checks and respawns *)
  registry : Tcp.registry;
  draining : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let shards t = t.shards
let shard_socket dir i = Filename.concat dir (Printf.sprintf "shard%d.sock" i)
let shard_sockets t = Array.init t.shards (fun i -> shard_socket t.dir i)
let shard_pids t = Array.copy t.pids

(* ---- spawning the fleet ------------------------------------------------ *)

(* Shards are real [ia_rank serve] processes (fork + immediate exec of
   [exe]): no forked copy of this process's threads, locks or GC state
   survives into a child, and what the fleet load-balances is exactly
   the binary operators deploy.  They share [cache_dir] (the disk cache
   is multi-writer safe) and [snapshot_dir]; each listens on its own
   unix socket under [dir]. *)
let child_argv ~exe ~socket ~workers ~cache_entries ~table_pool
    ~queue_capacity ~request_timeout ~cache_dir ~snapshot_dir =
  let opt name = function Some v -> [ name; v ] | None -> [] in
  Array.of_list
    ([
       exe; "serve"; "--socket"; socket; "--verbosity"; "quiet";
       "--workers"; string_of_int workers;
       "--cache-entries"; string_of_int cache_entries;
       "--table-pool"; string_of_int table_pool;
       "--queue-capacity"; string_of_int queue_capacity;
       "--request-timeout"; Printf.sprintf "%g" request_timeout;
     ]
    @ opt "--cache-dir" cache_dir
    @ opt "--snapshot-dir" snapshot_dir)

let spawn ~exe ~argv =
  match Unix.fork () with
  | 0 ->
      (try Unix.execv exe argv with _ -> ());
      (* exec failed; _exit avoids flushing buffers inherited from the
         parent (at_exit would emit the parent's pending output twice). *)
      Unix._exit 127
  | pid -> pid

let kill_fleet pids =
  Array.iter
    (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    pids;
  Array.iter
    (fun pid ->
      (* Bounded grace, then SIGKILL: a wedged shard must not wedge the
         router's own shutdown. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid)
            end
            else begin
              Thread.delay 0.02;
              wait ()
            end
        | _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ())
    pids

let start ?(workers = 2) ?(cache_entries = 512) ?(table_pool = 8)
    ?(queue_capacity = 64) ?(request_timeout = 300.) ?cache_dir ?snapshot_dir
    ~exe ~shards ~dir () =
  let shards = max 1 shards in
  match Ir_sweep.Export.ensure_dir dir with
  | Error e -> Error e
  | Ok () ->
      let argvs =
        Array.init shards (fun i ->
            child_argv ~exe ~socket:(shard_socket dir i) ~workers
              ~cache_entries ~table_pool ~queue_capacity ~request_timeout
              ~cache_dir ~snapshot_dir)
      in
      let pids = Array.map (fun argv -> spawn ~exe ~argv) argvs in
      (* A shard's socket file appears once it is bound and listening. *)
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec await i =
        if i >= shards then Ok ()
        else if Sys.file_exists (shard_socket dir i) then await (i + 1)
        else if Unix.gettimeofday () > deadline then
          Error (Printf.sprintf "shard %d did not come up within 30s" i)
        else begin
          Thread.delay 0.02;
          await i
        end
      in
      (match await 0 with
      | Error e ->
          kill_fleet pids;
          Error e
      | Ok () ->
          let stop_r, stop_w = Unix.pipe ~cloexec:true () in
          Ok
            {
              shards;
              dir;
              links =
                Array.init shards (fun i ->
                    {
                      socket = shard_socket dir i;
                      mu = Mutex.create ();
                      free = [];
                    });
              pids;
              exe;
              argvs;
              pid_mu = Mutex.create ();
              registry = Tcp.registry ();
              draining = Atomic.make false;
              stop_r;
              stop_w;
            })

(* ---- shard RPC --------------------------------------------------------- *)

let connect_shard link =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX link.socket) with
  | () -> Some { fd; reader = Tcp.line_reader fd }
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let checkout link =
  Mutex.lock link.mu;
  let pooled =
    match link.free with
    | [] -> None
    | c :: rest ->
        link.free <- rest;
        Some c
  in
  Mutex.unlock link.mu;
  match pooled with Some c -> Some c | None -> connect_shard link

let checkin link c =
  Mutex.lock link.mu;
  link.free <- c :: link.free;
  Mutex.unlock link.mu

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Send one raw line, read one raw line; pool the connection on success,
   discard it on any failure. *)
let rpc_conn link conn line =
  if Tcp.write_line conn.fd line then
    match Tcp.read_line conn.reader with
    | `Line resp ->
        checkin link conn;
        Some resp
    | `Eof | `Overlong ->
        close_conn conn;
        None
  else begin
    close_conn conn;
    None
  end

(* Supervisor step: a request just failed on a {e fresh} connection, so
   the shard is either wedged or dead.  [waitpid WNOHANG] tells them
   apart — a reaped (or vanished) pid is proof of death, and only then
   does the router fork one replacement onto the same socket path.
   [pid_mu] serializes the check-and-respawn, so a storm of failing
   requests yields one fork: whoever arrives second finds the fresh pid
   un-reapable (alive) and simply reconnects.  Returns [true] when a
   reconnect is worth attempting. *)
let try_restart t i =
  Mutex.lock t.pid_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.pid_mu) @@ fun () ->
  if Atomic.get t.draining then false
  else
    let pid = t.pids.(i) in
    let dead =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> false (* still running — wedged or just slow, not ours *)
      | _ -> true
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not dead then false
    else begin
      let socket = shard_socket t.dir i in
      (* The killed shard never unlinked its socket; the replacement
         must bind the same path, so clear it first. *)
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      t.pids.(i) <- spawn ~exe:t.exe ~argv:t.argvs.(i);
      Ir_obs.incr stat_restarts;
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec await () =
        if Sys.file_exists socket then true
        else if Unix.gettimeofday () > deadline then false
        else begin
          Thread.delay 0.02;
          await ()
        end
      in
      (* A replacement that never binds surfaces as the next failed
         connection — and another supervisor pass. *)
      await ()
    end

let forward t i line =
  let link = t.links.(i) in
  let first =
    match checkout link with
    | None -> None
    | Some conn -> rpc_conn link conn line
  in
  match first with
  | Some resp -> Some resp
  | None -> (
      (* The pooled connection may simply have been stale (shard
         restarted, idle teardown); one retry on a provably fresh
         connection separates that from a shard that is really gone. *)
      Ir_obs.incr stat_retries;
      let fresh =
        match connect_shard link with
        | None -> None
        | Some conn -> rpc_conn link conn line
      in
      match fresh with
      | Some resp -> Some resp
      | None -> (
          (* Even the fresh connection failed: let the supervisor check
             for a dead child and respawn it, then try once more. *)
          if not (try_restart t i) then None
          else
            match connect_shard link with
            | None -> None
            | Some conn -> rpc_conn link conn line))

(* ---- routing ----------------------------------------------------------- *)

(* Partition by resident-grid family, not by request digest: every
   repeater fraction, materials value and clock of a (node, WLD,
   structure) family must land on the same shard so the fleet builds
   each plane's phase-A tables exactly once and neighboring queries hit
   that shard's resident grid.  The key is already a uniformly
   distributed hex digest; its leading 32 bits are hash enough. *)
let route_key t key =
  let prefix = String.sub key 0 (min 8 (String.length key)) in
  match int_of_string ("0x" ^ prefix) with
  | v -> v mod t.shards
  | exception Failure _ -> 0

(* ---- request handling -------------------------------------------------- *)

let encode_error ~id e =
  Protocol.encode_response { Protocol.id; body = Protocol.Error e }

let shard_stats t i =
  let line =
    Protocol.encode_request { Protocol.id = "router-stats"; op = Protocol.Stats }
  in
  match forward t i line with
  | None -> None
  | Some resp -> (
      match Protocol.decode_response resp with
      | Ok { Protocol.body = Protocol.Stats_reply kvs; _ } -> Some kvs
      | Ok _ | Error _ -> None)

(* Aggregated fleet stats: the sum of every shard's counters plus the
   router's own [serve_router/*].  Summing is the right combination for
   counters (requests, computes, table_builds...); the only gauge in the
   set, [serve/queue_depth_max], becomes a fleet-wide total rather than
   a max — acceptable for an operational snapshot. *)
let aggregate_stats t =
  let tbl = Hashtbl.create 64 in
  let add (k, v) =
    Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  Array.iteri
    (fun i _ ->
      match shard_stats t i with
      | Some kvs -> List.iter add kvs
      | None -> Ir_obs.incr stat_shard_errors)
    t.links;
  List.iter add
    (Ir_obs.filter ~prefix:"serve_router" (Ir_obs.snapshot ())).Ir_obs.counters;
  let kvs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  Protocol.Stats_reply (List.sort compare kvs)

(* Queries are forwarded as the original request line, verbatim, and the
   shard's response line is relayed verbatim: the router re-encodes
   nothing on the hot path, so a sharded answer is byte-identical to the
   single-process server's. *)
let handle_line t line =
  Ir_obs.incr stat_requests;
  if Atomic.get t.draining then
    match Protocol.decode_request line with
    | Ok req -> encode_error ~id:req.Protocol.id Protocol.Shutting_down
    | Error e -> encode_error ~id:"" e
  else
    match Protocol.decode_request line with
    | Error e -> encode_error ~id:"" e
    | Ok req -> (
        match req.Protocol.op with
        | Protocol.Ping ->
            Protocol.encode_response
              { Protocol.id = req.Protocol.id; body = Protocol.Pong }
        | Protocol.Stats ->
            Protocol.encode_response
              { Protocol.id = req.Protocol.id; body = aggregate_stats t }
        | Protocol.Query q -> (
            match Protocol.fingerprint_of_query q with
            | Error msg ->
                encode_error ~id:req.Protocol.id (Protocol.Bad_request msg)
            | Ok fp -> (
                let i = route_key t (Fingerprint.family_key fp) in
                Ir_obs.incr stat_forwarded;
                match forward t i line with
                | Some resp -> resp
                | None ->
                    Ir_obs.incr stat_shard_errors;
                    encode_error ~id:req.Protocol.id
                      (Protocol.Internal
                         (Printf.sprintf "shard %d unavailable" i)))))

(* ---- lifecycle --------------------------------------------------------- *)

let shutdown t =
  (* Async-signal-usable, like {!Server.shutdown}: an atomic store plus
     a self-pipe write. *)
  if not (Atomic.exchange t.draining true) then
    ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)

let live_connections t = Tcp.live_connections t.registry

let stop t =
  Array.iter
    (fun link ->
      Mutex.lock link.mu;
      let conns = link.free in
      link.free <- [];
      Mutex.unlock link.mu;
      List.iter close_conn conns)
    t.links;
  kill_fleet t.pids;
  (* Cleanly exited shards unlink their own sockets; reap any a killed
     shard left behind. *)
  Array.iter
    (fun s -> try Unix.unlink s with Unix.Unix_error _ -> ())
    (shard_sockets t);
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  try Unix.close t.stop_w with Unix.Unix_error _ -> ()

let serve t ?tcp ?on_tcp_listen ?socket () =
  Tcp.ignore_sigpipe ();
  match Tcp.bind_listeners ?tcp ?on_tcp_listen ?socket () with
  | Error e ->
      stop t;
      Error e
  | Ok (fds, cleanup) ->
      Tcp.serve_loop ~registry:t.registry ~stop:t.stop_r
        ~draining:(fun () -> Atomic.get t.draining)
        ~handler:(handle_line t) fds;
      cleanup ();
      stop t;
      Ok ()
