(** Canonical, version-tagged identity of a rank query.

    The serving layer is only sound if {e semantically identical} queries
    collapse onto one cache slot and one in-flight computation.  This
    module defines the query record, its canonical text form, and its
    digest:

    - the node is canonicalized through {!Ir_tech.Node.of_string} (so
      ["130nm"], ["130"] and ["n130"] fingerprint identically);
    - an inline WLD is canonicalized through {!Ir_wld.Dist} (ascending,
      merged bins) and contributes the digest of its canonical CSV, not
      its raw upload bytes;
    - floats are rendered [%.17g] (round-trips every finite value), so
      two queries fingerprint equal iff their parameters are bit-equal;
    - the canonical form opens with a version tag
      ([ia-rank/fingerprint/2]); any future change to the canonical
      rules must bump it, which automatically invalidates every
      previously persisted cache entry instead of silently aliasing old
      results onto new semantics.

    The {e table key} is the fingerprint with the repeater fraction and
    algorithm masked out: phase-A DP tables built once at the full
    budget answer any repeater fraction of the same (node, architecture,
    WLD, clock) family ({!Ir_core.Rank_dp.search_tables_rebudget}), so
    queries differing only in those fields share a warm-table pool slot. *)

type algo = Dp | Greedy

type t = private {
  node : Ir_tech.Node.t;
  gates : int;
  rent_p : float;
  fan_out : float;
  clock : float;  (** Hz *)
  repeater_fraction : float;
  k : float;  (** ILD permittivity *)
  miller : float;
  bunch_size : int;
  structure : Ir_ia.Arch.structure;
  algo : algo;
  epsilon : float;
      (** ε-dominance compression for [Dp] ([0.] = exact, the default);
          non-zero values forfeit the warm-table path and the [exact]
          claim — the payload's [exact] field reports it honestly *)
  power_budget : float;
      (** repeater power budget, watts ([infinity] = unconstrained, the
          default).  A finite budget runs the DP in power mode, which
          forfeits the warm-table path (tables predate the power plane)
          and requires [algo = Dp] with [epsilon = 0.] *)
  activity : float;
      (** switching activity factor of the power model (default
          {!Ir_assign.Problem.default_activity}); enters the canonical
          form only under a finite [power_budget] — it cannot change
          the answer otherwise *)
  wld : Ir_wld.Dist.t option;
      (** explicit WLD in gate pitches; [None] generates the design's
          Davis WLD, exactly as {!Ir_core.Rank.problem_of_design} does *)
}

val v :
  ?rent_p:float ->
  ?fan_out:float ->
  ?clock:float ->
  ?repeater_fraction:float ->
  ?k:float ->
  ?miller:float ->
  ?bunch_size:int ->
  ?structure:Ir_ia.Arch.structure ->
  ?algo:algo ->
  ?epsilon:float ->
  ?power_budget:float ->
  ?activity:float ->
  ?wld:Ir_wld.Dist.t ->
  node:string ->
  gates:int ->
  unit ->
  (t, string) result
(** Builds and validates a query.  Defaults mirror the [ia_rank rank]
    subcommand: 0.5 GHz clock, repeater fraction 0.4, k 3.9, Miller 2.0,
    bunch size 10000, Rent 0.6, fan-out 3.0, baseline structure, [Dp].
    Validation reuses the constructors underneath
    ({!Ir_tech.Design.v}, {!Ir_ia.Arch.make}, {!Ir_wld.Davis.params}), so
    anything they reject — bad node strings, out-of-range parameters, a
    structure the node's stack cannot host — comes back as [Error]
    with the constructor's message, never as a crash in the server.
    [epsilon] must be finite and non-negative; it enters the canonical
    form (and thus every digest) only when non-zero, so exact queries
    keep their historical fingerprints.  [power_budget] must be positive
    ([infinity] = unconstrained); a finite budget requires [algo = Dp]
    and [epsilon = 0.], and [activity] must lie in (0, 1].  The power
    fields enter the canonical form only when they can change the
    answer: a finite budget always, the activity only alongside one.

    The version tag is [ia-rank/fingerprint/2] since the power fields
    joined: the bump rotates every digest (old cache entries and
    snapshots miss and recompute — never alias), and the compatibility
    test in [test_serve] pins both the tag and the
    default-power-fields-absent rule. *)

val canonical : t -> string
(** The canonical text form the digest is computed over (one sorted
    [key=value] line per field under the version tag).  Exposed for
    tests and for the DESIGN.md §12 contract. *)

val digest : t -> string
(** Hex digest (MD5 content address) of {!canonical}.  Equal queries —
    however they were spelled — digest equal; the cache, the coalescing
    map and the on-disk store are all keyed by this. *)

val table_key : t -> string
(** Hex digest of the canonical form with [repeater_fraction] and [algo]
    masked — the warm-table pool key (see above). *)

val family_key : t -> string
(** Hex digest with [repeater_fraction], [algo], [k], [miller] and
    [clock_hz] masked — the resident-grid family key.  Queries sharing
    it differ only in the coordinates a {!Ir_core.Rank_grid} perturbs
    over (each (materials, clock) pair is a plane inside one grid), so
    the pool answers neighboring-query misses from the family's resident
    grid instead of starting cold.  Strictly coarser than
    {!table_key}. *)

val problem : t -> Ir_assign.Problem.t
(** The assignment instance of the query, built exactly as the CLI
    builds it (same WLD generation, same architecture defaults), so a
    served answer is byte-comparable with [ia_rank rank].
    @raise Invalid_argument only on states {!v} cannot produce. *)

val compute_cold : t -> Ir_core.Outcome.t
(** [problem] followed by the query's algorithm, with no serving-layer
    reuse at all — the reference the cache and warm paths are
    differentially tested against. *)
