(** On-disk snapshots of warm phase-A DP tables.

    Building a family's tables is the expensive part of serving; a
    restarted shard that must rebuild every hot family answers cold for
    minutes.  This store persists each built family — keyed by
    {!Fingerprint.table_key} — so a fresh process restores it with one
    file read and serves warm immediately.

    {b The disk is never trusted}, and doubly so here: the payload is
    [Marshal] output ({!Ir_core.Rank_dp.encode_tables}), which can crash
    a process that unmarshals garbage.  Every snapshot is schema-tagged,
    records its own key, and carries the blob's length and MD5; a file
    is unmarshalled only after all four verify (and the decoder then
    re-validates dimensions against the problem).  Anything else is
    deleted, counted on [serve_snapshot/corrupt], and reported as a
    miss so the server rebuilds.

    Writes are temp-file + atomic rename, safe for shard fleets sharing
    one directory; opening the store reaps crash-orphaned temp files
    older than ten minutes (counted on [serve_snapshot/tmp_swept]).
    Counters: [serve_snapshot/*] — [saves], [restores], [misses],
    [corrupt], [errors], [tmp_swept]. *)

type t

val create : dir:string -> (t, string) result
(** Opens (creating if needed) the snapshot directory and sweeps stale
    temp files. *)

val save : t -> key:string -> Ir_core.Rank_dp.tables -> unit
(** Persists [tables] under [key] (a {!Fingerprint.table_key}).  Write
    failures count on [serve_snapshot/errors] and are otherwise ignored
    — snapshots are an accelerator, never a correctness dependency. *)

val load :
  t -> key:string -> problem:Ir_assign.Problem.t -> Ir_core.Rank_dp.tables option
(** The verified tables for [key], rebound to [problem] (the family
    query at repeater fraction 1.0 — the same problem {!save}'s tables
    were built from).  [None] on miss or on any integrity failure. *)

val entry_path : t -> key:string -> string
(** Where [key]'s snapshot lives (exposed so tests can corrupt it). *)
