type algo = Dp | Greedy

type t = {
  node : Ir_tech.Node.t;
  gates : int;
  rent_p : float;
  fan_out : float;
  clock : float;
  repeater_fraction : float;
  k : float;
  miller : float;
  bunch_size : int;
  structure : Ir_ia.Arch.structure;
  algo : algo;
  epsilon : float;
  power_budget : float;
  activity : float;
  wld : Ir_wld.Dist.t option;
}

let algo_name = function Dp -> "dp" | Greedy -> "greedy"

let design q =
  Ir_tech.Design.v ~node:q.node ~gates:q.gates ~rent_p:q.rent_p
    ~fan_out:q.fan_out ~clock:q.clock ~repeater_fraction:q.repeater_fraction
    ()

let v ?(rent_p = 0.6) ?(fan_out = 3.0) ?(clock = 0.5e9)
    ?(repeater_fraction = 0.4) ?(k = 3.9) ?(miller = 2.0)
    ?(bunch_size = 10_000) ?(structure = Ir_ia.Arch.baseline_structure)
    ?(algo = Dp) ?(epsilon = 0.0) ?(power_budget = infinity)
    ?(activity = Ir_assign.Problem.default_activity) ?wld ~node ~gates () =
  match Ir_tech.Node.of_string node with
  | None ->
      Error
        (Printf.sprintf
           "unknown node %S (use 180nm, 130nm, 90nm or a feature size such \
            as 65nm)"
           node)
  | Some node -> (
      let q =
        {
          node;
          gates;
          rent_p;
          fan_out;
          clock;
          repeater_fraction;
          k;
          miller;
          bunch_size;
          structure;
          algo;
          epsilon;
          power_budget;
          activity;
          wld;
        }
      in
      if bunch_size <= 0 then Error "bunch_size must be positive"
      else if not (Float.is_finite epsilon) || epsilon < 0.0 then
        Error "epsilon must be a finite non-negative number"
      else if not (power_budget > 0.0) then
        Error "power_budget must be positive (watts; omit for unlimited)"
      else if not (activity > 0.0 && activity <= 1.0) then
        Error "activity must be in (0, 1]"
      else if power_budget < infinity && algo = Greedy then
        Error "the greedy algorithm does not support a power budget"
      else if power_budget < infinity && epsilon <> 0.0 then
        Error "epsilon-dominance is unsupported under a power budget"
      else
        (* Drive every remaining validation through the real constructors
           so the accepted query space is exactly what the pipeline can
           compute: design parameters, materials, the structure-vs-stack
           compatibility check, and (when no WLD is inline) the Davis
           parameter ranges. *)
        match
          let d = design q in
          let materials = Ir_ia.Materials.v ~k ~miller () in
          let (_ : Ir_ia.Arch.t) =
            Ir_ia.Arch.make ~structure ~materials ~design:d ()
          in
          (match wld with
          | None ->
              ignore (Ir_wld.Davis.params ~gates ~rent_p ~fan_out ())
          | Some w ->
              if Ir_wld.Dist.is_empty w then invalid_arg "empty WLD");
          q
        with
        | q -> Ok q
        | exception Invalid_argument msg -> Error msg)

(* Bumped 1 -> 2 when the power fields joined the canonical form: the
   tag heads every canonical rendering, so the bump rotates every
   digest at once — old persisted cache entries and warm-table
   snapshots simply miss and recompute instead of aliasing pre-power
   results onto power-aware semantics.  Within version 2 the power
   fields follow the epsilon convention below (emitted only when they
   change the answer), so a future field addition under the same rule
   again preserves the digests of queries that don't use it. *)
let version_tag = "ia-rank/fingerprint/2"

(* %.17g round-trips every finite float, so bit-equal parameters — and
   only those — canonicalize identically. *)
let fl = Printf.sprintf "%.17g"

let canonical_fields q =
  (* [epsilon] joined the canonical form after the fingerprint scheme
     shipped: emitting it only when it changes the answer (non-zero)
     keeps every pre-existing exact query's digest — and therefore the
     whole disk cache — valid, while distinct ε values key distinct
     cache entries. *)
  (if q.epsilon <> 0.0 then [ ("epsilon", fl q.epsilon) ] else [])
  (* Same convention for the power fields: an unconstrained budget at
     the default activity is semantically the pre-power query, and
     activity only enters the answer under a finite budget. *)
  @ (if q.power_budget < infinity then
       [ ("power_budget", fl q.power_budget) ]
     else [])
  @ (if
       q.activity <> Ir_assign.Problem.default_activity
       && q.power_budget < infinity
     then [ ("activity", fl q.activity) ]
     else [])
  @ [
    ("algo", algo_name q.algo);
    ("bunch_size", string_of_int q.bunch_size);
    ("clock_hz", fl q.clock);
    ("fan_out", fl q.fan_out);
    ("gates", string_of_int q.gates);
    ("k", fl q.k);
    ("miller", fl q.miller);
    ("node", Ir_tech.Node.name q.node);
    ("rent_p", fl q.rent_p);
    ("repeater_fraction", fl q.repeater_fraction);
    ( "structure",
      Printf.sprintf "%d,%d,%d" q.structure.Ir_ia.Arch.local_pairs
        q.structure.Ir_ia.Arch.semi_global_pairs
        q.structure.Ir_ia.Arch.global_pairs );
    ( "wld",
      match q.wld with
      | None -> "davis"
      (* The inline WLD contributes the digest of its canonical CSV
         rendering (ascending merged bins), so equal distributions —
         whatever order the client listed them in — fingerprint equal. *)
      | Some w ->
          "inline:" ^ Digest.to_hex (Digest.string (Ir_wld.Io.to_string w))
    );
  ]

let canonical_of_fields fields =
  let buf = Buffer.create 256 in
  Buffer.add_string buf version_tag;
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_char buf '=';
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    (List.sort (fun (a, _) (b, _) -> String.compare a b) fields);
  Buffer.contents buf

let canonical q = canonical_of_fields (canonical_fields q)
let digest q = Digest.to_hex (Digest.string (canonical q))

(* The warm-table pool serves every repeater fraction of a family from
   tables built once at the full budget, and the algorithm choice never
   enters phase A — mask both out of the key. *)
let table_key q =
  let masked =
    List.map
      (function
        | "repeater_fraction", _ -> ("repeater_fraction", "*")
        | "algo", _ -> ("algo", "*")
        | kv -> kv)
      (canonical_fields q)
  in
  Digest.to_hex (Digest.string (canonical_of_fields masked))

(* The grid family additionally masks materials and clock: those are the
   coordinates a resident {!Ir_core.Rank_grid} perturbs over (each value
   pair is its own plane inside the grid), while the design size, WLD,
   bunching and structure pin the family. *)
let family_key q =
  let masked =
    List.map
      (fun (name, v) ->
        match name with
        | "repeater_fraction" | "algo" | "k" | "miller" | "clock_hz" ->
            (name, "*")
        | _ -> (name, v))
      (canonical_fields q)
  in
  Digest.to_hex (Digest.string (canonical_of_fields masked))

let problem q =
  let d = design q in
  let materials = Ir_ia.Materials.v ~k:q.k ~miller:q.miller () in
  let arch =
    Ir_ia.Arch.make ~structure:q.structure ~materials ~design:d ()
  in
  let wld =
    match q.wld with
    | Some w -> w
    | None ->
        Ir_wld.Davis.generate
          (Ir_wld.Davis.params ~gates:q.gates ~rent_p:q.rent_p
             ~fan_out:q.fan_out ())
  in
  Ir_assign.Problem.make ~bunch_size:q.bunch_size ~activity:q.activity
    ~power_budget:q.power_budget ~arch ~wld ()

let compute_cold q =
  let algo =
    match q.algo with
    | Dp -> Ir_core.Rank.Dp
    | Greedy -> Ir_core.Rank.Greedy
  in
  Ir_core.Rank.compute ~algo ~epsilon:q.epsilon (problem q)
