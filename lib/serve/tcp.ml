let stat_connections = Ir_obs.counter "serve_net/connections"
let stat_overlong = Ir_obs.counter "serve_net/overlong_lines"
let stat_write_failures = Ir_obs.counter "serve_net/write_failures"
let stat_read_failures = Ir_obs.counter "serve_net/read_failures"

(* A client that disconnects between request and response must cost us a
   failed write, never the process: the default SIGPIPE action is
   termination, and a serve tier dies of its first impatient client.
   Idempotent; called by every serve entry point (the write paths below
   still handle the resulting EPIPE). *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* ---- bounded line I/O ------------------------------------------------- *)

(* 8 MiB comfortably holds the largest legitimate request (an inline WLD
   upload of hundreds of thousands of bins) while bounding what a
   hostile client can make us buffer for one line.  [In_channel.input_line]
   has no such bound, which is why the socket paths read through this
   reader instead of a channel. *)
let default_max_line = 8 * 1024 * 1024

type line_reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  buf : Buffer.t;  (* received, unconsumed bytes *)
  mutable scanned : int;  (* prefix of [buf] known to be '\n'-free *)
  mutable eof : bool;
}

let line_reader fd =
  { fd; chunk = Bytes.create 65536; buf = Buffer.create 512; scanned = 0;
    eof = false }

let rec read_line ?(max_bytes = default_max_line) r =
  let len = Buffer.length r.buf in
  let rec find i =
    if i >= len then None
    else if Buffer.nth r.buf i = '\n' then Some i
    else find (i + 1)
  in
  match find r.scanned with
  | Some i ->
      let line = Buffer.sub r.buf 0 i in
      let rest = Buffer.sub r.buf (i + 1) (len - i - 1) in
      Buffer.clear r.buf;
      Buffer.add_string r.buf rest;
      r.scanned <- 0;
      `Line line
  | None ->
      r.scanned <- len;
      if len > max_bytes then `Overlong
      else if r.eof then
        if len = 0 then `Eof
        else begin
          (* Trailing bytes without a final newline: serve them as the
             last line (the channel-based loop this replaces did). *)
          let line = Buffer.contents r.buf in
          Buffer.clear r.buf;
          r.scanned <- 0;
          `Line line
        end
      else begin
        (match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> r.eof <- true
        | n -> Buffer.add_subbytes r.buf r.chunk 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ ->
            Ir_obs.incr stat_read_failures;
            r.eof <- true);
        read_line ~max_bytes r
      end

let rec write_all fd buf off len =
  if len = 0 then true
  else
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf off len
    | exception Unix.Unix_error _ ->
        (* EPIPE/ECONNRESET: the client hung up mid-response.  Their
           loss, not our crash — the connection loop just ends. *)
        Ir_obs.incr stat_write_failures;
        false

let write_line fd line =
  let b = Bytes.create (String.length line + 1) in
  Bytes.blit_string line 0 b 0 (String.length line);
  Bytes.set b (String.length line) '\n';
  write_all fd b 0 (Bytes.length b)

(* ---- listeners -------------------------------------------------------- *)

let listen_unix ~socket =
  let ( let* ) = Result.bind in
  let* () =
    match (Unix.lstat socket).Unix.st_kind with
    | Unix.S_SOCK -> (
        (* A previous server's leftover; safe to replace. *)
        match Unix.unlink socket with
        | () -> Ok ()
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot remove stale socket %s: %s" socket
                 (Unix.error_message e)))
    | _ ->
        Error
          (Printf.sprintf
             "%s exists and is not a socket; refusing to replace it" socket)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "%s: %s" socket (Unix.error_message e))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX socket);
    Unix.listen fd 64
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s %s: %s" fn socket (Unix.error_message e))

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Error (Printf.sprintf "cannot resolve host %S" host)
      | h -> Ok h.Unix.h_addr_list.(0))

let listen_tcp ?(backlog = 128) ?(host = "127.0.0.1") ~port () =
  let ( let* ) = Result.bind in
  let* addr = resolve_host host in
  let sockaddr = Unix.ADDR_INET (addr, port) in
  let fd =
    Unix.socket ~cloexec:true
      (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  match
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd sockaddr;
    Unix.listen fd backlog;
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  with
  | bound_port -> Ok (fd, bound_port)
  | exception Unix.Unix_error (e, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "%s %s:%d: %s" fn host port (Unix.error_message e))

let connect_tcp ~host ~port =
  let ( let* ) = Result.bind in
  let* addr = resolve_host host in
  let sockaddr = Unix.ADDR_INET (addr, port) in
  let fd =
    Unix.socket ~cloexec:true
      (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  match Unix.connect fd sockaddr with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s:%d: %s" host port
           (Unix.error_message e))

(* Bind whichever listeners the caller configured.  Returns the listening
   fds plus a cleanup closing them (and unlinking the unix socket). *)
let bind_listeners ?tcp ?on_tcp_listen ?socket () =
  let ( let* ) = Result.bind in
  let* unix_fd =
    match socket with
    | None -> Ok None
    | Some s -> Result.map Option.some (listen_unix ~socket:s)
  in
  let close_unix () =
    match unix_fd with
    | None -> ()
    | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Option.iter
          (fun s -> try Unix.unlink s with Unix.Unix_error _ -> ())
          socket
  in
  let* tcp_fd =
    match tcp with
    | None -> Ok None
    | Some (host, port) -> (
        match listen_tcp ~host ~port () with
        | Ok (fd, bound) ->
            Option.iter (fun f -> f bound) on_tcp_listen;
            Ok (Some fd)
        | Error e ->
            close_unix ();
            Error e)
  in
  match List.filter_map Fun.id [ unix_fd; tcp_fd ] with
  | [] -> Error "no listener configured"
  | fds ->
      let cleanup () =
        close_unix ();
        match tcp_fd with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ()
      in
      Ok (fds, cleanup)

(* ---- connection registry ---------------------------------------------- *)

(* Live connections are keyed by a monotonically increasing id, never by
   the file descriptor: a connection removes itself (and closes its fd)
   under the registry lock when it finishes, so the drain path below can
   only ever shut down descriptors that are still open — the historical
   [(thread, fd) list] both grew without bound and, at drain, called
   [shutdown] on fds the connection had already closed, which after
   kernel fd-number reuse could hit an unrelated live descriptor. *)
type registry = {
  mu : Mutex.t;
  tbl : (int, Thread.t * Unix.file_descr) Hashtbl.t;
  mutable next_id : int;
}

let registry () = { mu = Mutex.create (); tbl = Hashtbl.create 64; next_id = 0 }

let live_connections reg =
  Mutex.lock reg.mu;
  let n = Hashtbl.length reg.tbl in
  Mutex.unlock reg.mu;
  n

let overlong_response =
  lazy
    (Protocol.encode_response
       {
         Protocol.id = "";
         body =
           Protocol.Error
             (Protocol.Bad_request
                (Printf.sprintf "request line exceeds %d bytes"
                   default_max_line));
       })

(* One connection: read lines, apply [handler], write responses.  Every
   failure mode — client gone mid-read, client gone mid-write, an
   oversized line — ends this connection only. *)
let connection_loop ~handler fd =
  let r = line_reader fd in
  let rec loop () =
    match read_line r with
    | `Eof -> ()
    | `Overlong ->
        Ir_obs.incr stat_overlong;
        (* Answer if the client still listens, then hang up: resyncing a
           line protocol mid-flood is not worth the buffer. *)
        ignore (write_line fd (Lazy.force overlong_response))
    | `Line line -> if write_line fd (handler line) then loop ()
  in
  loop ()

let spawn_connection reg ~handler fd =
  Ir_obs.incr stat_connections;
  Mutex.lock reg.mu;
  let id = reg.next_id in
  reg.next_id <- id + 1;
  let th =
    Thread.create
      (fun () ->
        (match connection_loop ~handler fd with
        | () -> ()
        | exception _ -> ());
        Mutex.lock reg.mu;
        if Hashtbl.mem reg.tbl id then begin
          Hashtbl.remove reg.tbl id;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end;
        Mutex.unlock reg.mu)
      ()
  in
  (* The cleanup above locks [mu], so it cannot race this registration
     even if the connection finishes instantly. *)
  Hashtbl.replace reg.tbl id (th, fd);
  Mutex.unlock reg.mu

let drain reg =
  (* Unblock reads of connections whose clients never hang up; their
     in-progress requests still answer.  Shutdown and close are mutually
     excluded by the registry lock, so no closed (possibly reused) fd is
     ever shut down. *)
  Mutex.lock reg.mu;
  let threads =
    Hashtbl.fold
      (fun _ (th, fd) acc ->
        (try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
         with Unix.Unix_error _ -> ());
        th :: acc)
      reg.tbl []
  in
  Mutex.unlock reg.mu;
  List.iter (fun th -> try Thread.join th with _ -> ()) threads

let serve_loop ~registry:reg ~stop ~draining ~handler fds =
  ignore_sigpipe ();
  let rec accept_loop () =
    if draining () then ()
    else
      (* Select on the stop pipe too, so a shutdown initiated from a
         signal handler interrupts a blocked accept immediately. *)
      match Unix.select (stop :: fds) [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | ready, _, _ ->
          if List.mem stop ready then ()
          else begin
            List.iter
              (fun lfd ->
                if List.mem lfd ready then
                  match Unix.accept ~cloexec:true lfd with
                  | fd, _ -> spawn_connection reg ~handler fd
                  | exception Unix.Unix_error _ -> ())
              fds;
            accept_loop ()
          end
  in
  accept_loop ();
  drain reg
