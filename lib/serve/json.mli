(** Minimal JSON values for the serving protocol.

    The container ships no JSON library, and the serving layer needs both
    directions — the bench exporter only ever {e prints} JSON
    ({!Ir_sweep.Export}), but a server must also {e parse} untrusted
    request lines.  This module is deliberately small: a value type, a
    deterministic printer and a hardened recursive-descent parser.

    {b Determinism.}  {!to_string} is canonical for a fixed value: object
    fields print in construction order, floats as [%.17g] (round-trips
    every finite float), integers in decimal.  The cache and the
    coalescing layer rely on this — byte-identical values encode to
    byte-identical strings.

    {b Hardening.}  The parser enforces a nesting-depth cap and rejects
    trailing garbage, non-finite numbers, unpaired surrogates and control
    characters in strings, so a malicious request line cannot blow the
    stack or smuggle unrepresentable values into the cache. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** finite; the printer rejects NaN/inf *)
  | Str of string  (** UTF-8 bytes; escapes are decoded on parse *)
  | Arr of t list
  | Obj of (string * t) list  (** field order preserved *)

val to_string : t -> string
(** Canonical single-line rendering (no insignificant whitespace).
    @raise Invalid_argument on a non-finite [Float]. *)

val of_string : ?max_depth:int -> string -> (t, string) result
(** Parses one JSON value spanning the whole input (trailing whitespace
    permitted, anything else is an error).  [max_depth] (default 64)
    bounds array/object nesting.  Errors name the byte offset. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on other
    constructors. *)

val to_int : t -> int option
(** [Int n] directly; [Float f] when [f] is integral (JSON writers are
    free to render [3] as [3.0]). *)

val to_float : t -> float option
(** [Float] or [Int] widened. *)

val to_str : t -> string option

val to_bool : t -> bool option

val to_list : t -> t list option
