(** Hardened line-protocol transport shared by every serve surface.

    One module owns the hostile-client defenses so the unix-socket
    server, the TCP listener and the shard router cannot drift apart:

    - {b SIGPIPE is ignored} ({!ignore_sigpipe}) and every write goes
      through {!write_all}, which turns a client disconnect mid-response
      into a counted failure ([serve_net/write_failures]) instead of
      process death.
    - {b Reads are bounded} ({!read_line}): a request line longer than
      {!default_max_line} gets a [Bad_request] answer and the connection
      closed, rather than buffering without limit the way
      [In_channel.input_line] would.
    - {b Connections are registered} ({!registry}): each live connection
      holds a slot it removes {e itself} from (closing its fd under the
      registry lock) when it ends.  Drain shuts down only descriptors
      still registered — never a closed fd whose number the kernel may
      have reused for something unrelated — and the registry cannot grow
      past the number of simultaneously live connections.

    Counters land on [serve_net/*]: [connections], [overlong_lines],
    [write_failures], [read_failures]. *)

val ignore_sigpipe : unit -> unit
(** Idempotently sets [SIGPIPE] to ignore (no-op on platforms without
    it).  Called by {!serve_loop}; entry points that write to
    possibly-dead peers outside a loop (stdio serving, the shard router)
    call it themselves. *)

val default_max_line : int
(** Request-line size cap (8 MiB) applied by {!read_line} by default. *)

(** {1 Bounded line I/O over raw descriptors} *)

type line_reader
(** Buffered newline-delimited reader over a file descriptor. *)

val line_reader : Unix.file_descr -> line_reader

val read_line :
  ?max_bytes:int -> line_reader -> [ `Line of string | `Eof | `Overlong ]
(** Next line (without its newline).  [`Overlong] once a single line
    exceeds [max_bytes] — the stream is not resynchronized; close it.
    Read errors count on [serve_net/read_failures] and surface as
    end-of-stream. *)

val write_all : Unix.file_descr -> bytes -> int -> int -> bool
(** Full write of a byte range; [false] (plus a [write_failures] count)
    if the peer is gone.  Never raises on I/O errors. *)

val write_line : Unix.file_descr -> string -> bool
(** [write_all] of [line] plus a newline. *)

(** {1 Listeners} *)

val listen_unix : socket:string -> (Unix.file_descr, string) result
(** Bound, listening unix-domain socket at [socket].  A stale socket
    file left by a dead server is replaced; any other kind of file in
    the way is an error. *)

val listen_tcp :
  ?backlog:int ->
  ?host:string ->
  port:int ->
  unit ->
  (Unix.file_descr * int, string) result
(** Bound, listening TCP socket on [host] (default 127.0.0.1) with
    [SO_REUSEADDR].  Returns the fd and the bound port — pass [port:0]
    for an ephemeral port and read the real one from the result. *)

val connect_tcp :
  host:string -> port:int -> (Unix.file_descr, string) result
(** Client side of {!listen_tcp}. *)

val bind_listeners :
  ?tcp:string * int ->
  ?on_tcp_listen:(int -> unit) ->
  ?socket:string ->
  unit ->
  (Unix.file_descr list * (unit -> unit), string) result
(** Binds whichever listeners are configured (at least one required):
    [socket] via {!listen_unix}, [tcp] via {!listen_tcp} (the bound port
    reported through [on_tcp_listen]).  Returns the listening fds and a
    cleanup that closes them and unlinks the socket file. *)

(** {1 Accept loop and connection registry} *)

type registry
(** Live-connection table of one serve loop. *)

val registry : unit -> registry

val live_connections : registry -> int
(** Number of currently registered (open) connections — a leak detector
    for tests: it returns to 0 once clients disconnect. *)

val serve_loop :
  registry:registry ->
  stop:Unix.file_descr ->
  draining:(unit -> bool) ->
  handler:(string -> string) ->
  Unix.file_descr list ->
  unit
(** Accepts on every listening fd in the list until the [stop] pipe
    becomes readable or [draining ()] turns true, serving each
    connection on its own thread through [handler] (one request line in,
    one response line out — the handler must not raise).  On shutdown,
    still-registered connections get their read side shut down (their
    in-flight request still answers) and are joined before returning.
    The listening fds are {e not} closed — the caller owns them. *)
