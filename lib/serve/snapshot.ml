let stat_saves = Ir_obs.counter "serve_snapshot/saves"
let stat_restores = Ir_obs.counter "serve_snapshot/restores"
let stat_misses = Ir_obs.counter "serve_snapshot/misses"
let stat_corrupt = Ir_obs.counter "serve_snapshot/corrupt"
let stat_errors = Ir_obs.counter "serve_snapshot/errors"
let stat_tmp_swept = Ir_obs.counter "serve_snapshot/tmp_swept"

(* Snapshot file layout: a text header followed by a raw binary blob.
     ia-rank/table-snapshot/1
     key: <table_key hex>
     blob-md5: <hex md5 of the blob>
     blob-bytes: <decimal blob length>
     <blob>
   The blob is [Rank_dp.encode_tables] output — Marshal bytes, which can
   crash the process if fed garbage, so nothing is decoded before the
   schema tag, the recorded key, the length and the checksum all verify.
   The tag versions the table encoding together with the DP semantics: a
   PR changing either bumps it and old snapshots self-invalidate. *)
let schema_tag = "ia-rank/table-snapshot/2"
(* /2: the table encoding moved to digest-prefixed Bigarray planes
   (PR 8's grid kernel storage) — /1 blobs no longer decode. *)

type t = { dir : string }

let entry_path t ~key =
  if
    key = ""
    || String.exists
         (fun c ->
           not
             ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
             || (c >= 'A' && c <= 'F')))
         key
  then invalid_arg "Snapshot.entry_path: key is not hex";
  Filename.concat t.dir (key ^ ".tables")

(* Same crash-orphan reaping as the result cache's, with the same
   age threshold rationale: a live concurrent shard's in-flight temp
   file is seconds old and must survive the sweep. *)
let tmp_stale_age = 600.0

let sweep_stale_tmps dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      let now = Unix.gettimeofday () in
      Array.iter
        (fun name ->
          if
            String.length name > 4
            && name.[0] = '.'
            && Filename.check_suffix name ".tmp"
          then
            let path = Filename.concat dir name in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> ()
            | st ->
                if now -. st.Unix.st_mtime > tmp_stale_age then (
                  match Sys.remove path with
                  | () -> Ir_obs.incr stat_tmp_swept
                  | exception Sys_error _ -> ()))
        names

let create ~dir =
  match Ir_sweep.Export.ensure_dir dir with
  | Ok () ->
      sweep_stale_tmps dir;
      Ok { dir }
  | Error e -> Error e

let render ~key blob =
  String.concat ""
    [
      schema_tag; "\n"; "key: "; key; "\n"; "blob-md5: ";
      Digest.to_hex (Digest.string blob); "\n"; "blob-bytes: ";
      string_of_int (String.length blob); "\n"; blob;
    ]

let save t ~key tables =
  let blob = Ir_core.Rank_dp.encode_tables tables in
  (* Temp file + atomic rename: shard processes share one snapshot
     directory, and a family computed simultaneously by two shards (or a
     crash mid-write) must never publish a torn file. *)
  match Filename.temp_file ~temp_dir:t.dir ("." ^ key) ".tmp" with
  | exception Sys_error _ -> Ir_obs.incr stat_errors
  | tmp -> (
      match
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (render ~key blob));
        Sys.rename tmp (entry_path t ~key)
      with
      | () -> Ir_obs.incr stat_saves
      | exception Sys_error _ ->
          Ir_obs.incr stat_errors;
          (try Sys.remove tmp with Sys_error _ -> ()))

let discard_corrupt path =
  Ir_obs.incr stat_corrupt;
  try Sys.remove path with Sys_error _ -> ()

(* [header contents n] splits off the first [n] newline-terminated lines,
   returning them and the remainder (the blob). *)
let header contents n =
  let rec split acc off n =
    if n = 0 then
      Some (List.rev acc, String.sub contents off (String.length contents - off))
    else
      match String.index_from_opt contents off '\n' with
      | None -> None
      | Some i -> split (String.sub contents off (i - off) :: acc) (i + 1) (n - 1)
  in
  if String.length contents = 0 then None else split [] 0 n

let load t ~key ~problem =
  let path = entry_path t ~key in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ ->
      Ir_obs.incr stat_misses;
      None
  | contents -> (
      match header contents 4 with
      | Some ([ tag; key_line; md5_line; len_line ], blob)
        when tag = schema_tag
             && key_line = "key: " ^ key
             && len_line = "blob-bytes: " ^ string_of_int (String.length blob)
             && md5_line = "blob-md5: " ^ Digest.to_hex (Digest.string blob)
        -> (
          (* Only now is the blob trusted enough to unmarshal; the
             decoder still re-checks the dimensions against [problem]. *)
          match Ir_core.Rank_dp.decode_tables problem blob with
          | Some tables ->
              Ir_obs.incr stat_restores;
              Some tables
          | None ->
              discard_corrupt path;
              None)
      | _ ->
          discard_corrupt path;
          None)
