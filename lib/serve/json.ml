type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing --------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if not (Float.is_finite f) then
          invalid_arg "Json.to_string: non-finite float";
        Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | Str s -> add_escaped buf s
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            add_escaped buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---- parsing ---------------------------------------------------------- *)

exception Parse_error of int * string

let of_string ?(max_depth = 64) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    (* Encode one Unicode scalar value as UTF-8. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
                 advance ();
                 let cp = hex4 () in
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   (* High surrogate: require a low surrogate pair. *)
                   if
                     !pos + 2 <= n
                     && s.[!pos] = '\\'
                     && s.[!pos + 1] = 'u'
                   then begin
                     advance ();
                     advance ();
                     let lo = hex4 () in
                     if lo < 0xDC00 || lo > 0xDFFF then
                       fail "unpaired high surrogate";
                     add_utf8 buf
                       (0x10000
                       + ((cp - 0xD800) lsl 10)
                       + (lo - 0xDC00))
                   end
                   else fail "unpaired high surrogate"
                 end
                 else if cp >= 0xDC00 && cp <= 0xDFFF then
                   fail "unpaired low surrogate"
                 else add_utf8 buf cp
             | c -> fail (Printf.sprintf "bad escape \\%C" c));
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let lexeme = String.sub s start (!pos - start) in
    if !is_float then begin
      let f = float_of_string lexeme in
      if not (Float.is_finite f) then fail "number overflows to infinity";
      Float f
    end
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> (
          (* Integer lexeme beyond the int range: keep it as a float
             rather than failing — it still round-trips as a value. *)
          let f = float_of_string lexeme in
          if Float.is_finite f then Float f
          else fail "number overflows to infinity")
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec loop () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          loop ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          loop ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "json: byte %d: %s" at msg)

(* ---- accessors -------------------------------------------------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 53. ->
      Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
