type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect ~socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          next_id = 0;
        }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Unix.error_message e))

let connect_tcp ~host ~port =
  match Tcp.connect_tcp ~host ~port with
  | Ok fd ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
          next_id = 0;
        }
  | Error e -> Error e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t op =
  let ( let* ) = Result.bind in
  t.next_id <- t.next_id + 1;
  let id = Printf.sprintf "c%d" t.next_id in
  let* () =
    match
      Out_channel.output_string t.oc
        (Protocol.encode_request { Protocol.id; op });
      Out_channel.output_char t.oc '\n';
      Out_channel.flush t.oc
    with
    | () -> Ok ()
    | exception Sys_error e -> Error ("send failed: " ^ e)
  in
  let* line =
    match In_channel.input_line t.ic with
    | Some l -> Ok l
    | None -> Error "server closed the connection"
    | exception Sys_error e -> Error ("receive failed: " ^ e)
  in
  let* resp = Protocol.decode_response line in
  if resp.Protocol.id <> id then
    Error
      (Printf.sprintf "response id %S does not match request id %S"
         resp.Protocol.id id)
  else Ok resp.Protocol.body

let ping t =
  match request t Protocol.Ping with
  | Ok Protocol.Pong -> Ok ()
  | Ok (Protocol.Error e) -> Error (Protocol.error_message e)
  | Ok _ -> Error "unexpected response to ping"
  | Error e -> Error e

let stats t =
  match request t Protocol.Stats with
  | Ok (Protocol.Stats_reply kvs) -> Ok kvs
  | Ok (Protocol.Error e) -> Error (Protocol.error_message e)
  | Ok _ -> Error "unexpected response to stats"
  | Error e -> Error e

let outcome_of_payload payload =
  let ( let* ) = Result.bind in
  let* j = Json.of_string payload in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let bool k = Option.bind (Json.member k j) Json.to_bool in
  match (int "rank_wires", int "total_wires", bool "assignable",
         int "boundary_bunch", bool "exact")
  with
  | Some rank_wires, Some total_wires, Some assignable, Some boundary_bunch,
    Some exact -> (
      match
        Ir_core.Outcome.v ~exact ~rank_wires ~total_wires ~assignable
          ~boundary_bunch ()
      with
      | o -> Ok o
      | exception Invalid_argument m -> Error ("inconsistent outcome: " ^ m))
  | _ -> Error "result payload is missing outcome fields"

let query t q =
  match request t (Protocol.Query q) with
  | Ok (Protocol.Result { source; payload }) -> (
      match outcome_of_payload payload with
      | Ok outcome -> Ok (outcome, source, payload)
      | Error e -> Error e)
  | Ok (Protocol.Error e) ->
      Error
        (Printf.sprintf "%s: %s"
           (match e with
           | Protocol.Bad_request _ -> "bad request"
           | Protocol.Overloaded -> "overloaded"
           | Protocol.Timeout -> "timeout"
           | Protocol.Shutting_down -> "shutting down"
           | Protocol.Internal _ -> "internal error")
           (Protocol.error_message e))
  | Ok _ -> Error "unexpected response to query"
  | Error e -> Error e
