(** Content-addressed result cache for the rank query service.

    Two tiers keyed by the query fingerprint ({!Fingerprint.digest}):

    - a bounded in-memory LRU of result payloads (the canonical response
      JSON bytes), evicting the least recently {e used} entry — lookups
      refresh recency — when the capacity is exceeded;
    - an optional on-disk store (one file per digest under the server's
      [--cache-dir]) that survives restarts.

    {b The disk is never trusted.}  Entries are schema-versioned and
    checksummed; on load, an entry is accepted only if its schema tag,
    its recorded fingerprint digest (which must also match the digest
    being asked for — the filename is not believed either) and its
    payload checksum all verify.  Anything else — truncation, bit rot, a
    concurrent writer's partial file, a stale schema from an older build
    — is deleted, counted on [serve_cache/disk_corrupt], and reported as
    a miss so the server recomputes.  Writes go through a temp file and
    an atomic rename, so a crashed or concurrent server never publishes
    a torn entry.

    All operations are thread-safe (one lock per cache; the disk I/O of
    a lookup happens outside it only for the payload read, which the
    checksum then validates).  Counters land on [serve_cache/*]
    ({!Ir_obs}): [mem_hits], [disk_hits], [misses], [evictions],
    [disk_corrupt], [disk_errors], [stores], [tmp_swept]. *)

type t

val create : ?capacity:int -> ?dir:string -> unit -> (t, string) result
(** [capacity] (default 512, clamped to >= 1) bounds the in-memory tier;
    [dir] enables the disk tier (created recursively if missing —
    [Error] if a non-directory is in the way).  Opening a directory also
    sweeps crash-orphaned write temp files ([.*.tmp] older than ten
    minutes, counted on [serve_cache/tmp_swept]); the age threshold
    keeps the sweep from racing a live concurrent writer's in-flight
    temp file. *)

type source = Memory | Disk

val find : t -> digest:string -> (string * source) option
(** The cached payload for [digest], consulting memory then disk.  A
    disk hit is promoted into the memory tier.  Counts a hit on the
    winning tier or one miss. *)

val store : t -> digest:string -> string -> unit
(** Publishes a payload under [digest] in both tiers.  Disk write
    failures are counted ([serve_cache/disk_errors]) and otherwise
    ignored — the cache is an accelerator, never a correctness
    dependency. *)

val mem_count : t -> int
(** Entries currently in the memory tier (for tests and [--stats]). *)

val mem_keys_lru_first : t -> string list
(** Digests in eviction order, least recently used first — exposed for
    the LRU property tests. *)

val entry_path : dir:string -> digest:string -> string
(** Where the disk tier stores a digest's entry file (exposed so tests
    can corrupt entries deliberately). *)
