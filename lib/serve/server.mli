(** The rank query daemon.

    A server owns a bounded request queue drained by a small pool of
    worker threads, a two-tier result {!Cache}, and a keyed pool of warm
    phase-A DP tables.  Requests flow:

    + cache lookup by fingerprint digest (memory, then validated disk);
    + on a miss, {e coalescing}: if an identical query (same digest) is
      already queued or computing, the request attaches to that in-flight
      job instead of enqueueing a duplicate — one computation fans its
      payload out to every waiter, byte-identically;
    + otherwise the job is enqueued — unless the queue is at capacity, in
      which case the request is {e shed} with the retryable
      [Overloaded] error (backpressure, never unbounded memory);
    + a worker computes it on the {e warm path} when it can: the pool
      holds one resident {!Ir_core.Rank_grid} per query family
      ({!Fingerprint.family_key} — everything but materials, clock and
      repeater fraction).  Each (materials, clock) value pair is one
      plane inside the grid, built once ({!Fingerprint.table_key}) at
      the full repeater budget; any repeater fraction is answered by
      budget rebinding ({!Ir_core.Rank_grid.query}) with a family-wide
      suffix-fit memo and boundary warm-starts, and a query whose own
      plane is missing but whose {e family} grid is resident grows the
      grid by one plane ([serve/grid_hits]) instead of starting cold.
      The warm path is used only when it is provably exact (no Pareto
      truncation in the plane build); anything else — greedy-algorithm
      queries included — takes the cold path, so a served payload is
      always byte-identical to a cold computation.

    Each waiter observes a per-request deadline; a timeout releases the
    {e waiter} with the [Timeout] error while the computation itself
    finishes and populates the cache for the next asker.  {!shutdown}
    drains: queued jobs complete, new queries get [Shutting_down].

    Every thread shares one process ({!Thread}), so computations do not
    run in parallel with each other — the concurrency this layer buys is
    in {e waiting} (coalescing, socket I/O, backpressure), which is
    where a query service spends its life.  Counters land on [serve/*]:
    [requests], [coalesced], [shed], [timeouts], [computes],
    [cold_computes], [table_builds], [table_hits], [table_restores]; gauge
    [serve/queue_depth_max]; spans [serve/request] and [serve/compute].
    All are deterministic for a sequentially replayed trace against a
    fresh server — the bench's serving leg asserts exactly that. *)

type t

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?table_pool:int ->
  ?request_timeout:float ->
  ?on_compute_start:(string -> unit) ->
  ?snapshot:Snapshot.t ->
  cache:Cache.t ->
  unit ->
  t
(** Starts the worker and timeout-ticker threads immediately.
    [workers] (default 2) drain the queue; [queue_capacity] (default 64)
    bounds it; [table_pool] (default 8) bounds the resident-grid pool
    (least-recently-used family evicted); [request_timeout] (default
    300 s) is each waiter's deadline.  [on_compute_start] runs in the
    worker thread just before a computation, with the job's digest — a
    test seam for making coalescing races deterministic; it must not
    call back into the server.  [snapshot] persists built warm tables
    and restores them instead of rebuilding (counted on
    [serve/table_restores]); only truncation-free tables are saved or
    accepted, so the warm path's exactness guarantee is unchanged. *)

val handle : t -> Protocol.request -> Protocol.response
(** Serves one request to completion (blocking — call from a
    per-connection thread or a stdio loop).  Never raises: validation
    failures are [Bad_request], computation bugs [Internal]. *)

val submit_query :
  t -> Fingerprint.t -> (string * string, Protocol.error) result
(** The query path of {!handle} on an already-validated fingerprint:
    [(payload, source)] with [source] one of ["memory"], ["disk"],
    ["cold"]. *)

val pending_waiters : t -> digest:string -> int
(** How many requests are currently {e attached} to the in-flight job
    for [digest] beyond the one that created it (0 when none is in
    flight).  A test seam: together with [on_compute_start] it lets a
    test hold a computation until all racing clients have coalesced. *)

val stats : t -> (string * int) list
(** Name-sorted [serve/*] and [serve_cache/*] counters (the [Stats]
    reply). *)

val shutdown : t -> unit
(** Begins draining: listeners stop accepting, queued jobs finish, new
    queries answer [Shutting_down].  Idempotent; does not block. *)

val join : t -> unit
(** Waits for the workers and the ticker to exit (call after
    {!shutdown}). *)

val draining : t -> bool

val handle_line : t -> string -> string
(** One raw request line in, one response line out (neither carries its
    newline) — {!handle} plus framing.  Never raises; malformed lines
    answer [Bad_request] with an empty id. *)

val serve_stdio : t -> in_channel -> out_channel -> unit
(** Line-delimited request/response loop until EOF ([--stdio] mode: the
    transport for tests, pipes and supervisors that speak stdin).
    SIGPIPE is ignored and channel write failures (the peer vanished)
    end the loop instead of raising. *)

val serve_listeners :
  t ->
  ?tcp:string * int ->
  ?on_tcp_listen:(int -> unit) ->
  ?socket:string ->
  unit ->
  (unit, string) result
(** Accepts and serves on every configured listener at once — a
    Unix-domain [socket] ({!Tcp.listen_unix} semantics), a [tcp]
    [(host, port)] endpoint ({!Tcp.listen_tcp}; port 0 binds an
    ephemeral port, reported through [on_tcp_listen]), or both — until
    {!shutdown}.  Each connection runs on its own thread through the
    hardened {!Tcp.serve_loop} (bounded request lines, SIGPIPE-proof
    writes, leak-free connection registry).  Installing a SIGTERM
    handler is the caller's job ({!shutdown} is async-signal-usable
    through a self-pipe).  Returns after the listeners closed, every
    connection thread finished, and the workers were joined; the socket
    file is removed on the way out.  [Error] if no listener was
    requested or a bind failed. *)

val serve_unix : t -> socket:string -> (unit, string) result
(** [serve_listeners] with only the Unix-domain [socket]. *)

val live_connections : t -> int
(** Currently open socket connections (0 once clients disconnect) — the
    leak detector the fd-churn regression test watches. *)
