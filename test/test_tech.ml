(* Tests for the technology database: Table 3 values, device parameters,
   design/die-area arithmetic. *)

open Helpers

let um = Ir_phys.Units.um

let test_geometry_basics () =
  let g = Ir_tech.Geometry.v ~width:(um 0.2) ~spacing:(um 0.3)
      ~thickness:(um 0.4) () in
  check_close "pitch" (um 0.5) (Ir_tech.Geometry.pitch g);
  check_close "ild defaults to thickness" (um 0.4) g.ild_thickness;
  check_close "via defaults to width" (um 0.2) g.via_width;
  check_close "via pad area" (um 0.4 *. um 0.4) (Ir_tech.Geometry.via_area g);
  let s = Ir_tech.Geometry.scaled g 2.0 in
  check_close "scaled width" (um 0.4) s.width;
  check_close "scaled pitch" (um 1.0) (Ir_tech.Geometry.pitch s)

let test_geometry_validation () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Geometry.v: width must be > 0") (fun () ->
      ignore
        (Ir_tech.Geometry.v ~width:0.0 ~spacing:(um 0.1) ~thickness:(um 0.1)
           ()));
  Alcotest.check_raises "negative scale"
    (Invalid_argument "Geometry.scaled: factor must be > 0") (fun () ->
      ignore
        (Ir_tech.Geometry.scaled
           (Ir_tech.Geometry.v ~width:(um 0.1) ~spacing:(um 0.1)
              ~thickness:(um 0.1) ())
           (-1.0)))

(* The paper's Table 3, exact values. *)
let test_table3_130nm () =
  let s = Ir_tech.Stack.of_node Ir_tech.Node.N130 in
  check_close "M1 width" (um 0.160) s.local.width;
  check_close "M1 spacing" (um 0.180) s.local.spacing;
  check_close "M1 thickness" (um 0.336) s.local.thickness;
  check_close "Mx width" (um 0.200) s.semi_global.width;
  check_close "Mx spacing" (um 0.210) s.semi_global.spacing;
  check_close "Mx thickness" (um 0.340) s.semi_global.thickness;
  check_close "Mt width" (um 0.440) s.global.width;
  check_close "Mt spacing" (um 0.460) s.global.spacing;
  check_close "Mt thickness" (um 1.020) s.global.thickness;
  check_close "V1" (um 0.190) s.local.via_width;
  check_close "Vx-1" (um 0.260) s.semi_global.via_width;
  check_close "Vt-1" (um 0.360) s.global.via_width;
  Alcotest.(check int) "7 layers" 7 (Ir_tech.Stack.layers s)

let test_table3_180nm () =
  let s = Ir_tech.Stack.of_node Ir_tech.Node.N180 in
  check_close "M1 width" (um 0.230) s.local.width;
  check_close "Mx thickness" (um 0.588) s.semi_global.thickness;
  check_close "Mt thickness" (um 0.960) s.global.thickness;
  Alcotest.(check int) "6 layers" 6 (Ir_tech.Stack.layers s)

let test_table3_90nm () =
  let s = Ir_tech.Stack.of_node Ir_tech.Node.N90 in
  check_close "M1 width" (um 0.120) s.local.width;
  check_close "Mx width" (um 0.140) s.semi_global.width;
  check_close "Mt thickness" (um 0.880) s.global.thickness;
  Alcotest.(check int) "8 layers" 8 (Ir_tech.Stack.layers s)

let test_max_pairs () =
  let s130 = Ir_tech.Stack.of_node Ir_tech.Node.N130 in
  Alcotest.(check int) "local" 1
    (Ir_tech.Stack.max_pairs s130 Ir_tech.Metal_class.Local);
  Alcotest.(check int) "semi-global at 130" 2
    (Ir_tech.Stack.max_pairs s130 Ir_tech.Metal_class.Semi_global);
  Alcotest.(check int) "global at 130" 1
    (Ir_tech.Stack.max_pairs s130 Ir_tech.Metal_class.Global);
  let s90 = Ir_tech.Stack.of_node Ir_tech.Node.N90 in
  Alcotest.(check int) "semi-global at 90" 3
    (Ir_tech.Stack.max_pairs s90 Ir_tech.Metal_class.Semi_global);
  let s180 = Ir_tech.Stack.of_node Ir_tech.Node.N180 in
  Alcotest.(check int) "semi-global at 180" 2
    (Ir_tech.Stack.max_pairs s180 Ir_tech.Metal_class.Semi_global)

let test_custom_stack_scaling () =
  let custom = Ir_tech.Node.Custom { name = "65nm-ish"; feature = 65e-9 } in
  let s = Ir_tech.Stack.of_node custom in
  let s130 = Ir_tech.Stack.of_node Ir_tech.Node.N130 in
  check_close "half of 130nm width" (s130.local.width /. 2.0) s.local.width

let test_node_basics () =
  check_close "gate pitch 130" (12.6 *. 130e-9)
    (Ir_tech.Node.gate_pitch Ir_tech.Node.N130);
  check_close "itrs clock 130" 1.7e9
    (Ir_tech.Node.itrs_max_clock Ir_tech.Node.N130);
  Alcotest.(check bool)
    "resistivity decreases after 180 (Al to Cu)" true
    (Ir_tech.Node.resistivity Ir_tech.Node.N130
    < Ir_tech.Node.resistivity Ir_tech.Node.N180);
  Alcotest.(check (option string))
    "of_string" (Some "130nm")
    (Option.map Ir_tech.Node.name (Ir_tech.Node.of_string "130nm"));
  Alcotest.(check (option string))
    "of_string bare" (Some "90nm")
    (Option.map Ir_tech.Node.name (Ir_tech.Node.of_string " 90 "))

let test_node_of_string_custom () =
  (match Ir_tech.Node.of_string "65nm" with
  | Some (Ir_tech.Node.Custom { name; feature }) ->
      Alcotest.(check string) "custom name" "65nm" name;
      check_close "custom feature" 65e-9 feature
  | other ->
      Alcotest.failf "65nm: expected a custom node, got %a"
        Fmt.(Dump.option Ir_tech.Node.pp)
        other);
  (match Ir_tech.Node.of_string "n45" with
  | Some (Ir_tech.Node.Custom { feature; _ }) ->
      check_close "n-prefixed feature" 45e-9 feature
  | _ -> Alcotest.fail "n45 should parse as a custom node");
  (match Ir_tech.Node.of_string "32.5nm" with
  | Some (Ir_tech.Node.Custom { name; feature }) ->
      Alcotest.(check string) "fractional name" "32.5nm" name;
      check_close "fractional feature" 32.5e-9 feature
  | _ -> Alcotest.fail "32.5nm should parse as a custom node");
  (* Custom nodes feed the scaled electrical model. *)
  (match Ir_tech.Node.of_string "65nm" with
  | Some node ->
      check_close "feature size" 65e-9 (Ir_tech.Node.feature_size node);
      Alcotest.(check bool)
        "gate pitch follows the ITRS rule" true
        (Ir_phys.Numeric.close (12.6 *. 65e-9)
           (Ir_tech.Node.gate_pitch node))
  | None -> Alcotest.fail "65nm should parse");
  List.iter
    (fun junk ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" junk)
        true
        (Ir_tech.Node.of_string junk = None))
    [ "abc"; ""; "0"; "-45nm"; "nan"; "infnm"; "45xm" ]

let test_device () =
  let d = Ir_tech.Device.of_node Ir_tech.Node.N130 in
  check_in_range "intrinsic delay in ps" ~lo:0.5e-12 ~hi:3e-12
    (Ir_tech.Device.intrinsic_delay d);
  Alcotest.(check bool)
    "area is the calibrated quantum" true
    (Ir_phys.Numeric.close d.area
       (Ir_tech.Device.inv_area_f2 *. 130e-9 *. 130e-9));
  Alcotest.check_raises "negative r_o"
    (Invalid_argument "Device.v: r_o must be > 0") (fun () ->
      ignore (Ir_tech.Device.v ~r_o:(-1.0) ~c_o:1e-15 ~c_p:1e-15 ~area:1e-12));
  let d90 = Ir_tech.Device.of_node Ir_tech.Node.N90 in
  Alcotest.(check bool)
    "90nm device faster than 130nm" true
    (Ir_tech.Device.intrinsic_delay d90 < Ir_tech.Device.intrinsic_delay d)

let test_design_areas () =
  let d = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:1_000_000 () in
  let g = Ir_tech.Node.gate_pitch Ir_tech.Node.N130 in
  check_close "gate area" (g *. g *. 1e6) (Ir_tech.Design.gate_area d);
  check_close "die area = gate area / 0.6"
    (Ir_tech.Design.gate_area d /. 0.6)
    (Ir_tech.Design.die_area d);
  check_close "repeater budget"
    (0.4 *. Ir_tech.Design.die_area d)
    (Ir_tech.Design.repeater_area d);
  check_close "effective pitch"
    (sqrt (Ir_tech.Design.die_area d /. 1e6))
    (Ir_tech.Design.effective_gate_pitch d);
  (* Sweeping R must keep the die (and hence WLD scale) fixed. *)
  let d2 = Ir_tech.Design.with_repeater_fraction d 0.1 in
  check_close "die area invariant under R sweep"
    (Ir_tech.Design.die_area d) (Ir_tech.Design.die_area d2);
  check_close "budget scales linearly"
    (0.25 *. Ir_tech.Design.repeater_area d)
    (Ir_tech.Design.repeater_area d2)

let test_design_validation () =
  let mk ?(rent_p = 0.6) ?(clock = 5e8) ?(fraction = 0.4) () =
    Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:1000 ~rent_p ~clock
      ~repeater_fraction:fraction ()
  in
  Alcotest.check_raises "rent out of range"
    (Invalid_argument "Design.v: rent_p must lie in (0, 1)") (fun () ->
      ignore (mk ~rent_p:1.5 ()));
  Alcotest.check_raises "clock" (Invalid_argument "Design.v: clock must be > 0")
    (fun () -> ignore (mk ~clock:0.0 ()));
  Alcotest.check_raises "fraction"
    (Invalid_argument "Design.v: repeater_fraction must lie in [0, 1]")
    (fun () -> ignore (mk ~fraction:1.5 ()));
  ignore (mk ())

let test_metal_class () =
  Alcotest.(check int) "three classes" 3 (List.length Ir_tech.Metal_class.all);
  Alcotest.(check string) "symbol" "Mx"
    (Ir_tech.Metal_class.table_symbol Ir_tech.Metal_class.Semi_global)

let test_pp_table3 () =
  let s = Ir_tech.Stack.of_node Ir_tech.Node.N130 in
  let str = Format.asprintf "%a" Ir_tech.Stack.pp_table3 s in
  Alcotest.(check bool) "mentions M1" true
    (Astring_contains.contains str "M1 minimum width");
  Alcotest.(check bool) "mentions node" true
    (Astring_contains.contains str "130nm")

let test_itrs () =
  Alcotest.(check int) "five generations" 5
    (List.length Ir_tech.Itrs.roadmap);
  (* Monotone trends along the roadmap. *)
  let rec check_trends = function
    | (a : Ir_tech.Itrs.entry) :: (b : Ir_tech.Itrs.entry) :: rest ->
        Alcotest.(check bool) "years increase" true (a.year < b.year);
        Alcotest.(check bool) "features shrink" true
          (Ir_tech.Node.feature_size a.node > Ir_tech.Node.feature_size b.node);
        Alcotest.(check bool) "clocks rise" true (a.max_clock < b.max_clock);
        Alcotest.(check bool) "k falls" true (a.ild_k >= b.ild_k);
        Alcotest.(check bool) "layers grow" true
          (a.metal_layers <= b.metal_layers);
        check_trends (b :: rest)
    | _ -> ()
  in
  check_trends Ir_tech.Itrs.roadmap;
  (match Ir_tech.Itrs.entry_for Ir_tech.Node.N130 with
  | Some e -> Alcotest.(check int) "130nm is the 2001 entry" 2001 e.year
  | None -> Alcotest.fail "130nm entry missing");
  Alcotest.(check bool) "unknown node" true
    (Ir_tech.Itrs.entry_for
       (Ir_tech.Node.Custom { name = "x"; feature = 1e-9 })
    = None);
  let e = List.hd Ir_tech.Itrs.roadmap in
  let d = Ir_tech.Itrs.design_of_entry ~gates:1234 e in
  Alcotest.(check int) "gates override" 1234 d.gates;
  check_close "clock from entry" e.max_clock d.clock

let () =
  Alcotest.run "tech"
    [
      ( "geometry",
        [
          Alcotest.test_case "basics" `Quick test_geometry_basics;
          Alcotest.test_case "validation" `Quick test_geometry_validation;
        ] );
      ( "stack",
        [
          Alcotest.test_case "table3 130nm" `Quick test_table3_130nm;
          Alcotest.test_case "table3 180nm" `Quick test_table3_180nm;
          Alcotest.test_case "table3 90nm" `Quick test_table3_90nm;
          Alcotest.test_case "max pairs" `Quick test_max_pairs;
          Alcotest.test_case "custom scaling" `Quick test_custom_stack_scaling;
          Alcotest.test_case "pp_table3" `Quick test_pp_table3;
        ] );
      ( "node",
        [
          Alcotest.test_case "basics" `Quick test_node_basics;
          Alcotest.test_case "custom node parsing" `Quick
            test_node_of_string_custom;
        ] );
      ( "device",
        [ Alcotest.test_case "parameters" `Quick test_device ] );
      ( "design",
        [
          Alcotest.test_case "areas" `Quick test_design_areas;
          Alcotest.test_case "validation" `Quick test_design_validation;
        ] );
      ( "metal class",
        [ Alcotest.test_case "basics" `Quick test_metal_class ] );
      ( "itrs",
        [ Alcotest.test_case "roadmap" `Quick test_itrs ] );
    ]
