(* Tests for the assignment substrate: Problem tables, Pair_fill
   (Algorithm 4) and Greedy_fill (Algorithm 5). *)

open Helpers

module P = Ir_assign.Problem
module GF = Ir_assign.Greedy_fill
module PF = Ir_assign.Pair_fill
module SF = Ir_assign.Suffix_fit

(* A small deterministic instance: 130nm stack, 6 single-wire bunches. *)
let fixed_instance ?(clock = 5e8) ?(fraction = 0.4) ?(gates = 5_000) () =
  let design =
    Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates ~clock
      ~repeater_fraction:fraction ()
  in
  let arch = Ir_ia.Arch.make ~design () in
  let lengths = [ 2.0e-4; 1.5e-4; 1.0e-4; 5.0e-5; 2.0e-5; 1.0e-5 ] in
  let bunches =
    Array.of_list
      (List.map (fun l -> { Ir_wld.Dist.length = l; count = 1 }) lengths)
  in
  P.of_bunches ~arch ~bunches ()

let test_problem_dimensions () =
  let p = fixed_instance () in
  Alcotest.(check int) "bunches" 6 (P.n_bunches p);
  Alcotest.(check int) "pairs" 4 (P.n_pairs p);
  Alcotest.(check int) "wires" 6 (P.total_wires p);
  Alcotest.(check int) "wires_before 0" 0 (P.wires_before p 0);
  Alcotest.(check int) "wires_before end" 6 (P.wires_before p 6);
  check_close "longest bunch" 2.0e-4 (P.bunch_length p 0);
  Alcotest.(check int) "count" 1 (P.bunch_count p 3)

let test_problem_targets () =
  let p = fixed_instance ~clock:5e8 () in
  (* d_i = (l / l_max) / f_c *)
  check_close "longest gets the period" 2e-9 (P.target p 0);
  check_close "proportional" (2e-9 *. (1.0e-4 /. 2.0e-4)) (P.target p 2)

let test_problem_interval_area () =
  let p = fixed_instance () in
  let pair = Ir_ia.Arch.pair (P.arch p) 1 in
  let expected =
    (2.0e-4 +. 1.5e-4) *. Ir_ia.Layer_pair.pitch pair
  in
  check_close "interval [0,2) on pair 1" expected
    (P.interval_area p ~pair:1 ~lo:0 ~hi:2);
  check_close "empty interval" 0.0 (P.interval_area p ~pair:1 ~lo:3 ~hi:3)

let test_problem_meeting_cost () =
  let p = fixed_instance () in
  (* meeting_cost over an interval = sum of per-bunch minimal costs. *)
  match
    ( P.meeting_cost p ~pair:1 ~lo:0 ~hi:2,
      P.eta_min p ~pair:1 ~bunch:0,
      P.eta_min p ~pair:1 ~bunch:1 )
  with
  | Some (area, count), Some e0, Some e1 ->
      let pair = Ir_ia.Arch.pair (P.arch p) 1 in
      Alcotest.(check int) "count is sum of etas" (e0 + e1) count;
      check_close "area is count * unit"
        (float_of_int (e0 + e1) *. pair.Ir_ia.Layer_pair.repeater_area)
        area
  | _ -> Alcotest.fail "expected feasible meeting costs on pair 1"

let test_problem_delay_consistency () =
  let p = fixed_instance () in
  (* eta_min really is minimal w.r.t. the exposed delay evaluator. *)
  for j = 0 to P.n_pairs p - 1 do
    for b = 0 to P.n_bunches p - 1 do
      match P.eta_min p ~pair:j ~bunch:b with
      | None -> ()
      | Some eta ->
          let l = P.bunch_length p b in
          let d = P.wire_delay_on_pair p ~pair:j ~eta l in
          Alcotest.(check bool)
            (Printf.sprintf "pair %d bunch %d meets" j b)
            true
            (d <= P.target p b);
          if eta > 1 then
            Alcotest.(check bool)
              (Printf.sprintf "pair %d bunch %d minimal" j b)
              true
              (P.wire_delay_on_pair p ~pair:j ~eta:(eta - 1) l > P.target p b)
    done
  done

let test_problem_validation () =
  let design = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:1000 () in
  let arch = Ir_ia.Arch.make ~design () in
  Alcotest.check_raises "unsorted bunches"
    (Invalid_argument "Problem: bunches must be sorted by non-increasing length")
    (fun () ->
      ignore
        (P.of_bunches ~arch
           ~bunches:
             [|
               { Ir_wld.Dist.length = 1.0e-5; count = 1 };
               { Ir_wld.Dist.length = 2.0e-5; count = 1 };
             |]
           ()));
  Alcotest.check_raises "empty" (Invalid_argument "Problem: empty instance")
    (fun () -> ignore (P.of_bunches ~arch ~bunches:[||] ()))

let test_pair_fill_basic () =
  let p = fixed_instance () in
  let budget = P.budget p in
  (match
     PF.assign p ~pair:1 ~prefix_wires:0 ~reps_above:0 ~meet_lo:0 ~meet_hi:2
       ~extra_hi:3 ~rep_budget:budget
   with
  | None -> Alcotest.fail "assignment should fit"
  | Some res ->
      Alcotest.(check bool) "positive repeater count" true (res.rep_count >= 2);
      check_close "routing area matches interval"
        (P.interval_area p ~pair:1 ~lo:0 ~hi:3)
        res.routing_area);
  (* Zero budget cannot meet targets that need repeaters. *)
  Alcotest.(check bool) "zero budget fails" true
    (PF.assign p ~pair:1 ~prefix_wires:0 ~reps_above:0 ~meet_lo:0 ~meet_hi:2
       ~extra_hi:2 ~rep_budget:0.0
    = None)

let test_pair_fill_capacity () =
  let p = fixed_instance ~gates:30 () in
  (* With an almost-zero die, the six wires overflow the pair. *)
  Alcotest.(check bool) "tiny die rejects wires" true
    (PF.assign p ~pair:0 ~prefix_wires:0 ~reps_above:0 ~meet_lo:0 ~meet_hi:0
       ~extra_hi:6 ~rep_budget:(P.budget p)
    = None)

let test_pair_fill_validation () =
  let p = fixed_instance () in
  Alcotest.check_raises "bad ranges"
    (Invalid_argument "Pair_fill.assign: malformed bunch ranges") (fun () ->
      ignore
        (PF.assign p ~pair:0 ~prefix_wires:0 ~reps_above:0 ~meet_lo:2
           ~meet_hi:1 ~extra_hi:3 ~rep_budget:0.0))

let test_greedy_fill_all () =
  let p = fixed_instance () in
  (* The whole WLD fits from the top pair (Definition 3 feasibility). *)
  (match GF.pack p (GF.context ~from_bunch:0 ~top_pair:0 ()) with
  | None -> Alcotest.fail "baseline instance must be assignable"
  | Some placements ->
      let wires =
        List.fold_left (fun a pl -> a + pl.GF.wires) 0 placements
      in
      Alcotest.(check int) "all wires placed" 6 wires;
      (* Bottom-up: placements are reported bottom pair first. *)
      (match placements with
      | first :: _ ->
          Alcotest.(check int) "starts at bottom pair" (P.n_pairs p - 1)
            first.GF.pair
      | [] -> Alcotest.fail "no placements"));
  Alcotest.(check bool) "fits agrees with pack" true
    (GF.fits p (GF.context ~from_bunch:0 ~top_pair:0 ()))

let test_greedy_fill_empty_suffix () =
  let p = fixed_instance () in
  Alcotest.(check bool) "empty suffix trivially fits" true
    (GF.fits p (GF.context ~from_bunch:(P.n_bunches p) ~top_pair:0 ()))

let test_greedy_fill_blockage_sensitivity () =
  let p = fixed_instance ~gates:700 () in
  (* On a small die, saturating the pair with used area must flip the
     verdict. *)
  let free = GF.fits p (GF.context ~from_bunch:0 ~top_pair:0 ()) in
  let cap = P.capacity p in
  let squeezed =
    GF.fits p
      (GF.context ~top_pair_used:(0.99 *. cap) ~from_bunch:0 ~top_pair:0 ())
  in
  Alcotest.(check bool) "squeezing the top pair can only hurt" true
    ((not squeezed) || free)

let test_greedy_fill_ordering () =
  let p = fixed_instance () in
  (* Shortest wires land lowest: bunch 5 (shortest) goes to the bottom
     pair in a roomy instance. *)
  match GF.pack p (GF.context ~from_bunch:0 ~top_pair:0 ()) with
  | None -> Alcotest.fail "must fit"
  | Some placements ->
      let bottom = P.n_pairs p - 1 in
      let of_shortest =
        List.filter (fun pl -> pl.GF.bunch = 5) placements
      in
      Alcotest.(check bool) "shortest on bottom pair" true
        (List.for_all (fun pl -> pl.GF.pair = bottom) of_shortest)

(* ---- rescale-reuse constructors --------------------------------------- *)

(* Rebuild a problem from scratch with the given design knobs, keeping the
   same bunches — the reference the reuse paths must match exactly. *)
let rebuild_like problem ~clock ~fraction =
  let arch = P.arch problem in
  let design = Ir_tech.Design.with_clock arch.Ir_ia.Arch.design clock in
  let design = Ir_tech.Design.with_repeater_fraction design fraction in
  let arch = Ir_ia.Arch.with_design arch design in
  let bunches =
    Array.init (P.n_bunches problem) (fun b ->
        { Ir_wld.Dist.length = P.bunch_length problem b;
          count = P.bunch_count problem b })
  in
  P.of_bunches ~arch ~bunches ()

let check_problems_agree label a b =
  Alcotest.(check int) (label ^ ": bunches") (P.n_bunches a) (P.n_bunches b);
  check_close (label ^ ": budget") (P.budget a) (P.budget b);
  check_close (label ^ ": capacity") (P.capacity a) (P.capacity b);
  for bn = 0 to P.n_bunches a - 1 do
    check_close
      (Printf.sprintf "%s: target %d" label bn)
      (P.target a bn) (P.target b bn)
  done;
  for j = 0 to P.n_pairs a - 1 do
    for bn = 0 to P.n_bunches a - 1 do
      Alcotest.(check (option int))
        (Printf.sprintf "%s: eta pair %d bunch %d" label j bn)
        (P.eta_min a ~pair:j ~bunch:bn)
        (P.eta_min b ~pair:j ~bunch:bn)
    done;
    for lo = 0 to P.n_bunches a do
      for hi = lo to P.n_bunches a do
        match
          (P.meeting_cost a ~pair:j ~lo ~hi, P.meeting_cost b ~pair:j ~lo ~hi)
        with
        | None, None -> ()
        | Some (_, ca), Some (_, cb) ->
            Alcotest.(check int)
              (Printf.sprintf "%s: count pair %d [%d,%d)" label j lo hi)
              ca cb
        | _ ->
            Alcotest.failf "%s: feasibility differs on pair %d [%d,%d)" label
              j lo hi
      done
    done
  done

let test_with_repeater_fraction () =
  let p = fixed_instance ~fraction:0.4 () in
  let rescaled = P.with_repeater_fraction p 0.1 in
  let fresh =
    rebuild_like p ~clock:(P.arch p).Ir_ia.Arch.design.Ir_tech.Design.clock
      ~fraction:0.1
  in
  check_problems_agree "fraction 0.4 -> 0.1" fresh rescaled;
  check_close "budget scaled by 1/4" (P.budget p /. 4.0) (P.budget rescaled);
  (* The original is untouched (fresh immutable value). *)
  check_close "original budget intact"
    (P.budget (fixed_instance ~fraction:0.4 ()))
    (P.budget p);
  Alcotest.check_raises "fraction out of range"
    (Invalid_argument "Design.v: repeater_fraction must lie in [0, 1]")
    (fun () -> ignore (P.with_repeater_fraction p 1.5))

let test_with_clock () =
  let p = fixed_instance ~clock:5e8 () in
  let rescaled = P.with_clock p 1e9 in
  let fresh = rebuild_like p ~clock:1e9 ~fraction:0.4 in
  check_problems_agree "clock 0.5 -> 1 GHz" fresh rescaled;
  (* Doubling the clock halves every target. *)
  check_close "target halves" (P.target p 0 /. 2.0) (P.target rescaled 0)

let prop_rescale_paths_match_rebuild =
  qtest ~count:40 "rescale-reuse constructors match full rebuilds"
    Helpers.gen_instance (fun { problem; label } ->
      let clock =
        (P.arch problem).Ir_ia.Arch.design.Ir_tech.Design.clock *. 1.7
      in
      let a = P.with_clock problem clock in
      let b = rebuild_like problem ~clock ~fraction:0.2 in
      let b = P.with_repeater_fraction b 0.2 in
      (* Compare via the DP-visible quantities on a coarse probe. *)
      let a = P.with_repeater_fraction a 0.2 in
      let ok = ref true in
      for j = 0 to P.n_pairs a - 1 do
        for bn = 0 to P.n_bunches a - 1 do
          if P.eta_min a ~pair:j ~bunch:bn <> P.eta_min b ~pair:j ~bunch:bn
          then ok := false
        done
      done;
      if (not !ok) || Float.abs (P.budget a -. P.budget b) > 1e-18 then
        QCheck2.Test.fail_reportf "%s" label
      else true)

(* Regression for the float-truncation bug: repeater counts are exact
   integers, so meeting-cost counts must be exactly additive over interval
   splits (int_of_float on differenced float prefixes broke this). *)
let prop_meeting_cost_additive =
  qtest ~count:60 "meeting-cost counts are exactly additive"
    Helpers.gen_instance (fun { problem; label } ->
      let n = P.n_bunches problem in
      let ok = ref true in
      for j = 0 to P.n_pairs problem - 1 do
        for mid = 0 to n do
          match
            ( P.meeting_cost problem ~pair:j ~lo:0 ~hi:n,
              P.meeting_cost problem ~pair:j ~lo:0 ~hi:mid,
              P.meeting_cost problem ~pair:j ~lo:mid ~hi:n )
          with
          | Some (_, whole), Some (_, left), Some (_, right) ->
              if whole <> left + right then ok := false
          | _ -> ()
        done
      done;
      if not !ok then QCheck2.Test.fail_reportf "%s: counts not additive" label
      else true)

let prop_greedy_fill_monotone_budget =
  qtest ~count:60 "relaxing blockage never breaks a fitting pack"
    Helpers.gen_instance (fun { problem; label } ->
      let tight =
        GF.fits problem
          (GF.context ~wires_above_top:50 ~reps_above_top:500
             ~wires_above_below:50 ~reps_above_below:500 ~from_bunch:0
             ~top_pair:0 ())
      in
      let loose = GF.fits problem (GF.context ~from_bunch:0 ~top_pair:0 ()) in
      if tight && not loose then QCheck2.Test.fail_reportf "%s" label
      else true)

let prop_greedy_fill_suffix_monotone =
  qtest ~count:60 "smaller suffixes keep fitting"
    Helpers.gen_instance (fun { problem; label } ->
      let fits_from i =
        GF.fits problem (GF.context ~from_bunch:i ~top_pair:0 ())
      in
      let n = P.n_bunches problem in
      let ok = ref true in
      for i = 0 to n - 1 do
        if fits_from i && not (fits_from (i + 1)) then ok := false
      done;
      if not !ok then QCheck2.Test.fail_reportf "%s" label else true)

let test_greedy_fill_fast_fail () =
  (* Tiny die, only the bottom pair available and 90% of it already
     consumed: the suffix demand exceeds the remaining capacity, so the
     O(pairs) screen must reject before the packing loop runs — and the
     screened verdict is the packing verdict. *)
  let p = fixed_instance ~gates:30 () in
  let ctx =
    GF.context ~from_bunch:0 ~top_pair:(P.n_pairs p - 1)
      ~top_pair_used:(0.9 *. P.capacity p) ()
  in
  let fails () =
    Option.value ~default:0
      (Ir_obs.find_counter (Ir_obs.snapshot ()) "greedy_fill/fast_fails")
  in
  let before = fails () in
  Alcotest.(check bool) "squeezed bottom pair cannot pack" false
    (GF.fits p ctx);
  Alcotest.(check bool) "capacity screen fired" true (fails () > before);
  Alcotest.(check bool) "pack agrees" true (GF.pack p ctx = None)

(* ---- memoized suffix-fit ----------------------------------------------- *)

let sf_query sf problem ~from_bunch ~top_pair ~top_pair_used ~wt ~rt ~wb ~rb =
  let memo =
    SF.fits sf ~from_bunch ~top_pair ~top_pair_used ~wires_above_top:wt
      ~reps_above_top:rt ~wires_above_below:wb ~reps_above_below:rb
  in
  let oracle =
    GF.fits problem
      (GF.context ~top_pair_used ~wires_above_top:wt ~reps_above_top:rt
         ~wires_above_below:wb ~reps_above_below:rb ~from_bunch ~top_pair ())
  in
  (memo, oracle)

let prop_suffix_fit_matches_oracle =
  let open QCheck2.Gen in
  let gen_ctx =
    let* fb = int_range 0 1000 in
    let* tp = int_range 0 1000 in
    let* usedf = float_range 0.0 1.1 in
    let* wt = int_range 0 200 in
    let* rt = int_range 0 2000 in
    let* wb = int_range 0 200 in
    let* rb = int_range 0 2000 in
    return (fb, tp, usedf, wt, rt, wb, rb)
  in
  let gen =
    let* inst = Helpers.gen_instance in
    let* ctxs = list_size (int_range 1 40) gen_ctx in
    return (inst, ctxs)
  in
  qtest ~count:80 "memoized suffix-fit matches the greedy-fill oracle" gen
    (fun ({ problem; label }, ctxs) ->
      let sf = SF.create problem in
      let n = P.n_bunches problem and m = P.n_pairs problem in
      let cap = P.capacity problem in
      (* Replay the whole sequence twice: the second pass answers mostly
         from the frontiers the first pass populated, so both the miss
         and the dominance-hit paths are compared against the oracle. *)
      List.for_all
        (fun (fb, tp, usedf, wt, rt, wb, rb) ->
          let from_bunch = fb mod (n + 1) and top_pair = tp mod m in
          let top_pair_used = usedf *. cap in
          let memo, oracle =
            sf_query sf problem ~from_bunch ~top_pair ~top_pair_used ~wt ~rt
              ~wb ~rb
          in
          if memo <> oracle then
            QCheck2.Test.fail_reportf
              "%s: memo=%b oracle=%b at fb=%d tp=%d used=%.6g wt=%d rt=%d \
               wb=%d rb=%d"
              label memo oracle from_bunch top_pair top_pair_used wt rt wb rb
          else true)
        (ctxs @ ctxs))

let test_suffix_fit_frozen_replay () =
  (* Deterministic hit-path coverage on the frozen instances (roomy,
     blockage-sensitive, and overloaded): a ladder of progressively harder
     contexts, replayed, must answer identically to the oracle throughout,
     and the replay pass must be served by the frontiers. *)
  let ladder =
    [
      (0, 0, 0.00, 0, 0, 0, 0);
      (0, 0, 0.30, 2, 10, 2, 10);
      (0, 0, 0.60, 5, 50, 5, 50);
      (0, 0, 0.99, 8, 200, 8, 200);
      (2, 0, 0.50, 3, 20, 3, 20);
    ]
  in
  let hits () =
    Option.value ~default:0
      (Ir_obs.find_counter (Ir_obs.snapshot ()) "suffix_fit/hits")
  in
  List.iter
    (fun (name, p) ->
      let sf = SF.create p in
      let cap = P.capacity p in
      let before = hits () in
      List.iter
        (fun (fb, tp, usedf, wt, rt, wb, rb) ->
          let memo, oracle =
            sf_query sf p ~from_bunch:fb ~top_pair:tp
              ~top_pair_used:(usedf *. cap) ~wt ~rt ~wb ~rb
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: memo = oracle at used=%.2f wt=%d" name usedf
               wt)
            oracle memo)
        (ladder @ ladder);
      Alcotest.(check bool)
        (name ^ ": replayed queries hit the frontier")
        true
        (hits () - before >= List.length ladder))
    [
      ("roomy", fixed_instance ());
      ("blockage-sensitive", fixed_instance ~gates:700 ());
      ("overloaded", fixed_instance ~gates:30 ());
    ]

(* [max_take] regression: the closed-form estimate floor(room / net) can
   land one off in either direction because float division is not exact.
   These literals were found by searching doubles for exactly that
   rounding; the pre-fix code (floor alone, no verify-and-adjust)
   returned the "old" value on each. *)
let test_max_take_rounding () =
  let take ~cap ~wire_area ~available =
    GF.max_take ~cap ~a_w:0.0 ~wire_area ~via:0.0 ~v:0 ~base_wires:0 ~reps:0
      ~suffix_above:available ~available
  in
  (* floor (2.2439999999999998 /. 0.374) = 5, yet 6 *. 0.374 <= cap:
     the old code under-packed by one wire. *)
  Alcotest.(check int) "undercount fixed" 6
    (take ~cap:2.2439999999999998 ~wire_area:0.374 ~available:10);
  (* floor (29.541 /. 0.687) = 43, yet 43 *. 0.687 > cap: the old code
     claimed an infeasible 43rd wire fit. *)
  Alcotest.(check int) "overcount fixed" 42
    (take ~cap:29.541 ~wire_area:0.687 ~available:100);
  (* Clamps and degenerate branches are unaffected. *)
  Alcotest.(check int) "available clamp" 3
    (take ~cap:29.541 ~wire_area:0.687 ~available:3);
  Alcotest.(check int) "no room" 0
    (take ~cap:0.0 ~wire_area:1.0 ~available:5);
  (* net <= 0: packing frees blockage, all-or-nothing on the exact
     inequality. *)
  Alcotest.(check int) "non-positive net takes all" 7
    (GF.max_take ~cap:10.0 ~a_w:0.0 ~wire_area:0.5 ~via:0.5 ~v:2
       ~base_wires:0 ~reps:0 ~suffix_above:7 ~available:7)

(* Counter-hygiene regression (the pruning PR's bugfix): the
   verify-and-adjust loop used to bump [greedy_fill/take_adjustments]
   even when the closed-form estimate was already exact and the
   adjustment was zero — every call looked like an adjustment event and
   the counter was pure noise.  Now only a non-zero correction counts. *)
let test_max_take_adjustment_counter () =
  let adjustments () =
    Option.value ~default:0
      (Ir_obs.find_counter (Ir_obs.snapshot ()) "greedy_fill/take_adjustments")
  in
  let take ~cap ~wire_area ~available =
    GF.max_take ~cap ~a_w:0.0 ~wire_area ~via:0.0 ~v:0 ~base_wires:0 ~reps:0
      ~suffix_above:available ~available
  in
  (* 8 /. 0.5 = 16.0 is exact in binary: the estimate is already the
     answer and no adjustment event may be recorded. *)
  let before = adjustments () in
  Alcotest.(check int) "exact estimate" 16
    (take ~cap:8.0 ~wire_area:0.5 ~available:40);
  Alcotest.(check int) "zero adjustment not counted" before (adjustments ());
  (* The frozen undercount literal from [test_max_take_rounding] really
     does adjust — the counter must still see those. *)
  Alcotest.(check int) "adjusting estimate" 6
    (take ~cap:2.2439999999999998 ~wire_area:0.374 ~available:10);
  Alcotest.(check bool) "real adjustment counted" true (adjustments () > before)

(* The returned count must always be maximal-feasible w.r.t. the exact
   inequality: taking it satisfies capacity, taking one more violates it
   (or exhausts the bunch). *)
let prop_max_take_maximal =
  let gen =
    QCheck2.Gen.(
      let* cap = float_range 0.0 50.0 in
      let* wire_area = float_range 0.001 5.0 in
      let* via = float_range 0.0 0.5 in
      let* v = int_range 0 4 in
      let* a_w = float_range 0.0 10.0 in
      let* base_wires = int_range 0 20 in
      let* reps = int_range 0 50 in
      let* extra = int_range 0 30 in
      let* available = int_range 0 60 in
      return (cap, wire_area, via, v, a_w, base_wires, reps, extra, available))
  in
  qtest ~count:500 "max_take is maximal-feasible" gen
    (fun (cap, wire_area, via, v, a_w, base_wires, reps, extra, available) ->
      let suffix_above = available + extra in
      let ok x =
        a_w
        +. (float_of_int x *. wire_area)
        +. (via
           *. ((float_of_int v *. float_of_int (base_wires + suffix_above - x))
              +. float_of_int reps))
        <= cap
      in
      let x =
        GF.max_take ~cap ~a_w ~wire_area ~via ~v ~base_wires ~reps
          ~suffix_above ~available
      in
      if x < 0 || x > available then
        QCheck2.Test.fail_reportf "take %d outside [0, %d]" x available
      else if x > 0 && not (ok x) then
        QCheck2.Test.fail_reportf "take %d violates capacity" x
      else if
        (* With net > 0 feasibility is downward-closed, so x + 1 must not
           fit; with net <= 0 the contract is all-or-nothing. *)
        wire_area -. (float_of_int v *. via) > 0.0
        && x < available && ok (x + 1)
      then QCheck2.Test.fail_reportf "take %d not maximal" x
      else true)

(* ---- power tables ----------------------------------------------------- *)

let test_power_tables () =
  let p = fixed_instance () in
  Alcotest.(check bool) "default problem is unconstrained" false
    (P.power_budgeted p);
  check_close "default activity" P.default_activity (P.activity p);
  for j = 0 to P.n_pairs p - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "per_rep_power %d positive" j)
      true
      (P.per_rep_power p ~pair:j > 0.0)
  done;
  (* Rebinding the default activity must rebuild byte-identical tables
     (same expressions over the same inputs). *)
  let same = P.with_activity p P.default_activity in
  for j = 0 to P.n_pairs p - 1 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "activity rebind at default, pair %d" j)
      (P.per_rep_power p ~pair:j)
      (P.per_rep_power same ~pair:j)
  done;
  let b = P.with_power_budget p 0.25 in
  Alcotest.(check bool) "finite budget flips power_budgeted" true
    (P.power_budgeted b);
  check_close "budget readable back" 0.25 (P.power_budget b);
  Alcotest.(check bool) "infinite rebind stays unconstrained" false
    (P.power_budgeted (P.with_power_budget p infinity));
  Alcotest.check_raises "budget 0 rejected"
    (Invalid_argument "Problem.with_power_budget: budget <= 0") (fun () ->
      ignore (P.with_power_budget p 0.0));
  Alcotest.check_raises "activity 0 rejected"
    (Invalid_argument "Problem.with_activity: activity must be in (0, 1]")
    (fun () -> ignore (P.with_activity p 0.0));
  Alcotest.check_raises "activity > 1 rejected"
    (Invalid_argument "Problem.with_activity: activity must be in (0, 1]")
    (fun () -> ignore (P.with_activity p 1.01))

(* Interval power is one float product over an exact integer repeater
   count, so splitting an interval anywhere loses at most rounding in
   the final product — and the min-power prefix must be monotone (it is
   the admissible floor the power-mode bound oracle subtracts). *)
let prop_meeting_power_additive =
  qtest ~count:60 "meeting power additive over splits; prefix monotone"
    Helpers.gen_instance (fun { problem; label } ->
      let n = P.n_bunches problem in
      let ok = ref true in
      for j = 0 to P.n_pairs problem - 1 do
        for mid = 0 to n do
          let whole = P.meeting_power problem ~pair:j ~lo:0 ~hi:n in
          let parts =
            P.meeting_power problem ~pair:j ~lo:0 ~hi:mid
            +. P.meeting_power problem ~pair:j ~lo:mid ~hi:n
          in
          if
            Float.abs (whole -. parts)
            > 1e-12 *. Float.max 1.0 (Float.abs whole)
          then ok := false
        done
      done;
      for i = 0 to n - 1 do
        if
          P.min_rep_power_before problem (i + 1)
          < P.min_rep_power_before problem i
        then ok := false
      done;
      if not !ok then
        QCheck2.Test.fail_reportf "%s: power tables inconsistent" label
      else true)

let () =
  Alcotest.run "assign"
    [
      ( "problem",
        [
          Alcotest.test_case "dimensions" `Quick test_problem_dimensions;
          Alcotest.test_case "targets" `Quick test_problem_targets;
          Alcotest.test_case "interval areas" `Quick test_problem_interval_area;
          Alcotest.test_case "meeting costs" `Quick test_problem_meeting_cost;
          Alcotest.test_case "delay consistency" `Quick
            test_problem_delay_consistency;
          Alcotest.test_case "validation" `Quick test_problem_validation;
          prop_meeting_cost_additive;
          Alcotest.test_case "power tables" `Quick test_power_tables;
          prop_meeting_power_additive;
        ] );
      ( "rescale reuse",
        [
          Alcotest.test_case "repeater fraction" `Quick
            test_with_repeater_fraction;
          Alcotest.test_case "clock" `Quick test_with_clock;
          prop_rescale_paths_match_rebuild;
        ] );
      ( "pair_fill",
        [
          Alcotest.test_case "basic" `Quick test_pair_fill_basic;
          Alcotest.test_case "capacity" `Quick test_pair_fill_capacity;
          Alcotest.test_case "validation" `Quick test_pair_fill_validation;
        ] );
      ( "greedy_fill",
        [
          Alcotest.test_case "packs everything" `Quick test_greedy_fill_all;
          Alcotest.test_case "empty suffix" `Quick test_greedy_fill_empty_suffix;
          Alcotest.test_case "blockage sensitivity" `Quick
            test_greedy_fill_blockage_sensitivity;
          Alcotest.test_case "bottom-up ordering" `Quick
            test_greedy_fill_ordering;
          Alcotest.test_case "max_take float rounding" `Quick
            test_max_take_rounding;
          Alcotest.test_case "max_take adjustment counter" `Quick
            test_max_take_adjustment_counter;
          Alcotest.test_case "capacity fast-fail" `Quick
            test_greedy_fill_fast_fail;
          prop_greedy_fill_monotone_budget;
          prop_greedy_fill_suffix_monotone;
          prop_max_take_maximal;
        ] );
      ( "suffix_fit",
        [
          Alcotest.test_case "frozen ladder replay" `Quick
            test_suffix_fit_frozen_replay;
          prop_suffix_fit_matches_oracle;
        ] );
    ]
