(* The serving layer: fingerprint canonicalization, JSON hardening,
   protocol round-trips, the two-tier cache (LRU model check, disk
   corruption handling), and end-to-end server behaviour over a real
   Unix socket — coalescing, restart persistence, shedding, timeouts,
   and the differential guarantee that every served payload is
   byte-identical to a cold computation. *)

open Helpers
module F = Ir_serve.Fingerprint
module J = Ir_serve.Json
module Pr = Ir_serve.Protocol
module C = Ir_serve.Cache
module S = Ir_serve.Server
module Cl = Ir_serve.Client

let ok_exn what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %s" what e

let counter name =
  Option.value ~default:0 (Ir_obs.find_counter (Ir_obs.snapshot ()) name)

(* Bounded busy-wait for cross-thread conditions in the e2e tests. *)
let wait_for ?(timeout = 10.0) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let small_query ?repeater_fraction ?algo ?wld () =
  ok_exn "small query"
    (F.v ?repeater_fraction ?algo ?wld ~bunch_size:500 ~node:"130nm"
       ~gates:20_000 ())

(* ---- fingerprint ------------------------------------------------------ *)

let test_fp_deterministic () =
  let a = small_query () and b = small_query () in
  Alcotest.(check string) "same digest" (F.digest a) (F.digest b);
  Alcotest.(check bool) "version-tagged canonical form" true
    (String.length (F.canonical a) > 22
    && String.sub (F.canonical a) 0 22 = "ia-rank/fingerprint/2\n")

let test_fp_node_spellings () =
  let d spelling =
    F.digest (ok_exn "query" (F.v ~node:spelling ~gates:1000 ()))
  in
  Alcotest.(check string) "130nm = 130" (d "130nm") (d "130");
  Alcotest.(check string) "130nm = n130" (d "130nm") (d "n130");
  Alcotest.(check bool) "130nm <> 90nm" true (d "130nm" <> d "90nm")

let test_fp_defaults_explicit () =
  let omitted = ok_exn "omitted" (F.v ~node:"130nm" ~gates:1000 ()) in
  let explicit =
    ok_exn "explicit"
      (F.v ~rent_p:0.6 ~fan_out:3.0 ~clock:0.5e9 ~repeater_fraction:0.4
         ~k:3.9 ~miller:2.0 ~bunch_size:10_000 ~algo:F.Dp ~node:"130nm"
         ~gates:1000 ())
  in
  Alcotest.(check string) "defaults fingerprint identically"
    (F.digest omitted) (F.digest explicit)

let test_fp_param_sensitivity () =
  let base = ok_exn "base" (F.v ~node:"130nm" ~gates:1000 ()) in
  let variants =
    [
      ("gates", F.v ~node:"130nm" ~gates:1001 ());
      ("clock", F.v ~clock:0.6e9 ~node:"130nm" ~gates:1000 ());
      ("k", F.v ~k:2.7 ~node:"130nm" ~gates:1000 ());
      ("fraction", F.v ~repeater_fraction:0.5 ~node:"130nm" ~gates:1000 ());
      ("algo", F.v ~algo:F.Greedy ~node:"130nm" ~gates:1000 ());
    ]
  in
  List.iter
    (fun (what, q) ->
      Alcotest.(check bool)
        (what ^ " changes the digest")
        true
        (F.digest (ok_exn what q) <> F.digest base))
    variants

let test_fp_inline_wld_canonical () =
  (* The same distribution listed in a different bin order fingerprints
     identically: the digest covers the canonical (merged, ascending)
     rendering, not the upload bytes. *)
  let wld text = ok_exn "wld" (Ir_wld.Io.of_string text) in
  let a = wld "1,2\n3.5,4\n" and b = wld "3.5,4\n1,2\n" in
  let q w = ok_exn "query" (F.v ~wld:w ~node:"130nm" ~gates:1000 ()) in
  Alcotest.(check string) "order-independent" (F.digest (q a))
    (F.digest (q b));
  Alcotest.(check bool) "inline wld differs from davis" true
    (F.digest (q a)
    <> F.digest (ok_exn "davis" (F.v ~node:"130nm" ~gates:1000 ())))

let test_fp_table_key_masks () =
  let q f algo =
    ok_exn "query" (F.v ~repeater_fraction:f ~algo ~node:"130nm" ~gates:1000 ())
  in
  Alcotest.(check string) "fraction masked"
    (F.table_key (q 0.2 F.Dp))
    (F.table_key (q 0.8 F.Dp));
  Alcotest.(check string) "algo masked"
    (F.table_key (q 0.4 F.Dp))
    (F.table_key (q 0.4 F.Greedy));
  Alcotest.(check bool) "digest itself not masked" true
    (F.digest (q 0.2 F.Dp) <> F.digest (q 0.8 F.Dp));
  let other = ok_exn "90nm" (F.v ~node:"90nm" ~gates:1000 ()) in
  Alcotest.(check bool) "node not masked" true
    (F.table_key (q 0.4 F.Dp) <> F.table_key other)

let test_fp_family_key_masks () =
  let q ?k ?miller ?clock ?repeater_fraction ?algo ?gates ?node () =
    ok_exn "query"
      (F.v ?k ?miller ?clock ?repeater_fraction ?algo
         ~node:(Option.value ~default:"130nm" node)
         ~gates:(Option.value ~default:1000 gates)
         ())
  in
  let base = F.family_key (q ()) in
  (* Everything a resident grid perturbs over is masked out... *)
  Alcotest.(check string) "k masked" base (F.family_key (q ~k:2.7 ()));
  Alcotest.(check string) "miller masked" base
    (F.family_key (q ~miller:1.5 ()));
  Alcotest.(check string) "clock masked" base
    (F.family_key (q ~clock:1.0e9 ()));
  Alcotest.(check string) "fraction masked" base
    (F.family_key (q ~repeater_fraction:0.8 ()));
  Alcotest.(check string) "algo masked" base
    (F.family_key (q ~algo:F.Greedy ()));
  (* ...while the family-pinning fields are not. *)
  Alcotest.(check bool) "gates not masked" true
    (base <> F.family_key (q ~gates:1001 ()));
  Alcotest.(check bool) "node not masked" true
    (base <> F.family_key (q ~node:"90nm" ()));
  (* Strictly coarser than the table key: a k variant shares the family
     but not the plane. *)
  Alcotest.(check bool) "coarser than table_key" true
    (F.table_key (q ()) <> F.table_key (q ~k:2.7 ()))

let test_fp_validation () =
  (match F.v ~node:"bogus" ~gates:1000 () with
  | Error e ->
      Alcotest.(check bool) "names the node" true
        (Astring_contains.contains e "bogus")
  | Ok _ -> Alcotest.fail "bogus node accepted");
  (match F.v ~bunch_size:0 ~node:"130nm" ~gates:1000 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bunch_size 0 accepted");
  match F.v ~repeater_fraction:1.5 ~node:"130nm" ~gates:1000 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "repeater fraction 1.5 accepted"

(* The version-2 compatibility rule: the power fields enter the
   canonical form only when they can change the answer, so every query
   that doesn't use them keeps its (v2) digest no matter how the
   defaults are spelled. *)
let test_fp_power_fields () =
  let q ?power_budget ?activity () =
    ok_exn "query" (F.v ?power_budget ?activity ~node:"130nm" ~gates:1000 ())
  in
  let base = F.digest (q ()) in
  Alcotest.(check string) "explicit infinite budget fingerprints as absent"
    base
    (F.digest (q ~power_budget:infinity ()));
  Alcotest.(check string) "activity inert without a finite budget" base
    (F.digest (q ~power_budget:infinity ~activity:0.5 ()));
  Alcotest.(check bool) "finite budget changes the digest" true
    (F.digest (q ~power_budget:0.5 ()) <> base);
  Alcotest.(check bool) "activity matters under a finite budget" true
    (F.digest (q ~power_budget:0.5 ~activity:0.3 ())
    <> F.digest (q ~power_budget:0.5 ()));
  (* A finite budget forfeits the warm-table path, so it must not alias
     onto the family's shared table key either. *)
  Alcotest.(check bool) "finite budget changes the table key" true
    (F.table_key (q ~power_budget:0.5 ()) <> F.table_key (q ()));
  let rejected what r =
    match r with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  rejected "budget 0" (F.v ~power_budget:0.0 ~node:"130nm" ~gates:1000 ());
  rejected "negative budget"
    (F.v ~power_budget:(-1.0) ~node:"130nm" ~gates:1000 ());
  rejected "activity 0"
    (F.v ~power_budget:0.5 ~activity:0.0 ~node:"130nm" ~gates:1000 ());
  rejected "activity > 1"
    (F.v ~power_budget:0.5 ~activity:1.5 ~node:"130nm" ~gates:1000 ());
  rejected "greedy under a finite budget"
    (F.v ~power_budget:0.5 ~algo:F.Greedy ~node:"130nm" ~gates:1000 ());
  rejected "epsilon under a finite budget"
    (F.v ~power_budget:0.5 ~epsilon:0.1 ~node:"130nm" ~gates:1000 ())

(* ---- JSON ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("i", J.Int (-42));
        ("f", J.Float 0.1);
        ("t", J.Bool true);
        ("n", J.Null);
        ("a", J.Arr [ J.Int 1; J.Str "x"; J.Obj [] ]);
      ]
  in
  let s = J.to_string v in
  let v2 = ok_exn "parse" (J.of_string s) in
  Alcotest.(check string) "print-parse-print fixpoint" s (J.to_string v2)

let test_json_hardening () =
  let rejected what s =
    match J.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted: %s" what s
  in
  rejected "trailing garbage" "{} x";
  rejected "raw control char" "\"a\x01b\"";
  rejected "bare word" "nul";
  rejected "unterminated string" "\"abc";
  rejected "lone surrogate" "\"\\ud800\"";
  rejected "infinite number" "1e999999";
  rejected "deep nesting"
    (String.concat "" (List.init 100 (fun _ -> "[")) );
  (* an integral float is still an int to readers *)
  Alcotest.(check (option int)) "3.0 readable as int" (Some 3)
    (J.to_int (ok_exn "3.0" (J.of_string "3.0")));
  match J.to_string (J.Float Float.nan) with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "NaN printed as %s" s

(* ---- protocol --------------------------------------------------------- *)

let gen_query =
  let open QCheck2.Gen in
  let id_string = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let opt_f lo hi = option (float_range lo hi) in
  let* node = oneofl [ "130nm"; "90nm"; "weird node \"x\"" ] in
  let* gates = int_range 1 10_000_000 in
  let* rent_p = opt_f 0.1 0.9 in
  let* fan_out = opt_f 1.0 5.0 in
  let* clock = opt_f 1e8 5e9 in
  let* repeater_fraction = opt_f 0.0 1.0 in
  let* k = opt_f 1.0 5.0 in
  let* miller = opt_f 1.0 3.0 in
  let* bunch_size = option (int_range 1 100_000) in
  let* structure =
    option (triple (int_range 0 4) (int_range 0 4) (int_range 0 4))
  in
  let* greedy = bool in
  let* epsilon = opt_f 0.0 1.0 in
  let* power_budget = opt_f 0.01 2.0 in
  let* activity = opt_f 0.01 1.0 in
  let* wld_csv =
    option (map (fun s -> s ^ "\n1,2") id_string)
  in
  let* id = id_string in
  return
    ( id,
      Pr.query ?rent_p ?fan_out ?clock ?repeater_fraction ?k ?miller
        ?bunch_size ?structure ~greedy ?epsilon ?power_budget ?activity
        ?wld_csv ~node ~gates () )

let prop_request_roundtrip =
  qtest ~count:200 "request encode/decode/encode is the identity" gen_query
    (fun (id, q) ->
      let line = Pr.encode_request { Pr.id; op = Pr.Query q } in
      match Pr.decode_request line with
      | Error _ -> false
      | Ok req -> Pr.encode_request req = line)

let gen_body =
  let open QCheck2.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 10) in
  let outcome =
    let* total = int_range 1 1_000_000 in
    let* assignable = bool in
    let* rank = if assignable then int_range 0 total else return 0 in
    let* boundary = if assignable then int_range 0 1000 else return 0 in
    let* exact = bool in
    return
      (Ir_core.Outcome.v ~exact ~rank_wires:rank ~total_wires:total
         ~assignable ~boundary_bunch:boundary ())
  in
  oneof
    [
      return Pr.Pong;
      (let* kvs = list_size (int_range 0 5) (pair name (int_range 0 1000)) in
       return (Pr.Stats_reply kvs));
      (let* o = outcome in
       let* source = oneofl [ "cold"; "memory"; "disk" ] in
       return (Pr.Result { source; payload = Pr.result_payload o }));
      (let* e =
         oneof
           [
             map (fun m -> Pr.Bad_request m) name; return Pr.Overloaded;
             return Pr.Timeout; return Pr.Shutting_down;
             map (fun m -> Pr.Internal m) name;
           ]
       in
       return (Pr.Error e));
    ]

let prop_response_roundtrip =
  qtest ~count:200 "response encode/decode/encode is the identity"
    QCheck2.Gen.(
      pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) gen_body)
    (fun (id, body) ->
      let line = Pr.encode_response { Pr.id; body } in
      match Pr.decode_response line with
      | Error _ -> false
      | Ok resp -> Pr.encode_response resp = line)

(* Wire compatibility across the power fields: a pre-power client's
   request line (no power keys) still decodes, and fingerprints exactly
   like a new client sending nothing — while the new keys survive a
   round trip and reach the fingerprint. *)
let test_protocol_power_compat () =
  let old_line =
    "{\"v\":1,\"id\":\"old\",\"op\":\"query\",\"query\":"
    ^ "{\"node\":\"130nm\",\"gates\":1000}}"
  in
  (match Pr.decode_request old_line with
  | Error e ->
      Alcotest.failf "pre-power line rejected: %s" (Pr.error_message e)
  | Ok { Pr.op = Pr.Query q; _ } ->
      let fp = ok_exn "old fp" (Pr.fingerprint_of_query q) in
      let fresh =
        ok_exn "fresh fp"
          (Pr.fingerprint_of_query (Pr.query ~node:"130nm" ~gates:1000 ()))
      in
      Alcotest.(check string) "pre-power line fingerprints as default"
        (F.digest fresh) (F.digest fp)
  | Ok _ -> Alcotest.fail "pre-power line decoded to a non-query");
  let powered =
    Pr.query ~power_budget:0.25 ~activity:0.3 ~node:"130nm" ~gates:1000 ()
  in
  let line = Pr.encode_request { Pr.id = "p"; op = Pr.Query powered } in
  match Pr.decode_request line with
  | Error e -> Alcotest.failf "powered line rejected: %s" (Pr.error_message e)
  | Ok { Pr.op = Pr.Query q; _ } ->
      Alcotest.(check string) "identity round trip" line
        (Pr.encode_request { Pr.id = "p"; op = Pr.Query q });
      let fp = ok_exn "powered fp" (Pr.fingerprint_of_query q) in
      Alcotest.(check bool) "budget reached the fingerprint" true
        (fp.F.power_budget = 0.25 && fp.F.activity = 0.3)
  | Ok _ -> Alcotest.fail "powered line decoded to a non-query"

let test_protocol_errors () =
  let bad line =
    match Pr.decode_request line with
    | Error (Pr.Bad_request _) -> ()
    | Error _ -> Alcotest.failf "non-bad-request error for %s" line
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  bad "not json";
  bad "{}";
  bad "{\"v\":99,\"id\":\"a\",\"op\":\"ping\"}";
  bad "{\"v\":1,\"id\":\"a\",\"op\":\"frobnicate\"}";
  bad "{\"v\":1,\"id\":\"a\",\"op\":\"query\"}";
  bad "{\"v\":1,\"id\":\"a\",\"op\":\"query\",\"query\":{\"node\":\"130nm\"}}";
  Alcotest.(check bool) "overloaded retryable" true (Pr.retryable Pr.Overloaded);
  Alcotest.(check bool) "timeout not retryable" false (Pr.retryable Pr.Timeout)

(* ---- cache: LRU model check ------------------------------------------- *)

(* Reference model: MRU-first key list, no payloads.  [mem_keys_lru_first]
   must equal its reverse after any op sequence, and membership must
   agree with [find]. *)
let prop_lru_model =
  qtest ~count:300 "memory tier behaves as textbook LRU"
    QCheck2.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 0 60) (pair (int_range 0 9) bool)))
    (fun (capacity, ops) ->
      let cache = Result.get_ok (C.create ~capacity ()) in
      let key k = Digest.to_hex (Digest.string (string_of_int k)) in
      let model = ref [] in
      let model_touch k =
        model := k :: List.filter (fun x -> x <> k) !model
      in
      List.for_all
        (fun (k, is_store) ->
          if is_store then begin
            C.store cache ~digest:(key k) (string_of_int k);
            model_touch k;
            (model :=
               List.filteri (fun i _ -> i < capacity) !model);
            true
          end
          else
            let hit = C.find cache ~digest:(key k) in
            let in_model = List.mem k !model in
            (match hit with
            | Some (payload, C.Memory) ->
                model_touch k;
                payload = string_of_int k
            | Some (_, C.Disk) -> false
            | None -> true)
            && Option.is_some hit = in_model)
        ops
      && C.mem_count cache = List.length !model
      && C.mem_keys_lru_first cache = List.rev_map key !model)

let test_lru_eviction_order () =
  let cache = ok_exn "cache" (C.create ~capacity:2 ()) in
  let k i = Digest.to_hex (Digest.string (string_of_int i)) in
  C.store cache ~digest:(k 1) "one";
  C.store cache ~digest:(k 2) "two";
  (* touch 1 so 2 becomes the eviction victim *)
  ignore (C.find cache ~digest:(k 1));
  C.store cache ~digest:(k 3) "three";
  Alcotest.(check bool) "2 evicted" true (C.find cache ~digest:(k 2) = None);
  Alcotest.(check bool) "1 kept" true (C.find cache ~digest:(k 1) <> None);
  Alcotest.(check int) "bounded" 2 (C.mem_count cache)

(* ---- cache: disk tier ------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ia_serve_test_%d_%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let digest_of s = Digest.to_hex (Digest.string s)

let test_disk_persistence () =
  with_temp_dir @@ fun dir ->
  let d = digest_of "q1" in
  let c1 = ok_exn "cache1" (C.create ~dir ()) in
  C.store c1 ~digest:d "payload-bytes";
  (* a fresh cache over the same directory — the restart case *)
  let c2 = ok_exn "cache2" (C.create ~dir ()) in
  (match C.find c2 ~digest:d with
  | Some ("payload-bytes", C.Disk) -> ()
  | Some (p, C.Memory) -> Alcotest.failf "unexpected memory hit %s" p
  | Some _ -> Alcotest.fail "wrong payload from disk"
  | None -> Alcotest.fail "disk entry not found");
  (* promoted: second lookup is a memory hit *)
  match C.find c2 ~digest:d with
  | Some (_, C.Memory) -> ()
  | _ -> Alcotest.fail "disk hit was not promoted to memory"

let test_disk_corruption_rejected () =
  with_temp_dir @@ fun dir ->
  let cases =
    [
      ("garbage", fun _ -> "total garbage");
      ("truncated", fun s -> String.sub s 0 (String.length s / 2));
      ( "payload flipped",
        fun s ->
          String.map (fun c -> if c = 'p' then 'q' else c) s );
      ("empty", fun _ -> "");
    ]
  in
  List.iteri
    (fun i (what, corrupt) ->
      let d = digest_of (Printf.sprintf "q%d" i) in
      let c1 = ok_exn "cache" (C.create ~dir ()) in
      C.store c1 ~digest:d "payload";
      let path = C.entry_path ~dir ~digest:d in
      let original =
        In_channel.with_open_bin path In_channel.input_all
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (corrupt original));
      let before = counter "serve_cache/disk_corrupt" in
      let fresh = ok_exn "fresh" (C.create ~dir ()) in
      (match C.find fresh ~digest:d with
      | None -> ()
      | Some _ -> Alcotest.failf "%s entry accepted" what);
      Alcotest.(check bool) (what ^ " counted") true
        (counter "serve_cache/disk_corrupt" = before + 1);
      Alcotest.(check bool) (what ^ " deleted") false (Sys.file_exists path))
    cases

let test_disk_digest_mismatch () =
  with_temp_dir @@ fun dir ->
  let d1 = digest_of "a" and d2 = digest_of "b" in
  let c = ok_exn "cache" (C.create ~dir ()) in
  C.store c ~digest:d1 "payload-a";
  (* a confused sync tool renames the valid entry under another digest:
     internally consistent, but it answers the wrong question *)
  Sys.rename (C.entry_path ~dir ~digest:d1) (C.entry_path ~dir ~digest:d2);
  let fresh = ok_exn "fresh" (C.create ~dir ()) in
  (match C.find fresh ~digest:d2 with
  | None -> ()
  | Some _ -> Alcotest.fail "entry accepted under the wrong digest");
  Alcotest.(check bool) "rejected entry deleted" false
    (Sys.file_exists (C.entry_path ~dir ~digest:d2))

(* ---- server: differential cached = cold ------------------------------- *)

let test_differential_cached_equals_cold () =
  Ir_obs.reset ();
  let cache = ok_exn "cache" (C.create ~capacity:64 ()) in
  let srv = S.create ~workers:2 ~cache () in
  let corpus =
    [
      F.v ~bunch_size:500 ~node:"130nm" ~gates:20_000 ();
      F.v ~bunch_size:500 ~repeater_fraction:0.2 ~node:"130nm"
        ~gates:20_000 ();
      F.v ~bunch_size:500 ~repeater_fraction:0.7 ~node:"130nm"
        ~gates:20_000 ();
      F.v ~bunch_size:500 ~node:"90nm" ~gates:20_000 ();
      F.v ~bunch_size:500 ~algo:F.Greedy ~node:"130nm" ~gates:20_000 ();
      F.v ~bunch_size:400 ~clock:2.0e9 ~node:"130nm" ~gates:30_000 ();
      F.v ~bunch_size:400 ~k:2.7 ~miller:1.5 ~node:"90nm" ~gates:30_000 ();
      (let wld = Result.get_ok (Ir_wld.Io.of_string "1,500\n4,200\n9,60\n") in
       F.v ~wld ~bunch_size:100 ~node:"130nm" ~gates:5_000 ());
    ]
  in
  List.iteri
    (fun i q ->
      let q = ok_exn (Printf.sprintf "corpus %d" i) q in
      let cold = Pr.result_payload (F.compute_cold q) in
      let served =
        match S.submit_query srv q with
        | Ok (payload, _) -> payload
        | Error e -> Alcotest.failf "corpus %d: %s" i (Pr.error_message e)
      in
      Alcotest.(check string)
        (Printf.sprintf "corpus %d: served = cold" i)
        cold served;
      (* and again, now through the cache *)
      match S.submit_query srv q with
      | Ok (payload, source) ->
          Alcotest.(check string)
            (Printf.sprintf "corpus %d: cache hit identical" i)
            cold payload;
          Alcotest.(check string)
            (Printf.sprintf "corpus %d: second ask from memory" i)
            "memory" source
      | Error e -> Alcotest.failf "corpus %d: %s" i (Pr.error_message e))
    corpus;
  (* the repeater-fraction family shares one warm table build *)
  Alcotest.(check bool) "warm tables reused" true
    (counter "serve/table_hits" >= 2);
  S.shutdown srv;
  S.join srv

(* ---- server: e2e over a unix socket ----------------------------------- *)

let temp_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ia_serve_%d_%d.sock" (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))

let start_server srv socket =
  let th =
    Thread.create (fun () -> ok_exn "serve_unix" (S.serve_unix srv ~socket)) ()
  in
  wait_for "socket to appear" (fun () -> Sys.file_exists socket);
  th

let test_e2e_coalescing_and_restart () =
  Ir_obs.reset ();
  with_temp_dir @@ fun dir ->
  let socket = temp_socket () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let cache = ok_exn "cache" (C.create ~capacity:16 ~dir ()) in
  let srv =
    S.create ~workers:2 ~cache
      ~on_compute_start:(fun _ ->
        Atomic.set started true;
        (* hold the computation until the test saw all waiters attach *)
        while not (Atomic.get release) do
          Thread.delay 0.002
        done)
      ()
  in
  let server_thread = start_server srv socket in
  let q = Pr.query ~bunch_size:500 ~node:"130nm" ~gates:20_000 () in
  let fp = ok_exn "fp" (Pr.fingerprint_of_query q) in
  let digest = F.digest fp in
  (* 4 concurrent clients, byte-identical request lines *)
  let line = Pr.encode_request { Pr.id = "x"; op = Pr.Query q } in
  let responses = Array.make 4 "" in
  let clients =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket);
            let oc = Unix.out_channel_of_descr fd in
            let ic = Unix.in_channel_of_descr fd in
            output_string oc (line ^ "\n");
            flush oc;
            (match In_channel.input_line ic with
            | Some resp -> responses.(i) <- resp
            | None -> ());
            Unix.close fd)
          ())
  in
  wait_for "compute to start" (fun () -> Atomic.get started);
  wait_for "3 waiters to coalesce" (fun () ->
      S.pending_waiters srv ~digest = 3);
  Atomic.set release true;
  List.iter Thread.join clients;
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "client %d answered" i) true
        (String.length r > 0);
      Alcotest.(check string)
        (Printf.sprintf "client %d byte-identical" i)
        responses.(0) r)
    responses;
  Alcotest.(check int) "exactly one computation" 1 (counter "serve/computes");
  Alcotest.(check int) "three requests coalesced" 3
    (counter "serve/coalesced");
  S.shutdown srv;
  Thread.join server_thread;
  Alcotest.(check bool) "socket removed on drain" false
    (Sys.file_exists socket);
  (* restart over the same cache dir: the 5th ask hits the disk store *)
  let cache2 = ok_exn "cache2" (C.create ~capacity:16 ~dir ()) in
  let srv2 = S.create ~workers:1 ~cache:cache2 () in
  let server_thread2 = start_server srv2 socket in
  let client = ok_exn "connect" (Cl.connect ~socket) in
  (match Cl.query client q with
  | Ok (_, source, payload) ->
      let body =
        ok_exn "resp0" (Pr.decode_response responses.(0))
      in
      (match body.Pr.body with
      | Pr.Result r ->
          Alcotest.(check string) "restart payload identical" r.payload
            payload
      | _ -> Alcotest.fail "first response was not a result");
      Alcotest.(check string) "served from disk" "disk" source
  | Error e -> Alcotest.failf "restart query: %s" e);
  Cl.close client;
  S.shutdown srv2;
  Thread.join server_thread2

let fp_at f =
  ok_exn "fp"
    (F.v ~repeater_fraction:f ~bunch_size:500 ~node:"130nm" ~gates:20_000 ())

let test_e2e_shed () =
  Ir_obs.reset ();
  let release = Atomic.make false in
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv =
    S.create ~workers:1 ~queue_capacity:1 ~cache
      ~on_compute_start:(fun _ ->
        while not (Atomic.get release) do
          Thread.delay 0.002
        done)
      ()
  in
  (* A occupies the single worker (held by the hook); B and C then race
     for the one queue slot — whichever loses is shed with the retryable
     Overloaded error while the winner completes normally. *)
  let ra = ref (Error Pr.Overloaded)
  and rb = ref (Error Pr.Overloaded)
  and rc = ref (Error Pr.Overloaded) in
  let ta = Thread.create (fun () -> ra := S.submit_query srv (fp_at 0.3)) () in
  wait_for "A to occupy the worker" (fun () -> counter "serve/computes" = 1);
  let tb = Thread.create (fun () -> rb := S.submit_query srv (fp_at 0.4)) () in
  let tc = Thread.create (fun () -> rc := S.submit_query srv (fp_at 0.5)) () in
  wait_for "one of B/C to be shed" (fun () -> counter "serve/shed" = 1);
  Atomic.set release true;
  List.iter Thread.join [ ta; tb; tc ];
  (match !ra with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "A failed: %s" (Pr.error_message e));
  let shed, served =
    List.partition (fun r -> r = Error Pr.Overloaded) [ !rb; !rc ]
  in
  Alcotest.(check int) "exactly one shed" 1 (List.length shed);
  (match served with
  | [ Ok _ ] -> ()
  | [ Error e ] ->
      Alcotest.failf "queued request failed: %s" (Pr.error_message e)
  | _ -> Alcotest.fail "expected exactly one served request");
  Alcotest.(check bool) "overloaded is retryable" true
    (Pr.retryable Pr.Overloaded);
  (* draining refuses new queries *)
  S.shutdown srv;
  (match S.submit_query srv (fp_at 0.6) with
  | Error Pr.Shutting_down -> ()
  | Ok _ -> Alcotest.fail "query accepted while draining"
  | Error e ->
      Alcotest.failf "expected shutting down, got %s" (Pr.error_message e));
  S.join srv

let test_e2e_timeout () =
  Ir_obs.reset ();
  let release = Atomic.make false in
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv =
    S.create ~workers:1 ~request_timeout:0.15 ~cache
      ~on_compute_start:(fun _ ->
        while not (Atomic.get release) do
          Thread.delay 0.002
        done)
      ()
  in
  (* The hook holds the computation past the 0.15 s deadline: the waiter
     is released with Timeout… *)
  (match S.submit_query srv (fp_at 0.3) with
  | Error Pr.Timeout -> ()
  | Ok _ -> Alcotest.fail "expected a timeout"
  | Error e -> Alcotest.failf "expected timeout, got %s" (Pr.error_message e));
  Alcotest.(check int) "timeout counted" 1 (counter "serve/timeouts");
  (* …but the computation itself still completes and publishes, so the
     next asker gets a memory hit. *)
  Atomic.set release true;
  wait_for "the abandoned result to be cached" (fun () ->
      C.find cache ~digest:(F.digest (fp_at 0.3)) <> None);
  (match S.submit_query srv (fp_at 0.3) with
  | Ok (_, "memory") -> ()
  | Ok (_, s) -> Alcotest.failf "expected memory hit, got %s" s
  | Error e -> Alcotest.failf "post-timeout ask: %s" (Pr.error_message e));
  S.shutdown srv;
  S.join srv

(* ---- hostile clients: disconnects, fd churn, oversized lines ---------- *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let send_raw fd s = ignore (Unix.write_substring fd s 0 (String.length s))

(* A client that hangs up between request and response must cost the
   server one failed write — the historical behaviour was death by
   SIGPIPE on the response write. *)
let test_e2e_disconnect_mid_response () =
  Ir_obs.reset ();
  let release = Atomic.make false in
  let started = Atomic.make false in
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv =
    S.create ~workers:1 ~cache
      ~on_compute_start:(fun _ ->
        Atomic.set started true;
        while not (Atomic.get release) do
          Thread.delay 0.002
        done)
      ()
  in
  let socket = temp_socket () in
  let server_thread = start_server srv socket in
  let q = Pr.query ~bunch_size:500 ~node:"130nm" ~gates:20_000 () in
  let fd = raw_connect socket in
  send_raw fd (Pr.encode_request { Pr.id = "gone"; op = Pr.Query q } ^ "\n");
  wait_for "compute to start" (fun () -> Atomic.get started);
  (* The client vanishes while its answer is still being computed. *)
  Unix.close fd;
  Atomic.set release true;
  wait_for "the response write to fail" (fun () ->
      counter "serve_net/write_failures" >= 1);
  wait_for "the dead connection to unregister" (fun () ->
      S.live_connections srv = 0);
  (* The daemon survived: a second client gets the (cached) answer. *)
  let client = ok_exn "connect" (Cl.connect ~socket) in
  (match Cl.query client q with
  | Ok (_, source, _) -> Alcotest.(check string) "from cache" "memory" source
  | Error e -> Alcotest.failf "query after disconnect: %s" e);
  Cl.close client;
  S.shutdown srv;
  Thread.join server_thread

(* Rapid connect/disconnect churn — instant hangups, garbage lines,
   half-written requests — must leave zero registered connections and a
   server that still answers.  The historical connection list grew
   without bound and, at drain, shut down already-closed (reusable) fd
   numbers. *)
let test_e2e_fd_churn_storm () =
  Ir_obs.reset ();
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv = S.create ~workers:1 ~cache () in
  let socket = temp_socket () in
  let server_thread = start_server srv socket in
  for i = 0 to 59 do
    let fd = raw_connect socket in
    (match i mod 3 with
    | 0 -> () (* connect and vanish *)
    | 1 ->
        (* garbage request: server answers Bad_request, client vanishes
           without reading it *)
        send_raw fd "this is not json\n"
    | _ ->
        (* half a request line, then gone *)
        send_raw fd "{\"v\":1,\"id\":\"trunc");
    Unix.close fd
  done;
  (* The accept loop may still be draining the listen backlog: wait for
     every churned connection to have been accepted AND unregistered. *)
  wait_for "every churned connection to unregister" (fun () ->
      counter "serve_net/connections" >= 60 && S.live_connections srv = 0);
  let client = ok_exn "connect" (Cl.connect ~socket) in
  ok_exn "ping after the storm" (Cl.ping client);
  Cl.close client;
  S.shutdown srv;
  Thread.join server_thread;
  Alcotest.(check bool) "socket removed on drain" false
    (Sys.file_exists socket)

(* A request line over the 8 MiB bound is answered with Bad_request and
   the connection is dropped — bounded memory per connection, no
   [input_line]-style unbounded buffering. *)
let test_e2e_overlong_line () =
  Ir_obs.reset ();
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv = S.create ~workers:1 ~cache () in
  let socket = temp_socket () in
  let server_thread = start_server srv socket in
  let fd = raw_connect socket in
  (* Exactly one byte over the bound: the server must consume every
     byte before it can detect the overflow, so its close after the
     Bad_request answer is a clean FIN (closing with unread inbound
     data would RST the response away). *)
  let chunk = String.make 65536 'a' in
  let n = Ir_serve.Tcp.default_max_line / String.length chunk in
  for _ = 1 to n do
    send_raw fd chunk
  done;
  send_raw fd "a";
  let ic = Unix.in_channel_of_descr fd in
  (match In_channel.input_line ic with
  | None -> Alcotest.fail "no response to an overlong line"
  | Some line -> (
      let resp = ok_exn "decode" (Pr.decode_response line) in
      match resp.Pr.body with
      | Pr.Error (Pr.Bad_request _) -> ()
      | _ -> Alcotest.fail "expected Bad_request for an overlong line"));
  Alcotest.(check bool) "connection dropped after the flood" true
    (In_channel.input_line ic = None);
  Unix.close fd;
  Alcotest.(check int) "overlong line counted" 1
    (counter "serve_net/overlong_lines");
  S.shutdown srv;
  Thread.join server_thread

(* ---- cache: write failures and temp-file hygiene ---------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (try Sys.readdir path with Sys_error _ -> [||]);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let temp_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ia_serve_%s_%d_%d" tag (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))

(* The disk tier failing must degrade the daemon, not stop it: a store
   that cannot write counts [disk_errors] and the query is still served
   from memory. *)
let test_cache_write_failure_keeps_serving () =
  Ir_obs.reset ();
  let dir = temp_path "badcache" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cache = ok_exn "cache" (C.create ~capacity:16 ~dir ()) in
  (* Yank the directory out from under the running cache: every disk
     write from here on fails at [temp_file]. *)
  rm_rf dir;
  Out_channel.with_open_bin dir (fun _ -> ());
  let srv = S.create ~workers:1 ~cache () in
  let q = fp_at 0.3 in
  (match S.submit_query srv q with
  | Ok (payload, _) ->
      Alcotest.(check string) "served despite the disk failure"
        (Pr.result_payload (F.compute_cold q))
        payload
  | Error e -> Alcotest.failf "query: %s" (Pr.error_message e));
  Alcotest.(check bool) "disk error counted" true
    (counter "serve_cache/disk_errors" >= 1);
  (match S.submit_query srv q with
  | Ok (_, "memory") -> ()
  | Ok (_, s) -> Alcotest.failf "expected memory hit, got %s" s
  | Error e -> Alcotest.failf "second ask: %s" (Pr.error_message e));
  S.shutdown srv;
  S.join srv

(* Crash-orphaned temp files are reaped on cache open; a live writer's
   fresh temp file is left alone. *)
let test_cache_tmp_sweep () =
  Ir_obs.reset ();
  let dir = temp_path "tmpsweep" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let _ = ok_exn "cache" (C.create ~dir ()) in
  let stale = Filename.concat dir ".deadbeef.1234.tmp" in
  let fresh = Filename.concat dir ".cafe.5678.tmp" in
  Out_channel.with_open_bin stale (fun oc ->
      Out_channel.output_string oc "orphan");
  Unix.utimes stale 1.0 1.0;
  Out_channel.with_open_bin fresh (fun oc ->
      Out_channel.output_string oc "in-flight");
  let _ = ok_exn "cache2" (C.create ~dir ()) in
  Alcotest.(check int) "stale orphan swept" 1 (counter "serve_cache/tmp_swept");
  Alcotest.(check bool) "stale orphan removed" false (Sys.file_exists stale);
  Alcotest.(check bool) "fresh temp file untouched" true
    (Sys.file_exists fresh)

(* Several processes hammering one cache directory — concurrent writers
   racing renames, readers opening mid-traffic — must never produce a
   torn or wrong read.  Atomic temp-file + rename is the claim; this is
   the multi-process proof. *)
let test_cache_multiprocess_hammer () =
  Ir_obs.reset ();
  let dir = temp_path "hammer" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let entries =
    List.init 12 (fun i ->
        (digest_of (Printf.sprintf "hammer-%d" i),
         Printf.sprintf "payload-%d-%s" i (String.make (100 * i) 'x')))
  in
  let writer () =
    match Unix.fork () with
    | 0 ->
        (* Child: its own cache over the shared directory, storing every
           entry repeatedly.  [_exit], not [exit]: the child must not
           flush channels it shares with the parent. *)
        (try
           match C.create ~dir () with
           | Error _ -> Unix._exit 1
           | Ok c ->
               for _ = 1 to 25 do
                 List.iter
                   (fun (digest, payload) -> C.store c ~digest payload)
                   entries
               done;
               Unix._exit 0
         with _ -> Unix._exit 1)
    | pid -> pid
  in
  let pids = List.init 3 (fun _ -> writer ()) in
  (* Parent: read through fresh caches while the writers race.  Every
     observed entry must be complete and correct — a torn rename would
     surface as either corruption (counted) or a wrong payload. *)
  let before_corrupt = counter "serve_cache/disk_corrupt" in
  for _ = 1 to 40 do
    let c = ok_exn "reader cache" (C.create ~dir ()) in
    List.iter
      (fun (digest, payload) ->
        match C.find c ~digest with
        | None -> () (* not yet written: a miss, never a torn read *)
        | Some (p, _) ->
            Alcotest.(check string) "no torn or wrong payload" payload p)
      entries;
    Thread.delay 0.005
  done;
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "writer process failed")
    pids;
  Alcotest.(check int) "no live-race corruption" before_corrupt
    (counter "serve_cache/disk_corrupt");
  (* Steady state: every entry present and byte-correct. *)
  let c = ok_exn "final cache" (C.create ~dir ()) in
  List.iter
    (fun (digest, payload) ->
      match C.find c ~digest with
      | Some (p, _) -> Alcotest.(check string) "final payload" payload p
      | None -> Alcotest.fail "entry missing after the hammer")
    entries

(* ---- warm-table snapshots --------------------------------------------- *)

module Sn = Ir_serve.Snapshot

(* A restarted server answers warm: the first server persists its built
   family tables, the second restores them instead of rebuilding — and
   the restored answer is byte-identical to a cold compute. *)
let test_snapshot_warm_restart () =
  Ir_obs.reset ();
  let dir = temp_path "snap" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let snapshot = ok_exn "snapshot" (Sn.create ~dir) in
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv = S.create ~workers:1 ~snapshot ~cache () in
  let q = fp_at 0.3 in
  let key = F.table_key q in
  (match S.submit_query srv q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first ask: %s" (Pr.error_message e));
  Alcotest.(check int) "family built once" 1 (counter "serve/table_builds");
  wait_for "the snapshot to land on disk" (fun () ->
      Sys.file_exists (Sn.entry_path snapshot ~key));
  Alcotest.(check int) "save counted" 1 (counter "serve_snapshot/saves");
  S.shutdown srv;
  S.join srv;
  (* Restart: fresh server, fresh cache, same snapshot directory.  A
     different fraction of the same family must restore, not rebuild. *)
  Ir_obs.reset ();
  let snapshot2 = ok_exn "snapshot2" (Sn.create ~dir) in
  let cache2 = ok_exn "cache2" (C.create ~capacity:16 ()) in
  let srv2 = S.create ~workers:1 ~snapshot:snapshot2 ~cache:cache2 () in
  let q2 = fp_at 0.55 in
  (match S.submit_query srv2 q2 with
  | Ok (payload, _) ->
      Alcotest.(check string) "restored answer = cold"
        (Pr.result_payload (F.compute_cold q2))
        payload
  | Error e -> Alcotest.failf "warm-restart ask: %s" (Pr.error_message e));
  Alcotest.(check int) "tables restored, not rebuilt" 1
    (counter "serve/table_restores");
  Alcotest.(check int) "no rebuild" 0 (counter "serve/table_builds");
  S.shutdown srv2;
  S.join srv2

(* A corrupted snapshot is discarded (and counted), never deserialized:
   the server falls back to a cold build and still answers correctly. *)
let test_snapshot_corrupt_fallback () =
  Ir_obs.reset ();
  let dir = temp_path "snapcorrupt" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let snapshot = ok_exn "snapshot" (Sn.create ~dir) in
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv = S.create ~workers:1 ~snapshot ~cache () in
  let q = fp_at 0.3 in
  let key = F.table_key q in
  (match S.submit_query srv q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed ask: %s" (Pr.error_message e));
  wait_for "the snapshot to land on disk" (fun () ->
      Sys.file_exists (Sn.entry_path snapshot ~key));
  S.shutdown srv;
  S.join srv;
  (* Truncate the snapshot mid-blob. *)
  let path = Sn.entry_path snapshot ~key in
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub bytes 0 (String.length bytes / 2)));
  Ir_obs.reset ();
  let snapshot2 = ok_exn "snapshot2" (Sn.create ~dir) in
  let cache2 = ok_exn "cache2" (C.create ~capacity:16 ()) in
  let srv2 = S.create ~workers:1 ~snapshot:snapshot2 ~cache:cache2 () in
  (match S.submit_query srv2 q with
  | Ok (payload, _) ->
      Alcotest.(check string) "fallback answer = cold"
        (Pr.result_payload (F.compute_cold q))
        payload
  | Error e -> Alcotest.failf "post-corruption ask: %s" (Pr.error_message e));
  Alcotest.(check bool) "corruption counted" true
    (counter "serve_snapshot/corrupt" >= 1);
  Alcotest.(check int) "rebuilt cold" 1 (counter "serve/table_builds");
  (* The corrupt file was discarded, then the rebuild re-saved a fresh
     valid snapshot over it. *)
  Alcotest.(check int) "fresh snapshot re-saved" 1
    (counter "serve_snapshot/saves");
  S.shutdown srv2;
  S.join srv2

(* A snapshot republished under a different family's key, or with bits
   flipped anywhere in it, is rejected before any unmarshaling — load
   returns [None], counts the corruption and discards the file, never
   crashes.  Fuzz companion to the decode_tables fuzz in test_core. *)
let test_snapshot_hostile_payloads () =
  Ir_obs.reset ();
  let dir = temp_path "snaphostile" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let snapshot = ok_exn "snapshot" (Sn.create ~dir) in
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv = S.create ~workers:1 ~snapshot ~cache () in
  let q = fp_at 0.3 in
  let key = F.table_key q in
  (match S.submit_query srv q with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed ask: %s" (Pr.error_message e));
  wait_for "the snapshot to land on disk" (fun () ->
      Sys.file_exists (Sn.entry_path snapshot ~key));
  S.shutdown srv;
  S.join srv;
  let path = Sn.entry_path snapshot ~key in
  let pristine = In_channel.with_open_bin path In_channel.input_all in
  let full fp =
    Ir_assign.Problem.with_repeater_fraction (F.problem fp) 1.0
  in
  (* Sanity: the pristine file restores. *)
  (match Sn.load snapshot ~key ~problem:(full q) with
  | Some _ -> ()
  | None -> Alcotest.fail "pristine snapshot did not restore");
  (* Wrong key: the same bytes republished under a neighboring family's
     key are rejected by the header's recorded key — a snapshot cannot
     be aliased onto a different problem. *)
  let q_wrong =
    ok_exn "neighbor"
      (F.v ~k:2.7 ~repeater_fraction:0.3 ~bunch_size:500 ~node:"130nm"
         ~gates:20_000 ())
  in
  let wrong_key = F.table_key q_wrong in
  let wrong_path = Sn.entry_path snapshot ~key:wrong_key in
  Out_channel.with_open_bin wrong_path (fun oc ->
      Out_channel.output_string oc pristine);
  let corrupt_before = counter "serve_snapshot/corrupt" in
  (match Sn.load snapshot ~key:wrong_key ~problem:(full q_wrong) with
  | None -> ()
  | Some _ -> Alcotest.fail "wrong-key snapshot accepted");
  Alcotest.(check int) "wrong key counted corrupt" (corrupt_before + 1)
    (counter "serve_snapshot/corrupt");
  Alcotest.(check bool) "wrong-key file discarded" false
    (Sys.file_exists wrong_path);
  (* Bit flips, from the header through the deep blob: every one is
     caught by the tag / key / length / MD5 ladder before Marshal sees a
     byte. *)
  let len = String.length pristine in
  List.iter
    (fun offset ->
      let corrupted = Bytes.of_string pristine in
      Bytes.set corrupted offset
        (Char.chr (Char.code (Bytes.get corrupted offset) lxor 0x20));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc corrupted);
      match Sn.load snapshot ~key ~problem:(full q) with
      | None -> ()
      | Some _ -> Alcotest.failf "bit flip at %d accepted" offset)
    [ 3; 40; len / 2; (3 * len / 4) + 1; len - 1 ];
  (* Truncations at every scale, including an empty file. *)
  List.iter
    (fun keep ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub pristine 0 keep));
      match Sn.load snapshot ~key ~problem:(full q) with
      | None -> ()
      | Some _ -> Alcotest.failf "truncation to %d bytes accepted" keep)
    [ 0; 1; 10; len / 3; len - 1 ];
  (* End to end: a server facing the wrong-key file rebuilds cold and
     still answers byte-identically. *)
  Out_channel.with_open_bin wrong_path (fun oc ->
      Out_channel.output_string oc pristine);
  Ir_obs.reset ();
  let snapshot2 = ok_exn "snapshot2" (Sn.create ~dir) in
  let cache2 = ok_exn "cache2" (C.create ~capacity:16 ()) in
  let srv2 = S.create ~workers:1 ~snapshot:snapshot2 ~cache:cache2 () in
  (match S.submit_query srv2 q_wrong with
  | Ok (payload, _) ->
      Alcotest.(check string) "post-rejection answer = cold"
        (Pr.result_payload (F.compute_cold q_wrong))
        payload
  | Error e -> Alcotest.failf "post-rejection ask: %s" (Pr.error_message e));
  Alcotest.(check bool) "server counted the corruption" true
    (counter "serve_snapshot/corrupt" >= 1);
  Alcotest.(check int) "server rebuilt cold" 1 (counter "serve/table_builds");
  S.shutdown srv2;
  S.join srv2

(* ---- resident grid pool ----------------------------------------------- *)

(* Neighboring queries of one family are answered from a single resident
   grid: a new (k, clock) plane grows the warm grid (serve/grid_hits)
   instead of starting a fresh pool entry cold, fraction variants rebind
   a resident plane's budget (serve/table_hits), and every served
   payload stays byte-identical to a cold computation. *)
let test_grid_neighbor_warm () =
  Ir_obs.reset ();
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv = S.create ~workers:1 ~cache () in
  let fp ?k ?clock f =
    ok_exn "fp"
      (F.v ?k ?clock ~repeater_fraction:f ~bunch_size:500 ~node:"130nm"
         ~gates:20_000 ())
  in
  let ask what q =
    match S.submit_query srv q with
    | Ok (payload, _) ->
        Alcotest.(check string) (what ^ " = cold")
          (Pr.result_payload (F.compute_cold q))
          payload
    | Error e -> Alcotest.failf "%s: %s" what (Pr.error_message e)
  in
  ask "base plane" (fp 0.3);
  Alcotest.(check int) "base plane built" 1 (counter "serve/table_builds");
  Alcotest.(check int) "no grid hit yet" 0 (counter "serve/grid_hits");
  ask "low-k neighbor" (fp ~k:2.7 0.3);
  Alcotest.(check int) "k plane grew the resident grid" 1
    (counter "serve/grid_hits");
  Alcotest.(check int) "k plane built" 2 (counter "serve/table_builds");
  ask "clock neighbor" (fp ~clock:1.0e9 0.3);
  Alcotest.(check int) "clock plane grew the grid" 2
    (counter "serve/grid_hits");
  Alcotest.(check int) "clock plane built" 3 (counter "serve/table_builds");
  let hits = counter "serve/table_hits" in
  ask "fraction rebind on the base plane" (fp 0.25);
  ask "fraction rebind on the k plane" (fp ~k:2.7 0.6);
  Alcotest.(check int) "fraction variants hit resident planes" (hits + 2)
    (counter "serve/table_hits");
  Alcotest.(check int) "no further builds" 3 (counter "serve/table_builds");
  Alcotest.(check int) "nothing fell to the cold path" 0
    (counter "serve/cold_computes");
  S.shutdown srv;
  S.join srv

(* ---- sharded fleet over TCP ------------------------------------------- *)

module Sh = Ir_serve.Shard

let ia_rank_exe () =
  let abs p =
    if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
  in
  let candidate =
    match Sys.getenv_opt "IA_RANK_EXE" with
    | Some p when p <> "" -> abs p
    | _ ->
        (* test_serve.exe lives in _build/default/test/; the CLI binary
           is a declared test dep at _build/default/bin/ia_rank.exe. *)
        Filename.concat
          (Filename.dirname (Filename.dirname (abs Sys.executable_name)))
          (Filename.concat "bin" "ia_rank.exe")
  in
  if Sys.file_exists candidate then candidate
  else Alcotest.failf "ia_rank binary not found at %s" candidate

(* The acceptance bar for sharding: a mixed corpus asked through the
   TCP router of a forked 2-shard fleet answers byte-identically to
   local cold computes, and no warm-table family is built by more than
   one shard. *)
let test_sharded_tcp_byte_identity () =
  Ir_obs.reset ();
  let dir = temp_path "fleet" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let fleet =
    ok_exn "fleet"
      (Sh.start ~workers:1 ~exe:(ia_rank_exe ()) ~shards:2 ~dir ())
  in
  let port_set = Atomic.make 0 in
  let serve_thread =
    Thread.create
      (fun () ->
        ok_exn "shard serve"
          (Sh.serve fleet
             ~tcp:("127.0.0.1", 0)
             ~on_tcp_listen:(fun p -> Atomic.set port_set p)
             ()))
      ()
  in
  wait_for "the router to listen" (fun () -> Atomic.get port_set <> 0);
  let port = Atomic.get port_set in
  let corpus =
    [
      Pr.query ~bunch_size:500 ~repeater_fraction:0.3 ~node:"130nm"
        ~gates:20_000 ();
      Pr.query ~bunch_size:500 ~repeater_fraction:0.5 ~node:"130nm"
        ~gates:20_000 ();
      Pr.query ~bunch_size:500 ~repeater_fraction:0.3 ~node:"90nm"
        ~gates:20_000 ();
      Pr.query ~bunch_size:500 ~repeater_fraction:0.5 ~node:"90nm"
        ~gates:20_000 ();
      Pr.query ~bunch_size:500 ~greedy:true ~node:"130nm" ~gates:20_000 ();
    ]
  in
  let client = ok_exn "tcp connect" (Cl.connect_tcp ~host:"127.0.0.1" ~port) in
  List.iteri
    (fun i q ->
      let fp = ok_exn "fp" (Pr.fingerprint_of_query q) in
      match Cl.query client q with
      | Ok (_, _, payload) ->
          Alcotest.(check string)
            (Printf.sprintf "corpus %d: sharded = cold" i)
            (Pr.result_payload (F.compute_cold fp))
            payload
      | Error e -> Alcotest.failf "corpus %d: %s" i e)
    corpus;
  (* Family affinity: two DP families in the corpus, and across the
     whole fleet each was built exactly once. *)
  let builds =
    Array.fold_left
      (fun acc socket ->
        let c = ok_exn "shard stats" (Cl.connect ~socket) in
        let kvs = ok_exn "stats" (Cl.stats c) in
        Cl.close c;
        acc
        + Option.value ~default:0 (List.assoc_opt "serve/table_builds" kvs))
      0 (Sh.shard_sockets fleet)
  in
  Alcotest.(check int) "each family built exactly once fleet-wide" 2 builds;
  (* The router's aggregated stats cover the same counters. *)
  let agg =
    let kvs = ok_exn "agg stats" (Cl.stats client) in
    Option.value ~default:0 (List.assoc_opt "serve/table_builds" kvs)
  in
  Alcotest.(check int) "aggregated stats sum the fleet" 2 agg;
  Cl.close client;
  Sh.shutdown fleet;
  Thread.join serve_thread

(* Crash recovery: SIGKILL the shard that owns a family mid-session and
   the router must reap it, respawn a replacement onto the same socket
   (counted in serve_shard/restarts), and answer the re-ask
   byte-identically to a cold compute. *)
let test_shard_supervisor_restart () =
  Ir_obs.reset ();
  let dir = temp_path "fleet-restart" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let fleet =
    ok_exn "fleet"
      (Sh.start ~workers:1 ~exe:(ia_rank_exe ()) ~shards:2 ~dir ())
  in
  Fun.protect ~finally:(fun () -> Sh.stop fleet) @@ fun () ->
  let q =
    Pr.query ~bunch_size:500 ~repeater_fraction:0.3 ~node:"130nm"
      ~gates:20_000 ()
  in
  let fp = ok_exn "fp" (Pr.fingerprint_of_query q) in
  let cold = Pr.result_payload (F.compute_cold fp) in
  let ask what =
    let line = Pr.encode_request { Pr.id = what; op = Pr.Query q } in
    match Pr.decode_response (Sh.handle_line fleet line) with
    | Ok { Pr.body = Pr.Result { payload; _ }; _ } -> Ok payload
    | Ok { Pr.body = Pr.Error e; _ } -> Error (Pr.error_message e)
    | Ok _ -> Error "non-result response"
    | Error e -> Error e
  in
  (match ask "before" with
  | Ok payload -> Alcotest.(check string) "warm ask = cold" cold payload
  | Error e -> Alcotest.failf "before kill: %s" e);
  let victim = Sh.route_key fleet (F.family_key fp) in
  let pids = Sh.shard_pids fleet in
  Unix.kill pids.(victim) Sys.sigkill;
  (* SIGKILL death is quick but not instantaneous — the supervisor's
     waitpid WNOHANG is only proof of death once the process has
     actually exited, so give the retry a few rounds. *)
  let rec ask_until n =
    match ask "after" with
    | Ok payload -> payload
    | Error e when n = 0 -> Alcotest.failf "after kill: %s" e
    | Error _ ->
        Thread.delay 0.1;
        ask_until (n - 1)
  in
  Alcotest.(check string) "post-kill ask = cold" cold (ask_until 50);
  Alcotest.(check bool) "supervisor counted the restart" true
    (counter "serve_shard/restarts" >= 1);
  let pids' = Sh.shard_pids fleet in
  Alcotest.(check bool) "replacement has a fresh pid" true
    (pids'.(victim) <> pids.(victim))

let () =
  Alcotest.run "serve"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "deterministic" `Quick test_fp_deterministic;
          Alcotest.test_case "node spellings" `Quick test_fp_node_spellings;
          Alcotest.test_case "defaults explicit" `Quick
            test_fp_defaults_explicit;
          Alcotest.test_case "parameter sensitivity" `Quick
            test_fp_param_sensitivity;
          Alcotest.test_case "inline wld canonical" `Quick
            test_fp_inline_wld_canonical;
          Alcotest.test_case "table key masks" `Quick test_fp_table_key_masks;
          Alcotest.test_case "family key masks" `Quick
            test_fp_family_key_masks;
          Alcotest.test_case "validation" `Quick test_fp_validation;
          Alcotest.test_case "power fields" `Quick test_fp_power_fields;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "hardening" `Quick test_json_hardening;
        ] );
      ( "protocol",
        [
          prop_request_roundtrip;
          prop_response_roundtrip;
          Alcotest.test_case "power compatibility" `Quick
            test_protocol_power_compat;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
        ] );
      ( "cache",
        [
          prop_lru_model;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "disk persistence" `Quick test_disk_persistence;
          Alcotest.test_case "disk corruption rejected" `Quick
            test_disk_corruption_rejected;
          Alcotest.test_case "disk digest mismatch" `Quick
            test_disk_digest_mismatch;
        ] );
      ( "server",
        [
          Alcotest.test_case "differential cached = cold" `Quick
            test_differential_cached_equals_cold;
          Alcotest.test_case "e2e coalescing + restart" `Quick
            test_e2e_coalescing_and_restart;
          Alcotest.test_case "shed and drain" `Quick test_e2e_shed;
          Alcotest.test_case "timeout" `Quick test_e2e_timeout;
        ] );
      ( "hostile clients",
        [
          Alcotest.test_case "disconnect mid-response" `Quick
            test_e2e_disconnect_mid_response;
          Alcotest.test_case "fd churn storm" `Quick test_e2e_fd_churn_storm;
          Alcotest.test_case "overlong line" `Quick test_e2e_overlong_line;
        ] );
      ( "cache hardening",
        [
          Alcotest.test_case "write failure keeps serving" `Quick
            test_cache_write_failure_keeps_serving;
          Alcotest.test_case "tmp sweep" `Quick test_cache_tmp_sweep;
          Alcotest.test_case "multi-process hammer" `Quick
            test_cache_multiprocess_hammer;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "warm restart" `Quick test_snapshot_warm_restart;
          Alcotest.test_case "corrupt fallback" `Quick
            test_snapshot_corrupt_fallback;
          Alcotest.test_case "hostile payloads" `Quick
            test_snapshot_hostile_payloads;
        ] );
      ( "resident grid",
        [
          Alcotest.test_case "neighbor queries answered warm" `Quick
            test_grid_neighbor_warm;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "tcp byte identity" `Quick
            test_sharded_tcp_byte_identity;
          Alcotest.test_case "supervisor restart" `Quick
            test_shard_supervisor_restart;
        ] );
    ]
