(* The serving layer: fingerprint canonicalization, JSON hardening,
   protocol round-trips, the two-tier cache (LRU model check, disk
   corruption handling), and end-to-end server behaviour over a real
   Unix socket — coalescing, restart persistence, shedding, timeouts,
   and the differential guarantee that every served payload is
   byte-identical to a cold computation. *)

open Helpers
module F = Ir_serve.Fingerprint
module J = Ir_serve.Json
module Pr = Ir_serve.Protocol
module C = Ir_serve.Cache
module S = Ir_serve.Server
module Cl = Ir_serve.Client

let ok_exn what = function
  | Ok x -> x
  | Error e -> Alcotest.failf "%s: %s" what e

let counter name =
  Option.value ~default:0 (Ir_obs.find_counter (Ir_obs.snapshot ()) name)

(* Bounded busy-wait for cross-thread conditions in the e2e tests. *)
let wait_for ?(timeout = 10.0) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let small_query ?repeater_fraction ?algo ?wld () =
  ok_exn "small query"
    (F.v ?repeater_fraction ?algo ?wld ~bunch_size:500 ~node:"130nm"
       ~gates:20_000 ())

(* ---- fingerprint ------------------------------------------------------ *)

let test_fp_deterministic () =
  let a = small_query () and b = small_query () in
  Alcotest.(check string) "same digest" (F.digest a) (F.digest b);
  Alcotest.(check bool) "version-tagged canonical form" true
    (String.length (F.canonical a) > 22
    && String.sub (F.canonical a) 0 22 = "ia-rank/fingerprint/1\n")

let test_fp_node_spellings () =
  let d spelling =
    F.digest (ok_exn "query" (F.v ~node:spelling ~gates:1000 ()))
  in
  Alcotest.(check string) "130nm = 130" (d "130nm") (d "130");
  Alcotest.(check string) "130nm = n130" (d "130nm") (d "n130");
  Alcotest.(check bool) "130nm <> 90nm" true (d "130nm" <> d "90nm")

let test_fp_defaults_explicit () =
  let omitted = ok_exn "omitted" (F.v ~node:"130nm" ~gates:1000 ()) in
  let explicit =
    ok_exn "explicit"
      (F.v ~rent_p:0.6 ~fan_out:3.0 ~clock:0.5e9 ~repeater_fraction:0.4
         ~k:3.9 ~miller:2.0 ~bunch_size:10_000 ~algo:F.Dp ~node:"130nm"
         ~gates:1000 ())
  in
  Alcotest.(check string) "defaults fingerprint identically"
    (F.digest omitted) (F.digest explicit)

let test_fp_param_sensitivity () =
  let base = ok_exn "base" (F.v ~node:"130nm" ~gates:1000 ()) in
  let variants =
    [
      ("gates", F.v ~node:"130nm" ~gates:1001 ());
      ("clock", F.v ~clock:0.6e9 ~node:"130nm" ~gates:1000 ());
      ("k", F.v ~k:2.7 ~node:"130nm" ~gates:1000 ());
      ("fraction", F.v ~repeater_fraction:0.5 ~node:"130nm" ~gates:1000 ());
      ("algo", F.v ~algo:F.Greedy ~node:"130nm" ~gates:1000 ());
    ]
  in
  List.iter
    (fun (what, q) ->
      Alcotest.(check bool)
        (what ^ " changes the digest")
        true
        (F.digest (ok_exn what q) <> F.digest base))
    variants

let test_fp_inline_wld_canonical () =
  (* The same distribution listed in a different bin order fingerprints
     identically: the digest covers the canonical (merged, ascending)
     rendering, not the upload bytes. *)
  let wld text = ok_exn "wld" (Ir_wld.Io.of_string text) in
  let a = wld "1,2\n3.5,4\n" and b = wld "3.5,4\n1,2\n" in
  let q w = ok_exn "query" (F.v ~wld:w ~node:"130nm" ~gates:1000 ()) in
  Alcotest.(check string) "order-independent" (F.digest (q a))
    (F.digest (q b));
  Alcotest.(check bool) "inline wld differs from davis" true
    (F.digest (q a)
    <> F.digest (ok_exn "davis" (F.v ~node:"130nm" ~gates:1000 ())))

let test_fp_table_key_masks () =
  let q f algo =
    ok_exn "query" (F.v ~repeater_fraction:f ~algo ~node:"130nm" ~gates:1000 ())
  in
  Alcotest.(check string) "fraction masked"
    (F.table_key (q 0.2 F.Dp))
    (F.table_key (q 0.8 F.Dp));
  Alcotest.(check string) "algo masked"
    (F.table_key (q 0.4 F.Dp))
    (F.table_key (q 0.4 F.Greedy));
  Alcotest.(check bool) "digest itself not masked" true
    (F.digest (q 0.2 F.Dp) <> F.digest (q 0.8 F.Dp));
  let other = ok_exn "90nm" (F.v ~node:"90nm" ~gates:1000 ()) in
  Alcotest.(check bool) "node not masked" true
    (F.table_key (q 0.4 F.Dp) <> F.table_key other)

let test_fp_validation () =
  (match F.v ~node:"bogus" ~gates:1000 () with
  | Error e ->
      Alcotest.(check bool) "names the node" true
        (Astring_contains.contains e "bogus")
  | Ok _ -> Alcotest.fail "bogus node accepted");
  (match F.v ~bunch_size:0 ~node:"130nm" ~gates:1000 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bunch_size 0 accepted");
  match F.v ~repeater_fraction:1.5 ~node:"130nm" ~gates:1000 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "repeater fraction 1.5 accepted"

(* ---- JSON ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("i", J.Int (-42));
        ("f", J.Float 0.1);
        ("t", J.Bool true);
        ("n", J.Null);
        ("a", J.Arr [ J.Int 1; J.Str "x"; J.Obj [] ]);
      ]
  in
  let s = J.to_string v in
  let v2 = ok_exn "parse" (J.of_string s) in
  Alcotest.(check string) "print-parse-print fixpoint" s (J.to_string v2)

let test_json_hardening () =
  let rejected what s =
    match J.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted: %s" what s
  in
  rejected "trailing garbage" "{} x";
  rejected "raw control char" "\"a\x01b\"";
  rejected "bare word" "nul";
  rejected "unterminated string" "\"abc";
  rejected "lone surrogate" "\"\\ud800\"";
  rejected "infinite number" "1e999999";
  rejected "deep nesting"
    (String.concat "" (List.init 100 (fun _ -> "[")) );
  (* an integral float is still an int to readers *)
  Alcotest.(check (option int)) "3.0 readable as int" (Some 3)
    (J.to_int (ok_exn "3.0" (J.of_string "3.0")));
  match J.to_string (J.Float Float.nan) with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "NaN printed as %s" s

(* ---- protocol --------------------------------------------------------- *)

let gen_query =
  let open QCheck2.Gen in
  let id_string = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let opt_f lo hi = option (float_range lo hi) in
  let* node = oneofl [ "130nm"; "90nm"; "weird node \"x\"" ] in
  let* gates = int_range 1 10_000_000 in
  let* rent_p = opt_f 0.1 0.9 in
  let* fan_out = opt_f 1.0 5.0 in
  let* clock = opt_f 1e8 5e9 in
  let* repeater_fraction = opt_f 0.0 1.0 in
  let* k = opt_f 1.0 5.0 in
  let* miller = opt_f 1.0 3.0 in
  let* bunch_size = option (int_range 1 100_000) in
  let* structure =
    option (triple (int_range 0 4) (int_range 0 4) (int_range 0 4))
  in
  let* greedy = bool in
  let* wld_csv =
    option (map (fun s -> s ^ "\n1,2") id_string)
  in
  let* id = id_string in
  return
    ( id,
      Pr.query ?rent_p ?fan_out ?clock ?repeater_fraction ?k ?miller
        ?bunch_size ?structure ~greedy ?wld_csv ~node ~gates () )

let prop_request_roundtrip =
  qtest ~count:200 "request encode/decode/encode is the identity" gen_query
    (fun (id, q) ->
      let line = Pr.encode_request { Pr.id; op = Pr.Query q } in
      match Pr.decode_request line with
      | Error _ -> false
      | Ok req -> Pr.encode_request req = line)

let gen_body =
  let open QCheck2.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 10) in
  let outcome =
    let* total = int_range 1 1_000_000 in
    let* assignable = bool in
    let* rank = if assignable then int_range 0 total else return 0 in
    let* boundary = if assignable then int_range 0 1000 else return 0 in
    let* exact = bool in
    return
      (Ir_core.Outcome.v ~exact ~rank_wires:rank ~total_wires:total
         ~assignable ~boundary_bunch:boundary ())
  in
  oneof
    [
      return Pr.Pong;
      (let* kvs = list_size (int_range 0 5) (pair name (int_range 0 1000)) in
       return (Pr.Stats_reply kvs));
      (let* o = outcome in
       let* source = oneofl [ "cold"; "memory"; "disk" ] in
       return (Pr.Result { source; payload = Pr.result_payload o }));
      (let* e =
         oneof
           [
             map (fun m -> Pr.Bad_request m) name; return Pr.Overloaded;
             return Pr.Timeout; return Pr.Shutting_down;
             map (fun m -> Pr.Internal m) name;
           ]
       in
       return (Pr.Error e));
    ]

let prop_response_roundtrip =
  qtest ~count:200 "response encode/decode/encode is the identity"
    QCheck2.Gen.(
      pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) gen_body)
    (fun (id, body) ->
      let line = Pr.encode_response { Pr.id; body } in
      match Pr.decode_response line with
      | Error _ -> false
      | Ok resp -> Pr.encode_response resp = line)

let test_protocol_errors () =
  let bad line =
    match Pr.decode_request line with
    | Error (Pr.Bad_request _) -> ()
    | Error _ -> Alcotest.failf "non-bad-request error for %s" line
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  bad "not json";
  bad "{}";
  bad "{\"v\":99,\"id\":\"a\",\"op\":\"ping\"}";
  bad "{\"v\":1,\"id\":\"a\",\"op\":\"frobnicate\"}";
  bad "{\"v\":1,\"id\":\"a\",\"op\":\"query\"}";
  bad "{\"v\":1,\"id\":\"a\",\"op\":\"query\",\"query\":{\"node\":\"130nm\"}}";
  Alcotest.(check bool) "overloaded retryable" true (Pr.retryable Pr.Overloaded);
  Alcotest.(check bool) "timeout not retryable" false (Pr.retryable Pr.Timeout)

(* ---- cache: LRU model check ------------------------------------------- *)

(* Reference model: MRU-first key list, no payloads.  [mem_keys_lru_first]
   must equal its reverse after any op sequence, and membership must
   agree with [find]. *)
let prop_lru_model =
  qtest ~count:300 "memory tier behaves as textbook LRU"
    QCheck2.Gen.(
      pair (int_range 1 6)
        (list_size (int_range 0 60) (pair (int_range 0 9) bool)))
    (fun (capacity, ops) ->
      let cache = Result.get_ok (C.create ~capacity ()) in
      let key k = Digest.to_hex (Digest.string (string_of_int k)) in
      let model = ref [] in
      let model_touch k =
        model := k :: List.filter (fun x -> x <> k) !model
      in
      List.for_all
        (fun (k, is_store) ->
          if is_store then begin
            C.store cache ~digest:(key k) (string_of_int k);
            model_touch k;
            (model :=
               List.filteri (fun i _ -> i < capacity) !model);
            true
          end
          else
            let hit = C.find cache ~digest:(key k) in
            let in_model = List.mem k !model in
            (match hit with
            | Some (payload, C.Memory) ->
                model_touch k;
                payload = string_of_int k
            | Some (_, C.Disk) -> false
            | None -> true)
            && Option.is_some hit = in_model)
        ops
      && C.mem_count cache = List.length !model
      && C.mem_keys_lru_first cache = List.rev_map key !model)

let test_lru_eviction_order () =
  let cache = ok_exn "cache" (C.create ~capacity:2 ()) in
  let k i = Digest.to_hex (Digest.string (string_of_int i)) in
  C.store cache ~digest:(k 1) "one";
  C.store cache ~digest:(k 2) "two";
  (* touch 1 so 2 becomes the eviction victim *)
  ignore (C.find cache ~digest:(k 1));
  C.store cache ~digest:(k 3) "three";
  Alcotest.(check bool) "2 evicted" true (C.find cache ~digest:(k 2) = None);
  Alcotest.(check bool) "1 kept" true (C.find cache ~digest:(k 1) <> None);
  Alcotest.(check int) "bounded" 2 (C.mem_count cache)

(* ---- cache: disk tier ------------------------------------------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ia_serve_test_%d_%d" (Unix.getpid ())
         (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let digest_of s = Digest.to_hex (Digest.string s)

let test_disk_persistence () =
  with_temp_dir @@ fun dir ->
  let d = digest_of "q1" in
  let c1 = ok_exn "cache1" (C.create ~dir ()) in
  C.store c1 ~digest:d "payload-bytes";
  (* a fresh cache over the same directory — the restart case *)
  let c2 = ok_exn "cache2" (C.create ~dir ()) in
  (match C.find c2 ~digest:d with
  | Some ("payload-bytes", C.Disk) -> ()
  | Some (p, C.Memory) -> Alcotest.failf "unexpected memory hit %s" p
  | Some _ -> Alcotest.fail "wrong payload from disk"
  | None -> Alcotest.fail "disk entry not found");
  (* promoted: second lookup is a memory hit *)
  match C.find c2 ~digest:d with
  | Some (_, C.Memory) -> ()
  | _ -> Alcotest.fail "disk hit was not promoted to memory"

let test_disk_corruption_rejected () =
  with_temp_dir @@ fun dir ->
  let cases =
    [
      ("garbage", fun _ -> "total garbage");
      ("truncated", fun s -> String.sub s 0 (String.length s / 2));
      ( "payload flipped",
        fun s ->
          String.map (fun c -> if c = 'p' then 'q' else c) s );
      ("empty", fun _ -> "");
    ]
  in
  List.iteri
    (fun i (what, corrupt) ->
      let d = digest_of (Printf.sprintf "q%d" i) in
      let c1 = ok_exn "cache" (C.create ~dir ()) in
      C.store c1 ~digest:d "payload";
      let path = C.entry_path ~dir ~digest:d in
      let original =
        In_channel.with_open_bin path In_channel.input_all
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (corrupt original));
      let before = counter "serve_cache/disk_corrupt" in
      let fresh = ok_exn "fresh" (C.create ~dir ()) in
      (match C.find fresh ~digest:d with
      | None -> ()
      | Some _ -> Alcotest.failf "%s entry accepted" what);
      Alcotest.(check bool) (what ^ " counted") true
        (counter "serve_cache/disk_corrupt" = before + 1);
      Alcotest.(check bool) (what ^ " deleted") false (Sys.file_exists path))
    cases

let test_disk_digest_mismatch () =
  with_temp_dir @@ fun dir ->
  let d1 = digest_of "a" and d2 = digest_of "b" in
  let c = ok_exn "cache" (C.create ~dir ()) in
  C.store c ~digest:d1 "payload-a";
  (* a confused sync tool renames the valid entry under another digest:
     internally consistent, but it answers the wrong question *)
  Sys.rename (C.entry_path ~dir ~digest:d1) (C.entry_path ~dir ~digest:d2);
  let fresh = ok_exn "fresh" (C.create ~dir ()) in
  (match C.find fresh ~digest:d2 with
  | None -> ()
  | Some _ -> Alcotest.fail "entry accepted under the wrong digest");
  Alcotest.(check bool) "rejected entry deleted" false
    (Sys.file_exists (C.entry_path ~dir ~digest:d2))

(* ---- server: differential cached = cold ------------------------------- *)

let test_differential_cached_equals_cold () =
  Ir_obs.reset ();
  let cache = ok_exn "cache" (C.create ~capacity:64 ()) in
  let srv = S.create ~workers:2 ~cache () in
  let corpus =
    [
      F.v ~bunch_size:500 ~node:"130nm" ~gates:20_000 ();
      F.v ~bunch_size:500 ~repeater_fraction:0.2 ~node:"130nm"
        ~gates:20_000 ();
      F.v ~bunch_size:500 ~repeater_fraction:0.7 ~node:"130nm"
        ~gates:20_000 ();
      F.v ~bunch_size:500 ~node:"90nm" ~gates:20_000 ();
      F.v ~bunch_size:500 ~algo:F.Greedy ~node:"130nm" ~gates:20_000 ();
      F.v ~bunch_size:400 ~clock:2.0e9 ~node:"130nm" ~gates:30_000 ();
      F.v ~bunch_size:400 ~k:2.7 ~miller:1.5 ~node:"90nm" ~gates:30_000 ();
      (let wld = Result.get_ok (Ir_wld.Io.of_string "1,500\n4,200\n9,60\n") in
       F.v ~wld ~bunch_size:100 ~node:"130nm" ~gates:5_000 ());
    ]
  in
  List.iteri
    (fun i q ->
      let q = ok_exn (Printf.sprintf "corpus %d" i) q in
      let cold = Pr.result_payload (F.compute_cold q) in
      let served =
        match S.submit_query srv q with
        | Ok (payload, _) -> payload
        | Error e -> Alcotest.failf "corpus %d: %s" i (Pr.error_message e)
      in
      Alcotest.(check string)
        (Printf.sprintf "corpus %d: served = cold" i)
        cold served;
      (* and again, now through the cache *)
      match S.submit_query srv q with
      | Ok (payload, source) ->
          Alcotest.(check string)
            (Printf.sprintf "corpus %d: cache hit identical" i)
            cold payload;
          Alcotest.(check string)
            (Printf.sprintf "corpus %d: second ask from memory" i)
            "memory" source
      | Error e -> Alcotest.failf "corpus %d: %s" i (Pr.error_message e))
    corpus;
  (* the repeater-fraction family shares one warm table build *)
  Alcotest.(check bool) "warm tables reused" true
    (counter "serve/table_hits" >= 2);
  S.shutdown srv;
  S.join srv

(* ---- server: e2e over a unix socket ----------------------------------- *)

let temp_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ia_serve_%d_%d.sock" (Unix.getpid ())
       (int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF))

let start_server srv socket =
  let th =
    Thread.create (fun () -> ok_exn "serve_unix" (S.serve_unix srv ~socket)) ()
  in
  wait_for "socket to appear" (fun () -> Sys.file_exists socket);
  th

let test_e2e_coalescing_and_restart () =
  Ir_obs.reset ();
  with_temp_dir @@ fun dir ->
  let socket = temp_socket () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  let cache = ok_exn "cache" (C.create ~capacity:16 ~dir ()) in
  let srv =
    S.create ~workers:2 ~cache
      ~on_compute_start:(fun _ ->
        Atomic.set started true;
        (* hold the computation until the test saw all waiters attach *)
        while not (Atomic.get release) do
          Thread.delay 0.002
        done)
      ()
  in
  let server_thread = start_server srv socket in
  let q = Pr.query ~bunch_size:500 ~node:"130nm" ~gates:20_000 () in
  let fp = ok_exn "fp" (Pr.fingerprint_of_query q) in
  let digest = F.digest fp in
  (* 4 concurrent clients, byte-identical request lines *)
  let line = Pr.encode_request { Pr.id = "x"; op = Pr.Query q } in
  let responses = Array.make 4 "" in
  let clients =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket);
            let oc = Unix.out_channel_of_descr fd in
            let ic = Unix.in_channel_of_descr fd in
            output_string oc (line ^ "\n");
            flush oc;
            (match In_channel.input_line ic with
            | Some resp -> responses.(i) <- resp
            | None -> ());
            Unix.close fd)
          ())
  in
  wait_for "compute to start" (fun () -> Atomic.get started);
  wait_for "3 waiters to coalesce" (fun () ->
      S.pending_waiters srv ~digest = 3);
  Atomic.set release true;
  List.iter Thread.join clients;
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "client %d answered" i) true
        (String.length r > 0);
      Alcotest.(check string)
        (Printf.sprintf "client %d byte-identical" i)
        responses.(0) r)
    responses;
  Alcotest.(check int) "exactly one computation" 1 (counter "serve/computes");
  Alcotest.(check int) "three requests coalesced" 3
    (counter "serve/coalesced");
  S.shutdown srv;
  Thread.join server_thread;
  Alcotest.(check bool) "socket removed on drain" false
    (Sys.file_exists socket);
  (* restart over the same cache dir: the 5th ask hits the disk store *)
  let cache2 = ok_exn "cache2" (C.create ~capacity:16 ~dir ()) in
  let srv2 = S.create ~workers:1 ~cache:cache2 () in
  let server_thread2 = start_server srv2 socket in
  let client = ok_exn "connect" (Cl.connect ~socket) in
  (match Cl.query client q with
  | Ok (_, source, payload) ->
      let body =
        ok_exn "resp0" (Pr.decode_response responses.(0))
      in
      (match body.Pr.body with
      | Pr.Result r ->
          Alcotest.(check string) "restart payload identical" r.payload
            payload
      | _ -> Alcotest.fail "first response was not a result");
      Alcotest.(check string) "served from disk" "disk" source
  | Error e -> Alcotest.failf "restart query: %s" e);
  Cl.close client;
  S.shutdown srv2;
  Thread.join server_thread2

let fp_at f =
  ok_exn "fp"
    (F.v ~repeater_fraction:f ~bunch_size:500 ~node:"130nm" ~gates:20_000 ())

let test_e2e_shed () =
  Ir_obs.reset ();
  let release = Atomic.make false in
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv =
    S.create ~workers:1 ~queue_capacity:1 ~cache
      ~on_compute_start:(fun _ ->
        while not (Atomic.get release) do
          Thread.delay 0.002
        done)
      ()
  in
  (* A occupies the single worker (held by the hook); B and C then race
     for the one queue slot — whichever loses is shed with the retryable
     Overloaded error while the winner completes normally. *)
  let ra = ref (Error Pr.Overloaded)
  and rb = ref (Error Pr.Overloaded)
  and rc = ref (Error Pr.Overloaded) in
  let ta = Thread.create (fun () -> ra := S.submit_query srv (fp_at 0.3)) () in
  wait_for "A to occupy the worker" (fun () -> counter "serve/computes" = 1);
  let tb = Thread.create (fun () -> rb := S.submit_query srv (fp_at 0.4)) () in
  let tc = Thread.create (fun () -> rc := S.submit_query srv (fp_at 0.5)) () in
  wait_for "one of B/C to be shed" (fun () -> counter "serve/shed" = 1);
  Atomic.set release true;
  List.iter Thread.join [ ta; tb; tc ];
  (match !ra with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "A failed: %s" (Pr.error_message e));
  let shed, served =
    List.partition (fun r -> r = Error Pr.Overloaded) [ !rb; !rc ]
  in
  Alcotest.(check int) "exactly one shed" 1 (List.length shed);
  (match served with
  | [ Ok _ ] -> ()
  | [ Error e ] ->
      Alcotest.failf "queued request failed: %s" (Pr.error_message e)
  | _ -> Alcotest.fail "expected exactly one served request");
  Alcotest.(check bool) "overloaded is retryable" true
    (Pr.retryable Pr.Overloaded);
  (* draining refuses new queries *)
  S.shutdown srv;
  (match S.submit_query srv (fp_at 0.6) with
  | Error Pr.Shutting_down -> ()
  | Ok _ -> Alcotest.fail "query accepted while draining"
  | Error e ->
      Alcotest.failf "expected shutting down, got %s" (Pr.error_message e));
  S.join srv

let test_e2e_timeout () =
  Ir_obs.reset ();
  let release = Atomic.make false in
  let cache = ok_exn "cache" (C.create ~capacity:16 ()) in
  let srv =
    S.create ~workers:1 ~request_timeout:0.15 ~cache
      ~on_compute_start:(fun _ ->
        while not (Atomic.get release) do
          Thread.delay 0.002
        done)
      ()
  in
  (* The hook holds the computation past the 0.15 s deadline: the waiter
     is released with Timeout… *)
  (match S.submit_query srv (fp_at 0.3) with
  | Error Pr.Timeout -> ()
  | Ok _ -> Alcotest.fail "expected a timeout"
  | Error e -> Alcotest.failf "expected timeout, got %s" (Pr.error_message e));
  Alcotest.(check int) "timeout counted" 1 (counter "serve/timeouts");
  (* …but the computation itself still completes and publishes, so the
     next asker gets a memory hit. *)
  Atomic.set release true;
  wait_for "the abandoned result to be cached" (fun () ->
      C.find cache ~digest:(F.digest (fp_at 0.3)) <> None);
  (match S.submit_query srv (fp_at 0.3) with
  | Ok (_, "memory") -> ()
  | Ok (_, s) -> Alcotest.failf "expected memory hit, got %s" s
  | Error e -> Alcotest.failf "post-timeout ask: %s" (Pr.error_message e));
  S.shutdown srv;
  S.join srv

let () =
  Alcotest.run "serve"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "deterministic" `Quick test_fp_deterministic;
          Alcotest.test_case "node spellings" `Quick test_fp_node_spellings;
          Alcotest.test_case "defaults explicit" `Quick
            test_fp_defaults_explicit;
          Alcotest.test_case "parameter sensitivity" `Quick
            test_fp_param_sensitivity;
          Alcotest.test_case "inline wld canonical" `Quick
            test_fp_inline_wld_canonical;
          Alcotest.test_case "table key masks" `Quick test_fp_table_key_masks;
          Alcotest.test_case "validation" `Quick test_fp_validation;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "hardening" `Quick test_json_hardening;
        ] );
      ( "protocol",
        [
          prop_request_roundtrip;
          prop_response_roundtrip;
          Alcotest.test_case "errors" `Quick test_protocol_errors;
        ] );
      ( "cache",
        [
          prop_lru_model;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "disk persistence" `Quick test_disk_persistence;
          Alcotest.test_case "disk corruption rejected" `Quick
            test_disk_corruption_rejected;
          Alcotest.test_case "disk digest mismatch" `Quick
            test_disk_digest_mismatch;
        ] );
      ( "server",
        [
          Alcotest.test_case "differential cached = cold" `Quick
            test_differential_cached_equals_cold;
          Alcotest.test_case "e2e coalescing + restart" `Quick
            test_e2e_coalescing_and_restart;
          Alcotest.test_case "shed and drain" `Quick test_e2e_shed;
          Alcotest.test_case "timeout" `Quick test_e2e_timeout;
        ] );
    ]
