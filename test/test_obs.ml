(* Tests for the Ir_obs observability registry: counter and span basics,
   snapshot/reset semantics, report rendering, lost-update safety under
   concurrent domains, and the cross-domain counter-determinism
   invariant — running the same rank computations at jobs=1 and jobs=4
   must yield byte-identical counter snapshots.

   Oversubscription is enabled so the jobs=4 legs really interleave
   domains even on a one-core box — that contention is exactly what the
   determinism tests exist to exercise. *)
let () = Ir_exec.set_allow_oversubscribe true

let test_counter_basics () =
  let c = Ir_obs.counter "test/basics_counter" in
  let before = Ir_obs.value c in
  Ir_obs.incr c;
  Ir_obs.add c 41;
  Alcotest.(check int) "incr + add" (before + 42) (Ir_obs.value c);
  (* Same name resolves to the same underlying counter. *)
  Ir_obs.incr (Ir_obs.counter "test/basics_counter");
  Alcotest.(check int) "same name, same counter" (before + 43)
    (Ir_obs.value c)

let test_span_basics () =
  let s = Ir_obs.span "test/basics_span" in
  Ir_obs.record s 0.25;
  Ir_obs.record s 0.5;
  Alcotest.(check int) "time returns the thunk's value" 7
    (Ir_obs.time s (fun () -> 7));
  (match Ir_obs.find_span (Ir_obs.snapshot ()) "test/basics_span" with
  | None -> Alcotest.fail "span missing from snapshot"
  | Some st ->
      Alcotest.(check int) "calls" 3 st.Ir_obs.calls;
      Helpers.check_in_range "seconds" ~lo:0.74 ~hi:2.0 st.Ir_obs.seconds);
  (* A raising thunk still records its call. *)
  (try ignore (Ir_obs.time s (fun () -> failwith "boom") : int)
   with Failure _ -> ());
  match Ir_obs.find_span (Ir_obs.snapshot ()) "test/basics_span" with
  | None -> Alcotest.fail "span missing from snapshot"
  | Some st -> Alcotest.(check int) "raise still counted" 4 st.Ir_obs.calls

let test_snapshot_sorted_and_find () =
  ignore (Ir_obs.counter "test/zz_last");
  ignore (Ir_obs.counter "test/aa_first");
  let snap = Ir_obs.snapshot () in
  let names = List.map fst snap.Ir_obs.counters in
  Alcotest.(check (list string))
    "counters name-sorted"
    (List.sort compare names)
    names;
  let span_names = List.map fst snap.Ir_obs.spans in
  Alcotest.(check (list string))
    "spans name-sorted"
    (List.sort compare span_names)
    span_names;
  Alcotest.(check bool) "find_counter present" true
    (Ir_obs.find_counter snap "test/aa_first" <> None);
  Alcotest.(check (option int))
    "find_counter absent" None
    (Ir_obs.find_counter snap "test/never_registered")

let test_reset_keeps_registrations () =
  let c = Ir_obs.counter "test/reset_counter" in
  let s = Ir_obs.span "test/reset_span" in
  Ir_obs.add c 5;
  Ir_obs.record s 1.0;
  Ir_obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Ir_obs.value c);
  let snap = Ir_obs.snapshot () in
  Alcotest.(check (option int))
    "registration survives reset" (Some 0)
    (Ir_obs.find_counter snap "test/reset_counter");
  (match Ir_obs.find_span snap "test/reset_span" with
  | None -> Alcotest.fail "span registration lost across reset"
  | Some st ->
      Alcotest.(check int) "span calls zeroed" 0 st.Ir_obs.calls;
      Helpers.check_close "span seconds zeroed" 0.0 st.Ir_obs.seconds);
  (* Handles cached before the reset keep working. *)
  Ir_obs.incr c;
  Alcotest.(check int) "cached handle still live" 1 (Ir_obs.value c)

let test_report_contents () =
  Ir_obs.reset ();
  Ir_obs.add (Ir_obs.counter "test/report_counter") 12345;
  Ir_obs.record (Ir_obs.span "test/report_span") 0.125;
  let text = Format.asprintf "%a" Ir_obs.pp_report (Ir_obs.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report mentions %s" needle)
        true
        (Astring_contains.contains text needle))
    [ "test/report_counter"; "12345"; "test/report_span" ]

let test_gauge_basics () =
  let g = Ir_obs.gauge "test/basics_gauge" in
  Ir_obs.reset ();
  Alcotest.(check int) "starts at zero" 0 (Ir_obs.gauge_value g);
  Ir_obs.set_max g 7;
  Ir_obs.set_max g 3;
  Alcotest.(check int) "set_max keeps the maximum" 7 (Ir_obs.gauge_value g);
  Ir_obs.set_max g 11;
  Alcotest.(check int) "larger value wins" 11 (Ir_obs.gauge_value g);
  (* Same name resolves to the same underlying gauge. *)
  Ir_obs.set_max (Ir_obs.gauge "test/basics_gauge") 13;
  Alcotest.(check int) "same name, same gauge" 13 (Ir_obs.gauge_value g);
  let snap = Ir_obs.snapshot () in
  Alcotest.(check (option int))
    "find_gauge present" (Some 13)
    (Ir_obs.find_gauge snap "test/basics_gauge");
  Alcotest.(check (option int))
    "find_gauge absent" None
    (Ir_obs.find_gauge snap "test/never_registered_gauge");
  let names = List.map fst snap.Ir_obs.gauges in
  Alcotest.(check (list string))
    "gauges name-sorted"
    (List.sort compare names)
    names;
  let text = Format.asprintf "%a" Ir_obs.pp_report snap in
  Alcotest.(check bool) "report mentions the gauge" true
    (Astring_contains.contains text "test/basics_gauge");
  Ir_obs.reset ();
  Alcotest.(check int) "reset zeroes gauges" 0 (Ir_obs.gauge_value g);
  Alcotest.(check (option int))
    "registration survives reset" (Some 0)
    (Ir_obs.find_gauge (Ir_obs.snapshot ()) "test/basics_gauge")

let test_multi_domain_gauge () =
  (* Concurrent set_max races must never lose the global maximum. *)
  let g = Ir_obs.gauge "test/domains_gauge" in
  Ir_obs.reset ();
  let worker lo () =
    for v = lo to lo + 10_000 do
      Ir_obs.set_max g v
    done
  in
  let domains =
    List.init 4 (fun d -> Domain.spawn (worker (1 + (d * 5_000))))
  in
  worker 0 ();
  List.iter Domain.join domains;
  Alcotest.(check int) "maximum survives the race"
    (1 + (3 * 5_000) + 10_000)
    (Ir_obs.gauge_value g)

let test_multi_domain_increments () =
  (* Four spawned domains plus the caller hammer one counter; Atomic
     adds must not lose updates. *)
  let c = Ir_obs.counter "test/domains_counter" in
  let before = Ir_obs.value c in
  let per_domain = 25_000 in
  let worker () =
    for _ = 1 to per_domain do
      Ir_obs.incr c
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates"
    (before + (5 * per_domain))
    (Ir_obs.value c)

(* The tentpole invariant: outside the [exec/sched/] carve-out, every
   counter in the codebase counts a scheduling-independent quantity, so
   a rank sweep at jobs=1 and the same sweep at jobs=4 must produce
   identical counter snapshots once {!Ir_obs.filter_out} strips the
   scheduler's own counters (steal tallies differ by construction).
   Random instances exercise Rank_dp (Pareto inserts, dominated drops,
   truncations, search probes) and Greedy_fill underneath it. *)
let test_counters_deterministic_across_jobs () =
  let rand = Random.State.make [| 0x1A0B5 |] in
  let instances = QCheck2.Gen.generate ~rand ~n:8 Helpers.gen_instance in
  let problems =
    Array.of_list (List.map (fun i -> i.Helpers.problem) instances)
  in
  let counters_at jobs =
    Ir_obs.reset ();
    ignore
      (Ir_exec.parallel_map ~jobs Ir_core.Rank_dp.compute problems
        : Ir_core.Outcome.t array);
    (Ir_obs.filter_out ~prefix:"exec/sched/" (Ir_obs.snapshot ()))
      .Ir_obs.counters
  in
  let seq = counters_at 1 in
  let par = counters_at 4 in
  Alcotest.(check (list (pair string int)))
    "jobs=1 and jobs=4 counters identical" seq par;
  Alcotest.(check bool) "counters are non-trivial" true
    (List.exists (fun (_, v) -> v > 0) seq)

let test_filter_out () =
  Ir_obs.reset ();
  Ir_obs.add (Ir_obs.counter "exec/sched/steals") 7;
  Ir_obs.add (Ir_obs.counter "test/filter_kept") 3;
  let snap = Ir_obs.snapshot () in
  let stripped = Ir_obs.filter_out ~prefix:"exec/sched/" snap in
  Alcotest.(check (option int))
    "stripped counter gone" None
    (Ir_obs.find_counter stripped "exec/sched/steals");
  Alcotest.(check (option int))
    "other counters survive" (Some 3)
    (Ir_obs.find_counter stripped "test/filter_kept");
  (* filter and filter_out partition the snapshot. *)
  let kept = Ir_obs.filter ~prefix:"exec/sched/" snap in
  Alcotest.(check int) "partition: counter counts add up"
    (List.length snap.Ir_obs.counters)
    (List.length kept.Ir_obs.counters
    + List.length stripped.Ir_obs.counters)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "span basics" `Quick test_span_basics;
          Alcotest.test_case "snapshot sorted, find" `Quick
            test_snapshot_sorted_and_find;
          Alcotest.test_case "reset keeps registrations" `Quick
            test_reset_keeps_registrations;
          Alcotest.test_case "report contents" `Quick test_report_contents;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "filter_out strips a namespace" `Quick
            test_filter_out;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "multi-domain increments" `Quick
            test_multi_domain_increments;
          Alcotest.test_case "multi-domain gauge max" `Quick
            test_multi_domain_gauge;
          Alcotest.test_case "counters deterministic across jobs" `Slow
            test_counters_deterministic_across_jobs;
        ] );
    ]
