(* Tests for the experiment harness: Table 4 sweeps (scaled down), the
   headline equivalence, cross-node runs, paper data and reporting. *)

open Helpers

let small_config =
  (* A scaled-down baseline keeps each sweep point ~milliseconds. *)
  let design =
    Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:40_000 ()
  in
  { Ir_sweep.Table4.default_config with design; bunch_size = 500 }

let normalized_ranks sweep = List.map snd (Ir_sweep.Table4.normalized sweep)

let assert_monotone ~dir name xs =
  let ok = ref true in
  List.iteri
    (fun i x ->
      if i > 0 then
        let prev = List.nth xs (i - 1) in
        let good =
          match dir with
          | `Nonincreasing -> x <= prev +. 1e-12
          | `Nondecreasing -> x >= prev -. 1e-12
        in
        if not good then ok := false)
    xs;
  Alcotest.(check bool) (name ^ " monotone") true !ok

let test_k_sweep () =
  let s = Ir_sweep.Table4.k_sweep ~config:small_config () in
  Alcotest.(check int) "22 grid points" 22 (List.length s.rows);
  (* K decreases along the sweep; rank must not decrease. *)
  assert_monotone ~dir:`Nondecreasing "K" (normalized_ranks s);
  let first = List.hd (normalized_ranks s) in
  let last = List.nth (normalized_ranks s) 21 in
  Alcotest.(check bool) "low-k clearly better" true (last > first *. 1.15)

let test_m_sweep () =
  let s = Ir_sweep.Table4.m_sweep ~config:small_config () in
  Alcotest.(check int) "21 grid points" 21 (List.length s.rows);
  assert_monotone ~dir:`Nondecreasing "M" (normalized_ranks s)

let test_c_sweep () =
  let s = Ir_sweep.Table4.c_sweep ~config:small_config () in
  Alcotest.(check int) "13 grid points" 13 (List.length s.rows);
  (* Clock increases along the sweep; rank must not increase. *)
  assert_monotone ~dir:`Nonincreasing "C" (normalized_ranks s)

let test_r_sweep () =
  let s = Ir_sweep.Table4.r_sweep ~config:small_config () in
  Alcotest.(check int) "5 grid points" 5 (List.length s.rows);
  assert_monotone ~dir:`Nondecreasing "R" (normalized_ranks s);
  (* Near-linearity: the paper's R column is linear in R. *)
  let xs = normalized_ranks s in
  let r01 = List.nth xs 0 and r03 = List.nth xs 2 and r05 = List.nth xs 4 in
  let interpolated = (r01 +. r05) /. 2.0 in
  Alcotest.(check bool) "midpoint close to linear" true
    (Float.abs (r03 -. interpolated) < 0.05)

let test_k_m_interchangeable () =
  (* The paper's central observation: K and M act through the product
     k * miller, so equal relative reductions give equal ranks. *)
  let k = Ir_sweep.Table4.k_sweep ~config:small_config () in
  let m = Ir_sweep.Table4.m_sweep ~config:small_config () in
  let rank_at sweep p =
    List.assoc_opt p
      (List.map (fun (a, b) -> (Float.round (a *. 100.), b))
         (Ir_sweep.Table4.normalized sweep))
  in
  (* K = 1.95 is a 50% reduction; M = 1.0 is a 50% reduction.  The K grid
     has no 1.95 point, so compare K=2.0 against M=1.025... instead use
     K=3.9*0.5=1.95 absent; compare 2.0 vs 1.0256*2... Simplest: measure
     K=2.0 (48.7% cut) and M=1.05 (47.5% cut) and allow a loose band. *)
  match (rank_at k 200., rank_at m 105.) with
  | Some rk, Some rm ->
      Alcotest.(check bool)
        (Printf.sprintf "K=2.0 (%.4f) ~ M=1.05 (%.4f)" rk rm)
        true
        (Float.abs (rk -. rm) < 0.03)
  | _ -> Alcotest.fail "expected grid points missing"

let test_equivalence_headline () =
  let r =
    Ir_sweep.Equivalence.matching_miller_reduction
      ~config:small_config ~k_reduction:0.38 ()
  in
  (* The paper reports ~42.5%; with c ~ k*m the match is analytic, so the
     scaled-down design should land in a generous band around it. *)
  check_in_range "miller reduction near 42%" ~lo:0.30 ~hi:0.55 r.m_reduction;
  Alcotest.(check bool) "ranks actually match" true
    (Float.abs (r.k_rank -. r.m_rank) < 0.02)

let test_cross_node () =
  let cells =
    Ir_sweep.Cross_node.run ~bunch_size:500
      ~matrix:
        [ (Ir_tech.Node.N180, 40_000); (Ir_tech.Node.N130, 40_000);
          (Ir_tech.Node.N90, 40_000) ]
      ()
  in
  Alcotest.(check int) "three cells" 3 (List.length cells);
  List.iter
    (fun (c : Ir_sweep.Cross_node.cell) ->
      Alcotest.(check bool)
        (Ir_tech.Node.name c.node ^ " assignable")
        true c.outcome.assignable)
    cells

let test_parallel_determinism () =
  (* The acceptance criterion for the Ir_exec rewiring: running the full
     Table 4 grid on 4 worker domains must reproduce the sequential ranks
     and row ordering byte-for-byte. *)
  let tiny =
    let design = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:20_000 () in
    { Ir_sweep.Table4.default_config with design; bunch_size = 400 }
  in
  let strip (s : Ir_sweep.Table4.sweep) =
    ( s.name,
      List.map
        (fun (r : Ir_sweep.Table4.row) ->
          (r.param, r.outcome.Ir_core.Outcome.rank_wires,
           r.outcome.Ir_core.Outcome.total_wires))
        s.rows )
  in
  let seq = List.map strip (Ir_sweep.Table4.all ~jobs:1 ~config:tiny ()) in
  let par = List.map strip (Ir_sweep.Table4.all ~jobs:4 ~config:tiny ()) in
  Alcotest.(check int) "same sweep count" (List.length seq) (List.length par);
  List.iter2
    (fun (name_s, rows_s) (name_p, rows_p) ->
      Alcotest.(check string) "sweep order" name_s name_p;
      Alcotest.(check bool)
        (name_s ^ ": identical rows") true (rows_s = rows_p))
    seq par;
  let cseq =
    Ir_sweep.Cross_node.run ~jobs:1 ~bunch_size:400
      ~matrix:[ (Ir_tech.Node.N130, 20_000); (Ir_tech.Node.N90, 20_000) ]
      ()
  in
  let cpar =
    Ir_sweep.Cross_node.run ~jobs:4 ~bunch_size:400
      ~matrix:[ (Ir_tech.Node.N130, 20_000); (Ir_tech.Node.N90, 20_000) ]
      ()
  in
  Alcotest.(check bool) "cross-node identical" true
    (List.map
       (fun (c : Ir_sweep.Cross_node.cell) ->
         (Ir_tech.Node.name c.node, c.gates,
          c.outcome.Ir_core.Outcome.rank_wires))
       cseq
    = List.map
        (fun (c : Ir_sweep.Cross_node.cell) ->
          (Ir_tech.Node.name c.node, c.gates,
           c.outcome.Ir_core.Outcome.rank_wires))
        cpar)

(* The grid-engine acceptance: dispatching the whole fused Table-4 corpus
   through one [Rank_grid] wavefront must reproduce the per-point
   engine's outcomes — every rank, [exact] flag and boundary — exactly,
   row for row. *)
let test_grid_engine_identity () =
  let strip (s : Ir_sweep.Table4.sweep) =
    ( s.name,
      List.map (fun (r : Ir_sweep.Table4.row) -> (r.param, r.outcome)) s.rows
    )
  in
  let grid =
    List.map strip
      (Ir_sweep.Table4.all ~engine:Ir_sweep.Table4.Grid ~config:small_config
         ())
  in
  let per =
    List.map strip
      (Ir_sweep.Table4.all ~engine:Ir_sweep.Table4.Per_point
         ~config:small_config ())
  in
  Alcotest.(check int) "same sweep count" (List.length per) (List.length grid);
  List.iter2
    (fun (ng, rows_g) (np, rows_p) ->
      Alcotest.(check string) "sweep order" np ng;
      Alcotest.(check int) (ng ^ ": same rows") (List.length rows_p)
        (List.length rows_g);
      List.iter2
        (fun (pg, og) (pp, op) ->
          Alcotest.(check (float 0.0)) (ng ^ " param") pp pg;
          Alcotest.(check bool)
            (Printf.sprintf "%s param %.4g: identical outcome" ng pg)
            true
            (Ir_core.Outcome.equal og op))
        rows_g rows_p)
    grid per

let test_paper_data () =
  Alcotest.(check int) "K column size" 22 (List.length Ir_sweep.Paper_data.table4_k);
  Alcotest.(check int) "M column size" 21 (List.length Ir_sweep.Paper_data.table4_m);
  Alcotest.(check int) "C column size" 13 (List.length Ir_sweep.Paper_data.table4_c);
  Alcotest.(check int) "R column size" 5 (List.length Ir_sweep.Paper_data.table4_r);
  check_close "baseline value" 0.397288
    Ir_sweep.Paper_data.baseline_normalized_rank;
  (* Published columns share the baseline row. *)
  List.iter
    (fun col ->
      check_close "baseline row" 0.397288 (snd (List.hd col)))
    [ Ir_sweep.Paper_data.table4_k; Ir_sweep.Paper_data.table4_m;
      Ir_sweep.Paper_data.table4_c ]

let test_report_table () =
  let buf = Format.asprintf "%t"
      (Ir_sweep.Report.table ~header:[ "a"; "b" ]
         ~rows:[ [ "1"; "22" ]; [ "333"; "4" ] ])
  in
  Alcotest.(check bool) "has header" true (Astring_contains.contains buf "a");
  Alcotest.(check bool) "has separator" true
    (Astring_contains.contains buf "---")

let test_report_csv () =
  let buf = Buffer.create 64 in
  Ir_sweep.Report.csv ~header:[ "x"; "y" ]
    ~rows:[ [ "1"; "he,llo" ]; [ "2"; "quo\"te" ] ]
    buf;
  let s = Buffer.contents buf in
  Alcotest.(check bool) "quoted comma" true
    (Astring_contains.contains s "\"he,llo\"");
  Alcotest.(check bool) "escaped quote" true
    (Astring_contains.contains s "\"quo\"\"te\"")

let test_report_correlation () =
  let xs = [ (1.0, 1.0); (2.0, 2.0); (3.0, 3.0) ] in
  check_close "perfect correlation" 1.0 (Ir_sweep.Report.correlation xs xs);
  let ys = [ (1.0, 3.0); (2.0, 2.0); (3.0, 1.0) ] in
  check_close "perfect anticorrelation" (-1.0)
    (Ir_sweep.Report.correlation xs ys);
  check_close "max delta" 2.0 (Ir_sweep.Report.max_abs_delta xs ys);
  Alcotest.(check bool) "nan on no overlap" true
    (Float.is_nan (Ir_sweep.Report.correlation xs [ (9.0, 9.0) ]))

let test_sweep_render () =
  let s = Ir_sweep.Table4.r_sweep ~config:small_config () in
  let txt = Format.asprintf "%t" (Ir_sweep.Report.sweep_table s) in
  Alcotest.(check bool) "mentions column name" true
    (Astring_contains.contains txt "column R");
  Alcotest.(check bool) "includes paper values" true
    (Astring_contains.contains txt "0.117438");
  let buf = Buffer.create 256 in
  Ir_sweep.Report.sweep_csv s buf;
  Alcotest.(check bool) "csv has header" true
    (Astring_contains.contains (Buffer.contents buf) "measured")

let test_export () =
  let dir = Filename.temp_file "ia_rank" "_results" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let sweep = Ir_sweep.Table4.r_sweep ~config:small_config () in
      (match Ir_sweep.Export.write_sweeps ~dir [ sweep ] with
      | Error e -> Alcotest.failf "write_sweeps: %s" e
      | Ok paths ->
          Alcotest.(check int) "one file" 1 (List.length paths);
          let contents =
            In_channel.with_open_text (List.hd paths) In_channel.input_all
          in
          Alcotest.(check bool) "csv has paper column" true
            (Astring_contains.contains contents "0.117438"));
      (match
         Ir_sweep.Export.write_cross ~dir
           (Ir_sweep.Cross_node.run ~bunch_size:500
              ~matrix:[ (Ir_tech.Node.N130, 40_000) ] ())
       with
      | Error e -> Alcotest.failf "write_cross: %s" e
      | Ok path ->
          Alcotest.(check bool) "cross file exists" true
            (Sys.file_exists path));
      (match
         Ir_sweep.Export.write_manifest ~dir
           ~entries:[ ("E4", "table4 column R") ]
       with
      | Error e -> Alcotest.failf "write_manifest: %s" e
      | Ok path ->
          let contents = In_channel.with_open_text path In_channel.input_all in
          Alcotest.(check bool) "manifest entry" true
            (Astring_contains.contains contents "E4: table4 column R"));
      match
        Ir_sweep.Export.write_bench_json ~dir ~jobs:4
          ~timings:[ ("table4_jobs1_seconds", 1.25) ]
          ~metrics:(Ir_obs.snapshot ())
          ~kernel:[ ("front_insert_ns", 12.5) ]
          ~parallel:
            {
              Ir_sweep.Export.requested_jobs = 4;
              effective_jobs = 1;
              jobs1_seconds = 1.25;
              jobsn_seconds = Some 2.5;
            }
          ~scaling:
            {
              Ir_sweep.Export.max_jobs = 4;
              points = [ (1, 4.0); (2, 2.0); (4, 1.95) ];
            }
          ~grid:
            {
              Ir_sweep.Export.grid_points = 57;
              grid_planes = 33;
              per_point_seconds = 4.0;
              grid_seconds = 1.6;
              grid_identical = true;
              grid_counters_match = true;
              perturb_recomputed = 1;
              perturb_grid_cells = 10;
              perturb_seconds = 0.01;
              full_eval_seconds = 0.4;
            }
          ~pruning:
            {
              Ir_sweep.Export.pruning_points = 57;
              baseline_seconds = 1.6;
              pruned_seconds = 1.0;
              front_inserts_baseline = 1000;
              front_inserts_pruned = 600;
              witness_probes_baseline = 200;
              witness_probes_pruned = 150;
              states_pruned = 400;
              oracle_calls_saved = 50;
              incumbent_updates = 12;
              memo_preempted = 7;
              pruning_identical = true;
              pruning_counters_match = true;
            }
          ~power:
            {
              Ir_sweep.Export.power_points = 11;
              unconstrained_power = 0.4106;
              power_identity_ok = true;
              power_counters_match = true;
              power_engines_agree = true;
              power_monotone = true;
              power_seconds = 0.5;
            }
          ~serving:
            {
              Ir_sweep.Export.trace_requests = 9;
              distinct_queries = 3;
              hit_rate = 0.75;
              p50_ms = 1.0;
              p95_ms = 2.0;
              p99_ms = 3.0;
              computes = 3;
              table_builds = 1;
              counters_match = true;
            }
          ~serving_sharded:
            {
              Ir_sweep.Export.shards = 2;
              clients = 32;
              storm_requests = 192;
              distinct_families = 2;
              sh_distinct_queries = 14;
              sh_p50_ms = 1.0;
              sh_p95_ms = 2.0;
              sh_p99_ms = 3.0;
              shed_rate = 0.0;
              coalesce_rate = 0.25;
              table_builds_per_shard = [ 1; 1 ];
              byte_identical = true;
            }
          ~sweeps:[ sweep ] ~cross:[] ()
      with
      | Error e -> Alcotest.failf "write_bench_json: %s" e
      | Ok path ->
          Alcotest.(check string) "path" (Ir_sweep.Export.bench_json_path ~dir)
            path;
          let contents = In_channel.with_open_text path In_channel.input_all in
          List.iter
            (fun needle ->
              Alcotest.(check bool)
                ("bench json has " ^ needle)
                true
                (Astring_contains.contains contents needle))
            [
              "\"schema\":\"ia-rank/bench-sweeps/10\"";
              "\"jobs\":4";
              (* The grid leg: 4.0 s per-point over 1.6 s grid = 2.5x,
                 perturb touching 1 of 10 cells. *)
              "\"grid\":{\"status\":\"ok\"";
              "\"points\":57";
              "\"planes\":33";
              "\"speedup\":2.5";
              "\"perturb\":{\"recomputed_cells\":1,\"grid_cells\":10";
              (* The pruning leg: 400 of 1000 baseline front inserts
                 eliminated (reduction 0.4), 50 of 200 witness probes
                 (0.25), both legs byte-identical. *)
              "\"pruning\":{\"status\":\"ok\"";
              "\"front_insert_reduction\":0.4";
              "\"witness_probe_reduction\":0.25";
              "\"states_pruned\":400";
              "\"incumbent_updates\":12";
              "\"memo_preempted\":7";
              (* The power leg: all four contracts green. *)
              "\"power\":{\"status\":\"ok\"";
              "\"unconstrained_power_watts\":0.4106";
              "\"identity_ok\":true";
              "\"engines_agree\":true";
              "\"monotone\":true";
              "\"serving\":{\"trace_requests\":9";
              "\"serving_sharded\":{\"status\":\"ok\"";
              "\"table_builds_per_shard\":[1,1]";
              "\"byte_identical\":true";
              "\"counters_match\":true";
              "\"hit_rate\":0.75";
              "\"requested_jobs\":4";
              "\"effective_jobs\":1";
              "\"speedup\":0.5";
              "\"parallel_regression\":true";
              (* The scaling curve: 4.0 s at jobs=1, 2.0 s at jobs=2
                 (speedup 2, the >=5% knee), 1.95 s at jobs=4 (speedup
                 2.05 — under the 5% marginal-gain bar). *)
              "\"scaling\":{\"max_jobs\":4";
              "\"status\":\"ok\"";
              "\"knee_jobs\":2";
              "\"speedup\":2,\"parallel_regression\":false";
              "\"kernel\":{\"front_insert_ns\":12.5}";
              "\"gauges\":{";
              "\"table4_jobs1_seconds\":1.25";
              "\"rank_wires\"";
              "\"exact\":true";
              "\"metrics\":{\"counters\":{";
              "\"sweep/points\"";
              "\"cross_node\":[]";
            ])

(* Satellite of the scheduler PR: on a single-core box the parallel leg
   is skipped, and both the two-leg report and the scaling curve must
   say "skipped_single_core" instead of flagging a false regression. *)
let test_export_single_core () =
  let dir = Filename.temp_file "ia_rank" "_single" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
  @@ fun () ->
  match
    Ir_sweep.Export.write_bench_json ~dir ~jobs:4
      ~timings:[ ("table4_jobs1_seconds", 1.25) ]
      ~parallel:
        {
          Ir_sweep.Export.requested_jobs = 4;
          effective_jobs = 1;
          jobs1_seconds = 1.25;
          jobsn_seconds = None;
        }
      ~scaling:{ Ir_sweep.Export.max_jobs = 1; points = [ (1, 1.25) ] }
      ~sweeps:[] ~cross:[] ()
  with
  | Error e -> Alcotest.failf "write_bench_json: %s" e
  | Ok path ->
      let contents = In_channel.with_open_text path In_channel.input_all in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            ("single-core json has " ^ needle)
            true
            (Astring_contains.contains contents needle))
        [
          "\"parallel_regression\":\"skipped_single_core\"";
          "\"status\":\"skipped_single_core\"";
          "\"knee_jobs\":1";
        ];
      (* No fabricated jobs=N numbers anywhere. *)
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            ("single-core json lacks " ^ needle)
            false
            (Astring_contains.contains contents needle))
        [ "\"jobsN_seconds\""; "\"parallel_regression\":true" ]

(* The derived serving_sharded status the CI gate keys on: each failure
   mode maps to its own verdict, checked worst-first. *)
let test_sharded_status () =
  let base =
    {
      Ir_sweep.Export.shards = 2;
      clients = 8;
      storm_requests = 64;
      distinct_families = 2;
      sh_distinct_queries = 6;
      sh_p50_ms = 1.0;
      sh_p95_ms = 2.0;
      sh_p99_ms = 3.0;
      shed_rate = 0.0;
      coalesce_rate = 0.1;
      table_builds_per_shard = [ 1; 1 ];
      byte_identical = true;
    }
  in
  let status = Ir_sweep.Export.sharded_status in
  Alcotest.(check string) "clean run" "ok" (status base);
  Alcotest.(check string) "byte identity dominates" "mismatch"
    (status { base with byte_identical = false; shed_rate = 1.0 });
  Alcotest.(check string) "a family built twice" "duplicate_family_builds"
    (status { base with table_builds_per_shard = [ 2; 1 ] });
  Alcotest.(check string) "over half the storm shed" "shed_exceeded"
    (status { base with shed_rate = 0.6 });
  Alcotest.(check string) "heavy but acceptable shed" "ok"
    (status { base with shed_rate = 0.5 })

let grid_report_base =
  {
    Ir_sweep.Export.grid_points = 57;
    grid_planes = 33;
    per_point_seconds = 4.0;
    grid_seconds = 1.6;
    grid_identical = true;
    grid_counters_match = true;
    perturb_recomputed = 1;
    perturb_grid_cells = 10;
    perturb_seconds = 0.01;
    full_eval_seconds = 0.4;
  }

let test_grid_status () =
  let status = Ir_sweep.Export.grid_status in
  Alcotest.(check string) "clean run" "ok" (status grid_report_base);
  Alcotest.(check string) "byte identity dominates" "mismatch"
    (status
       {
         grid_report_base with
         grid_identical = false;
         grid_counters_match = false;
       });
  Alcotest.(check string) "schedule-variant counters" "counters_mismatch"
    (status { grid_report_base with grid_counters_match = false });
  Alcotest.(check string) "perturb as costly as a rebuild"
    "perturb_not_incremental"
    (status { grid_report_base with perturb_recomputed = 10 });
  (* The speedup is reported, never gated: a slower grid is still
     honest. *)
  Alcotest.(check string) "slow grid still ok" "ok"
    (status { grid_report_base with grid_seconds = 9.0 })

(* Satellite of the grid PR: the exported BENCH_sweeps.json must parse
   as JSON and carry the schema-10 top-level contract — every object the
   CI gates read, with the right shapes. *)
let test_bench_schema () =
  let dir = Filename.temp_file "ia_rank" "_schema" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
  @@ fun () ->
  match
    Ir_sweep.Export.write_bench_json ~dir ~jobs:2
      ~timings:[ ("table4_jobs1_seconds", 2.0) ]
      ~metrics:(Ir_obs.snapshot ())
      ~kernel:[ ("front_insert_ns", 12.5) ]
      ~parallel:
        {
          Ir_sweep.Export.requested_jobs = 2;
          effective_jobs = 2;
          jobs1_seconds = 2.0;
          jobsn_seconds = Some 1.0;
        }
      ~scaling:
        { Ir_sweep.Export.max_jobs = 2; points = [ (1, 2.0); (2, 1.0) ] }
      ~grid:grid_report_base
      ~power:
        {
          Ir_sweep.Export.power_points = 4;
          unconstrained_power = 0.2;
          power_identity_ok = true;
          power_counters_match = true;
          power_engines_agree = true;
          power_monotone = true;
          power_seconds = 0.1;
        }
      ~serving:
        {
          Ir_sweep.Export.trace_requests = 9;
          distinct_queries = 3;
          hit_rate = 0.75;
          p50_ms = 1.0;
          p95_ms = 2.0;
          p99_ms = 3.0;
          computes = 3;
          table_builds = 1;
          counters_match = true;
        }
      ~serving_sharded:
        {
          Ir_sweep.Export.shards = 2;
          clients = 32;
          storm_requests = 192;
          distinct_families = 2;
          sh_distinct_queries = 14;
          sh_p50_ms = 1.0;
          sh_p95_ms = 2.0;
          sh_p99_ms = 3.0;
          shed_rate = 0.0;
          coalesce_rate = 0.25;
          table_builds_per_shard = [ 1; 1 ];
          byte_identical = true;
        }
      ~sweeps:[] ~cross:[] ()
  with
  | Error e -> Alcotest.failf "write_bench_json: %s" e
  | Ok path ->
      let module Sj = Ir_serve.Json in
      let contents = In_channel.with_open_text path In_channel.input_all in
      let json =
        match Sj.of_string contents with
        | Ok j -> j
        | Error e -> Alcotest.failf "bench json does not parse: %s" e
      in
      let mem k =
        match Sj.member k json with
        | Some v -> v
        | None -> Alcotest.failf "missing top-level key %S" k
      in
      Alcotest.(check (option string))
        "schema tag"
        (Some "ia-rank/bench-sweeps/10")
        (Sj.to_str (mem "schema"));
      Alcotest.(check (option int)) "jobs" (Some 2) (Sj.to_int (mem "jobs"));
      List.iter
        (fun k ->
          match mem k with
          | Sj.Obj _ -> ()
          | _ -> Alcotest.failf "top-level %S is not an object" k)
        [
          "timings"; "parallel"; "scaling"; "kernel"; "grid"; "power";
          "serving"; "serving_sharded"; "metrics";
        ];
      List.iter
        (fun k ->
          match mem k with
          | Sj.Arr _ -> ()
          | _ -> Alcotest.failf "top-level %S is not an array" k)
        [ "table4"; "cross_node" ];
      (* The grid object carries exactly what the CI gate reads. *)
      let grid = mem "grid" in
      let gmem k =
        match Sj.member k grid with
        | Some v -> v
        | None -> Alcotest.failf "grid object missing %S" k
      in
      Alcotest.(check (option string))
        "grid status" (Some "ok")
        (Sj.to_str (gmem "status"));
      Alcotest.(check (option int)) "grid points" (Some 57)
        (Sj.to_int (gmem "points"));
      Alcotest.(check (option int)) "grid planes" (Some 33)
        (Sj.to_int (gmem "planes"));
      (match Sj.to_float (gmem "speedup") with
      | Some s -> Alcotest.(check (float 1e-9)) "grid speedup" 2.5 s
      | None -> Alcotest.fail "grid speedup is not a number");
      let perturb = gmem "perturb" in
      Alcotest.(check (option int))
        "perturb recomputed" (Some 1)
        (Sj.to_int
           (Option.value ~default:Sj.Null
              (Sj.member "recomputed_cells" perturb)));
      Alcotest.(check (option int))
        "perturb grid cells" (Some 10)
        (Sj.to_int
           (Option.value ~default:Sj.Null (Sj.member "grid_cells" perturb)));
      (* The power object carries exactly what the CI gate reads. *)
      let power = mem "power" in
      let pmem k =
        match Sj.member k power with
        | Some v -> v
        | None -> Alcotest.failf "power object missing %S" k
      in
      Alcotest.(check (option string))
        "power status" (Some "ok")
        (Sj.to_str (pmem "status"));
      Alcotest.(check (option int))
        "power points" (Some 4)
        (Sj.to_int (pmem "points"));
      match Sj.to_float (pmem "unconstrained_power_watts") with
      | Some w -> Alcotest.(check (float 1e-9)) "power watts" 0.2 w
      | None -> Alcotest.fail "unconstrained_power_watts is not a number"

let test_export_bad_dir () =
  match Ir_sweep.Export.write_manifest ~dir:"/proc/nope/never" ~entries:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected filesystem error"

let with_temp_root f =
  let root = Filename.temp_file "ia_rank" "_dirs" in
  Sys.remove root;
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm root) (fun () -> f root)

let test_ensure_dir_recursive () =
  with_temp_root @@ fun root ->
  let nested = Filename.concat (Filename.concat root "a") "b" in
  (match Ir_sweep.Export.ensure_dir nested with
  | Error e -> Alcotest.failf "ensure_dir nested: %s" e
  | Ok () ->
      Alcotest.(check bool) "nested dir exists" true (Sys.is_directory nested));
  (* Idempotent on an existing directory. *)
  (match Ir_sweep.Export.ensure_dir nested with
  | Error e -> Alcotest.failf "ensure_dir existing: %s" e
  | Ok () -> ());
  (* A regular file in the way is a clear error naming the path. *)
  let blocked = Filename.concat nested "file" in
  Out_channel.with_open_text blocked (fun oc ->
      Out_channel.output_string oc "x");
  match Ir_sweep.Export.ensure_dir (Filename.concat blocked "below") with
  | Ok () -> Alcotest.fail "expected error through a regular file"
  | Error e ->
      Alcotest.(check bool) "error names the blocking path" true
        (Astring_contains.contains e blocked)

let rename_sweep (s : Ir_sweep.Table4.sweep) name = { s with name }

let test_sweep_csv_collision () =
  with_temp_root @@ fun root ->
  let sweep = Ir_sweep.Table4.r_sweep ~config:small_config () in
  let upper = rename_sweep sweep "R" and lower = rename_sweep sweep "r" in
  (* [sweep_csv_path] lowercases, so "R" and "r" map to the same file. *)
  Alcotest.(check string) "paths collide"
    (Ir_sweep.Export.sweep_csv_path ~dir:root upper)
    (Ir_sweep.Export.sweep_csv_path ~dir:root lower);
  (match Ir_sweep.Export.write_sweeps ~dir:root [ upper; lower ] with
  | Ok _ -> Alcotest.fail "expected collision error"
  | Error e ->
      Alcotest.(check bool) "error names both sweeps" true
        (Astring_contains.contains e "\"R\""
        && Astring_contains.contains e "\"r\"");
      Alcotest.(check bool) "nothing written" true
        (not (Sys.file_exists (Ir_sweep.Export.sweep_csv_path ~dir:root upper))));
  (* The same sweep listed twice is not a collision (last write wins). *)
  match Ir_sweep.Export.write_sweeps ~dir:root [ upper; upper ] with
  | Ok paths -> Alcotest.(check int) "two writes" 2 (List.length paths)
  | Error e -> Alcotest.failf "same-name sweeps should write: %s" e

(* ---- power: the rank-vs-power frontier sweep -------------------------- *)

let test_power_pareto_run () =
  let r =
    Ir_sweep.Power_pareto.run ~config:small_config
      ~fractions:[ 0.25; 0.5; 1.0 ] ()
  in
  Alcotest.(check int) "three rows" 3 (List.length r.rows);
  Alcotest.(check bool) "frontier monotone" true
    (Ir_sweep.Power_pareto.monotone r);
  Alcotest.(check bool) "unconstrained power positive" true
    (r.unconstrained_power > 0.0);
  List.iter
    (fun (row : Ir_sweep.Power_pareto.row) ->
      if row.outcome.Ir_core.Outcome.assignable then
        Alcotest.(check bool) "witness within budget" true
          (row.power <= row.budget))
    r.rows;
  let last = List.nth r.rows 2 in
  Alcotest.(check int) "fraction 1.0 recovers the unconstrained rank"
    r.unconstrained.Ir_core.Outcome.rank_wires
    last.outcome.Ir_core.Outcome.rank_wires

let test_power_pareto_bad_fraction () =
  List.iter
    (fun fractions ->
      try
        ignore (Ir_sweep.Power_pareto.run ~config:small_config ~fractions ());
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())
    [ [ 0.0 ]; [ -0.5 ]; [ 1.5 ] ]

let test_table4_power_budgeted () =
  let base = Ir_sweep.Table4.baseline_problem small_config in
  let _, w = Ir_core.Rank_dp.compute_with_witness base in
  let p_inf =
    match w with
    | Some w -> Ir_power.Power.of_witness base w
    | None -> Alcotest.fail "baseline unassignable"
  in
  let powered =
    { small_config with Ir_sweep.Table4.power_budget = 0.5 *. p_inf }
  in
  (* Requesting the grid engine must transparently fall back to the
     per-point scheduler in power mode. *)
  let s =
    Ir_sweep.Table4.r_sweep ~engine:Ir_sweep.Table4.Grid ~config:powered ()
  in
  let s0 = Ir_sweep.Table4.r_sweep ~config:small_config () in
  List.iter2
    (fun (b : Ir_sweep.Table4.row) (u : Ir_sweep.Table4.row) ->
      Alcotest.(check bool) "budgeted rank <= unconstrained rank" true
        (b.outcome.Ir_core.Outcome.rank_wires
        <= u.outcome.Ir_core.Outcome.rank_wires))
    s.rows s0.rows;
  Alcotest.(check bool) "the half-spend budget binds somewhere" true
    (List.exists2
       (fun (b : Ir_sweep.Table4.row) (u : Ir_sweep.Table4.row) ->
         b.outcome.Ir_core.Outcome.rank_wires
         < u.outcome.Ir_core.Outcome.rank_wires)
       s.rows s0.rows)

let test_write_power_pareto () =
  with_temp_root @@ fun root ->
  let r =
    Ir_sweep.Power_pareto.run ~config:small_config ~fractions:[ 0.5; 1.0 ] ()
  in
  match Ir_sweep.Export.write_power_pareto ~dir:root r with
  | Error e -> Alcotest.failf "write_power_pareto: %s" e
  | Ok path ->
      Alcotest.(check string) "path"
        (Ir_sweep.Export.power_pareto_csv_path ~dir:root)
        path;
      let contents = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check bool) "header" true
        (Astring_contains.contains contents
           "fraction,budget_watts,power_watts,rank_wires,total_wires,normalized,boundary_bunch,assignable,exact");
      let lines = String.split_on_char '\n' (String.trim contents) in
      Alcotest.(check int) "one line per row plus header" 3
        (List.length lines)

let power_report_base =
  {
    Ir_sweep.Export.power_points = 4;
    unconstrained_power = 0.2;
    power_identity_ok = true;
    power_counters_match = true;
    power_engines_agree = true;
    power_monotone = true;
    power_seconds = 0.1;
  }

(* Status precedence mirrors soundness severity: the identity anchor
   outranks everything, then jobs-counter identity, then engine
   agreement, then frontier shape. *)
let test_power_status () =
  let status = Ir_sweep.Export.power_status in
  Alcotest.(check string) "ok" "ok" (status power_report_base);
  Alcotest.(check string) "identity outranks monotone" "identity_broken"
    (status
       {
         power_report_base with
         power_identity_ok = false;
         power_monotone = false;
       });
  Alcotest.(check string) "counters" "counters_mismatch"
    (status { power_report_base with power_counters_match = false });
  Alcotest.(check string) "engines" "engine_mismatch"
    (status { power_report_base with power_engines_agree = false });
  Alcotest.(check string) "monotone" "frontier_not_monotone"
    (status { power_report_base with power_monotone = false })

let () =
  Alcotest.run "sweep"
    [
      ( "table4",
        [
          Alcotest.test_case "K column" `Slow test_k_sweep;
          Alcotest.test_case "M column" `Slow test_m_sweep;
          Alcotest.test_case "C column" `Slow test_c_sweep;
          Alcotest.test_case "R column" `Slow test_r_sweep;
          Alcotest.test_case "K and M interchangeable" `Slow
            test_k_m_interchangeable;
          Alcotest.test_case "grid engine = per-point engine" `Slow
            test_grid_engine_identity;
        ] );
      ( "equivalence",
        [ Alcotest.test_case "headline 38% K ~ 42% M" `Slow
            test_equivalence_headline ] );
      ( "cross node",
        [ Alcotest.test_case "matrix" `Slow test_cross_node ] );
      ( "parallel execution",
        [ Alcotest.test_case "jobs=4 reproduces jobs=1" `Slow
            test_parallel_determinism ] );
      ( "paper data",
        [ Alcotest.test_case "columns" `Quick test_paper_data ] );
      ( "power",
        [
          Alcotest.test_case "frontier run" `Slow test_power_pareto_run;
          Alcotest.test_case "bad fractions" `Slow
            test_power_pareto_bad_fraction;
          Alcotest.test_case "table4 power-budgeted config" `Slow
            test_table4_power_budgeted;
          Alcotest.test_case "power_pareto.csv round trip" `Slow
            test_write_power_pareto;
          Alcotest.test_case "status derivation" `Quick test_power_status;
        ] );
      ( "export",
        [
          Alcotest.test_case "round trip" `Slow test_export;
          Alcotest.test_case "single-core skip report" `Quick
            test_export_single_core;
          Alcotest.test_case "sharded status" `Quick test_sharded_status;
          Alcotest.test_case "grid status" `Quick test_grid_status;
          Alcotest.test_case "bench json schema 10" `Quick test_bench_schema;
          Alcotest.test_case "bad directory" `Quick test_export_bad_dir;
          Alcotest.test_case "recursive directory creation" `Quick
            test_ensure_dir_recursive;
          Alcotest.test_case "lowercase csv collision" `Slow
            test_sweep_csv_collision;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "correlation" `Quick test_report_correlation;
          Alcotest.test_case "sweep render" `Quick test_sweep_render;
        ] );
    ]
