(* Tests for the Davis WLD, the discrete distribution type and the
   coarsening (bunching/binning) procedures. *)

open Helpers

let params_1m = Ir_wld.Davis.params ~gates:1_000_000 ()
let small = Ir_wld.Davis.params ~gates:10_000 ()

let test_davis_params () =
  check_close "default rent" 0.6 params_1m.rent_p;
  check_close "default fanout" 3.0 params_1m.fan_out;
  Alcotest.check_raises "bad rent"
    (Invalid_argument "Davis.params: rent_p must lie in (0, 1)") (fun () ->
      ignore (Ir_wld.Davis.params ~rent_p:1.0 ~gates:100 ()));
  check_close "l_max" 2000.0 (Ir_wld.Davis.l_max params_1m)

let test_davis_density_support () =
  check_close "zero below 1" 0.0 (Ir_wld.Davis.density small 0.5);
  check_close "zero above 2 sqrt N" 0.0 (Ir_wld.Davis.density small 201.0);
  Alcotest.(check bool) "positive at 1" true
    (Ir_wld.Davis.density small 1.0 > 0.0);
  Alcotest.(check bool) "positive in region II" true
    (Ir_wld.Davis.density small 150.0 > 0.0)

let test_davis_density_continuity () =
  (* The density is continuous at the region boundary sqrt N. *)
  let sqn = 100.0 in
  let below = Ir_wld.Davis.density small (sqn -. 1e-6) in
  let above = Ir_wld.Davis.density small (sqn +. 1e-6) in
  check_close ~eps:1e-3 "continuous at sqrt N" below above

let test_davis_cumulative () =
  check_close "cumulative at 1 is 0" 0.0 (Ir_wld.Davis.cumulative small 1.0);
  check_close ~eps:1e-9 "cumulative at l_max is total"
    (Ir_wld.Davis.total small)
    (Ir_wld.Davis.cumulative small (Ir_wld.Davis.l_max small));
  (* Cumulative agrees with numeric quadrature of the density. *)
  let quad =
    Ir_phys.Numeric.integrate ~n:4096
      (fun l -> Ir_wld.Davis.density small l)
      1.0 57.0
  in
  check_close ~eps:1e-3 "cumulative vs quadrature" quad
    (Ir_wld.Davis.cumulative small 57.0)

let test_davis_generate () =
  let d = Ir_wld.Davis.generate params_1m in
  Alcotest.(check int) "total is fanout * N" 3_000_000 (Ir_wld.Dist.total d);
  Alcotest.(check (result unit string)) "invariants hold" (Ok ())
    (Ir_wld.Dist.check_invariants d);
  Alcotest.(check bool) "mean around 9-10 pitches" true
    (let m = Ir_wld.Dist.mean_length d in
     m > 8.0 && m < 12.0);
  Alcotest.(check bool) "l_max below 2 sqrt N" true
    (Ir_wld.Dist.l_max d <= 2000.0)

let test_davis_tail_fractions () =
  (* The C-column plateau mechanism: tail fractions at small integer
     lengths; these anchor the Table 4 C reproduction. *)
  let d = Ir_wld.Davis.generate params_1m in
  let n = float_of_int (Ir_wld.Dist.total d) in
  let frac l = float_of_int (Ir_wld.Dist.count_at_least d l) /. n in
  check_in_range "frac >= 3" ~lo:0.42 ~hi:0.52 (frac 3.0);
  check_in_range "frac >= 5" ~lo:0.25 ~hi:0.33 (frac 5.0);
  check_in_range "frac >= 7" ~lo:0.18 ~hi:0.25 (frac 7.0)

let test_generate_meters () =
  let pitch = 2.1e-6 in
  let d = Ir_wld.Davis.generate_meters small ~pitch in
  check_close "l_min scaled" pitch (Ir_wld.Dist.l_min d)

let test_dist_basics () =
  let d =
    Ir_wld.Dist.of_bins
      [
        { Ir_wld.Dist.length = 3.0; count = 2 };
        { Ir_wld.Dist.length = 1.0; count = 5 };
        { Ir_wld.Dist.length = 3.0; count = 1 };
        { Ir_wld.Dist.length = 2.0; count = 0 };
      ]
  in
  Alcotest.(check int) "total" 8 (Ir_wld.Dist.total d);
  Alcotest.(check int) "bins merged, zero dropped" 2 (Ir_wld.Dist.n_bins d);
  check_close "l_max" 3.0 (Ir_wld.Dist.l_max d);
  check_close "l_min" 1.0 (Ir_wld.Dist.l_min d);
  check_close "mean" ((3.0 *. 3.0) +. 5.0 *. 1.0) (Ir_wld.Dist.mean_length d *. 8.0);
  Alcotest.(check int) "count at least 2" 3 (Ir_wld.Dist.count_at_least d 2.0);
  check_close "rank 1 is longest" 3.0 (Ir_wld.Dist.length_at_rank d 1);
  check_close "rank 3 is last long wire" 3.0 (Ir_wld.Dist.length_at_rank d 3);
  check_close "rank 4 is short" 1.0 (Ir_wld.Dist.length_at_rank d 4);
  check_close "rank 8" 1.0 (Ir_wld.Dist.length_at_rank d 8);
  let desc = Ir_wld.Dist.to_desc_list d in
  check_close "desc first" 3.0 (List.hd desc).Ir_wld.Dist.length

let test_dist_validation () =
  Alcotest.check_raises "negative count"
    (Invalid_argument "Dist.of_bins: negative count") (fun () ->
      ignore (Ir_wld.Dist.of_bins [ { Ir_wld.Dist.length = 1.0; count = -1 } ]));
  Alcotest.check_raises "zero length"
    (Invalid_argument "Dist.of_bins: lengths must be > 0") (fun () ->
      ignore (Ir_wld.Dist.of_bins [ { Ir_wld.Dist.length = 0.0; count = 1 } ]));
  Alcotest.check_raises "rank out of range"
    (Invalid_argument "Dist.length_at_rank: out of range") (fun () ->
      ignore
        (Ir_wld.Dist.length_at_rank
           (Ir_wld.Dist.of_bins [ { Ir_wld.Dist.length = 1.0; count = 1 } ])
           2))

let test_bunching () =
  let d =
    Ir_wld.Dist.of_bins
      [
        { Ir_wld.Dist.length = 10.0; count = 100 };
        { Ir_wld.Dist.length = 5.0; count = 35 };
      ]
  in
  let bunches = Ir_wld.Coarsen.bunch ~bunch_size:40 d in
  (* 100 -> 40+40+20 (order within equal lengths irrelevant), 35 -> 35 *)
  Alcotest.(check int) "bunch count" 4 (Array.length bunches);
  Alcotest.(check int) "computed count" 4
    (Ir_wld.Coarsen.bunch_count ~bunch_size:40 d);
  let total = Array.fold_left (fun a b -> a + b.Ir_wld.Dist.count) 0 bunches in
  Alcotest.(check int) "mass conserved" 135 total;
  Alcotest.(check bool) "sizes bounded" true
    (Array.for_all (fun b -> b.Ir_wld.Dist.count <= 40) bunches);
  (* descending lengths *)
  let sorted = ref true in
  Array.iteri
    (fun i b ->
      if i > 0 && b.Ir_wld.Dist.length > bunches.(i - 1).Ir_wld.Dist.length
      then sorted := false)
    bunches;
  Alcotest.(check bool) "descending" true !sorted;
  Alcotest.(check int) "max error bound" 40
    (Ir_wld.Coarsen.max_bunch_error ~bunch_size:40 d)

let test_binning () =
  (* Footnote 7's example: lengths 5996..6000, counts 3 2 2 1 1 -> one bin
     of count 9 whose (weighted) mean is ~5997.4. *)
  let d =
    Ir_wld.Dist.of_bins
      [
        { Ir_wld.Dist.length = 5996.0; count = 3 };
        { Ir_wld.Dist.length = 5997.0; count = 2 };
        { Ir_wld.Dist.length = 5998.0; count = 2 };
        { Ir_wld.Dist.length = 5999.0; count = 1 };
        { Ir_wld.Dist.length = 6000.0; count = 1 };
      ]
  in
  let binned = Ir_wld.Coarsen.bin ~group:5 d in
  Alcotest.(check int) "one bin" 1 (Ir_wld.Dist.n_bins binned);
  Alcotest.(check int) "mass conserved" 9 (Ir_wld.Dist.total binned);
  check_in_range "weighted mean" ~lo:5997.0 ~hi:5998.0
    (Ir_wld.Dist.l_max binned);
  check_close "total wire length conserved"
    (Ir_wld.Dist.total_wire_length d)
    (Ir_wld.Dist.total_wire_length binned)

let prop_bunch_mass =
  qtest "bunching conserves mass for random distributions"
    QCheck2.Gen.(
      pair (int_range 1 50)
        (list_size (int_range 1 20)
           (pair (float_range 1.0 100.0) (int_range 1 200))))
    (fun (bunch_size, raw) ->
      let bins =
        List.map (fun (l, c) -> { Ir_wld.Dist.length = l; count = c }) raw
      in
      let d = Ir_wld.Dist.of_bins bins in
      let bunches = Ir_wld.Coarsen.bunch ~bunch_size d in
      Array.fold_left (fun a b -> a + b.Ir_wld.Dist.count) 0 bunches
      = Ir_wld.Dist.total d
      && Array.for_all (fun b -> b.Ir_wld.Dist.count <= bunch_size) bunches)

let prop_binning_mass =
  qtest "binning conserves mass and total length"
    QCheck2.Gen.(
      pair (int_range 1 7)
        (list_size (int_range 1 30)
           (pair (float_range 1.0 100.0) (int_range 1 50))))
    (fun (group, raw) ->
      let bins =
        List.map (fun (l, c) -> { Ir_wld.Dist.length = l; count = c }) raw
      in
      let d = Ir_wld.Dist.of_bins bins in
      let binned = Ir_wld.Coarsen.bin ~group d in
      Ir_wld.Dist.total binned = Ir_wld.Dist.total d
      && Ir_phys.Numeric.close ~rtol:1e-9
           (Ir_wld.Dist.total_wire_length binned)
           (Ir_wld.Dist.total_wire_length d))

let prop_davis_total =
  qtest ~count:20 "generated total equals fanout * N for random N"
    QCheck2.Gen.(int_range 1_000 200_000)
    (fun gates ->
      let p = Ir_wld.Davis.params ~gates () in
      let d = Ir_wld.Davis.generate p in
      abs (Ir_wld.Dist.total d - (3 * gates)) <= 1)

let prop_davis_rent_shifts_tail =
  qtest ~count:10 "higher Rent exponent fattens the long-wire tail"
    QCheck2.Gen.(int_range 10_000 100_000)
    (fun gates ->
      let tail p =
        let d = Ir_wld.Davis.generate (Ir_wld.Davis.params ~rent_p:p ~gates ()) in
        float_of_int (Ir_wld.Dist.count_at_least d 20.0)
        /. float_of_int (Ir_wld.Dist.total d)
      in
      tail 0.7 > tail 0.5)

let test_io_roundtrip () =
  let d =
    Ir_wld.Dist.of_bins
      [
        { Ir_wld.Dist.length = 1.0; count = 100 };
        { Ir_wld.Dist.length = 2.5; count = 7 };
        { Ir_wld.Dist.length = 40.0; count = 1 };
      ]
  in
  match Ir_wld.Io.of_string (Ir_wld.Io.to_string d) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok d2 ->
      Alcotest.(check bool) "roundtrip equal" true (Ir_wld.Dist.equal d d2)

let test_io_parsing () =
  (match Ir_wld.Io.of_string "length,count\n# comment\n\n3.5,4\n1,2\n" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok d ->
      Alcotest.(check int) "total" 6 (Ir_wld.Dist.total d);
      check_close "sorted ascending" 1.0 (Ir_wld.Dist.l_min d));
  (match Ir_wld.Io.of_string "1,2\nbogus line\n" with
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (Astring_contains.contains e "line 2")
  | Ok _ -> Alcotest.fail "expected a parse error");
  match Ir_wld.Io.of_string "1,-3\n" with
  | Error e ->
      Alcotest.(check bool) "negative count rejected" true
        (Astring_contains.contains e "negative")
  | Ok _ -> Alcotest.fail "expected negative-count error"

(* Every malformed-entry failure mode the serving layer relies on: the
   parser is the trust boundary for client-supplied WLDs, so each
   rejection must carry the line number (and file name, when given)
   rather than silently repairing the data. *)
let test_io_failure_modes () =
  let rejected what input substrings =
    match Ir_wld.Io.of_string input with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error e ->
        List.iter
          (fun s ->
            Alcotest.(check bool)
              (Printf.sprintf "%s error mentions %S (got %S)" what s e)
              true
              (Astring_contains.contains e s))
          substrings
  in
  rejected "three-field line" "1,2\n3,4,5\n" [ "line 2" ];
  rejected "missing count" "1,2\n7\n" [ "line 2" ];
  (* unparsable fields on line 1 are the one tolerated header; from
     line 2 on they are errors *)
  rejected "unparsable length" "1,2\nabc,2\n" [ "line 2" ];
  rejected "fractional count" "1,2\n3,2.5\n" [ "line 2" ];
  rejected "negative count" "1,2\n3,-4\n" [ "line 2"; "negative" ];
  rejected "negative length" "-1,2\n" [ "line 1" ];
  rejected "zero length" "0,2\n" [ "line 1" ];
  rejected "NaN length" "nan,2\n" [ "line 1" ];
  rejected "infinite length" "inf,2\n" [ "line 1" ];
  rejected "empty input" "" [ "no data" ];
  rejected "comments only" "# nothing\n\n# here\n" [ "no data" ]

let test_io_strict_mode () =
  (* Non-monotone data is legal by default (Dist.of_bins sorts and
     merges) but rejected under [strict] — the serving layer treats an
     out-of-order upload as corruption, not as an encoding choice. *)
  (match Ir_wld.Io.of_string "3.5,4\n1,2\n" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "default mode rejected unsorted data: %s" e);
  (match Ir_wld.Io.of_string ~strict:true "3.5,4\n1,2\n" with
  | Ok _ -> Alcotest.fail "strict mode accepted unsorted data"
  | Error e ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "strict error mentions %S (got %S)" s e)
            true
            (Astring_contains.contains e s))
        [ "line 1"; "line 2" ]);
  (match Ir_wld.Io.of_string ~strict:true "1,2\n1,3\n" with
  | Ok _ -> Alcotest.fail "strict mode accepted a duplicated length"
  | Error _ -> ());
  (* a header line and sorted data are fine under strict *)
  (match Ir_wld.Io.of_string ~strict:true "length,count\n1,2\n3.5,4\n" with
  | Ok d -> Alcotest.(check int) "strict parse total" 6 (Ir_wld.Dist.total d)
  | Error e -> Alcotest.failf "strict rejected valid input: %s" e);
  (* the [name] prefix lands in front of the line number *)
  match Ir_wld.Io.of_string ~name:"upload.csv" "1,-2\n" with
  | Ok _ -> Alcotest.fail "negative count accepted"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "named error %S" e)
        true
        (Astring_contains.contains e "upload.csv: line 1")

let test_io_files () =
  let path = Filename.temp_file "wld" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d = Ir_wld.Davis.generate (Ir_wld.Davis.params ~gates:1000 ()) in
      (match Ir_wld.Io.save path d with
      | Error e -> Alcotest.failf "save failed: %s" e
      | Ok () -> ());
      match Ir_wld.Io.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok d2 ->
          Alcotest.(check bool) "file roundtrip" true (Ir_wld.Dist.equal d d2));
  match Ir_wld.Io.load "/nonexistent/really/not/here.csv" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected load error"

let prop_io_roundtrip =
  qtest "CSV roundtrip preserves any distribution"
    QCheck2.Gen.(
      list_size (int_range 1 30)
        (pair (float_range 0.001 5000.0) (int_range 1 100000)))
    (fun raw ->
      let d =
        Ir_wld.Dist.of_bins
          (List.map (fun (l, c) -> { Ir_wld.Dist.length = l; count = c }) raw)
      in
      match Ir_wld.Io.of_string (Ir_wld.Io.to_string d) with
      | Ok d2 -> Ir_wld.Dist.equal d d2
      | Error _ -> false)

let test_stats_summary () =
  let d =
    Ir_wld.Dist.of_bins
      [
        { Ir_wld.Dist.length = 1.0; count = 50 };
        { Ir_wld.Dist.length = 2.0; count = 30 };
        { Ir_wld.Dist.length = 10.0; count = 20 };
      ]
  in
  let s = Ir_wld.Stats.summary d in
  Alcotest.(check int) "total" 100 s.total;
  check_close "mean" ((50.0 +. 60.0 +. 200.0) /. 100.0) s.mean;
  check_close "median" 1.0 s.median;
  check_close "p90" 10.0 (Ir_wld.Stats.quantile d 0.9);
  check_close "p50 boundary" 1.0 (Ir_wld.Stats.quantile d 0.5);
  check_close "p51" 2.0 (Ir_wld.Stats.quantile d 0.51);
  check_close "total length" 310.0 s.total_length;
  Alcotest.(check bool) "std positive" true (s.std > 0.0);
  Alcotest.check_raises "bad q"
    (Invalid_argument "Stats.quantile: q must lie in (0, 1]") (fun () ->
      ignore (Ir_wld.Stats.quantile d 0.0))

let test_stats_histogram () =
  let d = Ir_wld.Davis.generate (Ir_wld.Davis.params ~gates:10_000 ()) in
  let h = Ir_wld.Stats.histogram ~bins:8 d in
  Alcotest.(check int) "bin count" 8 (List.length h);
  let total = List.fold_left (fun a (_, _, c) -> a + c) 0 h in
  Alcotest.(check int) "mass conserved" (Ir_wld.Dist.total d) total;
  (* contiguous coverage *)
  let rec contiguous = function
    | (_, hi, _) :: (((lo, _, _) :: _) as rest) ->
        Ir_phys.Numeric.close hi lo && contiguous rest
    | _ -> true
  in
  Alcotest.(check bool) "contiguous edges" true (contiguous h);
  let txt = Format.asprintf "%a" Ir_wld.Stats.pp_histogram d in
  Alcotest.(check bool) "renders bars" true
    (Astring_contains.contains txt "#")

let prop_quantile_monotone =
  qtest "quantiles are monotone in q"
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (pair (float_range 1.0 500.0) (int_range 1 100)))
    (fun raw ->
      let d =
        Ir_wld.Dist.of_bins
          (List.map (fun (l, c) -> { Ir_wld.Dist.length = l; count = c }) raw)
      in
      let q25 = Ir_wld.Stats.quantile d 0.25 in
      let q50 = Ir_wld.Stats.quantile d 0.5 in
      let q99 = Ir_wld.Stats.quantile d 0.99 in
      q25 <= q50 && q50 <= q99
      && q99 <= Ir_wld.Dist.l_max d
      && Ir_wld.Stats.quantile d 1.0 = Ir_wld.Dist.l_max d)

let () =
  Alcotest.run "wld"
    [
      ( "davis",
        [
          Alcotest.test_case "params" `Quick test_davis_params;
          Alcotest.test_case "density support" `Quick test_davis_density_support;
          Alcotest.test_case "density continuity" `Quick
            test_davis_density_continuity;
          Alcotest.test_case "cumulative" `Quick test_davis_cumulative;
          Alcotest.test_case "generate 1M" `Quick test_davis_generate;
          Alcotest.test_case "tail fractions" `Quick test_davis_tail_fractions;
          Alcotest.test_case "generate meters" `Quick test_generate_meters;
          prop_davis_total;
          prop_davis_rent_shifts_tail;
        ] );
      ( "dist",
        [
          Alcotest.test_case "basics" `Quick test_dist_basics;
          Alcotest.test_case "validation" `Quick test_dist_validation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary/quantiles" `Quick test_stats_summary;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          prop_quantile_monotone;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "parsing" `Quick test_io_parsing;
          Alcotest.test_case "failure modes" `Quick test_io_failure_modes;
          Alcotest.test_case "strict mode" `Quick test_io_strict_mode;
          Alcotest.test_case "files" `Quick test_io_files;
          prop_io_roundtrip;
        ] );
      ( "coarsen",
        [
          Alcotest.test_case "bunching" `Quick test_bunching;
          Alcotest.test_case "binning (footnote 7)" `Quick test_binning;
          prop_bunch_mass;
          prop_binning_mass;
        ] );
    ]
