(* Tests for lib/power: the repeater power model and the dual-budget
   (rank-vs-power) surface.  The QCheck properties pin the subsystem's
   contracts on random instances: monotonicity of the model in activity
   factor and clock, the three power accountings (assignment, witness,
   the DP's own coordinate) agreeing without a tolerance, and the
   infinite-budget run being byte-identical — outcome and counters — to
   the area-only path. *)

open Helpers
module P = Ir_assign.Problem
module Power = Ir_power.Power
module Dp = Ir_core.Rank_dp

let n_pairs p = Array.length (P.arch p).Ir_ia.Arch.pairs

(* ---- the model -------------------------------------------------------- *)

let test_per_repeater_positive () =
  let p = baseline_130nm_small () in
  for j = 0 to n_pairs p - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "pair %d positive" j)
      true
      (Power.per_repeater p ~pair:j > 0.0)
  done

(* Dynamic switching is linear in the activity factor, so equal activity
   steps must buy equal power increments on every pair (the leakage term
   cancels in the differences). *)
let test_activity_linear () =
  let p = baseline_130nm_small () in
  let at a j = Power.per_repeater (P.with_activity p a) ~pair:j in
  for j = 0 to n_pairs p - 1 do
    check_close ~eps:1e-9
      (Printf.sprintf "pair %d equal increments" j)
      (at 0.2 j -. at 0.1 j)
      (at 0.3 j -. at 0.2 j)
  done

let test_node_constants () =
  let open Ir_tech.Node in
  Alcotest.(check bool) "vdd scales down with the node" true
    (vdd N180 > vdd N130 && vdd N130 > vdd N90 && vdd N90 > 0.0);
  Alcotest.(check bool) "leakage grows as gates shrink" true
    (leakage_per_size N90 > leakage_per_size N130
    && leakage_per_size N130 > leakage_per_size N180
    && leakage_per_size N180 > 0.0)

let prop_monotone_activity =
  qtest ~count:60 "of_witness monotone in activity factor"
    QCheck2.Gen.(
      tup3 gen_instance (float_range 0.01 1.0) (float_range 0.01 1.0))
    (fun ({ problem; label = _ }, a1, a2) ->
      let lo = Float.min a1 a2 and hi = Float.max a1 a2 in
      match Dp.compute_with_witness problem with
      | _, None -> true
      | _, Some w ->
          Power.of_witness (P.with_activity problem lo) w
          <= Power.of_witness (P.with_activity problem hi) w)

(* The witness's repeater counts belong to the original targets, so the
   clock property is stated on the model itself: every pair's
   per-repeater power grows with the clock (the dynamic term is linear
   in f_clock, leakage is clock-free). *)
let prop_monotone_clock =
  qtest ~count:60 "per_repeater monotone in clock"
    QCheck2.Gen.(pair gen_instance (float_range 1.0 3.0))
    (fun ({ problem; label = _ }, factor) ->
      let clock =
        (P.arch problem).Ir_ia.Arch.design.Ir_tech.Design.clock
      in
      let faster = P.with_clock problem (clock *. factor) in
      let ok = ref true in
      for j = 0 to n_pairs problem - 1 do
        if Power.per_repeater faster ~pair:j < Power.per_repeater problem ~pair:j
        then ok := false
      done;
      !ok)

(* ---- accounting ------------------------------------------------------- *)

(* Assignment.extract reruns the same DP, so the three accountings —
   the extracted assignment's interval sum, the witness sum, and a
   by-hand replay of the documented formula — must agree to the byte,
   no tolerance. *)
let prop_accounting_identity =
  qtest ~count:60 "of_assignment = of_witness = interval sum, byte-exact"
    gen_instance
    (fun { problem; label = _ } ->
      match Dp.compute_with_witness problem with
      | _, None -> true
      | o, Some w ->
          let a = Ir_core.Assignment.extract problem in
          let manual =
            List.fold_left
              (fun acc (pl : Ir_core.Assignment.pair_load) ->
                if pl.bunch_hi > pl.bunch_lo then
                  acc
                  +. P.meeting_power problem ~pair:pl.pair ~lo:pl.bunch_lo
                       ~hi:pl.bunch_hi
                else acc)
              0.0 a.Ir_core.Assignment.meeting
          in
          a.Ir_core.Assignment.outcome.Ir_core.Outcome.rank_wires
          = o.Ir_core.Outcome.rank_wires
          && Power.of_assignment problem a = manual
          && Power.of_assignment problem a = Power.of_witness problem w)

(* ---- the dual budget -------------------------------------------------- *)

(* The soundness anchor at instance granularity: threading an infinite
   power budget (and a non-default activity, so the power tables really
   differ) through the DP must leave the outcome AND every counter
   byte-identical to the area-only run. *)
let prop_infinite_budget_identity =
  qtest ~count:40 "infinite budget = area-only, outcome and counters"
    gen_instance
    (fun { problem; label = _ } ->
      Ir_obs.reset ();
      let plain = Dp.compute problem in
      let plain_snap = Ir_obs.snapshot () in
      Ir_obs.reset ();
      let powered_inf =
        Dp.compute
          (P.with_power_budget (P.with_activity problem 0.45) infinity)
      in
      let inf_snap = Ir_obs.snapshot () in
      Ir_obs.reset ();
      plain = powered_inf
      && plain_snap.Ir_obs.counters = inf_snap.Ir_obs.counters
      && plain_snap.Ir_obs.gauges = inf_snap.Ir_obs.gauges)

(* A finite budget can only lose rank; the budget is respected by the
   returned witness; and a budget of exactly the unconstrained witness's
   own spend loses nothing (the DP's power coordinate reproduces the
   spend byte-for-byte, so the same witness stays admissible). *)
let prop_budget_binds_soundly =
  qtest ~count:40 "finite budgets: monotone loss, exact self-recovery"
    gen_instance
    (fun { problem; label = _ } ->
      match Dp.compute_with_witness problem with
      | _, None -> true
      | o, Some w -> (
          let p_inf = Power.of_witness problem w in
          if not (p_inf > 0.0) then true
          else
            let half = P.with_power_budget problem (0.5 *. p_inf) in
            let oh, wh = Dp.compute_with_witness half in
            let within =
              match wh with
              | None -> true
              | Some wh -> Power.of_witness half wh <= 0.5 *. p_inf
            in
            oh.Ir_core.Outcome.rank_wires <= o.Ir_core.Outcome.rank_wires
            && within
            &&
            match
              Dp.compute_pareto_power problem [ p_inf ]
            with
            | [ pt ] ->
                pt.Dp.pp_outcome.Ir_core.Outcome.rank_wires
                = o.Ir_core.Outcome.rank_wires
                && pt.Dp.pp_power <= p_inf
            | _ -> false))

(* One power-mode build answering a whole budget sweep must agree with
   independently computed points (the componentwise displacement
   argument behind compute_pareto_power). *)
let prop_sweep_matches_independent =
  qtest ~count:30 "compute_pareto_power = independent recomputes"
    gen_instance
    (fun { problem; label = _ } ->
      match Dp.compute_with_witness problem with
      | _, None -> true
      | _, Some w ->
          let p_inf = Power.of_witness problem w in
          if not (p_inf > 0.0) then true
          else
            let budgets =
              [ 0.3 *. p_inf; 0.7 *. p_inf; p_inf; infinity ]
            in
            let swept = Dp.compute_pareto_power problem budgets in
            List.for_all2
              (fun b (pt : Dp.power_point) ->
                let alone = Dp.compute (P.with_power_budget problem b) in
                pt.Dp.pp_budget = b && pt.Dp.pp_outcome = alone)
              budgets swept)

let test_epsilon_refused_in_power_mode () =
  let p =
    P.with_power_budget (baseline_130nm_small ()) 0.01
  in
  match Dp.compute ~epsilon:0.1 p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "epsilon > 0 must be refused in power mode"

let test_powered_tables_refuse_encode () =
  let p = P.with_power_budget (baseline_130nm_small ()) 0.01 in
  let tables = Dp.build_tables p in
  match Dp.encode_tables tables with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "power-mode tables must refuse encode_tables"

let test_pareto_validation () =
  let p = baseline_130nm_small () in
  List.iter
    (fun budgets ->
      match Power.pareto p budgets with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument on budget <= 0")
    [ [ 0.0 ]; [ -1.0 ]; [ 0.1; -0.1 ] ]

let test_pareto_small_frontier () =
  let p = baseline_130nm_small () in
  let o, w = Dp.compute_with_witness p in
  let p_inf =
    match w with
    | Some w -> Power.of_witness p w
    | None -> Alcotest.fail "baseline unassignable"
  in
  let budgets = List.map (fun f -> f *. p_inf) [ 0.25; 0.5; 1.0 ] in
  let pts = Power.pareto p budgets in
  Alcotest.(check int) "three points" 3 (List.length pts);
  let ranks =
    List.map (fun (pt : Dp.power_point) ->
        pt.Dp.pp_outcome.Ir_core.Outcome.rank_wires)
      pts
  in
  Alcotest.(check bool) "ranks nondecreasing in budget" true
    (List.sort compare ranks = ranks);
  List.iter2
    (fun b (pt : Dp.power_point) ->
      Alcotest.(check bool) "spend within budget" true (pt.Dp.pp_power <= b))
    budgets pts;
  Alcotest.(check int) "full-spend budget recovers the unconstrained rank"
    o.Ir_core.Outcome.rank_wires
    (List.nth ranks 2)

(* The concurrent (Rank_grid) and sequential (Rank_dp) engines behind
   Power.pareto must return identical frontiers. *)
let test_pareto_engines_agree () =
  let p = baseline_130nm_small () in
  let _, w = Dp.compute_with_witness p in
  let p_inf =
    match w with
    | Some w -> Power.of_witness p w
    | None -> Alcotest.fail "baseline unassignable"
  in
  let budgets = List.map (fun f -> f *. p_inf) [ 0.3; 0.6; 1.0 ] in
  let seq = Power.pareto p budgets in
  let par = Power.pareto ~jobs:2 p budgets in
  List.iter2
    (fun (a : Dp.power_point) (b : Dp.power_point) ->
      Alcotest.(check bool) "identical point" true
        (a.Dp.pp_budget = b.Dp.pp_budget
        && a.Dp.pp_outcome = b.Dp.pp_outcome
        && a.Dp.pp_power = b.Dp.pp_power))
    seq par

let () =
  Alcotest.run "power"
    [
      ( "model",
        [
          Alcotest.test_case "per-repeater positive" `Quick
            test_per_repeater_positive;
          Alcotest.test_case "linear in activity" `Quick test_activity_linear;
          Alcotest.test_case "node constants" `Quick test_node_constants;
          prop_monotone_activity;
          prop_monotone_clock;
        ] );
      ( "accounting",
        [ prop_accounting_identity ] );
      ( "dual budget",
        [
          prop_infinite_budget_identity;
          prop_budget_binds_soundly;
          prop_sweep_matches_independent;
          Alcotest.test_case "epsilon refused" `Quick
            test_epsilon_refused_in_power_mode;
          Alcotest.test_case "encode refused" `Quick
            test_powered_tables_refuse_encode;
          Alcotest.test_case "budget validation" `Quick test_pareto_validation;
          Alcotest.test_case "small frontier" `Quick test_pareto_small_frontier;
          Alcotest.test_case "engines agree" `Quick test_pareto_engines_agree;
        ] );
    ]
