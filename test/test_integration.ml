(* End-to-end and cross-library integration tests: the full pipeline on
   small designs, consistency between independently computed views, and
   regression cases for degenerate instances. *)

open Helpers

module P = Ir_assign.Problem

let design = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:40_000 ()

let test_pipeline_deterministic () =
  (* Rebuilding the whole pipeline from scratch yields bit-identical
     outcomes: nothing in WLD generation, bunching or the DP depends on
     ambient state. *)
  let run () = Ir_core.Rank.of_design ~bunch_size:500 design in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical outcomes" true (Ir_core.Outcome.equal a b)

let test_witness_matches_all_algorithms () =
  let problem = Ir_core.Rank.problem_of_design ~bunch_size:500 design in
  let dp = Ir_core.Rank_dp.compute problem in
  let via_facade = Ir_core.Rank.compute problem in
  let witness = Ir_core.Assignment.extract problem in
  Alcotest.(check int) "facade = dp" dp.rank_wires via_facade.rank_wires;
  Alcotest.(check int) "witness = dp" dp.rank_wires
    witness.outcome.rank_wires;
  (* The witness's repeater area re-derived from per-bunch eta agrees
     with the DP's budget usage bound. *)
  let total_area =
    List.fold_left
      (fun a (l : Ir_core.Assignment.pair_load) -> a +. l.repeater_area)
      0.0 witness.meeting
  in
  Alcotest.(check bool) "witness within budget" true
    (total_area <= P.budget problem *. (1.0 +. 1e-9))

let test_utilization_consistent_with_capacity () =
  let problem = Ir_core.Rank.problem_of_design ~bunch_size:500 design in
  let witness = Ir_core.Assignment.extract problem in
  List.iter
    (fun (j, u) ->
      if u > 1.0 +. 1e-9 || u < 0.0 then
        Alcotest.failf "pair %d utilization %f out of [0,1]" j u)
    (Ir_core.Assignment.utilization problem witness)

let test_wld_roundtrip_preserves_rank () =
  (* Export the WLD to CSV, reload, recompute: the rank must be
     unchanged (lossless persistence end to end). *)
  let arch = Ir_ia.Arch.make ~design () in
  let wld =
    Ir_wld.Davis.generate (Ir_wld.Davis.params ~gates:design.gates ())
  in
  let rank w =
    (Ir_core.Rank_dp.compute
       (Ir_assign.Problem.make ~bunch_size:500 ~arch ~wld:w ()))
      .rank_wires
  in
  match Ir_wld.Io.of_string (Ir_wld.Io.to_string wld) with
  | Error e -> Alcotest.failf "roundtrip: %s" e
  | Ok reloaded -> Alcotest.(check int) "rank stable" (rank wld) (rank reloaded)

let test_single_pair_architecture () =
  let structure =
    { Ir_ia.Arch.local_pairs = 0; semi_global_pairs = 1; global_pairs = 0 }
  in
  let o = Ir_core.Rank.of_design ~structure ~bunch_size:500 design in
  (* One semi-global pair cannot hold the whole 40k-gate WLD. *)
  Alcotest.(check bool) "single pair under-capacity" false o.assignable;
  Alcotest.(check int) "rank 0 (Definition 3)" 0 o.rank_wires

let test_single_bunch_instance () =
  let arch = Ir_ia.Arch.make ~design () in
  let bunches = [| { Ir_wld.Dist.length = 1e-4; count = 3 } |] in
  let p = P.of_bunches ~arch ~bunches () in
  let dp = Ir_core.Rank_dp.compute p in
  let brute = Ir_core.Rank_brute.compute p in
  Alcotest.(check int) "dp = brute on a single bunch" brute.rank_wires
    dp.rank_wires;
  Alcotest.(check bool) "either all or none meet" true
    (dp.rank_wires = 0 || dp.rank_wires = 3)

let test_huge_bunch_size () =
  (* A bunch size larger than the WLD collapses each length class to one
     bunch; the pipeline must still work and ranks stay within the
     paper's bunching error bound of the fine-grained answer. *)
  let fine = Ir_core.Rank.of_design ~bunch_size:100 design in
  let coarse = Ir_core.Rank.of_design ~bunch_size:1_000_000 design in
  let bound =
    (* largest length-class population *)
    let wld =
      Ir_wld.Davis.generate (Ir_wld.Davis.params ~gates:design.gates ())
    in
    Array.fold_left
      (fun a (b : Ir_wld.Dist.bin) -> max a b.count)
      0 (Ir_wld.Dist.bins wld)
  in
  Alcotest.(check bool)
    (Printf.sprintf "|%d - %d| <= %d" fine.rank_wires coarse.rank_wires bound)
    true
    (abs (fine.rank_wires - coarse.rank_wires) <= bound)

let test_noise_consistent_with_rc () =
  (* The problem-level noise gate and the rc-level predicate agree. *)
  let arch = Ir_ia.Arch.make ~design () in
  let wld =
    Ir_wld.Davis.generate (Ir_wld.Davis.params ~gates:design.gates ())
  in
  let limit = 0.25 in
  let p = P.make ~noise_limit:limit ~bunch_size:500 ~arch ~wld () in
  for j = 0 to P.n_pairs p - 1 do
    let pair = Ir_ia.Arch.pair arch j in
    let passes =
      Ir_rc.Noise.passes ~k:3.9 ~miller:2.0 ~limit pair.geom
    in
    let has_meeting =
      List.exists
        (fun b -> P.eta_min p ~pair:j ~bunch:b <> None)
        (List.init (P.n_bunches p) Fun.id)
    in
    if (not passes) && has_meeting then
      Alcotest.failf "pair %d fails noise yet hosts meeting wires" j
  done

let test_roadmap_entries_buildable () =
  (* Every roadmap generation yields a baseline design whose architecture
     builds and whose rank computes (small gate counts for speed). *)
  List.iter
    (fun (e : Ir_tech.Itrs.entry) ->
      let design = Ir_tech.Itrs.design_of_entry ~gates:20_000 ~clock:5e8 e in
      let o = Ir_core.Rank.of_design ~bunch_size:500 design in
      Alcotest.(check bool)
        (Printf.sprintf "%d assignable" e.year)
        true o.assignable)
    Ir_tech.Itrs.roadmap

let test_exact_agrees_on_small_real_instance () =
  (* The literal DP and the optimized DP on a real (not synthetic)
     architecture with a dozen bunches. *)
  let tiny = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:4_000 () in
  let arch = Ir_ia.Arch.make ~design:tiny () in
  let wld =
    Ir_wld.Davis.generate (Ir_wld.Davis.params ~gates:4_000 ())
  in
  let p = P.make ~bunch_size:1500 ~arch ~wld () in
  if P.n_bunches p <= 14 then begin
    let dp = Ir_core.Rank_dp.compute p in
    let exact = Ir_core.Rank_exact.compute ~r_steps:24 p in
    Alcotest.(check bool)
      (Printf.sprintf "exact (%d) <= dp (%d)" exact.rank_wires dp.rank_wires)
      true
      (exact.rank_wires <= dp.rank_wires)
  end

let prop_full_pipeline_never_crashes =
  qtest ~count:40 "pipeline total on random small designs"
    QCheck2.Gen.(
      triple (int_range 500 60_000) (float_range 0.3 3.0)
        (float_range 0.05 0.8))
    (fun (gates, clock_ghz, fraction) ->
      let design =
        Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates
          ~clock:(clock_ghz *. 1e9) ~repeater_fraction:fraction ()
      in
      let o = Ir_core.Rank.of_design ~bunch_size:500 design in
      o.rank_wires >= 0 && o.rank_wires <= o.total_wires)

(* ---- CLI exit codes --------------------------------------------------- *)

(* The policy bin/ia_rank.ml declares: 0 success, 1 operational error
   (bad input, I/O failure, unreachable server), 2 domain verdicts
   (unassignable design).  The binary — a declared dune dep — sits next
   to this test in the build tree; resolving it relative to the test
   executable works under both `dune runtest` and `dune exec`. *)
let ia_rank =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "ia_rank.exe"))

let run_cli args =
  let cmd =
    Printf.sprintf "%s %s >/dev/null 2>&1" ia_rank
      (String.concat " " (List.map Filename.quote args))
  in
  match Unix.system cmd with
  | Unix.WEXITED code -> code
  | Unix.WSIGNALED s -> Alcotest.failf "ia_rank killed by signal %d" s
  | Unix.WSTOPPED s -> Alcotest.failf "ia_rank stopped by signal %d" s

let check_exit what expected args =
  Alcotest.(check int) what expected (run_cli args)

let test_cli_success_paths () =
  check_exit "rank on a small design" 0
    [ "rank"; "-n"; "130nm"; "-g"; "20000"; "--bunch-size"; "500" ];
  check_exit "wld summary" 0 [ "wld"; "-g"; "10000" ]

let test_cli_error_exit_codes () =
  (* operational failures (valid command line, runtime error) exit 1 *)
  check_exit "wld load from a missing file" 1
    [ "wld"; "--load"; "/nonexistent/really/not/here.csv" ];
  check_exit "wld save into an uncreatable path" 1
    [ "wld"; "-g"; "1000"; "--save"; "/dev/null/cannot/exist.csv" ];
  check_exit "query without a server" 1
    [ "query"; "--socket"; "/nonexistent/ia.sock"; "-n"; "130nm";
      "-g"; "20000" ];
  check_exit "serve refuses a non-socket path" 1
    [ "serve"; "--socket"; "/dev/null" ];
  (* command-line faults are cmdliner's documented exit 124 *)
  check_exit "unknown node" 124 [ "rank"; "-n"; "bogus"; "-g"; "20000" ];
  check_exit "negative gate count" 124 [ "rank"; "-n"; "130nm"; "-g"; "-5" ];
  check_exit "unreadable wld argument" 124
    [ "rank"; "-n"; "130nm"; "-g"; "20000"; "--wld";
      "/nonexistent/really/not/here.csv" ];
  check_exit "unknown subcommand" 124 [ "frobnicate" ]

let test_cli_query_stdio_roundtrip () =
  (* `serve --stdio` + `query` exit codes through a real pipe: a good
     query exits 0, a malformed one exits 1. *)
  let run_stdio line =
    let ic, oc =
      Unix.open_process
        (Printf.sprintf "%s serve --stdio 2>/dev/null" ia_rank)
    in
    output_string oc (line ^ "\n");
    close_out oc;
    let resp = try input_line ic with End_of_file -> "" in
    match Unix.close_process (ic, oc) with
    | Unix.WEXITED 0 -> resp
    | Unix.WEXITED code -> Alcotest.failf "serve --stdio exited %d" code
    | _ -> Alcotest.fail "serve --stdio killed"
  in
  let resp =
    run_stdio
      "{\"v\":1,\"id\":\"t\",\"op\":\"query\",\"query\":{\"node\":\"130nm\",\"gates\":20000,\"bunch_size\":500}}"
  in
  Alcotest.(check bool)
    (Printf.sprintf "stdio query answered ok (got %s)" resp)
    true
    (Astring_contains.contains resp "\"status\":\"ok\"");
  let bad = run_stdio "{\"v\":1,\"id\":\"t\",\"op\":\"frobnicate\"}" in
  Alcotest.(check bool)
    (Printf.sprintf "stdio bad request reported (got %s)" bad)
    true
    (Astring_contains.contains bad "bad_request")

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "deterministic" `Quick
            test_pipeline_deterministic;
          Alcotest.test_case "witness vs algorithms" `Quick
            test_witness_matches_all_algorithms;
          Alcotest.test_case "utilization bounded" `Quick
            test_utilization_consistent_with_capacity;
          Alcotest.test_case "WLD roundtrip preserves rank" `Quick
            test_wld_roundtrip_preserves_rank;
          prop_full_pipeline_never_crashes;
        ] );
      ( "degenerate instances",
        [
          Alcotest.test_case "single pair" `Quick
            test_single_pair_architecture;
          Alcotest.test_case "single bunch" `Quick test_single_bunch_instance;
          Alcotest.test_case "huge bunch size" `Quick test_huge_bunch_size;
        ] );
      ( "cross-library consistency",
        [
          Alcotest.test_case "noise gate vs rc predicate" `Quick
            test_noise_consistent_with_rc;
          Alcotest.test_case "roadmap entries buildable" `Slow
            test_roadmap_entries_buildable;
          Alcotest.test_case "exact vs dp on real instance" `Slow
            test_exact_agrees_on_small_real_instance;
        ] );
      ( "cli exit codes",
        [
          Alcotest.test_case "success paths" `Quick test_cli_success_paths;
          Alcotest.test_case "error paths exit 1" `Quick
            test_cli_error_exit_codes;
          Alcotest.test_case "serve --stdio roundtrip" `Quick
            test_cli_query_stdio_roundtrip;
        ] );
    ]
